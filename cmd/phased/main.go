// Command phased serves the phase-marker analysis pipeline over HTTP, or
// stress-tests it against synthetic traffic.
//
// Serve mode (default):
//
//	phased -addr :8080 -store .phased-store
//	phased -addr :8080 -workers 8 -queue 32
//
// exposes /v1/profile, /v1/select, /v1/segment, /v1/cluster, /v1/batch,
// /healthz, and /metrics (see internal/service). Responses are
// content-addressed in the -store directory: identical requests — across
// clients and across restarts — compute once. SIGINT/SIGTERM starts a
// graceful drain: /healthz flips to 503, new work is rejected, in-flight
// requests finish (up to -drain-timeout), then the process exits.
//
// Stress mode:
//
//	phased -stress
//	phased -stress -stress-requests 200 -stress-out results/BENCH_service.json
//
// boots an in-process server on an ephemeral port and drives the
// internal/servtest scenario suite against it — cold (all-unique
// traffic), mixed (cold/warm/hot per the paper-tool usage pattern), hot
// (a tiny request pool hammered), restart (a fresh process over the same
// store must serve everything from disk without recomputing), and
// saturate (a deliberately tiny server under excess concurrency, where
// 429s are the expected behavior). Results append to -stress-out under
// -stress-label (schema phasemark/bench-service/v2, see EXPERIMENTS.md).
// Any steady-state 5xx, transport failure, unexpected 429, or
// telemetry-consistency violation (stage durations exceeding wall time,
// cache hits reporting a compute stage) exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"phasemark/internal/service"
	"phasemark/internal/servtest"
	"phasemark/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "serve: listen address")
		storeDir     = flag.String("store", ".phased-store", "artifact store directory")
		workers      = flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "max requests queued for a slot (0 = 4x workers)")
		traceWorkers = flag.Int("trace-workers", 0, "pipeline-parallel worker count inside each trace-driven request (0 = serial streaming; responses are bit-identical either way)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "serve: max wait for in-flight requests on shutdown")
		accessLog    = flag.Bool("log", false, "serve: emit a structured (JSON) access log line per request to stderr")
		version      = flag.Bool("version", false, "print build information and exit")

		stress         = flag.Bool("stress", false, "run the synthetic stress suite instead of serving")
		stressOut      = flag.String("stress-out", "results/BENCH_service.json", "stress: report path")
		stressLabel    = flag.String("stress-label", "dev", "stress: run label in the report")
		stressRequests = flag.Int("stress-requests", 1000, "stress: base scenario size (scenarios scale from this)")
		stressWorkload = flag.String("stress-workload", "lucas", "stress: workload behind the traffic")
		stressSeed     = flag.Uint64("stress-seed", 1, "stress: traffic generation seed")
	)
	flag.Parse()

	if *version {
		fmt.Println(service.Build().String())
		os.Exit(0)
	}
	if *traceWorkers < 0 {
		fmt.Fprintf(os.Stderr, "phased: -trace-workers must be >= 0, got %d\n", *traceWorkers)
		flag.Usage()
		os.Exit(2)
	}
	if *stress {
		os.Exit(runStress(stressConfig{
			out:          *stressOut,
			label:        *stressLabel,
			requests:     *stressRequests,
			workload:     *stressWorkload,
			seed:         *stressSeed,
			workers:      *workers,
			queue:        *queue,
			traceWorkers: *traceWorkers,
		}))
	}
	os.Exit(serve(*addr, *storeDir, *workers, *queue, *traceWorkers, *drainTimeout, *accessLog))
}

// serve runs the service until SIGINT/SIGTERM, then drains gracefully.
func serve(addr, dir string, workers, queue, traceWorkers int, drainTimeout time.Duration, accessLog bool) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}
	cfg := service.Config{Store: st, Workers: workers, Queue: queue, TraceWorkers: traceWorkers}
	if accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := service.New(cfg)
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "phased: %s\n", service.Build())
	fmt.Fprintf(os.Stderr, "phased: serving on %s (store %s)\n", addr, dir)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop admitting (503s + unhealthy healthz), then wait for
	// in-flight handlers.
	fmt.Fprintln(os.Stderr, "phased: draining")
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "phased: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "phased: drained")
	return 0
}

type stressConfig struct {
	out          string
	label        string
	requests     int
	workload     string
	seed         uint64
	workers      int
	queue        int
	traceWorkers int
}

// startServer boots a service over dir on an ephemeral port, returning
// the server, its base URL, and a shutdown func.
func startServer(dir string, cfg service.Config) (*service.Server, string, func(), error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, "", nil, err
	}
	cfg.Store = st
	srv := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return srv, "http://" + ln.Addr().String(), stop, nil
}

// runScenario executes sc against srv at baseURL and attaches the
// server-side store stats delta.
func runScenario(srv *service.Server, baseURL string, sc servtest.Scenario) servtest.ScenarioResult {
	before := srv.Store().Stats()
	res := sc.Run(baseURL, nil)
	after := srv.Store().Stats()
	res.Store = servtest.StoreCounts{
		Computes: after.Computes - before.Computes,
		DiskHits: after.DiskHits - before.DiskHits,
		Joins:    after.Joins - before.Joins,
	}
	fmt.Fprintf(os.Stderr, "  %-10s %5d req  %6.0f req/s  ok=%d shed=%d 5xx=%d  hit=%d computed=%d joined=%d  p50=%s p99=%s\n",
		sc.Name, res.Requests, res.ReqPerSec,
		res.Status.OK, res.Status.Shed, res.Status.ServerErr,
		res.Cache.Hit, res.Cache.Computed, res.Cache.Joined,
		time.Duration(res.Latency.P50NS), time.Duration(res.Latency.P99NS))
	return res
}

// runStress drives the scenario suite and writes the report; nonzero on
// any steady-state violation.
func runStress(cfg stressConfig) int {
	dir, err := os.MkdirTemp("", "phased-stress-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	workers := cfg.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := cfg.queue
	if queue <= 0 {
		queue = 4 * workers
	}
	// Steady-state concurrency stays under workers+queue so admission
	// control never sheds outside the saturate scenario.
	concurrency := 2 * workers
	n := cfg.requests
	fmt.Fprintf(os.Stderr, "phased stress: workload %s, base %d requests, %d workers / %d queue, concurrency %d\n",
		cfg.workload, n, workers, queue, concurrency)

	srv, baseURL, stop, err := startServer(dir, service.Config{Workers: workers, Queue: queue, TraceWorkers: cfg.traceWorkers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}

	base := servtest.Scenario{Workload: cfg.workload, Concurrency: concurrency, Seed: cfg.seed}
	cold, mixed, hot := base, base, base
	cold.Name, cold.Requests, cold.Mix = "cold", n, servtest.Mix{Cold: 1}
	mixed.Name, mixed.Requests, mixed.Mix = "mixed", 2*n, servtest.Mix{Cold: 0.1, Warm: 0.5, Hot: 0.4}
	mixed.Seed = cfg.seed + 1
	hot.Name, hot.Requests, hot.Mix = "hot", n, servtest.Mix{Hot: 1}

	results := []servtest.ScenarioResult{
		runScenario(srv, baseURL, cold),
		runScenario(srv, baseURL, mixed),
		runScenario(srv, baseURL, hot),
	}
	stop()

	// Restart: a fresh process image (new server, cold memos) over the
	// same store directory replays the hot traffic; everything must come
	// off disk without a single recompute.
	srv2, baseURL2, stop2, err := startServer(dir, service.Config{Workers: workers, Queue: queue, TraceWorkers: cfg.traceWorkers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}
	restart := hot
	restart.Name = "restart"
	restartRes := runScenario(srv2, baseURL2, restart)
	results = append(results, restartRes)
	stop2()

	// Saturate: a deliberately tiny server (1 worker, 2 queue places)
	// under 32-way concurrency; shed traffic is the expected outcome,
	// 5xx still is not.
	satDir, err := os.MkdirTemp("", "phased-sat-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}
	defer os.RemoveAll(satDir)
	srv3, baseURL3, stop3, err := startServer(satDir, service.Config{Workers: 1, Queue: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}
	saturate := base
	saturate.Name, saturate.Requests, saturate.Mix = "saturate", n/4, servtest.Mix{Cold: 1}
	saturate.Concurrency, saturate.ExpectShed = 32, true
	saturate.Seed = cfg.seed + 2
	results = append(results, runScenario(srv3, baseURL3, saturate))
	stop3()

	// Validate the suite's contract before recording it.
	var violations []string
	for _, res := range results {
		violations = append(violations, res.Check()...)
	}
	if restartRes.Store.Computes != 0 {
		violations = append(violations,
			fmt.Sprintf("restart: %d recomputes, want everything served from the store", restartRes.Store.Computes))
	}

	report, err := servtest.LoadReport(cfg.out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}
	report.SetRun(servtest.Run{
		Label:     cfg.label,
		Go:        runtime.Version(),
		Build:     service.Build().String(),
		Workers:   workers,
		Queue:     queue,
		Scenarios: results,
	})
	if err := writeReport(cfg.out, report); err != nil {
		fmt.Fprintf(os.Stderr, "phased: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "phased stress: wrote %s (label %q)\n", cfg.out, cfg.label)

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "phased stress: FAIL %s\n", v)
		}
		return 1
	}
	return 0
}

func writeReport(path string, r *servtest.Report) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
