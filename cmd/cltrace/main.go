// Command cltrace runs a program under the timing model and prints its
// per-interval behavior, segmented either at fixed lengths or at software
// phase-marker firings (markers selected on a training input first).
//
// Usage:
//
//	cltrace -workload gzip                 # VLIs from train-selected markers, run on ref
//	cltrace -workload gzip -fixed 100000   # fixed-length intervals
//	cltrace -workload gcc -summary         # only the per-phase summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"phasemark"
	"phasemark/internal/stats"
	"phasemark/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload name")
		fixed    = flag.Uint64("fixed", 0, "fixed interval length (0 = use phase markers)")
		ilower   = flag.Uint64("ilower", 100_000, "marker minimum average interval size")
		summary  = flag.Bool("summary", false, "print only the per-phase summary")
		optimize = flag.Bool("opt", false, "compile with optimizations")
	)
	flag.Parse()
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "cltrace: need -workload (see `phasemark -list`)")
		os.Exit(2)
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	prog, err := w.Compile(*optimize)
	if err != nil {
		fatal(err)
	}

	var res *phasemark.Result
	if *fixed > 0 {
		res, err = phasemark.SegmentFixed(prog, *fixed, w.Ref...)
	} else {
		var g *phasemark.Graph
		g, err = phasemark.Profile(prog, w.Train...)
		if err != nil {
			fatal(err)
		}
		set := phasemark.Select(g, phasemark.SelectOptions{ILower: *ilower})
		fmt.Printf("selected %d markers on the train input\n", len(set.Markers))
		res, err = phasemark.Segment(prog, set, w.Ref...)
	}
	if err != nil {
		fatal(err)
	}

	if !*summary {
		fmt.Printf("%-6s %-8s %12s %12s %8s %10s\n",
			"#", "phase", "start", "len", "CPI", "DL1 miss")
		for _, iv := range res.Intervals {
			fmt.Printf("%-6d %-8d %12d %12d %8.3f %9.2f%%\n",
				iv.Index, iv.PhaseID, iv.Start, iv.Len(), iv.CPI(), 100*iv.Perf.L1MissRate())
		}
	}

	// Per-phase summary.
	type agg struct {
		n   int
		cpi stats.Weighted
		ins uint64
	}
	phases := map[int]*agg{}
	for _, iv := range res.Intervals {
		a := phases[iv.PhaseID]
		if a == nil {
			a = &agg{}
			phases[iv.PhaseID] = a
		}
		a.n++
		a.ins += iv.Len()
		a.cpi.Add(iv.CPI(), float64(iv.Len()))
	}
	ids := make([]int, 0, len(phases))
	for id := range phases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("\n%-8s %-10s %14s %10s %10s\n", "phase", "intervals", "instructions", "mean CPI", "CoV CPI")
	for _, id := range ids {
		a := phases[id]
		fmt.Printf("%-8d %-10d %14d %10.3f %9.2f%%\n",
			id, a.n, a.ins, a.cpi.Mean(), 100*a.cpi.CoV())
	}
	cov := phasemark.PhaseCoV(res.Intervals, phasemark.IntervalPhase, phasemark.CPIMetric)
	fmt.Printf("\noverall: %d intervals, %d phases, weighted CoV(CPI) = %.2f%%, true CPI = %.3f\n",
		cov.Intervals, cov.Phases, 100*cov.CoV, res.TrueCPI())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cltrace: %v\n", err)
	os.Exit(1)
}
