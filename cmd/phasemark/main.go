// Command phasemark profiles a program into a call-loop graph and selects
// software phase markers from it.
//
// Usage:
//
//	phasemark -workload gzip                      # built-in benchmark, train input
//	phasemark -workload gzip -input ref           # profile the ref input
//	phasemark -src prog.mpl -args 20,1000         # compile a source file
//	phasemark -workload gcc -ilower 50000 -graph  # dump the annotated graph
//	phasemark -workload art -maxlimit 2000000     # SimPoint limit variant
//	phasemark -workload art -procs-only           # procedures-only markers
//	phasemark -workload art -json                 # machine-readable markers
//	phasemark -workload art -stack                # analyze the stack-ISA binary
//	phasemark -workload art -emit-asm             # dump the binary as clasm text
//	phasemark -workload art -instrument           # dump the binary with markers inserted
//	phasemark -workload art -metrics              # + observability summary on stderr
//
// Markers print one per line with their location, expected interval
// length, traversal count, and hierarchical-count CoV.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"phasemark"
	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
	"phasemark/internal/obs"
	"phasemark/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "built-in workload name (see -list)")
		list      = flag.Bool("list", false, "list built-in workloads")
		src       = flag.String("src", "", "compile a mini-language source file instead")
		argsFlag  = flag.String("args", "", "comma-separated int64 program arguments")
		input     = flag.String("input", "train", "built-in input to profile: train or ref")
		optimize  = flag.Bool("opt", false, "compile with optimizations")
		ilower    = flag.Uint64("ilower", 100_000, "minimum average interval size (instructions)")
		maxlimit  = flag.Uint64("maxlimit", 0, "maximum interval size (0 = no limit)")
		procsOnly = flag.Bool("procs-only", false, "mark only procedure edges")
		dumpGraph = flag.Bool("graph", false, "dump the annotated call-loop graph")
		asJSON    = flag.Bool("json", false, "emit markers as JSON")
		stack     = flag.Bool("stack", false, "compile with the stack-machine backend (second ISA)")
		emitAsm   = flag.Bool("emit-asm", false, "dump the compiled binary as clasm assembly and exit")
		doInstr   = flag.Bool("instrument", false, "dump the binary with mark instructions physically inserted")
		metrics   = flag.Bool("metrics", false, "print an observability summary (stage timings, VM counters) to stderr after the run")
	)
	flag.Parse()
	if *metrics {
		defer obs.WriteSummary(os.Stderr)
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-9s %s\n", w.Name, w.Desc)
		}
		return
	}

	prog, args, err := loadProgram(*workload, *src, *argsFlag, *input,
		compile.Options{Optimize: *optimize, Stack: *stack})
	if err != nil {
		fatal(err)
	}
	if *emitAsm {
		fmt.Print(minivm.Print(prog))
		return
	}
	g, err := phasemark.Profile(prog, args...)
	if err != nil {
		fatal(err)
	}
	if *dumpGraph {
		fmt.Print(g.Dump())
	}
	set := phasemark.Select(g, phasemark.SelectOptions{
		ILower:    *ilower,
		MaxLimit:  *maxlimit,
		ProcsOnly: *procsOnly,
	})
	if *doInstr {
		inst, err := core.Instrument(prog, set)
		if err != nil {
			fatal(err)
		}
		fmt.Print(minivm.Print(inst))
		return
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(set); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s\n", set)
	for i, m := range set.Markers {
		grp := ""
		if m.GroupN > 1 {
			grp = fmt.Sprintf(" group=%d", m.GroupN)
		}
		forced := ""
		if m.Forced {
			forced = " (forced by max-limit)"
		}
		fmt.Printf("M%-3d %-48s avgLen=%-10.0f count=%-8d cov=%.4f%s%s\n",
			i, m.Key, m.AvgLen, m.Count, m.CoV, grp, forced)
	}
}

func loadProgram(workload, src, argsFlag, input string, copts compile.Options) (*phasemark.Program, []int64, error) {
	var args []int64
	if argsFlag != "" {
		for _, part := range strings.Split(argsFlag, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return nil, nil, usageError{fmt.Errorf("bad -args: %w", err)}
			}
			args = append(args, v)
		}
	}
	if input != "train" && input != "ref" {
		return nil, nil, usageError{fmt.Errorf("unknown -input %q (known: train, ref)", input)}
	}
	switch {
	case src != "":
		text, err := os.ReadFile(src)
		if err != nil {
			return nil, nil, err
		}
		prog, err := compile.CompileSource(string(text), copts)
		return prog, args, err
	case workload != "":
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, nil, usageError{fmt.Errorf("%w (known: %s)", err, workloadNames())}
		}
		f, err := lang.Parse(w.Source)
		if err != nil {
			return nil, nil, err
		}
		prog, err := compile.Compile(f, copts)
		if err != nil {
			return nil, nil, err
		}
		if args == nil {
			if input == "ref" {
				args = w.Ref
			} else {
				args = w.Train
			}
		}
		return prog, args, nil
	default:
		return nil, nil, usageError{fmt.Errorf("need -workload or -src (known workloads: %s)", workloadNames())}
	}
}

// workloadNames lists the built-in workloads for misuse messages.
func workloadNames() string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}

// usageError marks a command-line mistake (unknown workload or input,
// malformed arguments, missing required flags). fatal exits 2 for these —
// matching spexp's unknown-figure handling — and 1 for everything else, so
// scripts can tell misuse from genuine failures.
type usageError struct{ error }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "phasemark: %v\n", err)
	if _, ok := err.(usageError); ok {
		os.Exit(2)
	}
	os.Exit(1)
}
