package main

import (
	"encoding/json"
	"io"

	"phasemark/internal/obs"
)

// benchObs is the compact per-stage cost record the repository's bench
// trajectory tracks across commits: where the pipeline spent its time
// (aggregated span durations) plus the headline work counters. It is a
// subset of the full -metrics snapshot, stable enough to diff over time.
type benchObs struct {
	Schema   string            `json:"schema"`
	Stages   []obs.StageSnap   `json:"stages"`
	Counters []obs.CounterSnap `json:"counters"`
}

const benchObsSchema = "phasemark/bench-obs/v1"

// writeBenchObs writes the current default-registry state as a bench
// record. Stage and counter ordering is inherited from the snapshot
// (sorted by name), so records diff cleanly.
func writeBenchObs(w io.Writer) error {
	snap := obs.Snapshot()
	rec := benchObs{
		Schema:   benchObsSchema,
		Stages:   snap.Stages,
		Counters: snap.Counters,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
