// Command spexp regenerates the paper's evaluation tables and figures on
// the synthetic workload suite.
//
// Usage:
//
//	spexp -fig all          # everything (minutes at -j 1; see -j)
//	spexp -fig 7            # one figure: 3,4,5,7,8,9,10,11,12
//	spexp -fig crossbinary  # the §6.2.1 cross-binary study
//	spexp -fig speed        # the §5.1 selection-cost table
//	spexp -fig placement    # minimum-cost marker placement, full vs minimized
//	spexp -fig placement -placement-modes limit  # one minimized mode (cross,limit)
//	spexp -fig all -j 8     # profile workloads on 8 workers
//
//	spexp -check            # correctness harness: invariant suite over all workloads
//	spexp -check -j 8       # same, on 8 workers
//
//	spexp -bench                         # hot-path stage benchmarks -> BENCH_hotpath.json
//	spexp -bench -bench-label optimized  # record this measurement under a label
//	spexp -bench -bench-stages project,cluster  # measure only the named stages
//	spexp -bench -bench-stages pipeline_e2e_stream -scale 100  # amplified streaming run
//
//	spexp -fig all -metrics out.json        # + metrics snapshot & BENCH_obs.json
//	spexp -fig 7 -trace-out trace.json      # + Chrome trace (chrome://tracing)
//	spexp -fig all -pprof localhost:6060    # + live net/http/pprof server
//
// -check replaces figure generation with the invariant suite (see
// internal/check): differential backend oracle (-O0 / optimized / stack
// outputs and mapped marker traces must agree), segmentation tiling,
// clustering sanity, and detector/instrumentation equivalence, evaluated
// for every workload on the same artifact cache and worker pool the
// figures use. Any violation exits 1.
//
// Figure 5 covers the paper's Figures 5 and 6 (one comparison), and
// Figures 7/8/9 share their underlying runs, as do 11/12.
//
// Workloads are evaluated in parallel on -j workers (default GOMAXPROCS);
// tables are assembled in deterministic workload order, so stdout is
// byte-identical at any -j. The only exception is the §5.1 analysis-cost
// table, whose cells are wall-clock measurements. Per-figure timing lines
// go to stderr so stdout stays diffable — all observability output
// likewise goes to stderr or to the files named by flags, never stdout.
//
// Naming a figure that does not exist is an error (exit 2), not a silent
// no-op; the same convention covers -bench-stages stage names and
// -placement-modes mode names.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"phasemark/internal/experiments"
	"phasemark/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,7,8,9,10,11,12,crossbinary,speed,scales,placement,all")
	placementModes := flag.String("placement-modes", "", "with -fig placement: comma-separated minimized-mode subset to report (cross,limit; default all; unknown names exit 2)")
	checkRun := flag.Bool("check", false, "run the correctness harness instead of figures: differential backend oracle, segmentation/clustering invariants, detector/instrumentation equivalence over every workload (exit 1 on any violation)")
	benchRun := flag.Bool("bench", false, "benchmark the hot-path stages (internal/hotbench) instead of generating figures, recording ns/op, allocs/op and throughput per stage")
	benchOut := flag.String("bench-out", "BENCH_hotpath.json", "with -bench: write/merge the phasemark/bench-hotpath/v2 report here")
	benchLabel := flag.String("bench-label", "local", "with -bench: label for this measurement run (an existing run with the same label is updated stage-wise)")
	benchStages := flag.String("bench-stages", "", "with -bench: comma-separated stage subset to measure (default all; unknown names exit 2)")
	benchScale := flag.Int("scale", 1, "with -bench: trace amplifier for the streaming stages — the workload executes N times as one long trace (memory stays bounded; see pipeline_e2e_stream); must be >= 1")
	benchWorkers := flag.Int("workers", 0, "with -bench: worker count for the pipeline-parallel streaming stage (pipeline_e2e_stream_par); 0 = GOMAXPROCS, negative is a usage error")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "workloads to evaluate in parallel")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot (counters, histograms, per-stage durations) to this JSON file, plus BENCH_obs.json with per-stage totals")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of every pipeline stage span")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while figures run")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "spexp: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "(pprof listening on http://%s/debug/pprof/)\n", *pprofAddr)
	}
	if *traceOut != "" {
		obs.SetTraceCapture(true)
	}

	// Shared knob validation: a -scale below 1 or a negative -workers is a
	// usage error (exit 2, like unknown figure or stage names) — never a
	// silent clamp that would mislabel what a benchmark actually measured.
	if *benchScale < 1 {
		fmt.Fprintf(os.Stderr, "spexp: -scale must be >= 1, got %d\n", *benchScale)
		flag.Usage()
		os.Exit(2)
	}
	if *benchWorkers < 0 {
		fmt.Fprintf(os.Stderr, "spexp: -workers must be >= 0 (0 = GOMAXPROCS), got %d\n", *benchWorkers)
		flag.Usage()
		os.Exit(2)
	}

	if *benchRun {
		if err := runBench(*benchOut, *benchLabel, *benchStages, *benchScale, *benchWorkers); err != nil {
			fmt.Fprintf(os.Stderr, "spexp: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *checkRun {
		s := experiments.NewSuite()
		s.SetParallelism(*jobs)
		start := time.Now()
		sp := obs.StartSpan("check.suite", "")
		err := s.RunChecks(os.Stdout)
		sp.End()
		fmt.Fprintf(os.Stderr, "(invariant suite ran in %v)\n", time.Since(start).Round(time.Millisecond))
		if werr := writeObservability(*metricsOut, *traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "spexp: %v\n", werr)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexp: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want, err := parseFigs(*fig)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexp: %v\n", err)
		os.Exit(2)
	}

	s := experiments.NewSuite()
	s.SetParallelism(*jobs)
	if err := s.SetPlacementModes(*placementModes); err != nil {
		fmt.Fprintf(os.Stderr, "spexp: %v\n", err)
		os.Exit(2)
	}
	ran := 0
	for _, ff := range experiments.Figures {
		if !want["all"] && !want[ff.Name] {
			continue
		}
		start := time.Now()
		sp := obs.StartSpan("figure."+ff.Name, "")
		t, err := ff.Fn(s)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexp: figure %s: %v\n", ff.Name, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "(figure %s computed in %v)\n", ff.Name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "spexp: no figure matches %q\n", *fig)
		os.Exit(2)
	}

	if err := writeObservability(*metricsOut, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "spexp: %v\n", err)
		os.Exit(1)
	}
}

// parseFigs validates the comma-separated -fig list against the figure
// registry. Unknown names are an error: a typo must not silently produce
// an empty (or partial) report.
func parseFigs(figs string) (map[string]bool, error) {
	known := map[string]bool{"all": true}
	names := make([]string, 0, len(experiments.Figures)+1)
	for _, ff := range experiments.Figures {
		known[ff.Name] = true
		names = append(names, ff.Name)
	}
	names = append(names, "all")
	sort.Strings(names)

	want := map[string]bool{}
	var unknown []string
	for _, f := range strings.Split(figs, ",") {
		f = strings.TrimSpace(f)
		if f == "6" {
			f = "5" // Figure 5 covers the paper's Figures 5 and 6
		}
		if !known[f] {
			unknown = append(unknown, fmt.Sprintf("%q", f))
			continue
		}
		want[f] = true
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown figure %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(names, ", "))
	}
	return want, nil
}

// writeObservability emits the post-run artifacts: the metrics snapshot
// (plus BENCH_obs.json, the per-stage totals the benchmark trajectory
// tracks), the Chrome trace, and a human-readable summary on stderr.
func writeObservability(metricsOut, traceOut string) error {
	if metricsOut == "" && traceOut == "" {
		return nil
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := obs.WriteMetrics(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", metricsOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		b, err := os.Create("BENCH_obs.json")
		if err != nil {
			return err
		}
		if err := writeBenchObs(b); err != nil {
			b.Close()
			return fmt.Errorf("writing BENCH_obs.json: %w", err)
		}
		if err := b.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "(metrics written to %s, per-stage totals to BENCH_obs.json)\n", metricsOut)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "(trace written to %s; load in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
	obs.WriteSummary(os.Stderr)
	return nil
}
