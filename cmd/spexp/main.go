// Command spexp regenerates the paper's evaluation tables and figures on
// the synthetic workload suite.
//
// Usage:
//
//	spexp -fig all          # everything (minutes at -j 1; see -j)
//	spexp -fig 7            # one figure: 3,4,5,7,8,9,10,11,12
//	spexp -fig crossbinary  # the §6.2.1 cross-binary study
//	spexp -fig speed        # the §5.1 selection-cost table
//	spexp -fig all -j 8     # profile workloads on 8 workers
//
// Figure 5 covers the paper's Figures 5 and 6 (one comparison), and
// Figures 7/8/9 share their underlying runs, as do 11/12.
//
// Workloads are evaluated in parallel on -j workers (default GOMAXPROCS);
// tables are assembled in deterministic workload order, so stdout is
// byte-identical at any -j. The only exception is the §5.1 analysis-cost
// table, whose cells are wall-clock measurements. Per-figure timing lines
// go to stderr so stdout stays diffable.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"phasemark/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,7,8,9,10,11,12,crossbinary,speed,scales,all")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "workloads to evaluate in parallel")
	flag.Parse()

	s := experiments.NewSuite()
	s.SetParallelism(*jobs)
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		f = strings.TrimSpace(f)
		if f == "6" {
			f = "5"
		}
		want[f] = true
	}
	ran := 0
	for _, ff := range experiments.Figures {
		if !want["all"] && !want[ff.Name] {
			continue
		}
		start := time.Now()
		t, err := ff.Fn(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexp: figure %s: %v\n", ff.Name, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "(figure %s computed in %v)\n", ff.Name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "spexp: no figure matches %q\n", *fig)
		os.Exit(2)
	}
}
