// Command spexp regenerates the paper's evaluation tables and figures on
// the synthetic workload suite.
//
// Usage:
//
//	spexp -fig all          # everything (several minutes)
//	spexp -fig 7            # one figure: 3,4,5,7,8,9,10,11,12
//	spexp -fig crossbinary  # the §6.2.1 cross-binary study
//	spexp -fig speed        # the §5.1 selection-cost table
//
// Figure 5 covers the paper's Figures 5 and 6 (one comparison), and
// Figures 7/8/9 share their underlying runs, as do 11/12.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"phasemark/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,7,8,9,10,11,12,crossbinary,speed,scales,all")
	flag.Parse()

	s := experiments.NewSuite()
	type figFn struct {
		name string
		fn   func() (*experiments.Table, error)
	}
	all := []figFn{
		{"3", s.Fig3},
		{"4", s.Fig4},
		{"5", s.Fig56},
		{"7", s.Fig7},
		{"8", s.Fig8},
		{"9", s.Fig9},
		{"10", s.Fig10},
		{"11", s.Fig11},
		{"12", s.Fig12},
		{"crossbinary", s.CrossBinary},
		{"speed", s.SelectionSpeed},
		{"scales", s.Scales},
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		f = strings.TrimSpace(f)
		if f == "6" {
			f = "5"
		}
		want[f] = true
	}
	ran := 0
	for _, ff := range all {
		if !want["all"] && !want[ff.name] {
			continue
		}
		start := time.Now()
		t, err := ff.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexp: figure %s: %v\n", ff.name, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Printf("(figure %s computed in %v)\n\n", ff.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "spexp: no figure matches %q\n", *fig)
		os.Exit(2)
	}
}
