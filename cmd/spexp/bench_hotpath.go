package main

import (
	"fmt"
	"os"

	"phasemark/internal/hotbench"
)

// runBench measures the shared hot-path benchmark stages
// (internal/hotbench — the same suite CI's perf gate runs as
// BenchmarkHotpath) and records them under label in the
// phasemark/bench-hotpath/v1 report at outPath. An existing run with the
// same label is replaced in place; other runs are preserved, so the file
// accumulates the before/after history of performance work. Progress and
// per-stage results go to stderr; stdout is untouched.
func runBench(outPath, label string) error {
	rep, err := hotbench.LoadReport(outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchmarking hot-path stages (label %q):\n", label)
	run, err := hotbench.Measure(label, os.Stderr)
	if err != nil {
		return err
	}
	rep.SetRun(run)
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", outPath, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "(hot-path benchmark results written to %s)\n", outPath)
	return nil
}
