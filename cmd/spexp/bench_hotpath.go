package main

import (
	"fmt"
	"os"
	"strings"

	"phasemark/internal/hotbench"
)

// runBench measures the shared hot-path benchmark stages
// (internal/hotbench — the same suite CI's perf gate runs as
// BenchmarkHotpath) and records them under label in the
// phasemark/bench-hotpath/v2 report at outPath. stageFilter selects a
// comma-separated subset of stages (empty = all); naming a stage that
// does not exist is a usage error (exit 2), matching the -fig
// convention. scale is the trace amplifier applied to the streaming
// stages and workers the pipeline-parallel stage's worker count (see
// hotbench.StagesScaled); main validates both before calling. An
// existing run with the same label
// is updated stage-wise; other runs and unmeasured stages are preserved,
// so the file accumulates the before/after history of performance work.
// Progress and per-stage results go to stderr; stdout is untouched.
func runBench(outPath, label, stageFilter string, scale, workers int) error {
	stages := hotbench.StagesScaled(scale, workers)
	if stageFilter != "" {
		var names []string
		for _, n := range strings.Split(stageFilter, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		var err error
		stages, err = hotbench.StagesNamed(names, scale, workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexp: %v\n", err)
			os.Exit(2)
		}
	}
	rep, err := hotbench.LoadReport(outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchmarking hot-path stages (label %q):\n", label)
	run, err := hotbench.Measure(label, stages, os.Stderr)
	if err != nil {
		return err
	}
	rep.SetRun(run)
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", outPath, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "(hot-path benchmark results written to %s)\n", outPath)
	if rss, ok := peakRSSKB(); ok {
		fmt.Fprintf(os.Stderr, "peak-rss-kb: %d\n", rss)
	}
	return nil
}

// peakRSSKB reports the process's high-water resident set size in
// kilobytes, read from /proc/self/status (Linux only; ok is false
// elsewhere). CI's memory-bound smoke asserts on this line after running
// the streaming stage at a large -scale: a bounded pipeline's RSS must
// not grow with the amplified trace length.
func peakRSSKB() (int64, bool) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, found := strings.CutPrefix(line, "VmHWM:"); found {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				var kb int64
				if _, err := fmt.Sscan(f[0], &kb); err == nil {
					return kb, true
				}
			}
		}
	}
	return 0, false
}
