package main

import (
	"strings"
	"testing"

	"phasemark/internal/experiments"
)

func TestParseFigsAcceptsKnownNamesAndAlias(t *testing.T) {
	want, err := parseFigs("7, 6,crossbinary")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"7", "5", "crossbinary"} {
		if !want[name] {
			t.Errorf("%q not selected: %v", name, want)
		}
	}
	if want["6"] {
		t.Error("figure 6 must alias to 5, not appear itself")
	}
}

func TestParseFigsRejectsUnknownNames(t *testing.T) {
	_, err := parseFigs("7,bogus,13")
	if err == nil {
		t.Fatal("expected an error for unknown figure names")
	}
	for _, frag := range []string{`"bogus"`, `"13"`, "known:"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
	// A single typo is also fatal — no silent partial run.
	if _, err := parseFigs("al"); err == nil {
		t.Error("expected an error for \"al\"")
	}
}

func TestSetPlacementModesMirrorsFigConventions(t *testing.T) {
	s := experiments.NewSuite()
	if err := s.SetPlacementModes(" limit , cross"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPlacementModes(""); err != nil {
		t.Fatal(err)
	}
	err := s.SetPlacementModes("limit,bogus")
	if err == nil {
		t.Fatal("expected an error for unknown placement modes")
	}
	for _, frag := range []string{`"bogus"`, "known:", "cross", "limit"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}
