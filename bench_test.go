package phasemark_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (regenerating the same rows/series), plus microbenchmarks for
// the analysis itself and ablation benchmarks for the design choices
// DESIGN.md calls out. Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report their headline numbers as custom metrics so the
// shape comparison (who wins, by what factor) is visible in benchmark
// output too; the full tables come from `go run ./cmd/spexp -fig all`.

import (
	"strconv"
	"strings"
	"testing"

	"phasemark"
	"phasemark/internal/core"
	"phasemark/internal/experiments"
	"phasemark/internal/minivm"
	"phasemark/internal/sequitur"
	"phasemark/internal/trace"
	"phasemark/internal/workloads"
)

// sharedSuite memoizes profiles/traces across figure benchmarks, as spexp
// does, so the full bench run stays tractable.
var sharedSuite = experiments.NewSuite()

// avgColumn extracts the avg-row value of a named column. A missing
// column or unparseable cell fails the benchmark: a silent 0 here would
// report a fake headline metric after a table rename.
func avgColumn(b *testing.B, t *experiments.Table, col string) float64 {
	b.Helper()
	ci := -1
	for i, c := range t.Cols {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		b.Fatalf("avgColumn: no column %q in table (cols: %v)", col, t.Cols)
	}
	if len(t.Rows) == 0 {
		b.Fatalf("avgColumn: table with column %q has no rows", col)
	}
	last := t.Rows[len(t.Rows)-1] // avg row
	s := strings.TrimSuffix(strings.TrimSuffix(last[ci], "%"), "M")
	fields := strings.Fields(s)
	if len(fields) == 0 {
		b.Fatalf("avgColumn: empty avg cell in column %q", col)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		b.Fatalf("avgColumn: cannot parse avg cell %q in column %q: %v", last[ci], col, err)
	}
	return v
}

func BenchmarkFig3TimeVarying(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedSuite.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4CrossBinary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedSuite.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Projection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedSuite.Fig56(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7IntervalLength(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = sharedSuite.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, t, "no-limit self"), "avgIntervalM/noLimitSelf")
	b.ReportMetric(avgColumn(b, t, "limit 100k-2m"), "avgIntervalM/limit")
}

func BenchmarkFig8PhaseCount(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = sharedSuite.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, t, "BBV"), "phases/BBV")
	b.ReportMetric(avgColumn(b, t, "no-limit self"), "phases/noLimitSelf")
}

func BenchmarkFig9CoV(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = sharedSuite.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, t, "no-limit self"), "covCPIpct/markers")
	b.ReportMetric(avgColumn(b, t, "100k whole"), "covCPIpct/wholeProgram")
}

func BenchmarkFig10CacheReconfig(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = sharedSuite.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, t, "SPM-Cross"), "avgCacheKB/SPMCross")
	b.ReportMetric(avgColumn(b, t, "BestFixed"), "avgCacheKB/bestFixed")
}

func BenchmarkFig11SimTime(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = sharedSuite.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, t, "VLI_99%"), "simInstrM/VLI99")
	b.ReportMetric(avgColumn(b, t, "SP_100k"), "simInstrM/SP100k")
}

func BenchmarkFig12CPIError(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = sharedSuite.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgColumn(b, t, "VLI_99%"), "cpiErrPct/VLI99")
	b.ReportMetric(avgColumn(b, t, "SP_100k"), "cpiErrPct/SP100k")
}

func BenchmarkCrossBinaryTraces(b *testing.B) {
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = sharedSuite.CrossBinary(); err != nil {
			b.Fatal(err)
		}
	}
	matches := 0
	for _, row := range t.Rows {
		if row[len(row)-1] == "YES" {
			matches++
		}
	}
	b.ReportMetric(float64(matches), "programsWithIdenticalTraces")
}

// BenchmarkMarkerSelection times the selection algorithm alone on all
// profiled graphs — the paper's "runs in seconds" claim (§5.1); here it is
// microseconds because the call-loop graphs are small, and the point is
// the O(E + N log N) shape.
func BenchmarkMarkerSelection(b *testing.B) {
	graphs := make([]*phasemark.Graph, 0, 16)
	for _, w := range workloads.All() {
		prog := w.MustCompile(false)
		g, err := phasemark.Profile(prog, w.Train...)
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			phasemark.Select(g, phasemark.SelectOptions{ILower: experiments.ILower})
		}
	}
}

// BenchmarkInterpreter measures raw execution speed of the minivm
// substrate (no observers).
func BenchmarkInterpreter(b *testing.B) {
	w, err := workloads.ByName("applu")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.MustCompile(true)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m := minivm.NewMachine(prog, nil)
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
		instrs = m.Instructions()
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkProfilingOverhead measures the cost of building the call-loop
// graph relative to plain execution.
func BenchmarkProfilingOverhead(b *testing.B) {
	w, err := workloads.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.MustCompile(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phasemark.Profile(prog, w.Train...); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationCoV measures the Fig-9 style per-phase CoV of CPI on the ref
// input for a given selection variant, averaged over three representative
// programs (one regular, one alternating, one irregular).
func ablationCoV(b *testing.B, opts phasemark.SelectOptions) (cov float64, markers int) {
	for _, name := range []string{"applu", "gzip", "gcc"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := w.MustCompile(false)
		g, err := phasemark.Profile(prog, w.Ref...)
		if err != nil {
			b.Fatal(err)
		}
		set := phasemark.Select(g, opts)
		markers += len(set.Markers)
		res, err := phasemark.Segment(prog, set, w.Ref...)
		if err != nil {
			b.Fatal(err)
		}
		cov += phasemark.PhaseCoV(res.Intervals, phasemark.IntervalPhase, phasemark.CPIMetric).CoV
	}
	return cov / 3, markers
}

// BenchmarkAblationFlatCoV compares the paper's scaled per-edge CoV
// threshold against a flat avg-only threshold.
func BenchmarkAblationFlatCoV(b *testing.B) {
	var covBase, covFlat float64
	var mBase, mFlat int
	for i := 0; i < b.N; i++ {
		covBase, mBase = ablationCoV(b, phasemark.SelectOptions{ILower: experiments.ILower})
		covFlat, mFlat = ablationCoV(b, phasemark.SelectOptions{ILower: experiments.ILower, FlatCoV: true})
	}
	b.ReportMetric(100*covBase, "covCPIpct/scaled")
	b.ReportMetric(100*covFlat, "covCPIpct/flat")
	b.ReportMetric(float64(mBase), "markers/scaled")
	b.ReportMetric(float64(mFlat), "markers/flat")
}

// BenchmarkAblationNoHeadBody drops head-node edges, simulating a graph
// without the paper's head/body split (§4.2): entry-to-exit aggregation
// disappears and only per-iteration edges remain candidates.
func BenchmarkAblationNoHeadBody(b *testing.B) {
	var covBase, covNoHead float64
	var mBase, mNoHead int
	for i := 0; i < b.N; i++ {
		covBase, mBase = ablationCoV(b, phasemark.SelectOptions{ILower: experiments.ILower})
		covNoHead, mNoHead = ablationCoV(b, phasemark.SelectOptions{ILower: experiments.ILower, NoHeads: true})
	}
	b.ReportMetric(100*covBase, "covCPIpct/full")
	b.ReportMetric(100*covNoHead, "covCPIpct/noHeads")
	b.ReportMetric(float64(mBase), "markers/full")
	b.ReportMetric(float64(mNoHead), "markers/noHeads")
}

// BenchmarkSegmentation measures marker detection overhead during
// execution (the runtime cost of "inserted instrumentation").
func BenchmarkSegmentation(b *testing.B) {
	w, err := workloads.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.MustCompile(false)
	g, err := phasemark.Profile(prog, w.Train...)
	if err != nil {
		b.Fatal(err)
	}
	set := phasemark.Select(g, phasemark.SelectOptions{ILower: experiments.ILower})
	cfg := trace.Config{Prog: prog, Args: w.Train, Markers: set, SkipBBV: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphConstruction isolates profiling's graph updates using a
// recursive, loop-heavy program.
func BenchmarkGraphConstruction(b *testing.B) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.MustCompile(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewProfiler(prog)
		m := minivm.NewMachine(prog, p)
		if _, err := m.Run(w.Train...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequiturBaseline measures SEQUITUR grammar inference over a
// dynamic block trace — the per-trace analysis cost the prior approaches
// pay where marker selection runs on the tiny call-loop graph
// (BenchmarkMarkerSelection); the §5.1 speed comparison.
func BenchmarkSequiturBaseline(b *testing.B) {
	w, err := workloads.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.MustCompile(false)
	tr := &blockTrace{cap: 200_000}
	m := minivm.NewMachine(prog, tr)
	if _, err := m.Run(w.Train...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := sequitur.Build(tr.seq)
		if g.InputLen() != len(tr.seq) {
			b.Fatal("bad build")
		}
	}
	b.ReportMetric(float64(len(tr.seq)), "traceEvents")
}

type blockTrace struct {
	minivm.NopObserver
	cap int
	seq []int
}

func (t *blockTrace) OnBlock(blk *minivm.Block) {
	if len(t.seq) < t.cap {
		t.seq = append(t.seq, blk.ID)
	}
}
