package check

import (
	"strings"
	"testing"

	"phasemark/internal/bbv"
	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/simpoint"
	"phasemark/internal/trace"
)

// phasedSrc alternates two loop-dominated procedures and emits a running
// checksum, so every invariant (segmentation tiling, the backend oracle,
// instrumentation equivalence) has real structure to bite on.
const phasedSrc = `
array buf[512];
proc squeeze(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		buf[i % 512] = buf[i % 512] + i;
		s = s + buf[i % 512];
	}
	return s;
}
proc stretch(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + buf[(i * 7) % 512] * 3;
	}
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + squeeze(n);
		s = s + stretch(n);
		out(s);
	}
	return s;
}
`

var phasedArgs = []int64{20, 400}

func phasedSetup(t *testing.T) (*minivm.Program, *core.MarkerSet) {
	t.Helper()
	prog, err := compile.CompileSource(phasedSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ProfileRun(prog, phasedArgs...)
	if err != nil {
		t.Fatal(err)
	}
	set := core.SelectMarkers(g, core.SelectOptions{ILower: 1000})
	if len(set.Markers) == 0 {
		t.Fatal("no markers selected")
	}
	return prog, set
}

func mustTrace(t *testing.T, cfg trace.Config) *trace.Result {
	t.Helper()
	res, err := trace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInvariantsHoldOnPhasedProgram is the positive path: a healthy
// pipeline run must pass every check in the harness.
func TestInvariantsHoldOnPhasedProgram(t *testing.T) {
	prog, set := phasedSetup(t)

	fixed := mustTrace(t, trace.Config{Prog: prog, Args: phasedArgs, FixedLen: 1000})
	if err := Segmentation(fixed, -1); err != nil {
		t.Errorf("fixed-length segmentation: %v", err)
	}
	vli := mustTrace(t, trace.Config{Prog: prog, Args: phasedArgs, Markers: set})
	if err := Segmentation(vli, len(set.Markers)); err != nil {
		t.Errorf("marker segmentation: %v", err)
	}

	cl := simpoint.Classify(fixed, simpoint.Options{KMax: 5, Seed: 1})
	if err := Clustering(cl, len(fixed.Intervals)); err != nil {
		t.Errorf("clustering: %v", err)
	}

	if err := DetectorInstrument(prog, set, phasedArgs...); err != nil {
		t.Errorf("detector/instrument: %v", err)
	}
	if err := CrossBinary(phasedSrc, prog, set, phasedArgs...); err != nil {
		t.Errorf("cross-binary: %v", err)
	}
}

// cloneResult deep-copies a traced result so tests can corrupt one field
// without disturbing the original.
func cloneResult(res *trace.Result) *trace.Result {
	out := *res
	out.Intervals = make([]*trace.Interval, len(res.Intervals))
	for i, iv := range res.Intervals {
		c := *iv
		c.BBV = bbv.Vector{
			Idx: append([]int32(nil), iv.BBV.Idx...),
			Val: append([]float64(nil), iv.BBV.Val...),
		}
		out.Intervals[i] = &c
	}
	return &out
}

// TestSegmentationRejectsCorruption corrupts a healthy traced result one
// field at a time and asserts the matching invariant trips.
func TestSegmentationRejectsCorruption(t *testing.T) {
	prog, set := phasedSetup(t)
	res := mustTrace(t, trace.Config{Prog: prog, Args: phasedArgs, Markers: set})
	n := len(set.Markers)
	if len(res.Intervals) < 3 {
		t.Fatalf("need >= 3 intervals, got %d", len(res.Intervals))
	}
	cases := []struct {
		name    string
		corrupt func(r *trace.Result)
		want    string
	}{
		{"gap", func(r *trace.Result) { r.Intervals[1].Start++ }, "gap or overlap"},
		{"zero-length", func(r *trace.Result) { r.Intervals[1].End = r.Intervals[1].Start }, "empty or inverted"},
		{"bad-index", func(r *trace.Result) { r.Intervals[2].Index = 7 }, "carries index"},
		{"bbv-mass", func(r *trace.Result) { r.Intervals[1].BBV.Val[0] += 3 }, "BBV mass"},
		{"bad-phase", func(r *trace.Result) { r.Intervals[1].PhaseID = n + 5 }, "out of range"},
		{"short-total", func(r *trace.Result) { r.Instructions += 100 }, "execution ran"},
		{"fires", func(r *trace.Result) { r.MarkerFires = 0 }, "marker fires"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := cloneResult(res)
			tc.corrupt(bad)
			err := Segmentation(bad, n)
			if err == nil {
				t.Fatal("corruption not caught")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want mention of %q", err, tc.want)
			}
		})
	}
	// Fixed-length mode has its own phase rule: any non-prologue phase ID
	// is a violation.
	fixed := mustTrace(t, trace.Config{Prog: prog, Args: phasedArgs, FixedLen: 1000})
	bad := cloneResult(fixed)
	bad.Intervals[0].PhaseID = 0
	if err := Segmentation(bad, -1); err == nil || !strings.Contains(err.Error(), "carries phase") {
		t.Fatalf("fixed-mode phase leak not caught: %v", err)
	}
	bad = cloneResult(fixed)
	bad.MarkerFires = 3
	if err := Segmentation(bad, -1); err == nil || !strings.Contains(err.Error(), "marker fires") {
		t.Fatalf("fixed-mode marker fires not caught: %v", err)
	}
}

func TestClusteringRejectsViolations(t *testing.T) {
	valid := func() *simpoint.Clustering {
		return &simpoint.Clustering{
			K:       2,
			Assign:  []int{0, 1, 0},
			Weights: []float64{0.5, 0.5},
		}
	}
	if err := Clustering(valid(), 3); err != nil {
		t.Fatalf("valid clustering rejected: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func(c *simpoint.Clustering)
		want    string
	}{
		{"assign-range", func(c *simpoint.Clustering) { c.Assign[1] = 2 }, "assigned to cluster"},
		{"assign-negative", func(c *simpoint.Clustering) { c.Assign[1] = -1 }, "assigned to cluster"},
		{"empty-cluster", func(c *simpoint.Clustering) { c.Assign[1] = 0 }, "empty"},
		{"assign-arity", func(c *simpoint.Clustering) { c.Assign = c.Assign[:2] }, "assignments for"},
		{"weight-sum", func(c *simpoint.Clustering) { c.Weights[0] = 0.7 }, "sum"},
		{"weight-negative", func(c *simpoint.Clustering) { c.Weights = []float64{1.5, -0.5} }, "weight"},
		{"weight-arity", func(c *simpoint.Clustering) { c.Weights = c.Weights[:1] }, "weights for"},
		{"bad-k", func(c *simpoint.Clustering) { c.K = 0 }, "K=0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid()
			tc.corrupt(c)
			if err := Clustering(c, 3); err == nil {
				t.Fatal("violation not caught")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want mention of %q", err, tc.want)
			}
		})
	}
	// numPoints == 0 is the documented degenerate pass.
	if err := Clustering(&simpoint.Clustering{}, 0); err != nil {
		t.Fatalf("degenerate empty clustering rejected: %v", err)
	}
}

// TestCrossBinaryCatchesWrongTrace pairs the reference binary with a
// source whose builds behave differently, proving the differential
// comparison actually discriminates rather than vacuously passing.
func TestCrossBinaryCatchesWrongTrace(t *testing.T) {
	prog, set := phasedSetup(t)
	// Same binary, but a source whose optimized build computes different
	// output (an extra out call) — the oracle must flag the divergence.
	divergent := strings.Replace(phasedSrc, "out(s);", "out(s); out(r);", 1)
	if divergent == phasedSrc {
		t.Fatal("replacement failed")
	}
	err := CrossBinary(divergent, prog, set, phasedArgs...)
	if err == nil {
		t.Fatal("oracle accepted binaries from a different source")
	}
}
