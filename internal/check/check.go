// Package check is the correctness harness: a differential backend
// oracle plus invariant checks over every stage of the phase-marker
// pipeline. The paper's headline claims are correctness claims — marker
// firings are identical across compilations of one source (§6.2.1),
// variable-length intervals tile execution exactly, and the physically
// instrumented binary reproduces the analysis-side detector — and this
// package turns each claim into a checkable property.
//
// The checks are pure functions from pipeline artifacts to an error
// (nil = invariant holds), so they run equally from unit tests, from
// fuzz targets, and from `spexp -check`, which sweeps them over every
// workload (see internal/experiments.RunChecks).
package check

import (
	"fmt"
	"math"

	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/crossbin"
	"phasemark/internal/minivm"
	"phasemark/internal/simpoint"
	"phasemark/internal/trace"
)

// Segmentation verifies that a traced execution's intervals exactly tile
// [0, Instructions): they start at zero, abut with no gaps or overlaps,
// end at the total instruction count, and none is empty. When basic block
// vectors were collected, each interval's BBV mass must equal its
// instruction count (block weights are integers, so the sums are exact in
// float64). numMarkers is the size of the cutting marker set, or -1 for
// fixed-length segmentation; for marker-cut runs the interval count and
// phase IDs must be consistent with MarkerFires.
func Segmentation(res *trace.Result, numMarkers int) error {
	if res == nil {
		return fmt.Errorf("segmentation: nil result")
	}
	ivs := res.Intervals
	if res.Instructions == 0 {
		return fmt.Errorf("segmentation: zero-instruction execution")
	}
	if len(ivs) == 0 {
		return fmt.Errorf("segmentation: no intervals for %d instructions", res.Instructions)
	}
	bbvPresent := false
	for _, iv := range ivs {
		if len(iv.BBV.Idx) > 0 {
			bbvPresent = true
			break
		}
	}
	var cursor uint64
	for i, iv := range ivs {
		if iv.Index != i {
			return fmt.Errorf("segmentation: interval %d carries index %d", i, iv.Index)
		}
		if iv.Start != cursor {
			return fmt.Errorf("segmentation: interval %d starts at %d, previous ended at %d (gap or overlap)",
				i, iv.Start, cursor)
		}
		if iv.End <= iv.Start {
			return fmt.Errorf("segmentation: interval %d is empty or inverted: [%d, %d)", i, iv.Start, iv.End)
		}
		cursor = iv.End
		if bbvPresent {
			if mass := iv.BBV.L1(); mass != float64(iv.Len()) {
				return fmt.Errorf("segmentation: interval %d BBV mass %.1f != length %d",
					i, mass, iv.Len())
			}
		}
		switch {
		case numMarkers < 0:
			if iv.PhaseID != trace.ProloguePhase {
				return fmt.Errorf("segmentation: fixed-length interval %d carries phase %d", i, iv.PhaseID)
			}
		default:
			if iv.PhaseID != trace.ProloguePhase && (iv.PhaseID < 0 || iv.PhaseID >= numMarkers) {
				return fmt.Errorf("segmentation: interval %d phase %d out of range [0,%d)", i, iv.PhaseID, numMarkers)
			}
		}
	}
	if cursor != res.Instructions {
		return fmt.Errorf("segmentation: intervals end at %d, execution ran %d instructions",
			cursor, res.Instructions)
	}
	if numMarkers >= 0 {
		// Every interval after the prologue was opened by a firing; firings
		// at an instant already cut (or at the very end) open no interval —
		// so the interval count is bounded by the firing count plus the
		// final prologue-closed interval.
		if uint64(len(ivs)) > res.MarkerFires+1 {
			return fmt.Errorf("segmentation: %d intervals from only %d marker fires",
				len(ivs), res.MarkerFires)
		}
	} else if res.MarkerFires != 0 {
		return fmt.Errorf("segmentation: fixed-length run reports %d marker fires", res.MarkerFires)
	}
	return nil
}

// Streaming verifies the streaming/materializing equivalence claim: a
// chunked, arena-recycling trace.Run over cfg must reproduce the
// materialized reference bit-for-bit — every interval (bounds, phase,
// performance counters, BBV), the run totals, and the online per-chunk
// projection (simpoint.StreamProjector) against the batch projection of
// the same intervals. The comparison is incremental — each chunk is
// checked and released — so the check itself stays memory-bounded on the
// streaming side. cfg must be the configuration want was produced with
// (any Sink/ChunkSize in it is replaced).
func Streaming(cfg trace.Config, want *trace.Result) error {
	if want == nil {
		return fmt.Errorf("streaming: nil reference result")
	}
	const dims, seed = 15, 0xC1
	proj := simpoint.NewStreamProjector(want.NumBlocks, dims, seed)
	next := 0
	cfg.ChunkSize = 64
	cfg.Sink = func(chunk []trace.Interval) error {
		n, err := compareStreamed(chunk, want.Intervals, next)
		if err != nil {
			return err
		}
		next = n
		proj.ObserveChunk(chunk)
		return nil
	}
	sres, err := trace.Run(cfg)
	if err != nil {
		return fmt.Errorf("streaming: %w", err)
	}
	if next != len(want.Intervals) {
		return fmt.Errorf("streaming: %d intervals streamed, %d materialized", next, len(want.Intervals))
	}
	if sres.Intervals != nil {
		return fmt.Errorf("streaming: run materialized %d intervals despite sink", len(sres.Intervals))
	}
	if sres.Instructions != want.Instructions || sres.Total != want.Total ||
		sres.MarkerFires != want.MarkerFires || sres.NumBlocks != want.NumBlocks {
		return fmt.Errorf("streaming: totals differ: instrs %d/%d, fires %d/%d",
			sres.Instructions, want.Instructions, sres.MarkerFires, want.MarkerFires)
	}
	// Online projection must equal the batch projection of the reference.
	batch, batchW := simpoint.ProjectIntervals(want.Intervals, want.NumBlocks, dims, seed)
	pts, weights := proj.Matrix()
	if pts.N != batch.N {
		return fmt.Errorf("streaming: projected %d rows, batch %d", pts.N, batch.N)
	}
	for i := range batch.Data {
		if pts.Data[i] != batch.Data[i] {
			return fmt.Errorf("streaming: projection differs at element %d (row %d)", i, i/dims)
		}
	}
	for i := range batchW {
		if weights[i] != batchW[i] {
			return fmt.Errorf("streaming: projection weight %d differs", i)
		}
	}
	return nil
}

// compareStreamed checks one streamed chunk against the materialized
// reference starting at interval index next, returning the new cursor.
// Every field must match bit-for-bit, including each BBV entry.
func compareStreamed(chunk []trace.Interval, want []*trace.Interval, next int) (int, error) {
	for i := range chunk {
		got := &chunk[i]
		if next >= len(want) {
			return next, fmt.Errorf("streamed interval %d beyond the %d materialized", got.Index, len(want))
		}
		w := want[next]
		if got.Index != w.Index || got.Start != w.Start || got.End != w.End ||
			got.PhaseID != w.PhaseID || got.Perf != w.Perf {
			return next, fmt.Errorf("interval %d: streamed {idx %d [%d,%d) phase %d} vs materialized {idx %d [%d,%d) phase %d}",
				next, got.Index, got.Start, got.End, got.PhaseID, w.Index, w.Start, w.End, w.PhaseID)
		}
		if len(got.BBV.Idx) != len(w.BBV.Idx) {
			return next, fmt.Errorf("interval %d: streamed BBV has %d entries, materialized %d",
				next, len(got.BBV.Idx), len(w.BBV.Idx))
		}
		for j := range got.BBV.Idx {
			if got.BBV.Idx[j] != w.BBV.Idx[j] || got.BBV.Val[j] != w.BBV.Val[j] {
				return next, fmt.Errorf("interval %d: BBV entry %d differs", next, j)
			}
		}
		next++
	}
	return next, nil
}

// StreamingParallel verifies the pipeline-parallel engine's bit-identity
// claim: a trace.Run with Workers set — the record/replay split at scale
// 1, plus parallel chunk consumers (StreamProjector, StreamKMeans,
// CoVAccumulator via their ObserveChunkPar paths) — must reproduce the
// materialized reference interval-for-interval AND leave every analysis
// accumulator in a bit-identical state to the serial fold of the same
// reference, at workers 1, 4, and 16. cfg must be the configuration want
// was produced with (any Sink/ChunkSize/Workers in it is replaced).
func StreamingParallel(cfg trace.Config, want *trace.Result) error {
	if want == nil {
		return fmt.Errorf("streaming-parallel: nil reference result")
	}
	const dims, seed, streamK = 15, 0xC1, 8
	kmOpts := simpoint.Options{ForceK: streamK, Dims: dims, Seed: seed, Restarts: 2, MaxIters: 40, Workers: 1}

	// Reference accumulator states: the serial fold over the materialized
	// intervals. (The serial stream reproduces these bit-for-bit per
	// Streaming; re-deriving them from want avoids a third trace run.)
	refProj := simpoint.NewStreamProjector(want.NumBlocks, dims, seed)
	refKM := simpoint.NewStreamKMeans(want.NumBlocks, kmOpts)
	refCov := trace.NewCoVAccumulator(trace.IntervalPhase, trace.CPIMetric)
	for _, iv := range want.Intervals {
		refProj.Observe(iv)
		refKM.Observe(iv)
		refCov.Observe(iv)
	}
	refPts, refW := refProj.Matrix()
	refRes := refKM.Finish()
	refCovRes := refCov.Result()

	for _, workers := range []int{1, 4, 16} {
		c := cfg
		c.ChunkSize = 64
		c.Workers = workers
		proj := simpoint.NewStreamProjector(want.NumBlocks, dims, seed)
		km := simpoint.NewStreamKMeans(want.NumBlocks, kmOpts)
		cov := trace.NewCoVAccumulator(trace.IntervalPhase, trace.CPIMetric)
		next := 0
		c.Sink = func(chunk []trace.Interval) error {
			n, err := compareStreamed(chunk, want.Intervals, next)
			if err != nil {
				return err
			}
			next = n
			proj.ObserveChunkPar(chunk, workers)
			km.ObserveChunkPar(chunk, workers)
			cov.ObserveChunkPar(chunk, workers)
			return nil
		}
		sres, err := trace.Run(c)
		if err != nil {
			return fmt.Errorf("streaming-parallel: workers=%d: %w", workers, err)
		}
		if next != len(want.Intervals) {
			return fmt.Errorf("streaming-parallel: workers=%d: %d intervals streamed, %d materialized",
				workers, next, len(want.Intervals))
		}
		if sres.Instructions != want.Instructions || sres.Total != want.Total ||
			sres.MarkerFires != want.MarkerFires || sres.NumBlocks != want.NumBlocks {
			return fmt.Errorf("streaming-parallel: workers=%d: totals differ: instrs %d/%d, fires %d/%d",
				workers, sres.Instructions, want.Instructions, sres.MarkerFires, want.MarkerFires)
		}

		pts, weights := proj.Matrix()
		if pts.N != refPts.N {
			return fmt.Errorf("streaming-parallel: workers=%d: projected %d rows, reference %d", workers, pts.N, refPts.N)
		}
		for i := range refPts.Data {
			if pts.Data[i] != refPts.Data[i] {
				return fmt.Errorf("streaming-parallel: workers=%d: projection differs at element %d (row %d)",
					workers, i, i/dims)
			}
		}
		for i := range refW {
			if weights[i] != refW[i] {
				return fmt.Errorf("streaming-parallel: workers=%d: projection weight %d differs", workers, i)
			}
		}

		res := km.Finish()
		if res.K != refRes.K || res.Points != refRes.Points || res.SSE != refRes.SSE {
			return fmt.Errorf("streaming-parallel: workers=%d: clustering K/points/SSE %d/%d/%v, reference %d/%d/%v",
				workers, res.K, res.Points, res.SSE, refRes.K, refRes.Points, refRes.SSE)
		}
		for i := range refRes.Centers.Data {
			if res.Centers.Data[i] != refRes.Centers.Data[i] {
				return fmt.Errorf("streaming-parallel: workers=%d: centroid data differs at %d", workers, i)
			}
		}
		for i := range refRes.Mass {
			if res.Mass[i] != refRes.Mass[i] {
				return fmt.Errorf("streaming-parallel: workers=%d: centroid mass %d differs", workers, i)
			}
		}

		if got := cov.Result(); got != refCovRes {
			return fmt.Errorf("streaming-parallel: workers=%d: CoV %+v, reference %+v", workers, got, refCovRes)
		}
	}
	return nil
}

// Clustering verifies a SimPoint classification over numPoints intervals:
// assignments in range [0, K), at least one point per cluster (no empty
// clusters may survive in a chosen result), weights of the right arity
// that are non-negative and sum to 1.
func Clustering(c *simpoint.Clustering, numPoints int) error {
	if c == nil {
		return fmt.Errorf("clustering: nil clustering")
	}
	if numPoints == 0 {
		return nil // degenerate: nothing was clustered
	}
	if c.K < 1 {
		return fmt.Errorf("clustering: K=%d for %d points", c.K, numPoints)
	}
	if len(c.Assign) != numPoints {
		return fmt.Errorf("clustering: %d assignments for %d points", len(c.Assign), numPoints)
	}
	counts := make([]int, c.K)
	for i, a := range c.Assign {
		if a < 0 || a >= c.K {
			return fmt.Errorf("clustering: point %d assigned to cluster %d, K=%d", i, a, c.K)
		}
		counts[a]++
	}
	if numPoints >= c.K {
		for cl, n := range counts {
			if n == 0 {
				return fmt.Errorf("clustering: cluster %d of %d is empty", cl, c.K)
			}
		}
	}
	if len(c.Weights) != c.K {
		return fmt.Errorf("clustering: %d weights for K=%d", len(c.Weights), c.K)
	}
	var sum float64
	for cl, w := range c.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("clustering: cluster %d weight %v", cl, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("clustering: weights sum to %.12f, want 1", sum)
	}
	return nil
}

// DetectorInstrument verifies the detector/instrumentation equivalence
// claim: running the physically rewritten binary (core.Instrument) must
// reproduce the analysis-side detector's firing sequence marker-for-
// marker, and the inserted marks must not change the program's observable
// behavior (out() stream and return value).
func DetectorInstrument(prog *minivm.Program, set *core.MarkerSet, args ...int64) error {
	det, md, err := core.DetectFirings(prog, set, args...)
	if err != nil {
		return fmt.Errorf("detector/instrument: %w", err)
	}
	inst, mi, err := core.InstrumentedFirings(prog, set, args...)
	if err != nil {
		return fmt.Errorf("detector/instrument: %w", err)
	}
	if err := equalOutputs(md.Output(), mi.Output()); err != nil {
		return fmt.Errorf("detector/instrument: instrumentation changed behavior: %w", err)
	}
	if len(det) != len(inst) {
		return fmt.Errorf("detector/instrument: %d detector fires vs %d instrumented fires",
			len(det), len(inst))
	}
	for i := range det {
		if det[i].Marker != inst[i].Marker {
			return fmt.Errorf("detector/instrument: firing %d is marker %d in the detector, %d in the binary",
				i, det[i].Marker, inst[i].Marker)
		}
	}
	return nil
}

// Placement verifies the core.MinimizeMarkers contract for one program
// and input: min must be a strict-or-equal subset of full with every
// surviving marker unchanged, both sets run to the same instruction total,
// and the minimized firing sequence must be exactly the full sequence
// restricted to the kept markers — same instants, same markers, indices
// remapped. That restriction property is what makes pruning safe: kept
// markers fire identically with or without their pruned peers. When
// iupper > 0 the tiling bound is enforced too: the longest uncut stretch
// under the minimized set may exceed the full set's longest stretch by at
// most iupper (one pruned-dominator gap). Pass iupper == 0 to skip the
// bound — e.g. for cross-trained sets, where profile-derived static bounds
// do not transfer to the run input.
func Placement(prog *minivm.Program, full, min *core.MarkerSet, iupper uint64, args ...int64) error {
	if full == nil || min == nil {
		return fmt.Errorf("placement: nil marker set")
	}
	if len(min.Markers) > len(full.Markers) {
		return fmt.Errorf("placement: minimized set has %d markers, full set %d",
			len(min.Markers), len(full.Markers))
	}
	if len(full.Markers) > 0 && len(min.Markers) == 0 {
		return fmt.Errorf("placement: minimization emptied a %d-marker set", len(full.Markers))
	}
	fullBy := full.ByKey()
	remap := make(map[int]int, len(min.Markers)) // full index -> min index
	for i, m := range min.Markers {
		fi, ok := fullBy[m.Key]
		if !ok {
			return fmt.Errorf("placement: marker %s not in the full set", m.Key)
		}
		if full.Markers[fi] != m {
			return fmt.Errorf("placement: marker %s changed by minimization", m.Key)
		}
		remap[fi] = i
	}
	fullSeq, mf, err := core.DetectFirings(prog, full, args...)
	if err != nil {
		return fmt.Errorf("placement: full detect: %w", err)
	}
	minSeq, mm, err := core.DetectFirings(prog, min, args...)
	if err != nil {
		return fmt.Errorf("placement: minimized detect: %w", err)
	}
	if mf.Instructions() != mm.Instructions() {
		return fmt.Errorf("placement: instruction totals differ: full=%d minimized=%d",
			mf.Instructions(), mm.Instructions())
	}
	k := 0
	for _, f := range fullSeq {
		mi, kept := remap[f.Marker]
		if !kept {
			continue
		}
		if k >= len(minSeq) {
			return fmt.Errorf("placement: kept marker %s firing at %d missing from minimized run",
				min.Markers[mi].Key, f.At)
		}
		if minSeq[k].Marker != mi || minSeq[k].At != f.At {
			return fmt.Errorf("placement: firing %d diverges: full restricted to kept gives marker %d at %d, minimized run gives marker %d at %d",
				k, mi, f.At, minSeq[k].Marker, minSeq[k].At)
		}
		k++
	}
	if k != len(minSeq) {
		return fmt.Errorf("placement: minimized run fired %d times, restriction of full predicts %d",
			len(minSeq), k)
	}
	if iupper > 0 {
		total := mf.Instructions()
		fullGap := maxFiringGap(fullSeq, total)
		minGap := maxFiringGap(minSeq, total)
		if minGap > fullGap+iupper {
			return fmt.Errorf("placement: longest uncut stretch grew from %d to %d, beyond the iupper=%d allowance",
				fullGap, minGap, iupper)
		}
	}
	return nil
}

// maxFiringGap returns the longest uncut stretch over a run of total
// instructions (duplicate cut instants collapse).
func maxFiringGap(seq []core.Firing, total uint64) uint64 {
	var gap, prev uint64
	for _, f := range seq {
		if f.At == prev {
			continue
		}
		if d := f.At - prev; d > gap {
			gap = d
		}
		prev = f.At
	}
	if d := total - prev; d > gap {
		gap = d
	}
	return gap
}

// Backends compiles src with each differential-oracle backend: the -O0
// register binary (the analysis reference), the optimizing register
// build, and the stack-machine ISA.
func Backends(src string) (o0, opt, stack *minivm.Program, err error) {
	if o0, err = compile.CompileSource(src, compile.Options{}); err != nil {
		return nil, nil, nil, fmt.Errorf("backends: -O0: %w", err)
	}
	if opt, err = compile.CompileSource(src, compile.Options{Optimize: true}); err != nil {
		return nil, nil, nil, fmt.Errorf("backends: optimized: %w", err)
	}
	if stack, err = compile.CompileSource(src, compile.Options{Stack: true}); err != nil {
		return nil, nil, nil, fmt.Errorf("backends: stack: %w", err)
	}
	return o0, opt, stack, nil
}

// CrossBinary is the differential backend oracle for one source program:
// all three backends must produce identical observable output on args,
// and markers selected on the -O0 binary, mapped through source debug
// info (internal/crossbin), must fire identically on every binary. When a
// backend compiles some markers away, the surviving subset must still
// fire identically (crossbin.Restrict), matching the §6.2.1 protocol.
// prog must be the -O0 compilation of src that set was selected on.
func CrossBinary(src string, prog *minivm.Program, set *core.MarkerSet, args ...int64) error {
	_, opt, stack, err := Backends(src)
	if err != nil {
		return fmt.Errorf("cross-binary: %w", err)
	}
	seq0, out0, rv0, err := crossbin.TraceOutput(prog, set, args...)
	if err != nil {
		return fmt.Errorf("cross-binary: -O0: %w", err)
	}
	for _, tgt := range []struct {
		name string
		prog *minivm.Program
	}{{"optimized", opt}, {"stack", stack}} {
		mapped, rep, err := crossbin.MapMarkers(set, prog, tgt.prog)
		if err != nil {
			return fmt.Errorf("cross-binary: map to %s: %w", tgt.name, err)
		}
		ref := seq0
		if len(rep.Unmapped) > 0 {
			// Markers compiled away: the surviving subset must still agree.
			restricted := crossbin.Restrict(set, rep.Unmapped)
			if len(restricted.Markers) != rep.Mapped {
				return fmt.Errorf("cross-binary: %s: restrict kept %d markers, mapping kept %d",
					tgt.name, len(restricted.Markers), rep.Mapped)
			}
			if ref, _, _, err = crossbin.TraceOutput(prog, restricted, args...); err != nil {
				return fmt.Errorf("cross-binary: -O0 restricted: %w", err)
			}
		}
		seq, out, rv, err := crossbin.TraceOutput(tgt.prog, mapped, args...)
		if err != nil {
			return fmt.Errorf("cross-binary: %s: %w", tgt.name, err)
		}
		if rv != rv0 {
			return fmt.Errorf("cross-binary: %s returned %d, -O0 returned %d", tgt.name, rv, rv0)
		}
		if err := equalOutputs(out0, out); err != nil {
			return fmt.Errorf("cross-binary: %s output differs from -O0: %w", tgt.name, err)
		}
		if i := firstDiff(ref, seq); i >= 0 {
			return fmt.Errorf("cross-binary: %s marker trace diverges from -O0 at firing %d (of %d vs %d): %s",
				tgt.name, i, len(ref), len(seq), diffAt(ref, seq, i))
		}
	}
	return nil
}

// firstDiff returns the first index where two firing sequences differ
// (length counts), or -1 when identical.
func firstDiff(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

func diffAt(a, b []int, i int) string {
	get := func(s []int) string {
		if i < len(s) {
			return fmt.Sprintf("marker %d", s[i])
		}
		return "end of trace"
	}
	return fmt.Sprintf("%s vs %s", get(a), get(b))
}

func equalOutputs(a, b []int64) error {
	if len(a) != len(b) {
		return fmt.Errorf("out() stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("out()[%d] = %d vs %d", i, a[i], b[i])
		}
	}
	return nil
}
