package compile

import (
	"fmt"
	"strings"
	"testing"

	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

// progGen emits random but well-formed mini-language programs. The
// generator is careful to produce terminating programs (loops have bounded
// trip counts) with no division (so no data-dependent traps), making
// "same observable output in both compilation modes" a checkable property.
type progGen struct {
	r      *stats.RNG
	sb     strings.Builder
	vars   []string // in-scope scalar names
	arrays []string
	procs  []string // callable procedure names (already emitted)
	depth  int
}

func (g *progGen) pick(xs []string) string { return xs[g.r.Intn(len(xs))] }

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200)-100)
		case 1:
			if len(g.vars) > 0 {
				return g.pick(g.vars)
			}
			return "7"
		case 2:
			if len(g.arrays) > 0 {
				return fmt.Sprintf("%s[(%s) & 63]", g.pick(g.arrays), g.expr(0))
			}
			return "11"
		default:
			if len(g.procs) > 0 && g.r.Intn(2) == 0 {
				return fmt.Sprintf("%s(%s)", g.pick(g.procs), g.expr(depth-1))
			}
			return fmt.Sprintf("%d", g.r.Intn(50))
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>",
		"<", "<=", ">", ">=", "==", "!=", "&&", "||"}
	op := ops[g.r.Intn(len(ops))]
	l, r := g.expr(depth-1), g.expr(depth-1)
	if op == "<<" || op == ">>" {
		r = fmt.Sprintf("((%s) & 7)", r)
	}
	if g.r.Intn(4) == 0 {
		return fmt.Sprintf("-(%s %s %s)", l, op, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func (g *progGen) stmt(indent string, depth int) {
	switch g.r.Intn(8) {
	case 0:
		name := fmt.Sprintf("v%d", len(g.vars))
		fmt.Fprintf(&g.sb, "%svar %s = %s;\n", indent, name, g.expr(2))
		g.vars = append(g.vars, name)
	case 1:
		if len(g.vars) > 0 {
			fmt.Fprintf(&g.sb, "%s%s = %s;\n", indent, g.pick(g.vars), g.expr(2))
		}
	case 2:
		if len(g.arrays) > 0 {
			fmt.Fprintf(&g.sb, "%s%s[(%s) & 63] = %s;\n",
				indent, g.pick(g.arrays), g.expr(1), g.expr(2))
		}
	case 3:
		if depth > 0 {
			fmt.Fprintf(&g.sb, "%sif (%s) {\n", indent, g.expr(2))
			g.block(indent+"\t", depth-1)
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&g.sb, "%s} else {\n", indent)
				g.block(indent+"\t", depth-1)
			}
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		}
	case 4:
		if depth > 0 {
			// Bounded loop: fresh counter, fixed trip count.
			c := fmt.Sprintf("i%d_%d", depth, g.r.Intn(1000))
			fmt.Fprintf(&g.sb, "%sfor (var %s = 0; %s < %d; %s = %s + 1) {\n",
				indent, c, c, g.r.Intn(6)+1, c, c)
			saved := g.vars
			g.vars = append(g.vars, c)
			g.block(indent+"\t", depth-1)
			g.vars = saved
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		}
	case 5:
		fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(2))
	case 6:
		if len(g.procs) > 0 {
			fmt.Fprintf(&g.sb, "%s%s(%s);\n", indent, g.pick(g.procs), g.expr(1))
		}
	default:
		fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(1))
	}
}

func (g *progGen) block(indent string, depth int) {
	n := g.r.Intn(4) + 1
	saved := len(g.vars)
	for i := 0; i < n; i++ {
		g.stmt(indent, depth)
	}
	g.vars = g.vars[:saved]
}

func (g *progGen) generate() string {
	g.sb.WriteString("array arr0[64];\narray arr1[64];\nvar glob;\n")
	g.arrays = []string{"arr0", "arr1"}
	nprocs := g.r.Intn(3) + 1
	for p := 0; p < nprocs; p++ {
		name := fmt.Sprintf("p%d", p)
		fmt.Fprintf(&g.sb, "proc %s(a) {\n", name)
		g.vars = []string{"a"}
		g.block("\t", 2)
		fmt.Fprintf(&g.sb, "\treturn %s;\n}\n", g.expr(2))
		g.procs = append(g.procs, name)
	}
	g.sb.WriteString("proc main(a) {\n")
	g.vars = []string{"a"}
	g.block("\t", 3)
	fmt.Fprintf(&g.sb, "\treturn %s;\n}\n", g.expr(2))
	return g.sb.String()
}

// TestOptimizerEquivalenceFuzz compiles hundreds of random programs in
// both modes and checks they produce identical observable behavior
// (return value and out() stream) while the optimizer never increases
// dynamic instruction count.
func TestOptimizerEquivalenceFuzz(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 50
	}
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: stats.NewRNG(uint64(seed)*2654435761 + 1)}
		src := g.generate()
		p0, err := CompileSource(src, Options{})
		if err != nil {
			t.Fatalf("seed %d: -O0 compile failed: %v\nsource:\n%s", seed, err, src)
		}
		p1, err := CompileSource(src, Options{Optimize: true})
		if err != nil {
			t.Fatalf("seed %d: opt compile failed: %v\nsource:\n%s", seed, err, src)
		}
		for _, arg := range []int64{0, 1, -3, 17} {
			m0 := minivm.NewMachine(p0, nil)
			m0.MaxInstrs = 5_000_000
			rv0, err0 := m0.Run(arg)
			m1 := minivm.NewMachine(p1, nil)
			m1.MaxInstrs = 5_000_000
			rv1, err1 := m1.Run(arg)
			if (err0 == nil) != (err1 == nil) {
				t.Fatalf("seed %d arg %d: error mismatch %v vs %v\nsource:\n%s",
					seed, arg, err0, err1, src)
			}
			if err0 != nil {
				continue // both trapped identically (e.g. shift-derived fault)
			}
			if rv0 != rv1 {
				t.Fatalf("seed %d arg %d: return %d vs %d\nsource:\n%s",
					seed, arg, rv0, rv1, src)
			}
			o0, o1 := m0.Output(), m1.Output()
			if len(o0) != len(o1) {
				t.Fatalf("seed %d arg %d: output lengths %d vs %d\nsource:\n%s",
					seed, arg, len(o0), len(o1), src)
			}
			for i := range o0 {
				if o0[i] != o1[i] {
					t.Fatalf("seed %d arg %d: out[%d] %d vs %d\nsource:\n%s",
						seed, arg, i, o0[i], o1[i], src)
				}
			}
			if m1.Instructions() > m0.Instructions() {
				t.Fatalf("seed %d arg %d: optimizer increased instructions %d -> %d\nsource:\n%s",
					seed, arg, m0.Instructions(), m1.Instructions(), src)
			}
		}
	}
}

// TestWalkerBalancedOnFuzzedPrograms reuses the generator to hammer the
// profiling walker: every random program must produce a balanced call-loop
// traversal stream in both compilation modes.
func TestLoopStructurePreservedByOptimizer(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 20
	}
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: stats.NewRNG(uint64(seed)*97 + 13)}
		src := g.generate()
		p1, err := CompileSource(src, Options{Optimize: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every back edge must still target a block at or before itself,
		// and loop regions must nest properly (FindLoops would panic or
		// produce inverted regions otherwise).
		loops := minivm.FindLoops(p1)
		for _, l := range loops.All {
			if l.End < l.Head.Index {
				t.Fatalf("seed %d: inverted loop region %v", seed, l)
			}
			if l.Parent != nil && (l.Head.Index < l.Parent.Head.Index || l.End > l.Parent.End) {
				t.Fatalf("seed %d: loop %v escapes parent %v", seed, l, l.Parent)
			}
		}
	}
}
