package compile

import (
	"testing"

	"phasemark/internal/minivm"
)

func run(t *testing.T, src string, opt bool, args ...int64) (int64, []int64) {
	t.Helper()
	prog, err := CompileSource(src, Options{Optimize: opt})
	if err != nil {
		t.Fatalf("compile (opt=%v): %v", opt, err)
	}
	m := minivm.NewMachine(prog, nil)
	rv, err := m.Run(args...)
	if err != nil {
		t.Fatalf("run (opt=%v): %v", opt, err)
	}
	return rv, m.Output()
}

func runBoth(t *testing.T, src string, args ...int64) (int64, []int64) {
	t.Helper()
	rv0, out0 := run(t, src, false, args...)
	rv1, out1 := run(t, src, true, args...)
	if rv0 != rv1 {
		t.Fatalf("return value differs: -O0=%d opt=%d", rv0, rv1)
	}
	if len(out0) != len(out1) {
		t.Fatalf("output length differs: -O0=%d opt=%d", len(out0), len(out1))
	}
	for i := range out0 {
		if out0[i] != out1[i] {
			t.Fatalf("output[%d] differs: -O0=%d opt=%d", i, out0[i], out1[i])
		}
	}
	return rv0, out0
}

func TestArithmetic(t *testing.T) {
	rv, _ := runBoth(t, `
proc main(a, b) {
	return (a + b) * (a - b) + a % b - a / b;
}`, 17, 5)
	want := int64((17+5)*(17-5) + 17%5 - 17/5)
	if rv != want {
		t.Fatalf("got %d, want %d", rv, want)
	}
}

func TestWhileLoopSum(t *testing.T) {
	rv, _ := runBoth(t, `
proc main(n) {
	var s = 0;
	var i = 0;
	while (i < n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}`, 100)
	if rv != 4950 {
		t.Fatalf("got %d, want 4950", rv)
	}
}

func TestForLoopAndBreakContinue(t *testing.T) {
	rv, _ := runBoth(t, `
proc main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i > 50) { break; }
		s = s + i;
	}
	return s;
}`, 100)
	// Sum of odd numbers 1..49 = 625, plus loop breaks at 51.
	if rv != 625 {
		t.Fatalf("got %d, want 625", rv)
	}
}

func TestNestedLoopsAndArrays(t *testing.T) {
	rv, out := runBoth(t, `
array m[64];
proc main(n) {
	for (var i = 0; i < n; i = i + 1) {
		for (var j = 0; j < n; j = j + 1) {
			m[i*n+j] = i * j;
		}
	}
	var s = 0;
	for (var k = 0; k < n*n; k = k + 1) {
		s = s + m[k];
	}
	out(s);
	return s;
}`, 8)
	want := int64(28 * 28) // (sum 0..7)^2
	if rv != want || len(out) != 1 || out[0] != want {
		t.Fatalf("got rv=%d out=%v, want %d", rv, out, want)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	rv, _ := runBoth(t, `
proc fib(n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
proc main(n) { return fib(n); }`, 15)
	if rv != 610 {
		t.Fatalf("fib(15)=%d, want 610", rv)
	}
}

func TestShortCircuit(t *testing.T) {
	// boom() would trap with div-by-zero; short-circuit must avoid it.
	rv, _ := runBoth(t, `
var calls;
proc boom() {
	calls = calls + 1;
	return 1 / 0;
}
proc main(a) {
	if (a > 10 || boom() > 0) { }
	if (a < 5 && boom() > 0) { }
	if (!(a == 99)) { return 1; }
	return 0;
}`, 42)
	if rv != 1 {
		t.Fatalf("got %d, want 1", rv)
	}
}

func TestGlobalsAndBitOps(t *testing.T) {
	rv, _ := runBoth(t, `
var g;
proc main(x) {
	g = x;
	g = (g << 3) ^ (g >> 1) | 5 & g;
	return g + ~x + -x;
}`, 12345)
	x := int64(12345)
	g := (x << 3) ^ int64(uint64(x)>>1) | 5&x
	want := g + ^x + -x
	if rv != want {
		t.Fatalf("got %d, want %d", rv, want)
	}
}

func TestOutStreamOrder(t *testing.T) {
	_, out := runBoth(t, `
proc emit(k) { out(k); return 0; }
proc main(n) {
	for (var i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) { emit(i * 100); } else { out(i); }
	}
	return 0;
}`, 10)
	want := []int64{0, 1, 2, 300, 4, 5, 600, 7, 8, 900}
	if len(out) != len(want) {
		t.Fatalf("out=%v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d]=%d want %d", i, out[i], want[i])
		}
	}
}

func TestOptimizerReducesInstructions(t *testing.T) {
	src := `
proc main(n) {
	var a = 2 + 3 * 4;
	var b = a * 1 + 0;
	var unused = b * 77;
	out(b);
	return n + b - b;
}`
	p0, err := CompileSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := CompileSource(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := staticInstrs(p0), staticInstrs(p1)
	if c1 >= c0 {
		t.Fatalf("optimizer did not shrink program: -O0=%d opt=%d", c0, c1)
	}
}

func staticInstrs(p *minivm.Program) int {
	n := 0
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			n += b.Weight()
		}
	}
	return n
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no main", `proc f() { return 0; }`},
		{"undefined var", `proc main() { return x; }`},
		{"undefined proc", `proc main() { return f(); }`},
		{"bad arity", `proc f(a) { return a; } proc main() { return f(); }`},
		{"array without index", `array a[4]; proc main() { return a; }`},
		{"scalar with index", `var v; proc main() { return v[0]; }`},
		{"break outside loop", `proc main() { break; return 0; }`},
		{"continue outside loop", `proc main() { continue; return 0; }`},
		{"duplicate proc", `proc main() { return 0; } proc main() { return 1; }`},
		{"duplicate global", `var g; var g; proc main() { return 0; }`},
		{"duplicate local", `proc main() { var x; var x; return 0; }`},
		{"assign to array name", `array a[4]; proc main() { a = 3; return 0; }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CompileSource(tc.src, Options{}); err == nil {
				t.Fatalf("expected error for %q", tc.name)
			}
		})
	}
}

func TestBackwardsBranchesFormLoops(t *testing.T) {
	for _, opt := range []bool{false, true} {
		prog, err := CompileSource(`
proc main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		for (var j = 0; j < n; j = j + 1) {
			s = s + 1;
		}
	}
	while (s > 0) { s = s - 2; }
	return s;
}`, Options{Optimize: opt})
		if err != nil {
			t.Fatal(err)
		}
		loops := minivm.FindLoops(prog)
		if len(loops.All) != 3 {
			t.Fatalf("opt=%v: found %d loops, want 3", opt, len(loops.All))
		}
		depth2 := 0
		for _, l := range loops.All {
			if l.Depth == 2 {
				depth2++
			}
		}
		if depth2 != 1 {
			t.Fatalf("opt=%v: want exactly one depth-2 loop, got %d", opt, depth2)
		}
	}
}
