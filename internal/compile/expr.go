package compile

import (
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
)

var arithOps = map[lang.Kind]minivm.Opcode{
	lang.Plus:    minivm.OpAdd,
	lang.Minus:   minivm.OpSub,
	lang.Star:    minivm.OpMul,
	lang.Slash:   minivm.OpDiv,
	lang.Percent: minivm.OpMod,
	lang.Amp:     minivm.OpAnd,
	lang.Pipe:    minivm.OpOr,
	lang.Caret:   minivm.OpXor,
	lang.Shl:     minivm.OpShl,
	lang.Shr:     minivm.OpShr,
}

var compareOps = map[lang.Kind]minivm.CondOp{
	lang.EqEq:  minivm.CondEQ,
	lang.NotEq: minivm.CondNE,
	lang.Lt:    minivm.CondLT,
	lang.Le:    minivm.CondLE,
	lang.Gt:    minivm.CondGT,
	lang.Ge:    minivm.CondGE,
}

func isBoolExpr(e lang.Expr) bool {
	switch x := e.(type) {
	case *lang.BinaryExpr:
		if _, ok := compareOps[x.Op]; ok {
			return true
		}
		return x.Op == lang.AndAnd || x.Op == lang.OrOr
	case *lang.UnaryExpr:
		return x.Op == lang.Bang
	}
	return false
}

// genExpr evaluates e into register dest.
func (g *procGen) genExpr(e lang.Expr, dest uint8) {
	if g.err != nil {
		return
	}
	switch x := e.(type) {
	case *lang.NumberExpr:
		g.emit(minivm.Instr{Op: minivm.OpConst, A: dest, Imm: x.Val})
	case *lang.IdentExpr:
		if r, ok := g.lookup(x.Name); ok {
			if r != dest {
				g.emit(minivm.Instr{Op: minivm.OpMov, A: dest, B: r})
			}
			return
		}
		sym, ok := g.c.globals[x.Name]
		if !ok {
			g.fail(x.Pos, "undefined variable %q", x.Name)
			return
		}
		if sym.array {
			g.fail(x.Pos, "array %q used without index", x.Name)
			return
		}
		t := g.temp()
		g.emit(minivm.Instr{Op: minivm.OpConst, A: t, Imm: 0})
		g.emit(minivm.Instr{Op: minivm.OpLoad, A: dest, B: t, Imm: sym.addr})
		g.freeTemp()
	case *lang.IndexExpr:
		sym, ok := g.c.globals[x.Name]
		if !ok || !sym.array {
			g.fail(x.Pos, "%q is not a global array", x.Name)
			return
		}
		t := g.temp()
		g.genExpr(x.Index, t)
		g.emit(minivm.Instr{Op: minivm.OpLoad, A: dest, B: t, Imm: sym.addr})
		g.freeTemp()
	case *lang.CallExpr:
		g.genCall(x, dest)
	case *lang.UnaryExpr:
		switch x.Op {
		case lang.Minus:
			t := g.temp()
			g.genExpr(x.X, t)
			g.emit(minivm.Instr{Op: minivm.OpNeg, A: dest, B: t})
			g.freeTemp()
		case lang.Tilde:
			t := g.temp()
			g.genExpr(x.X, t)
			g.emit(minivm.Instr{Op: minivm.OpNot, A: dest, B: t})
			g.freeTemp()
		case lang.Bang:
			g.genBoolValue(e, dest)
		default:
			g.fail(x.Pos, "internal: bad unary op %s", x.Op)
		}
	case *lang.BinaryExpr:
		if isBoolExpr(e) {
			g.genBoolValue(e, dest)
			return
		}
		op, ok := arithOps[x.Op]
		if !ok {
			g.fail(x.Pos, "internal: bad binary op %s", x.Op)
			return
		}
		t1 := g.temp()
		t2 := g.temp()
		g.genExpr(x.L, t1)
		g.genExpr(x.R, t2)
		g.emit(minivm.Instr{Op: op, A: dest, B: t1, C: t2})
		g.freeTemps(2)
	default:
		g.fail(e.ExprPos(), "internal: unknown expression %T", e)
	}
}

func (g *procGen) genCall(x *lang.CallExpr, dest uint8) {
	idx, ok := g.c.procIdx[x.Name]
	if !ok {
		g.fail(x.Pos, "undefined procedure %q", x.Name)
		return
	}
	callee := g.c.file.Procs[idx]
	if len(x.Args) != len(callee.Params) {
		g.fail(x.Pos, "procedure %q wants %d args, got %d",
			x.Name, len(callee.Params), len(x.Args))
		return
	}
	args := make([]uint8, len(x.Args))
	for i, a := range x.Args {
		t := g.temp()
		g.genExpr(a, t)
		args[i] = t
	}
	// The call is a terminator: it ends the current block, and execution
	// resumes in a fresh continuation block. The call site is thus a
	// distinct markable instruction identified by the block it terminates.
	callBlk := g.cur
	callBlk.Term = minivm.Term{
		Kind:   minivm.TermCall,
		Callee: idx,
		Args:   args,
		Ret:    dest,
		Line:   x.Pos.Line,
		Col:    x.Pos.Col,
	}
	cont := g.newBlock(x.Pos)
	callBlk.Term.Next = cont.Index
	g.freeTemps(len(x.Args))
}

// genBoolValue materializes a boolean expression as 0/1 in dest using the
// standard jumping-code pattern.
func (g *procGen) genBoolValue(e lang.Expr, dest uint8) {
	tl, fl, join := g.newLabel(), g.newLabel(), g.newLabel()
	g.genCond(e, tl, fl)
	pos := e.ExprPos()
	g.bind(tl, pos)
	g.emit(minivm.Instr{Op: minivm.OpConst, A: dest, Imm: 1})
	g.jumpTo(join)
	g.bind(fl, pos)
	g.emit(minivm.Instr{Op: minivm.OpConst, A: dest, Imm: 0})
	g.jumpTo(join)
	g.bind(join, pos)
}

// genCond emits jumping code: evaluate e and transfer to tl if truthy,
// fl otherwise. Short-circuits && and ||.
func (g *procGen) genCond(e lang.Expr, tl, fl *label) {
	if g.err != nil {
		return
	}
	switch x := e.(type) {
	case *lang.BinaryExpr:
		if cond, ok := compareOps[x.Op]; ok {
			t1 := g.temp()
			t2 := g.temp()
			g.genExpr(x.L, t1)
			g.genExpr(x.R, t2)
			g.branchTo(cond, t1, t2, tl, fl)
			g.freeTemps(2)
			return
		}
		switch x.Op {
		case lang.AndAnd:
			mid := g.newLabel()
			g.genCond(x.L, mid, fl)
			g.bind(mid, x.R.ExprPos())
			g.genCond(x.R, tl, fl)
			return
		case lang.OrOr:
			mid := g.newLabel()
			g.genCond(x.L, tl, mid)
			g.bind(mid, x.R.ExprPos())
			g.genCond(x.R, tl, fl)
			return
		}
	case *lang.UnaryExpr:
		if x.Op == lang.Bang {
			g.genCond(x.X, fl, tl)
			return
		}
	}
	// Generic: compare value against zero.
	t := g.temp()
	z := g.temp()
	g.genExpr(e, t)
	g.emit(minivm.Instr{Op: minivm.OpConst, A: z, Imm: 0})
	g.branchTo(minivm.CondNE, t, z, tl, fl)
	g.freeTemps(2)
}
