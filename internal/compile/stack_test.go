package compile

import (
	"testing"

	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

func runOn(t *testing.T, src string, opts Options, args ...int64) (int64, []int64, uint64) {
	t.Helper()
	p, err := CompileSource(src, opts)
	if err != nil {
		t.Fatalf("compile %+v: %v", opts, err)
	}
	m := minivm.NewMachine(p, nil)
	rv, err := m.Run(args...)
	if err != nil {
		t.Fatalf("run %+v: %v", opts, err)
	}
	return rv, m.Output(), m.Instructions()
}

func TestStackBackendBasics(t *testing.T) {
	src := `
array a[64];
proc addUp(n, k) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		a[i & 63] = i * k;
		s = s + a[i & 63];
	}
	return s;
}
proc main(n) {
	var total = addUp(n, 3) + addUp(n / 2, 5);
	out(total);
	return total;
}
`
	rvReg, outReg, insReg := runOn(t, src, Options{}, 50)
	rvStk, outStk, insStk := runOn(t, src, Options{Stack: true}, 50)
	if rvReg != rvStk || outReg[0] != outStk[0] {
		t.Fatalf("backends disagree: %d/%v vs %d/%v", rvReg, outReg, rvStk, outStk)
	}
	// The stack ISA executes substantially more (memory-heavy) instructions.
	if insStk <= insReg {
		t.Fatalf("stack backend not memory-heavier: %d vs %d", insStk, insReg)
	}
}

func TestStackBackendRecursion(t *testing.T) {
	src := `
proc fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
proc main(k) { return fib(k); }
`
	rv, _, _ := runOn(t, src, Options{Stack: true}, 15)
	if rv != 610 {
		t.Fatalf("stack fib(15) = %d", rv)
	}
}

func TestStackBackendDeepRecursionFaults(t *testing.T) {
	src := `
proc down(n) {
	if (n <= 0) { return 0; }
	return down(n - 1) + 1;
}
proc main(k) { return down(k); }
`
	p, err := CompileSource(src, Options{Stack: true})
	if err != nil {
		t.Fatal(err)
	}
	m := minivm.NewMachine(p, nil)
	if _, err := m.Run(1_000_000); err == nil {
		t.Fatal("expected a stack-region fault on unbounded recursion")
	}
}

// The decisive property: both backends (and their optimized forms) are
// observably equivalent on random programs.
func TestStackBackendEquivalenceFuzz(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: stats.NewRNG(uint64(seed)*31337 + 5)}
		src := g.generate()
		ref, err := CompileSource(src, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, opts := range []Options{{Stack: true}, {Stack: true, Optimize: true}} {
			p, err := CompileSource(src, opts)
			if err != nil {
				t.Fatalf("seed %d %+v: %v\nsource:\n%s", seed, opts, err, src)
			}
			m0 := minivm.NewMachine(ref, nil)
			m0.MaxInstrs = 5_000_000
			rv0, err0 := m0.Run(9)
			m1 := minivm.NewMachine(p, nil)
			m1.MaxInstrs = 20_000_000
			rv1, err1 := m1.Run(9)
			if (err0 == nil) != (err1 == nil) {
				t.Fatalf("seed %d %+v: error mismatch %v vs %v\nsource:\n%s", seed, opts, err0, err1, src)
			}
			if err0 != nil {
				continue
			}
			if rv0 != rv1 {
				t.Fatalf("seed %d %+v: rv %d vs %d\nsource:\n%s", seed, opts, rv0, rv1, src)
			}
			o0, o1 := m0.Output(), m1.Output()
			if len(o0) != len(o1) {
				t.Fatalf("seed %d %+v: output lengths differ\nsource:\n%s", seed, opts, src)
			}
			for i := range o0 {
				if o0[i] != o1[i] {
					t.Fatalf("seed %d %+v: out[%d] %d vs %d\nsource:\n%s", seed, opts, i, o0[i], o1[i], src)
				}
			}
		}
	}
}
