package compile

import (
	"testing"

	"phasemark/internal/minivm"
)

// mkProc builds a single-proc program from blocks for pass-level tests.
func mkProc(t *testing.T, numRegs int, blocks ...*minivm.Block) *minivm.Program {
	t.Helper()
	pr := &minivm.Proc{Name: "main", NumArgs: 0, NumRegs: numRegs, Blocks: blocks}
	p := &minivm.Program{Procs: []*minivm.Proc{pr}}
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return p
}

func TestConstFoldArithmetic(t *testing.T) {
	b := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 0, Imm: 6},
		{Op: minivm.OpConst, A: 1, Imm: 7},
		{Op: minivm.OpMul, A: 2, B: 0, C: 1},    // -> const 42
		{Op: minivm.OpAddI, A: 3, B: 2, Imm: 8}, // -> const 50
		{Op: minivm.OpNeg, A: 4, B: 3},          // -> const -50
	}, Term: minivm.Term{Kind: minivm.TermRet, Ret: 4}}
	mkProc(t, 5, b)
	constFold(b)
	wantImms := []int64{6, 7, 42, 50, -50}
	for i, in := range b.Instr {
		if in.Op != minivm.OpConst || in.Imm != wantImms[i] {
			t.Fatalf("instr %d = %v, want const %d", i, in, wantImms[i])
		}
	}
}

// The regression the inlining fuzz caught: folding AddI/MulI must not
// read the immediate after overwriting the instruction.
func TestConstFoldImmediateAliasRegression(t *testing.T) {
	b := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 0, Imm: 10},
		{Op: minivm.OpMulI, A: 1, B: 0, Imm: -12}, // -> const -120
		{Op: minivm.OpNeg, A: 2, B: 1},            // must see -120, fold to 120
	}, Term: minivm.Term{Kind: minivm.TermRet, Ret: 2}}
	mkProc(t, 3, b)
	constFold(b)
	if got := b.Instr[2]; got.Op != minivm.OpConst || got.Imm != 120 {
		t.Fatalf("neg folded to %v, want const 120", got)
	}
	b2 := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 0, Imm: 10},
		{Op: minivm.OpAddI, A: 1, B: 0, Imm: 5}, // -> const 15
		{Op: minivm.OpNeg, A: 2, B: 1},
	}, Term: minivm.Term{Kind: minivm.TermRet, Ret: 2}}
	mkProc(t, 3, b2)
	constFold(b2)
	if got := b2.Instr[2]; got.Op != minivm.OpConst || got.Imm != -15 {
		t.Fatalf("addi chain folded to %v, want const -15", got)
	}
}

func TestConstFoldPreservesTrappingDivision(t *testing.T) {
	b := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 0, Imm: 10},
		{Op: minivm.OpConst, A: 1, Imm: 0},
		{Op: minivm.OpDiv, A: 2, B: 0, C: 1}, // divide by zero: keep!
	}, Term: minivm.Term{Kind: minivm.TermRet, Ret: 2}}
	mkProc(t, 3, b)
	constFold(b)
	if b.Instr[2].Op != minivm.OpDiv {
		t.Fatalf("trapping division folded away: %v", b.Instr[2])
	}
}

func TestConstFoldDecidesBranches(t *testing.T) {
	b0 := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 0, Imm: 3},
		{Op: minivm.OpConst, A: 1, Imm: 5},
	}, Term: minivm.Term{Kind: minivm.TermBranch, Cond: minivm.CondLT, A: 0, B: 1, Target: 1, Else: 2}}
	b1 := &minivm.Block{Instr: []minivm.Instr{{Op: minivm.OpConst, A: 2, Imm: 1}},
		Term: minivm.Term{Kind: minivm.TermRet, Ret: 2}}
	b2 := &minivm.Block{Instr: []minivm.Instr{{Op: minivm.OpConst, A: 2, Imm: 0}},
		Term: minivm.Term{Kind: minivm.TermRet, Ret: 2}}
	mkProc(t, 3, b0, b1, b2)
	constFold(b0)
	if b0.Term.Kind != minivm.TermJump || b0.Term.Target != 1 {
		t.Fatalf("constant branch not decided: %+v", b0.Term)
	}
}

func TestCopyPropRewritesUses(t *testing.T) {
	b := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpMov, A: 1, B: 0},
		{Op: minivm.OpAdd, A: 2, B: 1, C: 1}, // uses of r1 -> r0
		{Op: minivm.OpConst, A: 0, Imm: 9},   // r0 redefined: alias must die
		{Op: minivm.OpAdd, A: 3, B: 1, C: 0}, // r1 must NOT be rewritten now
	}, Term: minivm.Term{Kind: minivm.TermRet, Ret: 3}}
	mkProc(t, 4, b)
	copyProp(b)
	if b.Instr[1].B != 0 || b.Instr[1].C != 0 {
		t.Fatalf("copy not propagated: %v", b.Instr[1])
	}
	if b.Instr[3].B != 1 {
		t.Fatalf("stale alias used after redefinition: %v", b.Instr[3])
	}
}

func TestDeadCodeRemovesUnusedButKeepsEffects(t *testing.T) {
	b := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 0, Imm: 1}, // dead (overwritten, unused)
		{Op: minivm.OpConst, A: 0, Imm: 2},
		{Op: minivm.OpConst, A: 1, Imm: 3}, // feeds the store
		{Op: minivm.OpConst, A: 2, Imm: 0},
		{Op: minivm.OpStore, A: 1, B: 2}, // side effect: keep
		{Op: minivm.OpLoad, A: 3, B: 2},  // dead load: removable
		{Op: minivm.OpNop},               // removable
	}, Term: minivm.Term{Kind: minivm.TermRet, Ret: 0}}
	p := mkProc(t, 4, b)
	p.GlobalWords = 8
	deadCode(p.Procs[0])
	ops := make([]minivm.Opcode, len(b.Instr))
	for i, in := range b.Instr {
		ops[i] = in.Op
	}
	want := []minivm.Opcode{minivm.OpConst, minivm.OpConst, minivm.OpConst, minivm.OpStore}
	if len(ops) != len(want) {
		t.Fatalf("ops after DCE: %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops after DCE: %v, want %v", ops, want)
		}
	}
}

func TestJumpThreadAndUnreachable(t *testing.T) {
	b0 := &minivm.Block{Term: minivm.Term{Kind: minivm.TermJump, Target: 1}}
	b1 := &minivm.Block{Term: minivm.Term{Kind: minivm.TermJump, Target: 2}} // empty trampoline
	b2 := &minivm.Block{Instr: []minivm.Instr{{Op: minivm.OpConst, A: 0, Imm: 7}},
		Term: minivm.Term{Kind: minivm.TermRet, Ret: 0}}
	p := mkProc(t, 1, b0, b1, b2)
	pr := p.Procs[0]
	if !jumpThread(pr) {
		t.Fatal("jumpThread found nothing")
	}
	if b0.Term.Target != 2 {
		t.Fatalf("b0 not threaded: %+v", b0.Term)
	}
	if !removeUnreachable(pr) {
		t.Fatal("trampoline not removed")
	}
	if len(pr.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(pr.Blocks))
	}
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid after cleanup: %v", err)
	}
	rv, err := minivm.NewMachine(p, nil).Run()
	if err != nil || rv != 7 {
		t.Fatalf("behavior changed: rv=%d err=%v", rv, err)
	}
}

func TestMergeBlocksRespectsBackEdges(t *testing.T) {
	// b0 -> b1 (header) <- b2 latch; b1 branches to b2 or b3.
	// b2 has a single pred (b1) but merging it into b1 would be fine;
	// merging b1 into b0 must NOT happen if it breaks the back edge...
	// construct the simple mergeable case instead: b2->b3 chain.
	b0 := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 0, Imm: 3},
	}, Term: minivm.Term{Kind: minivm.TermJump, Target: 1}}
	b1 := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpAddI, A: 0, B: 0, Imm: -1},
	}, Term: minivm.Term{Kind: minivm.TermBranch, Cond: minivm.CondGT, A: 0, B: 1, Target: 1, Else: 2}}
	b2 := &minivm.Block{Instr: []minivm.Instr{
		{Op: minivm.OpConst, A: 1, Imm: 0},
	}, Term: minivm.Term{Kind: minivm.TermRet, Ret: 0}}
	p := mkProc(t, 2, b0, b1, b2)
	pr := p.Procs[0]
	mergeBlocks(pr)
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid after merge: %v", err)
	}
	// The loop must survive: b1 still targets itself (a back edge).
	loops := minivm.FindLoops(p)
	if len(loops.All) != 1 {
		t.Fatalf("loop destroyed by merging: %d loops", len(loops.All))
	}
	rv, err := minivm.NewMachine(p, nil).Run()
	if err != nil || rv != 0 {
		t.Fatalf("behavior changed: rv=%d err=%v", rv, err)
	}
}
