package compile

import (
	"testing"

	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

const inlineSrc = `
array a[64];
proc tiny(x) { return x * 3 + 1; }
proc tiny2(x) { return a[x & 63] + x; }
proc big(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + a[i & 63] * i + (s >> 2) - i;
		a[(i + 1) & 63] = s & 1023;
		s = s ^ (a[(i + 2) & 63] + (s << 1));
		a[(i + 3) & 63] = (s >> 3) + i * 5;
		s = s + a[(i + 4) & 63] - (i & 15);
	}
	return s;
}
proc main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + tiny(i) + tiny2(i);
	}
	s = s + big(n);
	out(s);
	return s;
}
`

func TestInlineRemovesLeafCalls(t *testing.T) {
	p, err := CompileSource(inlineSrc, Options{Optimize: true, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	// tiny and tiny2 must be gone; big survives (too large to inline).
	if p.Proc("tiny") != nil || p.Proc("tiny2") != nil {
		t.Error("small leaf procedures not removed")
	}
	if p.Proc("big") == nil || p.Proc("main") == nil {
		t.Error("big/main must survive")
	}
	// No calls to removed procs remain; call graph indices valid.
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			if b.Term.Kind == minivm.TermCall {
				if b.Term.Callee < 0 || b.Term.Callee >= len(p.Procs) {
					t.Fatalf("dangling callee index %d", b.Term.Callee)
				}
			}
		}
	}
}

func TestInlinePreservesBehavior(t *testing.T) {
	for _, args := range []int64{0, 1, 17, 200} {
		p0, err := CompileSource(inlineSrc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p1, err := CompileSource(inlineSrc, Options{Optimize: true, Inline: true})
		if err != nil {
			t.Fatal(err)
		}
		m0 := minivm.NewMachine(p0, nil)
		rv0, err := m0.Run(args)
		if err != nil {
			t.Fatal(err)
		}
		m1 := minivm.NewMachine(p1, nil)
		rv1, err := m1.Run(args)
		if err != nil {
			t.Fatal(err)
		}
		if rv0 != rv1 {
			t.Fatalf("args %d: %d vs %d", args, rv0, rv1)
		}
		o0, o1 := m0.Output(), m1.Output()
		if len(o0) != len(o1) || o0[0] != o1[0] {
			t.Fatalf("args %d: outputs %v vs %v", args, o0, o1)
		}
		if m1.Instructions() >= m0.Instructions() {
			t.Errorf("args %d: inlining did not reduce instructions (%d -> %d)",
				args, m0.Instructions(), m1.Instructions())
		}
	}
}

func TestInlinePreservesLoopStructure(t *testing.T) {
	p, err := CompileSource(inlineSrc, Options{Optimize: true, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	loops := minivm.FindLoops(p)
	// main's loop and big's loop survive.
	if len(loops.All) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops.All))
	}
	for _, l := range loops.All {
		if l.End < l.Head.Index {
			t.Fatalf("inverted region: %v", l)
		}
	}
}

func TestInlineEquivalenceFuzz(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: stats.NewRNG(uint64(seed)*7919 + 3)}
		src := g.generate()
		p0, err := CompileSource(src, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p1, err := CompileSource(src, Options{Optimize: true, Inline: true})
		if err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
		m0 := minivm.NewMachine(p0, nil)
		m0.MaxInstrs = 5_000_000
		rv0, err0 := m0.Run(9)
		m1 := minivm.NewMachine(p1, nil)
		m1.MaxInstrs = 5_000_000
		rv1, err1 := m1.Run(9)
		if (err0 == nil) != (err1 == nil) {
			t.Fatalf("seed %d: error mismatch %v vs %v\nsource:\n%s", seed, err0, err1, src)
		}
		if err0 != nil {
			continue
		}
		if rv0 != rv1 {
			t.Fatalf("seed %d: %d vs %d\nsource:\n%s", seed, rv0, rv1, src)
		}
		o0, o1 := m0.Output(), m1.Output()
		if len(o0) != len(o1) {
			t.Fatalf("seed %d: output lengths differ\nsource:\n%s", seed, src)
		}
		for i := range o0 {
			if o0[i] != o1[i] {
				t.Fatalf("seed %d: out[%d] differs\nsource:\n%s", seed, i, src)
			}
		}
	}
}
