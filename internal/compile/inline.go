package compile

import "phasemark/internal/minivm"

// Inlining: small leaf procedures are expanded at their call sites and, if
// no call sites remain, removed from the program entirely. This is the
// optimization the paper's cross-binary discussion worries about —
// "picking phase markers that are not compiled away": a marker anchored on
// an inlined-away call edge has no equivalent location in the inlined
// binary and must be reported unmappable (see internal/crossbin).

// inlineMaxInstrs bounds the size of procedures considered for inlining.
const inlineMaxInstrs = 24

// Inline expands eligible call sites in place. A callee is eligible when
// it is a leaf (makes no calls), is small, and its register file fits
// beside the caller's. Block order is preserved around the insertion point
// so backwards branches remain backwards and loop structure survives.
func Inline(p *minivm.Program) {
	for _, pr := range p.Procs {
		inlineInto(p, pr)
	}
	removeDeadProcs(p)
	p.RenumberBlocks()
}

func inlinable(p *minivm.Program, callee *minivm.Proc) bool {
	total := 0
	for _, b := range callee.Blocks {
		if b.Term.Kind == minivm.TermCall || b.Term.Kind == minivm.TermHalt {
			return false
		}
		total += b.Weight()
	}
	return total <= inlineMaxInstrs
}

func inlineInto(p *minivm.Program, caller *minivm.Proc) {
	for changed := true; changed; {
		changed = false
		for bi, b := range caller.Blocks {
			if b.Term.Kind != minivm.TermCall {
				continue
			}
			callee := p.Procs[b.Term.Callee]
			if callee == caller || !inlinable(p, callee) {
				continue
			}
			if caller.NumRegs+callee.NumRegs > minivm.NumRegsMax {
				continue
			}
			expand(caller, bi, callee)
			changed = true
			break // block indices shifted; rescan
		}
	}
}

// expand replaces the call terminator of caller.Blocks[ci] with the
// callee's body, inserted immediately after the call block.
func expand(caller *minivm.Proc, ci int, callee *minivm.Proc) {
	base := caller.NumRegs // callee regs remapped to base+r
	caller.NumRegs += callee.NumRegs
	call := caller.Blocks[ci].Term
	n := len(callee.Blocks)
	contOld := call.Next // continuation index before insertion

	// Indices: blocks after ci shift by n; callee block j lands at
	// ci+1+j. The continuation's new index:
	shift := func(idx int) int {
		if idx > ci {
			return idx + n
		}
		return idx
	}
	cont := shift(contOld)

	// Copy callee blocks with remapped registers and rewired terminators.
	inlined := make([]*minivm.Block, n)
	for j, src := range callee.Blocks {
		nb := &minivm.Block{
			Proc:  caller,
			Line:  src.Line,
			Col:   src.Col,
			Instr: make([]minivm.Instr, len(src.Instr)),
		}
		for k, in := range src.Instr {
			in.A += uint8(base)
			switch in.Op {
			case minivm.OpConst, minivm.OpNop, minivm.OpOut:
				// A only (Out reads A; Const writes A).
			case minivm.OpStore:
				in.B += uint8(base)
			default:
				in.B += uint8(base)
				if in.Op != minivm.OpMov && in.Op != minivm.OpNeg &&
					in.Op != minivm.OpNot && in.Op != minivm.OpAddI &&
					in.Op != minivm.OpMulI && in.Op != minivm.OpLoad {
					in.C += uint8(base)
				}
			}
			nb.Instr[k] = in
		}
		t := src.Term
		switch t.Kind {
		case minivm.TermJump:
			t.Target += ci + 1
		case minivm.TermBranch:
			t.A += uint8(base)
			t.B += uint8(base)
			t.Target += ci + 1
			t.Else += ci + 1
		case minivm.TermRet:
			// Return: move the value into the call's destination register
			// and fall through to the continuation.
			nb.Instr = append(nb.Instr, minivm.Instr{
				Op: minivm.OpMov, A: call.Ret, B: t.Ret + uint8(base),
			})
			t = minivm.Term{Kind: minivm.TermJump, Target: cont}
		}
		nb.Term = t
		inlined[j] = nb
	}

	// The call block now copies arguments and jumps into the body.
	cb := caller.Blocks[ci]
	for i, a := range call.Args {
		cb.Instr = append(cb.Instr, minivm.Instr{
			Op: minivm.OpMov, A: uint8(base + i), B: a,
		})
	}
	cb.Term = minivm.Term{Kind: minivm.TermJump, Target: ci + 1}

	// Splice and fix all other terminators' indices.
	blocks := make([]*minivm.Block, 0, len(caller.Blocks)+n)
	blocks = append(blocks, caller.Blocks[:ci+1]...)
	blocks = append(blocks, inlined...)
	blocks = append(blocks, caller.Blocks[ci+1:]...)
	for idx, b := range blocks {
		b.Index = idx
		if idx > ci && idx <= ci+n {
			continue // freshly wired
		}
		if b == cb {
			continue
		}
		switch b.Term.Kind {
		case minivm.TermJump:
			b.Term.Target = shift(b.Term.Target)
		case minivm.TermBranch:
			b.Term.Target = shift(b.Term.Target)
			b.Term.Else = shift(b.Term.Else)
		case minivm.TermCall:
			b.Term.Next = shift(b.Term.Next)
		}
	}
	caller.Blocks = blocks
}

// removeDeadProcs drops procedures that are no longer called (and are not
// the entry), remapping callee indices.
func removeDeadProcs(p *minivm.Program) {
	used := make([]bool, len(p.Procs))
	used[p.Entry] = true
	// Reachability over the call graph from the entry.
	work := []int{p.Entry}
	for len(work) > 0 {
		pi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, b := range p.Procs[pi].Blocks {
			if b.Term.Kind == minivm.TermCall && !used[b.Term.Callee] {
				used[b.Term.Callee] = true
				work = append(work, b.Term.Callee)
			}
		}
	}
	all := true
	for _, u := range used {
		all = all && u
	}
	if all {
		return
	}
	remap := make([]int, len(p.Procs))
	var kept []*minivm.Proc
	for i, pr := range p.Procs {
		if used[i] {
			remap[i] = len(kept)
			pr.ID = len(kept)
			kept = append(kept, pr)
		} else {
			remap[i] = -1
		}
	}
	for _, pr := range kept {
		for _, b := range pr.Blocks {
			if b.Term.Kind == minivm.TermCall {
				b.Term.Callee = remap[b.Term.Callee]
			}
		}
	}
	p.Entry = remap[p.Entry]
	p.Procs = kept
}
