package compile

import (
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
)

func (g *procGen) genBlockStmt(b *lang.BlockStmt) {
	g.pushScope()
	for _, s := range b.Stmts {
		if g.err != nil {
			break
		}
		g.genStmt(s)
	}
	g.popScope()
}

func (g *procGen) genStmt(s lang.Stmt) {
	g.pos = s.StmtPos()
	switch st := s.(type) {
	case *lang.BlockStmt:
		g.genBlockStmt(st)
	case *lang.VarStmt:
		r, err := g.declare(st.Name, st.Pos)
		if err != nil {
			g.err = err
			return
		}
		if st.Init != nil {
			g.genExpr(st.Init, r)
		} else {
			g.emit(minivm.Instr{Op: minivm.OpConst, A: r, Imm: 0})
		}
	case *lang.AssignStmt:
		g.genAssign(st)
	case *lang.IfStmt:
		g.genIf(st)
	case *lang.WhileStmt:
		g.genWhile(st)
	case *lang.ForStmt:
		g.genFor(st)
	case *lang.ReturnStmt:
		r := g.temp()
		if st.Value != nil {
			g.genExpr(st.Value, r)
		} else {
			g.emit(minivm.Instr{Op: minivm.OpConst, A: r, Imm: 0})
		}
		g.cur.Term = minivm.Term{Kind: minivm.TermRet, Ret: r}
		g.freeTemp()
		g.newBlock(st.Pos) // unreachable continuation
	case *lang.BreakStmt:
		if len(g.loops) == 0 {
			g.fail(st.Pos, "break outside loop")
			return
		}
		g.jumpTo(g.loops[len(g.loops)-1].brk)
		g.newBlock(st.Pos)
	case *lang.ContinueStmt:
		if len(g.loops) == 0 {
			g.fail(st.Pos, "continue outside loop")
			return
		}
		g.jumpTo(g.loops[len(g.loops)-1].cont)
		g.newBlock(st.Pos)
	case *lang.ExprStmt:
		r := g.temp()
		g.genExpr(st.X, r)
		g.freeTemp()
	case *lang.OutStmt:
		r := g.temp()
		g.genExpr(st.X, r)
		g.emit(minivm.Instr{Op: minivm.OpOut, A: r})
		g.freeTemp()
	default:
		g.fail(s.StmtPos(), "internal: unknown statement %T", s)
	}
}

func (g *procGen) genAssign(st *lang.AssignStmt) {
	if st.Index == nil {
		if r, ok := g.lookup(st.Name); ok {
			g.genExpr(st.Value, r)
			return
		}
		sym, ok := g.c.globals[st.Name]
		if !ok {
			g.fail(st.Pos, "undefined variable %q", st.Name)
			return
		}
		if sym.array {
			g.fail(st.Pos, "array %q assigned without index", st.Name)
			return
		}
		v := g.temp()
		addr := g.temp()
		g.genExpr(st.Value, v)
		g.emit(minivm.Instr{Op: minivm.OpConst, A: addr, Imm: 0})
		g.emit(minivm.Instr{Op: minivm.OpStore, A: v, B: addr, Imm: sym.addr})
		g.freeTemps(2)
		return
	}
	sym, ok := g.c.globals[st.Name]
	if !ok || !sym.array {
		g.fail(st.Pos, "%q is not a global array", st.Name)
		return
	}
	v := g.temp()
	idx := g.temp()
	g.genExpr(st.Value, v)
	g.genExpr(st.Index, idx)
	g.emit(minivm.Instr{Op: minivm.OpStore, A: v, B: idx, Imm: sym.addr})
	g.freeTemps(2)
}

func (g *procGen) genIf(st *lang.IfStmt) {
	tl, fl, join := g.newLabel(), g.newLabel(), g.newLabel()
	g.genCond(st.Cond, tl, fl)
	g.bind(tl, st.Then.Pos)
	g.genBlockStmt(st.Then)
	g.jumpTo(join)
	if st.Else != nil {
		g.bind(fl, st.Else.StmtPos())
		g.genStmt(st.Else)
		g.jumpTo(join)
		g.bind(join, st.Pos)
	} else {
		// fl and join are the same continuation.
		g.bind(join, st.Pos)
		fl.blk, fl.bound = join.blk, true
	}
}

func (g *procGen) genWhile(st *lang.WhileStmt) {
	header, body, exit := g.newLabel(), g.newLabel(), g.newLabel()
	g.jumpTo(header)
	g.bind(header, st.Pos) // loop head: cond evaluated here each iteration
	g.genCond(st.Cond, body, exit)
	g.bind(body, st.Body.Pos)
	g.loops = append(g.loops, loopCtx{brk: exit, cont: header})
	g.genBlockStmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.jumpTo(header) // the backwards branch (latch)
	g.bind(exit, st.Pos)
}

func (g *procGen) genFor(st *lang.ForStmt) {
	g.pushScope() // for-clause variables scope over the loop
	if st.Init != nil {
		g.genStmt(st.Init)
	}
	header, body, post, exit := g.newLabel(), g.newLabel(), g.newLabel(), g.newLabel()
	g.jumpTo(header)
	g.bind(header, st.Pos)
	if st.Cond != nil {
		g.genCond(st.Cond, body, exit)
	} else {
		g.jumpTo(body)
	}
	g.bind(body, st.Body.Pos)
	g.loops = append(g.loops, loopCtx{brk: exit, cont: post})
	g.genBlockStmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.jumpTo(post)
	g.bind(post, st.Pos)
	if st.Post != nil {
		g.genStmt(st.Post)
	}
	g.jumpTo(header) // backwards branch
	g.bind(exit, st.Pos)
	g.popScope()
}
