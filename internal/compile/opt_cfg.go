package compile

import "phasemark/internal/minivm"

// successors returns the block indices control may transfer to from b.
func successors(b *minivm.Block) []int {
	switch b.Term.Kind {
	case minivm.TermJump:
		return []int{b.Term.Target}
	case minivm.TermBranch:
		if b.Term.Target == b.Term.Else {
			return []int{b.Term.Target}
		}
		return []int{b.Term.Target, b.Term.Else}
	case minivm.TermCall:
		return []int{b.Term.Next}
	default:
		return nil
	}
}

// instrUseDef reports the registers an instruction reads and (optionally)
// the register it writes.
func instrUseDef(in minivm.Instr) (uses []uint8, def int, sideEffect bool) {
	switch in.Op {
	case minivm.OpNop:
		return nil, -1, false
	case minivm.OpConst:
		return nil, int(in.A), false
	case minivm.OpMov, minivm.OpNeg, minivm.OpNot, minivm.OpAddI, minivm.OpMulI:
		return []uint8{in.B}, int(in.A), false
	case minivm.OpLoad:
		// A load is removable when dead: it cannot change program output
		// (only the memory-reference stream, as with real dead-load
		// elimination).
		return []uint8{in.B}, int(in.A), false
	case minivm.OpMark:
		return nil, -1, true
	case minivm.OpStore:
		return []uint8{in.A, in.B}, -1, true
	case minivm.OpOut:
		return []uint8{in.A}, -1, true
	case minivm.OpDiv, minivm.OpMod:
		// May trap; keep even if the result is dead.
		return []uint8{in.B, in.C}, int(in.A), true
	default:
		return []uint8{in.B, in.C}, int(in.A), false
	}
}

// deadCode removes instructions whose results are never used, using a
// whole-procedure backward liveness analysis.
func deadCode(pr *minivm.Proc) bool {
	n := len(pr.Blocks)
	liveIn := make([]map[uint8]bool, n)
	liveOut := make([]map[uint8]bool, n)
	for i := range liveIn {
		liveIn[i] = map[uint8]bool{}
		liveOut[i] = map[uint8]bool{}
	}
	termUses := func(b *minivm.Block) []uint8 {
		switch b.Term.Kind {
		case minivm.TermBranch:
			return []uint8{b.Term.A, b.Term.B}
		case minivm.TermRet:
			return []uint8{b.Term.Ret}
		case minivm.TermCall:
			return b.Term.Args
		default:
			return nil
		}
	}
	// Iterate to fixpoint.
	for {
		changed := false
		for i := n - 1; i >= 0; i-- {
			b := pr.Blocks[i]
			out := map[uint8]bool{}
			for _, s := range successors(b) {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			// A call defines Ret in this block's frame upon return; the
			// continuation block's liveIn flows through out. Kill Ret.
			if b.Term.Kind == minivm.TermCall {
				delete(out, b.Term.Ret)
			}
			in := map[uint8]bool{}
			for r := range out {
				in[r] = true
			}
			for _, r := range termUses(b) {
				in[r] = true
			}
			for k := len(b.Instr) - 1; k >= 0; k-- {
				uses, def, _ := instrUseDef(b.Instr[k])
				if def >= 0 {
					delete(in, uint8(def))
				}
				for _, r := range uses {
					in[r] = true
				}
			}
			if !sameSet(out, liveOut[i]) || !sameSet(in, liveIn[i]) {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Remove dead instructions per block.
	removed := false
	for i, b := range pr.Blocks {
		live := map[uint8]bool{}
		for r := range liveOut[i] {
			live[r] = true
		}
		if b.Term.Kind == minivm.TermCall {
			delete(live, b.Term.Ret)
		}
		for _, r := range termUses(b) {
			live[r] = true
		}
		keep := make([]bool, len(b.Instr))
		for k := len(b.Instr) - 1; k >= 0; k-- {
			uses, def, side := instrUseDef(b.Instr[k])
			dead := b.Instr[k].Op == minivm.OpNop ||
				(!side && def >= 0 && !live[uint8(def)]) ||
				(b.Instr[k].Op == minivm.OpMov && b.Instr[k].A == b.Instr[k].B)
			keep[k] = !dead
			if dead {
				continue
			}
			if def >= 0 {
				delete(live, uint8(def))
			}
			for _, r := range uses {
				live[r] = true
			}
		}
		var out []minivm.Instr
		for k, in := range b.Instr {
			if keep[k] {
				out = append(out, in)
			}
		}
		if len(out) != len(b.Instr) {
			b.Instr = out
			removed = true
		}
	}
	return removed
}

func sameSet(a, b map[uint8]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// jumpThread retargets control transfers that land on empty jump-only
// blocks directly to their final destinations.
func jumpThread(pr *minivm.Proc) bool {
	final := func(idx int) int {
		seen := map[int]bool{}
		for {
			b := pr.Blocks[idx]
			if len(b.Instr) != 0 || b.Term.Kind != minivm.TermJump || seen[idx] {
				return idx
			}
			seen[idx] = true
			idx = b.Term.Target
		}
	}
	changed := false
	retarget := func(slot *int) {
		if f := final(*slot); f != *slot {
			*slot = f
			changed = true
		}
	}
	for _, b := range pr.Blocks {
		switch b.Term.Kind {
		case minivm.TermJump:
			retarget(&b.Term.Target)
		case minivm.TermBranch:
			retarget(&b.Term.Target)
			retarget(&b.Term.Else)
		case minivm.TermCall:
			retarget(&b.Term.Next)
		}
	}
	return changed
}

// removeUnreachable drops blocks not reachable from the procedure entry
// and compacts indices, preserving relative order (so backwards branches
// stay backwards).
func removeUnreachable(pr *minivm.Proc) bool {
	n := len(pr.Blocks)
	mark := make([]bool, n)
	stack := []int{0}
	mark[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range successors(pr.Blocks[i]) {
			if !mark[s] {
				mark[s] = true
				stack = append(stack, s)
			}
		}
	}
	all := true
	for _, m := range mark {
		all = all && m
	}
	if all {
		return false
	}
	remap := make([]int, n)
	var kept []*minivm.Block
	for i, b := range pr.Blocks {
		if mark[i] {
			remap[i] = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	for _, b := range kept {
		switch b.Term.Kind {
		case minivm.TermJump:
			b.Term.Target = remap[b.Term.Target]
		case minivm.TermBranch:
			b.Term.Target = remap[b.Term.Target]
			b.Term.Else = remap[b.Term.Else]
		case minivm.TermCall:
			b.Term.Next = remap[b.Term.Next]
		}
	}
	for i, b := range kept {
		b.Index = i
	}
	pr.Blocks = kept
	return true
}

// mergeBlocks folds a block into its unique jump predecessor when safe:
// the successor must have exactly one predecessor, and the merge must not
// turn a backwards branch into a forwards one (which would destroy the
// loop structure the whole analysis is built on).
func mergeBlocks(pr *minivm.Proc) bool {
	changed := false
	for {
		preds := make([][]int, len(pr.Blocks))
		for i, b := range pr.Blocks {
			for _, s := range successors(b) {
				preds[s] = append(preds[s], i)
			}
		}
		merged := false
		for i, b := range pr.Blocks {
			if b.Term.Kind != minivm.TermJump {
				continue
			}
			t := b.Term.Target
			if t == i || t == 0 || len(preds[t]) != 1 {
				continue
			}
			succ := pr.Blocks[t]
			// Keep back edges backwards: any back-edge target of succ must
			// still be <= the merged block's index.
			ok := true
			for _, s := range successors(succ) {
				if s <= succ.Index && s > i {
					ok = false
				}
			}
			if !ok {
				continue
			}
			b.Instr = append(b.Instr, succ.Instr...)
			b.Term = succ.Term
			succ.Instr = nil
			succ.Term = minivm.Term{Kind: minivm.TermJump, Target: t} // self-loop shape; becomes unreachable
			merged = true
			changed = true
			break
		}
		if !merged {
			return changed
		}
		removeUnreachable(pr)
	}
}
