package compile

import (
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
)

func (g *stackGen) genBlockStmt(b *lang.BlockStmt) {
	g.pushScope()
	for _, s := range b.Stmts {
		if g.err != nil {
			break
		}
		g.genStmt(s)
	}
	g.popScope()
}

func (g *stackGen) genStmt(s lang.Stmt) {
	g.pos = s.StmtPos()
	switch st := s.(type) {
	case *lang.BlockStmt:
		g.genBlockStmt(st)
	case *lang.VarStmt:
		slot := g.declare(st.Name)
		if st.Init != nil {
			g.genExpr(st.Init)
			g.popTo(g.rA)
		} else {
			g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rA, Imm: 0})
		}
		g.emit(minivm.Instr{Op: minivm.OpStore, A: g.rA, B: g.fp, Imm: int64(slot)})
	case *lang.AssignStmt:
		g.genAssign(st)
	case *lang.IfStmt:
		g.genIf(st)
	case *lang.WhileStmt:
		g.genWhile(st)
	case *lang.ForStmt:
		g.genFor(st)
	case *lang.ReturnStmt:
		if st.Value != nil {
			g.genExpr(st.Value)
			g.popTo(g.rA)
		} else {
			g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rA, Imm: 0})
		}
		g.cur.Term = minivm.Term{Kind: minivm.TermRet, Ret: g.rA}
		g.newBlock(st.Pos)
	case *lang.BreakStmt:
		if len(g.loops) == 0 {
			g.fail(st.Pos, "break outside loop")
			return
		}
		g.jumpTo(g.loops[len(g.loops)-1].brk)
		g.newBlock(st.Pos)
	case *lang.ContinueStmt:
		if len(g.loops) == 0 {
			g.fail(st.Pos, "continue outside loop")
			return
		}
		g.jumpTo(g.loops[len(g.loops)-1].cont)
		g.newBlock(st.Pos)
	case *lang.ExprStmt:
		g.genExpr(st.X)
		g.popTo(g.rA) // discard
	case *lang.OutStmt:
		g.genExpr(st.X)
		g.popTo(g.rA)
		g.emit(minivm.Instr{Op: minivm.OpOut, A: g.rA})
	default:
		g.fail(s.StmtPos(), "internal: unknown statement %T", s)
	}
}

func (g *stackGen) genAssign(st *lang.AssignStmt) {
	if st.Index == nil {
		if slot, ok := g.lookup(st.Name); ok {
			g.genExpr(st.Value)
			g.popTo(g.rA)
			g.emit(minivm.Instr{Op: minivm.OpStore, A: g.rA, B: g.fp, Imm: int64(slot)})
			return
		}
		sym, ok := g.c.globals[st.Name]
		if !ok {
			g.fail(st.Pos, "undefined variable %q", st.Name)
			return
		}
		if sym.array {
			g.fail(st.Pos, "array %q assigned without index", st.Name)
			return
		}
		g.genExpr(st.Value)
		g.popTo(g.rA)
		g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rB, Imm: 0})
		g.emit(minivm.Instr{Op: minivm.OpStore, A: g.rA, B: g.rB, Imm: sym.addr})
		return
	}
	sym, ok := g.c.globals[st.Name]
	if !ok || !sym.array {
		g.fail(st.Pos, "%q is not a global array", st.Name)
		return
	}
	g.genExpr(st.Value)
	g.genExpr(st.Index)
	g.popTo(g.rB) // index
	g.popTo(g.rA) // value
	g.emit(minivm.Instr{Op: minivm.OpStore, A: g.rA, B: g.rB, Imm: sym.addr})
}

func (g *stackGen) genIf(st *lang.IfStmt) {
	tl, fl, join := g.newLabel(), g.newLabel(), g.newLabel()
	g.genCond(st.Cond, tl, fl)
	g.bind(tl, st.Then.Pos)
	g.genBlockStmt(st.Then)
	g.jumpTo(join)
	if st.Else != nil {
		g.bind(fl, st.Else.StmtPos())
		g.genStmt(st.Else)
		g.jumpTo(join)
		g.bind(join, st.Pos)
	} else {
		g.bind(join, st.Pos)
		fl.blk, fl.bound = join.blk, true
	}
}

func (g *stackGen) genWhile(st *lang.WhileStmt) {
	header, body, exit := g.newLabel(), g.newLabel(), g.newLabel()
	g.jumpTo(header)
	g.bind(header, st.Pos)
	g.genCond(st.Cond, body, exit)
	g.bind(body, st.Body.Pos)
	g.loops = append(g.loops, loopCtx{brk: exit, cont: header})
	g.genBlockStmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.jumpTo(header)
	g.bind(exit, st.Pos)
}

func (g *stackGen) genFor(st *lang.ForStmt) {
	g.pushScope()
	if st.Init != nil {
		g.genStmt(st.Init)
	}
	header, body, post, exit := g.newLabel(), g.newLabel(), g.newLabel(), g.newLabel()
	g.jumpTo(header)
	g.bind(header, st.Pos)
	if st.Cond != nil {
		g.genCond(st.Cond, body, exit)
	} else {
		g.jumpTo(body)
	}
	g.bind(body, st.Body.Pos)
	g.loops = append(g.loops, loopCtx{brk: exit, cont: post})
	g.genBlockStmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.jumpTo(post)
	g.bind(post, st.Pos)
	if st.Post != nil {
		g.genStmt(st.Post)
	}
	g.jumpTo(header)
	g.bind(exit, st.Pos)
	g.popScope()
}

// genExpr evaluates e, leaving exactly one value on the operand stack.
func (g *stackGen) genExpr(e lang.Expr) {
	if g.err != nil {
		return
	}
	switch x := e.(type) {
	case *lang.NumberExpr:
		g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rA, Imm: x.Val})
		g.pushFrom(g.rA)
	case *lang.IdentExpr:
		if slot, ok := g.lookup(x.Name); ok {
			g.emit(minivm.Instr{Op: minivm.OpLoad, A: g.rA, B: g.fp, Imm: int64(slot)})
			g.pushFrom(g.rA)
			return
		}
		sym, ok := g.c.globals[x.Name]
		if !ok {
			g.fail(x.Pos, "undefined variable %q", x.Name)
			return
		}
		if sym.array {
			g.fail(x.Pos, "array %q used without index", x.Name)
			return
		}
		g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rB, Imm: 0})
		g.emit(minivm.Instr{Op: minivm.OpLoad, A: g.rA, B: g.rB, Imm: sym.addr})
		g.pushFrom(g.rA)
	case *lang.IndexExpr:
		sym, ok := g.c.globals[x.Name]
		if !ok || !sym.array {
			g.fail(x.Pos, "%q is not a global array", x.Name)
			return
		}
		g.genExpr(x.Index)
		g.popTo(g.rB)
		g.emit(minivm.Instr{Op: minivm.OpLoad, A: g.rA, B: g.rB, Imm: sym.addr})
		g.pushFrom(g.rA)
	case *lang.CallExpr:
		g.genCall(x)
	case *lang.UnaryExpr:
		switch x.Op {
		case lang.Minus, lang.Tilde:
			op := minivm.OpNeg
			if x.Op == lang.Tilde {
				op = minivm.OpNot
			}
			g.genExpr(x.X)
			g.popTo(g.rA)
			g.emit(minivm.Instr{Op: op, A: g.rA, B: g.rA})
			g.pushFrom(g.rA)
		case lang.Bang:
			g.genBoolValue(e)
		default:
			g.fail(x.Pos, "internal: bad unary op %s", x.Op)
		}
	case *lang.BinaryExpr:
		if isBoolExpr(e) {
			g.genBoolValue(e)
			return
		}
		op, ok := arithOps[x.Op]
		if !ok {
			g.fail(x.Pos, "internal: bad binary op %s", x.Op)
			return
		}
		g.genExpr(x.L)
		g.genExpr(x.R)
		g.popTo(g.rB)
		g.popTo(g.rA)
		g.emit(minivm.Instr{Op: op, A: g.rA, B: g.rA, C: g.rB})
		g.pushFrom(g.rA)
	default:
		g.fail(e.ExprPos(), "internal: unknown expression %T", e)
	}
}

func (g *stackGen) genCall(x *lang.CallExpr) {
	idx, ok := g.c.procIdx[x.Name]
	if !ok {
		g.fail(x.Pos, "undefined procedure %q", x.Name)
		return
	}
	callee := g.c.file.Procs[idx]
	if callee.Name == "main" {
		g.fail(x.Pos, "the stack backend does not support calling main")
		return
	}
	if len(x.Args) != len(callee.Params) {
		g.fail(x.Pos, "procedure %q wants %d args, got %d",
			x.Name, len(callee.Params), len(x.Args))
		return
	}
	// Evaluate arguments onto our operand stack, then compute the callee
	// frame pointer and spill them into the callee's parameter slots.
	for _, a := range x.Args {
		g.genExpr(a)
	}
	g.emit(minivm.Instr{Op: minivm.OpAddI, A: g.rAddr, B: g.fp, Imm: 0 /* frame size */})
	g.frameFix = append(g.frameFix, struct{ blk, idx int }{g.cur.Index, len(g.cur.Instr) - 1})
	for i := len(x.Args) - 1; i >= 0; i-- {
		g.popTo(g.rA)
		g.emit(minivm.Instr{Op: minivm.OpStore, A: g.rA, B: g.rAddr, Imm: int64(i)})
	}
	callBlk := g.cur
	callBlk.Term = minivm.Term{
		Kind:   minivm.TermCall,
		Callee: idx,
		Args:   []uint8{g.rAddr},
		Ret:    g.rA,
		Line:   x.Pos.Line,
		Col:    x.Pos.Col,
	}
	cont := g.newBlock(x.Pos)
	callBlk.Term.Next = cont.Index
	g.pushFrom(g.rA)
}

func (g *stackGen) genBoolValue(e lang.Expr) {
	tl, fl, join := g.newLabel(), g.newLabel(), g.newLabel()
	g.genCond(e, tl, fl)
	pos := e.ExprPos()
	// Both arms push one value; track depth once.
	depth := g.depth
	g.bind(tl, pos)
	g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rA, Imm: 1})
	g.pushFrom(g.rA)
	g.jumpTo(join)
	g.depth = depth
	g.bind(fl, pos)
	g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rA, Imm: 0})
	g.pushFrom(g.rA)
	g.jumpTo(join)
	g.bind(join, pos)
}

func (g *stackGen) genCond(e lang.Expr, tl, fl *label) {
	if g.err != nil {
		return
	}
	switch x := e.(type) {
	case *lang.BinaryExpr:
		if cond, ok := compareOps[x.Op]; ok {
			g.genExpr(x.L)
			g.genExpr(x.R)
			g.popTo(g.rB)
			g.popTo(g.rA)
			g.branchTo(cond, g.rA, g.rB, tl, fl)
			return
		}
		switch x.Op {
		case lang.AndAnd:
			mid := g.newLabel()
			g.genCond(x.L, mid, fl)
			g.bind(mid, x.R.ExprPos())
			g.genCond(x.R, tl, fl)
			return
		case lang.OrOr:
			mid := g.newLabel()
			g.genCond(x.L, tl, mid)
			g.bind(mid, x.R.ExprPos())
			g.genCond(x.R, tl, fl)
			return
		}
	case *lang.UnaryExpr:
		if x.Op == lang.Bang {
			g.genCond(x.X, fl, tl)
			return
		}
	}
	g.genExpr(e)
	g.popTo(g.rA)
	g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rB, Imm: 0})
	g.branchTo(minivm.CondNE, g.rA, g.rB, tl, fl)
}
