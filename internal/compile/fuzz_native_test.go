package compile

import (
	"testing"

	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

// FuzzCompileDiff is the native-fuzzing face of the differential backend
// oracle: each fuzz input seeds the random program generator (progGen,
// shared with TestOptimizerEquivalenceFuzz), and all three backends —
// -O0 register, optimized register, stack machine — must agree on return
// value and out() stream. `go test -fuzz FuzzCompileDiff` explores seeds
// the fixed trial loop never reaches.
func FuzzCompileDiff(f *testing.F) {
	for _, s := range []uint64{0, 1, 7, 42, 1 << 20, 0xdeadbeef} {
		f.Add(s, int64(3))
	}
	f.Fuzz(func(t *testing.T, seed uint64, arg int64) {
		g := &progGen{r: stats.NewRNG(seed*2654435761 + 1)}
		src := g.generate()

		progs := make([]*minivm.Program, 3)
		for i, o := range []Options{{}, {Optimize: true}, {Stack: true}} {
			p, err := CompileSource(src, o)
			if err != nil {
				t.Fatalf("seed %d backend %d: compile failed: %v\nsource:\n%s", seed, i, err, src)
			}
			progs[i] = p
		}

		run := func(p *minivm.Program) (int64, []int64, error) {
			m := minivm.NewMachine(p, nil)
			m.MaxInstrs = 5_000_000
			rv, err := m.Run(arg)
			return rv, m.Output(), err
		}
		rv0, out0, err0 := run(progs[0])
		for i, p := range progs[1:] {
			rv, out, err := run(p)
			if (err0 == nil) != (err == nil) {
				t.Fatalf("seed %d arg %d backend %d: error mismatch %v vs %v\nsource:\n%s",
					seed, arg, i+1, err0, err, src)
			}
			if err0 != nil {
				continue // both trapped (e.g. instruction budget); equivalence is moot
			}
			if rv != rv0 {
				t.Fatalf("seed %d arg %d backend %d: return %d vs %d\nsource:\n%s",
					seed, arg, i+1, rv, rv0, src)
			}
			if len(out) != len(out0) {
				t.Fatalf("seed %d arg %d backend %d: out lengths %d vs %d\nsource:\n%s",
					seed, arg, i+1, len(out), len(out0), src)
			}
			for j := range out {
				if out[j] != out0[j] {
					t.Fatalf("seed %d arg %d backend %d: out[%d] %d vs %d\nsource:\n%s",
						seed, arg, i+1, j, out[j], out0[j], src)
				}
			}
		}
	})
}
