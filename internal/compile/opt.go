package compile

import "phasemark/internal/minivm"

// Optimize runs the optimization pipeline in place: local constant folding
// and copy propagation, liveness-based dead-code elimination, jump
// threading, unreachable-block removal, and straight-line block merging.
// The pipeline iterates to a fixpoint (bounded), then renumbers blocks.
//
// Observable behavior (out() stream, return value) is preserved; block
// structure, block count, and instruction counts change — producing the
// "different compilation of the same source" the cross-binary experiment
// requires.
func Optimize(p *minivm.Program) {
	for _, pr := range p.Procs {
		for iter := 0; iter < 4; iter++ {
			changed := false
			for _, b := range pr.Blocks {
				changed = constFold(b) || changed
				changed = copyProp(b) || changed
			}
			changed = deadCode(pr) || changed
			changed = jumpThread(pr) || changed
			changed = removeUnreachable(pr) || changed
			changed = mergeBlocks(pr) || changed
			if !changed {
				break
			}
		}
	}
	p.RenumberBlocks()
}

// constFold does forward constant propagation within one block, folding
// arithmetic over known registers, strength-reducing to immediate forms,
// and deciding constant branches.
func constFold(b *minivm.Block) bool {
	known := map[uint8]int64{}
	changed := false
	set := func(r uint8, v int64) { known[r] = v }
	kill := func(r uint8) { delete(known, r) }
	for i := range b.Instr {
		in := &b.Instr[i]
		switch in.Op {
		case minivm.OpConst:
			set(in.A, in.Imm)
		case minivm.OpMov:
			if v, ok := known[in.B]; ok {
				*in = minivm.Instr{Op: minivm.OpConst, A: in.A, Imm: v}
				set(in.A, v)
				changed = true
			} else {
				kill(in.A)
			}
		case minivm.OpNeg, minivm.OpNot:
			if v, ok := known[in.B]; ok {
				r := -v
				if in.Op == minivm.OpNot {
					r = ^v
				}
				*in = minivm.Instr{Op: minivm.OpConst, A: in.A, Imm: r}
				set(in.A, r)
				changed = true
			} else {
				kill(in.A)
			}
		case minivm.OpAddI:
			if v, ok := known[in.B]; ok {
				r := v + in.Imm // compute before overwriting *in (in.Imm aliases)
				*in = minivm.Instr{Op: minivm.OpConst, A: in.A, Imm: r}
				set(in.A, r)
				changed = true
			} else if in.Imm == 0 {
				*in = minivm.Instr{Op: minivm.OpMov, A: in.A, B: in.B}
				kill(in.A)
				changed = true
			} else {
				kill(in.A)
			}
		case minivm.OpMulI:
			if v, ok := known[in.B]; ok {
				r := v * in.Imm // compute before overwriting *in (in.Imm aliases)
				*in = minivm.Instr{Op: minivm.OpConst, A: in.A, Imm: r}
				set(in.A, r)
				changed = true
			} else if in.Imm == 1 {
				*in = minivm.Instr{Op: minivm.OpMov, A: in.A, B: in.B}
				kill(in.A)
				changed = true
			} else {
				kill(in.A)
			}
		case minivm.OpAdd, minivm.OpSub, minivm.OpMul, minivm.OpAnd,
			minivm.OpOr, minivm.OpXor, minivm.OpShl, minivm.OpShr:
			bv, bok := known[in.B]
			cv, cok := known[in.C]
			switch {
			case bok && cok:
				r := foldArith(in.Op, bv, cv)
				*in = minivm.Instr{Op: minivm.OpConst, A: in.A, Imm: r}
				set(in.A, r)
				changed = true
			case cok && in.Op == minivm.OpAdd:
				*in = minivm.Instr{Op: minivm.OpAddI, A: in.A, B: in.B, Imm: cv}
				kill(in.A)
				changed = true
			case cok && in.Op == minivm.OpMul:
				*in = minivm.Instr{Op: minivm.OpMulI, A: in.A, B: in.B, Imm: cv}
				kill(in.A)
				changed = true
			case cok && in.Op == minivm.OpSub:
				*in = minivm.Instr{Op: minivm.OpAddI, A: in.A, B: in.B, Imm: -cv}
				kill(in.A)
				changed = true
			case bok && in.Op == minivm.OpAdd:
				*in = minivm.Instr{Op: minivm.OpAddI, A: in.A, B: in.C, Imm: bv}
				kill(in.A)
				changed = true
			case bok && in.Op == minivm.OpMul:
				*in = minivm.Instr{Op: minivm.OpMulI, A: in.A, B: in.C, Imm: bv}
				kill(in.A)
				changed = true
			default:
				kill(in.A)
			}
		case minivm.OpDiv, minivm.OpMod:
			// Fold only when the divisor is a known nonzero constant, so a
			// would-be trap is preserved.
			bv, bok := known[in.B]
			cv, cok := known[in.C]
			if bok && cok && cv != 0 {
				var r int64
				if in.Op == minivm.OpDiv {
					r = bv / cv
				} else {
					r = bv % cv
				}
				*in = minivm.Instr{Op: minivm.OpConst, A: in.A, Imm: r}
				set(in.A, r)
				changed = true
			} else {
				kill(in.A)
			}
		case minivm.OpLoad:
			kill(in.A)
		case minivm.OpStore, minivm.OpOut, minivm.OpNop, minivm.OpMark:
		}
	}
	if b.Term.Kind == minivm.TermBranch {
		av, aok := known[b.Term.A]
		bv, bok := known[b.Term.B]
		if aok && bok {
			tgt := b.Term.Else
			if b.Term.Cond.Eval(av, bv) {
				tgt = b.Term.Target
			}
			b.Term = minivm.Term{Kind: minivm.TermJump, Target: tgt}
			changed = true
		}
	}
	return changed
}

func foldArith(op minivm.Opcode, b, c int64) int64 {
	switch op {
	case minivm.OpAdd:
		return b + c
	case minivm.OpSub:
		return b - c
	case minivm.OpMul:
		return b * c
	case minivm.OpAnd:
		return b & c
	case minivm.OpOr:
		return b | c
	case minivm.OpXor:
		return b ^ c
	case minivm.OpShl:
		return b << (uint64(c) & 63)
	default: // OpShr
		return int64(uint64(b) >> (uint64(c) & 63))
	}
}

// copyProp replaces uses of registers that are local copies of other
// registers within a block.
func copyProp(b *minivm.Block) bool {
	alias := map[uint8]uint8{}
	changed := false
	resolve := func(r uint8) uint8 {
		if a, ok := alias[r]; ok {
			return a
		}
		return r
	}
	sub := func(r *uint8) {
		if a := resolve(*r); a != *r {
			*r = a
			changed = true
		}
	}
	killDest := func(d uint8) {
		delete(alias, d)
		for k, v := range alias {
			if v == d {
				delete(alias, k)
			}
		}
	}
	for i := range b.Instr {
		in := &b.Instr[i]
		switch in.Op {
		case minivm.OpConst:
			killDest(in.A)
		case minivm.OpMov:
			sub(&in.B)
			killDest(in.A)
			if in.A != in.B {
				alias[in.A] = in.B
			}
		case minivm.OpNeg, minivm.OpNot, minivm.OpAddI, minivm.OpMulI, minivm.OpLoad:
			sub(&in.B)
			killDest(in.A)
		case minivm.OpStore:
			sub(&in.A)
			sub(&in.B)
		case minivm.OpOut:
			sub(&in.A)
		case minivm.OpNop:
		default:
			sub(&in.B)
			sub(&in.C)
			killDest(in.A)
		}
	}
	switch b.Term.Kind {
	case minivm.TermBranch:
		sub(&b.Term.A)
		sub(&b.Term.B)
	case minivm.TermRet:
		sub(&b.Term.Ret)
	case minivm.TermCall:
		for i := range b.Term.Args {
			sub(&b.Term.Args[i])
		}
	}
	return changed
}
