// Package compile lowers the mini language AST to minivm IR.
//
// It provides two compilation modes: a direct translation ("-O0") and an
// optimizing build (constant folding, copy propagation, dead-code
// elimination, jump threading, block merging). The two modes produce
// observably equivalent programs (identical out() streams) with different
// basic-block structure — which is exactly what the paper's cross-binary
// phase-marker experiment (§6.2.1) needs. Source line/column positions are
// propagated onto every IR block as debug info for marker mapping.
package compile

import (
	"fmt"

	"phasemark/internal/lang"
	"phasemark/internal/minivm"
)

// Options selects the compilation mode.
type Options struct {
	// Optimize enables the optimization pipeline (see opt.go). The
	// unoptimized build corresponds to the paper's "-O0 Alpha binary"; the
	// optimized one to its "full peak optimization" binary.
	Optimize bool
	// Inline additionally expands small leaf procedures at their call
	// sites and deletes the ones with no remaining callers (see
	// inline.go). Markers anchored on inlined-away call edges cannot be
	// mapped to such a binary — the "compiled away" case of §6.2.1.
	Inline bool
	// Stack selects the stack-machine backend (see stackgen.go): a second
	// "ISA" for the same source, with locals in memory frames and
	// expressions evaluated through an in-memory operand stack. Used by
	// the cross-ISA marker-mapping experiments.
	Stack bool
}

// Compile lowers a parsed file into an executable program. The entry
// procedure is the one named "main".
func Compile(f *lang.File, opts Options) (*minivm.Program, error) {
	if opts.Stack {
		return compileStack(f, opts)
	}
	c := &compiler{
		file:    f,
		globals: map[string]globalSym{},
		procIdx: map[string]int{},
	}
	if err := c.layoutGlobals(); err != nil {
		return nil, err
	}
	prog := &minivm.Program{GlobalWords: c.globalWords}
	entry := -1
	for i, pd := range f.Procs {
		if _, dup := c.procIdx[pd.Name]; dup {
			return nil, errAt(pd.Pos, "duplicate procedure %q", pd.Name)
		}
		c.procIdx[pd.Name] = i
		if pd.Name == "main" {
			entry = i
		}
	}
	if entry < 0 {
		return nil, fmt.Errorf("compile: no main procedure")
	}
	prog.Entry = entry
	for i, pd := range f.Procs {
		pr, err := c.genProc(i, pd)
		if err != nil {
			return nil, err
		}
		prog.Procs = append(prog.Procs, pr)
	}
	prog.RenumberBlocks()
	if opts.Optimize {
		Optimize(prog)
	}
	if opts.Inline {
		Inline(prog)
		Optimize(prog) // clean up argument moves and folded bodies
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compile: internal error: %w", err)
	}
	return prog, nil
}

// CompileSource parses and compiles in one step.
func CompileSource(src string, opts Options) (*minivm.Program, error) {
	f, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f, opts)
}

func errAt(pos lang.Pos, format string, args ...any) error {
	return &lang.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type globalSym struct {
	addr  int64
	size  int64
	array bool
}

type compiler struct {
	file        *lang.File
	globals     map[string]globalSym
	globalWords int
	procIdx     map[string]int
}

func (c *compiler) layoutGlobals() error {
	var addr int64
	for _, g := range c.file.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errAt(g.Pos, "duplicate global %q", g.Name)
		}
		c.globals[g.Name] = globalSym{addr: addr, size: g.Size, array: g.Array}
		addr += g.Size
	}
	const maxWords = 1 << 28 // 2 GiB of simulated memory
	if addr > maxWords {
		return fmt.Errorf("compile: globals need %d words, max %d", addr, maxWords)
	}
	c.globalWords = int(addr)
	return nil
}

// label is a forward-patchable block reference.
type label struct {
	blk   int
	bound bool
}

type fixup struct {
	lbl  *label
	slot *int
}

type loopCtx struct {
	brk  *label
	cont *label
}

type procGen struct {
	c        *compiler
	decl     *lang.ProcDecl
	proc     *minivm.Proc
	cur      *minivm.Block
	scopes   []map[string]uint8
	named    int // named registers allocated so far
	namedCap int // total named registers (pre-pass count)
	tempTop  int
	tempMax  int
	fixups   []fixup
	loops    []loopCtx
	pos      lang.Pos // current statement position for new blocks
	err      error
}

func (c *compiler) genProc(idx int, pd *lang.ProcDecl) (*minivm.Proc, error) {
	g := &procGen{
		c:    c,
		decl: pd,
		proc: &minivm.Proc{Name: pd.Name, ID: idx, NumArgs: len(pd.Params), Line: pd.Pos.Line},
		pos:  pd.Pos,
	}
	g.namedCap = len(pd.Params) + countVars(pd.Body)
	if g.namedCap+8 > minivm.NumRegsMax {
		return nil, errAt(pd.Pos, "procedure %q has too many variables (%d)", pd.Name, g.namedCap)
	}
	g.pushScope()
	for _, p := range pd.Params {
		if _, err := g.declare(p, pd.Pos); err != nil {
			return nil, err
		}
	}
	g.newBlock(pd.Pos)
	g.genBlockStmt(pd.Body)
	if g.err != nil {
		return nil, g.err
	}
	// Implicit `return 0` falling off the end.
	z := g.temp()
	g.emit(minivm.Instr{Op: minivm.OpConst, A: z, Imm: 0})
	g.cur.Term = minivm.Term{Kind: minivm.TermRet, Ret: z}
	g.freeTemp()
	g.cur = nil
	for _, fx := range g.fixups {
		if !fx.lbl.bound {
			return nil, errAt(pd.Pos, "internal: unbound label in %q", pd.Name)
		}
		*fx.slot = fx.lbl.blk
	}
	g.proc.NumRegs = g.namedCap + g.tempMax
	if g.proc.NumRegs == 0 {
		g.proc.NumRegs = 1
	}
	return g.proc, nil
}

func countVars(s lang.Stmt) int {
	n := 0
	var walk func(lang.Stmt)
	walk = func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.BlockStmt:
			for _, x := range st.Stmts {
				walk(x)
			}
		case *lang.VarStmt:
			n++
		case *lang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *lang.WhileStmt:
			walk(st.Body)
		case *lang.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			if st.Post != nil {
				walk(st.Post)
			}
			walk(st.Body)
		}
	}
	walk(s)
	return n
}

func (g *procGen) fail(pos lang.Pos, format string, args ...any) {
	if g.err == nil {
		g.err = errAt(pos, format, args...)
	}
}

func (g *procGen) pushScope() { g.scopes = append(g.scopes, map[string]uint8{}) }
func (g *procGen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *procGen) declare(name string, pos lang.Pos) (uint8, error) {
	top := g.scopes[len(g.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, errAt(pos, "duplicate variable %q", name)
	}
	if g.named >= g.namedCap {
		return 0, errAt(pos, "internal: register pre-pass undercounted in %q", g.decl.Name)
	}
	r := uint8(g.named)
	g.named++
	top[name] = r
	return r, nil
}

// lookup resolves name to a local register; ok is false if it is not a
// local (it may still be a global).
func (g *procGen) lookup(name string) (uint8, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if r, ok := g.scopes[i][name]; ok {
			return r, true
		}
	}
	return 0, false
}

func (g *procGen) temp() uint8 {
	r := g.namedCap + g.tempTop
	g.tempTop++
	if g.tempTop > g.tempMax {
		g.tempMax = g.tempTop
	}
	if r >= minivm.NumRegsMax {
		g.fail(g.pos, "expression too complex (out of registers)")
		return minivm.NumRegsMax - 1
	}
	return uint8(r)
}

func (g *procGen) freeTemp()       { g.tempTop-- }
func (g *procGen) freeTemps(n int) { g.tempTop -= n }

func (g *procGen) emit(in minivm.Instr) {
	g.cur.Instr = append(g.cur.Instr, in)
}

// newBlock appends a fresh current block (without terminating the previous
// one — callers terminate explicitly).
func (g *procGen) newBlock(pos lang.Pos) *minivm.Block {
	b := &minivm.Block{
		Index: len(g.proc.Blocks),
		Proc:  g.proc,
		Line:  pos.Line,
		Col:   pos.Col,
	}
	g.proc.Blocks = append(g.proc.Blocks, b)
	g.cur = b
	return b
}

func (g *procGen) newLabel() *label { return &label{} }

func (g *procGen) bind(l *label, pos lang.Pos) {
	b := g.newBlock(pos)
	l.blk = b.Index
	l.bound = true
}

// jumpTo terminates the current block with a jump to l.
func (g *procGen) jumpTo(l *label) {
	g.cur.Term = minivm.Term{Kind: minivm.TermJump}
	g.fixups = append(g.fixups, fixup{lbl: l, slot: &g.cur.Term.Target})
}

// branchTo terminates the current block with a conditional branch.
func (g *procGen) branchTo(cond minivm.CondOp, a, b uint8, t, f *label) {
	g.cur.Term = minivm.Term{Kind: minivm.TermBranch, Cond: cond, A: a, B: b}
	g.fixups = append(g.fixups, fixup{lbl: t, slot: &g.cur.Term.Target})
	g.fixups = append(g.fixups, fixup{lbl: f, slot: &g.cur.Term.Else})
}
