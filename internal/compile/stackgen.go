package compile

import (
	"fmt"

	"phasemark/internal/lang"
	"phasemark/internal/minivm"
)

// The stack backend: a second "instruction set architecture" for the same
// source language. Where the register backend keeps locals in registers
// and evaluates expressions in a register tree, the stack backend keeps
// every local in a memory frame and evaluates expressions through an
// in-memory operand stack — the dynamic instruction mix, block weights,
// and data traffic all change the way they would across a RISC→CISC port.
//
// This is what makes the paper's §6.2.1 cross-ISA claim testable here:
// markers selected on the register binary map through source positions to
// the stack binary (loops and call sites exist in both, at the same
// lines) and must produce identical firing traces on the same input.
//
// Conventions:
//   - memory layout: user globals at [0, G), then a stack region of
//     StackWords words;
//   - every non-entry procedure takes its user arguments in registers
//     followed by one extra argument: FP, the base of its memory frame;
//   - frame layout: locals at FP+0.., then the operand stack;
//   - the entry procedure materializes FP = G (bottom of the stack
//     region) itself, keeping main's external signature unchanged.

// StackWords is the size of the stack-backend's frame region. Deep
// recursion beyond it faults, which is exactly a stack overflow.
const StackWords = 1 << 16

type stackGen struct {
	c    *compiler
	decl *lang.ProcDecl
	proc *minivm.Proc

	// Register plan: user args in r0..rn-1, FP next, then fixed scratch.
	fp    uint8
	rA    uint8 // primary scratch (pop destination / results)
	rB    uint8 // secondary scratch
	rAddr uint8 // address scratch

	scopes   []map[string]int // local name -> frame slot
	slots    int              // frame slots allocated to locals
	maxSlots int
	depth    int // operand-stack depth
	maxDepth int

	fixups     []fixup
	frameFix   []struct{ blk, idx int } // instrs whose Imm = frame size
	loops      []loopCtx
	pos        lang.Pos
	cur        *minivm.Block
	isEntry    bool
	stackBase  int64
	frameWords int
	err        error
}

// compileStack lowers the file with the stack backend.
func compileStack(f *lang.File, opts Options) (*minivm.Program, error) {
	c := &compiler{
		file:    f,
		globals: map[string]globalSym{},
		procIdx: map[string]int{},
	}
	if err := c.layoutGlobals(); err != nil {
		return nil, err
	}
	prog := &minivm.Program{GlobalWords: c.globalWords + StackWords}
	entry := -1
	for i, pd := range f.Procs {
		if _, dup := c.procIdx[pd.Name]; dup {
			return nil, errAt(pd.Pos, "duplicate procedure %q", pd.Name)
		}
		c.procIdx[pd.Name] = i
		if pd.Name == "main" {
			entry = i
		}
	}
	if entry < 0 {
		return nil, fmt.Errorf("compile: no main procedure")
	}
	prog.Entry = entry
	for i, pd := range f.Procs {
		pr, err := c.genStackProc(i, pd, i == entry, int64(c.globalWords))
		if err != nil {
			return nil, err
		}
		prog.Procs = append(prog.Procs, pr)
	}
	prog.RenumberBlocks()
	if opts.Optimize {
		Optimize(prog)
	}
	if opts.Inline {
		Inline(prog)
		Optimize(prog)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compile: stack backend internal error: %w", err)
	}
	return prog, nil
}

func (c *compiler) genStackProc(idx int, pd *lang.ProcDecl, isEntry bool, stackBase int64) (*minivm.Proc, error) {
	nargs := len(pd.Params)
	g := &stackGen{
		c:    c,
		decl: pd,
		proc: &minivm.Proc{Name: pd.Name, ID: idx, Line: pd.Pos.Line},
		pos:  pd.Pos,

		isEntry:   isEntry,
		stackBase: stackBase,
	}
	if isEntry {
		// main keeps its external signature; FP is materialized locally.
		g.proc.NumArgs = nargs
		g.fp = uint8(nargs)
	} else {
		// Every other procedure receives only FP; its user arguments are
		// already in its frame slots, written there by the caller.
		g.proc.NumArgs = 1
		g.fp = 0
	}
	g.rA = g.fp + 1
	g.rB = g.fp + 2
	g.rAddr = g.fp + 3
	g.proc.NumRegs = int(g.rAddr) + 1
	if g.proc.NumRegs > minivm.NumRegsMax {
		return nil, errAt(pd.Pos, "procedure %q has too many parameters for the stack backend", pd.Name)
	}

	g.pushScope()
	g.newBlock(pd.Pos)
	if isEntry {
		g.emit(minivm.Instr{Op: minivm.OpConst, A: g.fp, Imm: stackBase})
		for i, p := range pd.Params {
			slot := g.declare(p)
			g.emit(minivm.Instr{Op: minivm.OpStore, A: uint8(i), B: g.fp, Imm: int64(slot)})
		}
	} else {
		// Claim the parameter slots the caller populated.
		for _, p := range pd.Params {
			g.declare(p)
		}
	}
	_ = nargs
	g.genBlockStmt(pd.Body)
	if g.err != nil {
		return nil, g.err
	}
	// Implicit return 0.
	g.emit(minivm.Instr{Op: minivm.OpConst, A: g.rA, Imm: 0})
	g.cur.Term = minivm.Term{Kind: minivm.TermRet, Ret: g.rA}
	for _, fx := range g.fixups {
		if !fx.lbl.bound {
			return nil, errAt(pd.Pos, "internal: unbound label in %q", pd.Name)
		}
		*fx.slot = fx.lbl.blk
	}
	// Patch frame-size immediates now that the frame extent is known.
	if g.maxSlots > slotBase {
		return nil, errAt(pd.Pos, "procedure %q has too many locals for the stack backend", pd.Name)
	}
	g.frameWords = slotBase + g.maxDepth
	for _, ff := range g.frameFix {
		g.proc.Blocks[ff.blk].Instr[ff.idx].Imm = int64(g.frameWords)
	}
	return g.proc, nil
}

func (g *stackGen) fail(pos lang.Pos, format string, args ...any) {
	if g.err == nil {
		g.err = errAt(pos, format, args...)
	}
}

func (g *stackGen) pushScope() { g.scopes = append(g.scopes, map[string]int{}) }
func (g *stackGen) popScope() {
	top := g.scopes[len(g.scopes)-1]
	g.slots -= len(top)
	g.scopes = g.scopes[:len(g.scopes)-1]
}

func (g *stackGen) declare(name string) int {
	top := g.scopes[len(g.scopes)-1]
	if _, dup := top[name]; dup {
		g.fail(g.pos, "duplicate variable %q", name)
		return 0
	}
	slot := g.slots
	g.slots++
	if g.slots > g.maxSlots {
		g.maxSlots = g.slots
	}
	top[name] = slot
	return slot
}

func (g *stackGen) lookup(name string) (int, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if s, ok := g.scopes[i][name]; ok {
			return s, true
		}
	}
	return 0, false
}

func (g *stackGen) emit(in minivm.Instr) { g.cur.Instr = append(g.cur.Instr, in) }

func (g *stackGen) newBlock(pos lang.Pos) *minivm.Block {
	b := &minivm.Block{
		Index: len(g.proc.Blocks),
		Proc:  g.proc,
		Line:  pos.Line,
		Col:   pos.Col,
	}
	g.proc.Blocks = append(g.proc.Blocks, b)
	g.cur = b
	return b
}

func (g *stackGen) newLabel() *label { return &label{} }

func (g *stackGen) bind(l *label, pos lang.Pos) {
	b := g.newBlock(pos)
	l.blk = b.Index
	l.bound = true
}

func (g *stackGen) jumpTo(l *label) {
	g.cur.Term = minivm.Term{Kind: minivm.TermJump}
	g.fixups = append(g.fixups, fixup{lbl: l, slot: &g.cur.Term.Target})
}

func (g *stackGen) branchTo(cond minivm.CondOp, a, b uint8, t, f *label) {
	g.cur.Term = minivm.Term{Kind: minivm.TermBranch, Cond: cond, A: a, B: b}
	g.fixups = append(g.fixups, fixup{lbl: t, slot: &g.cur.Term.Target})
	g.fixups = append(g.fixups, fixup{lbl: f, slot: &g.cur.Term.Else})
}

// Operand-stack primitives. The stack occupies frame words
// [maxSlots, maxSlots+depth); since maxSlots grows during generation,
// stack offsets are made relative to a generous fixed base: locals never
// exceed maxSlots, so the operand stack starts at slotBase = 64 (checked).
const slotBase = 64

// pushFrom stores register r onto the operand stack.
func (g *stackGen) pushFrom(r uint8) {
	g.emit(minivm.Instr{Op: minivm.OpStore, A: r, B: g.fp, Imm: int64(slotBase + g.depth)})
	g.depth++
	if g.depth > g.maxDepth {
		g.maxDepth = g.depth
	}
}

// popTo loads the operand-stack top into register r.
func (g *stackGen) popTo(r uint8) {
	g.depth--
	g.emit(minivm.Instr{Op: minivm.OpLoad, A: r, B: g.fp, Imm: int64(slotBase + g.depth)})
}
