package experiments

import (
	"fmt"
	"runtime"

	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/obs"
	"phasemark/internal/simpoint"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// Suite memoizes the expensive shared artifacts (profiles, marker sets,
// traced executions, clusterings) across figures so `spexp -fig all` and
// the benchmark suite don't recompute them per figure.
//
// Every artifact is a singleflight cell (see cell.go): concurrent
// requesters of the same artifact block on its one computation, while
// unrelated artifacts compute in parallel. The multi-workload figure
// harnesses fan workloads out over ForEachWorkload and assemble their
// table rows in deterministic workload order, so the rendered tables are
// byte-identical at any parallelism level.
type Suite struct {
	jobs int
	data cellMap[string, *wdata]

	// placementModes filters the Placement table's minimized-mode columns
	// (nil = all; see SetPlacementModes).
	placementModes map[string]bool
}

// NewSuite builds an empty suite cache with parallelism GOMAXPROCS.
func NewSuite() *Suite {
	return &Suite{jobs: runtime.GOMAXPROCS(0)}
}

// SetParallelism bounds the number of workloads evaluated concurrently by
// the figure harnesses (values below 1 mean 1). Call it before running
// figures; it is not synchronized against in-flight fan-outs.
func (s *Suite) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	s.jobs = n
}

// Parallelism reports the current workload-level parallelism bound.
func (s *Suite) Parallelism() int {
	if s.jobs < 1 {
		return 1
	}
	return s.jobs
}

// wdata is the lazily computed per-workload state. The compiled program is
// immutable and shared; each artifact class below is a keyed set of
// singleflight cells.
type wdata struct {
	w    *workloads.Workload
	prog *minivm.Program

	graphs   cellMap[bool, *core.Graph] // keyed by isRef
	sets     cellMap[string, *core.MarkerSet]
	traces   cellMap[string, *trace.Result]
	clusters cellMap[string, *simpoint.Clustering]
}

// CellStats aggregates the hit/miss/join accounting of every singleflight
// cell the suite has created so far (workload data plus each workload's
// graphs, marker sets, traces, and clusterings).
func (s *Suite) CellStats() cellStats {
	agg := s.data.stats()
	s.data.mu.Lock()
	ds := make([]*cell[*wdata], 0, len(s.data.m))
	for _, c := range s.data.m {
		ds = append(ds, c)
	}
	s.data.mu.Unlock()
	for _, c := range ds {
		c.mu.Lock()
		d := c.val
		c.mu.Unlock()
		if d == nil {
			continue
		}
		agg = agg.add(d.graphs.stats())
		agg = agg.add(d.sets.stats())
		agg = agg.add(d.traces.stats())
		agg = agg.add(d.clusters.stats())
	}
	return agg
}

// The suite-level spans below time the actual artifact computations (cell
// misses) with the workload name as the span argument; cache hits and
// joins cost no span. Finer-grained spans inside core / trace / simpoint
// ("core.select.pass1", "trace.exec", ...) time the algorithm internals.
func (s *Suite) wd(w *workloads.Workload) (*wdata, error) {
	return s.data.get(w.Name, func() (*wdata, error) {
		sp := obs.StartSpan("workload.compile", w.Name)
		defer sp.End()
		prog, err := w.Compile(false)
		if err != nil {
			return nil, err
		}
		return &wdata{w: w, prog: prog}, nil
	})
}

func (d *wdata) graph(ref bool) (*core.Graph, error) {
	return d.graphs.get(ref, func() (*core.Graph, error) {
		sp := obs.StartSpan("graph.build", d.w.Name)
		defer sp.End()
		args := d.w.Train
		if ref {
			args = d.w.Ref
		}
		g, err := core.ProfileRun(d.prog, args...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.w.Name, err)
		}
		return g, nil
	})
}

// markerConfigs are the five marker-selection approaches of Figures 7–9.
var markerConfigs = []struct {
	Name string
	Ref  bool // profile input: ref (self-train) or train (cross-train)
	Opts core.SelectOptions
}{
	{"procs no-limit cross", false, core.SelectOptions{ILower: ILower, ProcsOnly: true}},
	{"procs no-limit self", true, core.SelectOptions{ILower: ILower, ProcsOnly: true}},
	{"no-limit cross", false, core.SelectOptions{ILower: ILower}},
	{"no-limit self", true, core.SelectOptions{ILower: ILower}},
	{"limit 100k-2m", true, core.SelectOptions{ILower: LimitMin, MaxLimit: LimitMax}},

	// Minimized placements (core.MinimizeMarkers) of the two configs the
	// placement table and check.Placement compare against their full
	// counterparts above.
	{"min no-limit cross", false, core.SelectOptions{ILower: ILower, Minimize: true}},
	{"min limit 100k-2m", true, core.SelectOptions{ILower: LimitMin, MaxLimit: LimitMax, Minimize: true}},
}

// minimizedModes pairs each minimizable marker config with its minimized
// counterpart and the stretch bound its placement must respect on the
// profiled input (0 = unbounded: the cross config selects on train and
// runs on ref, so profile-derived static bounds do not transfer). Short is
// the CLI name `spexp -placement-modes` selects columns by.
var minimizedModes = []struct {
	Short     string
	Full, Min string
	Ref       bool // which profile graph the placement cost is priced on
	IUpper    uint64
}{
	{"cross", "no-limit cross", "min no-limit cross", false, 0},
	{"limit", "limit 100k-2m", "min limit 100k-2m", true, LimitMax},
}

func (d *wdata) markerSet(name string) (*core.MarkerSet, error) {
	for _, mc := range markerConfigs {
		if mc.Name != name {
			continue
		}
		mc := mc
		return d.sets.get(name, func() (*core.MarkerSet, error) {
			g, err := d.graph(mc.Ref)
			if err != nil {
				return nil, err
			}
			sp := obs.StartSpan("select.markers", d.w.Name+"/"+name)
			defer sp.End()
			return core.SelectMarkers(g, mc.Opts), nil
		})
	}
	return nil, fmt.Errorf("unknown marker config %q", name)
}

// traced runs the ref input segmented by the named mode:
// "fixed:<n>" cuts every n instructions (BBVs collected);
// a marker-config name cuts at that set's firings (BBVs collected only for
// the limit config, which feeds VLI SimPoint).
func (d *wdata) traced(mode string) (*trace.Result, error) {
	return d.traces.get(mode, func() (*trace.Result, error) {
		cfg := trace.Config{
			Prog: d.prog,
			Args: d.w.Ref,
			CPU:  uarch.DefaultConfig(),
		}
		var n uint64
		if _, err := fmt.Sscanf(mode, "fixed:%d", &n); err == nil {
			cfg.FixedLen = n
		} else {
			set, err := d.markerSet(mode)
			if err != nil {
				return nil, err
			}
			cfg.Markers = set
		}
		// The span starts after the marker-set dependency resolves, so
		// "trace.run" times only the traced execution itself.
		sp := obs.StartSpan("trace.run", d.w.Name+"/"+mode)
		defer sp.End()
		r, err := trace.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", d.w.Name, mode, err)
		}
		return r, nil
	})
}

// clustered runs SimPoint classification over a traced mode's intervals.
func (d *wdata) clustered(mode string, kmax int, seed uint64) (*simpoint.Clustering, *trace.Result, error) {
	res, err := d.traced(mode)
	if err != nil {
		return nil, nil, err
	}
	key := fmt.Sprintf("%s/k%d", mode, kmax)
	c, err := d.clusters.get(key, func() (*simpoint.Clustering, error) {
		sp := obs.StartSpan("simpoint.classify", d.w.Name+"/"+key)
		defer sp.End()
		return simpoint.Classify(res, simpoint.Options{KMax: kmax, Dims: 15, Seed: seed, Restarts: 2, MaxIters: 40}), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return c, res, nil
}
