package experiments

import (
	"fmt"
	"sync"

	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/simpoint"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// Suite memoizes the expensive shared artifacts (profiles, marker sets,
// traced executions, clusterings) across figures so `spexp -fig all` and
// the benchmark suite don't recompute them per figure.
type Suite struct {
	mu   sync.Mutex
	data map[string]*wdata
}

// NewSuite builds an empty suite cache.
func NewSuite() *Suite {
	return &Suite{data: map[string]*wdata{}}
}

// wdata is the lazily computed per-workload state.
type wdata struct {
	w    *workloads.Workload
	prog *minivm.Program

	graphs   map[bool]*core.Graph // keyed by isRef
	sets     map[string]*core.MarkerSet
	traces   map[string]*trace.Result
	clusters map[string]*simpoint.Clustering
}

func (s *Suite) wd(w *workloads.Workload) (*wdata, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.data[w.Name]; ok {
		return d, nil
	}
	prog, err := w.Compile(false)
	if err != nil {
		return nil, err
	}
	d := &wdata{
		w:        w,
		prog:     prog,
		graphs:   map[bool]*core.Graph{},
		sets:     map[string]*core.MarkerSet{},
		traces:   map[string]*trace.Result{},
		clusters: map[string]*simpoint.Clustering{},
	}
	s.data[w.Name] = d
	return d, nil
}

func (d *wdata) graph(ref bool) (*core.Graph, error) {
	if g, ok := d.graphs[ref]; ok {
		return g, nil
	}
	args := d.w.Train
	if ref {
		args = d.w.Ref
	}
	g, err := core.ProfileRun(d.prog, args...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.w.Name, err)
	}
	d.graphs[ref] = g
	return g, nil
}

// markerConfigs are the five marker-selection approaches of Figures 7–9.
var markerConfigs = []struct {
	Name string
	Ref  bool // profile input: ref (self-train) or train (cross-train)
	Opts core.SelectOptions
}{
	{"procs no-limit cross", false, core.SelectOptions{ILower: ILower, ProcsOnly: true}},
	{"procs no-limit self", true, core.SelectOptions{ILower: ILower, ProcsOnly: true}},
	{"no-limit cross", false, core.SelectOptions{ILower: ILower}},
	{"no-limit self", true, core.SelectOptions{ILower: ILower}},
	{"limit 100k-2m", true, core.SelectOptions{ILower: LimitMin, MaxLimit: LimitMax}},
}

func (d *wdata) markerSet(name string) (*core.MarkerSet, error) {
	if s, ok := d.sets[name]; ok {
		return s, nil
	}
	for _, mc := range markerConfigs {
		if mc.Name != name {
			continue
		}
		g, err := d.graph(mc.Ref)
		if err != nil {
			return nil, err
		}
		set := core.SelectMarkers(g, mc.Opts)
		d.sets[name] = set
		return set, nil
	}
	return nil, fmt.Errorf("unknown marker config %q", name)
}

// traced runs the ref input segmented by the named mode:
// "fixed:<n>" cuts every n instructions (BBVs collected);
// a marker-config name cuts at that set's firings (BBVs collected only for
// the limit config, which feeds VLI SimPoint).
func (d *wdata) traced(mode string) (*trace.Result, error) {
	if r, ok := d.traces[mode]; ok {
		return r, nil
	}
	cfg := trace.Config{
		Prog: d.prog,
		Args: d.w.Ref,
		CPU:  uarch.DefaultConfig(),
	}
	var n uint64
	if _, err := fmt.Sscanf(mode, "fixed:%d", &n); err == nil {
		cfg.FixedLen = n
	} else {
		set, err := d.markerSet(mode)
		if err != nil {
			return nil, err
		}
		cfg.Markers = set
	}
	r, err := trace.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", d.w.Name, mode, err)
	}
	d.traces[mode] = r
	return r, nil
}

// clustered runs SimPoint classification over a traced mode's intervals.
func (d *wdata) clustered(mode string, kmax int, seed uint64) (*simpoint.Clustering, *trace.Result, error) {
	key := fmt.Sprintf("%s/k%d", mode, kmax)
	res, err := d.traced(mode)
	if err != nil {
		return nil, nil, err
	}
	if c, ok := d.clusters[key]; ok {
		return c, res, nil
	}
	c := simpoint.Classify(res, simpoint.Options{KMax: kmax, Dims: 15, Seed: seed, Restarts: 2, MaxIters: 40})
	d.clusters[key] = c
	return c, res, nil
}
