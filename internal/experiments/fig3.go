package experiments

import (
	"fmt"

	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/crossbin"
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// timeVarying runs prog on args with fine fixed intervals, recording CPI
// and DL1 miss rate per slice, and overlays marker firings from set.
type tvPoint struct {
	Instr   uint64
	CPI     float64
	DL1Miss float64
	Marker  int // -1 when no marker fired in this slice; else marker index
}

func timeVarying(prog *minivm.Program, args []int64, set *core.MarkerSet, slice uint64) ([]tvPoint, error) {
	var fires []struct {
		at uint64
		id int
	}
	det := core.NewDetector(prog, nil, set, func(marker int, at uint64) {
		fires = append(fires, struct {
			at uint64
			id int
		}{at, marker})
	})
	cpu := uarch.NewCPU(uarch.DefaultConfig(), prog)
	col := &tvCollector{cpu: cpu, slice: slice}
	m := minivm.NewMachine(prog, minivm.MultiObserver{det, cpu, col})
	if _, err := m.Run(args...); err != nil {
		return nil, err
	}
	col.flush()
	// Attach the first marker firing that lands in each slice.
	fi := 0
	for i := range col.points {
		col.points[i].Marker = -1
		end := col.points[i].Instr
		start := end - slice
		for fi < len(fires) && fires[fi].at < start {
			fi++
		}
		if fi < len(fires) && fires[fi].at < end {
			col.points[i].Marker = fires[fi].id
			fi++
			for fi < len(fires) && fires[fi].at < end {
				fi++ // only the first marker per slice is plotted
			}
		}
	}
	return col.points, nil
}

type tvCollector struct {
	minivm.NopObserver
	cpu    *uarch.CPU
	slice  uint64
	instrs uint64
	next   uint64
	prev   uarch.Counters
	points []tvPoint
}

// ObservedEvents implements minivm.EventMasker.
func (c *tvCollector) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

func (c *tvCollector) OnBlock(b *minivm.Block) {
	if c.next == 0 {
		c.next = c.slice
	}
	if c.instrs >= c.next {
		c.flush()
		c.next += c.slice
	}
	c.instrs += uint64(b.Weight())
}

func (c *tvCollector) flush() {
	now := c.cpu.Counters()
	d := now.Sub(c.prev)
	c.prev = now
	if d.Instrs == 0 {
		return
	}
	c.points = append(c.points, tvPoint{Instr: c.instrs, CPI: d.CPI(), DL1Miss: d.L1MissRate()})
}

func tvTable(title, note string, pts []tvPoint) *Table {
	t := &Table{Title: title, Note: note,
		Cols: []string{"instrs", "CPI", "DL1 miss", "marker"}}
	stride := len(pts)/60 + 1
	for i, p := range pts {
		if p.Marker < 0 && i%stride != 0 {
			continue // keep the series readable: all markers + a sampled baseline
		}
		mk := ""
		if p.Marker >= 0 {
			mk = fmt.Sprintf("M%d", p.Marker)
		}
		t.AddRow(millions(float64(p.Instr)), f3(p.CPI), pct(p.DL1Miss), mk)
	}
	return t
}

// Fig3 reproduces the gzip time-varying graph: CPI and DL1 miss rate over
// time with phase-marker firings overlaid (paper Figure 3).
func (s *Suite) Fig3() (*Table, error) {
	w, err := workloads.ByName("gzip")
	if err != nil {
		return nil, err
	}
	d, err := s.wd(w)
	if err != nil {
		return nil, err
	}
	set, err := d.markerSet("no-limit self")
	if err != nil {
		return nil, err
	}
	pts, err := timeVarying(d.prog, w.Ref, set, 20_000)
	if err != nil {
		return nil, err
	}
	return tvTable(
		"Figure 3: gzip time-varying CPI / DL1 miss rate with phase markers",
		"markers fire at the start of each repeating phase; alternating high/low miss phases visible",
		pts), nil
}

// Fig4 reproduces the cross-ISA time-varying graph: markers selected on
// the register-machine binary are mapped through source positions to the
// stack-machine binary of the same source — a different instruction set
// with a different dynamic instruction mix, standing in for the paper's
// Alpha→x86 mapping — and still detect the same high-level phase pattern
// (paper Figure 4; "no call-loop graph was created for the x86 binary").
func (s *Suite) Fig4() (*Table, error) {
	w, err := workloads.ByName("gzip")
	if err != nil {
		return nil, err
	}
	d, err := s.wd(w)
	if err != nil {
		return nil, err
	}
	set, err := d.markerSet("no-limit self")
	if err != nil {
		return nil, err
	}
	f, err := lang.Parse(w.Source)
	if err != nil {
		return nil, err
	}
	stackBin, err := compile.Compile(f, compile.Options{Stack: true})
	if err != nil {
		return nil, err
	}
	mapped, rep, err := crossbin.MapMarkers(set, d.prog, stackBin)
	if err != nil {
		return nil, err
	}
	pts, err := timeVarying(stackBin, w.Ref, mapped, 60_000)
	if err != nil {
		return nil, err
	}
	t := tvTable(
		"Figure 4: cross-ISA time-varying graph (markers mapped register ISA -> stack ISA)",
		fmt.Sprintf("markers mapped via source positions: %d/%d mapped, %d unmapped; no call-loop graph built for the stack binary",
			rep.Mapped, len(set.Markers), len(rep.Unmapped)),
		pts)
	return t, nil
}
