// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 3–12 plus the §6.2.1 cross-binary study) on the
// synthetic workload suite. Each figure has a FigN function returning a
// Table; cmd/spexp prints them and the repository benchmarks time them.
//
// All interval-size constants are the paper's scaled 1:100 (see DESIGN.md):
// the paper's 10M-instruction baseline becomes 100k here because the
// synthetic programs run ~100× fewer instructions than SPEC ref inputs.
//
// # Memoization re-entrancy contract
//
// Expensive artifacts (compiled programs, profiled graphs, marker sets,
// traces) are memoized in singleflight cells (cell.go): the first caller
// computes, concurrent callers block on that flight and share its
// outcome, successful values are cached forever, and errors are never
// cached. No lock is held while a compute function runs, so a compute MAY
// call get on other cells — the figure harnesses chain graph → marker set
// → trace → clustering this way, and internal/store.Memo extends the same
// contract to the phased service. A compute MUST NOT re-enter the cell
// (or, for keyed maps, the key) it is computing: that deadlocks, exactly
// like a recursive sync.Once.Do. Keep compute dependency chains acyclic
// in one direction — earlier pipeline stages never call later ones.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scaled interval-size constants (paper value / 100).
const (
	ILower     = 100_000   // §5.4 marker minimum average interval (paper 10M)
	FixedLen   = 100_000   // BBV baseline fixed interval (paper 10M)
	LimitMin   = 100_000   // §5.2 limit variant minimum (paper 10M)
	LimitMax   = 2_000_000 // §5.2 limit variant maximum (paper 200M)
	TinyFixed  = 1_000     // whole-program CoV small intervals (paper 100k)
	SPFixed1   = 10_000    // "SP_1M" scaled (paper 1M)
	SPFixed10  = 100_000   // "SP_10M" scaled (paper 10M)
	SPFixed100 = 1_000_000 // "SP_100M" scaled (paper 100M)
)

// Table is a printable experiment result.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				sb.WriteString(c + strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

func millions(x float64) string { return fmt.Sprintf("%.2fM", x/1e6) }

func itoa(x int) string { return fmt.Sprintf("%d", x) }

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }
