package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title: "demo",
		Note:  "a note",
		Cols:  []string{"name", "x", "y"},
	}
	tab.AddRow("first", "1.0", "2.0")
	tab.AddRow("second-longer", "10.0", "200.0")
	s := tab.String()
	for _, want := range []string{"== demo ==", "a note", "second-longer", "200.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Header, separator, two rows, plus title/note.
	if len(lines) != 6 {
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
}

func TestFig3ShowsAlternatingPhases(t *testing.T) {
	s := NewSuite()
	tab, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("only %d rows", len(tab.Rows))
	}
	// Markers must appear, and both high- and low-miss slices must exist.
	markers := 0
	var sawHigh, sawLow bool
	for _, row := range tab.Rows {
		if row[3] != "" {
			markers++
		}
		miss := row[2]
		if strings.HasPrefix(miss, "2") && strings.Contains(miss, "%") {
			sawHigh = true
		}
		if strings.HasPrefix(miss, "0.") {
			sawLow = true
		}
	}
	if markers < 4 {
		t.Errorf("only %d marker firings plotted", markers)
	}
	if !sawHigh || !sawLow {
		t.Errorf("missing alternating miss-rate levels (high=%v low=%v)", sawHigh, sawLow)
	}
}

func TestFig56VLIsBeatFixedIntervals(t *testing.T) {
	s := NewSuite()
	tab, err := s.Fig56()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	fixed, vli := tab.Rows[0], tab.Rows[1]
	parse := func(s string) float64 {
		var v float64
		if _, err := sscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	if parse(vli[2]) >= parse(fixed[2]) {
		t.Errorf("VLI mean distance %s not below fixed %s", vli[2], fixed[2])
	}
}

func TestSelectionSpeedTableCoversAllWorkloads(t *testing.T) {
	s := NewSuite()
	tab, err := s.SelectionSpeed()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(strings.TrimSuffix(s, "%"), "%f", v)
}
