package experiments

import (
	"strings"
	"testing"
)

// Two renderings of the same stream where only the §5.1 analysis-cost
// table's wall-clock cells (and therefore its column widths) differ, as
// happens between any two real runs.
const maskRunA = `== Figure 8: number of phases detected ==
program  BBV
-------  ---
art        7

== §5.1: analysis cost — call-loop selection vs Sequitur-on-trace ==
Sequitur timed on the first 300000 block events of the train run (a generous lower bound)
program   nodes  edges  select time  trace events  sequitur time   ratio
--------  -----  -----  -----------  ------------  -------------  ------
applu        23     23        1.2µs        300000         92.1ms  76750x
mcf          21     21       980ns         300000         88.4ms  90204x
`

const maskRunB = `== Figure 8: number of phases detected ==
program  BBV
-------  ---
art        7

== §5.1: analysis cost — call-loop selection vs Sequitur-on-trace ==
Sequitur timed on the first 300000 block events of the train run (a generous lower bound)
program   nodes  edges  select time  trace events  sequitur time    ratio
--------  -----  -----  -----------  ------------  -------------  -------
applu        23     23       890ns         300000        103.7ms  116517x
mcf          21     21        1.1µs        300000         95.0ms   86363x
`

func TestMaskNondeterminismEqualizesSpeedTable(t *testing.T) {
	a, b := MaskNondeterminism(maskRunA), MaskNondeterminism(maskRunB)
	if a != b {
		t.Errorf("masked streams still differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "<time>") || !strings.Contains(a, "<n>x") {
		t.Errorf("wall-clock cells not masked:\n%s", a)
	}
	// The non-wall-clock content of the speed table survives masking.
	for _, keep := range []string{"applu 23 23", "300000", "mcf 21 21"} {
		if !strings.Contains(a, keep) {
			t.Errorf("masking dropped pinned content %q:\n%s", keep, a)
		}
	}
}

func TestMaskNondeterminismLeavesOtherTablesUntouched(t *testing.T) {
	got := MaskNondeterminism(maskRunA)
	figure8 := maskRunA[:strings.Index(maskRunA, "== §5.1")]
	if !strings.HasPrefix(got, figure8) {
		t.Errorf("masking altered bytes outside the §5.1 section:\n%s", got)
	}
}

func TestFiguresHaveUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Figures {
		if seen[f.Name] {
			t.Errorf("duplicate figure name %q", f.Name)
		}
		seen[f.Name] = true
		if f.Fn == nil {
			t.Errorf("figure %q has no function", f.Name)
		}
	}
}
