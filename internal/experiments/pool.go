package experiments

import (
	"sync"
	"time"

	"phasemark/internal/obs"
	"phasemark/internal/workloads"
)

// Worker-pool metrics. Queue wait is measured from the moment the
// dispatcher offers a workload until a worker picks it up (the hand-off
// channel is unbuffered, so this is exactly how long the item waited for a
// free worker); exec is the workload evaluation itself.
var (
	obsPoolBatches   = obs.NewCounter("pool.batches")
	obsPoolItems     = obs.NewCounter("pool.items")
	obsPoolWorkers   = obs.NewGauge("pool.workers")
	obsPoolQueueWait = obs.NewHist("pool.queue_wait_ns")
	obsPoolExec      = obs.NewHist("pool.exec_ns")
)

// ForEachWorkload evaluates fn for every workload of ws on up to
// Parallelism() workers. fn receives the workload's index in ws so callers
// can write results into an index-addressed slice and assemble table rows
// in the original (deterministic) order afterwards.
//
// All workloads are evaluated even if one fails; the returned error is the
// one from the lowest-indexed failing workload, so the outcome does not
// depend on goroutine scheduling.
func (s *Suite) ForEachWorkload(ws []*workloads.Workload, fn func(i int, w *workloads.Workload) error) error {
	jobs := s.Parallelism()
	if jobs > len(ws) {
		jobs = len(ws)
	}
	obsPoolBatches.Inc()
	obsPoolItems.Add(uint64(len(ws)))
	obsPoolWorkers.Set(int64(jobs))
	if jobs <= 1 {
		var first error
		for i, w := range ws {
			t0 := time.Now()
			err := fn(i, w)
			obsPoolExec.Observe(uint64(time.Since(t0)))
			if err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	type item struct {
		i  int
		at time.Time // when the dispatcher offered the item
	}
	errs := make([]error, len(ws))
	idx := make(chan item)
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range idx {
				start := time.Now()
				obsPoolQueueWait.Observe(uint64(start.Sub(it.at)))
				errs[it.i] = fn(it.i, ws[it.i])
				obsPoolExec.Observe(uint64(time.Since(start)))
			}
		}()
	}
	for i := range ws {
		idx <- item{i: i, at: time.Now()}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
