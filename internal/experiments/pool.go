package experiments

import (
	"time"

	"phasemark/internal/obs"
	"phasemark/internal/par"
	"phasemark/internal/workloads"
)

// Worker-pool metrics. Queue wait is measured from the moment the
// dispatcher offers a workload until a worker picks it up (the hand-off
// channel is unbuffered, so this is exactly how long the item waited for a
// free worker); exec is the workload evaluation itself.
var (
	obsPoolBatches   = obs.NewCounter("pool.batches")
	obsPoolItems     = obs.NewCounter("pool.items")
	obsPoolWorkers   = obs.NewGauge("pool.workers")
	obsPoolQueueWait = obs.NewHist("pool.queue_wait_ns")
	obsPoolExec      = obs.NewHist("pool.exec_ns")
)

// poolObs adapts the shared worker-pool primitive's telemetry hooks to
// the suite's metric registry.
var poolObs = &par.Obs{
	QueueWait: func(d time.Duration) { obsPoolQueueWait.Observe(uint64(d)) },
	Exec:      func(d time.Duration) { obsPoolExec.Observe(uint64(d)) },
}

// ForEachWorkload evaluates fn for every workload of ws on up to
// Parallelism() workers (par.ForEach does the scheduling). fn receives
// the workload's index in ws so callers can write results into an
// index-addressed slice and assemble table rows in the original
// (deterministic) order afterwards.
//
// All workloads are evaluated even if one fails; the returned error is the
// one from the lowest-indexed failing workload, so the outcome does not
// depend on goroutine scheduling.
func (s *Suite) ForEachWorkload(ws []*workloads.Workload, fn func(i int, w *workloads.Workload) error) error {
	jobs := s.Parallelism()
	if jobs > len(ws) {
		jobs = len(ws)
	}
	obsPoolBatches.Inc()
	obsPoolItems.Add(uint64(len(ws)))
	obsPoolWorkers.Set(int64(jobs))
	errs := make([]error, len(ws))
	par.ForEach(len(ws), jobs, poolObs, func(worker, i int) {
		errs[i] = fn(i, ws[i])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
