package experiments

import (
	"sync"

	"phasemark/internal/workloads"
)

// ForEachWorkload evaluates fn for every workload of ws on up to
// Parallelism() workers. fn receives the workload's index in ws so callers
// can write results into an index-addressed slice and assemble table rows
// in the original (deterministic) order afterwards.
//
// All workloads are evaluated even if one fails; the returned error is the
// one from the lowest-indexed failing workload, so the outcome does not
// depend on goroutine scheduling.
func (s *Suite) ForEachWorkload(ws []*workloads.Workload, fn func(i int, w *workloads.Workload) error) error {
	jobs := s.Parallelism()
	if jobs > len(ws) {
		jobs = len(ws)
	}
	if jobs <= 1 {
		var first error
		for i, w := range ws {
			if err := fn(i, w); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, len(ws))
	idx := make(chan int)
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i, ws[i])
			}
		}()
	}
	for i := range ws {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
