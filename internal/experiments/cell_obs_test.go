package experiments

import (
	"errors"
	"sync"
	"testing"
	"time"

	"phasemark/internal/obs"
)

// cellCounterNames are the process-wide metrics every cell mirrors its
// local stats into (see the var block at the top of cell.go).
var cellCounterNames = []string{
	"cell.hit", "cell.miss", "cell.join", "cell.join_err", "cell.compute_err",
}

// snapCellCounters reads the registry's cell counters by name —
// obs.NewCounter find-or-creates, so this observes the same counters the
// cells increment.
func snapCellCounters() map[string]uint64 {
	s := make(map[string]uint64, len(cellCounterNames))
	for _, name := range cellCounterNames {
		s[name] = obs.NewCounter(name).Load()
	}
	return s
}

// TestCellObsCounterDeltas drives each cell access pattern against a
// fresh cell and asserts the exact delta it leaves on the process-wide
// obs counters, alongside the error each caller must observe. The
// registry is process-global, so each case measures before/after deltas
// rather than absolute values (the package's tests run sequentially).
func TestCellObsCounterDeltas(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		name string
		// run drives a fresh cell and returns the errors its callers saw,
		// in a scenario-defined order.
		run  func(t *testing.T) []error
		want map[string]uint64
		errs []error // expected caller errors, matching run's order
	}{
		{
			name: "compute then hit",
			run: func(t *testing.T) []error {
				var c cell[int]
				_, err1 := c.get(func() (int, error) { return 1, nil })
				_, err2 := c.get(func() (int, error) { return 2, nil })
				return []error{err1, err2}
			},
			want: map[string]uint64{"cell.miss": 1, "cell.hit": 1},
			errs: []error{nil, nil},
		},
		{
			name: "compute error propagates and is retried",
			run: func(t *testing.T) []error {
				var c cell[int]
				_, err1 := c.get(func() (int, error) { return 0, boom })
				// Errors are not cached: the next caller computes afresh.
				_, err2 := c.get(func() (int, error) { return 7, nil })
				_, err3 := c.get(func() (int, error) { return 8, nil })
				return []error{err1, err2, err3}
			},
			want: map[string]uint64{"cell.miss": 2, "cell.compute_err": 1, "cell.hit": 1},
			errs: []error{boom, nil, nil},
		},
		{
			name: "join of a successful flight",
			run: func(t *testing.T) []error {
				var c cell[int]
				entered := make(chan struct{})
				release := make(chan struct{})
				var wg sync.WaitGroup
				errs := make([]error, 2)
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, errs[0] = c.get(func() (int, error) {
						close(entered)
						<-release
						return 42, nil
					})
				}()
				<-entered
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, errs[1] = c.get(func() (int, error) { return 0, errors.New("waiter must not compute") })
				}()
				time.Sleep(50 * time.Millisecond) // let the waiter block on the flight
				close(release)
				wg.Wait()
				return errs
			},
			want: map[string]uint64{"cell.miss": 1, "cell.join": 1},
			errs: []error{nil, nil},
		},
		{
			name: "join of a failed flight",
			run: func(t *testing.T) []error {
				var c cell[int]
				entered := make(chan struct{})
				release := make(chan struct{})
				var wg sync.WaitGroup
				errs := make([]error, 2)
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, errs[0] = c.get(func() (int, error) {
						close(entered)
						<-release
						return 0, boom
					})
				}()
				<-entered
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, errs[1] = c.get(func() (int, error) { return 0, errors.New("waiter must not compute") })
				}()
				time.Sleep(50 * time.Millisecond)
				close(release)
				wg.Wait()
				return errs
			},
			// The leader's failure is one compute_err; the waiter's shared
			// failure is one join_err — NOT a second compute_err, and not a
			// retry.
			want: map[string]uint64{"cell.miss": 1, "cell.compute_err": 1, "cell.join_err": 1},
			errs: []error{boom, boom},
		},
		{
			name: "cellMap aggregates per-key cells",
			run: func(t *testing.T) []error {
				var cm cellMap[string, int]
				_, err1 := cm.get("a", func() (int, error) { return 1, nil })
				_, err2 := cm.get("b", func() (int, error) { return 0, boom })
				_, err3 := cm.get("a", func() (int, error) { return 9, nil })
				return []error{err1, err2, err3}
			},
			want: map[string]uint64{"cell.miss": 2, "cell.compute_err": 1, "cell.hit": 1},
			errs: []error{nil, boom, nil},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := snapCellCounters()
			errs := tc.run(t)
			after := snapCellCounters()
			for _, name := range cellCounterNames {
				if got, want := after[name]-before[name], tc.want[name]; got != want {
					t.Errorf("%s delta = %d, want %d", name, got, want)
				}
			}
			if len(errs) != len(tc.errs) {
				t.Fatalf("run returned %d errors, scenario defines %d", len(errs), len(tc.errs))
			}
			for i := range errs {
				if !errors.Is(errs[i], tc.errs[i]) && errs[i] != tc.errs[i] {
					t.Errorf("caller %d error = %v, want %v", i, errs[i], tc.errs[i])
				}
			}
		})
	}
}
