package experiments

import (
	"phasemark/internal/trace"
	"phasemark/internal/workloads"
)

// approachEval is one bar of Figures 7/8/9 for one program.
type approachEval struct {
	AvgLen    float64 // Figure 7: average instructions per interval
	Phases    int     // Figure 8: number of unique phase IDs
	Intervals int
	CoVCPI    float64 // Figure 9: weighted per-phase CoV of CPI
}

// workloadEval is the full Figures 7–9 row set for one program.
type workloadEval struct {
	Name       string
	BBV        approachEval // fixed 100k + SimPoint clusters
	Markers    map[string]approachEval
	WholeTiny  float64 // whole-program CoV, 1k fixed intervals
	WholeFixed float64 // whole-program CoV, 100k fixed intervals
}

func (s *Suite) evalWorkload(w *workloads.Workload) (*workloadEval, error) {
	d, err := s.wd(w)
	if err != nil {
		return nil, err
	}
	ev := &workloadEval{Name: w.Name, Markers: map[string]approachEval{}}

	// BBV baseline: fixed intervals classified by SimPoint; phase IDs are
	// cluster assignments (an offline, input-specific classification — the
	// paper calls this comparison idealized).
	cl, resFixed, err := d.clustered(fixedMode(FixedLen), 10, 0xb5e)
	if err != nil {
		return nil, err
	}
	covBBV := trace.PhaseCoV(resFixed.Intervals, func(iv *trace.Interval) int {
		return cl.Assign[iv.Index]
	}, trace.CPIMetric)
	ev.BBV = approachEval{
		AvgLen:    covBBV.AvgIntervalLen,
		Phases:    cl.K,
		Intervals: covBBV.Intervals,
		CoVCPI:    covBBV.CoV,
	}
	ev.WholeFixed = trace.WholeProgramCoV(resFixed.Intervals, trace.CPIMetric)

	resTiny, err := d.traced(fixedMode(TinyFixed))
	if err != nil {
		return nil, err
	}
	ev.WholeTiny = trace.WholeProgramCoV(resTiny.Intervals, trace.CPIMetric)

	for _, mc := range markerConfigs {
		res, err := d.traced(mc.Name)
		if err != nil {
			return nil, err
		}
		cov := trace.PhaseCoV(res.Intervals, trace.IntervalPhase, trace.CPIMetric)
		ev.Markers[mc.Name] = approachEval{
			AvgLen:    cov.AvgIntervalLen,
			Phases:    cov.Phases,
			Intervals: cov.Intervals,
			CoVCPI:    cov.CoV,
		}
	}
	return ev, nil
}

func fixedMode(n uint64) string { return sprintf("fixed:%d", n) }

var approachOrder = []string{
	"procs no-limit cross", "procs no-limit self",
	"no-limit cross", "no-limit self", "limit 100k-2m",
}

// Fig789 computes the shared evaluation for the eleven-program suite,
// profiling and tracing the workloads in parallel; the returned slice is
// in suite order regardless of the parallelism level.
func (s *Suite) Fig789() ([]*workloadEval, error) {
	ws := workloads.Suite79()
	out := make([]*workloadEval, len(ws))
	err := s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
		ev, err := s.evalWorkload(w)
		if err != nil {
			return err
		}
		out[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig7 reports average instructions per interval per approach (paper
// Figure 7; BBV uses fixed 100k-instruction intervals).
func (s *Suite) Fig7() (*Table, error) {
	evs, err := s.Fig789()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 7: average instructions per interval (millions)",
		Note:  "paper scale 1:100 — our 0.1M fixed intervals stand for the paper's 10M",
		Cols:  append([]string{"program", "BBV"}, approachOrder...),
	}
	var sums = make([]float64, len(approachOrder)+1)
	for _, ev := range evs {
		row := []string{ev.Name, millions(ev.BBV.AvgLen)}
		sums[0] += ev.BBV.AvgLen
		for i, a := range approachOrder {
			m := ev.Markers[a]
			row = append(row, millions(m.AvgLen))
			sums[i+1] += m.AvgLen
		}
		t.AddRow(row...)
	}
	avg := []string{"avg"}
	for _, s := range sums {
		avg = append(avg, millions(s/float64(len(evs))))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig8 reports the number of unique phase IDs per approach (paper Figure 8).
func (s *Suite) Fig8() (*Table, error) {
	evs, err := s.Fig789()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 8: number of phases detected",
		Cols:  append([]string{"program", "BBV"}, approachOrder...),
	}
	sums := make([]int, len(approachOrder)+1)
	for _, ev := range evs {
		row := []string{ev.Name, itoa(ev.BBV.Phases)}
		sums[0] += ev.BBV.Phases
		for i, a := range approachOrder {
			m := ev.Markers[a]
			row = append(row, itoa(m.Phases))
			sums[i+1] += m.Phases
		}
		t.AddRow(row...)
	}
	avg := []string{"avg"}
	for _, s := range sums {
		avg = append(avg, f1(float64(s)/float64(len(evs))))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig9 reports the weighted per-phase CoV of CPI per approach, plus the
// whole-program variability baselines (paper Figure 9).
func (s *Suite) Fig9() (*Table, error) {
	evs, err := s.Fig789()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 9: coefficient of variation of CPI per phase",
		Note:  "whole-program columns treat all intervals as one phase (1k / 100k fixed)",
		Cols: append(append([]string{"program", "BBV"}, approachOrder...),
			"1k whole", "100k whole"),
	}
	n := len(approachOrder) + 3
	sums := make([]float64, n)
	for _, ev := range evs {
		row := []string{ev.Name, pct(ev.BBV.CoVCPI)}
		sums[0] += ev.BBV.CoVCPI
		for i, a := range approachOrder {
			m := ev.Markers[a]
			row = append(row, pct(m.CoVCPI))
			sums[i+1] += m.CoVCPI
		}
		row = append(row, pct(ev.WholeTiny), pct(ev.WholeFixed))
		sums[n-2] += ev.WholeTiny
		sums[n-1] += ev.WholeFixed
		t.AddRow(row...)
	}
	avg := []string{"avg"}
	for _, s := range sums {
		avg = append(avg, pct(s/float64(len(evs))))
	}
	t.AddRow(avg...)
	return t, nil
}
