package experiments

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

// update rewrites the golden file instead of diffing against it:
//
//	go test ./internal/experiments -run TestGoldenTables -update
var update = flag.Bool("update", false, "rewrite results/spexp_all.txt from freshly regenerated tables")

// goldenPath is the checked-in `spexp -fig all` stdout, the pinned numbers
// of the paper reproduction.
const goldenPath = "../../results/spexp_all.txt"

// TestGoldenTables regenerates every figure table and diffs it against the
// golden file, so refactors can't silently change the paper's numbers.
// Wall-clock cells of the §5.1 analysis-cost table are masked on both
// sides (see MaskNondeterminism); everything else must match byte for
// byte, at whatever parallelism GOMAXPROCS provides.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating all figures takes minutes; skipped in -short")
	}
	if raceEnabled {
		t.Skip("too slow under -race; the concurrency tests cover the engine")
	}
	s := NewSuite()
	var buf bytes.Buffer
	if err := s.RenderAll(&buf); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", buf.Len(), goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	diffTables(t, MaskNondeterminism(string(want)), MaskNondeterminism(buf.String()))
}

// diffTables reports the first few differing lines with their table
// context instead of dumping two multi-hundred-line blobs.
func diffTables(t *testing.T, want, got string) {
	t.Helper()
	if want == got {
		return
	}
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	section := "(preamble)"
	reported := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if strings.HasPrefix(w, "== ") {
			section = w
		}
		if w != g {
			t.Errorf("golden mismatch in %s\n  line %d golden: %q\n  line %d got:    %q", section, i+1, w, i+1, g)
			if reported++; reported >= 5 {
				t.Errorf("(further differences suppressed; run with -update to accept the new tables)")
				return
			}
		}
	}
}
