//go:build !race

package experiments

// raceEnabled is set by race_on_test.go when building with -race.
const raceEnabled = false
