package experiments

import (
	"fmt"

	"phasemark/internal/adapt"
	"phasemark/internal/reuse"
	"phasemark/internal/simpoint"
	"phasemark/internal/workloads"
)

// fig10Eval holds the six cache-reconfiguration policies of Figure 10 for
// one workload.
type fig10Eval struct {
	Name      string
	BBV       adapt.PolicyResult // idealized SimPoint over fixed intervals
	SPMSelf   adapt.PolicyResult // software phase markers trained on ref
	ProcsX    adapt.PolicyResult // procedures-only markers trained on train
	ReuseDist adapt.PolicyResult // reuse-distance markers (Shen et al. baseline)
	SPMCross  adapt.PolicyResult // software phase markers trained on train
	BestFixed adapt.PolicyResult
}

func (e *fig10Eval) all() []adapt.PolicyResult {
	return []adapt.PolicyResult{e.BBV, e.SPMSelf, e.ProcsX, e.ReuseDist, e.SPMCross, e.BestFixed}
}

func (s *Suite) fig10One(w *workloads.Workload) (*fig10Eval, error) {
	d, err := s.wd(w)
	if err != nil {
		return nil, err
	}
	ev := &fig10Eval{Name: w.Name}

	runSPM := func(mode string) (adapt.PolicyResult, error) {
		set, err := d.markerSet(mode)
		if err != nil {
			return adapt.PolicyResult{}, err
		}
		res, err := adapt.Run(d.prog, w.Ref, adapt.Source{SPM: set})
		if err != nil {
			return adapt.PolicyResult{}, err
		}
		return adapt.Evaluate(res, nil), nil
	}
	if ev.SPMSelf, err = runSPM("no-limit self"); err != nil {
		return nil, err
	}
	if ev.SPMCross, err = runSPM("no-limit cross"); err != nil {
		return nil, err
	}
	if ev.ProcsX, err = runSPM("procs no-limit cross"); err != nil {
		return nil, err
	}

	// Reuse-distance markers (trained on the train input, like the paper).
	rmk, err := reuse.Select(d.prog, w.Train, reuse.Options{})
	if err != nil {
		return nil, err
	}
	resReuse, err := adapt.Run(d.prog, w.Ref, adapt.Source{Reuse: rmk})
	if err != nil {
		return nil, err
	}
	ev.ReuseDist = adapt.Evaluate(resReuse, nil)

	// Idealized SimPoint: fixed intervals, oracle next-interval phase IDs
	// from offline clustering of the interval BBVs.
	resFixed, err := adapt.Run(d.prog, w.Ref, adapt.Source{FixedLen: FixedLen})
	if err != nil {
		return nil, err
	}
	proj := newProjection(resFixed.NumBlocks)
	pts := simpoint.NewMatrix(len(resFixed.BBVs), proj.Out())
	wts := make([]float64, len(resFixed.BBVs))
	for i, v := range resFixed.BBVs {
		v.ProjectInto(pts.Row(i), proj)
		wts[i] = float64(resFixed.Intervals[i].Instrs)
	}
	cl := simpoint.Cluster(pts, wts, simpoint.Options{KMax: 10, Seed: 0x10})
	ev.BBV = adapt.Evaluate(resFixed, func(i int) int { return cl.Assign[i] })

	ev.BestFixed = adapt.BestFixed(resFixed)
	return ev, nil
}

func policyCell(p adapt.PolicyResult) string {
	return fmt.Sprintf("%.0f %+0.2f%%", p.AvgCacheKB, 100*(p.MissRate-p.BaseRate))
}

// Fig10 reports the average adaptive cache size per approach (paper
// Figure 10), plus the gcc/vortex results the paper gives in prose. Each
// cell also shows the policy's miss-rate delta against always running the
// full 256 KB cache — software phase markers shrink the cache *without*
// increasing misses, whereas out-of-sync fixed intervals buy their smaller
// sizes with extra misses.
func (s *Suite) Fig10() (*Table, error) {
	t := &Table{
		Title: "Figure 10: average cache size KB (and miss-rate delta vs 256KB)",
		Note:  "adaptive cache: 64B x 512 sets x 1-8 ways (32-256KB); explore 2 intervals per phase",
		Cols: []string{"program", "BBV", "SPM-Self", "Procs-Cross",
			"ReuseDist", "SPM-Cross", "BestFixed"},
	}
	suite := workloads.Suite10()
	// The paper reports gcc and vortex cache sizes in the text (Shen's
	// markers were unavailable for them); include them after the suite.
	for _, name := range []string{"gcc", "vortex"} {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		suite = append(suite, w)
	}
	evs := make([]*fig10Eval, len(suite))
	err := s.ForEachWorkload(suite, func(i int, w *workloads.Workload) error {
		ev, err := s.fig10One(w)
		if err != nil {
			return fmt.Errorf("fig10 %s: %w", w.Name, err)
		}
		evs[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sums [6]float64
	for _, ev := range evs {
		row := []string{ev.Name}
		for i, p := range ev.all() {
			row = append(row, policyCell(p))
			sums[i] += p.AvgCacheKB
		}
		t.AddRow(row...)
	}
	row := []string{"avg KB"}
	for _, v := range sums {
		row = append(row, f1(v/float64(len(evs))))
	}
	t.AddRow(row...)
	return t, nil
}
