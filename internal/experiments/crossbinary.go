package experiments

import (
	"fmt"
	"time"

	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/crossbin"
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
	"phasemark/internal/sequitur"
	"phasemark/internal/workloads"
)

// CrossBinary reproduces the §6.2.1 study: for every workload, markers are
// selected on the -O0 register binary and mapped through source debug info
// both to the peak-optimized binary and to the stack-machine binary (a
// different ISA); all three binaries run the same input and the sequences
// of marker firings must match exactly for the markers to define
// cross-binary simulation points.
func (s *Suite) CrossBinary() (*Table, error) {
	t := &Table{
		Title: "§6.2.1: cross-binary phase-marker traces (-O0 vs optimized vs stack ISA)",
		Note:  "identical traces mean simulation points can be reused across compilations and ISAs",
		Cols: []string{"program", "markers", "fires -O0",
			"opt mapped", "opt match", "stack mapped", "stack match"},
	}
	ws := workloads.All()
	rows := make([][]string, len(ws))
	err := s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
		d, err := s.wd(w)
		if err != nil {
			return err
		}
		set, err := d.markerSet("no-limit cross")
		if err != nil {
			return err
		}
		tr0, err := crossbin.Trace(d.prog, set, w.Ref...)
		if err != nil {
			return err
		}
		row := []string{w.Name, itoa(len(set.Markers)), itoa(len(tr0))}
		for _, mode := range []compile.Options{{Optimize: true}, {Stack: true}} {
			f, err := lang.Parse(w.Source)
			if err != nil {
				return err
			}
			bin, err := compile.Compile(f, mode)
			if err != nil {
				return err
			}
			mapped, rep, err := crossbin.MapMarkers(set, d.prog, bin)
			if err != nil {
				return err
			}
			match := "-"
			if len(rep.Unmapped) == 0 {
				tr1, err := crossbin.Trace(bin, mapped, w.Ref...)
				if err != nil {
					return err
				}
				if crossbin.TracesEqual(tr0, tr1) {
					match = "YES"
				} else {
					match = "NO"
				}
			}
			row = append(row, itoa(rep.Mapped), match)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// SelectionSpeed reports the marker-selection analysis cost per program —
// the paper's claim that the whole analysis runs in seconds (O(E + N log
// N) on the call-loop graph) where the prior approaches run Sequitur over
// full execution traces ([15] on branch traces; [23] on reuse traces). To
// make the comparison concrete, the table also times SEQUITUR grammar
// inference over the program's dynamic basic-block trace, capped at
// seqCap events (the real traces are orders of magnitude longer, so the
// Sequitur column is a generous lower bound).
func (s *Suite) SelectionSpeed() (*Table, error) {
	const seqCap = 300_000
	t := &Table{
		Title: "§5.1: analysis cost — call-loop selection vs Sequitur-on-trace",
		Note:  fmt.Sprintf("Sequitur timed on the first %d block events of the train run (a generous lower bound)", seqCap),
		Cols:  []string{"program", "nodes", "edges", "select time", "trace events", "sequitur time", "ratio"},
	}
	ws := workloads.All()
	rows := make([][]string, len(ws))
	err := s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
		d, err := s.wd(w)
		if err != nil {
			return err
		}
		g, err := d.graph(true)
		if err != nil {
			return err
		}
		start := time.Now()
		core.SelectMarkers(g, core.SelectOptions{ILower: ILower})
		sel := time.Since(start)

		// Collect a capped dynamic block trace of the train input.
		tr := &traceCap{cap: seqCap}
		m := minivm.NewMachine(d.prog, tr)
		if _, err := m.Run(d.w.Train...); err != nil {
			return err
		}
		start = time.Now()
		gram := sequitur.Build(tr.seq)
		seq := time.Since(start)
		_ = gram
		ratio := float64(seq) / float64(sel)
		rows[i] = []string{w.Name, itoa(len(g.Nodes)), itoa(len(g.Edges)),
			sel.Round(time.Microsecond).String(),
			itoa(len(tr.seq)), seq.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0fx", ratio)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

type traceCap struct {
	minivm.NopObserver
	cap int
	seq []int
}

// ObservedEvents implements minivm.EventMasker.
func (t *traceCap) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

func (t *traceCap) OnBlock(b *minivm.Block) {
	if len(t.seq) < t.cap {
		t.seq = append(t.seq, b.ID)
	}
}
