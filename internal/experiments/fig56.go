package experiments

import (
	"sort"

	"phasemark/internal/bbv"
	"phasemark/internal/trace"
	"phasemark/internal/workloads"
)

// Fig56 reproduces the bzip2 interval-space visualization (paper Figures
// 5/6). The paper projects interval BBVs to 3-D and argues visually that
// marker-defined variable-length intervals form tight clouds around the
// program's dominant code regions, while fixed-length intervals scatter
// "strings of points" between the clouds: an interval straddling a phase
// transition executes a blend of two regions' code and lands between them.
//
// We quantify exactly that: dominant-region signatures are the
// instruction-weighted mean BBVs of the major phases (phases >= 2% of
// execution, taken from the marker segmentation, whose intervals begin at
// code boundaries by construction; the no-limit markers align intervals
// with whole stages, matching the paper's Figure 6). An interval is a *transition blend* if
// its BBV is far from every signature. Fixed-length slicing produces such
// blends at phase changes; marker-synchronized slicing encapsulates each
// transition in its own interval.
func (s *Suite) Fig56() (*Table, error) {
	w, err := workloads.ByName("bzip2")
	if err != nil {
		return nil, err
	}
	d, err := s.wd(w)
	if err != nil {
		return nil, err
	}
	resFixed, err := d.traced(fixedMode(FixedLen))
	if err != nil {
		return nil, err
	}
	resVLI, err := d.traced("no-limit self")
	if err != nil {
		return nil, err
	}

	// Dominant-region signatures: weighted mean BBV per major phase.
	type acc struct {
		sum map[int32]float64
		wt  float64
	}
	accs := map[int]*acc{}
	var total float64
	for _, iv := range resVLI.Intervals {
		a := accs[iv.PhaseID]
		if a == nil {
			a = &acc{sum: map[int32]float64{}}
			accs[iv.PhaseID] = a
		}
		n := iv.BBV.Normalized()
		for i, id := range n.Idx {
			a.sum[id] += n.Val[i] * float64(iv.Len())
		}
		a.wt += float64(iv.Len())
		total += float64(iv.Len())
	}
	var sigs []bbv.Vector
	for _, a := range accs {
		if a.wt < 0.02*total {
			continue
		}
		ids := make([]int32, 0, len(a.sum))
		for id := range a.sum {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		v := bbv.Vector{Idx: ids, Val: make([]float64, len(ids))}
		for i, id := range ids {
			v.Val[i] = a.sum[id] / a.wt
		}
		sigs = append(sigs, v)
	}

	// Instruction-weighted: the paper's clouds are made of execution mass,
	// and a 2-instruction marker-chain connector interval is not a phase.
	const blendDist = 0.35
	measure := func(res *trace.Result) (n int, meanDist, blendFrac float64) {
		var wsum, blendW float64
		for _, iv := range res.Intervals {
			best := 2.0
			for _, sig := range sigs {
				if dd := bbv.ManhattanNormed(iv.BBV, sig); dd < best {
					best = dd
				}
			}
			wt := float64(iv.Len())
			meanDist += best * wt
			wsum += wt
			if best > blendDist {
				blendW += wt
			}
			n++
		}
		if wsum > 0 {
			meanDist /= wsum
			blendFrac = blendW / wsum
		}
		return n, meanDist, blendFrac
	}
	fn, fd, fb := measure(resFixed)
	vn, vd, vb := measure(resVLI)
	t := &Table{
		Title: "Figures 5/6: bzip2 interval point clouds vs dominant code regions",
		Note:  "blend = execution in intervals farther than 0.35 from every dominant-region signature",
		Cols:  []string{"representation", "intervals", "mean dist to region", "blended execution"},
	}
	t.AddRow("fixed 100k (Fig 5)", itoa(fn), f3(fd), pct(fb))
	t.AddRow("phase-marker VLIs (Fig 6)", itoa(vn), f3(vd), pct(vb))
	return t, nil
}
