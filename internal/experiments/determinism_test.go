package experiments

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"phasemark/internal/core"
	"phasemark/internal/trace"
	"phasemark/internal/workloads"
)

// TestFig7DeterministicAcrossParallelism runs a representative figure on
// two fresh suites — serial and 8-way parallel — and requires byte-
// identical table output: the worker-pool fan-out must not be able to
// change the paper's numbers or their order.
func TestFig7DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Figure 7 evaluations take minutes; skipped in -short")
	}
	if raceEnabled {
		t.Skip("too slow under -race; TestConcurrentSuiteSharedArtifacts covers the engine")
	}
	render := func(jobs int) string {
		s := NewSuite()
		s.SetParallelism(jobs)
		tab, err := s.Fig7()
		if err != nil {
			t.Fatalf("-j %d: %v", jobs, err)
		}
		return tab.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("Figure 7 differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", serial, parallel)
	}
}

// TestConcurrentSuiteSharedArtifacts hammers one workload's artifact cells
// from many goroutines — including three marker configs that select on the
// SAME shared ref graph — and checks the singleflight guarantee: every
// caller observes the identical artifact instance. This is the test the
// race detector bites on, and it is cheap enough to run under -race.
func TestConcurrentSuiteSharedArtifacts(t *testing.T) {
	s := NewSuite()
	w, err := workloads.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	type view struct {
		graph *core.Graph
		sets  map[string]*core.MarkerSet
		trace *trace.Result
	}
	views := make([]view, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := s.wd(w)
			if err != nil {
				errs[i] = err
				return
			}
			v := view{sets: map[string]*core.MarkerSet{}}
			if v.graph, err = d.graph(true); err != nil {
				errs[i] = err
				return
			}
			// These three configs all select on the ref graph concurrently.
			for _, name := range []string{"no-limit self", "procs no-limit self", "limit 100k-2m"} {
				set, err := d.markerSet(name)
				if err != nil {
					errs[i] = err
					return
				}
				v.sets[name] = set
			}
			if v.trace, err = d.traced(fixedMode(FixedLen)); err != nil {
				errs[i] = err
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		if views[i].graph != views[0].graph {
			t.Errorf("caller %d computed a second ref graph", i)
		}
		for name, set := range views[i].sets {
			if set != views[0].sets[name] {
				t.Errorf("caller %d computed a second %q marker set", i, name)
			}
		}
		if views[i].trace != views[0].trace {
			t.Errorf("caller %d computed a second fixed trace", i)
		}
	}
	if len(views[0].sets["no-limit self"].Markers) == 0 {
		t.Error("shared marker set is empty")
	}
}

// TestForEachWorkloadOrderAndErrors pins the pool's contract: every index
// is visited exactly once, and the reported error is the lowest-indexed
// failure regardless of scheduling.
func TestForEachWorkloadOrderAndErrors(t *testing.T) {
	ws := workloads.All()
	for _, jobs := range []int{1, 3, 16} {
		s := NewSuite()
		s.SetParallelism(jobs)
		visited := make([]int, len(ws))
		var mu sync.Mutex
		err := s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
			if ws[i] != w {
				t.Errorf("-j %d: index %d paired with workload %s", jobs, i, w.Name)
			}
			mu.Lock()
			visited[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("-j %d: %v", jobs, err)
		}
		for i, n := range visited {
			if n != 1 {
				t.Errorf("-j %d: index %d visited %d times", jobs, i, n)
			}
		}

		// Two failures: the lowest-indexed one must win deterministically.
		errLow := errors.New("low")
		err = s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
			switch i {
			case 2:
				return errLow
			case len(ws) - 1:
				return fmt.Errorf("high")
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("-j %d: got error %v, want the lowest-indexed failure", jobs, err)
		}
	}
}
