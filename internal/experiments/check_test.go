package experiments

import (
	"bytes"
	"strings"
	"testing"

	"phasemark/internal/check"
	"phasemark/internal/workloads"
)

// figureTraceModes is every segmentation mode any figure traces: the five
// fixed interval lengths and the five marker-selection configs. The
// property test sweeps all of them so no figure path can ship intervals
// that fail to tile the execution.
func figureTraceModes() []struct {
	mode    string
	markers bool
} {
	modes := []struct {
		mode    string
		markers bool
	}{
		{fixedMode(FixedLen), false},
		{fixedMode(TinyFixed), false},
		{fixedMode(SPFixed1), false},
		{fixedMode(SPFixed10), false},
		{fixedMode(SPFixed100), false},
	}
	for _, mc := range markerConfigs {
		modes = append(modes, struct {
			mode    string
			markers bool
		}{mc.Name, true})
	}
	return modes
}

// TestSegmentationTilesEveryFigurePath runs the segmentation invariant
// against every (workload, trace mode) pair the figures consume.
func TestSegmentationTilesEveryFigurePath(t *testing.T) {
	if testing.Short() {
		t.Skip("traces every workload in every mode; skipped in -short")
	}
	if raceEnabled {
		t.Skip("too slow under -race; TestCheckWorkloadSmoke covers the harness")
	}
	s := NewSuite()
	modes := figureTraceModes()
	err := s.ForEachWorkload(workloads.All(), func(i int, w *workloads.Workload) error {
		d, err := s.wd(w)
		if err != nil {
			return err
		}
		for _, m := range modes {
			res, err := d.traced(m.mode)
			if err != nil {
				return err
			}
			num := -1
			if m.markers {
				set, err := d.markerSet(m.mode)
				if err != nil {
					return err
				}
				num = len(set.Markers)
			}
			if err := check.Segmentation(res, num); err != nil {
				t.Errorf("%s/%s: %v", w.Name, m.mode, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckWorkloadSmoke runs the full invariant suite on one workload —
// quick enough for every test run (including -race, which is the point:
// the harness shares the suite's concurrent caches).
func TestCheckWorkloadSmoke(t *testing.T) {
	s := NewSuite()
	ws := workloads.All()
	w := ws[0]
	for _, c := range ws {
		if c.Name == "compress" {
			w = c
		}
	}
	cs, err := s.checkWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) < 7 {
		t.Fatalf("expected >= 7 invariants, got %d", len(cs))
	}
	for _, c := range cs {
		if c.Err != nil {
			t.Errorf("%s/%s: %v", w.Name, c.Name, c.Err)
		}
	}
}

// TestRunChecksReportFormat exercises the report writer on the real
// suite across two workloads' worth of artifacts via RunChecks' own
// pool — gated, since it traces those workloads end to end.
func TestRunChecksReportFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the invariant suite over every workload; skipped in -short")
	}
	if raceEnabled {
		t.Skip("too slow under -race; TestCheckWorkloadSmoke covers the harness")
	}
	s := NewSuite()
	var buf bytes.Buffer
	if err := s.RunChecks(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "check: ") {
		t.Errorf("missing summary line in report:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("report contains failures:\n%s", out)
	}
	for _, w := range workloads.All() {
		if !strings.Contains(out, w.Name) {
			t.Errorf("report missing workload %s", w.Name)
		}
	}
}
