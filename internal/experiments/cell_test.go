package experiments

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runWithDeadline fails the test with a useful message instead of hanging
// the whole package when a cell misbehaves (the deadlock cases below).
func runWithDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("deadlock: cell operation did not complete")
	}
}

func TestCellConcurrentCallersShareOneComputation(t *testing.T) {
	var c cell[int]
	var computes atomic.Int32
	var wg sync.WaitGroup
	vals := make([]int, 32)
	for i := range vals {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.get(func() (int, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
}

func TestCellErrorsAreNotCached(t *testing.T) {
	var c cell[int]
	boom := errors.New("boom")
	var computes atomic.Int32

	// Leader fails while concurrent waiters are blocked on its flight:
	// every one of them observes the leader's error, none recompute.
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.get(func() (int, error) {
				computes.Add(1)
				<-release
				return 0, boom
			})
			errs[i] = err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the waiters pile up on the flight
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("failing compute ran %d times, want 1", n)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("waiter %d got %v, want boom", i, err)
		}
	}

	// The failure is not cached: the next caller retries and can succeed.
	v, err := c.get(func() (int, error) {
		computes.Add(1)
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("retry after error: got %d, %v", v, err)
	}
	if n := computes.Load(); n != 2 {
		t.Errorf("computes after retry = %d, want 2", n)
	}

	// And the success IS cached.
	v, err = c.get(func() (int, error) {
		computes.Add(1)
		return -1, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("cached read: got %d, %v", v, err)
	}
	if n := computes.Load(); n != 2 {
		t.Errorf("cached read recomputed: computes = %d, want 2", n)
	}
}

func TestCellStatsAccounting(t *testing.T) {
	var c cell[int]
	boom := errors.New("boom")

	// A failing leader with concurrent waiters: the leader is one miss
	// (and one compute error); each waiter is a join_err, NOT a miss —
	// they did no work and must not be confused with the fresh retry
	// below.
	release := make(chan struct{})
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.get(func() (int, error) {
				<-release
				return 0, boom
			})
		}()
	}
	for c.stats().Misses == 0 {
		time.Sleep(time.Millisecond) // wait for a leader to take the flight
	}
	time.Sleep(20 * time.Millisecond) // let the other three pile up as waiters
	close(release)
	wg.Wait()
	if s := c.stats(); s != (cellStats{Misses: 1, JoinErrs: 3, Errs: 1}) {
		t.Errorf("after failed flight: stats = %+v, want 1 miss, 3 join_errs, 1 err", s)
	}

	// The fresh retry after the failure is a distinct miss.
	if _, err := c.get(func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if s := c.stats(); s.Misses != 2 || s.JoinErrs != 3 {
		t.Errorf("after retry: stats = %+v, want 2 misses keeping 3 join_errs", s)
	}

	// Cached reads are hits.
	c.get(func() (int, error) { return -1, nil })
	c.get(func() (int, error) { return -1, nil })
	if s := c.stats(); s.Hits != 2 {
		t.Errorf("after cached reads: stats = %+v, want 2 hits", s)
	}

	// Waiters on a successful flight are joins.
	var c2 cell[int]
	started := make(chan struct{})
	go2 := make(chan struct{})
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		c2.get(func() (int, error) {
			close(started)
			<-go2
			return 1, nil
		})
	}()
	<-started
	for range 2 {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			c2.get(func() (int, error) { return 0, errors.New("never runs") })
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(go2)
	wg2.Wait()
	if s := c2.stats(); s != (cellStats{Misses: 1, Joins: 2}) {
		t.Errorf("successful flight: stats = %+v, want 1 miss, 2 joins", s)
	}
}

func TestCellMapStatsAggregate(t *testing.T) {
	var cm cellMap[string, int]
	cm.get("a", func() (int, error) { return 1, nil }) // miss
	cm.get("a", func() (int, error) { return 1, nil }) // hit
	cm.get("b", func() (int, error) { return 2, nil }) // miss
	if s := cm.stats(); s != (cellStats{Hits: 1, Misses: 2}) {
		t.Errorf("cellMap stats = %+v, want 1 hit, 2 misses", s)
	}
}

func TestCellReentrantChainDoesNotDeadlock(t *testing.T) {
	// The figure harnesses chain cells: a clustering computes from a
	// trace, which computes from a marker set, which computes from a
	// graph. No lock may be held across a compute call.
	var cm cellMap[string, int]
	runWithDeadline(t, 10*time.Second, func() {
		v, err := cm.get("clustering", func() (int, error) {
			tr, err := cm.get("trace", func() (int, error) {
				set, err := cm.get("markers", func() (int, error) {
					return cm.get("graph", func() (int, error) { return 1, nil })
				})
				if err != nil {
					return 0, err
				}
				return set + 1, nil
			})
			if err != nil {
				return 0, err
			}
			return tr + 1, nil
		})
		if err != nil || v != 3 {
			t.Errorf("chained cells: got %d, %v", v, err)
		}
	})
}

func TestCellMapDistinctKeysComputeConcurrently(t *testing.T) {
	// Key "a"'s compute blocks until key "b"'s compute has started: this
	// only terminates if distinct keys do not serialize on one lock.
	var cm cellMap[string, int]
	bStarted := make(chan struct{})
	runWithDeadline(t, 10*time.Second, func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			cm.get("a", func() (int, error) {
				<-bStarted
				return 1, nil
			})
		}()
		go func() {
			defer wg.Done()
			cm.get("b", func() (int, error) {
				close(bStarted)
				return 2, nil
			})
		}()
		wg.Wait()
	})
}
