package experiments

import (
	"sync"
	"sync/atomic"

	"phasemark/internal/obs"
)

// Process-wide cell metrics, mirrored from every cell's local stats so the
// suite's cache behavior is visible in `spexp -metrics` output. A "miss"
// is a fresh computation (including the retry after a failed flight); a
// "join" waited on another caller's successful flight; a "join_err" waited
// on a flight whose leader failed — distinct from a retry, which computes.
var (
	obsCellHits     = obs.NewCounter("cell.hit")
	obsCellMisses   = obs.NewCounter("cell.miss")
	obsCellJoins    = obs.NewCounter("cell.join")
	obsCellJoinErrs = obs.NewCounter("cell.join_err")
	obsCellErrs     = obs.NewCounter("cell.compute_err")
)

// cellStats is a point-in-time read of one cell's (or one cellMap's
// aggregated) access counts.
type cellStats struct {
	Hits     uint64 // value already cached
	Misses   uint64 // ran compute (first call, or fresh retry after an error)
	Joins    uint64 // waited on an in-flight compute that succeeded
	JoinErrs uint64 // waited on an in-flight compute whose leader failed
	Errs     uint64 // computes (own misses) that returned an error
}

func (s cellStats) add(o cellStats) cellStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Joins += o.Joins
	s.JoinErrs += o.JoinErrs
	s.Errs += o.Errs
	return s
}

// cell is a once-computed memoization slot with singleflight semantics:
// the first caller computes, concurrent callers block on that computation
// (not on a suite-wide lock) and share its outcome, and a successful value
// is cached forever. Errors are deliberately NOT cached — the in-flight
// waiters of a failed computation receive the leader's error, but the next
// caller retries from scratch, so a transient failure can't poison the
// suite for the rest of the run.
//
// No lock is held while compute runs, so a compute function may freely
// call get on *other* cells (the figure harnesses chain graph → marker set
// → trace → clustering). Re-entering the *same* cell from its own compute
// function would deadlock, exactly like a recursive sync.Once.Do.
type cell[T any] struct {
	mu       sync.Mutex
	done     bool
	val      T
	inflight *flight[T]

	// Access accounting (see cellStats). Atomics rather than mu-guarded
	// fields because join outcomes are learned after the flight channel
	// closes, outside the lock.
	hits, misses, joins, joinErrs, errs atomic.Uint64
}

// flight is one in-progress computation; waiters block on ch and then read
// val/err, which are written exactly once before ch is closed.
type flight[T any] struct {
	ch  chan struct{}
	val T
	err error
}

// get returns the cached value, joins an in-flight computation, or runs
// compute itself.
func (c *cell[T]) get(compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.done {
		v := c.val
		c.mu.Unlock()
		c.hits.Add(1)
		obsCellHits.Inc()
		return v, nil
	}
	if f := c.inflight; f != nil {
		c.mu.Unlock()
		<-f.ch
		if f.err != nil {
			// Joined a failed flight: the waiter shares the leader's error
			// but did no work — counted apart from the fresh retry the next
			// caller will perform.
			c.joinErrs.Add(1)
			obsCellJoinErrs.Inc()
		} else {
			c.joins.Add(1)
			obsCellJoins.Inc()
		}
		return f.val, f.err
	}
	f := &flight[T]{ch: make(chan struct{})}
	c.inflight = f
	c.mu.Unlock()
	c.misses.Add(1)
	obsCellMisses.Inc()

	f.val, f.err = compute()

	c.mu.Lock()
	if f.err == nil {
		c.val, c.done = f.val, true
	} else {
		c.errs.Add(1)
		obsCellErrs.Inc()
	}
	c.inflight = nil
	c.mu.Unlock()
	close(f.ch)
	return f.val, f.err
}

// stats reads the cell's access counts. Counts are loaded individually;
// a snapshot taken during concurrent gets is consistent per counter, not
// across counters.
func (c *cell[T]) stats() cellStats {
	return cellStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Joins:    c.joins.Load(),
		JoinErrs: c.joinErrs.Load(),
		Errs:     c.errs.Load(),
	}
}

// cellMap is a keyed collection of cells. The map lock is held only to
// find-or-create the key's cell; the computation itself synchronizes on
// the cell, so distinct keys compute concurrently.
type cellMap[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cell[V]
}

// get finds or creates the cell for k and delegates to cell.get.
func (cm *cellMap[K, V]) get(k K, compute func() (V, error)) (V, error) {
	cm.mu.Lock()
	if cm.m == nil {
		cm.m = map[K]*cell[V]{}
	}
	c := cm.m[k]
	if c == nil {
		c = &cell[V]{}
		cm.m[k] = c
	}
	cm.mu.Unlock()
	return c.get(compute)
}

// stats aggregates the access counts of every cell in the map.
func (cm *cellMap[K, V]) stats() cellStats {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	var s cellStats
	for _, c := range cm.m {
		s = s.add(c.stats())
	}
	return s
}
