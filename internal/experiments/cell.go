package experiments

import "sync"

// cell is a once-computed memoization slot with singleflight semantics:
// the first caller computes, concurrent callers block on that computation
// (not on a suite-wide lock) and share its outcome, and a successful value
// is cached forever. Errors are deliberately NOT cached — the in-flight
// waiters of a failed computation receive the leader's error, but the next
// caller retries from scratch, so a transient failure can't poison the
// suite for the rest of the run.
//
// No lock is held while compute runs, so a compute function may freely
// call get on *other* cells (the figure harnesses chain graph → marker set
// → trace → clustering). Re-entering the *same* cell from its own compute
// function would deadlock, exactly like a recursive sync.Once.Do.
type cell[T any] struct {
	mu       sync.Mutex
	done     bool
	val      T
	inflight *flight[T]
}

// flight is one in-progress computation; waiters block on ch and then read
// val/err, which are written exactly once before ch is closed.
type flight[T any] struct {
	ch  chan struct{}
	val T
	err error
}

// get returns the cached value, joins an in-flight computation, or runs
// compute itself.
func (c *cell[T]) get(compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.done {
		v := c.val
		c.mu.Unlock()
		return v, nil
	}
	if f := c.inflight; f != nil {
		c.mu.Unlock()
		<-f.ch
		return f.val, f.err
	}
	f := &flight[T]{ch: make(chan struct{})}
	c.inflight = f
	c.mu.Unlock()

	f.val, f.err = compute()

	c.mu.Lock()
	if f.err == nil {
		c.val, c.done = f.val, true
	}
	c.inflight = nil
	c.mu.Unlock()
	close(f.ch)
	return f.val, f.err
}

// cellMap is a keyed collection of cells. The map lock is held only to
// find-or-create the key's cell; the computation itself synchronizes on
// the cell, so distinct keys compute concurrently.
type cellMap[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cell[V]
}

// get finds or creates the cell for k and delegates to cell.get.
func (cm *cellMap[K, V]) get(k K, compute func() (V, error)) (V, error) {
	cm.mu.Lock()
	if cm.m == nil {
		cm.m = map[K]*cell[V]{}
	}
	c := cm.m[k]
	if c == nil {
		c = &cell[V]{}
		cm.m[k] = c
	}
	cm.mu.Unlock()
	return c.get(compute)
}
