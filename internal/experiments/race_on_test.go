//go:build race

package experiments

// raceEnabled gates the full-suite regression tests: regenerating every
// figure is CPU-bound interpreter work that the race detector slows by an
// order of magnitude, so under -race those tests are replaced by the
// dedicated concurrency tests (which hammer the same engine on one
// workload and are where the detector has something to find).
const raceEnabled = true
