package experiments

import (
	"phasemark/internal/simpoint"
	"phasemark/internal/stats"
	"phasemark/internal/workloads"
)

func newProjection(numBlocks int) *stats.Projection {
	return stats.NewProjection(numBlocks, 15, 0x515)
}

// spConfig is one bar of Figures 11/12.
type spConfig struct {
	Name     string
	Fixed    uint64 // fixed interval length; 0 = phase-marker VLIs
	KMax     int
	Coverage float64 // cluster-weight coverage filter (1.0 = all points)
}

// spConfigs mirrors the paper's six configurations (scaled 1:100): fixed
// SimPoint at three interval sizes and VLI SimPoint at three coverages.
var spConfigs = []spConfig{
	{"SP_10k", SPFixed1, 30, 1.0},
	{"SP_100k", SPFixed10, 10, 1.0},
	{"SP_1M", SPFixed100, 5, 1.0},
	{"VLI_95%", 0, 30, 0.95},
	{"VLI_99%", 0, 30, 0.99},
	{"VLI_100%", 0, 30, 1.0},
}

// spEval is one workload's row across all configurations.
type spEval struct {
	Name string
	Res  map[string]simpoint.Estimate
}

func (s *Suite) spOne(w *workloads.Workload) (*spEval, error) {
	d, err := s.wd(w)
	if err != nil {
		return nil, err
	}
	ev := &spEval{Name: w.Name, Res: map[string]simpoint.Estimate{}}
	for _, cfg := range spConfigs {
		mode := "limit 100k-2m"
		if cfg.Fixed > 0 {
			mode = fixedMode(cfg.Fixed)
		}
		cl, res, err := d.clustered(mode, cfg.KMax, 0x1112)
		if err != nil {
			return nil, err
		}
		pts := simpoint.PickPoints(cl, cl.Points())
		if cfg.Coverage < 1.0 {
			pts = simpoint.Filter(pts, cfg.Coverage)
		}
		ev.Res[cfg.Name] = simpoint.Evaluate(pts, res.Intervals, res.TrueCPI(), cl.K)
	}
	return ev, nil
}

func (s *Suite) spAll() ([]*spEval, error) {
	ws := workloads.Suite79()
	out := make([]*spEval, len(ws))
	err := s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
		ev, err := s.spOne(w)
		if err != nil {
			return err
		}
		out[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig11 reports the detailed-simulation cost (instructions in the chosen
// simulation points) per configuration (paper Figure 11).
func (s *Suite) Fig11() (*Table, error) {
	evs, err := s.spAll()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 11: simulated instructions per SimPoint configuration (millions)",
		Note:  "fixed-interval SimPoint at three granularities vs phase-marker VLIs at three coverages",
		Cols:  colNames(),
	}
	sums := make([]float64, len(spConfigs))
	for _, ev := range evs {
		row := []string{ev.Name}
		for i, cfg := range spConfigs {
			e := ev.Res[cfg.Name]
			row = append(row, millions(float64(e.SimulatedIns)))
			sums[i] += float64(e.SimulatedIns)
		}
		t.AddRow(row...)
	}
	row := []string{"avg"}
	for _, v := range sums {
		row = append(row, millions(v/float64(len(evs))))
	}
	t.AddRow(row...)
	return t, nil
}

// Fig12 reports the estimated-CPI relative error per configuration (paper
// Figure 12).
func (s *Suite) Fig12() (*Table, error) {
	evs, err := s.spAll()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 12: SimPoint estimated-CPI relative error",
		Cols:  colNames(),
	}
	sums := make([]float64, len(spConfigs))
	for _, ev := range evs {
		row := []string{ev.Name}
		for i, cfg := range spConfigs {
			e := ev.Res[cfg.Name]
			row = append(row, pct(e.RelativeError))
			sums[i] += e.RelativeError
		}
		t.AddRow(row...)
	}
	row := []string{"avg"}
	for _, v := range sums {
		row = append(row, pct(v/float64(len(evs))))
	}
	t.AddRow(row...)
	return t, nil
}

func colNames() []string {
	cols := []string{"program"}
	for _, cfg := range spConfigs {
		cols = append(cols, cfg.Name)
	}
	return cols
}
