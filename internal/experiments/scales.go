package experiments

import (
	"fmt"

	"phasemark/internal/core"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// scaleSweep is the §5.1 multi-granularity property: "many programs
// exhibit repeating behavior at different time scales... our call-graph
// can be used to find both large and small scale phase behaviors" — the
// same graph, selected at increasing ILower, yields marker sets whose
// intervals grow with the requested granularity while staying homogeneous.
var scaleSweep = []uint64{10_000, 30_000, 100_000, 300_000, 1_000_000}

// Scales reports, for each program and granularity, the achieved average
// interval length (instructions) and the number of markers selected.
func (s *Suite) Scales() (*Table, error) {
	t := &Table{
		Title: "§5.1: multi-scale marker selection (one call-loop graph, several ilower granularities)",
		Note:  "cells show achieved average interval length / markers selected on the ref input",
		Cols:  []string{"program"},
	}
	for _, il := range scaleSweep {
		t.Cols = append(t.Cols, fmt.Sprintf("ilower %s", millions(float64(il))))
	}
	ws := workloads.Suite79()
	rows := make([][]string, len(ws))
	err := s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
		d, err := s.wd(w)
		if err != nil {
			return err
		}
		g, err := d.graph(true)
		if err != nil {
			return err
		}
		row := []string{w.Name}
		for _, il := range scaleSweep {
			set := core.SelectMarkers(g, core.SelectOptions{ILower: il})
			if len(set.Markers) == 0 {
				row = append(row, "-")
				continue
			}
			res, err := trace.Run(trace.Config{
				Prog:    d.prog,
				Args:    w.Ref,
				CPU:     uarch.DefaultConfig(),
				Markers: set,
				SkipBBV: true,
			})
			if err != nil {
				return err
			}
			cov := trace.PhaseCoV(res.Intervals, trace.IntervalPhase, trace.CPIMetric)
			row = append(row, fmt.Sprintf("%s/%d", millions(cov.AvgIntervalLen), len(set.Markers)))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}
