package experiments

import (
	"fmt"
	"io"

	"phasemark/internal/check"
	"phasemark/internal/core"
	"phasemark/internal/obs"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// Invariant-suite metrics: how many invariants were evaluated and how
// they fared, visible in -metrics snapshots next to the pipeline stats.
var (
	obsCheckPass = obs.NewCounter("check.pass")
	obsCheckFail = obs.NewCounter("check.fail")
)

// namedCheck is one evaluated invariant: its label and the violation
// (nil when the invariant holds).
type namedCheck struct {
	Name string
	Err  error
}

// checkWorkload runs the full invariant suite for one workload, reusing
// the suite's singleflight cells so `spexp -check` shares every artifact
// (profile, marker sets, traced runs, clusterings) with the figures, and
// a combined run computes nothing twice. A returned error means an
// artifact could not be computed at all; invariant violations come back
// in the slice.
func (s *Suite) checkWorkload(w *workloads.Workload) ([]namedCheck, error) {
	d, err := s.wd(w)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan("check.workload", w.Name)
	defer sp.End()

	var out []namedCheck
	add := func(name string, err error) {
		out = append(out, namedCheck{Name: name, Err: err})
	}

	// (a) Segmentation invariants: intervals tile [0, Instructions) with
	// per-interval BBV mass equal to interval length — for the fixed-length
	// baseline and for both marker-cut (VLI) modes the figures measure.
	resFixed, err := d.traced(fixedMode(FixedLen))
	if err != nil {
		return nil, err
	}
	add("seg/fixed", check.Segmentation(resFixed, -1))
	var resLimit *trace.Result
	var setLimit *core.MarkerSet
	for _, mode := range []string{"no-limit cross", "limit 100k-2m"} {
		set, err := d.markerSet(mode)
		if err != nil {
			return nil, err
		}
		res, err := d.traced(mode)
		if err != nil {
			return nil, err
		}
		add("seg/vli["+mode+"]", check.Segmentation(res, len(set.Markers)))
		if mode == "limit 100k-2m" {
			resLimit, setLimit = res, set
		}
	}

	// (e) Streaming equivalence: the chunked, arena-recycling emission
	// mode (and the online per-chunk projection) must reproduce the
	// materialized traces above bit-for-bit, in both cutting modes. The
	// cached materialized results serve as the reference, so this re-runs
	// only the streaming side.
	base := trace.Config{Prog: d.prog, Args: d.w.Ref, CPU: uarch.DefaultConfig()}
	cfgF := base
	cfgF.FixedLen = FixedLen
	add("stream/fixed", check.Streaming(cfgF, resFixed))
	cfgV := base
	cfgV.Markers = setLimit
	add("stream/vli", check.Streaming(cfgV, resLimit))

	// (g) Pipeline-parallel equivalence: the Workers engine (record/replay
	// decoupling plus parallel chunk consumers) must reproduce the same
	// references bit-for-bit at workers 1, 4, and 16 — intervals,
	// projections, streamed clustering, and CoV — in both cutting modes.
	add("stream-par/fixed", check.StreamingParallel(cfgF, resFixed))
	add("stream-par/vli", check.StreamingParallel(cfgV, resLimit))

	// (d) Clustering invariants over the clusterings Figures 7–9 and 11–12
	// are built from (same cache keys: same kmax and seeds).
	clF, resF, err := d.clustered(fixedMode(FixedLen), 10, 0xb5e)
	if err != nil {
		return nil, err
	}
	add("cluster/fixed", check.Clustering(clF, len(resF.Intervals)))
	clV, resV, err := d.clustered("limit 100k-2m", 30, 0x1112)
	if err != nil {
		return nil, err
	}
	add("cluster/vli", check.Clustering(clV, len(resV.Intervals)))

	// (b) Differential backend oracle and (c) detector/instrumentation
	// equivalence, both on the marker set the §6.2.1 study selects on the
	// -O0 binary.
	set, err := d.markerSet("no-limit cross")
	if err != nil {
		return nil, err
	}
	add("instrument", check.DetectorInstrument(d.prog, set, w.Ref...))
	add("crossbin", check.CrossBinary(w.Source, d.prog, set, w.Ref...))

	// (f) Placement invariants: the minimized marker placement must fire as
	// the exact restriction of the full set (check.Placement, with the
	// stretch bound enforced where the selection pinned one), and the
	// minimized cut sequence must still segment execution per the tiling
	// invariant — in both cutting modes.
	for _, mm := range minimizedModes {
		full, err := d.markerSet(mm.Full)
		if err != nil {
			return nil, err
		}
		min, err := d.markerSet(mm.Min)
		if err != nil {
			return nil, err
		}
		add("placement/"+mm.Full, check.Placement(d.prog, full, min, mm.IUpper, w.Ref...))
		res, err := d.traced(mm.Min)
		if err != nil {
			return nil, err
		}
		add("placement-seg/"+mm.Full, check.Segmentation(res, len(min.Markers)))
	}
	return out, nil
}

// RunChecks sweeps the correctness harness over every workload on the
// suite's worker pool and writes a per-workload report to w. It returns
// an error when any invariant is violated (or any artifact fails to
// build), making `spexp -check` a usable CI gate: the differential
// backend oracle, segmentation tiling, clustering sanity, and
// detector/instrumentation equivalence all hold, or the run fails.
func (s *Suite) RunChecks(w io.Writer) error {
	ws := workloads.All()
	rows := make([][]namedCheck, len(ws))
	err := s.ForEachWorkload(ws, func(i int, wl *workloads.Workload) error {
		cs, err := s.checkWorkload(wl)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.Name, err)
		}
		rows[i] = cs
		return nil
	})
	if err != nil {
		return err
	}
	checks, failures := 0, 0
	for i, wl := range ws {
		var failed []string
		for _, c := range rows[i] {
			checks++
			if c.Err != nil {
				failures++
				obsCheckFail.Inc()
				failed = append(failed, fmt.Sprintf("%s: %v", c.Name, c.Err))
			} else {
				obsCheckPass.Inc()
			}
		}
		if len(failed) == 0 {
			fmt.Fprintf(w, "%-12s ok (%d invariants)\n", wl.Name, len(rows[i]))
			continue
		}
		fmt.Fprintf(w, "%-12s FAIL\n", wl.Name)
		for _, f := range failed {
			fmt.Fprintf(w, "    %s\n", f)
		}
	}
	fmt.Fprintf(w, "check: %d workloads, %d invariants, %d violations\n", len(ws), checks, failures)
	if failures > 0 {
		return fmt.Errorf("check: %d invariant(s) violated", failures)
	}
	return nil
}
