package experiments

import (
	"fmt"
	"strings"

	"phasemark/internal/core"
	"phasemark/internal/trace"
	"phasemark/internal/workloads"
)

// SetPlacementModes restricts the Placement table to a comma-separated
// subset of the minimized modes ("cross", "limit"). Empty selects all.
// Unknown names are an error listing the valid ones, mirroring spexp's
// -bench-stages convention.
func (s *Suite) SetPlacementModes(csv string) error {
	if strings.TrimSpace(csv) == "" {
		s.placementModes = nil
		return nil
	}
	known := make([]string, 0, len(minimizedModes))
	for _, mm := range minimizedModes {
		known = append(known, mm.Short)
	}
	want := map[string]bool{}
	var unknown []string
	for _, m := range strings.Split(csv, ",") {
		m = strings.TrimSpace(m)
		ok := false
		for _, k := range known {
			if m == k {
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, fmt.Sprintf("%q", m))
			continue
		}
		want[m] = true
	}
	if len(unknown) > 0 {
		return fmt.Errorf("unknown placement mode %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(known, ", "))
	}
	s.placementModes = want
	return nil
}

// placementEval is the before/after comparison for one workload and one
// minimized mode.
type placementEval struct {
	Full, Kept         int     // marker-set sizes
	CostFull, CostKept uint64  // detector site traversals on the profile
	AvgFull, AvgKept   float64 // mean interval length on the ref run
	MaxFull, MaxKept   uint64  // longest interval on the ref run
}

// ivlStats summarizes an interval-length distribution.
func ivlStats(ivs []*trace.Interval) (avg float64, max uint64) {
	if len(ivs) == 0 {
		return 0, 0
	}
	var sum uint64
	for _, iv := range ivs {
		l := iv.Len()
		sum += l
		if l > max {
			max = l
		}
	}
	return float64(sum) / float64(len(ivs)), max
}

// siteCost prices a marker set on a profiled graph: the sum of traversal
// counts over the marker edges — each traversal is one detector site hit
// (see core.MinimizeReport).
func siteCost(g *core.Graph, set *core.MarkerSet) uint64 {
	var c uint64
	for _, m := range set.Markers {
		if e := g.EdgeByKey(m.Key); e != nil {
			c += e.Count()
		}
	}
	return c
}

// Placement reports the minimum-cost marker placement against the full
// selection for every workload: marker-set size, detector site cost on the
// selection profile, and the ref-run interval-length distribution, before
// and after core.MinimizeMarkers — per minimized mode (filter with
// SetPlacementModes / spexp -placement-modes).
func (s *Suite) Placement() (*Table, error) {
	var modes []int
	for i, mm := range minimizedModes {
		if s.placementModes == nil || s.placementModes[mm.Short] {
			modes = append(modes, i)
		}
	}
	ws := workloads.All()
	evs := make([]map[string]placementEval, len(ws))
	err := s.ForEachWorkload(ws, func(i int, w *workloads.Workload) error {
		d, err := s.wd(w)
		if err != nil {
			return err
		}
		evs[i] = map[string]placementEval{}
		for _, mi := range modes {
			mm := minimizedModes[mi]
			full, err := d.markerSet(mm.Full)
			if err != nil {
				return err
			}
			min, err := d.markerSet(mm.Min)
			if err != nil {
				return err
			}
			g, err := d.graph(mm.Ref)
			if err != nil {
				return err
			}
			resFull, err := d.traced(mm.Full)
			if err != nil {
				return err
			}
			resMin, err := d.traced(mm.Min)
			if err != nil {
				return err
			}
			ev := placementEval{
				Full:     len(full.Markers),
				Kept:     len(min.Markers),
				CostFull: siteCost(g, full),
				CostKept: siteCost(g, min),
			}
			ev.AvgFull, ev.MaxFull = ivlStats(resFull.Intervals)
			ev.AvgKept, ev.MaxKept = ivlStats(resMin.Intervals)
			evs[i][mm.Short] = ev
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Placement: minimum-cost marker placement (full -> minimized)",
		Note:  "sites = detector site traversals on the selection profile; intervals from the ref run",
	}
	cols := []string{"program"}
	for _, mi := range modes {
		p := minimizedModes[mi].Short
		cols = append(cols, p+" markers", p+" sites", p+" avg ivl", p+" max ivl")
	}
	t.Cols = cols
	for i, w := range ws {
		row := []string{w.Name}
		for _, mi := range modes {
			ev := evs[i][minimizedModes[mi].Short]
			row = append(row,
				sprintf("%d->%d", ev.Full, ev.Kept),
				costDelta(ev.CostFull, ev.CostKept),
				sprintf("%s->%s", millions(ev.AvgFull), millions(ev.AvgKept)),
				sprintf("%s->%s", millions(float64(ev.MaxFull)), millions(float64(ev.MaxKept))),
			)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// costDelta renders a site-cost change as a percentage reduction. The
// display is clamped so a nonzero surviving cost never rounds to -100%
// and an unchanged cost reads 0%, not -0.0%.
func costDelta(full, kept uint64) string {
	if full == 0 || kept == full {
		return "0%"
	}
	pct := 100 * (1 - float64(kept)/float64(full))
	if kept > 0 && pct > 99.9 {
		pct = 99.9
	}
	if pct < 0.1 { // kept is a subset, so any change is a reduction
		pct = 0.1
	}
	return sprintf("-%.1f%%", pct)
}
