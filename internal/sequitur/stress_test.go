package sequitur

import (
	"testing"

	"phasemark/internal/stats"
)

func TestStressLongTraces(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		r := stats.NewRNG(seed*77 + 1)
		n := 60_000
		seq := make([]int, 0, n)
		// Phase-structured trace: repeated motifs with noise.
		motifs := [][]int{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
		for len(seq) < n {
			m := motifs[r.Intn(3)]
			reps := r.Intn(20) + 1
			for k := 0; k < reps && len(seq) < n; k++ {
				seq = append(seq, m...)
			}
			if r.Intn(4) == 0 {
				seq = append(seq, r.Intn(30))
			}
		}
		g := Build(seq)
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out := g.Expand()
		for i := range seq {
			if out[i] != seq[i] {
				t.Fatalf("seed %d: expansion diverges at %d", seed, i)
			}
		}
		if g.CompressionRatio() < 3 {
			t.Fatalf("seed %d: ratio %.2f too low for motif trace", seed, g.CompressionRatio())
		}
	}
}
