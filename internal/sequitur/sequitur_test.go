package sequitur

import (
	"testing"
	"testing/quick"

	"phasemark/internal/stats"
)

func expandEquals(t *testing.T, seq []int) *Grammar {
	t.Helper()
	g := Build(seq)
	got := g.Expand()
	if len(got) != len(seq) {
		t.Fatalf("expand length %d != %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("expand[%d] = %d, want %d", i, got[i], seq[i])
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
	return g
}

func TestClassicExamples(t *testing.T) {
	// "abcabc" -> S: A A, A: a b c (one rule beyond the start rule).
	g := expandEquals(t, []int{1, 2, 3, 1, 2, 3})
	if g.Rules() < 2 {
		t.Fatalf("abcabc produced %d rules, want >= 2", g.Rules())
	}
	if g.Symbols() >= g.InputLen() {
		t.Fatalf("no compression: %d symbols for %d input", g.Symbols(), g.InputLen())
	}

	// "abab" -> S: A A, A: a b.
	g2 := expandEquals(t, []int{7, 9, 7, 9})
	if g2.Rules() != 2 {
		t.Fatalf("abab rules = %d, want 2", g2.Rules())
	}

	// All distinct: no rules beyond start.
	g3 := expandEquals(t, []int{1, 2, 3, 4, 5})
	if g3.Rules() != 1 {
		t.Fatalf("distinct symbols produced %d rules", g3.Rules())
	}
}

func TestHierarchicalRepetition(t *testing.T) {
	// (abab)^4: Sequitur should build nested rules and compress well.
	var seq []int
	for i := 0; i < 4; i++ {
		seq = append(seq, 1, 2, 1, 2)
	}
	g := expandEquals(t, seq)
	if g.CompressionRatio() < 2 {
		t.Fatalf("compression ratio %.2f too low for (abab)^4", g.CompressionRatio())
	}
}

func TestOverlappingDigrams(t *testing.T) {
	// "aaaa" exercises the overlap guard (aa appears at positions 0,1,2).
	expandEquals(t, []int{5, 5, 5, 5})
	expandEquals(t, []int{5, 5, 5, 5, 5})
	expandEquals(t, []int{5, 5, 5, 5, 5, 5, 5, 5, 5})
}

func TestPhaseLikeTrace(t *testing.T) {
	// A marker-trace-like sequence: periodic with two alternating blocks.
	var seq []int
	for i := 0; i < 200; i++ {
		seq = append(seq, 10, 11, 12, 10, 13, 12)
	}
	g := expandEquals(t, seq)
	if g.CompressionRatio() < 20 {
		t.Fatalf("periodic trace ratio %.2f, want >> 1", g.CompressionRatio())
	}
}

// Property: expansion always reproduces the input and invariants hold, on
// random sequences over small alphabets (which force heavy rule churn).
func TestRoundTripFuzz(t *testing.T) {
	f := func(seed uint64, alpha uint8, n uint16) bool {
		r := stats.NewRNG(seed)
		a := int(alpha)%6 + 2
		ln := int(n)%800 + 1
		seq := make([]int, ln)
		for i := range seq {
			seq[i] = r.Intn(a)
		}
		g := Build(seq)
		if err := g.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got := g.Expand()
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeTerminalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative terminal")
		}
	}()
	New().Append(-1)
}
