// Package sequitur implements the SEQUITUR grammar-inference algorithm of
// Nevill-Manning & Witten — the machinery behind the two prior phase
// approaches the paper compares itself against on analysis cost: Shen et
// al. run Sequitur over data-reuse traces, and the VLI work [15] runs it
// over branch traces, both to expose hierarchical repetition. The paper's
// claim is that call-loop-graph marker selection is *significantly
// faster*; this package exists so that claim is measurable here (see the
// §5.1 analysis-cost experiment).
//
// SEQUITUR builds a context-free grammar from a sequence online, enforcing
// two invariants after every appended symbol:
//
//	digram uniqueness — no pair of adjacent symbols appears twice in the
//	grammar (a repeated digram becomes a rule);
//	rule utility — every rule is referenced at least twice (a rule used
//	once is inlined and removed).
package sequitur

import "fmt"

// symbol is a node in a doubly linked symbol list. Terminals carry a
// non-negative value; rule references carry the rule. Each rule's body is
// a circular list headed by a guard node.
type symbol struct {
	prev, next *symbol
	value      int
	rule       *rule // non-nil for rule references
	guardOf    *rule // non-nil for guard nodes
}

func (s *symbol) isGuard() bool { return s.guardOf != nil }

type rule struct {
	id    int
	guard *symbol
	uses  int
}

func newRule(id int) *rule {
	r := &rule{id: id}
	g := &symbol{guardOf: r}
	g.prev, g.next = g, g
	r.guard = g
	return r
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }

// digram is the hash key for adjacent symbol pairs. Terminals use their
// value; rule references use ^rule.id (disjoint from terminal space).
type digram struct{ a, b int }

func symKey(s *symbol) int {
	if s.rule != nil {
		return ^s.rule.id
	}
	return s.value
}

// Grammar is the inferred grammar. Rule 0 is the start rule.
type Grammar struct {
	start   *rule
	rules   map[int]*rule
	nextID  int
	index   map[digram]*symbol // first symbol of each digram occurrence
	symbols int                // total live non-guard symbols (for stats)
	input   int                // input length consumed
}

// New creates an empty grammar.
func New() *Grammar {
	g := &Grammar{
		rules:  map[int]*rule{},
		nextID: 1,
		index:  map[digram]*symbol{},
	}
	g.start = newRule(0)
	g.rules[0] = g.start
	return g
}

// Build infers a grammar for the whole sequence.
func Build(seq []int) *Grammar {
	g := New()
	for _, v := range seq {
		g.Append(v)
	}
	return g
}

// Append consumes one terminal (must be >= 0).
func (g *Grammar) Append(v int) {
	if v < 0 {
		panic("sequitur: terminals must be non-negative")
	}
	g.input++
	s := &symbol{value: v}
	g.insertAfter(g.start.last(), s)
	g.check(s.prev)
}

// checkJoins re-checks the two digrams around a structural change,
// skipping the second when the first triggered a substitution (the
// canonical `if (!q->check()) q->next->check()` guard: a substitution may
// have consumed the symbols the second check would look at).
func (g *Grammar) checkJoins(a, b *symbol) {
	if !g.check(a) {
		g.check(b)
	}
}

// insertAfter links n after at and bumps the symbol count.
func (g *Grammar) insertAfter(at, n *symbol) {
	n.prev = at
	n.next = at.next
	at.next.prev = n
	at.next = n
	g.symbols++
	if n.rule != nil {
		n.rule.uses++
	}
}

// remove unlinks s (index entries must be cleaned by callers).
func (g *Grammar) remove(s *symbol) {
	s.prev.next = s.next
	s.next.prev = s.prev
	g.symbols--
	if s.rule != nil {
		s.rule.uses--
	}
}

// unindex removes the digram starting at s from the index if it points
// at s.
func (g *Grammar) unindex(s *symbol) {
	if s.isGuard() || s.next.isGuard() {
		return
	}
	d := digram{symKey(s), symKey(s.next)}
	if g.index[d] == s {
		delete(g.index, d)
	}
}

// check enforces digram uniqueness for the digram starting at s,
// reporting whether it performed a substitution.
func (g *Grammar) check(s *symbol) bool {
	if s == nil || s.isGuard() || s.next.isGuard() {
		return false
	}
	d := digram{symKey(s), symKey(s.next)}
	match, seen := g.index[d]
	if !seen {
		g.index[d] = s
		return false
	}
	if match == s || match.next == s || s.next == match {
		// Same or overlapping occurrence (aaa): leave as is.
		return false
	}
	// A repeated digram: if the match is a complete rule body, reuse that
	// rule; otherwise create a new rule for the digram.
	if match.prev.isGuard() && match.next.next.isGuard() {
		r := match.prev.guardOf
		g.substitute(s, r)
		return true
	}
	r := newRule(g.nextID)
	g.nextID++
	g.rules[r.id] = r
	// Rule body: copies of the digram symbols.
	c1 := &symbol{value: match.value, rule: match.rule}
	c2 := &symbol{value: match.next.value, rule: match.next.rule}
	g.insertAfter(r.guard, c1)
	g.insertAfter(c1, c2)
	// Replace both occurrences (older first), then index the rule body.
	g.substitute(match, r)
	g.substitute(s, r)
	g.index[d] = c1
	return true
}

// substitute replaces the digram starting at s with a reference to r,
// then re-checks the digrams around the new reference and enforces rule
// utility on any rules whose use count dropped.
func (g *Grammar) substitute(s *symbol, r *rule) {
	a, b := s, s.next
	g.unindex(a.prev)
	g.unindex(a)
	g.unindex(b)
	ra, rb := a.rule, b.rule
	g.remove(a)
	g.remove(b)
	ref := &symbol{value: -1, rule: r}
	g.insertAfter(a.prev, ref)
	g.checkJoins(ref.prev, ref)
	// Rule utility: inline rules that fell to a single use.
	for _, dead := range []*rule{ra, rb} {
		if dead != nil && dead != r && dead.uses == 1 {
			g.inlineSingleUse(dead)
		}
	}
}

// inlineSingleUse splices the single remaining reference to r with the
// rule's body and deletes the rule. The body symbols move as-is, so their
// interior digram index entries stay valid; only the two join digrams need
// re-checking.
func (g *Grammar) inlineSingleUse(r *rule) {
	// Find the single reference by scanning all rule bodies. Production
	// SEQUITUR keeps back-pointers; the scan keeps this implementation
	// simple and is fine at our trace sizes.
	ref := g.findReference(r)
	if ref == nil {
		return
	}
	left, right := ref.prev, ref.next
	g.unindex(left)
	g.unindex(ref)
	g.remove(ref)
	first, last := r.first(), r.last()
	delete(g.rules, r.id)
	if first.isGuard() {
		// Empty rule body (cannot happen in steady state, but be safe).
		g.check(left)
		return
	}
	left.next = first
	first.prev = left
	last.next = right
	right.prev = last
	g.checkJoins(left, last)
}

func (g *Grammar) findReference(r *rule) *symbol {
	for _, rr := range g.rules {
		for s := rr.first(); !s.isGuard(); s = s.next {
			if s.rule == r {
				return s
			}
		}
	}
	return nil
}

// Rules reports the number of rules (including the start rule).
func (g *Grammar) Rules() int { return len(g.rules) }

// Symbols reports the number of symbols across all rule bodies.
func (g *Grammar) Symbols() int { return g.symbols }

// InputLen reports how many terminals were consumed.
func (g *Grammar) InputLen() int { return g.input }

// CompressionRatio is input length over grammar size.
func (g *Grammar) CompressionRatio() float64 {
	if g.symbols == 0 {
		return 0
	}
	return float64(g.input) / float64(g.symbols)
}

// Expand reconstructs the original sequence (for verification).
func (g *Grammar) Expand() []int {
	var out []int
	var walk func(r *rule)
	walk = func(r *rule) {
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.rule != nil {
				walk(s.rule)
			} else {
				out = append(out, s.value)
			}
		}
	}
	walk(g.start)
	return out
}

// CheckInvariants verifies digram uniqueness and rule utility; it returns
// an error describing the first violation (testing hook).
//
// Same-symbol digrams ("aa") are exempt: as the original paper discusses,
// overlapping runs like "aaa" are deliberately left alone, and
// substitutions elsewhere can strand one such unindexed pair, so strict
// uniqueness only holds for digrams of distinct symbols.
func (g *Grammar) CheckInvariants() error {
	seen := map[digram]*symbol{}
	for _, r := range g.rules {
		if r != g.start && r.uses < 2 {
			return fmt.Errorf("rule %d used %d times", r.id, r.uses)
		}
		for s := r.first(); !s.isGuard() && !s.next.isGuard(); s = s.next {
			d := digram{symKey(s), symKey(s.next)}
			if d.a == d.b {
				continue
			}
			if prev, dup := seen[d]; dup && prev.next != s && s.next != prev {
				return fmt.Errorf("digram (%d,%d) appears twice", d.a, d.b)
			}
			seen[d] = s
		}
	}
	return nil
}
