package lang

import "strconv"

// Lexer turns source text into tokens. It supports //-comments, decimal
// and 0x-hex integer literals, and the operator set in token.go.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an EOF token at end of input. Lexical
// errors are returned as *Error.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	pos := Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.off
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			start = l.off
			for l.off < len(l.src) && isHex(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text, base, 64)
		if err != nil {
			return Token{}, errf(pos, "bad integer literal %q", text)
		}
		return Token{Kind: NUMBER, Text: text, Val: v, Pos: pos}, nil
	}
	l.advance()
	two := func(next byte, withKind, aloneKind Kind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: withKind, Pos: pos}, nil
		}
		return Token{Kind: aloneKind, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: pos}, nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '^':
		return Token{Kind: Caret, Pos: pos}, nil
	case '~':
		return Token{Kind: Tilde, Pos: pos}, nil
	case '=':
		return two('=', EqEq, Assign)
	case '!':
		return two('=', NotEq, Bang)
	case '&':
		return two('&', AndAnd, Amp)
	case '|':
		return two('|', OrOr, Pipe)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: Shl, Pos: pos}, nil
		}
		return two('=', Le, Lt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: Shr, Pos: pos}, nil
		}
		return two('=', Ge, Gt)
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Tokenize lexes the whole input (testing convenience).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
