package lang

import (
	"strings"
	"testing"
)

// walkPos visits every position the parser attached to an accepted file.
func walkPos(f *File, visit func(Pos)) {
	var stmt func(Stmt)
	var expr func(Expr)
	expr = func(e Expr) {
		if e == nil {
			return
		}
		visit(e.ExprPos())
		switch e := e.(type) {
		case *IndexExpr:
			expr(e.Index)
		case *CallExpr:
			for _, a := range e.Args {
				expr(a)
			}
		case *UnaryExpr:
			expr(e.X)
		case *BinaryExpr:
			expr(e.L)
			expr(e.R)
		}
	}
	stmt = func(s Stmt) {
		if s == nil {
			return
		}
		visit(s.StmtPos())
		switch s := s.(type) {
		case *BlockStmt:
			for _, c := range s.Stmts {
				stmt(c)
			}
		case *VarStmt:
			expr(s.Init)
		case *AssignStmt:
			expr(s.Index)
			expr(s.Value)
		case *IfStmt:
			expr(s.Cond)
			stmt(s.Then)
			stmt(s.Else)
		case *WhileStmt:
			expr(s.Cond)
			stmt(s.Body)
		case *ForStmt:
			stmt(s.Init)
			expr(s.Cond)
			stmt(s.Post)
			stmt(s.Body)
		case *ReturnStmt:
			expr(s.Value)
		case *ExprStmt:
			expr(s.X)
		case *OutStmt:
			expr(s.X)
		}
	}
	for _, g := range f.Globals {
		visit(g.Pos)
	}
	for _, p := range f.Procs {
		visit(p.Pos)
		stmt(p.Body)
	}
}

// FuzzLangParse feeds arbitrary source text to the front end: the parser
// must never panic, and every position it attaches to an accepted AST
// must point inside the source (1-based line within the line count,
// 1-based column within that line, modulo a final newline).
func FuzzLangParse(f *testing.F) {
	f.Add("proc main(a) { return a; }\n")
	f.Add("array buf[64];\nvar g;\nproc main(n) {\n\tfor (var i = 0; i < n; i = i + 1) { buf[i & 63] = g + i; }\n\treturn buf[0];\n}\n")
	f.Add("proc f(x) { if (x < 0) { return -x; } else { return x; } }\nproc main(a) { out(f(a)); while (a > 0) { a = a - 1; } return 0; }")
	f.Add("proc main() { var \x00; }")
	f.Add("proc main(a) { return ((((((((a))))))))")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return // rejected cleanly
		}
		if file == nil {
			t.Fatal("nil file with nil error")
		}
		lines := strings.Split(src, "\n")
		walkPos(file, func(p Pos) {
			if p.Line < 1 || p.Line > len(lines) {
				t.Fatalf("position %s outside %d-line source", p, len(lines))
			}
			// Columns are 1-based rune offsets; a token can start at most
			// one past the end of its line (EOF-adjacent positions).
			if n := len([]rune(lines[p.Line-1])); p.Col < 1 || p.Col > n+1 {
				t.Fatalf("position %s outside line of length %d", p, n)
			}
		})
	})
}
