package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`proc f(a, b) { return a + b * 0x1F; } // comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwProc, IDENT, LParen, IDENT, Comma, IDENT, RParen,
		LBrace, KwReturn, IDENT, Plus, IDENT, Star, NUMBER, Semicolon, RBrace, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[13].Val != 0x1F {
		t.Errorf("hex literal = %d", toks[13].Val)
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := `== != <= >= << >> && || = ! < > & | ^ ~ %`
	want := []Kind{EqEq, NotEq, Le, Ge, Shl, Shr, AndAnd, OrOr,
		Assign, Bang, Lt, Gt, Amp, Pipe, Caret, Tilde, Percent, EOF}
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b\n\tc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) || toks[2].Pos != (Pos{3, 2}) {
		t.Errorf("positions: %v %v %v", toks[0].Pos, toks[1].Pos, toks[2].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "proc $", "99999999999999999999999999"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseStructure(t *testing.T) {
	f, err := Parse(`
var g;
array a[16];
proc helper(x) { return x * 2; }
proc main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 2 == 0 && i > 0) { s = s + helper(i); }
		else if (i == 1) { continue; }
		else { break; }
	}
	while (s > 100) { s = s - a[s & 15]; }
	out(s);
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 2 || len(f.Procs) != 2 {
		t.Fatalf("globals=%d procs=%d", len(f.Globals), len(f.Procs))
	}
	if f.Globals[0].Array || f.Globals[0].Size != 1 {
		t.Error("scalar global parsed wrong")
	}
	if !f.Globals[1].Array || f.Globals[1].Size != 16 {
		t.Error("array global parsed wrong")
	}
	m := f.Procs[1]
	if m.Name != "main" || len(m.Params) != 1 {
		t.Errorf("main decl: %+v", m)
	}
	// Statement shapes of main's body.
	wantTypes := []string{"*lang.VarStmt", "*lang.ForStmt", "*lang.WhileStmt", "*lang.OutStmt", "*lang.ReturnStmt"}
	if len(m.Body.Stmts) != len(wantTypes) {
		t.Fatalf("got %d statements", len(m.Body.Stmts))
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse(`proc main() { return 1 + 2 * 3 < 4 & 5 ^ 6 | 7 && 8; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Procs[0].Body.Stmts[0].(*ReturnStmt)
	// Loosest operator is &&.
	top, ok := ret.Value.(*BinaryExpr)
	if !ok || top.Op != AndAnd {
		t.Fatalf("top op = %v", ret.Value)
	}
	left, ok := top.L.(*BinaryExpr)
	if !ok || left.Op != OrOr && left.Op != Pipe {
		t.Fatalf("second level = %+v", top.L)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`proc`,
		`proc f { }`,
		`proc f() { return 1 }`,  // missing semicolon
		`proc f() { x = ; }`,     // missing expression
		`proc f() { if x { } }`,  // missing parens
		`array a[]; proc f() {}`, // missing size
		`array a[0]; proc f() { return 0; }`,
		`proc f() { var; }`,
		`proc f() ( return 1; )`,
		`var g proc f() {}`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("proc f() {\n  bogus ?;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

// Property: the parser never panics and always terminates on arbitrary
// input bytes.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse("not a program")
}
