// Package lang implements the frontend (lexer, parser, AST) for the
// miniature imperative language our synthetic workloads are written in.
//
// The language is deliberately small — C-like procedures, while/for loops,
// if/else, 64-bit integer arithmetic, global scalars and arrays — because
// the phase-marker analysis only cares about the procedure/loop structure
// and memory behavior of the compiled code. Every AST node carries source
// positions; the compiler propagates them into IR block debug info, which
// is what makes the paper's cross-binary marker mapping (§6.2.1) work.
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwProc
	KwVar
	KwArray
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwOut

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KwProc: "proc", KwVar: "var", KwArray: "array", KwIf: "if",
	KwElse: "else", KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwOut: "out",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Amp: "&", Pipe: "|", Caret: "^", Tilde: "~",
	Bang: "!", Shl: "<<", Shr: ">>", Lt: "<", Le: "<=", Gt: ">",
	Ge: ">=", EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
}

// String names the token kind as it appears in source.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"proc": KwProc, "var": KwVar, "array": KwArray, "if": KwIf,
	"else": KwElse, "while": KwWhile, "for": KwFor, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "out": KwOut,
}

// Pos is a 1-based source position.
type Pos struct {
	Line int
	Col  int
}

// String renders line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme.
type Token struct {
	Kind Kind
	Text string // identifier spelling or number literal
	Val  int64  // numeric value for NUMBER
	Pos  Pos
}

// Error is a positioned frontend error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
