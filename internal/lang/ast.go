package lang

// File is a parsed translation unit: global declarations plus procedures.
type File struct {
	Globals []*GlobalDecl
	Procs   []*ProcDecl
}

// GlobalDecl declares a global scalar (`var g;`) or array (`array a[n];`).
// Scalars are arrays of size 1 at the IR level.
type GlobalDecl struct {
	Name  string
	Size  int64 // 1 for scalars
	Array bool
	Pos   Pos
}

// ProcDecl is a procedure definition.
type ProcDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Pos    Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// BlockStmt is a `{ ... }` statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// VarStmt declares a local variable, optionally initialized.
type VarStmt struct {
	Name string
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt assigns to a scalar variable or an array element.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
	Pos   Pos
}

// IfStmt is if/else; Else may be nil or another statement (else-if chains
// parse as nested IfStmts).
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt or *IfStmt, or nil
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ForStmt is C-style for(init; cond; post). Any of the three may be nil.
type ForStmt struct {
	Init Stmt // VarStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *BlockStmt
	Pos  Pos
}

// ReturnStmt returns a value (nil Value returns 0).
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's next-iteration point.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for effect (in practice, a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// OutStmt emits a value to the machine's output stream.
type OutStmt struct {
	X   Expr
	Pos Pos
}

func (*BlockStmt) stmtNode()    {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*OutStmt) stmtNode()      {}

// StmtPos implements Stmt.
func (s *BlockStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *VarStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *AssignStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *IfStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *WhileStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *ForStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *BreakStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *ExprStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *OutStmt) StmtPos() Pos { return s.Pos }

// NumberExpr is an integer literal.
type NumberExpr struct {
	Val int64
	Pos Pos
}

// IdentExpr references a local, parameter, or global scalar.
type IdentExpr struct {
	Name string
	Pos  Pos
}

// IndexExpr reads a global array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Pos   Pos
}

// CallExpr calls a procedure.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// UnaryExpr applies -, !, or ~.
type UnaryExpr struct {
	Op  Kind
	X   Expr
	Pos Pos
}

// BinaryExpr applies a binary operator; AndAnd/OrOr short-circuit.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
	Pos  Pos
}

func (*NumberExpr) exprNode() {}
func (*IdentExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// ExprPos implements Expr.
func (e *NumberExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *IdentExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *IndexExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *CallExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *UnaryExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
