package lang

import "fmt"

// Parser is a recursive-descent parser with one token of lookahead and
// conventional precedence climbing for expressions.
type Parser struct {
	lex *Lexer
	tok Token
	err error
}

// Parse parses a complete source file.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	f := &File{}
	for p.tok.Kind != EOF {
		switch p.tok.Kind {
		case KwVar:
			pos := p.tok.Pos
			p.next()
			name := p.expectIdent()
			p.expect(Semicolon)
			f.Globals = append(f.Globals, &GlobalDecl{Name: name, Size: 1, Pos: pos})
		case KwArray:
			pos := p.tok.Pos
			p.next()
			name := p.expectIdent()
			p.expect(LBracket)
			size := p.expectNumber()
			p.expect(RBracket)
			p.expect(Semicolon)
			if size <= 0 && p.err == nil {
				p.err = errf(pos, "array %q must have positive size", name)
			}
			f.Globals = append(f.Globals, &GlobalDecl{Name: name, Size: size, Array: true, Pos: pos})
		case KwProc:
			f.Procs = append(f.Procs, p.parseProc())
		default:
			return nil, errf(p.tok.Pos, "expected declaration, got %s", p.tok.Kind)
		}
		if p.err != nil {
			return nil, p.err
		}
	}
	if len(f.Procs) == 0 {
		return nil, errf(Pos{1, 1}, "no procedures defined")
	}
	return f, nil
}

func (p *Parser) next() {
	if p.err != nil {
		p.tok = Token{Kind: EOF, Pos: p.tok.Pos}
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: EOF, Pos: p.tok.Pos}
		return
	}
	p.tok = t
}

func (p *Parser) fail(pos Pos, format string, args ...any) {
	if p.err == nil {
		p.err = errf(pos, format, args...)
	}
}

func (p *Parser) expect(k Kind) Token {
	t := p.tok
	if t.Kind != k {
		p.fail(t.Pos, "expected %s, got %s", k, t.Kind)
		return t
	}
	p.next()
	return t
}

func (p *Parser) expectIdent() string {
	t := p.expect(IDENT)
	return t.Text
}

func (p *Parser) expectNumber() int64 {
	t := p.expect(NUMBER)
	return t.Val
}

func (p *Parser) parseProc() *ProcDecl {
	pos := p.tok.Pos
	p.expect(KwProc)
	name := p.expectIdent()
	p.expect(LParen)
	var params []string
	if p.tok.Kind != RParen {
		for {
			params = append(params, p.expectIdent())
			if p.tok.Kind != Comma {
				break
			}
			p.next()
		}
	}
	p.expect(RParen)
	body := p.parseBlock()
	return &ProcDecl{Name: name, Params: params, Body: body, Pos: pos}
}

func (p *Parser) parseBlock() *BlockStmt {
	pos := p.tok.Pos
	p.expect(LBrace)
	b := &BlockStmt{Pos: pos}
	for p.tok.Kind != RBrace && p.tok.Kind != EOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.err != nil {
			break
		}
	}
	p.expect(RBrace)
	return b
}

func (p *Parser) parseStmt() Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case LBrace:
		return p.parseBlock()
	case KwVar:
		p.next()
		name := p.expectIdent()
		var init Expr
		if p.tok.Kind == Assign {
			p.next()
			init = p.parseExpr()
		}
		p.expect(Semicolon)
		return &VarStmt{Name: name, Init: init, Pos: pos}
	case KwIf:
		p.next()
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		then := p.parseBlock()
		var els Stmt
		if p.tok.Kind == KwElse {
			p.next()
			if p.tok.Kind == KwIf {
				els = p.parseStmt()
			} else {
				els = p.parseBlock()
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}
	case KwWhile:
		p.next()
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		body := p.parseBlock()
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}
	case KwFor:
		p.next()
		p.expect(LParen)
		var init, post Stmt
		var cond Expr
		if p.tok.Kind != Semicolon {
			init = p.parseSimpleStmt()
		}
		p.expect(Semicolon)
		if p.tok.Kind != Semicolon {
			cond = p.parseExpr()
		}
		p.expect(Semicolon)
		if p.tok.Kind != RParen {
			post = p.parseSimpleStmtNoSemi()
		}
		p.expect(RParen)
		body := p.parseBlock()
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Pos: pos}
	case KwReturn:
		p.next()
		var v Expr
		if p.tok.Kind != Semicolon {
			v = p.parseExpr()
		}
		p.expect(Semicolon)
		return &ReturnStmt{Value: v, Pos: pos}
	case KwBreak:
		p.next()
		p.expect(Semicolon)
		return &BreakStmt{Pos: pos}
	case KwContinue:
		p.next()
		p.expect(Semicolon)
		return &ContinueStmt{Pos: pos}
	case KwOut:
		p.next()
		p.expect(LParen)
		x := p.parseExpr()
		p.expect(RParen)
		p.expect(Semicolon)
		return &OutStmt{X: x, Pos: pos}
	default:
		s := p.parseSimpleStmt()
		p.expect(Semicolon)
		return s
	}
}

// parseSimpleStmt parses an assignment or expression statement (without the
// trailing semicolon) — the forms allowed in for-clauses.
func (p *Parser) parseSimpleStmt() Stmt {
	if p.tok.Kind == KwVar {
		pos := p.tok.Pos
		p.next()
		name := p.expectIdent()
		p.expect(Assign)
		init := p.parseExpr()
		return &VarStmt{Name: name, Init: init, Pos: pos}
	}
	return p.parseSimpleStmtNoSemi()
}

func (p *Parser) parseSimpleStmtNoSemi() Stmt {
	pos := p.tok.Pos
	if p.tok.Kind != IDENT {
		x := p.parseExpr()
		return &ExprStmt{X: x, Pos: pos}
	}
	name := p.tok.Text
	p.next()
	switch p.tok.Kind {
	case Assign:
		p.next()
		v := p.parseExpr()
		return &AssignStmt{Name: name, Value: v, Pos: pos}
	case LBracket:
		p.next()
		idx := p.parseExpr()
		p.expect(RBracket)
		p.expect(Assign)
		v := p.parseExpr()
		return &AssignStmt{Name: name, Index: idx, Value: v, Pos: pos}
	case LParen:
		p.next()
		args := p.parseCallArgs()
		return &ExprStmt{X: &CallExpr{Name: name, Args: args, Pos: pos}, Pos: pos}
	default:
		p.fail(p.tok.Pos, "expected assignment or call after %q", name)
		return &ExprStmt{X: &IdentExpr{Name: name, Pos: pos}, Pos: pos}
	}
}

func (p *Parser) parseCallArgs() []Expr {
	var args []Expr
	if p.tok.Kind != RParen {
		for {
			args = append(args, p.parseExpr())
			if p.tok.Kind != Comma {
				break
			}
			p.next()
		}
	}
	p.expect(RParen)
	return args
}

// Binary operator precedence, loosest first. Mirrors C except that all
// comparisons share one level.
var precTable = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	EqEq:   6, NotEq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) parseExpr() Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) Expr {
	left := p.parseUnary()
	for {
		prec, ok := precTable[p.tok.Kind]
		if !ok || prec < minPrec {
			return left
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		right := p.parseBinary(prec + 1)
		left = &BinaryExpr{Op: op, L: left, R: right, Pos: pos}
	}
}

func (p *Parser) parseUnary() Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case Minus, Bang, Tilde:
		op := p.tok.Kind
		p.next()
		return &UnaryExpr{Op: op, X: p.parseUnary(), Pos: pos}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case NUMBER:
		v := p.tok.Val
		p.next()
		return &NumberExpr{Val: v, Pos: pos}
	case LParen:
		p.next()
		x := p.parseExpr()
		p.expect(RParen)
		return x
	case IDENT:
		name := p.tok.Text
		p.next()
		switch p.tok.Kind {
		case LParen:
			p.next()
			args := p.parseCallArgs()
			return &CallExpr{Name: name, Args: args, Pos: pos}
		case LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(RBracket)
			return &IndexExpr{Name: name, Index: idx, Pos: pos}
		default:
			return &IdentExpr{Name: name, Pos: pos}
		}
	default:
		p.fail(pos, "expected expression, got %s", p.tok.Kind)
		p.next()
		return &NumberExpr{Val: 0, Pos: pos}
	}
}

// MustParse parses src and panics on error (for compiled-in workloads).
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse: %v", err))
	}
	return f
}
