// Package adapt implements the data-cache reconfiguration study of §6.1:
// an adaptive cache (64-byte blocks, 512 sets, 1–8 ways ⇒ 32–256 KB) is
// reconfigured at phase boundaries. For each phase ID the first two
// intervals are spent experimenting to find the best configuration — the
// smallest cache with no increase in miss rate over the largest — and the
// phase's configuration is reused whenever its marker fires again.
//
// Phase boundaries can come from software phase markers (ours), from
// reuse-distance markers (the Shen et al. baseline), from fixed-length
// intervals classified by an idealized SimPoint (the "BBV" bar), or from a
// best-fixed-size oracle.
package adapt

import (
	"fmt"

	"phasemark/internal/bbv"
	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/reuse"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
)

// NumConfigs is the number of adaptive configurations (1..8 ways).
const NumConfigs = 8

// BaseConfig is one way of the adaptive cache: 64 B × 512 sets = 32 KB.
var BaseConfig = uarch.CacheConfig{BlockBytes: 64, Sets: 512, Ways: 1}

// SizeKB reports the size of configuration c (0-based: c+1 ways).
func SizeKB(c int) int { return BaseConfig.SizeBytes() * (c + 1) / 1024 }

// Interval is one phase-delimited slice of execution with per-config cache
// statistics (all configurations are simulated in parallel, warm, as in
// Cheetah-style multi-configuration simulation).
type Interval struct {
	Phase    int
	Instrs   uint64
	Accesses uint64
	Misses   [NumConfigs]uint64
}

// RunResult is a segmented multi-configuration cache simulation.
type RunResult struct {
	Intervals   []Interval
	TotalInstrs uint64
	NumBlocks   int
	BBVs        []bbv.Vector // collected only for fixed-length runs
}

// Source selects the phase-boundary mechanism; exactly one field is used,
// checked in order: FixedLen, SPM, Reuse.
type Source struct {
	FixedLen uint64          // fixed-length intervals (BBV / best-fixed baselines)
	SPM      *core.MarkerSet // software phase markers
	Reuse    *reuse.Markers  // reuse-distance markers
	Loops    *minivm.Loops   // optional cached loop table for SPM
}

type multiCache struct {
	minivm.NopObserver
	caches   [NumConfigs]*uarch.Cache
	accesses uint64
	misses   [NumConfigs]uint64
}

func newMultiCache() *multiCache {
	mc := &multiCache{}
	for i := range mc.caches {
		cfg := BaseConfig
		cfg.Ways = i + 1
		mc.caches[i] = uarch.NewCache(cfg)
	}
	return mc
}

// ObservedEvents implements minivm.EventMasker.
func (mc *multiCache) ObservedEvents() minivm.EventMask { return minivm.EvMem }

// OnMem implements minivm.Observer.
func (mc *multiCache) OnMem(addr uint64, write bool) {
	mc.accesses++
	for i, c := range mc.caches {
		if !c.Access(addr) {
			mc.misses[i]++
		}
	}
}

type segmenter struct {
	mc        *multiCache
	intervals []Interval
	lastAcc   uint64
	lastMiss  [NumConfigs]uint64
	lastCut   uint64
	phase     int

	bbvAcc  *bbv.Accumulator
	bbvs    []bbv.Vector
	collect bool
}

func (s *segmenter) cut(phase int, at uint64) {
	if at == s.lastCut {
		s.phase = phase
		return
	}
	iv := Interval{Phase: s.phase, Instrs: at - s.lastCut, Accesses: s.mc.accesses - s.lastAcc}
	for i := range iv.Misses {
		iv.Misses[i] = s.mc.misses[i] - s.lastMiss[i]
	}
	s.intervals = append(s.intervals, iv)
	if s.collect {
		s.bbvs = append(s.bbvs, s.bbvAcc.Snapshot())
	}
	s.lastCut = at
	s.lastAcc = s.mc.accesses
	s.lastMiss = s.mc.misses
	s.phase = phase
}

// Run executes prog under the multi-configuration cache simulation,
// cutting intervals per src.
func Run(prog *minivm.Program, args []int64, src Source) (*RunResult, error) {
	mc := newMultiCache()
	seg := &segmenter{mc: mc, phase: -1}

	var obs minivm.MultiObserver
	switch {
	case src.FixedLen > 0:
		seg.collect = true
		seg.bbvAcc = bbv.NewAccumulator(prog.NumBlocks)
		obs = append(obs, trace.NewFixedCutter(src.FixedLen, func(at uint64) {
			seg.cut(-1, at)
		}))
		obs = append(obs, trace.BBVObserver{Acc: seg.bbvAcc})
	case src.SPM != nil:
		det := core.NewDetector(prog, src.Loops, src.SPM, func(marker int, at uint64) {
			seg.cut(marker, at)
		})
		obs = append(obs, det)
	case src.Reuse != nil:
		det := reuse.NewDetector(src.Reuse, func(phase int, at uint64) {
			seg.cut(phase, at)
		})
		obs = append(obs, det)
	default:
		return nil, fmt.Errorf("adapt: empty source")
	}
	obs = append(obs, mc)

	m := minivm.NewMachine(prog, obs)
	if _, err := m.Run(args...); err != nil {
		return nil, fmt.Errorf("adapt: run failed: %w", err)
	}
	seg.cut(-1, m.Instructions())
	return &RunResult{
		Intervals:   seg.intervals,
		TotalInstrs: m.Instructions(),
		NumBlocks:   prog.NumBlocks,
		BBVs:        seg.bbvs,
	}, nil
}
