package adapt

import (
	"fmt"

	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/uarch"
)

// Online reconfiguration: where Run/Evaluate compute the policy offline
// from a parallel multi-configuration simulation, RunOnline actually
// executes a *physically instrumented* binary (core.Instrument) and
// resizes one live cache at marker firings — the paper's deployment story
// end to end: "inserting code into the binary at phase markers to trigger
// reconfiguration".
//
// During a phase's two exploration intervals the live cache runs at full
// size while shadow tag arrays (tag-only copies, the standard hardware
// trick for evaluating alternative configurations) observe the same
// accesses; the phase then locks the smallest configuration with no more
// misses than full size, and every later occurrence of the phase switches
// the live cache to it via state-preserving way shutdown (deactivated ways
// retain their contents and reappear on growth), applied lazily at the
// next access so zero-length marker-chain intervals cost nothing.

// OnlineResult summarizes a live reconfiguration run.
type OnlineResult struct {
	AvgCacheKB float64 // instruction-weighted average live configuration
	MissRate   float64 // misses of the live, resizing cache
	Phases     int
	Resizes    int
}

type onlineState struct {
	live    *uarch.Cache
	shadows [NumConfigs]*uarch.Cache
	explore bool
	pending int // ways to apply at the next access (lazy reconfiguration)

	phases  map[int]*onlinePhase
	current *onlinePhase

	instrs     uint64
	lastCut    uint64
	weightedKB float64
	misses     uint64
	accesses   uint64
	shadowBase [NumConfigs]uint64
	resizes    int
}

type onlinePhase struct {
	seen   int
	locked int // config index; -1 while exploring
	misses [NumConfigs]uint64
}

func newOnlineState() *onlineState {
	st := &onlineState{phases: map[int]*onlinePhase{}}
	st.live = uarch.NewCache(uarch.CacheConfig{
		BlockBytes: BaseConfig.BlockBytes, Sets: BaseConfig.Sets, Ways: NumConfigs,
	})
	for i := range st.shadows {
		cfg := BaseConfig
		cfg.Ways = i + 1
		st.shadows[i] = uarch.NewCache(cfg)
	}
	return st
}

// onMem implements the data path: the live cache always services the
// access; shadows observe only while exploring. Reconfiguration takes
// effect lazily at the first access of an interval, so zero-access
// connector intervals between chained markers never thrash the cache.
func (st *onlineState) onMem(addr uint64) {
	if st.pending != 0 && st.pending != st.live.ActiveWays() {
		st.live.SetActiveWays(st.pending)
		st.resizes++
	}
	st.pending = 0
	st.accesses++
	if !st.live.Access(addr) {
		st.misses++
	}
	if st.explore {
		for _, sh := range st.shadows {
			sh.Access(addr)
		}
	}
}

// boundary handles a phase-marker firing.
func (st *onlineState) boundary(phase int) {
	st.closeInterval()
	ph := st.phases[phase]
	if ph == nil {
		ph = &onlinePhase{locked: -1}
		st.phases[phase] = ph
	}
	st.current = ph
	if ph.locked >= 0 {
		st.setWays(ph.locked + 1)
		st.explore = false
		return
	}
	// Explore at full size with shadows watching.
	st.setWays(NumConfigs)
	st.explore = true
	for i, sh := range st.shadows {
		st.shadowBase[i] = sh.Misses()
	}
}

// closeInterval accounts the finished interval and, if it was an
// exploration interval, folds the shadow observations into the phase.
func (st *onlineState) closeInterval() {
	w := float64(st.instrs - st.lastCut)
	st.weightedKB += float64(st.live.ActiveSizeBytes()/1024) * w
	st.lastCut = st.instrs
	if st.current == nil || !st.explore {
		return
	}
	ph := st.current
	// The phase's first exploration interval only warms the shadows (cold
	// shadow tags make every configuration look alike); the second one
	// measures — still "two intervals spent experimenting" as in §6.1.
	if ph.seen > 0 {
		for i, sh := range st.shadows {
			ph.misses[i] += sh.Misses() - st.shadowBase[i]
		}
	}
	ph.seen++
	if ph.seen >= ExploreIntervals {
		ph.locked = chooseConfig(ph.misses)
	}
}

func (st *onlineState) setWays(ways int) { st.pending = ways }

type onlineObs struct {
	minivm.NopObserver
	st *onlineState
}

func (o onlineObs) ObservedEvents() minivm.EventMask { return minivm.EvBlock | minivm.EvMem }

func (o onlineObs) OnBlock(b *minivm.Block) { o.st.instrs += uint64(b.Weight()) }
func (o onlineObs) OnMem(addr uint64, write bool) {
	o.st.onMem(addr)
}

// RunOnline instruments prog with the marker set, executes it, and
// reconfigures a single live cache at every marker firing.
func RunOnline(prog *minivm.Program, set *core.MarkerSet, args []int64) (*OnlineResult, error) {
	inst, err := core.Instrument(prog, set)
	if err != nil {
		return nil, err
	}
	st := newOnlineState()
	h := core.NewMarkHandler(set, func(marker int) { st.boundary(marker) })
	m := minivm.NewMachine(inst, onlineObs{st: st})
	m.MarkFunc = h.Fn
	if _, err := m.Run(args...); err != nil {
		return nil, fmt.Errorf("adapt: online run: %w", err)
	}
	st.closeInterval()
	res := &OnlineResult{Phases: len(st.phases), Resizes: st.resizes}
	if st.instrs > 0 {
		res.AvgCacheKB = st.weightedKB / float64(st.instrs)
	}
	if st.accesses > 0 {
		res.MissRate = float64(st.misses) / float64(st.accesses)
	}
	return res, nil
}
