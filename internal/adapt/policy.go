package adapt

// PolicyResult summarizes an adaptive (or fixed) cache policy over one
// execution.
type PolicyResult struct {
	AvgCacheKB float64 // instruction-weighted average configured size
	MissRate   float64 // overall miss rate achieved by the policy
	BaseRate   float64 // miss rate of the largest (256 KB) configuration
	Phases     int     // distinct phase IDs seen
}

// ExploreIntervals is how many intervals per phase are spent experimenting
// before the phase's best configuration is locked in (the paper uses two).
const ExploreIntervals = 2

// Evaluate applies the explore-then-reuse reconfiguration policy to a
// segmented multi-configuration run. During a phase's first
// ExploreIntervals intervals the full-size cache is charged (experimenting
// must be conservative); afterwards the phase's chosen configuration — the
// smallest with no more misses than the largest over the exploration
// intervals — is charged whenever the phase recurs.
//
// phaseOf overrides the recorded phase IDs when non-nil (used to feed
// SimPoint cluster IDs to the fixed-interval baseline).
func Evaluate(res *RunResult, phaseOf func(i int) int) PolicyResult {
	type phaseState struct {
		seen     int
		misses   [NumConfigs]uint64
		accesses uint64
		locked   int // config index once chosen; -1 while exploring
	}
	states := map[int]*phaseState{}
	var weightedKB, totalInstr float64
	var polMisses, totAcc, bigMisses uint64

	for i, iv := range res.Intervals {
		ph := iv.Phase
		if phaseOf != nil {
			ph = phaseOf(i)
		}
		st := states[ph]
		if st == nil {
			st = &phaseState{locked: -1}
			states[ph] = st
		}
		var cfg int
		if st.locked >= 0 {
			cfg = st.locked
		} else {
			cfg = NumConfigs - 1 // explore at full size
			st.seen++
			for c := range st.misses {
				st.misses[c] += iv.Misses[c]
			}
			st.accesses += iv.Accesses
			if st.seen >= ExploreIntervals {
				st.locked = chooseConfig(st.misses)
			}
		}
		weightedKB += float64(SizeKB(cfg)) * float64(iv.Instrs)
		totalInstr += float64(iv.Instrs)
		polMisses += iv.Misses[cfg]
		totAcc += iv.Accesses
		bigMisses += iv.Misses[NumConfigs-1]
	}

	out := PolicyResult{Phases: len(states)}
	if totalInstr > 0 {
		out.AvgCacheKB = weightedKB / totalInstr
	}
	if totAcc > 0 {
		out.MissRate = float64(polMisses) / float64(totAcc)
		out.BaseRate = float64(bigMisses) / float64(totAcc)
	}
	return out
}

// chooseConfig picks the smallest configuration whose miss count does not
// exceed the largest configuration's ("no allowed increase in miss rate").
func chooseConfig(misses [NumConfigs]uint64) int {
	target := misses[NumConfigs-1]
	for c := 0; c < NumConfigs; c++ {
		if misses[c] <= target {
			return c
		}
	}
	return NumConfigs - 1
}

// BestFixed returns the smallest fixed configuration achieving the maximum
// hit rate over the whole run, as a PolicyResult (the "Best Fixed Size"
// bar of Figure 10).
func BestFixed(res *RunResult) PolicyResult {
	var misses [NumConfigs]uint64
	var acc, instrs uint64
	for _, iv := range res.Intervals {
		for c := range misses {
			misses[c] += iv.Misses[c]
		}
		acc += iv.Accesses
		instrs += iv.Instrs
	}
	_ = instrs
	c := chooseConfig(misses)
	out := PolicyResult{AvgCacheKB: float64(SizeKB(c)), Phases: 1}
	if acc > 0 {
		out.MissRate = float64(misses[c]) / float64(acc)
		out.BaseRate = float64(misses[NumConfigs-1]) / float64(acc)
	}
	return out
}
