package adapt

import (
	"testing"

	"phasemark/internal/compile"
	"phasemark/internal/core"
)

// multiScaleSrc has a large-working-set phase (only the 256KB config holds
// it across sweeps) and a small one (any config works).
const multiScaleSrc = `
array big[32768];
array tiny[1024];
proc bigSweep(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 0; i < 32768; i = i + 1) { s = s + big[i]; }
	}
	return s;
}
proc tinySweep(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 0; i < 1024; i = i + 1) { s = s + tiny[i]; }
	}
	return s;
}
proc main(reps) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + bigSweep(3) + tinySweep(60);
	}
	out(s);
	return s;
}
`

func setup(t *testing.T) (*RunResult, *core.MarkerSet) {
	t.Helper()
	prog, err := compile.CompileSource(multiScaleSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ProfileRun(prog, 6)
	if err != nil {
		t.Fatal(err)
	}
	set := core.SelectMarkers(g, core.SelectOptions{ILower: 100_000})
	if len(set.Markers) == 0 {
		t.Fatal("no markers")
	}
	res, err := Run(prog, []int64{6}, Source{SPM: set})
	if err != nil {
		t.Fatal(err)
	}
	return res, set
}

func TestMissMonotoneAcrossConfigs(t *testing.T) {
	res, _ := setup(t)
	// LRU inclusion: within every interval, more ways never means more
	// misses.
	for _, iv := range res.Intervals {
		for c := 1; c < NumConfigs; c++ {
			if iv.Misses[c] > iv.Misses[c-1] {
				t.Fatalf("interval misses not monotone: %v", iv.Misses)
			}
		}
	}
}

func TestIntervalsCoverRun(t *testing.T) {
	res, _ := setup(t)
	var ins uint64
	for _, iv := range res.Intervals {
		ins += iv.Instrs
	}
	if ins != res.TotalInstrs {
		t.Fatalf("intervals cover %d of %d", ins, res.TotalInstrs)
	}
}

func TestAdaptivePolicyShrinksWithoutMissIncrease(t *testing.T) {
	res, _ := setup(t)
	pol := Evaluate(res, nil)
	if pol.AvgCacheKB >= 256 {
		t.Fatalf("adaptive policy never shrank: %.1f KB", pol.AvgCacheKB)
	}
	if pol.MissRate > pol.BaseRate*1.0001 {
		t.Fatalf("policy increased misses: %v vs %v", pol.MissRate, pol.BaseRate)
	}
	if pol.Phases < 2 {
		t.Fatalf("phases = %d", pol.Phases)
	}
}

func TestBestFixedIsLargestOnlyWhenNeeded(t *testing.T) {
	res, _ := setup(t)
	bf := BestFixed(res)
	// bigSweep re-sweeps 256KB: only the full cache avoids capacity misses,
	// so best fixed must be 256KB here.
	if bf.AvgCacheKB != 256 {
		t.Fatalf("best fixed = %v KB, want 256", bf.AvgCacheKB)
	}
	// And the adaptive policy must beat it on average size.
	pol := Evaluate(res, nil)
	if pol.AvgCacheKB >= bf.AvgCacheKB {
		t.Fatalf("adaptive %.1f KB not below best fixed %.1f KB",
			pol.AvgCacheKB, bf.AvgCacheKB)
	}
}

func TestFixedSourceCollectsBBVs(t *testing.T) {
	prog, err := compile.CompileSource(multiScaleSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, []int64{3}, Source{FixedLen: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BBVs) != len(res.Intervals) {
		t.Fatalf("BBVs %d vs intervals %d", len(res.BBVs), len(res.Intervals))
	}
	for i, v := range res.BBVs {
		if v.L1() == 0 {
			t.Fatalf("empty BBV at %d", i)
		}
	}
}

func TestPhaseOverride(t *testing.T) {
	res, _ := setup(t)
	// Forcing everything into one phase must explore once and lock one
	// config for the rest.
	pol := Evaluate(res, func(i int) int { return 0 })
	if pol.Phases != 1 {
		t.Fatalf("phases = %d", pol.Phases)
	}
}

func TestChooseConfigPicksSmallestEquivalent(t *testing.T) {
	var m [NumConfigs]uint64
	for i := range m {
		m[i] = 100
	}
	if c := chooseConfig(m); c != 0 {
		t.Fatalf("all-equal misses chose %d, want 0", c)
	}
	m = [NumConfigs]uint64{900, 500, 300, 200, 200, 200, 200, 200}
	if c := chooseConfig(m); c != 3 {
		t.Fatalf("chose %d, want 3 (first equal to the largest)", c)
	}
}

func TestSizeKB(t *testing.T) {
	if SizeKB(0) != 32 || SizeKB(7) != 256 {
		t.Fatalf("sizes: %d..%d", SizeKB(0), SizeKB(7))
	}
}

func TestEmptySourceErrors(t *testing.T) {
	prog, err := compile.CompileSource(multiScaleSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, []int64{1}, Source{}); err == nil {
		t.Fatal("empty source accepted")
	}
}

// RunOnline drives a real resizable cache from the instrumented binary's
// mark stream. Its results must land close to the offline policy estimate
// and must not meaningfully increase misses over always-full-size.
func TestOnlineReconfigurationMatchesOfflinePolicy(t *testing.T) {
	prog, err := compile.CompileSource(multiScaleSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ProfileRun(prog, 6)
	if err != nil {
		t.Fatal(err)
	}
	set := core.SelectMarkers(g, core.SelectOptions{ILower: 100_000})
	offRes, err := Run(prog, []int64{6}, Source{SPM: set})
	if err != nil {
		t.Fatal(err)
	}
	offline := Evaluate(offRes, nil)

	online, err := RunOnline(prog, set, []int64{6})
	if err != nil {
		t.Fatal(err)
	}
	if online.Resizes == 0 {
		t.Fatal("live cache never resized")
	}
	if online.AvgCacheKB >= 256 {
		t.Fatalf("online never shrank: %.1f KB", online.AvgCacheKB)
	}
	// Online average size within 25% of the offline estimate.
	ratio := online.AvgCacheKB / offline.AvgCacheKB
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("online %.1f KB vs offline %.1f KB (ratio %.2f)",
			online.AvgCacheKB, offline.AvgCacheKB, ratio)
	}
	// Miss rate close to the always-256KB baseline (resize transients
	// allowed a small margin).
	base := offline.BaseRate
	if online.MissRate > base*1.15+0.0005 {
		t.Fatalf("online miss rate %.5f vs full-size %.5f", online.MissRate, base)
	}
}
