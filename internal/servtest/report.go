package servtest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema identifies the BENCH_service.json record layout. See
// EXPERIMENTS.md for the field-by-field description. v2 added the
// per-stage latency splits, per-outcome latency, the telemetry
// consistency counts, and the build stamp.
const Schema = "phasemark/bench-service/v2"

// schemaV1 is the pre-telemetry layout; a v1 file is superseded rather
// than merged, since its runs lack the stage and outcome splits.
const schemaV1 = "phasemark/bench-service/v1"

// Report is the committed service stress record: one run per labelled
// measurement, each covering every scenario.
type Report struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// Run is one labelled stress measurement.
type Run struct {
	Label     string           `json:"label"`
	Go        string           `json:"go"`
	Build     string           `json:"build,omitempty"`
	Workers   int              `json:"workers"`
	Queue     int              `json:"queue"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// LoadReport reads a bench-service report, returning an empty one when
// the file does not exist. A file with a different schema is an error,
// not a silent overwrite.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Report{Schema: Schema}, nil
	}
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("servtest: parsing %s: %w", path, err)
	}
	if r.Schema == schemaV1 {
		// The v1 layout predates the telemetry fields; start a fresh v2
		// report instead of mixing incomparable runs.
		return &Report{Schema: Schema}, nil
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("servtest: %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// SetRun merges run into the report. A new label appends; an existing
// label is updated scenario-wise — scenarios present in run replace their
// namesakes, absent ones are preserved — so partial re-runs never discard
// history.
func (r *Report) SetRun(run Run) {
	for i := range r.Runs {
		if r.Runs[i].Label != run.Label {
			continue
		}
		old := &r.Runs[i]
		old.Go, old.Workers, old.Queue = run.Go, run.Workers, run.Queue
		for _, sc := range run.Scenarios {
			replaced := false
			for j := range old.Scenarios {
				if old.Scenarios[j].Name == sc.Name {
					old.Scenarios[j] = sc
					replaced = true
					break
				}
			}
			if !replaced {
				old.Scenarios = append(old.Scenarios, sc)
			}
		}
		return
	}
	r.Runs = append(r.Runs, run)
}

// Write renders the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
