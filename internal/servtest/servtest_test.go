package servtest

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phasemark/internal/service"
	"phasemark/internal/store"
)

func TestGenerateIsDeterministic(t *testing.T) {
	mix := Mix{Cold: 0.2, Warm: 0.5, Hot: 0.3}
	a := Generate("lucas", 500, mix, 42)
	b := Generate("lucas", 500, mix, 42)
	if len(a) != 500 {
		t.Fatalf("generated %d requests, want 500", len(a))
	}
	for i := range a {
		if a[i].Endpoint != b[i].Endpoint || !bytes.Equal(a[i].Body, b[i].Body) || a[i].Kind != b[i].Kind {
			t.Fatalf("request %d differs across same-seed generations", i)
		}
	}
	if c := Generate("lucas", 500, mix, 43); func() bool {
		for i := range a {
			if !bytes.Equal(a[i].Body, c[i].Body) {
				return false
			}
		}
		return true
	}() {
		t.Error("distinct seeds generated identical traffic")
	}
}

func TestGenerateMixAndValidity(t *testing.T) {
	mix := Mix{Cold: 1, Warm: 1, Hot: 1}
	reqs := Generate("lucas", 900, mix, 7)
	kinds := map[string]int{}
	coldBodies := map[string]bool{}
	for _, r := range reqs {
		kinds[r.Kind]++
		if r.Kind == "cold" {
			if coldBodies[string(r.Body)] {
				t.Fatalf("cold request repeated: %s", r.Body)
			}
			coldBodies[string(r.Body)] = true
		}
	}
	// Equal weights: each class should land near 300 of 900. A loose band
	// keeps the test deterministic-friendly while catching a broken mix.
	for _, k := range []string{"cold", "warm", "hot"} {
		if kinds[k] < 200 || kinds[k] > 400 {
			t.Errorf("kind %s: %d of 900, want ~300", k, kinds[k])
		}
	}

	// Every generated request must canonicalize: the generator may never
	// emit traffic the service rejects.
	for i, r := range reqs {
		var err error
		switch r.Endpoint {
		case service.EndpointProfile:
			_, err = service.DecodeProfileRequest(bytes.NewReader(r.Body))
		case service.EndpointSelect:
			_, err = service.DecodeSelectRequest(bytes.NewReader(r.Body))
		case service.EndpointSegment:
			_, err = service.DecodeSegmentRequest(bytes.NewReader(r.Body))
		case service.EndpointCluster:
			_, err = service.DecodeClusterRequest(bytes.NewReader(r.Body))
		default:
			t.Fatalf("request %d: unknown endpoint %s", i, r.Endpoint)
		}
		if err != nil {
			t.Fatalf("request %d (%s %s) is invalid: %v", i, r.Endpoint, r.Body, err)
		}
	}
}

func TestPercentile(t *testing.T) {
	lats := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want int64
	}{{0.50, 50}, {0.90, 90}, {0.99, 100}, {1.0, 100}}
	for _, tc := range cases {
		if got := percentile(lats, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
}

// TestScenarioRunAgainstLiveServer drives a small hot-heavy scenario at a
// real server and checks the aggregation: all 200s, caches accounted,
// Check clean.
func TestScenarioRunAgainstLiveServer(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Store: st, Workers: 4, Queue: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := Scenario{
		Name:        "smoke",
		Workload:    "lucas",
		Requests:    60,
		Concurrency: 4,
		Mix:         Mix{Hot: 1},
		Seed:        1,
	}
	res := sc.Run(ts.URL, nil)
	if res.Requests != 60 || res.Status.OK != 60 {
		t.Fatalf("status = %+v over %d requests, want all OK", res.Status, res.Requests)
	}
	if got := res.Cache.Hit + res.Cache.Computed + res.Cache.Joined; got != 60 {
		t.Errorf("cache outcomes account for %d of 60 successes", got)
	}
	// Hot-only traffic over 4 distinct requests: at most 4 computes, the
	// rest hits/joins.
	if res.Cache.Computed > 4 {
		t.Errorf("hot scenario computed %d times, want <= 4", res.Cache.Computed)
	}
	if res.Latency.MaxNS <= 0 || res.Latency.P50NS > res.Latency.MaxNS {
		t.Errorf("latency summary inconsistent: %+v", res.Latency)
	}
	// The telemetry audit covered every success with zero violations, and
	// the stage/outcome splits are populated from Server-Timing.
	if res.Telemetry.Checked != 60 || res.Telemetry.MissingTiming != 0 ||
		res.Telemetry.StageOverWall != 0 || res.Telemetry.HitWithCompute != 0 {
		t.Errorf("telemetry audit = %+v, want 60 clean checks", res.Telemetry)
	}
	if st, ok := res.Stages["store.get"]; !ok || st.Count == 0 || st.P50NS > st.MaxNS {
		t.Errorf("stage split missing/inconsistent: %+v", res.Stages)
	}
	if _, ok := res.Stages["req.queue"]; !ok {
		t.Errorf("stage split lacks queue wait: %v", res.Stages)
	}
	if hit, ok := res.Outcome["hit"]; !ok || hit.P50NS <= 0 {
		t.Errorf("outcome latency split missing hits: %+v", res.Outcome)
	}
	if bad := res.Check(); len(bad) != 0 {
		t.Errorf("Check() = %v, want clean", bad)
	}
}

func TestParseServerTiming(t *testing.T) {
	got := parseServerTiming("req.queue;dur=0.250, store.get;dur=1.500, weird;foo=1")
	if got["req.queue"] != 250_000 || got["store.get"] != 1_500_000 {
		t.Errorf("parseServerTiming = %v", got)
	}
	if _, ok := got["weird"]; ok {
		t.Error("entry without dur must be dropped")
	}
	if parseServerTiming("") != nil {
		t.Error("empty header must parse to nil")
	}
}

func TestCheckFlagsTelemetryViolations(t *testing.T) {
	r := ScenarioResult{Name: "s", Telemetry: TelemetryCheck{
		Checked: 10, MissingTiming: 1, StageOverWall: 2, HitWithCompute: 3,
	}}
	if bad := r.Check(); len(bad) != 3 {
		t.Errorf("Check() = %v, want 3 telemetry violations", bad)
	}
}

func TestCheckFlagsViolations(t *testing.T) {
	r := ScenarioResult{Name: "s", Status: StatusCounts{ServerErr: 1, Shed: 2}}
	bad := r.Check()
	if len(bad) != 2 {
		t.Fatalf("Check() = %v, want 2 violations", bad)
	}
	for _, b := range bad {
		if !strings.HasPrefix(b, "s: ") {
			t.Errorf("violation %q lacks scenario prefix", b)
		}
	}
	// Induced saturation inverts the shed expectation.
	r.ExpectShed = true
	if bad := (ScenarioResult{Name: "s", ExpectShed: true, Status: StatusCounts{Shed: 5}}).Check(); len(bad) != 0 {
		t.Errorf("expected shed flagged: %v", bad)
	}
	if bad := (ScenarioResult{Name: "s", ExpectShed: true}).Check(); len(bad) != 1 {
		t.Errorf("absent shed under saturation not flagged: %v", bad)
	}
}

func TestReportRoundTripAndMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	r, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != Schema || len(r.Runs) != 0 {
		t.Fatalf("fresh report: %+v", r)
	}
	r.SetRun(Run{Label: "dev", Scenarios: []ScenarioResult{{Name: "cold", Requests: 10}, {Name: "hot", Requests: 20}}})
	// Partial re-run: replaces "cold", keeps "hot", appends "mixed".
	r.SetRun(Run{Label: "dev", Scenarios: []ScenarioResult{{Name: "cold", Requests: 99}, {Name: "mixed", Requests: 5}}})
	r.SetRun(Run{Label: "other", Scenarios: []ScenarioResult{{Name: "cold", Requests: 1}}})
	if len(r.Runs) != 2 || len(r.Runs[0].Scenarios) != 3 {
		t.Fatalf("merge shape: %+v", r.Runs)
	}
	if r.Runs[0].Scenarios[0].Requests != 99 || r.Runs[0].Scenarios[1].Requests != 20 {
		t.Fatalf("merge content: %+v", r.Runs[0].Scenarios)
	}

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 2 || back.Runs[0].Scenarios[0].Requests != 99 {
		t.Fatalf("round trip: %+v", back.Runs)
	}

	// A foreign schema must refuse to load.
	if err := os.WriteFile(path, []byte(`{"schema":"phasemark/bench-service/v999"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Error("foreign schema loaded silently")
	}

	// The pre-telemetry v1 layout is superseded: it loads as a fresh v2
	// report instead of erroring or merging.
	if err := os.WriteFile(path, []byte(`{"schema":"phasemark/bench-service/v1","runs":[{"label":"old"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadReport(path)
	if err != nil {
		t.Fatalf("v1 report did not migrate: %v", err)
	}
	if v2.Schema != Schema || len(v2.Runs) != 0 {
		t.Errorf("v1 migration = %+v, want empty v2 report", v2)
	}
}

func TestScenarioRunCountsTransportFailures(t *testing.T) {
	// A server that immediately drops connections.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, _ := w.(http.Hijacker)
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer ts.Close()
	res := Scenario{Name: "broken", Workload: "lucas", Requests: 8, Concurrency: 2, Mix: Mix{Hot: 1}, Seed: 1}.Run(ts.URL, nil)
	if res.Status.Transport != 8 {
		t.Errorf("transport failures = %d, want 8 (%+v)", res.Status.Transport, res.Status)
	}
	if len(res.Check()) == 0 {
		t.Error("Check() clean despite transport failures")
	}
}
