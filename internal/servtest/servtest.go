// Package servtest generates synthetic traffic against a phased server
// (internal/service) and aggregates the outcome into the committed
// bench-service report (results/BENCH_service.json).
//
// Traffic is deterministic: a Scenario's request sequence is a pure
// function of its seed (stats.RNG), so a stress run is reproducible
// request-for-request. Requests draw from three temperature classes —
// hot (a tiny pool hammered repeatedly: store hits after first touch),
// warm (a medium pool: computes early, hits once touched), and cold
// (never-repeated requests: always a compute) — mixed per the scenario's
// Mix ratios. Cold traffic is built from the cheap request families
// (cluster seed sweeps, select ilower sweeps) so uniqueness costs
// milliseconds against memoized traces, not a fresh trace per request.
package servtest

import (
	"fmt"

	"phasemark/internal/service"
	"phasemark/internal/stats"
)

// Mix is the cold/warm/hot composition of a scenario's traffic. The
// fields are weights, normalized at generation time; zero everywhere
// means all-cold.
type Mix struct {
	Cold float64 `json:"cold"`
	Warm float64 `json:"warm"`
	Hot  float64 `json:"hot"`
}

// Request is one generated API call.
type Request struct {
	Endpoint string
	Body     []byte
	Kind     string // "cold", "warm", or "hot"
}

// warmPoolSize is the number of distinct requests behind warm traffic.
const warmPoolSize = 32

// hotPool returns the small fixed request set behind hot traffic: one
// request per pipeline endpoint.
func hotPool(workload string) []Request {
	seg := fmt.Sprintf(`{"workload":%q,"fixed_len":100000}`, workload)
	return []Request{
		{Endpoint: service.EndpointProfile, Kind: "hot",
			Body: []byte(fmt.Sprintf(`{"workload":%q}`, workload))},
		{Endpoint: service.EndpointSelect, Kind: "hot",
			Body: []byte(fmt.Sprintf(`{"workload":%q}`, workload))},
		{Endpoint: service.EndpointSegment, Kind: "hot",
			Body: []byte(seg)},
		{Endpoint: service.EndpointCluster, Kind: "hot",
			Body: []byte(fmt.Sprintf(`{"segment":%s,"seed":1}`, seg))},
	}
}

// warmRequest returns warm pool entry i: a cluster seed sweep over a
// shared segmentation, so the pool shares one traced execution.
func warmRequest(workload string, i int) Request {
	return Request{
		Endpoint: service.EndpointCluster,
		Kind:     "warm",
		Body: []byte(fmt.Sprintf(
			`{"segment":{"workload":%q,"fixed_len":100000},"seed":%d}`,
			workload, 1000+i)),
	}
}

// coldRequest returns the i-th never-repeating request, alternating
// between the two cheap unique families: cluster seed sweeps and select
// ilower sweeps. Seeds/ilowers start far above the warm/hot ranges so the
// classes never collide.
func coldRequest(workload string, i int) Request {
	if i%2 == 0 {
		return Request{
			Endpoint: service.EndpointCluster,
			Kind:     "cold",
			Body: []byte(fmt.Sprintf(
				`{"segment":{"workload":%q,"fixed_len":100000},"seed":%d}`,
				workload, 1_000_000+i)),
		}
	}
	return Request{
		Endpoint: service.EndpointSelect,
		Kind:     "cold",
		Body: []byte(fmt.Sprintf(
			`{"workload":%q,"options":{"ilower":%d}}`,
			workload, 1_000_000+i)),
	}
}

// Generate produces the scenario's deterministic request sequence: n
// requests over workload, classes drawn per mix from rng seed. The same
// (workload, n, mix, seed) always yields the same sequence.
func Generate(workload string, n int, mix Mix, seed uint64) []Request {
	total := mix.Cold + mix.Warm + mix.Hot
	if total <= 0 {
		mix, total = Mix{Cold: 1}, 1
	}
	rng := stats.NewRNG(seed)
	hot := hotPool(workload)
	reqs := make([]Request, 0, n)
	cold := 0
	for i := 0; i < n; i++ {
		switch x := rng.Float64() * total; {
		case x < mix.Cold:
			reqs = append(reqs, coldRequest(workload, cold))
			cold++
		case x < mix.Cold+mix.Warm:
			reqs = append(reqs, warmRequest(workload, rng.Intn(warmPoolSize)))
		default:
			reqs = append(reqs, hot[rng.Intn(len(hot))])
		}
	}
	return reqs
}
