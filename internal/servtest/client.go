package servtest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"phasemark/internal/par"
	"phasemark/internal/service"
	"phasemark/internal/store"
)

// Scenario is one stress pattern: n requests of the given mix fired at a
// server from `concurrency` concurrent clients.
type Scenario struct {
	Name        string
	Workload    string
	Requests    int
	Concurrency int
	Mix         Mix
	Seed        uint64
	// ExpectShed marks induced-saturation scenarios, where 429s are the
	// point rather than a failure (Check treats shed traffic accordingly).
	ExpectShed bool
}

// StatusCounts buckets request outcomes the way the service's own status
// counters do, plus client-side transport failures.
type StatusCounts struct {
	OK         int `json:"ok"`          // 200
	BadRequest int `json:"bad_request"` // 4xx other than 429
	Shed       int `json:"shed"`        // 429
	Draining   int `json:"draining"`    // 503
	ServerErr  int `json:"server_err"`  // remaining 5xx
	Transport  int `json:"transport"`   // request never completed
}

// CacheCounts buckets successful responses by the X-Phased-Cache header.
type CacheCounts struct {
	Hit      int `json:"hit"`
	Computed int `json:"computed"`
	Joined   int `json:"joined"`
}

// LatencySummary is the request latency distribution in nanoseconds.
type LatencySummary struct {
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// summarize condenses a sorted latency sample into the summary.
func summarize(sorted []int64) LatencySummary {
	if len(sorted) == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		P50NS: percentile(sorted, 0.50),
		P90NS: percentile(sorted, 0.90),
		P95NS: percentile(sorted, 0.95),
		P99NS: percentile(sorted, 0.99),
		MaxNS: sorted[len(sorted)-1],
	}
}

// StageLatency is the distribution of one server-side stage's duration
// across the scenario's successful requests, built from the Server-Timing
// stage breakdown each response carries.
type StageLatency struct {
	Count   int   `json:"count"`
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	P99NS   int64 `json:"p99_ns"`
	MaxNS   int64 `json:"max_ns"`
	TotalNS int64 `json:"total_ns"`
}

// TelemetryCheck counts telemetry-consistency violations across the
// scenario's successful responses: the server-reported root-level stage
// durations (queue wait plus the store's sequential get/compute/write —
// or join) must sum to no more than the client-observed wall time, and a
// cache hit must not carry a compute stage. A violation means the span
// accounting lies, which Check treats as a failure.
type TelemetryCheck struct {
	Checked        int `json:"checked"`
	MissingTiming  int `json:"missing_timing"`
	StageOverWall  int `json:"stage_over_wall"`
	HitWithCompute int `json:"hit_with_compute"`
}

// rootStages are the sequential root-level phases of one dispatched
// request; per request their durations are disjoint, so their sum bounds
// below the client's measured wall time.
var rootStages = []string{service.SpanQueue, store.SpanGet, store.SpanCompute, store.SpanWrite, store.SpanJoin}

// StoreCounts mirrors the server-side store stats for the scenario
// (filled by the stress driver, which owns the server; zero when the
// client has no server access).
type StoreCounts struct {
	Computes uint64 `json:"computes"`
	DiskHits uint64 `json:"disk_hits"`
	Joins    uint64 `json:"joins"`
}

// ScenarioResult is one scenario's aggregated outcome.
type ScenarioResult struct {
	Name        string                    `json:"name"`
	Workload    string                    `json:"workload"`
	Requests    int                       `json:"requests"`
	Concurrency int                       `json:"concurrency"`
	Mix         Mix                       `json:"mix"`
	ExpectShed  bool                      `json:"expect_shed,omitempty"`
	DurationNS  int64                     `json:"duration_ns"`
	ReqPerSec   float64                   `json:"req_per_sec"`
	Status      StatusCounts              `json:"status"`
	Cache       CacheCounts               `json:"cache"`
	Latency     LatencySummary            `json:"latency"`
	Stages      map[string]StageLatency   `json:"stages,omitempty"`
	Outcome     map[string]LatencySummary `json:"outcome_latency,omitempty"`
	Telemetry   TelemetryCheck            `json:"telemetry"`
	Store       StoreCounts               `json:"store"`
}

// parseServerTiming reads a Server-Timing header into per-stage durations
// in nanoseconds ("store.get;dur=1.500, req.queue;dur=0.020" — dur is
// milliseconds on the wire). Returns nil when the header carries nothing.
func parseServerTiming(h string) map[string]int64 {
	if h == "" {
		return nil
	}
	out := map[string]int64{}
	for _, entry := range strings.Split(h, ",") {
		fields := strings.Split(strings.TrimSpace(entry), ";")
		name := strings.TrimSpace(fields[0])
		if name == "" {
			continue
		}
		for _, p := range fields[1:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(p), "dur="); ok {
				if ms, err := strconv.ParseFloat(v, 64); err == nil {
					out[name] += int64(ms * 1e6)
				}
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// percentile returns the p-quantile (0 < p <= 1) of sorted latencies by
// the nearest-rank method.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Run fires the scenario's generated requests at baseURL over
// `concurrency` workers (par.ForEach — the same pool primitive the server
// fans batches out on) and aggregates statuses, cache outcomes, and
// latency percentiles.
func (s Scenario) Run(baseURL string, client *http.Client) ScenarioResult {
	if client == nil {
		client = http.DefaultClient
	}
	reqs := Generate(s.Workload, s.Requests, s.Mix, s.Seed)

	codes := make([]int, len(reqs))
	caches := make([]string, len(reqs))
	lats := make([]int64, len(reqs))
	timings := make([]map[string]int64, len(reqs))
	start := time.Now()
	par.ForEach(len(reqs), s.Concurrency, nil, func(_, i int) {
		t0 := time.Now()
		resp, err := client.Post(baseURL+reqs[i].Endpoint, "application/json", bytes.NewReader(reqs[i].Body))
		lats[i] = time.Since(t0).Nanoseconds()
		if err != nil {
			codes[i] = -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes[i] = resp.StatusCode
		caches[i] = resp.Header.Get("X-Phased-Cache")
		timings[i] = parseServerTiming(resp.Header.Get("Server-Timing"))
	})
	dur := time.Since(start)

	res := ScenarioResult{
		Name:        s.Name,
		Workload:    s.Workload,
		Requests:    len(reqs),
		Concurrency: s.Concurrency,
		Mix:         s.Mix,
		ExpectShed:  s.ExpectShed,
		DurationNS:  dur.Nanoseconds(),
	}
	if secs := dur.Seconds(); secs > 0 {
		res.ReqPerSec = float64(len(reqs)) / secs
	}
	for i, code := range codes {
		switch {
		case code == -1:
			res.Status.Transport++
		case code == http.StatusOK:
			res.Status.OK++
			switch caches[i] {
			case "hit":
				res.Cache.Hit++
			case "computed":
				res.Cache.Computed++
			case "joined":
				res.Cache.Joined++
			}
		case code == http.StatusTooManyRequests:
			res.Status.Shed++
		case code == http.StatusServiceUnavailable:
			res.Status.Draining++
		case code >= 500:
			res.Status.ServerErr++
		default:
			res.Status.BadRequest++
		}
	}
	// Per-stage and per-outcome splits, plus the telemetry-consistency
	// audit, over the successful responses (errors carry no breakdown).
	stageSamples := map[string][]int64{}
	outcomeLats := map[string][]int64{}
	for i, code := range codes {
		if code != http.StatusOK {
			continue
		}
		if c := caches[i]; c != "" {
			outcomeLats[c] = append(outcomeLats[c], lats[i])
		}
		res.Telemetry.Checked++
		tm := timings[i]
		if len(tm) == 0 {
			res.Telemetry.MissingTiming++
			continue
		}
		for name, d := range tm {
			stageSamples[name] = append(stageSamples[name], d)
		}
		var rootSum int64
		for _, name := range rootStages {
			rootSum += tm[name]
		}
		if rootSum > lats[i] {
			res.Telemetry.StageOverWall++
		}
		if _, computed := tm[store.SpanCompute]; computed && caches[i] == "hit" {
			res.Telemetry.HitWithCompute++
		}
	}
	if len(stageSamples) > 0 {
		res.Stages = make(map[string]StageLatency, len(stageSamples))
		for name, samples := range stageSamples {
			sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
			var total int64
			for _, d := range samples {
				total += d
			}
			res.Stages[name] = StageLatency{
				Count:   len(samples),
				P50NS:   percentile(samples, 0.50),
				P95NS:   percentile(samples, 0.95),
				P99NS:   percentile(samples, 0.99),
				MaxNS:   samples[len(samples)-1],
				TotalNS: total,
			}
		}
	}
	if len(outcomeLats) > 0 {
		res.Outcome = make(map[string]LatencySummary, len(outcomeLats))
		for o, ls := range outcomeLats {
			sort.Slice(ls, func(a, b int) bool { return ls[a] < ls[b] })
			res.Outcome[o] = summarize(ls)
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	res.Latency = summarize(lats)
	return res
}

// Check validates a result against the service's steady-state contract:
// no 5xx, no transport failures, no malformed generated requests, and —
// unless the scenario induced saturation on purpose — no shed traffic.
// It returns a list of violations, empty when the result is healthy.
func (r ScenarioResult) Check() []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, r.Name+": "+fmt.Sprintf(format, args...))
	}
	if r.Status.ServerErr > 0 {
		fail("%d server errors (5xx)", r.Status.ServerErr)
	}
	if r.Status.Transport > 0 {
		fail("%d transport failures", r.Status.Transport)
	}
	if r.Status.BadRequest > 0 {
		fail("%d rejected requests (4xx): generator emitted invalid traffic", r.Status.BadRequest)
	}
	if r.Status.Draining > 0 {
		fail("%d draining rejections (503)", r.Status.Draining)
	}
	if !r.ExpectShed && r.Status.Shed > 0 {
		fail("%d shed requests (429) at steady state", r.Status.Shed)
	}
	if r.ExpectShed && r.Status.Shed == 0 {
		fail("induced saturation shed nothing")
	}
	if r.Telemetry.MissingTiming > 0 {
		fail("%d OK responses without a Server-Timing stage breakdown", r.Telemetry.MissingTiming)
	}
	if r.Telemetry.StageOverWall > 0 {
		fail("%d responses whose root stage durations exceed the observed wall time", r.Telemetry.StageOverWall)
	}
	if r.Telemetry.HitWithCompute > 0 {
		fail("%d cache hits reporting a compute stage", r.Telemetry.HitWithCompute)
	}
	return bad
}
