package servtest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"phasemark/internal/par"
)

// Scenario is one stress pattern: n requests of the given mix fired at a
// server from `concurrency` concurrent clients.
type Scenario struct {
	Name        string
	Workload    string
	Requests    int
	Concurrency int
	Mix         Mix
	Seed        uint64
	// ExpectShed marks induced-saturation scenarios, where 429s are the
	// point rather than a failure (Check treats shed traffic accordingly).
	ExpectShed bool
}

// StatusCounts buckets request outcomes the way the service's own status
// counters do, plus client-side transport failures.
type StatusCounts struct {
	OK         int `json:"ok"`          // 200
	BadRequest int `json:"bad_request"` // 4xx other than 429
	Shed       int `json:"shed"`        // 429
	Draining   int `json:"draining"`    // 503
	ServerErr  int `json:"server_err"`  // remaining 5xx
	Transport  int `json:"transport"`   // request never completed
}

// CacheCounts buckets successful responses by the X-Phased-Cache header.
type CacheCounts struct {
	Hit      int `json:"hit"`
	Computed int `json:"computed"`
	Joined   int `json:"joined"`
}

// LatencySummary is the request latency distribution in nanoseconds.
type LatencySummary struct {
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// StoreCounts mirrors the server-side store stats for the scenario
// (filled by the stress driver, which owns the server; zero when the
// client has no server access).
type StoreCounts struct {
	Computes uint64 `json:"computes"`
	DiskHits uint64 `json:"disk_hits"`
	Joins    uint64 `json:"joins"`
}

// ScenarioResult is one scenario's aggregated outcome.
type ScenarioResult struct {
	Name        string         `json:"name"`
	Workload    string         `json:"workload"`
	Requests    int            `json:"requests"`
	Concurrency int            `json:"concurrency"`
	Mix         Mix            `json:"mix"`
	ExpectShed  bool           `json:"expect_shed,omitempty"`
	DurationNS  int64          `json:"duration_ns"`
	ReqPerSec   float64        `json:"req_per_sec"`
	Status      StatusCounts   `json:"status"`
	Cache       CacheCounts    `json:"cache"`
	Latency     LatencySummary `json:"latency"`
	Store       StoreCounts    `json:"store"`
}

// percentile returns the p-quantile (0 < p <= 1) of sorted latencies by
// the nearest-rank method.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Run fires the scenario's generated requests at baseURL over
// `concurrency` workers (par.ForEach — the same pool primitive the server
// fans batches out on) and aggregates statuses, cache outcomes, and
// latency percentiles.
func (s Scenario) Run(baseURL string, client *http.Client) ScenarioResult {
	if client == nil {
		client = http.DefaultClient
	}
	reqs := Generate(s.Workload, s.Requests, s.Mix, s.Seed)

	codes := make([]int, len(reqs))
	caches := make([]string, len(reqs))
	lats := make([]int64, len(reqs))
	start := time.Now()
	par.ForEach(len(reqs), s.Concurrency, nil, func(_, i int) {
		t0 := time.Now()
		resp, err := client.Post(baseURL+reqs[i].Endpoint, "application/json", bytes.NewReader(reqs[i].Body))
		lats[i] = time.Since(t0).Nanoseconds()
		if err != nil {
			codes[i] = -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes[i] = resp.StatusCode
		caches[i] = resp.Header.Get("X-Phased-Cache")
	})
	dur := time.Since(start)

	res := ScenarioResult{
		Name:        s.Name,
		Workload:    s.Workload,
		Requests:    len(reqs),
		Concurrency: s.Concurrency,
		Mix:         s.Mix,
		ExpectShed:  s.ExpectShed,
		DurationNS:  dur.Nanoseconds(),
	}
	if secs := dur.Seconds(); secs > 0 {
		res.ReqPerSec = float64(len(reqs)) / secs
	}
	for i, code := range codes {
		switch {
		case code == -1:
			res.Status.Transport++
		case code == http.StatusOK:
			res.Status.OK++
			switch caches[i] {
			case "hit":
				res.Cache.Hit++
			case "computed":
				res.Cache.Computed++
			case "joined":
				res.Cache.Joined++
			}
		case code == http.StatusTooManyRequests:
			res.Status.Shed++
		case code == http.StatusServiceUnavailable:
			res.Status.Draining++
		case code >= 500:
			res.Status.ServerErr++
		default:
			res.Status.BadRequest++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	res.Latency = LatencySummary{
		P50NS: percentile(lats, 0.50),
		P90NS: percentile(lats, 0.90),
		P99NS: percentile(lats, 0.99),
		MaxNS: lats[len(lats)-1],
	}
	return res
}

// Check validates a result against the service's steady-state contract:
// no 5xx, no transport failures, no malformed generated requests, and —
// unless the scenario induced saturation on purpose — no shed traffic.
// It returns a list of violations, empty when the result is healthy.
func (r ScenarioResult) Check() []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, r.Name+": "+fmt.Sprintf(format, args...))
	}
	if r.Status.ServerErr > 0 {
		fail("%d server errors (5xx)", r.Status.ServerErr)
	}
	if r.Status.Transport > 0 {
		fail("%d transport failures", r.Status.Transport)
	}
	if r.Status.BadRequest > 0 {
		fail("%d rejected requests (4xx): generator emitted invalid traffic", r.Status.BadRequest)
	}
	if r.Status.Draining > 0 {
		fail("%d draining rejections (503)", r.Status.Draining)
	}
	if !r.ExpectShed && r.Status.Shed > 0 {
		fail("%d shed requests (429) at steady state", r.Status.Shed)
	}
	if r.ExpectShed && r.Status.Shed == 0 {
		fail("induced saturation shed nothing")
	}
	return bad
}
