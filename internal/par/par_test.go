package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversRangeAtEveryWidth(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, runtime.NumCPU(), 64} {
		n := 137
		var hits [137]int32
		ForEach(n, workers, nil, func(worker, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want exactly once", workers, i, h)
			}
		}
	}
}

func TestForEachWorkerIDsAreDense(t *testing.T) {
	const n, workers = 200, 4
	var seen [workers + 1]int32 // extra slot traps out-of-range ids via panic-free check
	ForEach(n, workers, nil, func(worker, i int) {
		if worker < 0 || worker >= workers {
			atomic.AddInt32(&seen[workers], 1)
			return
		}
		atomic.AddInt32(&seen[worker], 1)
		time.Sleep(time.Microsecond) // give every worker a chance to pick up work
	})
	if seen[workers] != 0 {
		t.Fatalf("worker id out of [0, %d)", workers)
	}
	var total int32
	for _, c := range seen[:workers] {
		total += c
	}
	if total != n {
		t.Fatalf("worker hit counts sum to %d, want %d", total, n)
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(10, 1, nil, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial path used worker %d", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order[%d] = %d", i, v)
		}
	}
}

func TestForEachClampsWorkersToN(t *testing.T) {
	// n=1 with many workers must take the inline path (worker 0 only).
	ForEach(1, 16, nil, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("n=1 ran on worker %d", worker)
		}
	})
	ForEach(0, 4, nil, func(worker, i int) {
		t.Fatal("fn called with n=0")
	})
}

func TestForEachObs(t *testing.T) {
	var execs, waits atomic.Int32
	obs := &Obs{
		QueueWait: func(d time.Duration) {
			if d < 0 {
				t.Errorf("negative queue wait %v", d)
			}
			waits.Add(1)
		},
		Exec: func(d time.Duration) {
			if d < 0 {
				t.Errorf("negative exec %v", d)
			}
			execs.Add(1)
		},
	}
	ForEach(20, 3, obs, func(worker, i int) {})
	if execs.Load() != 20 || waits.Load() != 20 {
		t.Fatalf("parallel obs: %d execs, %d waits, want 20 each", execs.Load(), waits.Load())
	}

	execs.Store(0)
	waits.Store(0)
	ForEach(5, 1, obs, func(worker, i int) {})
	if execs.Load() != 5 {
		t.Fatalf("serial obs: %d execs, want 5", execs.Load())
	}
	if waits.Load() != 0 {
		t.Fatalf("serial path observed %d queue waits, want 0 (nothing queues)", waits.Load())
	}
}
