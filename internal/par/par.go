// Package par provides the repo's one worker-pool primitive: a bounded
// fan-out over an index range with stable worker identities, shared by
// the experiment suite's workload pool and the clustering engine's
// (k, restart) run fan. Callers that need per-worker scratch key it by
// the worker id; callers that need queueing telemetry pass an Obs.
package par

import "time"

// Obs receives scheduling telemetry: QueueWait is how long a dispatched
// item waited before a worker picked it up, Exec is how long the item's
// fn ran. Either hook may be nil. A nil *Obs skips all timestamping.
type Obs struct {
	QueueWait func(time.Duration)
	Exec      func(time.Duration)
}

func (o *Obs) queueWait(d time.Duration) {
	if o != nil && o.QueueWait != nil {
		o.QueueWait(d)
	}
}

func (o *Obs) exec(d time.Duration) {
	if o != nil && o.Exec != nil {
		o.Exec(d)
	}
}

// ForEach runs fn(worker, i) for every i in [0, n) on up to workers
// goroutines and returns when all calls have finished. Worker ids are
// dense in [0, effective workers): two calls with the same worker id
// never overlap, so fn may keep per-worker scratch indexed by the id.
// With workers <= 1 (or n <= 1) the calls run inline on the caller's
// goroutine, in index order, as worker 0 — no goroutines, no channels —
// which also serves as the deterministic reference schedule for tests.
func ForEach(n, workers int, obs *Obs, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if obs == nil {
				fn(0, i)
				continue
			}
			start := time.Now()
			fn(0, i)
			obs.exec(time.Since(start))
		}
		return
	}

	type item struct {
		i  int
		at time.Time // when the dispatcher offered the item
	}
	// Unbuffered on purpose: a send completes only when a worker receives,
	// so offer-to-pickup time is a true queue-wait measurement and the
	// dispatcher applies backpressure instead of buffering the whole range.
	ch := make(chan item)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer func() { done <- struct{}{} }()
			for it := range ch {
				if obs == nil {
					fn(worker, it.i)
					continue
				}
				pickup := time.Now()
				obs.queueWait(pickup.Sub(it.at))
				fn(worker, it.i)
				obs.exec(time.Since(pickup))
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		it := item{i: i}
		if obs != nil {
			it.at = time.Now()
		}
		ch <- it
	}
	close(ch)
	for w := 0; w < workers; w++ {
		<-done
	}
}
