package crossbin

import (
	"testing"

	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
)

const src = `
array data[8192];
proc work(n, k) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + data[(i * k) & 8191];
	}
	return s;
}
proc cool(n) {
	var s = 1 + 2 + 3; // folds away under optimization
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + work(n, 7);
		s = s + cool(n);
		s = s + work(n / 2, 3);
	}
	out(s);
	return s;
}
`

func compileBoth(t *testing.T) (plain, opt *minivmProgram) {
	t.Helper()
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := compile.Compile(f, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := compile.Compile(f2, compile.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return &minivmProgram{p0}, &minivmProgram{p1}
}

func markers(t *testing.T, p *minivmProgram) *core.MarkerSet {
	t.Helper()
	g, err := core.ProfileRun(p.Program, 6, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	set := core.SelectMarkers(g, core.SelectOptions{ILower: 50_000})
	if len(set.Markers) == 0 {
		t.Fatal("no markers selected")
	}
	return set
}

func TestMapMarkersFullyMaps(t *testing.T) {
	plain, opt := compileBoth(t)
	set := markers(t, plain)
	mapped, rep, err := MapMarkers(set, plain.Program, opt.Program)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unmapped) != 0 {
		t.Fatalf("unmapped markers: %v", rep.Unmapped)
	}
	if rep.Mapped != len(set.Markers) || len(mapped.Markers) != len(set.Markers) {
		t.Fatalf("mapped %d of %d", rep.Mapped, len(set.Markers))
	}
	// Mapped keys must reference valid anchors in the target binary.
	for _, m := range mapped.Markers {
		if opt.blockByID(m.Key.Site) == nil {
			t.Fatalf("marker %v anchors at missing block %d", m.Key, m.Key.Site)
		}
	}
}

func TestTracesIdenticalAcrossCompilations(t *testing.T) {
	plain, opt := compileBoth(t)
	set := markers(t, plain)
	mapped, rep, err := MapMarkers(set, plain.Program, opt.Program)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unmapped) != 0 {
		t.Fatalf("unmapped: %v", rep.Unmapped)
	}
	// Same input on both binaries: identical firing sequences (§6.2.1).
	for _, args := range [][]int64{{6, 30_000}, {3, 12_000}} {
		t0, err := Trace(plain.Program, set, args...)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := Trace(opt.Program, mapped, args...)
		if err != nil {
			t.Fatal(err)
		}
		if len(t0) == 0 {
			t.Fatal("no firings")
		}
		if !TracesEqual(t0, t1) {
			t.Fatalf("traces differ on args %v:\n%v\n%v", args, t0, t1)
		}
	}
}

func TestTracesEqual(t *testing.T) {
	if !TracesEqual(nil, nil) || !TracesEqual([]int{1, 2}, []int{1, 2}) {
		t.Error("equal traces reported unequal")
	}
	if TracesEqual([]int{1}, []int{1, 2}) || TracesEqual([]int{1, 2}, []int{2, 1}) {
		t.Error("unequal traces reported equal")
	}
}

func TestMapMarkersRoundTrip(t *testing.T) {
	plain, opt := compileBoth(t)
	set := markers(t, plain)
	there, _, err := MapMarkers(set, plain.Program, opt.Program)
	if err != nil {
		t.Fatal(err)
	}
	back, rep, err := MapMarkers(there, opt.Program, plain.Program)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unmapped) != 0 {
		t.Fatalf("round trip lost markers: %v", rep.Unmapped)
	}
	if len(back.Markers) != len(set.Markers) {
		t.Fatalf("round trip count %d != %d", len(back.Markers), len(set.Markers))
	}
	for i := range set.Markers {
		if back.Markers[i].Key != set.Markers[i].Key {
			t.Fatalf("marker %d did not round-trip: %v vs %v",
				i, back.Markers[i].Key, set.Markers[i].Key)
		}
	}
}

// minivmProgram wraps a program with a block-lookup helper for tests.
type minivmProgram struct {
	*minivm.Program
}

func (p *minivmProgram) blockByID(id int) *minivm.Block { return p.Program.BlockByID(id) }

// inlineSrc has a tiny leaf procedure that inlining removes entirely: a
// marker anchored on its call edge has no equivalent location in the
// inlined binary and must be reported unmapped ("compiled away", §6.2.1).
const inlineSrc = `
array data[4096];
proc tiny(x) {
	var s = 0;
	for (var i = 0; i < 300; i = i + 1) { s = s + i + x; }
	return s;
}
proc heavy(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + data[(i * 11) & 4095] + (s >> 2) - i;
		data[(i + 5) & 4095] = s & 2047;
		s = s ^ (data[(i + 9) & 4095] << 1);
	}
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + heavy(n);
		for (var j = 0; j < 40; j = j + 1) { s = s + tiny(j); }
	}
	out(s);
	return s;
}
`

func TestMarkersCompiledAwayByInlining(t *testing.T) {
	f, err := lang.Parse(inlineSrc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := compile.Compile(f, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := lang.Parse(inlineSrc)
	inlined, err := compile.Compile(f2, compile.Options{Optimize: true, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	if inlined.Proc("tiny") != nil {
		t.Fatal("test premise broken: tiny survived inlining")
	}
	g, err := core.ProfileRun(plain, 6, 8000)
	if err != nil {
		t.Fatal(err)
	}
	// Low ilower so the tiny call edges qualify as markers too.
	set := core.SelectMarkers(g, core.SelectOptions{ILower: 1000})
	hasTinyMarker := false
	for _, m := range set.Markers {
		if m.Key.To.Kind == core.ProcHead || m.Key.To.Kind == core.ProcBody {
			if pr := plain.Procs[m.Key.To.ID]; pr.Name == "tiny" {
				hasTinyMarker = true
			}
		}
	}
	if !hasTinyMarker {
		t.Skip("selection did not mark the tiny call edge; nothing to compile away")
	}
	mapped, rep, err := MapMarkers(set, plain, inlined)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unmapped) == 0 {
		t.Fatal("inlined-away markers must be reported unmapped")
	}
	// The surviving subset still fires identically on both binaries.
	subset := Restrict(set, rep.Unmapped)
	if len(subset.Markers) != len(mapped.Markers) {
		t.Fatalf("subset %d != mapped %d", len(subset.Markers), len(mapped.Markers))
	}
	t0, err := Trace(plain, subset, 6, 8000)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Trace(inlined, mapped, 6, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(t0) == 0 || !TracesEqual(t0, t1) {
		t.Fatalf("surviving markers diverge: %d vs %d firings", len(t0), len(t1))
	}
}

// The paper's headline §6.2.1 scenario is cross-ISA (Alpha -> x86): here,
// markers selected on the register-machine binary are mapped into the
// stack-machine binary of the same source — a genuinely different
// instruction set and data-traffic profile — and must fire identically.
func TestCrossISARegisterToStackMachine(t *testing.T) {
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	regBin, err := compile.Compile(f, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := lang.Parse(src)
	stackBin, err := compile.Compile(f2, compile.Options{Stack: true})
	if err != nil {
		t.Fatal(err)
	}

	set := markers(t, &minivmProgram{regBin})
	mapped, rep, err := MapMarkers(set, regBin, stackBin)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unmapped) != 0 {
		t.Fatalf("unmapped markers across ISAs: %v", rep.Unmapped)
	}
	for _, args := range [][]int64{{6, 30_000}, {2, 9_000}} {
		t0, err := Trace(regBin, set, args...)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := Trace(stackBin, mapped, args...)
		if err != nil {
			t.Fatal(err)
		}
		if len(t0) == 0 || !TracesEqual(t0, t1) {
			t.Fatalf("cross-ISA traces differ on %v: %d vs %d firings", args, len(t0), len(t1))
		}
	}
}
