// Package crossbin maps software phase markers across different
// compilations of the same source program (§5.3 Figure 4 and §6.2.1).
//
// Markers name call-loop graph edges in one binary. Their anchors are
// mapped back to source positions through the debug info the compiler
// leaves on blocks and call terminators, then re-bound to the equivalent
// anchors in the other binary: procedures match by name, loops by the
// source position of their head, call sites by callee plus source
// position. A marker trace (the sequence of marker firings on one input)
// can then be compared across binaries; identical traces mean simulation
// points chosen on one binary identify the same execution regions in the
// other.
package crossbin

import (
	"fmt"

	"phasemark/internal/core"
	"phasemark/internal/minivm"
)

type pos struct {
	proc string
	line int
	col  int
}

// binIndex indexes one binary's markable anchors by source position.
type binIndex struct {
	prog      *minivm.Program
	procByNm  map[string]*minivm.Proc
	loopByPos map[pos]*minivm.Loop // loop head position -> loop
	callByPos map[pos]*minivm.Block
	posOfLoop map[int]pos // loop head block ID -> position
	posOfCall map[int]pos // call-site block ID -> position
}

func index(prog *minivm.Program) *binIndex {
	ix := &binIndex{
		prog:      prog,
		procByNm:  map[string]*minivm.Proc{},
		loopByPos: map[pos]*minivm.Loop{},
		callByPos: map[pos]*minivm.Block{},
		posOfLoop: map[int]pos{},
		posOfCall: map[int]pos{},
	}
	for _, pr := range prog.Procs {
		ix.procByNm[pr.Name] = pr
	}
	for _, l := range minivm.FindLoops(prog).All {
		p := pos{proc: l.Proc.Name, line: l.Head.Line, col: l.Head.Col}
		ix.loopByPos[p] = l
		ix.posOfLoop[l.Head.ID] = p
	}
	for _, pr := range prog.Procs {
		for _, b := range pr.Blocks {
			if b.Term.Kind == minivm.TermCall {
				callee := prog.Procs[b.Term.Callee].Name
				p := pos{proc: callee, line: b.Term.Line, col: b.Term.Col}
				ix.callByPos[p] = b
				ix.posOfCall[b.ID] = p
			}
		}
	}
	return ix
}

// Report describes a mapping attempt.
type Report struct {
	Mapped   int
	Unmapped []core.EdgeKey // markers with no equivalent anchor in the target
}

// MapMarkers rebinds markers selected on binary `from` to binary `to`
// (two compilations of the same source). Unmappable markers are dropped
// and reported.
func MapMarkers(set *core.MarkerSet, from, to *minivm.Program) (*core.MarkerSet, *Report, error) {
	fi, ti := index(from), index(to)
	out := &core.MarkerSet{Opts: set.Opts, CovBase: set.CovBase, CovSlack: set.CovSlack}
	rep := &Report{}
	for _, m := range set.Markers {
		key, ok := mapKey(m.Key, fi, ti)
		if !ok {
			rep.Unmapped = append(rep.Unmapped, m.Key)
			continue
		}
		nm := m
		nm.Key = key
		out.Markers = append(out.Markers, nm)
		rep.Mapped++
	}
	return out, rep, nil
}

func mapNode(k core.NodeKey, fi, ti *binIndex) (core.NodeKey, bool) {
	switch k.Kind {
	case core.ProcHead, core.ProcBody:
		pr := fi.prog.Procs[k.ID]
		tpr, ok := ti.procByNm[pr.Name]
		if !ok {
			return core.NodeKey{}, false
		}
		return core.NodeKey{Kind: k.Kind, ID: tpr.ID}, true
	case core.LoopHead, core.LoopBody:
		p, ok := fi.posOfLoop[k.ID]
		if !ok {
			return core.NodeKey{}, false
		}
		tl, ok := ti.loopByPos[p]
		if !ok {
			return core.NodeKey{}, false
		}
		return core.NodeKey{Kind: k.Kind, ID: tl.Head.ID}, true
	default: // root
		return k, true
	}
}

func mapKey(k core.EdgeKey, fi, ti *binIndex) (core.EdgeKey, bool) {
	from, ok := mapNode(k.From, fi, ti)
	if !ok {
		return core.EdgeKey{}, false
	}
	to, ok := mapNode(k.To, fi, ti)
	if !ok {
		return core.EdgeKey{}, false
	}
	out := core.EdgeKey{From: from, To: to}
	// Re-anchor the site.
	switch {
	case k.To.Kind == core.LoopHead || k.To.Kind == core.LoopBody:
		out.Site = to.ID // loop edges anchor at the (mapped) head block
	case k.To.Kind == core.ProcBody && k.From.Kind == core.ProcHead:
		// head→body edge anchors at the callee entry block.
		out.Site = ti.prog.Procs[to.ID].Blocks[0].ID
	case k.From.Kind == core.RootKind:
		// The virtual root's call of the entry procedure anchors at the
		// entry block.
		out.Site = ti.prog.EntryProc().Blocks[0].ID
	default:
		// Call edge: anchor at the equivalent call site.
		p, ok := fi.posOfCall[k.Site]
		if !ok {
			return core.EdgeKey{}, false
		}
		tb, ok := ti.callByPos[p]
		if !ok {
			return core.EdgeKey{}, false
		}
		out.Site = tb.ID
	}
	return out, true
}

// Trace runs prog with the marker set and returns the sequence of marker
// indexes fired, in order. Two compilations of one source given the same
// input and equivalent marker sets must produce identical traces — the
// §6.2.1 validation.
func Trace(prog *minivm.Program, set *core.MarkerSet, args ...int64) ([]int, error) {
	seq, _, _, err := TraceOutput(prog, set, args...)
	return seq, err
}

// TraceOutput is Trace plus the program's observable behavior: the out()
// stream and the entry procedure's return value. The differential backend
// oracle needs both halves — compilations must agree on what the program
// computes and on when its markers fire.
func TraceOutput(prog *minivm.Program, set *core.MarkerSet, args ...int64) (seq []int, out []int64, rv int64, err error) {
	det := core.NewDetector(prog, nil, set, func(marker int, at uint64) {
		seq = append(seq, marker)
	})
	m := minivm.NewMachine(prog, det)
	rv, err = m.Run(args...)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("crossbin: trace run: %w", err)
	}
	return seq, m.Output(), rv, nil
}

// Restrict returns a copy of set without the markers named in drop —
// used to compare traces across binaries where some markers were compiled
// away (e.g. a call edge removed by inlining): the surviving subset must
// still fire identically on both binaries.
func Restrict(set *core.MarkerSet, drop []core.EdgeKey) *core.MarkerSet {
	dead := map[core.EdgeKey]bool{}
	for _, k := range drop {
		dead[k] = true
	}
	out := &core.MarkerSet{Opts: set.Opts, CovBase: set.CovBase, CovSlack: set.CovSlack}
	for _, m := range set.Markers {
		if !dead[m.Key] {
			out.Markers = append(out.Markers, m)
		}
	}
	return out
}

// TracesEqual compares two marker traces.
func TracesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
