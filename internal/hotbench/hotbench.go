// Package hotbench defines the execute/observe hot-path benchmark stages
// shared by the root benchmark suite (hotpath_bench_test.go, which the CI
// perf-regression gate runs on head and merge base) and `spexp -bench`
// (which snapshots the same stages into BENCH_hotpath.json, the repo's
// committed performance record).
//
// Each stage pins its workload, input, and configuration so runs are
// comparable across commits: the workload programs are deterministic and
// the synthetic address stream is seeded, so only the code under test
// changes between measurements.
package hotbench

import (
	"fmt"
	"runtime"
	"strings"

	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/simpoint"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// Stage is one benchmarkable slice of the pipeline. New builds the
// stage's fixed inputs (compiled program, marker set, ...) once; the
// returned run function executes one operation and reports the work units
// it processed (dynamic instructions, or memory events for cpu_onmem).
type Stage struct {
	Name string // stable key in the phasemark/bench-hotpath/v2 schema
	Desc string
	Unit string // throughput metric name: "Minstr/s" or "Mevents/s"
	New  func() (func() (uint64, error), error)
}

// markerILower is the interval lower bound used by the marker-selection
// stages; it matches the experiment suite's small-interval configurations.
const markerILower = 100_000

// fixedLen is the fixed-interval length of the trace_fixed stage.
const fixedLen = 100_000

// onMemEvents is the synthetic memory-event count per cpu_onmem op.
const onMemEvents = 1 << 20

// Analysis-stage fixture: gzip's train input traced at fine-grained fixed
// intervals, so the project and cluster stages see a realistic interval
// population (hundreds of BBVs) at the paper's KMax=30 operating point.
const (
	analysisFixedLen = 10_000
	analysisKMax     = 30
	analysisDims     = 15
	analysisSeed     = 0xC1
)

// streamK is the centroid count of the streaming mini-batch clusterer in
// the pipeline_e2e_stream stage.
const streamK = 8

// Stages returns the hot-path stages in reporting order at scale 1 with
// the default worker count.
func Stages() []Stage { return StagesScaled(1, 0) }

// StagesScaled returns the stages with the trace amplifier applied to the
// streaming stages: pipeline_e2e_stream and pipeline_e2e_stream_par
// execute their workload scale times as one long trace
// (trace.Config.Scale), so `spexp -bench -scale 100` demonstrates
// bounded-memory throughput on a 100× trace. The materializing stages are
// intentionally left at scale 1 — their memory grows with the trace,
// which is the point of the comparison.
//
// workers sets the pipeline-parallel stage's worker count; workers <= 0
// selects GOMAXPROCS. scale must be >= 1 — the CLI rejects anything else
// with exit 2 before reaching here, and this package refuses to clamp
// silently: a benchmark labeled ×0 that silently ran ×1 would poison
// cross-commit comparisons.
func StagesScaled(scale, workers int) []Stage {
	if scale < 1 {
		panic(fmt.Sprintf("hotbench: scale must be >= 1, got %d (the CLI validates -scale)", scale))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return []Stage{
		{
			Name: "interp_dispatch",
			Desc: "steady-state interpreter dispatch: applu (optimized) on its train input, machine reused via Reset, no observers",
			Unit: "Minstr/s",
			New:  newInterpDispatch,
		},
		{
			Name: "detector_fire",
			Desc: "marker detection: art on its train input under a walker-based detector for its own limit-mode markers (100k-2M with loop-iteration grouping — the config with real probe traffic, ~4% of instructions; the no-limit selection's markers sit on edges traversed a few dozen times, leaving nothing to detect)",
			Unit: "Minstr/s",
			New:  newDetectorFire,
		},
		{
			Name: "detector_fire_min",
			Desc: "marker detection after minimum-cost placement: detector_fire's fixture with the core.MinimizeMarkers placement (setup verifies the kept markers fire as the exact restriction of the full set)",
			Unit: "Minstr/s",
			New:  newDetectorFireMin,
		},
		{
			Name: "trace_fixed",
			Desc: "fixed-cut tracing: gzip on its train input, 100k-instruction intervals, timing model + BBVs",
			Unit: "Minstr/s",
			New:  newTraceFixed,
		},
		{
			Name: "trace_marker",
			Desc: "marker-cut tracing: art on its train input, intervals cut at marker firings, timing model + BBVs",
			Unit: "Minstr/s",
			New:  newTraceMarker,
		},
		{
			Name: "cpu_onmem",
			Desc: "cache hierarchy: 1Mi synthetic word accesses (seeded xorshift over 1 MiB mixed with a hot stride)",
			Unit: "Mevents/s",
			New:  newCPUOnMem,
		},
		{
			Name: "pipeline_e2e",
			Desc: "profile -> select -> marker-cut trace, end to end on gzip's train input",
			Unit: "Minstr/s",
			New:  newPipelineE2E,
		},
		{
			Name: "pipeline_e2e_stream",
			Desc: fmt.Sprintf("streaming bounded-memory pipeline: profile -> select -> chunked marker-cut trace feeding online projection, mini-batch k-means, and single-pass CoV, gzip train ×%d", scale),
			Unit: "Minstr/s",
			New:  newPipelineE2EStream(scale),
		},
		{
			Name: "pipeline_e2e_stream_par",
			Desc: fmt.Sprintf("pipeline_e2e_stream on the pipeline-parallel engine: trace production overlapped with parallel chunk consumers (projection, mini-batch k-means, CoV) and amplified repetitions fanned over workers, gzip train ×%d, %d workers — bit-identical to the serial stream", scale, workers),
			Unit: "Minstr/s",
			New:  newPipelineE2EStreamPar(scale, workers),
		},
		{
			Name: "project",
			Desc: "BBV random projection: gzip train at 10k fixed intervals, every interval BBV projected to 15 dims",
			Unit: "Mmacs/s",
			New:  newProject,
		},
		{
			Name: "cluster",
			Desc: "SimPoint clustering: gzip train at 10k fixed intervals, weighted k-means over k=1..30 with BIC model selection",
			Unit: "Mdist/s",
			New:  newCluster,
		},
	}
}

// StagesNamed resolves a list of stage names (in suite order, at the
// given trace scale and worker count) or reports the unknown ones
// alongside the valid set, mirroring the CLI convention for unknown
// figure names.
func StagesNamed(names []string, scale, workers int) ([]Stage, error) {
	all := StagesScaled(scale, workers)
	known := make(map[string]Stage, len(all))
	order := make([]string, 0, len(all))
	for _, st := range all {
		known[st.Name] = st
		order = append(order, st.Name)
	}
	want := make(map[string]bool, len(names))
	var unknown []string
	for _, n := range names {
		if _, ok := known[n]; !ok {
			unknown = append(unknown, fmt.Sprintf("%q", n))
			continue
		}
		want[n] = true
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown stage %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(order, ", "))
	}
	var out []Stage
	for _, st := range all {
		if want[st.Name] {
			out = append(out, st)
		}
	}
	return out, nil
}

// analysisFixture traces the deterministic interval population the
// analysis stages (project, cluster) run over.
func analysisFixture() (*trace.Result, error) {
	prog, w, err := compiled("gzip", false)
	if err != nil {
		return nil, err
	}
	return trace.Run(trace.Config{Prog: prog, Args: w.Train, CPU: uarch.DefaultConfig(), FixedLen: analysisFixedLen})
}

func newProject() (func() (uint64, error), error) {
	res, err := analysisFixture()
	if err != nil {
		return nil, err
	}
	// Work unit: one multiply-accumulate, i.e. one nonzero BBV entry times
	// one output dimension — the fixture's exact projection flop count.
	var macs uint64
	for _, iv := range res.Intervals {
		macs += uint64(len(iv.BBV.Idx)) * analysisDims
	}
	return func() (uint64, error) {
		pts, _ := simpoint.ProjectIntervals(res.Intervals, res.NumBlocks, analysisDims, analysisSeed)
		_ = pts
		return macs, nil
	}, nil
}

func newCluster() (func() (uint64, error), error) {
	res, err := analysisFixture()
	if err != nil {
		return nil, err
	}
	pts, weights := simpoint.ProjectIntervals(res.Intervals, res.NumBlocks, analysisDims, analysisSeed)
	opts := simpoint.Options{KMax: analysisKMax, Dims: analysisDims, Seed: analysisSeed}
	// Work unit: one point-to-center distance evaluation of a single naive
	// Lloyd's assignment pass, summed over every (k, restart) run — an
	// engine-independent measure of the fixture's clustering load.
	n := uint64(len(res.Intervals))
	work := n * 3 * uint64(analysisKMax) * uint64(analysisKMax+1) / 2
	return func() (uint64, error) {
		cl := simpoint.Cluster(pts, weights, opts)
		if cl.K < 1 {
			return 0, fmt.Errorf("cluster stage: degenerate clustering (K=%d)", cl.K)
		}
		return work, nil
	}, nil
}

func compiled(name string, opt bool) (*minivm.Program, *workloads.Workload, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	return w.MustCompile(opt), w, nil
}

func newInterpDispatch() (func() (uint64, error), error) {
	prog, w, err := compiled("applu", true)
	if err != nil {
		return nil, err
	}
	m := minivm.NewMachine(prog, nil)
	return func() (uint64, error) {
		m.Reset()
		if _, err := m.Run(w.Train...); err != nil {
			return 0, err
		}
		return m.Instructions(), nil
	}, nil
}

func markerSet(prog *minivm.Program, args []int64) (*core.MarkerSet, error) {
	g, err := core.ProfileRun(prog, args...)
	if err != nil {
		return nil, err
	}
	return core.SelectMarkers(g, core.SelectOptions{ILower: markerILower}), nil
}

// detectorSelect is the selection the detector stages run under: the
// limit config, whose loop-iteration-grouped markers sit on edges with
// real traversal traffic. The pair must agree — detector_fire_min is
// exactly this selection after core.MinimizeMarkers.
var detectorSelect = core.SelectOptions{ILower: markerILower, MaxLimit: 2_000_000}

func newDetectorFire() (func() (uint64, error), error) {
	prog, w, err := compiled("art", false)
	if err != nil {
		return nil, err
	}
	g, err := core.ProfileRun(prog, w.Train...)
	if err != nil {
		return nil, err
	}
	set := core.SelectMarkers(g, detectorSelect)
	loops := minivm.FindLoops(prog)
	return func() (uint64, error) {
		det := core.NewDetector(prog, loops, set, nil)
		m := minivm.NewMachine(prog, det)
		if _, err := m.Run(w.Train...); err != nil {
			return 0, err
		}
		return m.Instructions(), nil
	}, nil
}

// newDetectorFireMin is detector_fire on the minimized placement: same
// program, input, and marker selection, with core.MinimizeMarkers pruning
// the redundant sites first. Setup fails rather than benchmark a placement
// that changes behavior: the minimized run's firing sequence must be the
// full run's restricted to the kept markers, instant for instant.
func newDetectorFireMin() (func() (uint64, error), error) {
	prog, w, err := compiled("art", false)
	if err != nil {
		return nil, err
	}
	g, err := core.ProfileRun(prog, w.Train...)
	if err != nil {
		return nil, err
	}
	set := core.SelectMarkers(g, detectorSelect)
	min, rep := core.MinimizeMarkers(g, set, core.MinimizeOptions{IUpper: detectorSelect.MaxLimit})
	if rep.Kept >= rep.Full || rep.Kept == 0 {
		return nil, fmt.Errorf("detector_fire_min: degenerate placement: kept %d of %d markers", rep.Kept, rep.Full)
	}
	fullSeq, _, err := core.DetectFirings(prog, set, w.Train...)
	if err != nil {
		return nil, err
	}
	minSeq, _, err := core.DetectFirings(prog, min, w.Train...)
	if err != nil {
		return nil, err
	}
	fullBy := set.ByKey()
	remap := make(map[int]int, len(min.Markers))
	for i, m := range min.Markers {
		remap[fullBy[m.Key]] = i
	}
	k := 0
	for _, f := range fullSeq {
		mi, kept := remap[f.Marker]
		if !kept {
			continue
		}
		if k >= len(minSeq) || minSeq[k].Marker != mi || minSeq[k].At != f.At {
			return nil, fmt.Errorf("detector_fire_min: minimized firings diverge from the full set's restriction at firing %d", k)
		}
		k++
	}
	if k != len(minSeq) {
		return nil, fmt.Errorf("detector_fire_min: minimized run fired %d times, restriction predicts %d", len(minSeq), k)
	}
	loops := minivm.FindLoops(prog)
	return func() (uint64, error) {
		det := core.NewDetector(prog, loops, min, nil)
		m := minivm.NewMachine(prog, det)
		if _, err := m.Run(w.Train...); err != nil {
			return 0, err
		}
		return m.Instructions(), nil
	}, nil
}

func newTraceFixed() (func() (uint64, error), error) {
	prog, w, err := compiled("gzip", false)
	if err != nil {
		return nil, err
	}
	cfg := trace.Config{Prog: prog, Args: w.Train, CPU: uarch.DefaultConfig(), FixedLen: fixedLen}
	return func() (uint64, error) {
		r, err := trace.Run(cfg)
		if err != nil {
			return 0, err
		}
		return r.Instructions, nil
	}, nil
}

func newTraceMarker() (func() (uint64, error), error) {
	prog, w, err := compiled("art", false)
	if err != nil {
		return nil, err
	}
	set, err := markerSet(prog, w.Train)
	if err != nil {
		return nil, err
	}
	cfg := trace.Config{Prog: prog, Args: w.Train, CPU: uarch.DefaultConfig(), Markers: set}
	return func() (uint64, error) {
		r, err := trace.Run(cfg)
		if err != nil {
			return 0, err
		}
		return r.Instructions, nil
	}, nil
}

func newCPUOnMem() (func() (uint64, error), error) {
	prog, _, err := compiled("art", false)
	if err != nil {
		return nil, err
	}
	ucfg := uarch.DefaultConfig()
	return func() (uint64, error) {
		cpu := uarch.NewCPU(ucfg, prog)
		x := uint64(12345)
		for j := 0; j < onMemEvents; j++ {
			// Seeded xorshift over a 1 MiB working set, word-aligned, with a
			// hot stride run mixed in (mimics array sweeps).
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			var addr uint64
			if j&7 != 0 {
				addr = uint64(j&4095) * 8 // hot sweep: mostly L1 hits
			} else {
				addr = (x % (1 << 20)) &^ 7
			}
			cpu.OnMem(addr, j&15 == 0)
		}
		return onMemEvents, nil
	}, nil
}

func newPipelineE2E() (func() (uint64, error), error) {
	prog, w, err := compiled("gzip", false)
	if err != nil {
		return nil, err
	}
	ucfg := uarch.DefaultConfig()
	return func() (uint64, error) {
		set, err := markerSet(prog, w.Train)
		if err != nil {
			return 0, err
		}
		r, err := trace.Run(trace.Config{Prog: prog, Args: w.Train, CPU: ucfg, Markers: set})
		if err != nil {
			return 0, err
		}
		return r.Instructions, nil
	}, nil
}

// newPipelineE2EStream is pipeline_e2e's bounded-memory twin: the same
// profile → select → marker-cut trace, but streamed — interval chunks
// flow through the online projector, the mini-batch clusterer, and the
// single-pass CoV accumulator, and are recycled; nothing O(trace) is ever
// resident. scale amplifies the traced execution (trace.Config.Scale).
func newPipelineE2EStream(scale int) func() (func() (uint64, error), error) {
	return func() (func() (uint64, error), error) {
		prog, w, err := compiled("gzip", false)
		if err != nil {
			return nil, err
		}
		ucfg := uarch.DefaultConfig()
		return func() (uint64, error) {
			set, err := markerSet(prog, w.Train)
			if err != nil {
				return 0, err
			}
			km := simpoint.NewStreamKMeans(prog.NumBlocks, simpoint.Options{
				ForceK: streamK, Dims: analysisDims, Seed: analysisSeed, Restarts: 2, MaxIters: 40,
			})
			cov := trace.NewCoVAccumulator(trace.IntervalPhase, trace.CPIMetric)
			r, err := trace.Run(trace.Config{
				Prog: prog, Args: w.Train, CPU: ucfg, Markers: set, Scale: scale,
				Sink: func(chunk []trace.Interval) error {
					km.ObserveChunk(chunk)
					cov.ObserveChunk(chunk)
					return nil
				},
			})
			if err != nil {
				return 0, err
			}
			cl := km.Finish()
			if cl.K < 1 || cl.Points == 0 {
				return 0, fmt.Errorf("pipeline_e2e_stream: degenerate streaming clustering (K=%d over %d points)", cl.K, cl.Points)
			}
			if res := cov.Result(); res.Intervals != cl.Points {
				return 0, fmt.Errorf("pipeline_e2e_stream: CoV saw %d intervals, clusterer %d", res.Intervals, cl.Points)
			}
			return r.Instructions, nil
		}, nil
	}
}

// newPipelineE2EStreamPar is pipeline_e2e_stream on the pipeline-parallel
// engine: trace.Config.Workers > 0 decouples trace production from
// analysis (and fans amplified repetitions over workers), and the sink
// feeds the ObserveChunkPar consumers, which parallelize per-chunk
// projection and metric extraction while keeping every order-sensitive
// update sequential — so the stage's outputs are bit-identical to
// pipeline_e2e_stream's at any worker count; only the wall clock moves.
func newPipelineE2EStreamPar(scale, workers int) func() (func() (uint64, error), error) {
	return func() (func() (uint64, error), error) {
		prog, w, err := compiled("gzip", false)
		if err != nil {
			return nil, err
		}
		ucfg := uarch.DefaultConfig()
		return func() (uint64, error) {
			set, err := markerSet(prog, w.Train)
			if err != nil {
				return 0, err
			}
			km := simpoint.NewStreamKMeans(prog.NumBlocks, simpoint.Options{
				ForceK: streamK, Dims: analysisDims, Seed: analysisSeed, Restarts: 2, MaxIters: 40,
			})
			cov := trace.NewCoVAccumulator(trace.IntervalPhase, trace.CPIMetric)
			r, err := trace.Run(trace.Config{
				Prog: prog, Args: w.Train, CPU: ucfg, Markers: set, Scale: scale, Workers: workers,
				Sink: func(chunk []trace.Interval) error {
					km.ObserveChunkPar(chunk, workers)
					cov.ObserveChunkPar(chunk, workers)
					return nil
				},
			})
			if err != nil {
				return 0, err
			}
			cl := km.Finish()
			if cl.K < 1 || cl.Points == 0 {
				return 0, fmt.Errorf("pipeline_e2e_stream_par: degenerate streaming clustering (K=%d over %d points)", cl.K, cl.Points)
			}
			if res := cov.Result(); res.Intervals != cl.Points {
				return 0, fmt.Errorf("pipeline_e2e_stream_par: CoV saw %d intervals, clusterer %d", res.Intervals, cl.Points)
			}
			return r.Instructions, nil
		}, nil
	}
}
