package hotbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
)

// Schema identifies the BENCH_hotpath.json record layout. See
// EXPERIMENTS.md for the field-by-field description (documented next to
// phasemark/bench-obs/v1). v2 extends v1 with the analysis stages
// (project, cluster); the record layout itself is unchanged, so v1 files
// load and are upgraded in place on the next write.
const Schema = "phasemark/bench-hotpath/v2"

// schemaV1 is the pre-analysis-stage layout v2 supersedes.
const schemaV1 = "phasemark/bench-hotpath/v1"

// Report is the committed hot-path performance record: one run per
// labelled measurement (e.g. the seed implementation vs. the optimized
// one), each covering every stage.
type Report struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// Run is one labelled measurement of all stages.
type Run struct {
	Label  string        `json:"label"`
	Go     string        `json:"go"`
	Stages []StageResult `json:"stages"`
}

// StageResult is one stage's measurement. Work units are dynamic
// instructions for the execution stages and memory events for cpu_onmem;
// Unit names the work unit so WorkPerSec reads unambiguously.
type StageResult struct {
	Name        string  `json:"name"`
	Desc        string  `json:"desc"`
	Unit        string  `json:"unit"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	WorkPerOp   uint64  `json:"work_per_op"`
	WorkPerSec  float64 `json:"work_per_sec"`
}

// MeasureStage benchmarks one stage via testing.Benchmark (which picks the
// iteration count the way `go test -bench` does).
func MeasureStage(st Stage) (StageResult, error) {
	run, err := st.New()
	if err != nil {
		return StageResult{}, fmt.Errorf("hotbench: %s: %w", st.Name, err)
	}
	var work uint64
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := run()
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			work = w
		}
	})
	if runErr != nil {
		return StageResult{}, fmt.Errorf("hotbench: %s: %w", st.Name, runErr)
	}
	sr := StageResult{
		Name:        st.Name,
		Desc:        st.Desc,
		Unit:        st.Unit,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		WorkPerOp:   work,
	}
	if secs := res.T.Seconds(); secs > 0 {
		sr.WorkPerSec = float64(work) * float64(res.N) / secs
	}
	return sr, nil
}

// Measure benchmarks the given stages (every stage when nil) and returns
// them as one labelled run, reporting progress on w (one line per stage).
func Measure(label string, stages []Stage, w io.Writer) (Run, error) {
	if stages == nil {
		stages = Stages()
	}
	run := Run{Label: label, Go: runtime.Version()}
	for _, st := range stages {
		sr, err := MeasureStage(st)
		if err != nil {
			return Run{}, err
		}
		fmt.Fprintf(w, "  %-16s %12.1f ns/op  %8d allocs/op  %10.1f %s\n",
			st.Name, sr.NsPerOp, sr.AllocsPerOp, sr.WorkPerSec/1e6, sr.Unit)
		run.Stages = append(run.Stages, sr)
	}
	return run, nil
}

// LoadReport reads a bench-hotpath report, returning an empty one when the
// file does not exist. A file with a different schema is an error, not a
// silent overwrite.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Report{Schema: Schema}, nil
	}
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("hotbench: parsing %s: %w", path, err)
	}
	if r.Schema == schemaV1 {
		r.Schema = Schema // v1 runs are a subset of v2; upgrade in place
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("hotbench: %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// SetRun merges run into the report. A new label appends; an existing
// label is updated stage-wise — stages present in run replace their
// namesakes, stages absent from run (e.g. when `-bench-stages` measured a
// subset) are preserved — so re-measuring never discards history.
func (r *Report) SetRun(run Run) {
	for i := range r.Runs {
		if r.Runs[i].Label != run.Label {
			continue
		}
		old := &r.Runs[i]
		old.Go = run.Go
		for _, sr := range run.Stages {
			replaced := false
			for j := range old.Stages {
				if old.Stages[j].Name == sr.Name {
					old.Stages[j] = sr
					replaced = true
					break
				}
			}
			if !replaced {
				old.Stages = append(old.Stages, sr)
			}
		}
		return
	}
	r.Runs = append(r.Runs, run)
}

// Write renders the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
