package core

import (
	"testing"
)

// callLoopProgram: main drives work in a loop; work has a stable inner
// loop. The call edge into work dominates every edge inside work.
const callLoopProgram = `
proc work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + i * 3;
	}
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + work(n);
	}
	return s;
}
`

// markerFor returns the marker index whose edge enters a node of the given
// kind, or -1.
func markerFor(set *MarkerSet, kind NodeKind) int {
	for i, m := range set.Markers {
		if m.Key.To.Kind == kind {
			return i
		}
	}
	return -1
}

// assertRestriction checks the minimization contract on one input: the
// minimized firing sequence must be exactly the full sequence restricted
// to the kept markers (same instants, same markers, remapped indices).
func assertRestriction(t *testing.T, g *Graph, full, min *MarkerSet, args ...int64) ([]Firing, []Firing) {
	t.Helper()
	fullSeq, mf, err := DetectFirings(g.Prog, full, args...)
	if err != nil {
		t.Fatalf("detect full: %v", err)
	}
	minSeq, mm, err := DetectFirings(g.Prog, min, args...)
	if err != nil {
		t.Fatalf("detect min: %v", err)
	}
	if mf.Instructions() != mm.Instructions() {
		t.Fatalf("instruction counts differ: full=%d min=%d", mf.Instructions(), mm.Instructions())
	}
	fullBy := full.ByKey()
	remap := map[int]int{} // full marker index -> min marker index
	for i, m := range min.Markers {
		fi, ok := fullBy[m.Key]
		if !ok {
			t.Fatalf("minimized marker %s not in full set", m.Key)
		}
		if full.Markers[fi].GroupN != m.GroupN {
			t.Fatalf("marker %s GroupN changed: %d -> %d", m.Key, full.Markers[fi].GroupN, m.GroupN)
		}
		remap[fi] = i
	}
	var filtered []Firing
	for _, f := range fullSeq {
		if mi, ok := remap[f.Marker]; ok {
			filtered = append(filtered, Firing{Marker: mi, At: f.At})
		}
	}
	if len(filtered) != len(minSeq) {
		t.Fatalf("firing counts differ: restricted-full=%d min=%d", len(filtered), len(minSeq))
	}
	for i := range filtered {
		if filtered[i] != minSeq[i] {
			t.Fatalf("firing %d differs: restricted-full=%+v min=%+v", i, filtered[i], minSeq[i])
		}
	}
	return fullSeq, minSeq
}

// maxGap returns the longest uncut stretch given firings over a run of
// total instructions (cut instants deduplicated).
func maxGap(seq []Firing, total uint64) uint64 {
	var gap, prev uint64
	for _, f := range seq {
		if f.At == prev {
			continue
		}
		if d := f.At - prev; d > gap {
			gap = d
		}
		prev = f.At
	}
	if d := total - prev; d > gap {
		gap = d
	}
	return gap
}

func TestMinimizeDominancePrunes(t *testing.T) {
	g, set := selectOn(t, callLoopProgram, false, SelectOptions{ILower: 500}, 40, 200)
	if len(set.Markers) < 2 {
		t.Fatalf("want >=2 markers to make pruning interesting, got %d", len(set.Markers))
	}
	min, rep := MinimizeMarkers(g, set, MinimizeOptions{NoCover: true})
	if rep.Full != len(set.Markers) || rep.Kept != len(min.Markers) {
		t.Fatalf("report counts inconsistent: %+v vs %d/%d", rep, len(set.Markers), len(min.Markers))
	}
	if rep.Kept+rep.PrunedDominated+rep.PrunedCoFire+rep.PrunedCover != rep.Full {
		t.Fatalf("report does not partition the set: %+v", rep)
	}
	if len(min.Markers) >= len(set.Markers) {
		t.Fatalf("expected pruning on a dominated graph: full=%d min=%d", len(set.Markers), len(min.Markers))
	}
	if len(min.Markers) == 0 {
		t.Fatal("minimization emptied the set")
	}
	if rep.KeptCost > rep.FullCost {
		t.Fatalf("kept cost %d exceeds full cost %d", rep.KeptCost, rep.FullCost)
	}
	fullSeq, minSeq := assertRestriction(t, g, set, min, 40, 200)
	// Exact-pass-only pruning on the profiled input must respect the
	// stretch bound: one dominator gap plus one full-set interval.
	_, m, err := DetectFirings(g.Prog, set, 40, 200)
	if err != nil {
		t.Fatal(err)
	}
	total := m.Instructions()
	if got, bound := maxGap(minSeq, total), rep.EffUpper+maxGap(fullSeq, total); got > bound {
		t.Errorf("minimized max gap %d exceeds bound %d", got, bound)
	}
}

// chunkedProgram nests two call scales: each work() activation is made of
// many chunk() calls an order of magnitude smaller. The call edge into
// chunk is the only marker firing inside a work activation.
const chunkedProgram = `
proc chunk(m) {
	var s = 0;
	for (var i = 0; i < m; i = i + 1) {
		s = s + i * 3;
	}
	return s;
}
proc work(k, m) {
	var s = 0;
	for (var j = 0; j < k; j = j + 1) {
		s = s + chunk(m);
	}
	return s;
}
proc main(reps, k, m) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + work(k, m);
	}
	return s;
}
`

// markerIntoProc returns the index of the marker on a call edge into the
// named procedure's head node, or -1.
func markerIntoProc(g *Graph, set *MarkerSet, name string) int {
	for i, m := range set.Markers {
		if m.Key.To.Kind != ProcHead {
			continue
		}
		if n := g.NodeByKey(m.Key.To); n != nil && n.Proc != nil && n.Proc.Name == name {
			return i
		}
	}
	return -1
}

// TestMinimizeKeepsSoleRegionMarker is the regression guard against
// over-eager dominance pruning: the chunk call-edge marker is the only
// marker firing inside each work() activation, and its dominating
// call-edge marker does NOT satisfy the stretch bound (IUpper is set below
// the activation size). Pruning the chunk marker anyway — e.g. by skipping
// the dominator's bound check — leaves every activation's interior uncut
// and fails both assertions here.
func TestMinimizeKeepsSoleRegionMarker(t *testing.T) {
	args := []int64{20, 10, 100}
	g, set := selectOn(t, chunkedProgram, false, SelectOptions{ILower: 500}, args...)
	inner := markerIntoProc(g, set, "chunk")
	outer := markerIntoProc(g, set, "work")
	if inner < 0 || outer < 0 {
		t.Fatalf("want chunk and work call-edge markers, got %v", set.Markers)
	}
	// Restrict to exactly those two markers: the chunk marker is now the
	// only one firing inside a work activation, and the work marker is the
	// only thing dominating it.
	pair := &MarkerSet{Opts: set.Opts, CovBase: set.CovBase, CovSlack: set.CovSlack}
	pair.Markers = append(pair.Markers, set.Markers[inner], set.Markers[outer])
	outerMax := g.EdgeByKey(set.Markers[outer].Key).Max()
	innerMax := g.EdgeByKey(set.Markers[inner].Key).Max()
	// Bound chosen strictly between the chunk size and the whole-activation
	// size: the work call edge cannot vouch for the interior.
	iupper := uint64(outerMax) / 2
	if float64(iupper) <= innerMax*float64(set.Markers[inner].GroupN) {
		t.Fatalf("test geometry broken: iupper=%d innerMax=%.0f", iupper, innerMax)
	}
	min, rep := MinimizeMarkers(g, pair, MinimizeOptions{IUpper: iupper})
	kept := min.ByKey()
	if _, ok := kept[set.Markers[inner].Key]; !ok {
		t.Fatalf("sole region marker %s was pruned (report %+v)", set.Markers[inner].Key, rep)
	}
	// The kept set must still cut the interior of each activation within
	// the bound (plus one full-set interval of slack).
	fullSeq, minSeq := assertRestriction(t, g, pair, min, args...)
	_, m, err := DetectFirings(g.Prog, pair, args...)
	if err != nil {
		t.Fatal(err)
	}
	total := m.Instructions()
	if got, bound := maxGap(minSeq, total), iupper+maxGap(fullSeq, total); got > bound {
		t.Errorf("minimized max gap %d exceeds bound %d: region left uncut", got, bound)
	}
}

func TestMinimizeCoFirePrunesEntryEdges(t *testing.T) {
	g, set := selectOn(t, callLoopProgram, false, SelectOptions{ILower: 500}, 40, 200)
	// Build a two-marker set by hand: the call edge into work and work's
	// head→body edge always open at the same instruction, so the entry
	// marker is a pure duplicate.
	callEdge := markerFor(set, ProcHead)
	if callEdge < 0 {
		t.Fatalf("no call-edge marker in %v", set.Markers)
	}
	head := set.Markers[callEdge].Key.To
	body := g.NodeByKey(NodeKey{Kind: ProcBody, ID: head.ID})
	if body == nil || len(body.In) == 0 {
		t.Fatal("no head->body edge")
	}
	var hb *Edge
	for _, e := range body.In {
		if e.From.Key == head {
			hb = e
		}
	}
	if hb == nil {
		t.Fatal("no head->body edge from the marked head")
	}
	pair := &MarkerSet{Opts: set.Opts}
	pair.Markers = append(pair.Markers,
		set.Markers[callEdge],
		Marker{Key: hb.Key, GroupN: 1, AvgLen: hb.Avg(), CoV: hb.CoV(), Count: hb.Count()})
	min, rep := MinimizeMarkers(g, pair, MinimizeOptions{})
	if rep.PrunedCoFire+rep.PrunedDominated == 0 {
		t.Fatalf("expected the entry marker pruned, report %+v", rep)
	}
	if len(min.Markers) != 1 {
		t.Fatalf("want 1 kept marker, got %d", len(min.Markers))
	}
	// The cut instants must be identical: entry and head→body open
	// back-to-back at the same instruction count.
	fullSeq, _, err := DetectFirings(g.Prog, pair, 40, 200)
	if err != nil {
		t.Fatal(err)
	}
	minSeq, _, err := DetectFirings(g.Prog, min, 40, 200)
	if err != nil {
		t.Fatal(err)
	}
	instants := func(seq []Firing) []uint64 {
		var out []uint64
		for _, f := range seq {
			if len(out) == 0 || out[len(out)-1] != f.At {
				out = append(out, f.At)
			}
		}
		return out
	}
	fi, mi := instants(fullSeq), instants(minSeq)
	if len(fi) != len(mi) {
		t.Fatalf("cut instants differ: full=%d min=%d", len(fi), len(mi))
	}
	for i := range fi {
		if fi[i] != mi[i] {
			t.Fatalf("cut instant %d differs: %d vs %d", i, fi[i], mi[i])
		}
	}
}

func TestMinimizeEmptyAndUnmodifiedInput(t *testing.T) {
	g := mustProfile(t, mustCompile(t, callLoopProgram, false), 4, 50)
	empty := &MarkerSet{Opts: SelectOptions{ILower: 1000}}
	min, rep := MinimizeMarkers(g, empty, MinimizeOptions{})
	if len(min.Markers) != 0 || rep.Full != 0 || rep.Kept != 0 {
		t.Fatalf("empty set mishandled: %v %+v", min.Markers, rep)
	}
	if rep.EffUpper != 10*1000 {
		t.Fatalf("effUpper fallback: want ILower*covScale=10000, got %d", rep.EffUpper)
	}

	set := SelectMarkers(g, SelectOptions{ILower: 500})
	before := len(set.Markers)
	keys := make([]EdgeKey, before)
	for i, m := range set.Markers {
		keys[i] = m.Key
	}
	MinimizeMarkers(g, set, MinimizeOptions{})
	if len(set.Markers) != before {
		t.Fatalf("input set modified: %d -> %d markers", before, len(set.Markers))
	}
	for i, m := range set.Markers {
		if m.Key != keys[i] {
			t.Fatalf("input marker %d changed", i)
		}
	}
}

func TestSelectMinimizeKnob(t *testing.T) {
	g := mustProfile(t, mustCompile(t, callLoopProgram, false), 40, 200)
	full := SelectMarkers(g, SelectOptions{ILower: 500})
	min := SelectMarkers(g, SelectOptions{ILower: 500, Minimize: true})
	if len(min.Markers) >= len(full.Markers) {
		t.Fatalf("Minimize knob did not shrink the set: %d vs %d", len(min.Markers), len(full.Markers))
	}
	fullBy := full.ByKey()
	for _, m := range min.Markers {
		fi, ok := fullBy[m.Key]
		if !ok {
			t.Fatalf("minimized marker %s not in full selection", m.Key)
		}
		if full.Markers[fi] != m {
			t.Fatalf("marker %s changed by minimization", m.Key)
		}
	}
	if min.CovBase != full.CovBase || min.CovSlack != full.CovSlack {
		t.Fatal("minimization must preserve selection thresholds")
	}
}

func TestDominatorsAugmentedGraph(t *testing.T) {
	g := mustProfile(t, mustCompile(t, callLoopProgram, false), 4, 50)
	dom := newDominators(g)
	// Find the call edge into work and an edge inside work: the former
	// must strictly dominate the latter.
	var call, innerBody *Edge
	for _, e := range g.Edges {
		if e.To.Key.Kind == ProcHead && e.To.Proc != nil && e.To.Proc.Name == "work" {
			call = e
		}
		if e.From.Key.Kind == LoopHead && e.To.Key.Kind == LoopBody &&
			e.From.Loop != nil && e.From.Loop.Proc.Name == "work" {
			innerBody = e
		}
	}
	if call == nil || innerBody == nil {
		t.Fatalf("graph missing expected edges:\n%s", g.Dump())
	}
	cv, bv := dom.edgeVertex(call.Key), dom.edgeVertex(innerBody.Key)
	if cv < 0 || bv < 0 {
		t.Fatal("edges not in dominator structure")
	}
	found := false
	for _, v := range dom.ancestors(bv) {
		if v == cv {
			found = true
		}
	}
	if !found {
		t.Errorf("call edge %s does not dominate inner edge %s", call.Key, innerBody.Key)
	}
	// Dominance is strict and acyclic: the inner edge must not appear
	// among the call edge's ancestors.
	for _, v := range dom.ancestors(cv) {
		if v == bv {
			t.Error("dominator relation is cyclic")
		}
	}
	if dom.depth[bv] <= dom.depth[cv] {
		t.Errorf("depths inconsistent: inner=%d call=%d", dom.depth[bv], dom.depth[cv])
	}
}
