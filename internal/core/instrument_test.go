package core

import (
	"testing"

	"phasemark/internal/minivm"
)

// The crucial property: running the physically instrumented binary yields
// the same boundary sequence as the walker-based detector on the original
// binary — markers really are instructions in the binary.
func TestInstrumentedBinaryMatchesDetector(t *testing.T) {
	for _, opt := range []bool{false, true} {
		prog := mustCompile(t, phasedProgram, opt)
		g := mustProfile(t, prog, 10, 400)
		set := SelectMarkers(g, SelectOptions{ILower: 1000})
		if len(set.Markers) == 0 {
			t.Fatal("no markers")
		}

		// Reference: walker-based detection on the original binary.
		var want []int
		det := NewDetector(prog, nil, set, func(marker int, at uint64) {
			want = append(want, marker)
		})
		m := minivm.NewMachine(prog, det)
		if _, err := m.Run(25, 400); err != nil {
			t.Fatal(err)
		}

		// Physically instrumented binary, raw mark stream through GroupN.
		inst, err := Instrument(prog, set)
		if err != nil {
			t.Fatalf("opt=%v: %v", opt, err)
		}
		var got []int
		h := NewMarkHandler(set, func(marker int) { got = append(got, marker) })
		m2 := minivm.NewMachine(inst, nil)
		m2.MarkFunc = h.Fn
		rv2, err := m2.Run(25, 400)
		if err != nil {
			t.Fatal(err)
		}

		// Same program behavior (marks are side-effect-free).
		rv1, _ := minivm.NewMachine(prog, nil).Run(25, 400)
		if rv1 != rv2 {
			t.Fatalf("opt=%v: instrumentation changed behavior: %d vs %d", opt, rv1, rv2)
		}
		if len(want) == 0 {
			t.Fatalf("opt=%v: detector never fired", opt)
		}
		if len(got) != len(want) {
			t.Fatalf("opt=%v: %d instrumented fires vs %d detector fires\nwant %v\ngot  %v",
				opt, len(got), len(want), want, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opt=%v: firing %d differs: %d vs %d", opt, i, got[i], want[i])
			}
		}
	}
}

func TestInstrumentDoesNotMutateOriginal(t *testing.T) {
	prog := mustCompile(t, phasedProgram, false)
	g := mustProfile(t, prog, 10, 400)
	set := SelectMarkers(g, SelectOptions{ILower: 1000})
	before := minivm.Print(prog)
	if _, err := Instrument(prog, set); err != nil {
		t.Fatal(err)
	}
	if minivm.Print(prog) != before {
		t.Fatal("Instrument mutated the input program")
	}
}

func TestInstrumentGroupN(t *testing.T) {
	// A flat loop whose only marker is a grouped iteration marker: the
	// handler must fire once per GroupN iterations.
	src := `
proc main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	out(s);
	return s;
}
`
	prog := mustCompile(t, src, false)
	g := mustProfile(t, prog, 20000)
	set := SelectMarkers(g, SelectOptions{ILower: 600, MaxLimit: 6000})
	var grouped *Marker
	for i := range set.Markers {
		if set.Markers[i].GroupN > 1 {
			grouped = &set.Markers[i]
		}
	}
	if grouped == nil {
		t.Fatal("no grouped marker")
	}
	inst, err := Instrument(prog, set)
	if err != nil {
		t.Fatal(err)
	}
	h := NewMarkHandler(set, nil)
	m := minivm.NewMachine(inst, nil)
	m.MarkFunc = h.Fn
	if _, err := m.Run(20000); err != nil {
		t.Fatal(err)
	}
	// ~20000 iterations / GroupN firings, +-1 for the partial group.
	wantLo := uint64(20000/grouped.GroupN) - 1
	wantHi := uint64(20000/grouped.GroupN) + 1
	if h.Fired() < wantLo || h.Fired() > wantHi {
		t.Fatalf("fired %d, want ~%d (GroupN=%d)", h.Fired(), 20000/grouped.GroupN, grouped.GroupN)
	}
}
