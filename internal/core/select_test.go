package core

import (
	"testing"

	"phasemark/internal/minivm"
)

// phasedProgram alternates between two work procedures, each dominated by
// a stable inner loop — the canonical two-phase program (gzip-like).
const phasedProgram = `
array buf[1024];
proc compress(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		buf[i % 1024] = buf[i % 1024] + i;
		s = s + buf[i % 1024];
	}
	return s;
}
proc expand(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + buf[(i * 7) % 1024] * 3;
	}
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + compress(n);
		s = s + expand(n);
	}
	return s;
}
`

func selectOn(t *testing.T, src string, opt bool, opts SelectOptions, args ...int64) (*Graph, *MarkerSet) {
	t.Helper()
	prog := mustCompile(t, src, opt)
	g := mustProfile(t, prog, args...)
	return g, SelectMarkers(g, opts)
}

func TestSelectMarkersFindsPhaseProcedures(t *testing.T) {
	// Each compress/expand call runs ~10*n instructions; ilower below that
	// should mark the two call edges (stable, repeated 20 times each).
	_, set := selectOn(t, phasedProgram, false, SelectOptions{ILower: 2000}, 20, 1000)
	if len(set.Markers) == 0 {
		t.Fatal("no markers selected")
	}
	// Every marker must satisfy the size constraint.
	for _, m := range set.Markers {
		if m.AvgLen < 2000 {
			t.Errorf("marker %s has avg length %.0f < ilower", m.Key, m.AvgLen)
		}
	}
	// The compress and expand call edges should be among the markers
	// (their hierarchical counts are perfectly stable).
	kinds := map[NodeKind]int{}
	for _, m := range set.Markers {
		kinds[m.Key.To.Kind]++
	}
	if kinds[ProcHead] == 0 {
		t.Errorf("expected procedure-entry markers, got %v", kinds)
	}
}

func TestSelectMarkersRespectsCountAndStability(t *testing.T) {
	// A program whose inner work varies wildly per call (data-dependent):
	// the unstable edge must not be marked while a stable sibling is.
	src := `
proc stable(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
proc unstable(n, r) {
	var lim = (r * r * 2971 + 7) % n + 1;
	var s = 0;
	for (var i = 0; i < lim; i = i + 1) { s = s + i * i; }
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) {
		s = s + stable(n) + unstable(n, r);
	}
	return s;
}
`
	g, set := selectOn(t, src, false, SelectOptions{ILower: 500}, 30, 500)
	byKey := set.ByKey()
	var stableMarked, unstableMarked bool
	for _, e := range g.Edges {
		if e.To.Key.Kind != ProcHead || e.To.Proc == nil {
			continue
		}
		_, marked := byKey[e.Key]
		switch e.To.Proc.Name {
		case "stable":
			stableMarked = stableMarked || marked
		case "unstable":
			unstableMarked = unstableMarked || marked
		}
	}
	if !stableMarked {
		t.Error("stable call edge not marked")
	}
	if unstableMarked {
		t.Error("unstable call edge marked despite high CoV")
	}
}

func TestProcsOnlyMode(t *testing.T) {
	_, set := selectOn(t, phasedProgram, false, SelectOptions{ILower: 2000, ProcsOnly: true}, 20, 1000)
	for _, m := range set.Markers {
		if k := m.Key.To.Kind; k != ProcHead && k != ProcBody {
			t.Errorf("procs-only selected a %v marker: %s", k, m.Key)
		}
	}
}

func TestMaxLimitForcesSmallerMarkers(t *testing.T) {
	// One giant call dominating execution: without a limit the outer call
	// edge is markable; with a small max-limit, markers are pushed down
	// into the loop below it.
	_, noLimit := selectOn(t, phasedProgram, false, SelectOptions{ILower: 2000}, 20, 1000)
	_, limited := selectOn(t, phasedProgram, false, SelectOptions{ILower: 2000, MaxLimit: 5000}, 20, 1000)
	maxAvg := func(s *MarkerSet) float64 {
		var mx float64
		for _, m := range s.Markers {
			if m.AvgLen > mx {
				mx = m.AvgLen
			}
		}
		return mx
	}
	if maxAvg(limited) > 5000*1.5 {
		t.Errorf("limited markers still too large: %.0f", maxAvg(limited))
	}
	if maxAvg(noLimit) < maxAvg(limited) {
		t.Errorf("no-limit should allow larger intervals (%.0f vs %.0f)",
			maxAvg(noLimit), maxAvg(limited))
	}
}

func TestMergeLoopIterations(t *testing.T) {
	// A long flat loop with tiny stable iterations: only mergeable via
	// GroupN. avg iteration ~6 instr, ilower 600 => GroupN ~100+.
	src := `
proc main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
`
	_, set := selectOn(t, src, false, SelectOptions{ILower: 600, MaxLimit: 6000}, 20000)
	var grouped *Marker
	for i := range set.Markers {
		if set.Markers[i].GroupN > 1 {
			grouped = &set.Markers[i]
		}
	}
	if grouped == nil {
		t.Fatalf("no grouped marker selected: %+v", set.Markers)
	}
	if grouped.AvgLen < 600 || grouped.AvgLen > 6000 {
		t.Errorf("grouped marker avg length %.0f outside [600, 6000]", grouped.AvgLen)
	}
}

func TestDetectorFiresAcrossInputs(t *testing.T) {
	// Select markers on the "train" input, detect on the "ref" input: the
	// firing counts must scale with the phase repetitions, demonstrating
	// cross-input reuse (the whole point of software markers).
	prog := mustCompile(t, phasedProgram, false)
	gTrain := mustProfile(t, prog, 10, 400)
	set := SelectMarkers(gTrain, SelectOptions{ILower: 1000})
	if len(set.Markers) == 0 {
		t.Fatal("no markers on train input")
	}

	var boundaries []uint64
	det := NewDetector(prog, nil, set, func(marker int, at uint64) {
		boundaries = append(boundaries, at)
	})
	m := minivm.NewMachine(prog, det)
	if _, err := m.Run(40, 400); err != nil {
		t.Fatal(err)
	}
	if det.TotalFired() == 0 {
		t.Fatal("markers never fired on ref input")
	}
	// Boundaries must be sorted and within the run.
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] < boundaries[i-1] {
			t.Fatalf("boundaries not monotone at %d", i)
		}
	}
	if boundaries[len(boundaries)-1] > m.Instructions() {
		t.Fatal("boundary beyond end of execution")
	}
	// 4x the repetitions should fire roughly 4x the markers.
	var trainFired uint64
	detTrain := NewDetector(prog, nil, set, nil)
	mt := minivm.NewMachine(prog, detTrain)
	if _, err := mt.Run(10, 400); err != nil {
		t.Fatal(err)
	}
	trainFired = detTrain.TotalFired()
	ratio := float64(det.TotalFired()) / float64(trainFired)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("firing ratio %f, want ~4 (cross-input scaling)", ratio)
	}
}

func TestSelectionDeterministic(t *testing.T) {
	_, a := selectOn(t, phasedProgram, true, SelectOptions{ILower: 1500}, 15, 700)
	_, b := selectOn(t, phasedProgram, true, SelectOptions{ILower: 1500}, 15, 700)
	if len(a.Markers) != len(b.Markers) {
		t.Fatalf("marker counts differ: %d vs %d", len(a.Markers), len(b.Markers))
	}
	for i := range a.Markers {
		if a.Markers[i].Key != b.Markers[i].Key || a.Markers[i].GroupN != b.Markers[i].GroupN {
			t.Fatalf("marker %d differs", i)
		}
	}
}
