package core

import "phasemark/internal/minivm"

// BoundaryFunc is called when a phase marker fires: marker is the index in
// the MarkerSet, at is the dynamic instruction count at the firing point
// (the beginning of the new interval).
type BoundaryFunc func(marker int, at uint64)

// Detector watches an execution for phase-marker firings. It embeds a
// Walker, so wire it to the machine as the Observer. Detection is purely
// structural: it needs no hardware support and no per-interval metrics —
// this is the paper's "insert instrumentation at the markers" runtime,
// applied to the same or a different input than the one profiled.
type Detector struct {
	*Walker
	set    *MarkerSet
	byKey  map[EdgeKey]int
	seen   []uint64
	fired  []uint64
	onFire BoundaryFunc
}

type detectSink struct{ d *Detector }

func (s detectSink) EdgeOpen(k EdgeKey, at uint64) {
	d := s.d
	i, ok := d.byKey[k]
	if !ok {
		return
	}
	d.seen[i]++
	if (d.seen[i]-1)%d.set.Markers[i].GroupN == 0 {
		d.fired[i]++
		if d.onFire != nil {
			d.onFire(i, at)
		}
	}
}

func (s detectSink) EdgeClose(EdgeKey, uint64) {}

// NewDetector builds a detector for set over prog. The loop table may be
// shared with other components; pass nil to compute it here.
func NewDetector(prog *minivm.Program, loops *minivm.Loops, set *MarkerSet, onFire BoundaryFunc) *Detector {
	if loops == nil {
		loops = minivm.FindLoops(prog)
	}
	d := &Detector{
		set:    set,
		byKey:  set.ByKey(),
		seen:   make([]uint64, len(set.Markers)),
		fired:  make([]uint64, len(set.Markers)),
		onFire: onFire,
	}
	d.Walker = NewWalker(prog, loops, detectSink{d: d})
	return d
}

// Fired reports how many times marker i fired.
func (d *Detector) Fired(i int) uint64 { return d.fired[i] }

// TotalFired reports the total number of marker firings (phase-change
// signals) observed.
func (d *Detector) TotalFired() uint64 {
	var n uint64
	for _, f := range d.fired {
		n += f
	}
	return n
}
