package core

import (
	"fmt"

	"phasemark/internal/minivm"
)

// BoundaryFunc is called when a phase marker fires: marker is the index in
// the MarkerSet, at is the dynamic instruction count at the firing point
// (the beginning of the new interval).
type BoundaryFunc func(marker int, at uint64)

// Detector watches an execution for phase-marker firings. It embeds a
// Walker, so wire it to the machine as the Observer. Detection is purely
// structural: it needs no hardware support and no per-interval metrics —
// this is the paper's "insert instrumentation at the markers" runtime,
// applied to the same or a different input than the one profiled.
type Detector struct {
	*Walker
	set    *MarkerSet
	bySite [][]siteMarker
	seen   []uint64
	fired  []uint64
	onFire BoundaryFunc
}

// siteMarker is one marker anchored at a site block, for the dense
// site-indexed lookup detectSink uses on the hot path.
type siteMarker struct {
	key EdgeKey
	idx int
}

type detectSink struct{ d *Detector }

func (s detectSink) EdgeOpen(k EdgeKey, at uint64) {
	d := s.d
	// Almost every edge open is not a marker: reject those with a single
	// indexed load on the site block ID instead of hashing the full key.
	if uint(k.Site) >= uint(len(d.bySite)) {
		return
	}
	for _, sm := range d.bySite[k.Site] {
		if sm.key == k {
			i := sm.idx
			d.seen[i]++
			if (d.seen[i]-1)%d.set.Markers[i].GroupN == 0 {
				d.fired[i]++
				if d.onFire != nil {
					d.onFire(i, at)
				}
			}
			return
		}
	}
}

func (s detectSink) EdgeClose(EdgeKey, uint64) {}

// edgeOpenOnly tells the walker detection never reads edge closes.
func (s detectSink) edgeOpenOnly() {}

// NewDetector builds a detector for set over prog. The loop table may be
// shared with other components; pass nil to compute it here.
func NewDetector(prog *minivm.Program, loops *minivm.Loops, set *MarkerSet, onFire BoundaryFunc) *Detector {
	if loops == nil {
		loops = minivm.FindLoops(prog)
	}
	d := &Detector{
		set:    set,
		bySite: make([][]siteMarker, prog.NumBlocks),
		seen:   make([]uint64, len(set.Markers)),
		fired:  make([]uint64, len(set.Markers)),
		onFire: onFire,
	}
	for i, mk := range set.Markers {
		if s := mk.Key.Site; s >= 0 && s < len(d.bySite) {
			d.bySite[s] = append(d.bySite[s], siteMarker{key: mk.Key, idx: i})
		}
	}
	d.Walker = NewWalker(prog, loops, detectSink{d: d})
	return d
}

// Fired reports how many times marker i fired.
func (d *Detector) Fired(i int) uint64 { return d.fired[i] }

// Restart prepares the detector for another independent execution of the
// same program: per-marker occurrence counts reset (so GroupN grouping
// starts cold, exactly as in a fresh Detector) while the fired totals
// keep accumulating across repetitions. It shadows the embedded
// Walker.Restart, which re-opens the virtual root edges — entry-anchored
// markers therefore fire again at the restart point, just as they do
// when a new run begins. The same balanced-stack precondition applies.
func (d *Detector) Restart() error {
	clear(d.seen)
	return d.Walker.Restart()
}

// Firing is one recorded marker firing: the marker's index in its set and
// the dynamic instruction count at the firing point.
type Firing struct {
	Marker int
	At     uint64
}

// DetectFirings runs prog under a walker-based detector for set and
// returns every firing in execution order plus the finished machine (for
// output and instruction-count inspection). It is the analysis-side
// reference the correctness harness compares instrumented binaries
// against.
func DetectFirings(prog *minivm.Program, set *MarkerSet, args ...int64) ([]Firing, *minivm.Machine, error) {
	var seq []Firing
	det := NewDetector(prog, nil, set, func(marker int, at uint64) {
		seq = append(seq, Firing{Marker: marker, At: at})
	})
	m := minivm.NewMachine(prog, det)
	if _, err := m.Run(args...); err != nil {
		return nil, nil, fmt.Errorf("core: detect firings: %w", err)
	}
	return seq, m, nil
}

// InstrumentedFirings physically instruments prog with set (Instrument),
// runs the rewritten binary, and returns the mark-stream firings with
// GroupN applied, plus the finished machine. Firing.At counts the
// instrumented binary's instructions, which include the inserted marks
// and trampolines — compare marker sequences across binaries, not
// positions.
func InstrumentedFirings(prog *minivm.Program, set *MarkerSet, args ...int64) ([]Firing, *minivm.Machine, error) {
	inst, err := Instrument(prog, set)
	if err != nil {
		return nil, nil, err
	}
	var seq []Firing
	m := minivm.NewMachine(inst, nil)
	h := NewMarkHandler(set, func(marker int) {
		seq = append(seq, Firing{Marker: marker, At: m.Instructions()})
	})
	m.MarkFunc = h.Fn
	if _, err := m.Run(args...); err != nil {
		return nil, nil, fmt.Errorf("core: instrumented firings: %w", err)
	}
	return seq, m, nil
}

// TotalFired reports the total number of marker firings (phase-change
// signals) observed.
func (d *Detector) TotalFired() uint64 {
	var n uint64
	for _, f := range d.fired {
		n += f
	}
	return n
}
