package core

import (
	"fmt"

	"phasemark/internal/minivm"
)

// EdgeSink receives call-loop edge traversal events from a Walker. The
// profiler implements it to accumulate edge statistics; the marker
// detector implements it to fire phase boundaries.
type EdgeSink interface {
	// EdgeOpen fires when a traversal of edge k begins, with the dynamic
	// instruction count at that point. A software phase marker placed on k
	// signals the beginning of an interval here.
	EdgeOpen(k EdgeKey, at uint64)
	// EdgeClose fires when the traversal ends; hier is the hierarchical
	// dynamic instruction count spent on the traversal.
	EdgeClose(k EdgeKey, hier uint64)
}

// edgeOpenOnly marks EdgeSinks whose EdgeClose is a no-op (the detector:
// markers fire on edge opens). The walker then skips the close call on
// every pop, which otherwise costs an interface dispatch plus an EdgeKey
// copy per edge traversal.
type edgeOpenOnly interface{ edgeOpenOnly() }

type walkEntry struct {
	key   EdgeKey
	node  NodeKey // the context node this entry establishes
	start uint64
	full  bool         // proc-body entry with a head entry beneath it
	pend  *minivm.Loop // loop-head entry awaiting its first iteration block
}

// Walker reconstructs call-loop edge traversals from an execution. It is
// the runtime core shared by profiling (graph building) and marker
// detection: it mirrors the machine's call stack and active-loop nesting,
// opening and closing edges of the (virtual) call-loop graph and measuring
// hierarchical instruction counts.
//
// Wire it to a Machine as the Observer (fan in with MultiObserver to
// combine with others).
type Walker struct {
	prog     *minivm.Program
	loops    *minivm.Loops
	sink     EdgeSink
	tracker  *minivm.LoopTracker
	instrs   uint64
	stack    []walkEntry
	act      []int // activation count per proc ID (recursion detection)
	openOnly bool  // sink ignores EdgeClose (see edgeOpenOnly)
}

// NewWalker builds a walker over prog (with the given loop table, which
// must come from the same program) reporting to sink.
func NewWalker(prog *minivm.Program, loops *minivm.Loops, sink EdgeSink) *Walker {
	w := &Walker{prog: prog, loops: loops, sink: sink, act: make([]int, len(prog.Procs))}
	_, w.openOnly = sink.(edgeOpenOnly)
	w.tracker = minivm.NewLoopTracker(loops, w)
	entry := prog.EntryProc()
	// The virtual root calls the entry procedure.
	root := NodeKey{Kind: RootKind}
	w.openProc(root, entry, entry.Blocks[0].ID)
	return w
}

// Instructions reports the dynamic instructions observed so far.
func (w *Walker) Instructions() uint64 { return w.instrs }

// ObservedEvents implements minivm.EventMasker: the walker mirrors control
// flow (blocks, calls, returns) and never reads branch outcomes or memory
// references. Embedders (Profiler, Detector) inherit the mask.
func (w *Walker) ObservedEvents() minivm.EventMask {
	return minivm.EvBlock | minivm.EvCall | minivm.EvReturn
}

func (w *Walker) top() NodeKey {
	if len(w.stack) == 0 {
		return NodeKey{Kind: RootKind}
	}
	return w.stack[len(w.stack)-1].node
}

func (w *Walker) push(key EdgeKey, node NodeKey, full bool) {
	w.sink.EdgeOpen(key, w.instrs)
	w.stack = append(w.stack, walkEntry{key: key, node: node, start: w.instrs, full: full})
}

func (w *Walker) pop() {
	n := len(w.stack) - 1
	if !w.openOnly {
		w.sink.EdgeClose(w.stack[n].key, w.instrs-w.stack[n].start)
	}
	w.stack = w.stack[:n]
}

func (w *Walker) openProc(ctx NodeKey, callee *minivm.Proc, site int) {
	head := NodeKey{Kind: ProcHead, ID: callee.ID}
	body := NodeKey{Kind: ProcBody, ID: callee.ID}
	w.push(EdgeKey{From: ctx, To: head, Site: site}, head, false)
	w.push(EdgeKey{From: head, To: body, Site: callee.Blocks[0].ID}, body, true)
	w.act[callee.ID]++
}

// resolvePending opens the loop-body edge for a loop head waiting for its
// first iteration block. An iteration begins when control moves from the
// head (where the loop condition is evaluated) into the loop proper, so
// the final head pass that exits the loop is not counted as an iteration.
func (w *Walker) resolvePending() {
	top := &w.stack[len(w.stack)-1]
	l := top.pend
	top.pend = nil
	head := NodeKey{Kind: LoopHead, ID: l.Head.ID}
	body := NodeKey{Kind: LoopBody, ID: l.Head.ID}
	w.push(EdgeKey{From: head, To: body, Site: l.Head.ID}, body, false)
}

// OnBlock implements minivm.Observer.
func (w *Walker) OnBlock(b *minivm.Block) {
	// Loop transitions are processed against the pre-block instruction
	// count so loop spans align exactly with head-block executions.
	if n := len(w.stack); n > 0 {
		if l := w.stack[n-1].pend; l != nil &&
			b.Proc == l.Proc && l.Contains(b.Index) && b != l.Head {
			w.resolvePending()
		}
	}
	w.tracker.OnBlock(b)
	w.instrs += uint64(b.Weight())
}

// OnCall implements minivm.Observer.
func (w *Walker) OnCall(site *minivm.Block, callee *minivm.Proc) {
	// A call from a loop-head block (the condition itself calls) starts
	// the iteration.
	if n := len(w.stack); n > 0 && w.stack[n-1].pend != nil {
		w.resolvePending()
	}
	w.tracker.OnCall(site, callee)
	ctx := w.top()
	if w.act[callee.ID] > 0 {
		// Recursive activation: traverse directly to the body node so the
		// head's incoming edge measures the entire outermost episode (§4.2).
		body := NodeKey{Kind: ProcBody, ID: callee.ID}
		w.push(EdgeKey{From: ctx, To: body, Site: site.ID}, body, false)
		w.act[callee.ID]++
		return
	}
	w.openProc(ctx, callee, site.ID)
}

// OnReturn implements minivm.Observer.
func (w *Walker) OnReturn(callee *minivm.Proc) {
	// First let the tracker fire exits for loops still active in the
	// returning frame; those entries sit above the proc entries.
	w.tracker.OnReturn(callee)
	if len(w.stack) == 0 {
		return
	}
	full := w.stack[len(w.stack)-1].full
	w.pop() // body edge (or recursive-activation edge)
	if full {
		w.pop() // head edge
	}
	w.act[callee.ID]--
}

// OnBranch implements minivm.Observer.
func (w *Walker) OnBranch(*minivm.Block, bool) {}

// OnMem implements minivm.Observer.
func (w *Walker) OnMem(uint64, bool) {}

// OnLoopEnter implements minivm.LoopEvents.
func (w *Walker) OnLoopEnter(l *minivm.Loop) {
	ctx := w.top()
	head := NodeKey{Kind: LoopHead, ID: l.Head.ID}
	w.push(EdgeKey{From: ctx, To: head, Site: l.Head.ID}, head, false)
	w.stack[len(w.stack)-1].pend = l // body opens at the first iteration block
}

// OnLoopIterate implements minivm.LoopEvents.
func (w *Walker) OnLoopIterate(l *minivm.Loop) {
	top := &w.stack[len(w.stack)-1]
	if top.pend != nil {
		// Degenerate loop whose head is its own latch (empty body after
		// optimization): no body edge ever opens.
		return
	}
	// Close the finished iteration's body edge; the next iteration's body
	// edge opens at its first post-head block.
	w.pop()
	w.stack[len(w.stack)-1].pend = l
}

// OnLoopExit implements minivm.LoopEvents.
func (w *Walker) OnLoopExit(l *minivm.Loop) {
	top := &w.stack[len(w.stack)-1]
	if top.pend != nil {
		top.pend = nil // exiting head pass was not an iteration
	} else {
		w.pop() // body
	}
	w.pop() // head
}

// Restart re-arms the walker for another execution of the same program,
// re-opening the virtual root → entry-procedure edges at the current
// instruction count. The previous run must have ended balanced (the
// machine halted or returned from the entry procedure, leaving no open
// traversals); the instruction counter is NOT reset, so a restarted walk
// observes one long amplified execution. This is what trace.Run's Scale
// amplifier uses between machine resets.
func (w *Walker) Restart() error {
	if n := len(w.stack); n != 0 {
		return fmt.Errorf("core: restart with %d traversals still open", n)
	}
	for id, a := range w.act {
		if a != 0 {
			return fmt.Errorf("core: restart with unbalanced activations for proc %d: %d", id, a)
		}
	}
	entry := w.prog.EntryProc()
	w.openProc(NodeKey{Kind: RootKind}, entry, entry.Blocks[0].ID)
	return nil
}

// Finish closes any traversals still open (none after a balanced run; a
// truncated run closes what remains) and verifies internal consistency.
func (w *Walker) Finish() error {
	for len(w.stack) > 0 {
		w.pop()
	}
	for id, a := range w.act {
		if a != 0 {
			return fmt.Errorf("core: unbalanced activations for proc %d: %d", id, a)
		}
	}
	return nil
}
