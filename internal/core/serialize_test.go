package core

import (
	"encoding/json"
	"testing"

	"phasemark/internal/minivm"
)

// Marker sets are plain data so they can be saved next to a binary and
// applied in later runs (the CLI's -json mode); verify the JSON round trip
// preserves everything detection depends on.
func TestMarkerSetJSONRoundTrip(t *testing.T) {
	prog := mustCompile(t, phasedProgram, false)
	g := mustProfile(t, prog, 10, 400)
	set := SelectMarkers(g, SelectOptions{ILower: 1000, MaxLimit: 50_000})
	if len(set.Markers) == 0 {
		t.Fatal("no markers")
	}
	blob, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	var back MarkerSet
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Markers) != len(set.Markers) {
		t.Fatalf("marker count %d != %d", len(back.Markers), len(set.Markers))
	}
	for i := range set.Markers {
		a, b := set.Markers[i], back.Markers[i]
		if a.Key != b.Key || a.GroupN != b.GroupN {
			t.Fatalf("marker %d changed: %+v vs %+v", i, a, b)
		}
	}
	if back.Opts != set.Opts {
		t.Fatalf("options changed: %+v vs %+v", back.Opts, set.Opts)
	}
	// The deserialized set must drive a detector identically.
	fire := func(s *MarkerSet) uint64 {
		det := NewDetector(prog, nil, s, nil)
		m := minivm.NewMachine(prog, det)
		if _, err := m.Run(10, 400); err != nil {
			t.Fatal(err)
		}
		return det.TotalFired()
	}
	if fire(set) != fire(&back) {
		t.Fatal("round-tripped set fires differently")
	}
}
