package core

import (
	"testing"

	"phasemark/internal/minivm"
)

func TestPredictorPeriodicSequence(t *testing.T) {
	// A strictly periodic phase sequence is perfectly predictable after
	// one period with order 1.
	var trace []int
	for i := 0; i < 50; i++ {
		trace = append(trace, 0, 1, 2)
	}
	acc := EvaluatePrediction(trace, 1)
	if acc < 0.95 {
		t.Fatalf("periodic accuracy = %v", acc)
	}
}

func TestPredictorOrderTwoDisambiguates(t *testing.T) {
	// Sequence ABAC ABAC...: after A comes B or C depending on context;
	// order 1 can do at best ~50% on A-successors, order 2 nails it.
	var trace []int
	for i := 0; i < 60; i++ {
		trace = append(trace, 0, 1, 0, 2)
	}
	acc1 := EvaluatePrediction(trace, 1)
	acc2 := EvaluatePrediction(trace, 2)
	if acc2 < 0.95 {
		t.Fatalf("order-2 accuracy = %v", acc2)
	}
	if acc2 <= acc1 {
		t.Fatalf("order-2 (%v) should beat order-1 (%v) on ABAC", acc2, acc1)
	}
}

func TestPredictorColdStart(t *testing.T) {
	p := NewPredictor(1)
	if p.Predict() != -1 {
		t.Fatal("prediction before history")
	}
	p.Observe(5)
	if p.Predictions() != 0 {
		t.Fatal("first observation must not be scored")
	}
	if p.Predict() != 5 {
		t.Fatal("fallback must predict last marker")
	}
}

func TestPredictionOnRealMarkerTrace(t *testing.T) {
	// Markers on a phased program yield a near-periodic firing sequence;
	// the predictor should know the next phase most of the time.
	prog := mustCompile(t, phasedProgram, false)
	g := mustProfile(t, prog, 10, 400)
	set := SelectMarkers(g, SelectOptions{ILower: 1000})
	var trace []int
	det := NewDetector(prog, nil, set, func(marker int, at uint64) {
		trace = append(trace, marker)
	})
	m := minivm.NewMachine(prog, det)
	if _, err := m.Run(30, 400); err != nil {
		t.Fatal(err)
	}
	if len(trace) < 20 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	if acc := EvaluatePrediction(trace, 2); acc < 0.8 {
		t.Fatalf("real-trace prediction accuracy = %v", acc)
	}
}
