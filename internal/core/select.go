package core

import (
	"fmt"
	"math"
	"sort"

	"phasemark/internal/obs"
)

// Selection metrics: how much of the edge population each pass keeps.
// "examined" counts every candidate-eligible edge pass 1 looked at,
// "pruned" the ones its ILower test rejected; "selected"/"forced"/"merged"
// classify the final marker set.
var (
	obsSelectRuns       = obs.NewCounter("core.select.runs")
	obsSelectExamined   = obs.NewCounter("core.select.edges_examined")
	obsSelectPruned     = obs.NewCounter("core.select.edges_pruned")
	obsSelectCandidates = obs.NewCounter("core.select.candidates")
	obsSelectSelected   = obs.NewCounter("core.select.selected")
	obsSelectForced     = obs.NewCounter("core.select.forced")
	obsSelectMerged     = obs.NewCounter("core.select.merged")
)

// SelectOptions configures the marker selection algorithm.
type SelectOptions struct {
	// ILower is the minimum allowed average interval size in instructions
	// (the algorithm's one mandatory input, §5.1).
	ILower uint64
	// MaxLimit, when nonzero, enables the SimPoint variant (§5.2): edges
	// whose maximum hierarchical count exceeds it are never marked, a
	// too-large edge forces markers onto its target's outgoing edges, and
	// consecutive loop iterations are merged to land within
	// [ILower, MaxLimit].
	MaxLimit uint64
	// ProcsOnly restricts candidate edges to those entering procedure head
	// or body nodes (the Huang et al.-style comparison in §5.4).
	ProcsOnly bool
	// CovScale sets where the per-edge CoV threshold saturates at
	// avg+stddev: at edge average = CovScale×ILower. Zero means 10.
	CovScale float64
	// MinCount is the minimum traversal count for an edge to be considered
	// a repeating behavior (a CoV needs at least two samples). Zero means 2.
	MinCount uint64
	// Minimize runs the placement-optimization pass (MinimizeMarkers) on
	// the selected set: redundant markers — provably covered through the
	// call-loop graph's dominance/containment structure — are pruned so
	// detectors pay per-site cost only where it buys cuts. Firings of the
	// kept markers are unchanged; see MinimizeMarkers for the contract.
	Minimize bool

	// Ablation switches (not part of the paper's algorithm; used by the
	// design-choice benchmarks):

	// FlatCoV disables the per-edge threshold scaling of pass 2: every
	// edge gets the base avg(CoV) threshold regardless of its size.
	FlatCoV bool
	// NoHeads drops edges into head nodes from candidacy, simulating a
	// call-loop graph without the head/body split — only per-iteration and
	// per-activation edges remain markable, losing the aggregated
	// entry-to-exit views that stabilize variable inner behavior.
	NoHeads bool
}

func (o *SelectOptions) covScale() float64 {
	if o.CovScale <= 1 {
		return 10
	}
	return o.CovScale
}

func (o *SelectOptions) minCount() uint64 {
	if o.MinCount == 0 {
		return 2
	}
	return o.MinCount
}

// Marker is a selected software phase marker: an instrumentable location
// in the binary (an edge of the call-loop graph) whose traversal signals
// the beginning of an interval of repeating behavior. GroupN > 1 means the
// marker fires on every GroupN-th traversal (merged loop iterations).
type Marker struct {
	Key    EdgeKey
	GroupN uint64
	AvgLen float64 // expected instructions per interval (edge avg × GroupN)
	CoV    float64 // hierarchical-count CoV of the underlying edge
	Count  uint64  // profile traversal count
	Forced bool    // placed by max-limit forcing rather than the CoV rule
}

// MarkerSet is the output of selection, plus the thresholds that produced
// it (for reporting).
type MarkerSet struct {
	Markers  []Marker
	Opts     SelectOptions
	CovBase  float64 // avg CoV over candidate edges (threshold floor)
	CovSlack float64 // stddev of CoV over candidates (threshold headroom)
}

// ByKey returns a lookup from edge key to marker index.
func (s *MarkerSet) ByKey() map[EdgeKey]int {
	m := make(map[EdgeKey]int, len(s.Markers))
	for i, mk := range s.Markers {
		m[mk.Key] = i
	}
	return m
}

// String summarizes the set.
func (s *MarkerSet) String() string {
	return fmt.Sprintf("%d markers (ilower=%d maxlimit=%d covbase=%.3f+%.3f)",
		len(s.Markers), s.Opts.ILower, s.Opts.MaxLimit, s.CovBase, s.CovSlack)
}

// SelectMarkers runs the two-pass selection algorithm of §5 on a profiled
// call-loop graph.
//
// Pass 1 walks nodes in reverse estimated-depth order (children before
// parents, leaves first on ties) and collects the edges whose average
// hierarchical instruction count satisfies ILower: the potential markers.
//
// Pass 2 derives the CoV threshold from the potential markers — the base
// is avg(CoV) and up to one stddev(CoV) of extra variability is allowed,
// scaled linearly as an edge's average count grows away from ILower — and
// selects the edges that satisfy both the size and variability limits.
// With MaxLimit set it additionally enforces the maximum interval size and
// merges loop iterations (§5.2).
func SelectMarkers(g *Graph, opts SelectOptions) *MarkerSet {
	sp := obs.StartSpan("core.select_markers", "")
	defer sp.End()
	obsSelectRuns.Inc()
	g.ensureDepths()
	queue := g.NodesByReverseDepth()

	allowed := func(e *Edge) bool {
		if opts.ProcsOnly && e.To.Key.Kind != ProcHead && e.To.Key.Kind != ProcBody {
			return false
		}
		if opts.NoHeads && (e.To.Key.Kind == ProcHead || e.To.Key.Kind == LoopHead) {
			return false
		}
		return e.Count() >= opts.minCount()
	}

	// Pass 1: prune by average hierarchical instruction count.
	pass1 := sp.Child("core.select.pass1", "")
	var candidates []*Edge
	var examined uint64
	for _, n := range queue {
		for _, e := range sortedIn(n) {
			if !allowed(e) {
				continue
			}
			examined++
			if e.Avg() >= float64(opts.ILower) {
				candidates = append(candidates, e)
			}
		}
	}
	pass1.End()
	obsSelectExamined.Add(examined)
	obsSelectPruned.Add(examined - uint64(len(candidates)))
	obsSelectCandidates.Add(uint64(len(candidates)))

	// Threshold from the candidate population: programs inherently differ
	// in variability, so the threshold adapts per profile (§5.1 pass 2).
	covs := make([]float64, len(candidates))
	for i, e := range candidates {
		covs[i] = e.CoV()
	}
	base, slack := meanStd(covs)

	set := &MarkerSet{Opts: opts, CovBase: base, CovSlack: slack}
	chosen := map[EdgeKey]bool{}
	threshold := func(avg float64) float64 {
		if opts.FlatCoV {
			return base
		}
		span := (opts.covScale() - 1) * float64(opts.ILower)
		t := (avg - float64(opts.ILower)) / span
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return base + slack*t
	}
	add := func(e *Edge, groupN uint64, forced bool) {
		if chosen[e.Key] {
			return
		}
		chosen[e.Key] = true
		set.Markers = append(set.Markers, Marker{
			Key:    e.Key,
			GroupN: groupN,
			AvgLen: e.Avg() * float64(groupN),
			CoV:    e.CoV(),
			Count:  e.Count(),
			Forced: forced,
		})
	}

	// Pass 2: apply thresholds in reverse depth order.
	pass2 := sp.Child("core.select.pass2", "")
	for _, n := range queue {
		for _, e := range sortedIn(n) {
			if !allowed(e) {
				continue
			}
			if opts.MaxLimit > 0 && e.Max() > float64(opts.MaxLimit) {
				// Everything further up this path is even larger: stop and
				// mark the target's outgoing edges that fit the limit.
				for _, out := range sortedOut(n) {
					if out.Count() == 0 || out.Max() > float64(opts.MaxLimit) {
						continue
					}
					if gn, ok := mergeGroup(g, out, opts); ok {
						add(out, gn, true)
					} else if out.Avg() >= float64(opts.ILower) {
						add(out, 1, true)
					}
				}
				continue
			}
			if e.Avg() >= float64(opts.ILower) && e.CoV() <= threshold(e.Avg()) {
				add(e, 1, false)
				continue
			}
			// Loop-iteration merging: a stable but too-small per-iteration
			// edge can be grouped into runs of GroupN iterations.
			if opts.MaxLimit > 0 && e.CoV() <= threshold(float64(opts.ILower)) {
				if gn, ok := mergeGroup(g, e, opts); ok && gn > 1 {
					add(e, gn, false)
				}
			}
		}
	}
	pass2.End()
	sort.Slice(set.Markers, func(i, j int) bool {
		return set.Markers[i].Key.String() < set.Markers[j].Key.String()
	})
	obsSelectSelected.Add(uint64(len(set.Markers)))
	for _, m := range set.Markers {
		if m.Forced {
			obsSelectForced.Inc()
		}
		if m.GroupN > 1 {
			obsSelectMerged.Inc()
		}
	}
	if opts.Minimize {
		set, _ = MinimizeMarkers(g, set, MinimizeOptions{})
	}
	return set
}

// mergeGroup computes the iteration-group size for a loop head→body edge
// whose per-iteration average is below ILower: the N within
// [⌈ILower/A⌉, ⌊MaxLimit/A⌋] for which the average iterations-per-entry is
// closest to a multiple of N (§5.2). ok is false if e is not a mergeable
// loop-body edge or no N fits.
func mergeGroup(g *Graph, e *Edge, opts SelectOptions) (uint64, bool) {
	if opts.MaxLimit == 0 ||
		e.From.Key.Kind != LoopHead || e.To.Key.Kind != LoopBody {
		return 0, false
	}
	a := e.Avg()
	if a <= 0 || a >= float64(opts.ILower) {
		return 0, false
	}
	lo := uint64(math.Ceil(float64(opts.ILower) / a))
	hi := uint64(math.Floor(float64(opts.MaxLimit) / a))
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		return 0, false
	}
	// Average iterations per loop entry.
	var entries uint64
	for _, in := range e.From.In {
		entries += in.Count()
	}
	if entries == 0 {
		return 0, false
	}
	avgIters := float64(e.Count()) / float64(entries)
	bestN, bestRem := lo, math.Inf(1)
	if hi > lo+4096 {
		hi = lo + 4096 // bound the scan; remainders repeat in practice
	}
	for n := lo; n <= hi; n++ {
		rem := math.Mod(avgIters, float64(n))
		// Distance to the nearest multiple of n, normalized.
		if rem > float64(n)/2 {
			rem = float64(n) - rem
		}
		rem /= float64(n)
		if rem < bestRem {
			bestRem, bestN = rem, n
		}
	}
	return bestN, true
}

func sortedIn(n *Node) []*Edge {
	es := append([]*Edge(nil), n.In...)
	sort.Slice(es, func(i, j int) bool { return es[i].Key.String() < es[j].Key.String() })
	return es
}

func sortedOut(n *Node) []*Edge {
	es := append([]*Edge(nil), n.Out...)
	sort.Slice(es, func(i, j int) bool { return es[i].Key.String() < es[j].Key.String() })
	return es
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var m2 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
	}
	return mean, math.Sqrt(m2 / float64(len(xs)))
}
