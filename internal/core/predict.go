package core

// Phase prediction over marker firings. The paper positions software phase
// markers as run-time phase-change signals (§5.3); its companion work [17]
// predicts the *next* phase at each transition. Because markers are code
// locations, the firing sequence is highly structured (loops of phases),
// so a simple Markov predictor over marker IDs achieves high accuracy with
// no hardware support — this is the natural software analogue, provided
// here as the library's phase-prediction extension.

// Predictor forecasts the next marker to fire from the last `order`
// firings, with a last-value fallback for unseen contexts. The zero value
// is not usable; use NewPredictor.
type Predictor struct {
	order   int
	history []int
	table   map[string]*predEntry
	correct uint64
	total   uint64
}

type predEntry struct {
	counts map[int]uint32
	best   int
	bestN  uint32
}

// NewPredictor builds a Markov predictor of the given order (1 or 2 are
// typical; anything below 1 is clamped to 1).
func NewPredictor(order int) *Predictor {
	if order < 1 {
		order = 1
	}
	return &Predictor{order: order, table: map[string]*predEntry{}}
}

func (p *Predictor) key() string {
	// History is short (order <= 4 in practice); a tiny string key keeps
	// the table simple and allocation-light.
	var b []byte
	for _, h := range p.history {
		b = append(b, byte(h), byte(h>>8))
	}
	return string(b)
}

// Predict returns the marker expected to fire next, or -1 before any
// history exists.
func (p *Predictor) Predict() int {
	if len(p.history) == 0 {
		return -1
	}
	if e, ok := p.table[p.key()]; ok && e.bestN > 0 {
		return e.best
	}
	// Fallback: phases tend to recur back-to-back at boundaries; predict
	// the most recent marker.
	return p.history[len(p.history)-1]
}

// Observe consumes an actual firing, scoring the pending prediction and
// updating the model. It returns whether the prediction was correct.
func (p *Predictor) Observe(marker int) bool {
	pred := p.Predict()
	hit := pred == marker
	if pred >= 0 {
		p.total++
		if hit {
			p.correct++
		}
	}
	if len(p.history) > 0 {
		k := p.key()
		e := p.table[k]
		if e == nil {
			e = &predEntry{counts: map[int]uint32{}}
			p.table[k] = e
		}
		e.counts[marker]++
		if e.counts[marker] > e.bestN {
			e.best, e.bestN = marker, e.counts[marker]
		}
	}
	p.history = append(p.history, marker)
	if len(p.history) > p.order {
		p.history = p.history[1:]
	}
	return hit
}

// Accuracy reports the fraction of scored predictions that were correct.
func (p *Predictor) Accuracy() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.total)
}

// Predictions reports how many firings were scored.
func (p *Predictor) Predictions() uint64 { return p.total }

// EvaluatePrediction replays a marker trace through a fresh predictor of
// the given order and reports the online accuracy — how often the next
// phase was known before it began.
func EvaluatePrediction(trace []int, order int) float64 {
	p := NewPredictor(order)
	for _, m := range trace {
		p.Observe(m)
	}
	return p.Accuracy()
}
