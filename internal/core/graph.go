// Package core implements the paper's contribution: the hierarchical
// call-loop graph (§4) and the software phase-marker selection algorithm
// (§5), including the SimPoint-oriented interval-limit variant (§5.2).
//
// The call-loop graph is a call graph extended with loop nodes. Each
// procedure and each loop is represented by a *head* and a *body* node;
// every head node has exactly one child, its body node. Edges carry the
// traversal count and the max / mean / standard deviation of the
// hierarchical (inclusive) dynamic instruction count per traversal:
//
//   - an edge into a procedure head measures call-to-return time (for
//     recursive procedures, the entire outermost episode);
//   - a procedure head→body edge measures each activation;
//   - an edge into a loop head measures loop entry-to-exit time;
//   - a loop head→body edge measures each iteration.
package core

import (
	"fmt"
	"sort"
	"sync"

	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

// NodeKind distinguishes the four node flavors of the call-loop graph.
type NodeKind uint8

// Node kinds.
const (
	ProcHead NodeKind = iota
	ProcBody
	LoopHead
	LoopBody
	RootKind // virtual root above the entry procedure
)

var nodeKindNames = [...]string{"proc-head", "proc-body", "loop-head", "loop-body", "root"}

// String names the node kind.
func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) {
		return nodeKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NodeKey identifies a node stably across runs of the same binary: the
// kind plus the procedure ID (proc nodes) or the loop head block's global
// ID (loop nodes).
type NodeKey struct {
	Kind NodeKind
	ID   int
}

// EdgeKey identifies an edge stably across runs of the same binary. Site
// is the global block ID of the instruction that traverses the edge — the
// call site block for call edges, the callee entry block for proc
// head→body edges, and the loop head block for loop edges. Markers are
// EdgeKeys: they name an instrumentable location in the binary.
type EdgeKey struct {
	From NodeKey
	To   NodeKey
	Site int
}

// String renders the key compactly.
func (k EdgeKey) String() string {
	return fmt.Sprintf("%v#%d->%v#%d@%d", k.From.Kind, k.From.ID, k.To.Kind, k.To.ID, k.Site)
}

// Node is a call-loop graph node.
type Node struct {
	Key  NodeKey
	Proc *minivm.Proc // for proc nodes
	Loop *minivm.Loop // for loop nodes
	In   []*Edge
	Out  []*Edge

	// Depth is the estimated maximum call-loop depth from the root,
	// computed by EstimateDepths for the selection algorithm's
	// reverse-depth ordering.
	Depth int
}

// Label renders a human-readable node name.
func (n *Node) Label() string {
	switch n.Key.Kind {
	case ProcHead, ProcBody:
		return fmt.Sprintf("%s(%s)", n.Key.Kind, n.Proc.Name)
	case LoopHead, LoopBody:
		return fmt.Sprintf("%s(%s@line%d)", n.Key.Kind, n.Loop.Proc.Name, n.Loop.Head.Line)
	default:
		return "root"
	}
}

// Edge is a call-loop graph edge annotated with hierarchical instruction
// count statistics per traversal (count, mean, max, stddev → CoV).
type Edge struct {
	Key  EdgeKey
	From *Node
	To   *Node
	// Hier accumulates the hierarchical dynamic instruction count of each
	// traversal of this edge.
	Hier stats.Welford
}

// Count reports how many times the edge was traversed.
func (e *Edge) Count() uint64 { return e.Hier.N() }

// Avg reports the mean hierarchical instruction count per traversal (the
// "A" annotation in the paper's Figure 2).
func (e *Edge) Avg() float64 { return e.Hier.Mean() }

// Max reports the maximum hierarchical instruction count on one traversal.
func (e *Edge) Max() float64 { return e.Hier.Max() }

// CoV reports the coefficient of variation of the hierarchical count.
func (e *Edge) CoV() float64 { return e.Hier.CoV() }

// Graph is the hierarchical call-loop graph for one profiled execution.
type Graph struct {
	Prog  *minivm.Program
	Loops *minivm.Loops
	Nodes []*Node
	Edges []*Edge
	Root  *Node

	nodes    map[NodeKey]*Node
	edges    map[EdgeKey]*Edge
	blockIdx []*minivm.Block // global block ID -> block, built in NewGraph

	// depthOnce guards the one EstimateDepths run triggered by read-side
	// consumers (SelectMarkers, Dump), so a finished graph can be shared
	// by concurrent selections without racing on Node.Depth.
	depthOnce sync.Once
}

// NewGraph builds an empty graph over prog (loop table computed here).
func NewGraph(prog *minivm.Program) *Graph {
	g := &Graph{
		Prog:  prog,
		Loops: minivm.FindLoops(prog),
		nodes: map[NodeKey]*Node{},
		edges: map[EdgeKey]*Edge{},
	}
	g.blockIdx = make([]*minivm.Block, prog.NumBlocks)
	for _, pr := range prog.Procs {
		for _, b := range pr.Blocks {
			g.blockIdx[b.ID] = b
		}
	}
	g.Root = g.node(NodeKey{Kind: RootKind, ID: 0}, nil, nil)
	return g
}

func (g *Graph) node(key NodeKey, pr *minivm.Proc, l *minivm.Loop) *Node {
	if n, ok := g.nodes[key]; ok {
		return n
	}
	n := &Node{Key: key, Proc: pr, Loop: l}
	g.nodes[key] = n
	g.Nodes = append(g.Nodes, n)
	return n
}

// ProcHeadNode returns (creating if needed) the head node for pr.
func (g *Graph) ProcHeadNode(pr *minivm.Proc) *Node {
	return g.node(NodeKey{Kind: ProcHead, ID: pr.ID}, pr, nil)
}

// ProcBodyNode returns (creating if needed) the body node for pr.
func (g *Graph) ProcBodyNode(pr *minivm.Proc) *Node {
	return g.node(NodeKey{Kind: ProcBody, ID: pr.ID}, pr, nil)
}

// LoopHeadNode returns (creating if needed) the head node for l.
func (g *Graph) LoopHeadNode(l *minivm.Loop) *Node {
	return g.node(NodeKey{Kind: LoopHead, ID: l.Head.ID}, nil, l)
}

// LoopBodyNode returns (creating if needed) the body node for l.
func (g *Graph) LoopBodyNode(l *minivm.Loop) *Node {
	return g.node(NodeKey{Kind: LoopBody, ID: l.Head.ID}, nil, l)
}

// edge returns (creating if needed) the edge from→to with the given site.
func (g *Graph) edge(from, to *Node, site int) *Edge {
	key := EdgeKey{From: from.Key, To: to.Key, Site: site}
	if e, ok := g.edges[key]; ok {
		return e
	}
	e := &Edge{Key: key, From: from, To: to}
	g.edges[key] = e
	g.Edges = append(g.Edges, e)
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
	return e
}

// EdgeByKey looks up an edge, or nil.
func (g *Graph) EdgeByKey(k EdgeKey) *Edge { return g.edges[k] }

// NodeByKey looks up a node, or nil.
func (g *Graph) NodeByKey(k NodeKey) *Node { return g.nodes[k] }

// ensureDepths runs EstimateDepths exactly once per graph. Consumers that
// only read a finished graph (marker selection, dumping) go through this,
// which makes sharing one profiled graph across concurrent SelectMarkers
// calls safe: after the first (synchronized) run, Node.Depth is read-only.
// Call EstimateDepths directly to force a recomputation after growing the
// graph further.
func (g *Graph) ensureDepths() { g.depthOnce.Do(g.EstimateDepths) }

// EstimateDepths computes, for every node, an estimate of the maximum
// depth from the root, using the paper's modified depth-first search: a
// node is re-traversed when a longer path to it is found, but never
// re-entered while on the current path (so cycles terminate).
func (g *Graph) EstimateDepths() {
	for _, n := range g.Nodes {
		n.Depth = 0
	}
	onPath := map[*Node]bool{}
	var dfs func(n *Node, d int)
	dfs = func(n *Node, d int) {
		if onPath[n] {
			return
		}
		if d <= n.Depth && d != 0 {
			return // no improvement; subtree depths already >= what we'd set
		}
		n.Depth = d
		onPath[n] = true
		for _, e := range n.Out {
			dfs(e.To, d+1)
		}
		onPath[n] = false
	}
	dfs(g.Root, 0)
}

// NodesByReverseDepth returns nodes sorted by decreasing estimated depth,
// breaking ties by increasing out-degree (leaves first), then by key for
// determinism. EstimateDepths must have run.
func (g *Graph) NodesByReverseDepth() []*Node {
	ns := make([]*Node, len(g.Nodes))
	copy(ns, g.Nodes)
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i], ns[j]
		if a.Depth != b.Depth {
			return a.Depth > b.Depth
		}
		if len(a.Out) != len(b.Out) {
			return len(a.Out) < len(b.Out)
		}
		if a.Key.Kind != b.Key.Kind {
			return a.Key.Kind < b.Key.Kind
		}
		return a.Key.ID < b.Key.ID
	})
	return ns
}

// Dump renders the graph in a stable order for debugging and the CLI.
func (g *Graph) Dump() string {
	g.ensureDepths()
	var out string
	for _, n := range g.NodesByReverseDepth() {
		out += fmt.Sprintf("%s (depth %d)\n", n.Label(), n.Depth)
		edges := append([]*Edge(nil), n.In...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].Key.String() < edges[j].Key.String() })
		for _, e := range edges {
			out += fmt.Sprintf("  <- %s  C=%d A=%.1f CoV=%.3f max=%.0f\n",
				e.From.Label(), e.Count(), e.Avg(), e.CoV(), e.Max())
		}
	}
	return out
}
