package core

import (
	"testing"
)

// fakeGraph builds a minimal graph with one loop whose head→body edge has
// the given per-iteration stats, for mergeGroup unit tests.
func loopEdgeFixture(t *testing.T, iterCount int, perIter float64, entries int) (*Graph, *Edge) {
	t.Helper()
	prog := mustCompile(t, `
proc main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}`, false)
	g := NewGraph(prog)
	l := g.Loops.All[0]
	head := g.LoopHeadNode(l)
	body := g.LoopBodyNode(l)
	ctx := g.ProcBodyNode(prog.EntryProc())
	entry := g.edge(ctx, head, l.Head.ID)
	bodyEdge := g.edge(head, body, l.Head.ID)
	for e := 0; e < entries; e++ {
		entry.Hier.Add(perIter * float64(iterCount))
	}
	for i := 0; i < iterCount*entries; i++ {
		bodyEdge.Hier.Add(perIter)
	}
	return g, bodyEdge
}

func TestMergeGroupPicksEvenDivisor(t *testing.T) {
	// 1000 iterations per entry at ~10 instructions each; ilower 600,
	// maxlimit 6000 => N in [60, 600]; multiples of 1000's divisors near
	// zero remainder: N=100, 125, 200, 250, 500 all divide evenly — the
	// chosen N must divide 1000 exactly and land in range.
	g, e := loopEdgeFixture(t, 1000, 10, 3)
	n, ok := mergeGroup(g, e, SelectOptions{ILower: 600, MaxLimit: 6000})
	if !ok {
		t.Fatal("mergeable edge rejected")
	}
	if n < 60 || n > 600 {
		t.Fatalf("N=%d outside [60,600]", n)
	}
	if 1000%int(n) != 0 {
		t.Fatalf("N=%d does not divide the 1000 iterations evenly", n)
	}
}

func TestMergeGroupRejections(t *testing.T) {
	g, e := loopEdgeFixture(t, 1000, 10, 3)
	// No max limit: merging is a limit-variant feature.
	if _, ok := mergeGroup(g, e, SelectOptions{ILower: 600}); ok {
		t.Error("merged without MaxLimit")
	}
	// Edge already large enough: no grouping.
	if _, ok := mergeGroup(g, e, SelectOptions{ILower: 5, MaxLimit: 50}); ok {
		t.Error("merged an edge already above ilower")
	}
	// Range empty: maxlimit too small to fit even the minimum group.
	if _, ok := mergeGroup(g, e, SelectOptions{ILower: 600, MaxLimit: 590}); ok {
		t.Error("merged with an empty N range")
	}
	// Non-loop-body edges are never merged.
	var callEdge *Edge
	for _, ed := range g.Edges {
		if ed.To.Key.Kind == LoopHead {
			callEdge = ed
		}
	}
	if _, ok := mergeGroup(g, callEdge, SelectOptions{ILower: 600, MaxLimit: 6000}); ok {
		t.Error("merged a non-body edge")
	}
}

func TestMinCountFiltersOneShotEdges(t *testing.T) {
	// A program whose procedures run exactly once: with the default
	// MinCount (2) nothing qualifies; with MinCount 1 the one-shot call
	// edges become markable.
	prog := mustCompile(t, `
proc stage1(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
proc stage2(n) {
	var s = 1;
	for (var i = 0; i < n; i = i + 1) { s = s + (s >> 3); }
	return s;
}
proc main(n) { return stage1(n) + stage2(n); }`, false)
	g := mustProfile(t, prog, 50_000)
	def := SelectMarkers(g, SelectOptions{ILower: 10_000})
	for _, m := range def.Markers {
		if m.Count < 2 {
			t.Fatalf("default selection kept a one-shot edge: %+v", m)
		}
	}
	loose := SelectMarkers(g, SelectOptions{ILower: 10_000, MinCount: 1})
	if len(loose.Markers) <= len(def.Markers) {
		t.Fatalf("MinCount=1 should admit one-shot edges: %d vs %d",
			len(loose.Markers), len(def.Markers))
	}
}

func TestCovScaleControlsThresholdSaturation(t *testing.T) {
	// With a tiny CovScale the threshold saturates immediately
	// (avg+std for everything); with FlatCoV it never grows. On a
	// program with mid-variance edges this changes what qualifies.
	src := `
proc jagged(n, r) {
	var lim = n + ((r * 2971) & 255) * 16;
	var s = 0;
	for (var i = 0; i < lim; i = i + 1) { s = s + i; }
	return s;
}
proc steady(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var q = 0; q < reps; q = q + 1) { s = s + jagged(n, q) + steady(n); }
	return s;
}`
	prog := mustCompile(t, src, false)
	g := mustProfile(t, prog, 40, 2000)
	flat := SelectMarkers(g, SelectOptions{ILower: 5000, FlatCoV: true})
	loose := SelectMarkers(g, SelectOptions{ILower: 5000, CovScale: 1.0001})
	if len(loose.Markers) < len(flat.Markers) {
		t.Fatalf("saturated threshold admitted fewer markers (%d) than flat (%d)",
			len(loose.Markers), len(flat.Markers))
	}
}

func TestSelectOnEmptyGraph(t *testing.T) {
	prog := mustCompile(t, `proc main() { return 0; }`, false)
	g := mustProfile(t, prog)
	set := SelectMarkers(g, SelectOptions{ILower: 1000})
	if len(set.Markers) != 0 {
		t.Fatalf("markers on a trivial program: %+v", set.Markers)
	}
}
