package core

import (
	"testing"
	"testing/quick"

	"phasemark/internal/compile"
	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

// balanceSink checks the fundamental walker invariants: every open has a
// matching close (LIFO), hierarchical counts are non-negative, and nested
// traversals are contained within their parents.
type balanceSink struct {
	t     *testing.T
	stack []struct {
		key EdgeKey
		at  uint64
	}
	opens, closes int
}

func (s *balanceSink) EdgeOpen(k EdgeKey, at uint64) {
	if n := len(s.stack); n > 0 && at < s.stack[n-1].at {
		s.t.Fatalf("open at %d before parent open at %d", at, s.stack[n-1].at)
	}
	s.stack = append(s.stack, struct {
		key EdgeKey
		at  uint64
	}{k, at})
	s.opens++
}

func (s *balanceSink) EdgeClose(k EdgeKey, hier uint64) {
	if len(s.stack) == 0 {
		s.t.Fatal("close without open")
	}
	top := s.stack[len(s.stack)-1]
	if top.key != k {
		s.t.Fatalf("non-LIFO close: %v, open stack top %v", k, top.key)
	}
	s.stack = s.stack[:len(s.stack)-1]
	s.closes++
}

// genProgram builds a random but structurally valid program: a few procs
// with loops, nested loops, calls, and data-dependent branches.
func genProgram(t *testing.T, seed uint64) (*minivm.Program, []int64) {
	r := stats.NewRNG(seed)
	src := `
var g;
proc leaf(x) {
	var s = x;
	for (var i = 0; i < (x & 15) + 1; i = i + 1) { s = s + i; }
	return s;
}
proc mid(x, d) {
	var s = 0;
	for (var i = 0; i < (x & 7) + 1; i = i + 1) {
		if (i % 2 == 0) { s = s + leaf(i + x); }
		else {
			while (s > x) { s = s - x - 1; }
		}
	}
	if (d > 0) { s = s + mid(x / 2, d - 1); }
	return s;
}
proc main(n, d) {
	var s = 0;
	for (var r = 0; r < n; r = r + 1) {
		s = s + mid(r * 13 + 7, d);
		g = g + s;
	}
	return s;
}
`
	prog, err := mustCompileSrc(src, seed%2 == 0)
	if err != nil {
		t.Fatal(err)
	}
	return prog, []int64{int64(r.Intn(20) + 1), int64(r.Intn(3))}
}

func TestWalkerInvariantsOnRandomPrograms(t *testing.T) {
	f := func(seed uint64) bool {
		prog, args := genProgram(t, seed)
		sink := &balanceSink{t: t}
		w := NewWalker(prog, minivm.FindLoops(prog), sink)
		m := minivm.NewMachine(prog, w)
		if _, err := m.Run(args...); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := w.Finish(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sink.opens != sink.closes {
			t.Fatalf("seed %d: %d opens, %d closes", seed, sink.opens, sink.closes)
		}
		if len(sink.stack) != 0 {
			t.Fatalf("seed %d: %d traversals left open", seed, len(sink.stack))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: profiling the same program twice yields identical graphs, and
// the sum over a node's incoming edge counts is input-deterministic.
func TestProfilingDeterministic(t *testing.T) {
	prog, args := genProgram(t, 7)
	g1 := mustProfile(t, prog, args...)
	g2 := mustProfile(t, prog, args...)
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(g1.Edges), len(g2.Edges))
	}
	for _, e1 := range g1.Edges {
		e2 := g2.EdgeByKey(e1.Key)
		if e2 == nil {
			t.Fatalf("edge %v missing from second profile", e1.Key)
		}
		if e1.Count() != e2.Count() || e1.Avg() != e2.Avg() || e1.Max() != e2.Max() {
			t.Fatalf("edge %v stats differ", e1.Key)
		}
	}
}

// Property: hierarchical count of a parent traversal >= sum of any child's
// contribution — specifically the root edge equals total instructions and
// every edge's total is bounded by it.
func TestHierarchicalCountsBounded(t *testing.T) {
	prog, args := genProgram(t, 13)
	p := NewProfiler(prog)
	m := minivm.NewMachine(prog, p)
	if _, err := m.Run(args...); err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	total := float64(m.Instructions())
	for _, e := range p.Graph().Edges {
		if e.Max() > total {
			t.Fatalf("edge %v max %v exceeds total %v", e.Key, e.Max(), total)
		}
	}
}

func mustCompileSrc(src string, opt bool) (*minivm.Program, error) {
	return compile.CompileSource(src, compile.Options{Optimize: opt})
}
