package core

import (
	"testing"

	"phasemark/internal/compile"
	"phasemark/internal/minivm"
)

func mustCompile(t *testing.T, src string, opt bool) *minivm.Program {
	t.Helper()
	prog, err := compile.CompileSource(src, compile.Options{Optimize: opt})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func mustProfile(t *testing.T, prog *minivm.Program, args ...int64) *Graph {
	t.Helper()
	g, err := ProfileRun(prog, args...)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return g
}

// paperExample mirrors the paper's Figure 1: foo contains a loop calling X
// or Y depending on a condition, then calls X once after the loop; X calls
// Z. Here main plays the role of foo's caller.
const paperExample = `
proc main(iters, reps) {
	for (var r = 0; r < reps; r = r + 1) {
		foo(iters, r);
	}
	return 0;
}
proc foo(iters, r) {
	var i = 0;
	while (i < iters) {
		if (i % 2 == 0) { x(i); } else { y(i); }
		i = i + 1;
	}
	x(r);
	return 0;
}
proc x(v) { return z(v) + 1; }
proc y(v) {
	var s = 0;
	for (var k = 0; k < 10; k = k + 1) { s = s + k * v; }
	return s;
}
proc z(v) { return v * 3 + 1; }
`

func findNode(t *testing.T, g *Graph, kind NodeKind, procName string) *Node {
	t.Helper()
	pr := g.Prog.Proc(procName)
	if pr == nil {
		t.Fatalf("no proc %q", procName)
	}
	n := g.NodeByKey(NodeKey{Kind: kind, ID: pr.ID})
	if n == nil {
		t.Fatalf("no %v node for %q", kind, procName)
	}
	return n
}

func inCount(n *Node) uint64 {
	var c uint64
	for _, e := range n.In {
		c += e.Count()
	}
	return c
}

func TestGraphPaperExampleStructure(t *testing.T) {
	prog := mustCompile(t, paperExample, false)
	const iters, reps = 10, 4
	g := mustProfile(t, prog, iters, reps)

	// foo is called reps times; its head and body edges each traverse reps
	// times (no recursion: head and body carry identical information).
	fooHead := findNode(t, g, ProcHead, "foo")
	fooBody := findNode(t, g, ProcBody, "foo")
	if got := inCount(fooHead); got != reps {
		t.Errorf("foo head in-count = %d, want %d", got, reps)
	}
	if got := inCount(fooBody); got != reps {
		t.Errorf("foo body in-count = %d, want %d", got, reps)
	}

	// x is called from two distinct sites: inside the loop (iters/2 per
	// foo call) and after the loop (once per foo call). The sites must be
	// distinct edges into x's head.
	xHead := findNode(t, g, ProcHead, "x")
	if len(xHead.In) != 2 {
		t.Fatalf("x head has %d in-edges, want 2 (two call sites)", len(xHead.In))
	}
	var fromLoop, fromFoo *Edge
	for _, e := range xHead.In {
		switch e.From.Key.Kind {
		case LoopBody:
			fromLoop = e
		case ProcBody:
			fromFoo = e
		}
	}
	if fromLoop == nil || fromFoo == nil {
		t.Fatalf("x head in-edges have wrong sources: %v, %v", xHead.In[0].From.Label(), xHead.In[1].From.Label())
	}
	if got := fromLoop.Count(); got != reps*iters/2 {
		t.Errorf("loop-body->x count = %d, want %d", got, reps*iters/2)
	}
	if got := fromFoo.Count(); got != reps {
		t.Errorf("foo-body->x count = %d, want %d", got, reps)
	}

	// z is called once per x call; its hierarchical count should be small
	// and perfectly stable (z is straight-line), so CoV == 0.
	zHead := findNode(t, g, ProcHead, "z")
	if got := inCount(zHead); got != reps*iters/2+reps {
		t.Errorf("z head in-count = %d, want %d", got, reps*iters/2+reps)
	}
	for _, e := range zHead.In {
		if e.CoV() != 0 {
			t.Errorf("z in-edge CoV = %v, want 0 (straight-line callee)", e.CoV())
		}
	}

	// The while loop in foo: head entered reps times, body iterates
	// iters times per entry.
	var loopHead *Node
	for _, n := range g.Nodes {
		if n.Key.Kind == LoopHead && n.Loop.Proc.Name == "foo" {
			loopHead = n
		}
	}
	if loopHead == nil {
		t.Fatal("no loop-head node in foo")
	}
	if got := inCount(loopHead); got != reps {
		t.Errorf("loop head entries = %d, want %d", got, reps)
	}
	if len(loopHead.Out) != 1 {
		t.Fatalf("loop head must have exactly one child, got %d", len(loopHead.Out))
	}
	bodyEdge := loopHead.Out[0]
	if bodyEdge.To.Key.Kind != LoopBody {
		t.Fatalf("loop head child is %v, want loop-body", bodyEdge.To.Key.Kind)
	}
	if got := bodyEdge.Count(); got != reps*iters {
		t.Errorf("loop iterations = %d, want %d", got, reps*iters)
	}
}

func TestHeadHasExactlyOneChild(t *testing.T) {
	prog := mustCompile(t, paperExample, true)
	g := mustProfile(t, prog, 12, 3)
	for _, n := range g.Nodes {
		if n.Key.Kind != ProcHead && n.Key.Kind != LoopHead {
			continue
		}
		kinds := map[NodeKey]bool{}
		for _, e := range n.Out {
			kinds[e.To.Key] = true
		}
		if len(kinds) != 1 {
			t.Errorf("%s has %d distinct children, want 1", n.Label(), len(kinds))
		}
	}
}

func TestRecursionHeadTracksEpisode(t *testing.T) {
	prog := mustCompile(t, `
proc fib(n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
proc main(k) {
	var s = 0;
	for (var i = 0; i < 3; i = i + 1) { s = s + fib(k); }
	return s;
}`, false)
	g := mustProfile(t, prog, 12)

	head := findNode(t, g, ProcHead, "fib")
	body := findNode(t, g, ProcBody, "fib")
	// Outermost episodes: 3 (one per loop iteration).
	if got := inCount(head); got != 3 {
		t.Errorf("fib head in-count = %d, want 3 (outermost episodes only)", got)
	}
	// Body activations: every call, including recursive ones. fib(12)
	// makes calls(12) total activations where calls(n) follows the
	// Fibonacci call tree: activations(n) = 1 + act(n-1) + act(n-2).
	act := make([]uint64, 13)
	act[0], act[1] = 1, 1
	for i := 2; i <= 12; i++ {
		act[i] = 1 + act[i-1] + act[i-2]
	}
	if got := inCount(body); got != 3*act[12] {
		t.Errorf("fib body in-count = %d, want %d", got, 3*act[12])
	}
	// The head's in-edge hierarchical count must dwarf the per-activation
	// counts on recursive body edges.
	var headAvg float64
	for _, e := range head.In {
		headAvg = e.Avg()
	}
	for _, e := range body.In {
		if e.From.Key.Kind == ProcHead {
			continue
		}
		if e.Avg() >= headAvg {
			t.Errorf("recursive body edge avg %.0f >= head episode avg %.0f", e.Avg(), headAvg)
		}
	}
}

func TestWalkerBalancedAndRootSpansProgram(t *testing.T) {
	prog := mustCompile(t, paperExample, false)
	p := NewProfiler(prog)
	m := minivm.NewMachine(prog, p)
	if _, err := m.Run(20, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("unbalanced walker: %v", err)
	}
	g := p.Graph()
	mainHead := findNode(t, g, ProcHead, "main")
	if len(mainHead.In) != 1 {
		t.Fatalf("main head has %d in-edges, want 1 (root)", len(mainHead.In))
	}
	rootEdge := mainHead.In[0]
	if rootEdge.Count() != 1 {
		t.Errorf("root edge count = %d, want 1", rootEdge.Count())
	}
	// The root edge's hierarchical count is the whole execution.
	if got, want := rootEdge.Avg(), float64(m.Instructions()); got != want {
		t.Errorf("root edge hierarchical count = %.0f, want %.0f", got, want)
	}
}

func TestDepthOrderingChildrenBeforeParents(t *testing.T) {
	prog := mustCompile(t, paperExample, false)
	g := mustProfile(t, prog, 8, 2)
	g.EstimateDepths()
	// Along every edge, the child is at least one deeper than the parent
	// unless the edge closes a cycle (recursion); this program has none.
	for _, e := range g.Edges {
		if e.To.Depth <= e.From.Depth {
			t.Errorf("edge %s: child depth %d <= parent depth %d",
				e.Key, e.To.Depth, e.From.Depth)
		}
	}
	// Reverse-depth order must process z (deepest proc) before x before foo.
	order := map[string]int{}
	for i, n := range g.NodesByReverseDepth() {
		if n.Key.Kind == ProcBody && n.Proc != nil {
			order[n.Proc.Name] = i
		}
	}
	if !(order["z"] < order["x"] && order["x"] < order["foo"] && order["foo"] < order["main"]) {
		t.Errorf("bad reverse-depth order: %v", order)
	}
}
