package core

import (
	"math"
	"sort"

	"phasemark/internal/obs"
)

// Placement-minimization metrics: how much of the selected marker
// population the pruning passes remove, and how much per-site runtime cost
// (edge traversals the detector or instrumented binary pays for) survives.
var (
	obsMinRuns         = obs.NewCounter("core.minimize.runs")
	obsMinKept         = obs.NewCounter("core.minimize.kept")
	obsMinPrunedDom    = obs.NewCounter("core.minimize.pruned_dominated")
	obsMinPrunedCoFire = obs.NewCounter("core.minimize.pruned_cofire")
	obsMinPrunedCover  = obs.NewCounter("core.minimize.pruned_cover")
	obsMinCostFull     = obs.NewCounter("core.minimize.cost_full")
	obsMinCostKept     = obs.NewCounter("core.minimize.cost_kept")
)

// MinimizeOptions configures the placement-optimization pass.
type MinimizeOptions struct {
	// IUpper is the longest uncut stretch a pruning step may provably
	// introduce, in instructions. Zero resolves to the selection's MaxLimit
	// (§5.2 iupper); when the set was selected without a limit it falls
	// back to ILower × CovScale — the point where the selection's CoV
	// threshold saturates, i.e. the scale the selection itself considers
	// "far above ILower".
	IUpper uint64
	// NoCover disables the greedy expected-coverage fallback, leaving only
	// the exact dominance and co-firing pruning passes.
	NoCover bool
}

// MinimizeReport summarizes one MinimizeMarkers run. Cost is the per-site
// runtime cost model: the sum of profile traversal counts over a set's
// marker sites — every traversal of a marked edge is one detector site
// lookup (or one executed mark instruction in the instrumented binary),
// whether or not it fires.
type MinimizeReport struct {
	Full            int // markers in the input set
	Kept            int // markers surviving all passes
	PrunedDominated int // removed by the dominance pass
	PrunedCoFire    int // removed by the co-firing pass
	PrunedCover     int // removed by the greedy cover fallback
	FullCost        uint64
	KeptCost        uint64
	EffUpper        uint64 // resolved stretch bound
}

// effUpper resolves the stretch bound for a set per MinimizeOptions.IUpper.
func (o MinimizeOptions) effUpper(set *MarkerSet) uint64 {
	if o.IUpper > 0 {
		return o.IUpper
	}
	if set.Opts.MaxLimit > 0 {
		return set.Opts.MaxLimit
	}
	return uint64(float64(set.Opts.ILower) * set.Opts.covScale())
}

// markerCost is the per-site cost model shared with the report: profile
// traversal count of the marker's edge (zero when the edge is no longer in
// the graph).
func markerCost(g *Graph, m *Marker) uint64 {
	if e := g.EdgeByKey(m.Key); e != nil {
		return e.Count()
	}
	return 0
}

// Prune reasons recorded per marker while the passes run.
const (
	keptMarker = iota
	prunedDominated
	prunedCoFire
	prunedCovered
)

// MinimizeMarkers computes a minimum-cost placement for a selected marker
// set: a subset of markers whose firings still tile execution within the
// selection's interval bounds, at a smaller per-site runtime cost (markers
// weighted by traversal count). Three pruning passes run over the
// call-loop graph's dominance/containment structure:
//
//  1. Dominance: marker B is redundant when a kept marker A dominates it
//     in the call-loop graph (every traversal of B's edge is nested inside
//     a traversal of A's edge — a caller edge above a callee edge, a loop
//     entry above its body) and A's own firing gaps fit the stretch bound
//     (GroupN × max hierarchical count ≤ effUpper): dropping B leaves no
//     uncut stretch longer than one A gap plus one full-set interval.
//  2. Co-firing: a marker on an edge into a head node fires at the same
//     instant as the head→body marker beneath it (the walker opens both
//     edges back to back at the entry instruction), so when the body
//     marker is kept with GroupN == 1 the entry marker's cuts are
//     duplicates and it is dropped regardless of bounds.
//  3. Greedy cover (fallback, disable with NoCover): where dominance could
//     not prove redundancy because the dominating marker itself exceeds
//     the bound, the dominator is dropped anyway when its kept marker
//     descendants blanket its span in expectation — Σ fires ×
//     min(GroupN·avg, effUpper) over the descendants covers the
//     dominator's total profiled mass. Candidates drop
//     most-expensive-first, re-validating after every drop.
//
// Kept markers fire identically with or without their pruned peers
// (detection is per-site), so the minimized cut sequence is exactly the
// full sequence restricted to the kept markers — the property
// check.Placement pins. The result preserves marker order, thresholds, and
// Opts; the input set is not modified.
func MinimizeMarkers(g *Graph, set *MarkerSet, opts MinimizeOptions) (*MarkerSet, MinimizeReport) {
	sp := obs.StartSpan("core.minimize_markers", "")
	defer sp.End()
	obsMinRuns.Inc()

	rep := MinimizeReport{Full: len(set.Markers), EffUpper: opts.effUpper(set)}
	for i := range set.Markers {
		rep.FullCost += markerCost(g, &set.Markers[i])
	}
	out := &MarkerSet{Opts: set.Opts, CovBase: set.CovBase, CovSlack: set.CovSlack}
	if len(set.Markers) == 0 {
		return out, rep
	}

	dom := newDominators(g)
	n := len(set.Markers)
	verts := make([]int, n)  // augmented-graph vertex per marker, -1 if gone
	pruned := make([]int, n) // keptMarker or a prune reason
	markerAt := make(map[int]int, n)
	for i := range set.Markers {
		verts[i] = dom.edgeVertex(set.Markers[i].Key)
		if verts[i] >= 0 {
			markerAt[verts[i]] = i
		}
	}

	// fits reports whether marker i's firing gaps bound the stretches they
	// are responsible for: GroupN consecutive traversals never exceed the
	// effective upper bound.
	fits := func(i int) bool {
		e := g.EdgeByKey(set.Markers[i].Key)
		if e == nil {
			return false
		}
		return float64(set.Markers[i].GroupN)*e.Max() <= float64(rep.EffUpper)
	}

	// Pass 1 — dominance. Order markers by dominator-tree depth so
	// dominators are decided before the markers they dominate, then prune
	// every marker with a kept, bound-fitting marker strictly above it.
	order := make([]int, 0, n)
	for i := range set.Markers {
		if verts[i] >= 0 && dom.depth[verts[i]] >= 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return dom.depth[verts[order[a]]] < dom.depth[verts[order[b]]]
	})
	for _, i := range order {
		for _, v := range dom.ancestors(verts[i]) {
			if a, ok := markerAt[v]; ok && pruned[a] == keptMarker && fits(a) {
				pruned[i] = prunedDominated
				break
			}
		}
	}

	// Pass 2 — co-firing. An entry marker (edge into a proc or loop head)
	// duplicates the cuts of the head→body marker directly beneath it when
	// that marker is kept and ungrouped.
	bodyKept := map[NodeKey]bool{}
	for i, m := range set.Markers {
		if pruned[i] != keptMarker || m.GroupN != 1 {
			continue
		}
		from := m.Key.From
		if (from.Kind == ProcHead || from.Kind == LoopHead) && m.Key.To.Kind == bodyKind(from.Kind) {
			bodyKept[from] = true
		}
	}
	for i, m := range set.Markers {
		if pruned[i] != keptMarker {
			continue
		}
		to := m.Key.To
		if (to.Kind == ProcHead || to.Kind == LoopHead) && bodyKept[to] {
			pruned[i] = prunedCoFire
		}
	}

	// Pass 3 — greedy expected-coverage fallback. A kept marker whose own
	// gaps exceed the bound (pass 1 could not use it as a dominator) is
	// dropped when its kept marker descendants cover its profiled mass in
	// expectation. Most expensive first; every drop re-validates the
	// remaining candidates, and the last marker is never dropped.
	if !opts.NoCover {
		minimizeCover(g, set, dom, verts, pruned, markerAt, fits, rep.EffUpper)
	}

	for i, m := range set.Markers {
		switch pruned[i] {
		case keptMarker:
			out.Markers = append(out.Markers, m)
			rep.KeptCost += markerCost(g, &set.Markers[i])
		case prunedDominated:
			rep.PrunedDominated++
		case prunedCoFire:
			rep.PrunedCoFire++
		case prunedCovered:
			rep.PrunedCover++
		}
	}
	rep.Kept = len(out.Markers)
	obsMinKept.Add(uint64(rep.Kept))
	obsMinPrunedDom.Add(uint64(rep.PrunedDominated))
	obsMinPrunedCoFire.Add(uint64(rep.PrunedCoFire))
	obsMinPrunedCover.Add(uint64(rep.PrunedCover))
	obsMinCostFull.Add(rep.FullCost)
	obsMinCostKept.Add(rep.KeptCost)
	return out, rep
}

// bodyKind maps a head node kind to its body kind.
func bodyKind(k NodeKind) NodeKind {
	if k == ProcHead {
		return ProcBody
	}
	return LoopBody
}

// minimizeCover runs the greedy expected-coverage pass (see
// MinimizeMarkers, pass 3) in place over pruned.
func minimizeCover(g *Graph, set *MarkerSet, dom *dominators, verts, pruned []int,
	markerAt map[int]int, fits func(int) bool, effUpper uint64) {
	type stat struct {
		idx   int
		cost  uint64  // site traversals
		mass  float64 // total profiled instructions under the marker's traversals
		cover float64 // expected cut mass the marker's firings contribute
	}
	stats := make([]stat, 0, len(set.Markers))
	byIdx := make(map[int]int, len(set.Markers)) // marker index -> stats index
	for i := range set.Markers {
		e := g.EdgeByKey(set.Markers[i].Key)
		if e == nil || verts[i] < 0 {
			continue
		}
		gn := float64(set.Markers[i].GroupN)
		fires := float64(e.Count()) / gn
		span := gn * e.Avg()
		if up := float64(effUpper); span > up {
			span = up
		}
		byIdx[i] = len(stats)
		stats = append(stats, stat{
			idx:   i,
			cost:  e.Count(),
			mass:  float64(e.Count()) * e.Avg(),
			cover: fires * span,
		})
	}
	// descendants[i] lists the markers strictly dominated by marker i.
	descendants := make(map[int][]int, len(stats))
	for j := range stats {
		i := stats[j].idx
		for _, v := range dom.ancestors(verts[i]) {
			if a, ok := markerAt[v]; ok {
				descendants[a] = append(descendants[a], i)
			}
		}
	}
	keptCount := 0
	for i := range set.Markers {
		if pruned[i] == keptMarker {
			keptCount++
		}
	}
	for keptCount > 1 {
		// Candidates: kept markers that exceed the bound themselves but
		// whose kept descendants cover their mass in expectation.
		best := -1
		for j := range stats {
			i := stats[j].idx
			if pruned[i] != keptMarker || fits(i) {
				continue
			}
			var covered float64
			any := false
			for _, d := range descendants[i] {
				if pruned[d] == keptMarker {
					covered += stats[byIdx[d]].cover
					any = true
				}
			}
			if !any || covered < stats[j].mass {
				continue
			}
			// Most expensive first; key order breaks ties deterministically.
			if best < 0 || stats[j].cost > stats[best].cost ||
				(stats[j].cost == stats[best].cost &&
					set.Markers[i].Key.String() < set.Markers[stats[best].idx].Key.String()) {
				best = j
			}
		}
		if best < 0 {
			return
		}
		pruned[stats[best].idx] = prunedCovered
		keptCount--
	}
}

// dominators is the dominator tree of the augmented call-loop graph: every
// node and every edge of the graph is a vertex (edges are split so that
// edge-level dominance — "every path from the root to X traverses edge E"
// — falls out of the standard node algorithm). Dominance in this static
// graph implies dynamic containment for the walker's traversal discipline:
// an edge can only be open while every edge dominating it is open.
type dominators struct {
	root  int
	idom  []int // immediate dominator per vertex; idom[root] == root, -1 unreachable
	depth []int // dominator-tree depth; 0 at the root, -1 unreachable
	edges map[EdgeKey]int
}

// edgeVertex returns the augmented-graph vertex of an edge, or -1 when the
// edge is not in the graph.
func (d *dominators) edgeVertex(k EdgeKey) int {
	if v, ok := d.edges[k]; ok {
		return v
	}
	return -1
}

// ancestors returns v's strict dominators, nearest first, excluding the
// root. Empty for unreachable vertices.
func (d *dominators) ancestors(v int) []int {
	var out []int
	if v < 0 || d.idom[v] < 0 {
		return out
	}
	for v = d.idom[v]; v != d.root; v = d.idom[v] {
		if v < 0 {
			break
		}
		out = append(out, v)
		if d.idom[v] == v {
			break
		}
	}
	return out
}

// newDominators computes immediate dominators over the augmented graph
// with the iterative Cooper–Harvey–Kennedy algorithm. The call-loop graph
// is small (hundreds of vertices) and may be cyclic (recursion); the
// iteration converges in a handful of passes over reverse postorder.
func newDominators(g *Graph) *dominators {
	nNodes := len(g.Nodes)
	nv := nNodes + len(g.Edges)
	nodeIdx := make(map[*Node]int, nNodes)
	for i, n := range g.Nodes {
		nodeIdx[n] = i
	}
	d := &dominators{edges: make(map[EdgeKey]int, len(g.Edges))}
	succ := make([][]int, nv)
	pred := make([][]int, nv)
	for i, e := range g.Edges {
		v := nNodes + i
		d.edges[e.Key] = v
		f, t := nodeIdx[e.From], nodeIdx[e.To]
		succ[f] = append(succ[f], v)
		succ[v] = append(succ[v], t)
		pred[v] = append(pred[v], f)
		pred[t] = append(pred[t], v)
	}
	d.root = nodeIdx[g.Root]

	// Reverse postorder from the root (iterative DFS).
	post := make([]int, 0, nv)
	state := make([]uint8, nv) // 0 unvisited, 1 on stack, 2 done
	type frame struct{ v, next int }
	stack := []frame{{d.root, 0}}
	state[d.root] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succ[f.v]) {
			w := succ[f.v][f.next]
			f.next++
			if state[w] == 0 {
				state[w] = 1
				stack = append(stack, frame{w, 0})
			}
			continue
		}
		state[f.v] = 2
		post = append(post, f.v)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, nv)
	for i := range rpoNum {
		rpoNum[i] = math.MaxInt
	}
	for i, v := range rpo {
		rpoNum[v] = i
	}

	idom := make([]int, nv)
	for i := range idom {
		idom[i] = -1
	}
	idom[d.root] = d.root
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == d.root {
				continue
			}
			newIdom := -1
			for _, p := range pred[v] {
				if idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	d.idom = idom

	d.depth = make([]int, nv)
	for i := range d.depth {
		d.depth[i] = -1
	}
	d.depth[d.root] = 0
	for _, v := range rpo {
		if v == d.root || idom[v] < 0 {
			continue
		}
		if pd := d.depth[idom[v]]; pd >= 0 {
			d.depth[v] = pd + 1
		}
	}
	return d
}
