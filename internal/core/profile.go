package core

import (
	"fmt"

	"phasemark/internal/minivm"
	"phasemark/internal/obs"
)

// Profiler accumulates a call-loop graph from an execution. Use it as the
// machine's Observer (directly or inside a MultiObserver), then read Graph.
type Profiler struct {
	*Walker
	g *Graph
}

type profileSink struct {
	g *Graph
}

func (s profileSink) EdgeOpen(EdgeKey, uint64) {}

func (s profileSink) EdgeClose(k EdgeKey, hier uint64) {
	s.g.ensureEdge(k).Hier.Add(float64(hier))
}

// NewProfiler builds a profiler (and its graph) for prog.
func NewProfiler(prog *minivm.Program) *Profiler {
	g := NewGraph(prog)
	p := &Profiler{g: g}
	p.Walker = NewWalker(prog, g.Loops, profileSink{g: g})
	return p
}

// Graph returns the call-loop graph built so far. Call Walker.Finish first
// to flush open traversals after a truncated run.
func (p *Profiler) Graph() *Graph { return p.g }

// resolveNode materializes the node for a stable key.
func (g *Graph) resolveNode(k NodeKey) *Node {
	if n, ok := g.nodes[k]; ok {
		return n
	}
	switch k.Kind {
	case RootKind:
		return g.Root
	case ProcHead:
		return g.ProcHeadNode(g.Prog.Procs[k.ID])
	case ProcBody:
		return g.ProcBodyNode(g.Prog.Procs[k.ID])
	default:
		head := g.blockByID(k.ID)
		l := g.Loops.LoopAtHead(head)
		if l == nil {
			panic(fmt.Sprintf("core: no loop headed by block %d", k.ID))
		}
		if k.Kind == LoopHead {
			return g.LoopHeadNode(l)
		}
		return g.LoopBodyNode(l)
	}
}

func (g *Graph) ensureEdge(k EdgeKey) *Edge {
	if e, ok := g.edges[k]; ok {
		return e
	}
	return g.edge(g.resolveNode(k.From), g.resolveNode(k.To), k.Site)
}

func (g *Graph) blockByID(id int) *minivm.Block {
	if id < 0 || id >= len(g.blockIdx) {
		return nil
	}
	return g.blockIdx[id]
}

var (
	obsProfiles   = obs.NewCounter("core.profile.runs")
	obsGraphNodes = obs.NewCounter("core.graph.nodes")
	obsGraphEdges = obs.NewCounter("core.graph.edges")
)

// ProfileRun compiles nothing and runs nothing fancy: it executes prog on
// args with a fresh profiler and returns the resulting call-loop graph.
// This is the "analyze the binary with ATOM" step of the paper.
func ProfileRun(prog *minivm.Program, args ...int64) (*Graph, error) {
	sp := obs.StartSpan("core.profile_run", "")
	defer sp.End()
	p := NewProfiler(prog)
	m := minivm.NewMachine(prog, p)
	if _, err := m.Run(args...); err != nil {
		return nil, fmt.Errorf("core: profiling run failed: %w", err)
	}
	if err := p.Finish(); err != nil {
		return nil, err
	}
	g := p.Graph()
	obsProfiles.Inc()
	obsGraphNodes.Add(uint64(len(g.Nodes)))
	obsGraphEdges.Add(uint64(len(g.Edges)))
	return g, nil
}
