package core

import (
	"fmt"
	"sort"

	"phasemark/internal/minivm"
)

// Instrument produces a copy of prog with `mark` instructions physically
// inserted at the marker anchors — the deployment path the paper describes
// in §5.3 ("this can be done with a binary modification tool such as OM or
// ALTO"): once markers are compiled into the binary, any runtime detects
// phase changes by watching the mark stream, with no analysis machinery in
// the loop.
//
// Anchor placement per marker kind:
//
//   - call edges (into a procedure head): a mark at the end of the call
//     site block, immediately before the call;
//   - procedure head→body edges: a mark at the top of the callee's entry
//     block (fires per activation);
//   - loop entry edges (into a loop head): every control-flow edge from
//     outside the loop's region into its head is *split* — a trampoline
//     block holding the mark is inserted on the edge — so the mark fires
//     exactly on entry, never on iteration, even for conditional entries;
//   - loop iteration edges (head→body): the head's in-region outgoing
//     edges are split the same way, firing once per iteration.
//
// Static marks are context-insensitive; for recursive procedures a
// head→body mark fires per activation where the call-loop walker counts
// only outermost episodes. GroupN counting is the mark consumer's job
// (see MarkHandler).
func Instrument(prog *minivm.Program, set *MarkerSet) (*minivm.Program, error) {
	clone := cloneProgram(prog)
	loops := minivm.FindLoops(clone)

	// Simple block insertions.
	type blockIns struct {
		block *minivm.Block
		atEnd bool
		mark  int
	}
	var blockInsert []blockIns
	// Edge splits: insert a trampoline carrying the mark on the edge
	// (fromIdx --slot--> toIdx) within proc.
	type split struct {
		proc    *minivm.Proc
		fromIdx int
		slot    int // 0=Target, 1=Else, 2=Next
		toIdx   int
		mark    int
	}
	var splits []split

	blockByID := func(id int) *minivm.Block {
		b := clone.BlockByID(id)
		if b == nil {
			panic(fmt.Sprintf("core: instrument: no block %d", id))
		}
		return b
	}
	addLoopSplits := func(mi int, head *minivm.Block, entry bool) error {
		l := loops.LoopAtHead(head)
		if l == nil {
			return fmt.Errorf("core: instrument: marker %v names a non-loop block", set.Markers[mi].Key)
		}
		n := 0
		for _, b := range l.Proc.Blocks {
			inRegion := l.Contains(b.Index)
			if entry && inRegion {
				continue // entries come from outside the region
			}
			if !entry && b != head {
				continue // iterations leave the head block
			}
			for slot, s := range termSlots(b) {
				if s == nil {
					continue
				}
				if entry && *s == head.Index {
					splits = append(splits, split{proc: l.Proc, fromIdx: b.Index, slot: slot, toIdx: head.Index, mark: mi})
					n++
				}
				if !entry && *s != head.Index && l.Contains(*s) {
					splits = append(splits, split{proc: l.Proc, fromIdx: b.Index, slot: slot, toIdx: *s, mark: mi})
					n++
				}
			}
		}
		if n == 0 {
			return fmt.Errorf("core: instrument: no anchor edges for marker %v", set.Markers[mi].Key)
		}
		return nil
	}

	for mi, m := range set.Markers {
		switch {
		case m.Key.To.Kind == LoopHead:
			if err := addLoopSplits(mi, blockByID(m.Key.To.ID), true); err != nil {
				return nil, err
			}
		case m.Key.To.Kind == LoopBody:
			if err := addLoopSplits(mi, blockByID(m.Key.To.ID), false); err != nil {
				return nil, err
			}
		case m.Key.From.Kind == ProcHead && m.Key.To.Kind == ProcBody:
			blockInsert = append(blockInsert, blockIns{block: blockByID(m.Key.Site), atEnd: false, mark: mi})
		default:
			// Call edge (including the virtual root's entry edge).
			site := blockByID(m.Key.Site)
			if site.Term.Kind == minivm.TermCall {
				blockInsert = append(blockInsert, blockIns{block: site, atEnd: true, mark: mi})
			} else {
				blockInsert = append(blockInsert, blockIns{block: site, atEnd: false, mark: mi})
			}
		}
	}

	// Apply edge splits per proc, highest insertion point first so earlier
	// indices stay valid.
	sort.SliceStable(splits, func(i, j int) bool { return splits[i].toIdx > splits[j].toIdx })
	for _, sp := range splits {
		applySplit(sp.proc, sp.fromIdx, sp.slot, sp.toIdx, sp.mark)
		// Adjust pending splits in the same proc for the index shift.
		for k := range splits {
			o := &splits[k]
			if o.proc != sp.proc {
				continue
			}
			if o.fromIdx >= sp.toIdx {
				o.fromIdx++
			}
			if o.toIdx >= sp.toIdx {
				o.toIdx++
			}
		}
	}

	for _, bi := range blockInsert {
		in := minivm.Instr{Op: minivm.OpMark, Imm: int64(bi.mark)}
		if bi.atEnd {
			bi.block.Instr = append(bi.block.Instr, in)
		} else {
			bi.block.Instr = append([]minivm.Instr{in}, bi.block.Instr...)
		}
	}

	clone.RenumberBlocks()
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("core: instrument: %w", err)
	}
	return clone, nil
}

// termSlots returns addressable control-transfer slots of a block's
// terminator, indexed 0=Target, 1=Else, 2=Next (nil where unused).
func termSlots(b *minivm.Block) [3]*int {
	switch b.Term.Kind {
	case minivm.TermJump:
		return [3]*int{&b.Term.Target, nil, nil}
	case minivm.TermBranch:
		if b.Term.Target == b.Term.Else {
			return [3]*int{&b.Term.Target, nil, nil}
		}
		return [3]*int{&b.Term.Target, &b.Term.Else, nil}
	case minivm.TermCall:
		return [3]*int{nil, nil, &b.Term.Next}
	default:
		return [3]*int{}
	}
}

// applySplit inserts a trampoline block holding mark on the edge
// from --slot--> to, placing it immediately before `to` so all branches
// keep their direction (forward edges stay forward, back edges stay back).
func applySplit(pr *minivm.Proc, fromIdx, slot, toIdx, mark int) {
	t := toIdx // trampoline position
	tramp := &minivm.Block{
		Index: t,
		Proc:  pr,
		Instr: []minivm.Instr{{Op: minivm.OpMark, Imm: int64(mark)}},
		Term:  minivm.Term{Kind: minivm.TermJump, Target: toIdx + 1},
		Line:  pr.Blocks[toIdx].Line,
		Col:   pr.Blocks[toIdx].Col,
	}
	// Shift every reference at or beyond the insertion point.
	for _, b := range pr.Blocks {
		for _, s := range termSlots(b) {
			if s != nil && *s >= t {
				*s++
			}
		}
	}
	if fromIdx >= t {
		fromIdx++
	}
	// Splice in the trampoline and retarget the split edge.
	blocks := make([]*minivm.Block, 0, len(pr.Blocks)+1)
	blocks = append(blocks, pr.Blocks[:t]...)
	blocks = append(blocks, tramp)
	blocks = append(blocks, pr.Blocks[t:]...)
	for i, b := range blocks {
		b.Index = i
	}
	pr.Blocks = blocks
	from := pr.Blocks[fromIdx]
	slots := termSlots(from)
	if slots[slot] == nil {
		panic("core: instrument: split slot vanished")
	}
	*slots[slot] = t
}

// cloneProgram deep-copies a program so instrumentation never mutates the
// analyzed binary.
func cloneProgram(p *minivm.Program) *minivm.Program {
	out := &minivm.Program{Entry: p.Entry, GlobalWords: p.GlobalWords}
	for _, pr := range p.Procs {
		np := &minivm.Proc{
			Name: pr.Name, ID: pr.ID, NumArgs: pr.NumArgs,
			NumRegs: pr.NumRegs, Line: pr.Line,
		}
		for _, b := range pr.Blocks {
			nb := &minivm.Block{
				ID: b.ID, Index: b.Index, Proc: np,
				Instr: append([]minivm.Instr(nil), b.Instr...),
				Term:  b.Term,
				Line:  b.Line, Col: b.Col,
			}
			nb.Term.Args = append([]uint8(nil), b.Term.Args...)
			np.Blocks = append(np.Blocks, nb)
		}
		out.Procs = append(out.Procs, np)
	}
	out.RenumberBlocks()
	return out
}

// MarkHandler adapts the raw mark stream of an instrumented binary into
// phase boundaries, applying each marker's GroupN (fire every N-th
// occurrence). Install Fn as the machine's MarkFunc.
type MarkHandler struct {
	set    *MarkerSet
	seen   []uint64
	fired  uint64
	onFire func(marker int)
}

// NewMarkHandler builds a handler; onFire may be nil (counting only).
func NewMarkHandler(set *MarkerSet, onFire func(marker int)) *MarkHandler {
	return &MarkHandler{set: set, seen: make([]uint64, len(set.Markers)), onFire: onFire}
}

// Fn is the minivm.Machine MarkFunc.
func (h *MarkHandler) Fn(id int64) {
	i := int(id)
	if i < 0 || i >= len(h.seen) {
		return
	}
	h.seen[i]++
	if (h.seen[i]-1)%h.set.Markers[i].GroupN == 0 {
		h.fired++
		if h.onFire != nil {
			h.onFire(i)
		}
	}
}

// Fired reports total boundary firings.
func (h *MarkHandler) Fired() uint64 { return h.fired }
