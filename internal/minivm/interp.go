package minivm

import (
	"errors"
	"fmt"

	"phasemark/internal/obs"
)

// Observer watches a program execute. It is the moral equivalent of the
// paper's ATOM instrumentation: block executions (with static weights),
// call/return edges, conditional-branch outcomes, and data memory
// references. All callbacks are synchronous with execution order.
//
// OnBlock fires when a block begins executing; its straight-line
// instructions and terminator then execute before the next event. OnCall
// fires after the caller block's OnBlock (the call terminator is the last
// instruction of that block) and before the callee's entry OnBlock.
type Observer interface {
	// OnBlock is invoked once per dynamic execution of b.
	OnBlock(b *Block)
	// OnCall is invoked when the call terminator of site transfers to callee.
	OnCall(site *Block, callee *Proc)
	// OnReturn is invoked when callee returns to its caller.
	OnReturn(callee *Proc)
	// OnBranch reports the outcome of a conditional branch ending block b.
	OnBranch(b *Block, taken bool)
	// OnMem reports a data memory reference at byte address addr.
	OnMem(addr uint64, write bool)
}

// NopObserver implements Observer with no-ops; embed it to observe only
// some events.
type NopObserver struct{}

// OnBlock implements Observer.
func (NopObserver) OnBlock(*Block) {}

// OnCall implements Observer.
func (NopObserver) OnCall(*Block, *Proc) {}

// OnReturn implements Observer.
func (NopObserver) OnReturn(*Proc) {}

// OnBranch implements Observer.
func (NopObserver) OnBranch(*Block, bool) {}

// OnMem implements Observer.
func (NopObserver) OnMem(uint64, bool) {}

// MultiObserver fans events out to several observers in order.
type MultiObserver []Observer

// OnBlock implements Observer.
func (m MultiObserver) OnBlock(b *Block) {
	for _, o := range m {
		o.OnBlock(b)
	}
}

// OnCall implements Observer.
func (m MultiObserver) OnCall(site *Block, callee *Proc) {
	for _, o := range m {
		o.OnCall(site, callee)
	}
}

// OnReturn implements Observer.
func (m MultiObserver) OnReturn(callee *Proc) {
	for _, o := range m {
		o.OnReturn(callee)
	}
}

// OnBranch implements Observer.
func (m MultiObserver) OnBranch(b *Block, taken bool) {
	for _, o := range m {
		o.OnBranch(b, taken)
	}
}

// OnMem implements Observer.
func (m MultiObserver) OnMem(addr uint64, write bool) {
	for _, o := range m {
		o.OnMem(addr, write)
	}
}

// Runtime errors surfaced by the interpreter.
var (
	ErrDivByZero     = errors.New("minivm: division by zero")
	ErrMemFault      = errors.New("minivm: memory access out of range")
	ErrStackOverflow = errors.New("minivm: call stack overflow")
	ErrInstrLimit    = errors.New("minivm: instruction limit exceeded")
)

// WordBytes is the byte size of one memory word; OnMem addresses are word
// addresses scaled by WordBytes so cache simulators see byte addresses.
const WordBytes = 8

// DefaultMaxInstrs bounds runaway executions (inputs are sized well below
// this in practice).
const DefaultMaxInstrs = 2_000_000_000

// DefaultMaxDepth bounds the call stack.
const DefaultMaxDepth = 100_000

// Execution metrics, aggregated across every machine in the process. The
// interpreter counts events in plain per-machine fields (the inner loop is
// single-goroutine) and flushes the deltas once per Run, so the hot loop
// pays no atomic operations.
var (
	obsRuns     = obs.NewCounter("minivm.runs")
	obsInstrs   = obs.NewCounter("minivm.instructions")
	obsBranches = obs.NewCounter("minivm.branches")
	obsCalls    = obs.NewCounter("minivm.calls")
	obsMemRefs  = obs.NewCounter("minivm.mem_refs")
	obsMarks    = obs.NewCounter("minivm.marker_fires")
	obsRunLen   = obs.NewHist("minivm.run_instructions")
)

// Machine executes a validated Program. The zero value is not usable; use
// NewMachine.
type Machine struct {
	prog      *Program
	mem       []int64
	obs       Observer
	out       []int64
	instrs    uint64
	branches  uint64
	calls     uint64
	memRefs   uint64
	marks     uint64
	flushed   [5]uint64 // instrs/branches/calls/memRefs/marks already flushed
	MaxInstrs uint64
	MaxDepth  int
	// MarkFunc, when set, receives the ID of every OpMark instruction
	// executed — the runtime hook behind statically inserted phase
	// markers (core.Instrument).
	MarkFunc func(id int64)
}

// NewMachine builds a machine for prog reporting to obs (nil for none).
func NewMachine(prog *Program, obs Observer) *Machine {
	if obs == nil {
		obs = NopObserver{}
	}
	return &Machine{
		prog:      prog,
		mem:       make([]int64, prog.GlobalWords),
		obs:       obs,
		MaxInstrs: DefaultMaxInstrs,
		MaxDepth:  DefaultMaxDepth,
	}
}

// Instructions reports the number of dynamic instructions executed so far
// (block weights summed over executed blocks).
func (m *Machine) Instructions() uint64 { return m.instrs }

// Branches reports the number of conditional branches executed so far.
func (m *Machine) Branches() uint64 { return m.branches }

// Calls reports the number of procedure calls executed so far.
func (m *Machine) Calls() uint64 { return m.calls }

// MemRefs reports the number of data memory references executed so far.
func (m *Machine) MemRefs() uint64 { return m.memRefs }

// flushObs folds the counts accumulated since the previous flush into the
// process-wide metrics. Run defers it, so truncated (errored) executions
// are still accounted.
func (m *Machine) flushObs() {
	obsRuns.Inc()
	obsRunLen.Observe(m.instrs - m.flushed[0])
	obsInstrs.Add(m.instrs - m.flushed[0])
	obsBranches.Add(m.branches - m.flushed[1])
	obsCalls.Add(m.calls - m.flushed[2])
	obsMemRefs.Add(m.memRefs - m.flushed[3])
	obsMarks.Add(m.marks - m.flushed[4])
	m.flushed = [5]uint64{m.instrs, m.branches, m.calls, m.memRefs, m.marks}
}

// Output returns the values emitted by OpOut, in order.
func (m *Machine) Output() []int64 { return m.out }

// Mem exposes the data memory (for tests).
func (m *Machine) Mem() []int64 { return m.mem }

type frame struct {
	proc   *Proc
	regs   []int64
	retBlk int   // caller block index to resume at
	retReg uint8 // caller register receiving the return value
}

// Run executes the program's entry procedure with the given arguments
// (copied into the entry proc's first registers). It returns the entry
// procedure's return value (0 if it halts without returning).
func (m *Machine) Run(args ...int64) (int64, error) {
	entry := m.prog.EntryProc()
	if len(args) != entry.NumArgs {
		return 0, fmt.Errorf("minivm: entry %q wants %d args, got %d",
			entry.Name, entry.NumArgs, len(args))
	}
	defer m.flushObs()
	regs := make([]int64, entry.NumRegs)
	copy(regs, args)
	stack := []frame{{proc: entry, regs: regs}}
	fr := &stack[0]
	bi := 0

	for {
		b := fr.proc.Blocks[bi]
		m.obs.OnBlock(b)
		m.instrs += uint64(b.Weight())
		if m.instrs > m.MaxInstrs {
			return 0, fmt.Errorf("%w (limit %d)", ErrInstrLimit, m.MaxInstrs)
		}
		regs := fr.regs
		for _, in := range b.Instr {
			switch in.Op {
			case OpNop:
			case OpConst:
				regs[in.A] = in.Imm
			case OpMov:
				regs[in.A] = regs[in.B]
			case OpAdd:
				regs[in.A] = regs[in.B] + regs[in.C]
			case OpSub:
				regs[in.A] = regs[in.B] - regs[in.C]
			case OpMul:
				regs[in.A] = regs[in.B] * regs[in.C]
			case OpDiv:
				if regs[in.C] == 0 {
					return 0, fmt.Errorf("%w in %s b%d", ErrDivByZero, fr.proc.Name, b.Index)
				}
				regs[in.A] = regs[in.B] / regs[in.C]
			case OpMod:
				if regs[in.C] == 0 {
					return 0, fmt.Errorf("%w in %s b%d", ErrDivByZero, fr.proc.Name, b.Index)
				}
				regs[in.A] = regs[in.B] % regs[in.C]
			case OpAnd:
				regs[in.A] = regs[in.B] & regs[in.C]
			case OpOr:
				regs[in.A] = regs[in.B] | regs[in.C]
			case OpXor:
				regs[in.A] = regs[in.B] ^ regs[in.C]
			case OpShl:
				regs[in.A] = regs[in.B] << (uint64(regs[in.C]) & 63)
			case OpShr:
				regs[in.A] = int64(uint64(regs[in.B]) >> (uint64(regs[in.C]) & 63))
			case OpNeg:
				regs[in.A] = -regs[in.B]
			case OpNot:
				regs[in.A] = ^regs[in.B]
			case OpAddI:
				regs[in.A] = regs[in.B] + in.Imm
			case OpMulI:
				regs[in.A] = regs[in.B] * in.Imm
			case OpLoad:
				addr := regs[in.B] + in.Imm
				if addr < 0 || addr >= int64(len(m.mem)) {
					return 0, fmt.Errorf("%w: load word %d in %s b%d", ErrMemFault, addr, fr.proc.Name, b.Index)
				}
				m.memRefs++
				m.obs.OnMem(uint64(addr)*WordBytes, false)
				regs[in.A] = m.mem[addr]
			case OpStore:
				addr := regs[in.B] + in.Imm
				if addr < 0 || addr >= int64(len(m.mem)) {
					return 0, fmt.Errorf("%w: store word %d in %s b%d", ErrMemFault, addr, fr.proc.Name, b.Index)
				}
				m.memRefs++
				m.obs.OnMem(uint64(addr)*WordBytes, true)
				m.mem[addr] = regs[in.A]
			case OpOut:
				m.out = append(m.out, regs[in.A])
			case OpMark:
				m.marks++
				if m.MarkFunc != nil {
					m.MarkFunc(in.Imm)
				}
			}
		}

		t := &b.Term
		switch t.Kind {
		case TermJump:
			bi = t.Target
		case TermBranch:
			m.branches++
			taken := t.Cond.Eval(regs[t.A], regs[t.B])
			m.obs.OnBranch(b, taken)
			if taken {
				bi = t.Target
			} else {
				bi = t.Else
			}
		case TermCall:
			m.calls++
			if len(stack) >= m.MaxDepth {
				return 0, ErrStackOverflow
			}
			callee := m.prog.Procs[t.Callee]
			nregs := make([]int64, callee.NumRegs)
			for i, a := range t.Args {
				nregs[i] = regs[a]
			}
			m.obs.OnCall(b, callee)
			stack = append(stack, frame{
				proc:   callee,
				regs:   nregs,
				retBlk: t.Next,
				retReg: t.Ret,
			})
			fr = &stack[len(stack)-1]
			bi = 0
		case TermRet:
			rv := regs[t.Ret]
			m.obs.OnReturn(fr.proc)
			if len(stack) == 1 {
				return rv, nil
			}
			retBlk, retReg := fr.retBlk, fr.retReg
			stack = stack[:len(stack)-1]
			fr = &stack[len(stack)-1]
			fr.regs[retReg] = rv
			bi = retBlk
		case TermHalt:
			// Unwind observers for any active frames so profilers see a
			// balanced call/return stream.
			for i := len(stack) - 1; i >= 0; i-- {
				m.obs.OnReturn(stack[i].proc)
			}
			return 0, nil
		}
	}
}
