package minivm

import (
	"errors"
	"fmt"

	"phasemark/internal/obs"
)

// Observer watches a program execute. It is the moral equivalent of the
// paper's ATOM instrumentation: block executions (with static weights),
// call/return edges, conditional-branch outcomes, and data memory
// references. All callbacks are synchronous with execution order.
//
// OnBlock fires when a block begins executing; its straight-line
// instructions and terminator then execute before the next event. OnCall
// fires after the caller block's OnBlock (the call terminator is the last
// instruction of that block) and before the callee's entry OnBlock.
type Observer interface {
	// OnBlock is invoked once per dynamic execution of b.
	OnBlock(b *Block)
	// OnCall is invoked when the call terminator of site transfers to callee.
	OnCall(site *Block, callee *Proc)
	// OnReturn is invoked when callee returns to its caller.
	OnReturn(callee *Proc)
	// OnBranch reports the outcome of a conditional branch ending block b.
	OnBranch(b *Block, taken bool)
	// OnMem reports a data memory reference at byte address addr.
	OnMem(addr uint64, write bool)
}

// EventMask is a bit set of the Observer callbacks an observer consumes.
type EventMask uint8

// The observable event kinds.
const (
	EvBlock EventMask = 1 << iota
	EvCall
	EvReturn
	EvBranch
	EvMem

	// EvAll is every event — the conservative default for observers that
	// do not declare a mask.
	EvAll = EvBlock | EvCall | EvReturn | EvBranch | EvMem
)

// EventMasker is optionally implemented by Observers to declare which
// events they actually consume. The machine builds one dispatch list per
// event kind from the masks, so an event nobody consumes costs no observer
// call at all (the paper's §4 concern: instrumentation overhead on events
// the analysis never reads). Observers without the method receive every
// event, exactly as before the masks existed.
//
// The mask must be a static property of the observer: the machine reads it
// once at construction.
type EventMasker interface {
	ObservedEvents() EventMask
}

// MaskOf reports the events o consumes: its declared mask, or EvAll when
// it does not implement EventMasker (nil observers consume nothing).
func MaskOf(o Observer) EventMask {
	if o == nil {
		return 0
	}
	if em, ok := o.(EventMasker); ok {
		return em.ObservedEvents()
	}
	return EvAll
}

// NopObserver implements Observer with no-ops; embed it to observe only
// some events. It deliberately does NOT implement EventMasker: an embedder
// overriding OnBlock alone must still receive OnBlock, so the conservative
// EvAll default applies unless the embedder declares its own mask.
type NopObserver struct{}

// OnBlock implements Observer.
func (NopObserver) OnBlock(*Block) {}

// OnCall implements Observer.
func (NopObserver) OnCall(*Block, *Proc) {}

// OnReturn implements Observer.
func (NopObserver) OnReturn(*Proc) {}

// OnBranch implements Observer.
func (NopObserver) OnBranch(*Block, bool) {}

// OnMem implements Observer.
func (NopObserver) OnMem(uint64, bool) {}

// MultiObserver fans events out to several observers in order. The machine
// flattens it at construction into per-event dispatch lists, so nesting
// MultiObservers or including no-op observers costs nothing at run time;
// calling its methods directly (outside a Machine) fans out dynamically.
type MultiObserver []Observer

// ObservedEvents implements EventMasker as the union of the members'
// masks.
func (m MultiObserver) ObservedEvents() EventMask {
	var ev EventMask
	for _, o := range m {
		ev |= MaskOf(o)
	}
	return ev
}

// OnBlock implements Observer.
func (m MultiObserver) OnBlock(b *Block) {
	for _, o := range m {
		o.OnBlock(b)
	}
}

// OnCall implements Observer.
func (m MultiObserver) OnCall(site *Block, callee *Proc) {
	for _, o := range m {
		o.OnCall(site, callee)
	}
}

// OnReturn implements Observer.
func (m MultiObserver) OnReturn(callee *Proc) {
	for _, o := range m {
		o.OnReturn(callee)
	}
}

// OnBranch implements Observer.
func (m MultiObserver) OnBranch(b *Block, taken bool) {
	for _, o := range m {
		o.OnBranch(b, taken)
	}
}

// OnMem implements Observer.
func (m MultiObserver) OnMem(addr uint64, write bool) {
	for _, o := range m {
		o.OnMem(addr, write)
	}
}

// maskedObserver pairs an observer with an overriding event mask (see
// Masked).
type maskedObserver struct {
	Observer
	mask EventMask
}

// ObservedEvents implements EventMasker with the overriding mask.
func (mo maskedObserver) ObservedEvents() EventMask { return mo.mask }

// Masked restricts o to the given events (intersected with o's own mask).
// Use it when a composite pipeline handles some of an observer's events
// through another path — e.g. folding its block accounting into a fused
// observer — and the machine must not also dispatch those events to o
// directly. NewMachine unwraps the wrapper when building its dispatch
// lists, so masking costs nothing per event.
func Masked(o Observer, mask EventMask) Observer {
	return maskedObserver{Observer: o, mask: mask & MaskOf(o)}
}

// sink is the per-event dispatch list: the common shapes (no observer for
// the event, exactly one) are dedicated fields so the hot loop pays one
// nil check and a direct interface call instead of ranging over a slice;
// two or more observers fall back to the slice.
type sink struct {
	one  Observer   // set iff exactly one observer consumes the event
	many []Observer // set iff two or more do
}

func (s *sink) set(obs []Observer) {
	switch len(obs) {
	case 0:
	case 1:
		s.one = obs[0]
	default:
		s.many = obs
	}
}

// flattenObservers expands nested MultiObservers into a flat ordered list,
// dropping observers whose mask is empty.
func flattenObservers(o Observer, out []Observer) []Observer {
	if o == nil {
		return out
	}
	if m, ok := o.(MultiObserver); ok {
		for _, sub := range m {
			out = flattenObservers(sub, out)
		}
		return out
	}
	if MaskOf(o) == 0 {
		return out
	}
	return append(out, o)
}

// Runtime errors surfaced by the interpreter.
var (
	ErrDivByZero     = errors.New("minivm: division by zero")
	ErrMemFault      = errors.New("minivm: memory access out of range")
	ErrStackOverflow = errors.New("minivm: call stack overflow")
	ErrInstrLimit    = errors.New("minivm: instruction limit exceeded")
)

// WordBytes is the byte size of one memory word; OnMem addresses are word
// addresses scaled by WordBytes so cache simulators see byte addresses.
const WordBytes = 8

// DefaultMaxInstrs bounds runaway executions (inputs are sized well below
// this in practice).
const DefaultMaxInstrs = 2_000_000_000

// DefaultMaxDepth bounds the call stack.
const DefaultMaxDepth = 100_000

// Execution metrics, aggregated across every machine in the process. The
// interpreter counts events in plain per-machine fields (the inner loop is
// single-goroutine) and flushes the deltas once per Run, so the hot loop
// pays no atomic operations.
var (
	obsRuns     = obs.NewCounter("minivm.runs")
	obsInstrs   = obs.NewCounter("minivm.instructions")
	obsBranches = obs.NewCounter("minivm.branches")
	obsCalls    = obs.NewCounter("minivm.calls")
	obsMemRefs  = obs.NewCounter("minivm.mem_refs")
	obsMarks    = obs.NewCounter("minivm.marker_fires")
	obsRunLen   = obs.NewHist("minivm.run_instructions")
)

// Machine executes a validated Program. The zero value is not usable; use
// NewMachine.
type Machine struct {
	prog *Program
	mem  []int64

	// Per-event observer dispatch, built once from the observer passed to
	// NewMachine (see EventMasker). An empty sink means the event is not
	// emitted at all.
	onBlock  sink
	onCall   sink
	onRet    sink
	onBranch sink
	onMem    sink

	// regs is the register arena: each frame owns the window
	// [frame.base, frame.base+frame.nregs). Calls extend it and returns
	// truncate it, so the steady state allocates nothing.
	regs   []int64
	frames []frame

	out       []int64
	instrs    uint64
	branches  uint64
	calls     uint64
	memRefs   uint64
	marks     uint64
	flushed   [5]uint64 // instrs/branches/calls/memRefs/marks already flushed
	MaxInstrs uint64
	MaxDepth  int
	// MarkFunc, when set, receives the ID of every OpMark instruction
	// executed — the runtime hook behind statically inserted phase
	// markers (core.Instrument).
	MarkFunc func(id int64)
}

// NewMachine builds a machine for prog reporting to observer (nil for
// none). The observer's per-event dispatch is resolved here, once: nested
// MultiObservers are flattened and every event kind gets its own direct
// call list, filtered by the observers' EventMasks.
func NewMachine(prog *Program, observer Observer) *Machine {
	m := &Machine{
		prog:      prog,
		mem:       make([]int64, prog.GlobalWords),
		MaxInstrs: DefaultMaxInstrs,
		MaxDepth:  DefaultMaxDepth,
	}
	flat := flattenObservers(observer, nil)
	var block, call, ret, branch, mem []Observer
	for _, o := range flat {
		ev := MaskOf(o)
		if mo, ok := o.(maskedObserver); ok {
			o = mo.Observer // dispatch straight to the wrapped observer
		}
		if ev&EvBlock != 0 {
			block = append(block, o)
		}
		if ev&EvCall != 0 {
			call = append(call, o)
		}
		if ev&EvReturn != 0 {
			ret = append(ret, o)
		}
		if ev&EvBranch != 0 {
			branch = append(branch, o)
		}
		if ev&EvMem != 0 {
			mem = append(mem, o)
		}
	}
	m.onBlock.set(block)
	m.onCall.set(call)
	m.onRet.set(ret)
	m.onBranch.set(branch)
	m.onMem.set(mem)
	return m
}

// Instructions reports the number of dynamic instructions executed so far
// (block weights summed over executed blocks).
func (m *Machine) Instructions() uint64 { return m.instrs }

// Branches reports the number of conditional branches executed so far.
func (m *Machine) Branches() uint64 { return m.branches }

// Calls reports the number of procedure calls executed so far.
func (m *Machine) Calls() uint64 { return m.calls }

// MemRefs reports the number of data memory references executed so far.
func (m *Machine) MemRefs() uint64 { return m.memRefs }

// flushObs folds the counts accumulated since the previous flush into the
// process-wide metrics. Run defers it, so truncated (errored) executions
// are still accounted.
func (m *Machine) flushObs() {
	obsRuns.Inc()
	obsRunLen.Observe(m.instrs - m.flushed[0])
	obsInstrs.Add(m.instrs - m.flushed[0])
	obsBranches.Add(m.branches - m.flushed[1])
	obsCalls.Add(m.calls - m.flushed[2])
	obsMemRefs.Add(m.memRefs - m.flushed[3])
	obsMarks.Add(m.marks - m.flushed[4])
	m.flushed = [5]uint64{m.instrs, m.branches, m.calls, m.memRefs, m.marks}
}

// Output returns the values emitted by OpOut, in order.
func (m *Machine) Output() []int64 { return m.out }

// Mem exposes the data memory (for tests).
func (m *Machine) Mem() []int64 { return m.mem }

// Reset returns the machine to its pre-Run state — data memory zeroed,
// output truncated, event counters cleared — while keeping every allocated
// buffer (memory image, register arena, frame stack, output capacity), so
// a warmed machine re-runs the program without heap allocations. Observer
// state is NOT touched: callers reusing stateful observers across runs
// must reset those separately. Must not be called while Run is executing.
func (m *Machine) Reset() {
	clear(m.mem)
	m.out = m.out[:0]
	m.instrs, m.branches, m.calls, m.memRefs, m.marks = 0, 0, 0, 0, 0
	m.flushed = [5]uint64{}
}

type frame struct {
	proc   *Proc
	base   int   // register window start in Machine.regs
	nregs  int   // register window length
	retBlk int   // caller block index to resume at
	retReg uint8 // caller register receiving the return value
}

// growZero extends s by n zeroed elements, reusing capacity when it can.
func growZero(s []int64, n int) []int64 {
	l := len(s)
	if l+n <= cap(s) {
		s = s[: l+n : cap(s)]
		clear(s[l:])
		return s
	}
	ns := make([]int64, l+n, 2*(l+n)+64)
	copy(ns, s)
	return ns
}

// Run executes the program's entry procedure with the given arguments
// (copied into the entry proc's first registers). It returns the entry
// procedure's return value (0 if it halts without returning).
//
// The hot loop emits observer events through the per-event sinks resolved
// in NewMachine: no event nobody consumes is dispatched, a single consumer
// is called directly, and only genuinely shared events range over a list.
func (m *Machine) Run(args ...int64) (int64, error) {
	entry := m.prog.EntryProc()
	if len(args) != entry.NumArgs {
		return 0, fmt.Errorf("minivm: entry %q wants %d args, got %d",
			entry.Name, entry.NumArgs, len(args))
	}
	defer m.flushObs()
	m.regs = growZero(m.regs[:0], entry.NumRegs)
	copy(m.regs, args)
	m.frames = append(m.frames[:0], frame{proc: entry, nregs: entry.NumRegs})
	fr := &m.frames[0]
	bi := 0

	for {
		b := fr.proc.Blocks[bi]
		if o := m.onBlock.one; o != nil {
			o.OnBlock(b)
		} else if m.onBlock.many != nil {
			for _, o := range m.onBlock.many {
				o.OnBlock(b)
			}
		}
		m.instrs += uint64(b.Weight())
		if m.instrs > m.MaxInstrs {
			return 0, fmt.Errorf("%w (limit %d)", ErrInstrLimit, m.MaxInstrs)
		}
		regs := m.regs[fr.base : fr.base+fr.nregs]
		for _, in := range b.Instr {
			switch in.Op {
			case OpNop:
			case OpConst:
				regs[in.A] = in.Imm
			case OpMov:
				regs[in.A] = regs[in.B]
			case OpAdd:
				regs[in.A] = regs[in.B] + regs[in.C]
			case OpSub:
				regs[in.A] = regs[in.B] - regs[in.C]
			case OpMul:
				regs[in.A] = regs[in.B] * regs[in.C]
			case OpDiv:
				if regs[in.C] == 0 {
					return 0, fmt.Errorf("%w in %s b%d", ErrDivByZero, fr.proc.Name, b.Index)
				}
				regs[in.A] = regs[in.B] / regs[in.C]
			case OpMod:
				if regs[in.C] == 0 {
					return 0, fmt.Errorf("%w in %s b%d", ErrDivByZero, fr.proc.Name, b.Index)
				}
				regs[in.A] = regs[in.B] % regs[in.C]
			case OpAnd:
				regs[in.A] = regs[in.B] & regs[in.C]
			case OpOr:
				regs[in.A] = regs[in.B] | regs[in.C]
			case OpXor:
				regs[in.A] = regs[in.B] ^ regs[in.C]
			case OpShl:
				regs[in.A] = regs[in.B] << (uint64(regs[in.C]) & 63)
			case OpShr:
				regs[in.A] = int64(uint64(regs[in.B]) >> (uint64(regs[in.C]) & 63))
			case OpNeg:
				regs[in.A] = -regs[in.B]
			case OpNot:
				regs[in.A] = ^regs[in.B]
			case OpAddI:
				regs[in.A] = regs[in.B] + in.Imm
			case OpMulI:
				regs[in.A] = regs[in.B] * in.Imm
			case OpLoad:
				addr := regs[in.B] + in.Imm
				if addr < 0 || addr >= int64(len(m.mem)) {
					return 0, fmt.Errorf("%w: load word %d in %s b%d", ErrMemFault, addr, fr.proc.Name, b.Index)
				}
				m.memRefs++
				if o := m.onMem.one; o != nil {
					o.OnMem(uint64(addr)*WordBytes, false)
				} else if m.onMem.many != nil {
					for _, o := range m.onMem.many {
						o.OnMem(uint64(addr)*WordBytes, false)
					}
				}
				regs[in.A] = m.mem[addr]
			case OpStore:
				addr := regs[in.B] + in.Imm
				if addr < 0 || addr >= int64(len(m.mem)) {
					return 0, fmt.Errorf("%w: store word %d in %s b%d", ErrMemFault, addr, fr.proc.Name, b.Index)
				}
				m.memRefs++
				if o := m.onMem.one; o != nil {
					o.OnMem(uint64(addr)*WordBytes, true)
				} else if m.onMem.many != nil {
					for _, o := range m.onMem.many {
						o.OnMem(uint64(addr)*WordBytes, true)
					}
				}
				m.mem[addr] = regs[in.A]
			case OpOut:
				m.out = append(m.out, regs[in.A])
			case OpMark:
				m.marks++
				if m.MarkFunc != nil {
					m.MarkFunc(in.Imm)
				}
			}
		}

		t := &b.Term
		switch t.Kind {
		case TermJump:
			bi = t.Target
		case TermBranch:
			m.branches++
			taken := t.Cond.Eval(regs[t.A], regs[t.B])
			if o := m.onBranch.one; o != nil {
				o.OnBranch(b, taken)
			} else if m.onBranch.many != nil {
				for _, o := range m.onBranch.many {
					o.OnBranch(b, taken)
				}
			}
			if taken {
				bi = t.Target
			} else {
				bi = t.Else
			}
		case TermCall:
			m.calls++
			if len(m.frames) >= m.MaxDepth {
				return 0, ErrStackOverflow
			}
			callee := m.prog.Procs[t.Callee]
			base := len(m.regs)
			m.regs = growZero(m.regs, callee.NumRegs)
			// regs may have been reallocated by the grow: re-derive the
			// caller window from the arena before copying arguments.
			caller := m.regs[fr.base : fr.base+fr.nregs]
			for i, a := range t.Args {
				m.regs[base+i] = caller[a]
			}
			if o := m.onCall.one; o != nil {
				o.OnCall(b, callee)
			} else if m.onCall.many != nil {
				for _, o := range m.onCall.many {
					o.OnCall(b, callee)
				}
			}
			m.frames = append(m.frames, frame{
				proc:   callee,
				base:   base,
				nregs:  callee.NumRegs,
				retBlk: t.Next,
				retReg: t.Ret,
			})
			fr = &m.frames[len(m.frames)-1]
			bi = 0
		case TermRet:
			rv := regs[t.Ret]
			if o := m.onRet.one; o != nil {
				o.OnReturn(fr.proc)
			} else if m.onRet.many != nil {
				for _, o := range m.onRet.many {
					o.OnReturn(fr.proc)
				}
			}
			if len(m.frames) == 1 {
				return rv, nil
			}
			retBlk, retReg := fr.retBlk, fr.retReg
			m.regs = m.regs[:fr.base]
			m.frames = m.frames[:len(m.frames)-1]
			fr = &m.frames[len(m.frames)-1]
			m.regs[fr.base+int(retReg)] = rv
			bi = retBlk
		case TermHalt:
			// Unwind observers for any active frames so profilers see a
			// balanced call/return stream.
			if m.onRet.one != nil || m.onRet.many != nil {
				for i := len(m.frames) - 1; i >= 0; i-- {
					if o := m.onRet.one; o != nil {
						o.OnReturn(m.frames[i].proc)
					} else {
						for _, o := range m.onRet.many {
							o.OnReturn(m.frames[i].proc)
						}
					}
				}
			}
			return 0, nil
		}
	}
}
