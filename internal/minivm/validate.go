package minivm

import "fmt"

// Validate checks structural well-formedness of the program: entry and
// block/register/procedure indices in range, argument counts consistent,
// and terminators present. Compilers call it after codegen and after every
// optimization pass; the interpreter assumes a validated program.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Procs) {
		return fmt.Errorf("entry proc index %d out of range", p.Entry)
	}
	if p.EntryProc() == nil {
		return fmt.Errorf("nil entry proc")
	}
	if p.GlobalWords < 0 {
		return fmt.Errorf("negative global memory size %d", p.GlobalWords)
	}
	seen := make(map[int]bool, p.NumBlocks)
	for pi, pr := range p.Procs {
		if pr == nil {
			return fmt.Errorf("proc %d is nil", pi)
		}
		if pr.ID != pi {
			return fmt.Errorf("proc %q: ID %d != index %d", pr.Name, pr.ID, pi)
		}
		if pr.NumRegs <= 0 || pr.NumRegs > NumRegsMax {
			return fmt.Errorf("proc %q: NumRegs %d out of range (1..%d)", pr.Name, pr.NumRegs, NumRegsMax)
		}
		if pr.NumArgs < 0 || pr.NumArgs > pr.NumRegs {
			return fmt.Errorf("proc %q: NumArgs %d out of range", pr.Name, pr.NumArgs)
		}
		if len(pr.Blocks) == 0 {
			return fmt.Errorf("proc %q: no blocks", pr.Name)
		}
		for bi, b := range pr.Blocks {
			if err := p.validateBlock(pr, bi, b, seen); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateBlock(pr *Proc, bi int, b *Block, seen map[int]bool) error {
	where := fmt.Sprintf("proc %q block %d", pr.Name, bi)
	if b == nil {
		return fmt.Errorf("%s: nil block", where)
	}
	if b.Index != bi {
		return fmt.Errorf("%s: Index %d != position %d", where, b.Index, bi)
	}
	if b.Proc != pr {
		return fmt.Errorf("%s: Proc back-pointer wrong", where)
	}
	if b.ID < 0 || b.ID >= p.NumBlocks {
		return fmt.Errorf("%s: global ID %d out of range [0,%d)", where, b.ID, p.NumBlocks)
	}
	if seen[b.ID] {
		return fmt.Errorf("%s: duplicate global block ID %d", where, b.ID)
	}
	seen[b.ID] = true
	reg := func(r uint8) error {
		if int(r) >= pr.NumRegs {
			return fmt.Errorf("%s: register r%d out of range (NumRegs=%d)", where, r, pr.NumRegs)
		}
		return nil
	}
	for ii, in := range b.Instr {
		if in.Op >= opMax {
			return fmt.Errorf("%s instr %d: bad opcode %d", where, ii, in.Op)
		}
		switch in.Op {
		case OpNop, OpMark:
		case OpConst:
			if err := reg(in.A); err != nil {
				return err
			}
		case OpMov, OpNeg, OpNot, OpAddI, OpMulI, OpLoad:
			if err := reg(in.A); err != nil {
				return err
			}
			if err := reg(in.B); err != nil {
				return err
			}
		case OpStore:
			if err := reg(in.A); err != nil {
				return err
			}
			if err := reg(in.B); err != nil {
				return err
			}
		case OpOut:
			if err := reg(in.A); err != nil {
				return err
			}
		default: // three-address arithmetic
			if err := reg(in.A); err != nil {
				return err
			}
			if err := reg(in.B); err != nil {
				return err
			}
			if err := reg(in.C); err != nil {
				return err
			}
		}
	}
	blk := func(idx int, what string) error {
		if idx < 0 || idx >= len(pr.Blocks) {
			return fmt.Errorf("%s: %s block index %d out of range", where, what, idx)
		}
		return nil
	}
	t := b.Term
	switch t.Kind {
	case TermJump:
		return blk(t.Target, "jump target")
	case TermBranch:
		if err := reg(t.A); err != nil {
			return err
		}
		if err := reg(t.B); err != nil {
			return err
		}
		if err := blk(t.Target, "branch target"); err != nil {
			return err
		}
		return blk(t.Else, "branch else")
	case TermCall:
		if t.Callee < 0 || t.Callee >= len(p.Procs) {
			return fmt.Errorf("%s: call to bad proc index %d", where, t.Callee)
		}
		callee := p.Procs[t.Callee]
		if len(t.Args) != callee.NumArgs {
			return fmt.Errorf("%s: call to %q with %d args, want %d",
				where, callee.Name, len(t.Args), callee.NumArgs)
		}
		for _, a := range t.Args {
			if err := reg(a); err != nil {
				return err
			}
		}
		if err := reg(t.Ret); err != nil {
			return err
		}
		return blk(t.Next, "call continuation")
	case TermRet:
		return reg(t.Ret)
	case TermHalt:
		return nil
	default:
		return fmt.Errorf("%s: bad terminator kind %d", where, t.Kind)
	}
}
