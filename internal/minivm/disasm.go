package minivm

import (
	"fmt"
	"strings"
)

// String renders the instruction in assembly form.
func (in Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpConst:
		return fmt.Sprintf("const r%d, %d", in.A, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.A, in.B)
	case OpNeg, OpNot:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.A, in.B)
	case OpAddI, OpMulI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load r%d, [r%d+%d]", in.A, in.B, in.Imm)
	case OpStore:
		return fmt.Sprintf("store [r%d+%d], r%d", in.B, in.Imm, in.A)
	case OpOut:
		return fmt.Sprintf("out r%d", in.A)
	case OpMark:
		return fmt.Sprintf("mark %d", in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	}
}

// String renders the terminator in assembly form.
func (t Term) String() string {
	switch t.Kind {
	case TermJump:
		return fmt.Sprintf("jump b%d", t.Target)
	case TermBranch:
		return fmt.Sprintf("br r%d %s r%d, b%d, b%d", t.A, t.Cond, t.B, t.Target, t.Else)
	case TermCall:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("call r%d, p%d(%s), b%d", t.Ret, t.Callee, strings.Join(args, ", "), t.Next)
	case TermRet:
		return fmt.Sprintf("ret r%d", t.Ret)
	default:
		return "halt"
	}
}

// Disasm renders the block with its global ID, line info and terminator.
func (b *Block) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  b%d (#%d, line %d):\n", b.Index, b.ID, b.Line)
	for _, in := range b.Instr {
		fmt.Fprintf(&sb, "    %s\n", in)
	}
	fmt.Fprintf(&sb, "    %s\n", b.Term)
	return sb.String()
}

// Disasm renders the whole procedure.
func (pr *Proc) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc %s (args=%d regs=%d):\n", pr.Name, pr.NumArgs, pr.NumRegs)
	for _, b := range pr.Blocks {
		sb.WriteString(b.Disasm())
	}
	return sb.String()
}

// Disasm renders the whole program, procedure by procedure.
func (p *Program) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program: entry=%s globals=%d words, %d blocks\n",
		p.EntryProc().Name, p.GlobalWords, p.NumBlocks)
	for _, pr := range p.Procs {
		sb.WriteString(pr.Disasm())
	}
	return sb.String()
}
