package minivm

import (
	"fmt"
	"strconv"
	"strings"
)

// Textual assembly for minivm programs ("clasm"). Programs round-trip
// through Print and ParseAsm exactly, so analysis inputs (the "binaries")
// can be stored on disk, diffed, and reloaded by the CLI tools.
//
// Format:
//
//	program entry=main globals=128
//
//	proc main args=1 regs=5 line=3 {
//	b0: line=4 col=2
//	  const r1, 0
//	  jump b1
//	b1: line=5
//	  br r2 < r0, b2, b3
//	b2: line=5
//	  call r3, work(r1, r2), b3 line=6 col=9
//	b3: line=7
//	  ret r1
//	}

// Print renders the whole program in parseable assembly.
func Print(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program entry=%s globals=%d\n", p.EntryProc().Name, p.GlobalWords)
	for _, pr := range p.Procs {
		fmt.Fprintf(&sb, "\nproc %s args=%d regs=%d line=%d {\n",
			pr.Name, pr.NumArgs, pr.NumRegs, pr.Line)
		for _, b := range pr.Blocks {
			fmt.Fprintf(&sb, "b%d: line=%d col=%d\n", b.Index, b.Line, b.Col)
			for _, in := range b.Instr {
				fmt.Fprintf(&sb, "  %s\n", in)
			}
			sb.WriteString("  " + printTerm(p, b.Term) + "\n")
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func printTerm(p *Program, t Term) string {
	switch t.Kind {
	case TermCall:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("call r%d, %s(%s), b%d line=%d col=%d",
			t.Ret, p.Procs[t.Callee].Name, strings.Join(args, ", "), t.Next, t.Line, t.Col)
	default:
		return t.String()
	}
}

// asmParser holds the line-oriented parse state.
type asmParser struct {
	lines []string
	pos   int
}

func (ap *asmParser) errf(format string, args ...any) error {
	return fmt.Errorf("clasm line %d: %s", ap.pos, fmt.Sprintf(format, args...))
}

func (ap *asmParser) next() (string, bool) {
	for ap.pos < len(ap.lines) {
		l := strings.TrimSpace(ap.lines[ap.pos])
		ap.pos++
		if l == "" || strings.HasPrefix(l, "//") || strings.HasPrefix(l, "#") {
			continue
		}
		return l, true
	}
	return "", false
}

// kvInt extracts `key=<int>` from a field list.
func kvInt(fields map[string]string, key string) (int, error) {
	v, ok := fields[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	return strconv.Atoi(v)
}

func parseFields(parts []string) map[string]string {
	m := map[string]string{}
	for _, p := range parts {
		if i := strings.IndexByte(p, '='); i > 0 {
			m[p[:i]] = p[i+1:]
		}
	}
	return m
}

// ParseAsm parses assembly text produced by Print (or hand-written in the
// same format) back into a validated Program.
func ParseAsm(src string) (*Program, error) {
	ap := &asmParser{lines: strings.Split(src, "\n")}
	head, ok := ap.next()
	if !ok || !strings.HasPrefix(head, "program ") {
		return nil, ap.errf("expected `program` header")
	}
	hf := parseFields(strings.Fields(head))
	entryName, ok := hf["entry"]
	if !ok {
		return nil, ap.errf("program header missing entry=")
	}
	globals, err := kvInt(hf, "globals")
	if err != nil {
		return nil, ap.errf("program header: %v", err)
	}

	p := &Program{GlobalWords: globals}
	type pendingCall struct {
		proc  *Proc
		block int
		name  string
	}
	var pending []pendingCall

	for {
		l, ok := ap.next()
		if !ok {
			break
		}
		if !strings.HasPrefix(l, "proc ") || !strings.HasSuffix(l, "{") {
			return nil, ap.errf("expected `proc ... {`, got %q", l)
		}
		fs := strings.Fields(strings.TrimSuffix(strings.TrimPrefix(l, "proc "), "{"))
		if len(fs) < 1 {
			return nil, ap.errf("proc missing name")
		}
		pf := parseFields(fs[1:])
		pr := &Proc{Name: fs[0], ID: len(p.Procs)}
		if pr.NumArgs, err = kvInt(pf, "args"); err != nil {
			return nil, ap.errf("proc %s: %v", pr.Name, err)
		}
		if pr.NumRegs, err = kvInt(pf, "regs"); err != nil {
			return nil, ap.errf("proc %s: %v", pr.Name, err)
		}
		pr.Line, _ = kvInt(pf, "line")
		p.Procs = append(p.Procs, pr)

		var cur *Block
		for {
			l, ok := ap.next()
			if !ok {
				return nil, ap.errf("unexpected EOF in proc %s", pr.Name)
			}
			if l == "}" {
				break
			}
			if strings.HasPrefix(l, "b") && strings.Contains(l, ":") {
				ci := strings.IndexByte(l, ':')
				idx, err := strconv.Atoi(l[1:ci])
				if err != nil || idx != len(pr.Blocks) {
					return nil, ap.errf("bad or out-of-order block label %q", l[:ci+1])
				}
				bf := parseFields(strings.Fields(l[ci+1:]))
				cur = &Block{Index: idx, Proc: pr}
				cur.Line, _ = kvInt(bf, "line")
				cur.Col, _ = kvInt(bf, "col")
				pr.Blocks = append(pr.Blocks, cur)
				continue
			}
			if cur == nil {
				return nil, ap.errf("instruction before block label: %q", l)
			}
			done, callee, err := parseLine(ap, cur, l)
			if err != nil {
				return nil, err
			}
			if callee != "" {
				pending = append(pending, pendingCall{proc: pr, block: cur.Index, name: callee})
			}
			_ = done
		}
	}

	// Resolve call targets and the entry by name.
	byName := map[string]int{}
	for i, pr := range p.Procs {
		if _, dup := byName[pr.Name]; dup {
			return nil, fmt.Errorf("clasm: duplicate proc %q", pr.Name)
		}
		byName[pr.Name] = i
	}
	for _, pc := range pending {
		idx, ok := byName[pc.name]
		if !ok {
			return nil, fmt.Errorf("clasm: call to unknown proc %q", pc.name)
		}
		pc.proc.Blocks[pc.block].Term.Callee = idx
	}
	entry, ok := byName[entryName]
	if !ok {
		return nil, fmt.Errorf("clasm: entry proc %q not defined", entryName)
	}
	p.Entry = entry
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("clasm: %w", err)
	}
	return p, nil
}

var condByName = map[string]CondOp{
	"==": CondEQ, "!=": CondNE, "<": CondLT, "<=": CondLE, ">": CondGT, ">=": CondGE,
}

func reg(tok string) (uint8, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("expected register, got %q", tok)
	}
	v, err := strconv.Atoi(tok[1:])
	if err != nil || v < 0 || v >= NumRegsMax {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return uint8(v), nil
}

func blockIdx(tok string) (int, error) {
	if !strings.HasPrefix(tok, "b") {
		return 0, fmt.Errorf("expected block ref, got %q", tok)
	}
	return strconv.Atoi(tok[1:])
}

// parseLine parses one instruction or terminator into cur. It returns the
// callee name for call terminators (resolved later).
func parseLine(ap *asmParser, cur *Block, l string) (isTerm bool, callee string, err error) {
	// Tokenize: mnemonic then comma-separated operands; brackets kept.
	sp := strings.IndexByte(l, ' ')
	mnem := l
	rest := ""
	if sp > 0 {
		mnem, rest = l[:sp], strings.TrimSpace(l[sp+1:])
	}
	ops := splitOperands(rest)

	fail := func(format string, args ...any) (bool, string, error) {
		return false, "", ap.errf("%s: %s", mnem, fmt.Sprintf(format, args...))
	}
	emit := func(in Instr) (bool, string, error) {
		cur.Instr = append(cur.Instr, in)
		return false, "", nil
	}
	r := func(i int) uint8 {
		if err != nil || i >= len(ops) {
			if err == nil {
				err = fmt.Errorf("missing operand %d", i)
			}
			return 0
		}
		var v uint8
		v, err = reg(ops[i])
		return v
	}
	imm := func(i int) int64 {
		if err != nil || i >= len(ops) {
			if err == nil {
				err = fmt.Errorf("missing operand %d", i)
			}
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(ops[i], 10, 64)
		return v
	}

	switch mnem {
	case "nop":
		return emit(Instr{Op: OpNop})
	case "const":
		in := Instr{Op: OpConst, A: r(0), Imm: imm(1)}
		if err != nil {
			return fail("%v", err)
		}
		return emit(in)
	case "mov", "neg", "not":
		op := map[string]Opcode{"mov": OpMov, "neg": OpNeg, "not": OpNot}[mnem]
		in := Instr{Op: op, A: r(0), B: r(1)}
		if err != nil {
			return fail("%v", err)
		}
		return emit(in)
	case "addi", "muli":
		op := OpAddI
		if mnem == "muli" {
			op = OpMulI
		}
		in := Instr{Op: op, A: r(0), B: r(1), Imm: imm(2)}
		if err != nil {
			return fail("%v", err)
		}
		return emit(in)
	case "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr":
		op := map[string]Opcode{
			"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "mod": OpMod,
			"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr,
		}[mnem]
		in := Instr{Op: op, A: r(0), B: r(1), C: r(2)}
		if err != nil {
			return fail("%v", err)
		}
		return emit(in)
	case "load":
		// load rA, [rB+imm]
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		b, off, perr := parseMemRef(ops[1])
		if perr != nil {
			return fail("%v", perr)
		}
		in := Instr{Op: OpLoad, A: r(0), B: b, Imm: off}
		if err != nil {
			return fail("%v", err)
		}
		return emit(in)
	case "store":
		// store [rB+imm], rA
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		b, off, perr := parseMemRef(ops[0])
		if perr != nil {
			return fail("%v", perr)
		}
		a, perr := reg(ops[1])
		if perr != nil {
			return fail("%v", perr)
		}
		return emit(Instr{Op: OpStore, A: a, B: b, Imm: off})
	case "mark":
		in := Instr{Op: OpMark, Imm: imm(0)}
		if err != nil {
			return fail("%v", err)
		}
		return emit(in)
	case "out":
		in := Instr{Op: OpOut, A: r(0)}
		if err != nil {
			return fail("%v", err)
		}
		return emit(in)
	case "jump":
		tgt, perr := blockIdx(ops[0])
		if perr != nil {
			return fail("%v", perr)
		}
		cur.Term = Term{Kind: TermJump, Target: tgt}
		return true, "", nil
	case "br":
		// br rA <op> rB, bT, bE
		f := strings.Fields(rest)
		if len(f) < 5 {
			return fail("malformed branch %q", rest)
		}
		a, perr := reg(strings.TrimSuffix(f[0], ","))
		if perr != nil {
			return fail("%v", perr)
		}
		cond, ok := condByName[f[1]]
		if !ok {
			return fail("bad condition %q", f[1])
		}
		b, perr := reg(strings.TrimSuffix(f[2], ","))
		if perr != nil {
			return fail("%v", perr)
		}
		tgt, perr := blockIdx(strings.TrimSuffix(f[3], ","))
		if perr != nil {
			return fail("%v", perr)
		}
		els, perr := blockIdx(strings.TrimSuffix(f[4], ","))
		if perr != nil {
			return fail("%v", perr)
		}
		cur.Term = Term{Kind: TermBranch, Cond: cond, A: a, B: b, Target: tgt, Else: els}
		return true, "", nil
	case "ret":
		rr, perr := reg(ops[0])
		if perr != nil {
			return fail("%v", perr)
		}
		cur.Term = Term{Kind: TermRet, Ret: rr}
		return true, "", nil
	case "halt":
		cur.Term = Term{Kind: TermHalt}
		return true, "", nil
	case "call":
		// call rRet, name(rA, rB), bNext line=L col=C
		return parseCall(ap, cur, rest)
	default:
		return fail("unknown mnemonic")
	}
}

func parseCall(ap *asmParser, cur *Block, rest string) (bool, string, error) {
	open := strings.IndexByte(rest, '(')
	close := strings.IndexByte(rest, ')')
	if open < 0 || close < open {
		return false, "", ap.errf("malformed call %q", rest)
	}
	pre := strings.Split(strings.TrimSpace(rest[:open]), ",")
	if len(pre) != 2 {
		return false, "", ap.errf("call needs `rRet, name(...)`")
	}
	ret, err := reg(strings.TrimSpace(pre[0]))
	if err != nil {
		return false, "", ap.errf("call: %v", err)
	}
	name := strings.TrimSpace(pre[1])
	var args []uint8
	inner := strings.TrimSpace(rest[open+1 : close])
	if inner != "" {
		for _, a := range strings.Split(inner, ",") {
			r, err := reg(strings.TrimSpace(a))
			if err != nil {
				return false, "", ap.errf("call arg: %v", err)
			}
			args = append(args, r)
		}
	}
	post := strings.Fields(strings.TrimPrefix(strings.TrimSpace(rest[close+1:]), ","))
	if len(post) < 1 {
		return false, "", ap.errf("call missing continuation block")
	}
	next, err := blockIdx(post[0])
	if err != nil {
		return false, "", ap.errf("call: %v", err)
	}
	fields := parseFields(post[1:])
	line, _ := kvInt(fields, "line")
	col, _ := kvInt(fields, "col")
	cur.Term = Term{Kind: TermCall, Ret: ret, Args: args, Next: next, Line: line, Col: col}
	return true, name, nil
}

func parseMemRef(tok string) (base uint8, off int64, err error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, fmt.Errorf("expected [rB+imm], got %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	plus := strings.IndexByte(inner, '+')
	if plus < 0 {
		base, err = reg(inner)
		return base, 0, err
	}
	if base, err = reg(inner[:plus]); err != nil {
		return 0, 0, err
	}
	off, err = strconv.ParseInt(inner[plus+1:], 10, 64)
	return base, off, err
}

// splitOperands splits "r1, [r2+8], -3" into operands, respecting
// brackets.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}
