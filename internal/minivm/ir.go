// Package minivm defines a small register-machine intermediate
// representation (procedures of basic blocks) and an interpreter for it.
//
// It plays the role the Alpha binaries + ATOM instrumentation play in the
// paper: programs compiled to this IR execute deterministically while an
// Observer watches basic-block executions, procedure calls and returns,
// conditional-branch outcomes, and memory references. Loops are not
// represented explicitly; exactly as in the paper, they are discovered by
// looking for non-interprocedural backwards branches (see loops.go).
package minivm

import "fmt"

// NumRegsMax is the maximum register-file size for a procedure.
const NumRegsMax = 64

// Opcode enumerates straight-line instructions. Control flow lives in
// block terminators (Term), so every basic block is single-entry,
// single-exit as in the paper's definition.
type Opcode uint8

// Straight-line opcodes. Three-address form: A = B op C, with ConstI /
// AddI / MulI immediate forms so the optimizer can fold constants without
// materializing them.
const (
	OpNop   Opcode = iota
	OpConst        // A = Imm
	OpMov          // A = B
	OpAdd          // A = B + C
	OpSub          // A = B - C
	OpMul          // A = B * C
	OpDiv          // A = B / C (traps on zero)
	OpMod          // A = B % C (traps on zero)
	OpAnd          // A = B & C
	OpOr           // A = B | C
	OpXor          // A = B ^ C
	OpShl          // A = B << (C & 63)
	OpShr          // A = B >> (C & 63) (logical)
	OpNeg          // A = -B
	OpNot          // A = ^B
	OpAddI         // A = B + Imm
	OpMulI         // A = B * Imm
	OpLoad         // A = mem[B + Imm]
	OpStore        // mem[B + Imm] = A
	OpOut          // emit value of A to the machine's output stream
	OpMark         // signal software phase marker Imm (inserted instrumentation)
	opMax
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpMod: "mod", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpNeg: "neg", OpNot: "not",
	OpAddI: "addi", OpMulI: "muli", OpLoad: "load", OpStore: "store",
	OpOut: "out", OpMark: "mark",
}

// String returns the assembly mnemonic for the opcode.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one straight-line instruction.
type Instr struct {
	Op      Opcode
	A, B, C uint8 // register operands
	Imm     int64 // immediate (Const, AddI, MulI, Load, Store offsets)
}

// TermKind enumerates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	TermJump   TermKind = iota // goto Target
	TermBranch                 // if A cond B goto Target else goto Else
	TermCall                   // Ret = Callee(Args...); goto Next
	TermRet                    // return Ret (register)
	TermHalt                   // stop the machine
)

// CondOp enumerates branch comparison operators.
type CondOp uint8

// Branch comparison operators.
const (
	CondEQ CondOp = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

// String returns the source-level comparison operator.
func (c CondOp) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval applies the comparison to two values.
func (c CondOp) Eval(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	default:
		return a >= b
	}
}

// Term is a block terminator. Field use depends on Kind:
//
//	Jump:   Target
//	Branch: Cond, A, B, Target (taken), Else (not taken)
//	Call:   Callee (proc index), Args (arg registers), Ret (dest reg), Next
//	Ret:    Ret (source register)
//	Halt:   -
//
// Target/Else/Next are block indices within the enclosing procedure.
type Term struct {
	Kind   TermKind
	Cond   CondOp
	A, B   uint8
	Target int
	Else   int
	Callee int
	Args   []uint8
	Ret    uint8
	Next   int
	// Line/Col are the source position of a call terminator (debug info
	// for mapping call-site markers across compilations of one source).
	Line int
	Col  int
}

// Block is a single-entry single-exit run of instructions plus one
// terminator. ID is unique across the whole program (the "static basic
// block number" BBVs are indexed by); Index is the block's position inside
// its procedure, which defines the backwards-branch ordering used for loop
// discovery.
type Block struct {
	ID    int
	Index int
	Proc  *Proc
	Instr []Instr
	Term  Term
	Line  int // source line of the block's first statement (debug info)
	Col   int // source column (debug info)
}

// Weight is the block's instruction count: its straight-line instructions
// plus the terminator. BBV entries are execution count times Weight, per
// the paper's size-weighted basic block vectors.
func (b *Block) Weight() int { return len(b.Instr) + 1 }

// Proc is a procedure: a register file size, an argument count, and a list
// of basic blocks; execution begins at block 0.
type Proc struct {
	Name    string
	ID      int // index in Program.Procs
	NumArgs int
	NumRegs int
	Blocks  []*Block
	Line    int // source line of the declaration (debug info)
}

// Program is a compiled unit. Entry names the procedure started by
// Machine.Run; GlobalWords is the size of the flat data memory in 8-byte
// words (arrays are laid out here by the compiler).
type Program struct {
	Procs       []*Proc
	Entry       int
	GlobalWords int
	NumBlocks   int // total static blocks; block IDs are in [0, NumBlocks)
}

// Proc returns the procedure named name, or nil if absent.
func (p *Program) Proc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// EntryProc returns the entry procedure.
func (p *Program) EntryProc() *Proc { return p.Procs[p.Entry] }

// BlockByID returns the block with the given global static ID, or nil.
func (p *Program) BlockByID(id int) *Block {
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			if b.ID == id {
				return b
			}
		}
	}
	return nil
}

// RenumberBlocks assigns consecutive global IDs to all blocks in program
// order and sets NumBlocks. Compilers call it after any pass that adds or
// removes blocks.
func (p *Program) RenumberBlocks() {
	id := 0
	for _, pr := range p.Procs {
		for i, b := range pr.Blocks {
			b.ID = id
			b.Index = i
			b.Proc = pr
			id++
		}
	}
	p.NumBlocks = id
}
