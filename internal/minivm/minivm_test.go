package minivm

import (
	"errors"
	"strings"
	"testing"
)

// buildProg assembles a small hand-written program:
//
//	proc main(n):      sum = 0; for i in 0..n-1 { sum += i }; out sum; ret sum
func buildProg(t *testing.T) *Program {
	t.Helper()
	main := &Proc{Name: "main", NumArgs: 1, NumRegs: 5}
	// r0 = n, r1 = sum, r2 = i, r3 = scratch
	b0 := &Block{Instr: []Instr{
		{Op: OpConst, A: 1, Imm: 0},
		{Op: OpConst, A: 2, Imm: 0},
	}, Term: Term{Kind: TermJump, Target: 1}}
	b1 := &Block{Term: Term{Kind: TermBranch, Cond: CondLT, A: 2, B: 0, Target: 2, Else: 3}}
	b2 := &Block{Instr: []Instr{
		{Op: OpAdd, A: 1, B: 1, C: 2},
		{Op: OpAddI, A: 2, B: 2, Imm: 1},
	}, Term: Term{Kind: TermJump, Target: 1}} // backwards branch -> loop
	b3 := &Block{Instr: []Instr{
		{Op: OpOut, A: 1},
	}, Term: Term{Kind: TermRet, Ret: 1}}
	main.Blocks = []*Block{b0, b1, b2, b3}
	p := &Program{Procs: []*Proc{main}}
	main.ID = 0
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p
}

func TestInterpreterSumLoop(t *testing.T) {
	p := buildProg(t)
	m := NewMachine(p, nil)
	rv, err := m.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rv != 45 {
		t.Fatalf("sum = %d, want 45", rv)
	}
	if out := m.Output(); len(out) != 1 || out[0] != 45 {
		t.Fatalf("output = %v", out)
	}
	if m.Instructions() == 0 {
		t.Fatal("no instructions counted")
	}
}

func TestAllOpcodes(t *testing.T) {
	// One block per opcode family, checked against Go semantics.
	cases := []struct {
		in   Instr
		pre  [4]int64
		want int64 // expected r0 afterwards
	}{
		{Instr{Op: OpConst, A: 0, Imm: -7}, [4]int64{}, -7},
		{Instr{Op: OpMov, A: 0, B: 1}, [4]int64{0, 42}, 42},
		{Instr{Op: OpAdd, A: 0, B: 1, C: 2}, [4]int64{0, 3, 4}, 7},
		{Instr{Op: OpSub, A: 0, B: 1, C: 2}, [4]int64{0, 3, 4}, -1},
		{Instr{Op: OpMul, A: 0, B: 1, C: 2}, [4]int64{0, -3, 4}, -12},
		{Instr{Op: OpDiv, A: 0, B: 1, C: 2}, [4]int64{0, -7, 2}, -3},
		{Instr{Op: OpMod, A: 0, B: 1, C: 2}, [4]int64{0, -7, 2}, -1},
		{Instr{Op: OpAnd, A: 0, B: 1, C: 2}, [4]int64{0, 0b1100, 0b1010}, 0b1000},
		{Instr{Op: OpOr, A: 0, B: 1, C: 2}, [4]int64{0, 0b1100, 0b1010}, 0b1110},
		{Instr{Op: OpXor, A: 0, B: 1, C: 2}, [4]int64{0, 0b1100, 0b1010}, 0b0110},
		{Instr{Op: OpShl, A: 0, B: 1, C: 2}, [4]int64{0, 3, 4}, 48},
		{Instr{Op: OpShr, A: 0, B: 1, C: 2}, [4]int64{0, -1, 60}, 15},
		{Instr{Op: OpNeg, A: 0, B: 1}, [4]int64{0, 5}, -5},
		{Instr{Op: OpNot, A: 0, B: 1}, [4]int64{0, 0}, -1},
		{Instr{Op: OpAddI, A: 0, B: 1, Imm: 100}, [4]int64{0, 5}, 105},
		{Instr{Op: OpMulI, A: 0, B: 1, Imm: -2}, [4]int64{0, 5}, -10},
	}
	for _, tc := range cases {
		main := &Proc{Name: "main", NumArgs: 4, NumRegs: 4}
		main.Blocks = []*Block{{
			Instr: []Instr{tc.in},
			Term:  Term{Kind: TermRet, Ret: 0},
		}}
		p := &Program{Procs: []*Proc{main}}
		p.RenumberBlocks()
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", tc.in, err)
		}
		rv, err := NewMachine(p, nil).Run(tc.pre[0], tc.pre[1], tc.pre[2], tc.pre[3])
		if err != nil {
			t.Fatalf("%v: %v", tc.in, err)
		}
		if rv != tc.want {
			t.Errorf("%v: got %d, want %d", tc.in, rv, tc.want)
		}
	}
}

func TestTraps(t *testing.T) {
	mk := func(in Instr, globals int) *Program {
		main := &Proc{Name: "main", NumArgs: 2, NumRegs: 3}
		main.Blocks = []*Block{{
			Instr: []Instr{in},
			Term:  Term{Kind: TermRet, Ret: 0},
		}}
		p := &Program{Procs: []*Proc{main}, GlobalWords: globals}
		p.RenumberBlocks()
		return p
	}
	if _, err := NewMachine(mk(Instr{Op: OpDiv, A: 0, B: 0, C: 1}, 0), nil).Run(1, 0); !errors.Is(err, ErrDivByZero) {
		t.Errorf("div by zero: %v", err)
	}
	if _, err := NewMachine(mk(Instr{Op: OpMod, A: 0, B: 0, C: 1}, 0), nil).Run(1, 0); !errors.Is(err, ErrDivByZero) {
		t.Errorf("mod by zero: %v", err)
	}
	if _, err := NewMachine(mk(Instr{Op: OpLoad, A: 0, B: 1, Imm: 100}, 10), nil).Run(0, 0); !errors.Is(err, ErrMemFault) {
		t.Errorf("load out of range: %v", err)
	}
	if _, err := NewMachine(mk(Instr{Op: OpStore, A: 0, B: 1, Imm: -1}, 10), nil).Run(0, 0); !errors.Is(err, ErrMemFault) {
		t.Errorf("store negative: %v", err)
	}
}

func TestInstrLimit(t *testing.T) {
	main := &Proc{Name: "main", NumArgs: 0, NumRegs: 1}
	main.Blocks = []*Block{{Term: Term{Kind: TermJump, Target: 0}}}
	p := &Program{Procs: []*Proc{main}}
	p.RenumberBlocks()
	m := NewMachine(p, nil)
	m.MaxInstrs = 1000
	if _, err := m.Run(); !errors.Is(err, ErrInstrLimit) {
		t.Fatalf("want instruction limit, got %v", err)
	}
}

func TestStackOverflow(t *testing.T) {
	// proc f() { f() }
	f := &Proc{Name: "f", NumArgs: 0, NumRegs: 1}
	f.Blocks = []*Block{{Term: Term{Kind: TermCall, Callee: 0, Next: 0}}}
	p := &Program{Procs: []*Proc{f}}
	p.RenumberBlocks()
	m := NewMachine(p, nil)
	m.MaxDepth = 100
	if _, err := m.Run(); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("want stack overflow, got %v", err)
	}
}

type countingObs struct {
	NopObserver
	blocks, calls, rets, branches, mems int
}

func (c *countingObs) OnBlock(*Block)        { c.blocks++ }
func (c *countingObs) OnCall(*Block, *Proc)  { c.calls++ }
func (c *countingObs) OnReturn(*Proc)        { c.rets++ }
func (c *countingObs) OnBranch(*Block, bool) { c.branches++ }
func (c *countingObs) OnMem(uint64, bool)    { c.mems++ }

func TestObserverEventCounts(t *testing.T) {
	p := buildProg(t)
	obs := &countingObs{}
	if _, err := NewMachine(p, obs).Run(5); err != nil {
		t.Fatal(err)
	}
	// blocks: b0, then (b1) 6 times, (b2) 5 times, b3 = 13.
	if obs.blocks != 13 {
		t.Errorf("blocks = %d, want 13", obs.blocks)
	}
	if obs.branches != 6 {
		t.Errorf("branches = %d, want 6", obs.branches)
	}
	if obs.rets != 1 {
		t.Errorf("returns = %d, want 1", obs.rets)
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	p := buildProg(t)
	a, b := &countingObs{}, &countingObs{}
	if _, err := NewMachine(p, MultiObserver{a, b}).Run(3); err != nil {
		t.Fatal(err)
	}
	if a.blocks != b.blocks || a.blocks == 0 {
		t.Errorf("fan-out mismatch: %d vs %d", a.blocks, b.blocks)
	}
}

func TestCallsBalancedOnHalt(t *testing.T) {
	// main calls f; f halts. Observers must still see balanced returns.
	f := &Proc{Name: "f", NumArgs: 0, NumRegs: 1}
	f.Blocks = []*Block{{Term: Term{Kind: TermHalt}}}
	main := &Proc{Name: "main", NumArgs: 0, NumRegs: 1}
	main.Blocks = []*Block{{Term: Term{Kind: TermCall, Callee: 0, Next: 1}},
		{Term: Term{Kind: TermRet, Ret: 0}}}
	p := &Program{Procs: []*Proc{f, main}, Entry: 1}
	f.ID, main.ID = 0, 1
	p.RenumberBlocks()
	obs := &countingObs{}
	if _, err := NewMachine(p, obs).Run(); err != nil {
		t.Fatal(err)
	}
	if obs.calls != 1 || obs.rets != 2 { // f's frame + main's frame unwound
		t.Errorf("calls=%d rets=%d, want 1/2", obs.calls, obs.rets)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	breakers := []func(p *Program){
		func(p *Program) { p.Entry = 5 },
		func(p *Program) { p.Procs[0].NumRegs = 0 },
		func(p *Program) { p.Procs[0].NumRegs = NumRegsMax + 1 },
		func(p *Program) { p.Procs[0].Blocks[0].Term.Target = 99 },
		func(p *Program) { p.Procs[0].Blocks[1].Term.Else = -1 },
		func(p *Program) { p.Procs[0].Blocks[2].Instr[0].A = 200 },
		func(p *Program) { p.Procs[0].Blocks = nil },
		func(p *Program) { p.Procs[0].Blocks[0].ID = 77 },
		func(p *Program) { p.NumBlocks = 1 },
	}
	for i, breakIt := range breakers {
		p := buildProg(t)
		breakIt(p)
		if err := p.Validate(); err == nil {
			t.Errorf("breaker %d: validation passed on corrupt program", i)
		}
	}
}

func TestDisasmMentionsEverything(t *testing.T) {
	p := buildProg(t)
	d := p.Disasm()
	for _, want := range []string{"proc main", "const", "add", "br", "jump", "ret", "out"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestFindLoopsOnHandBuiltProgram(t *testing.T) {
	p := buildProg(t)
	loops := FindLoops(p)
	if len(loops.All) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops.All))
	}
	l := loops.All[0]
	if l.Head.Index != 1 || l.End != 2 || l.Depth != 1 {
		t.Errorf("loop = %+v", l)
	}
	if !l.Contains(1) || !l.Contains(2) || l.Contains(0) || l.Contains(3) {
		t.Error("region containment wrong")
	}
}

type loopLog struct {
	events []string
}

func (l *loopLog) OnLoopEnter(lp *Loop)   { l.events = append(l.events, "enter") }
func (l *loopLog) OnLoopIterate(lp *Loop) { l.events = append(l.events, "iter") }
func (l *loopLog) OnLoopExit(lp *Loop)    { l.events = append(l.events, "exit") }

func TestLoopTrackerEventSequence(t *testing.T) {
	p := buildProg(t)
	log := &loopLog{}
	tracker := NewLoopTracker(FindLoops(p), log)
	if _, err := NewMachine(p, tracker).Run(3); err != nil {
		t.Fatal(err)
	}
	// Head executes 4 times (3 true + 1 false): enter, iter x3, exit.
	want := []string{"enter", "iter", "iter", "iter", "exit"}
	if len(log.events) != len(want) {
		t.Fatalf("events = %v", log.events)
	}
	for i := range want {
		if log.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", log.events, want)
		}
	}
}

// buildCallLoopProg assembles a program whose main loops n times calling a
// helper, exercising the call/return register-arena path:
//
//	proc inc(x): return x + 1
//	proc main(n): acc = 0; for i in 0..n-1 { acc = inc(acc) }; ret acc
func buildCallLoopProg(t *testing.T) *Program {
	t.Helper()
	inc := &Proc{Name: "inc", NumArgs: 1, NumRegs: 2}
	inc.Blocks = []*Block{{
		Instr: []Instr{{Op: OpAddI, A: 1, B: 0, Imm: 1}},
		Term:  Term{Kind: TermRet, Ret: 1},
	}}
	main := &Proc{Name: "main", NumArgs: 1, NumRegs: 4}
	// r0 = n, r1 = i, r2 = acc
	b0 := &Block{Instr: []Instr{
		{Op: OpConst, A: 1, Imm: 0},
		{Op: OpConst, A: 2, Imm: 0},
	}, Term: Term{Kind: TermJump, Target: 1}}
	b1 := &Block{Term: Term{Kind: TermBranch, Cond: CondLT, A: 1, B: 0, Target: 2, Else: 3}}
	b2 := &Block{Instr: []Instr{{Op: OpAddI, A: 1, B: 1, Imm: 1}},
		Term: Term{Kind: TermCall, Callee: 0, Args: []uint8{2}, Ret: 2, Next: 1}}
	b3 := &Block{Term: Term{Kind: TermRet, Ret: 2}}
	main.Blocks = []*Block{b0, b1, b2, b3}
	p := &Program{Procs: []*Proc{inc, main}, Entry: 1}
	inc.ID, main.ID = 0, 1
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p
}

// TestRunSteadyStateZeroAlloc pins the hot-path guarantee the benchmark
// suite's interp_dispatch stage measures: a warmed machine re-runs a
// program — calls and all — without a single heap allocation. Register
// windows come from the reused arena, frames from the reused stack, and
// Reset keeps every buffer.
func TestRunSteadyStateZeroAlloc(t *testing.T) {
	p := buildCallLoopProg(t)
	m := NewMachine(p, nil)
	if rv, err := m.Run(64); err != nil || rv != 64 {
		t.Fatalf("Run = %d, %v; want 64, nil", rv, err)
	}
	avg := testing.AllocsPerRun(50, func() {
		m.Reset()
		rv, err := m.Run(64)
		if err != nil || rv != 64 {
			t.Fatalf("Run = %d, %v; want 64, nil", rv, err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Run allocates %.1f objects per run, want 0", avg)
	}
}

// TestResetClearsRunState verifies Reset returns the machine to a
// pre-Run state: memory zeroed, output truncated, counters cleared.
func TestResetClearsRunState(t *testing.T) {
	p := buildProg(t)
	m := NewMachine(p, nil)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Instructions() == 0 || len(m.Output()) == 0 {
		t.Fatal("first run recorded nothing")
	}
	firstInstrs := m.Instructions()
	m.Reset()
	if m.Instructions() != 0 || m.Branches() != 0 || m.Calls() != 0 || m.MemRefs() != 0 {
		t.Fatal("Reset left counters nonzero")
	}
	if len(m.Output()) != 0 {
		t.Fatal("Reset left output")
	}
	for _, v := range m.Mem() {
		if v != 0 {
			t.Fatal("Reset left memory nonzero")
		}
	}
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Instructions() != firstInstrs {
		t.Fatalf("re-run counted %d instructions, want %d", m.Instructions(), firstInstrs)
	}
}
