package minivm

import "fmt"

// Loop is a static loop discovered exactly as in the paper: a
// non-interprocedural backwards branch defines a back edge, and the loop is
// the static code region from the backwards branch to its target. The
// target block is the loop head. Multiple back edges to the same head are
// merged into one loop whose region extends to the furthest latch.
type Loop struct {
	Proc    *Proc
	Head    *Block
	End     int   // last block index in the region (furthest latch)
	Latches []int // block indices holding the backwards branches
	Parent  *Loop // innermost enclosing loop, or nil
	Depth   int   // nesting depth; outermost loops have depth 1
}

// Contains reports whether block index bi (within the loop's procedure)
// lies in the loop's static region.
func (l *Loop) Contains(bi int) bool {
	return bi >= l.Head.Index && bi <= l.End
}

// String identifies the loop by procedure and head block.
func (l *Loop) String() string {
	return fmt.Sprintf("loop %s:b%d..b%d", l.Proc.Name, l.Head.Index, l.End)
}

// Loops is the loop table for one program: per-procedure loops ordered by
// head index, plus a head-block lookup. The lookup is a dense slice
// indexed by global block ID — the loop tracker consults it once per
// executed block, and a map probe there dominated the walker's hot path.
type Loops struct {
	ByProc   [][]*Loop // indexed by proc ID, ordered by head index
	headByID []*Loop   // indexed by global block ID; nil for non-heads
	All      []*Loop
}

// LoopAtHead returns the loop whose head is b, or nil.
func (ls *Loops) LoopAtHead(b *Block) *Loop { return ls.headByID[b.ID] }

// FindLoops discovers all loops in the program from backwards branches.
// Our compiler generates only reducible loops entered through their heads,
// so the region-based runtime tracking below is exact.
func FindLoops(p *Program) *Loops {
	ls := &Loops{
		ByProc:   make([][]*Loop, len(p.Procs)),
		headByID: make([]*Loop, p.NumBlocks),
	}
	for _, pr := range p.Procs {
		byHead := map[int]*Loop{} // head index -> loop
		for _, b := range pr.Blocks {
			for _, tgt := range backEdgeTargets(b) {
				head := pr.Blocks[tgt]
				l := byHead[tgt]
				if l == nil {
					l = &Loop{Proc: pr, Head: head, End: b.Index}
					byHead[tgt] = l
				}
				if b.Index > l.End {
					l.End = b.Index
				}
				l.Latches = append(l.Latches, b.Index)
			}
		}
		// Order by head index; with equal heads impossible (merged).
		var loops []*Loop
		for i := 0; i < len(pr.Blocks); i++ {
			if l := byHead[i]; l != nil {
				loops = append(loops, l)
			}
		}
		// Establish nesting: the innermost loop strictly containing this
		// loop's region. Scanning earlier heads suffices since a parent's
		// head index is <= the child's.
		for i, l := range loops {
			for j := i - 1; j >= 0; j-- {
				cand := loops[j]
				if cand.Head.Index <= l.Head.Index && l.End <= cand.End && cand != l {
					l.Parent = cand
					break
				}
			}
			l.Depth = 1
			if l.Parent != nil {
				l.Depth = l.Parent.Depth + 1
			}
			ls.headByID[l.Head.ID] = l
		}
		ls.ByProc[pr.ID] = loops
		ls.All = append(ls.All, loops...)
	}
	return ls
}

// backEdgeTargets returns the target block indices of backwards control
// transfers out of b (target index <= b's own index, same procedure).
// Calls and returns are never back edges.
func backEdgeTargets(b *Block) []int {
	var out []int
	switch b.Term.Kind {
	case TermJump:
		if b.Term.Target <= b.Index {
			out = append(out, b.Term.Target)
		}
	case TermBranch:
		if b.Term.Target <= b.Index {
			out = append(out, b.Term.Target)
		}
		if b.Term.Else <= b.Index && b.Term.Else != b.Term.Target {
			out = append(out, b.Term.Else)
		}
	}
	return out
}

// LoopEvents receives runtime loop transitions reconstructed by a
// LoopTracker.
type LoopEvents interface {
	// OnLoopEnter fires when control first reaches the head of l from
	// outside its region.
	OnLoopEnter(l *Loop)
	// OnLoopIterate fires when control re-reaches the head of an active
	// loop (a back edge was taken).
	OnLoopIterate(l *Loop)
	// OnLoopExit fires when control leaves the region of an active loop
	// (including via procedure return).
	OnLoopExit(l *Loop)
}

// LoopTracker reconstructs loop enter/iterate/exit events from the block
// execution stream, maintaining a per-frame stack of active loops. It
// implements Observer so it can be fanned in via MultiObserver, and
// forwards nothing else.
type LoopTracker struct {
	NopObserver
	loops  *Loops
	ev     LoopEvents
	frames []loopFrame
}

type loopFrame struct {
	active []*Loop
}

// NewLoopTracker builds a tracker for the given loop table reporting to ev.
func NewLoopTracker(loops *Loops, ev LoopEvents) *LoopTracker {
	return &LoopTracker{loops: loops, ev: ev, frames: []loopFrame{{}}}
}

// ObservedEvents implements EventMasker: loop reconstruction needs only
// control-flow events.
func (t *LoopTracker) ObservedEvents() EventMask { return EvBlock | EvCall | EvReturn }

// OnBlock implements Observer.
func (t *LoopTracker) OnBlock(b *Block) {
	fr := &t.frames[len(t.frames)-1]
	// Exit loops whose region no longer contains the current block.
	for len(fr.active) > 0 {
		top := fr.active[len(fr.active)-1]
		if top.Proc == b.Proc && top.Contains(b.Index) {
			break
		}
		fr.active = fr.active[:len(fr.active)-1]
		t.ev.OnLoopExit(top)
	}
	if l := t.loops.headByID[b.ID]; l != nil {
		if n := len(fr.active); n > 0 && fr.active[n-1] == l {
			t.ev.OnLoopIterate(l)
		} else {
			fr.active = append(fr.active, l)
			t.ev.OnLoopEnter(l)
		}
	}
}

// OnCall implements Observer.
func (t *LoopTracker) OnCall(site *Block, callee *Proc) {
	t.frames = append(t.frames, loopFrame{})
}

// OnReturn implements Observer.
func (t *LoopTracker) OnReturn(callee *Proc) {
	fr := &t.frames[len(t.frames)-1]
	for i := len(fr.active) - 1; i >= 0; i-- {
		t.ev.OnLoopExit(fr.active[i])
	}
	if len(t.frames) > 1 {
		t.frames = t.frames[:len(t.frames)-1]
	} else {
		t.frames[0] = loopFrame{}
	}
}
