package minivm

import (
	"testing"
)

func TestAsmRoundTripHandBuilt(t *testing.T) {
	p := buildProg(t)
	text := Print(p)
	back, err := ParseAsm(text)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	if Print(back) != text {
		t.Fatalf("round trip not fixed-point:\n--- first ---\n%s--- second ---\n%s", text, Print(back))
	}
	// Behavior identical.
	m1 := NewMachine(p, nil)
	rv1, _ := m1.Run(12)
	m2 := NewMachine(back, nil)
	rv2, _ := m2.Run(12)
	if rv1 != rv2 || m1.Instructions() != m2.Instructions() {
		t.Fatalf("behavior changed: %d/%d vs %d/%d",
			rv1, m1.Instructions(), rv2, m2.Instructions())
	}
}

func TestAsmRoundTripWithCalls(t *testing.T) {
	callee := &Proc{Name: "double", NumArgs: 1, NumRegs: 2}
	callee.Blocks = []*Block{{
		Instr: []Instr{{Op: OpAddI, A: 1, B: 0, Imm: 0}, {Op: OpAdd, A: 1, B: 1, C: 0}},
		Term:  Term{Kind: TermRet, Ret: 1},
	}}
	main := &Proc{Name: "main", NumArgs: 1, NumRegs: 3, ID: 1}
	main.Blocks = []*Block{
		{Term: Term{Kind: TermCall, Callee: 0, Args: []uint8{0}, Ret: 1, Next: 1, Line: 9, Col: 4}},
		{Instr: []Instr{
			{Op: OpOut, A: 1},
			{Op: OpConst, A: 2, Imm: 100},
			{Op: OpLoad, A: 2, B: 2, Imm: -50},
			{Op: OpStore, A: 1, B: 2, Imm: 3},
		}, Term: Term{Kind: TermRet, Ret: 1}},
	}
	p := &Program{Procs: []*Proc{callee, main}, Entry: 1, GlobalWords: 200}
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	text := Print(p)
	back, err := ParseAsm(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if Print(back) != text {
		t.Fatalf("not a fixed point:\n%s\nvs\n%s", text, Print(back))
	}
	bt := back.Procs[back.Entry].Blocks[0].Term
	if bt.Kind != TermCall || bt.Line != 9 || bt.Col != 4 || back.Procs[bt.Callee].Name != "double" {
		t.Fatalf("call debug info lost: %+v", bt)
	}
}

func TestAsmParseErrors(t *testing.T) {
	cases := map[string]string{
		"no header":       "proc main args=0 regs=1 {\nb0: line=0 col=0\n  halt\n}",
		"bad mnemonic":    "program entry=main globals=0\nproc main args=0 regs=1 {\nb0: line=0 col=0\n  zorp r0\n  halt\n}",
		"unknown callee":  "program entry=main globals=0\nproc main args=0 regs=2 {\nb0: line=0 col=0\n  call r0, ghost(), b0 line=0 col=0\n}",
		"bad register":    "program entry=main globals=0\nproc main args=0 regs=1 {\nb0: line=0 col=0\n  const r99, 1\n  halt\n}",
		"missing entry":   "program entry=nope globals=0\nproc main args=0 regs=1 {\nb0: line=0 col=0\n  halt\n}",
		"out-of-order":    "program entry=main globals=0\nproc main args=0 regs=1 {\nb1: line=0 col=0\n  halt\n}",
		"instr w/o label": "program entry=main globals=0\nproc main args=0 regs=1 {\n  halt\n}",
	}
	for name, src := range cases {
		if _, err := ParseAsm(src); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
