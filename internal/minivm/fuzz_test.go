package minivm

import (
	"strings"
	"testing"
)

// FuzzParseAsm checks the assembly round trip: any text ParseAsm accepts
// must print back to a fixed point (Print(Parse(Print(p))) == Print(p)),
// and the reparsed program must re-validate. Rejected inputs must fail
// with an error, never a panic — ParseAsm consumes checked-in artifacts
// and hand-edited dumps, both attacker-ish inputs.
func FuzzParseAsm(f *testing.F) {
	seed := &Proc{Name: "main", NumArgs: 1, NumRegs: 3}
	seed.Blocks = []*Block{
		{Instr: []Instr{
			{Op: OpConst, A: 1, Imm: 41},
			{Op: OpAdd, A: 2, B: 0, C: 1},
			{Op: OpOut, A: 2},
		}, Term: Term{Kind: TermRet, Ret: 2}},
	}
	p := &Program{Procs: []*Proc{seed}, Entry: 0, GlobalWords: 8}
	p.RenumberBlocks()
	if err := p.Validate(); err != nil {
		f.Fatal(err)
	}
	f.Add(Print(p))
	f.Add("program entry=main globals=0\n")
	f.Add("proc main args=0 regs=1 {\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseAsm(src)
		if err != nil {
			return // rejected cleanly
		}
		text := Print(prog)
		back, err := ParseAsm(text)
		if err != nil {
			t.Fatalf("accepted program fails to reparse: %v\n%s", err, text)
		}
		if again := Print(back); again != text {
			i := 0
			for i < len(text) && i < len(again) && text[i] == again[i] {
				i++
			}
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("round trip not a fixed point near byte %d:\nfirst:  ...%s\nsecond: ...%s",
				i, snippet(text, lo), snippet(again, lo))
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("reparsed program fails validation: %v", err)
		}
	})
}

func snippet(s string, lo int) string {
	hi := lo + 80
	if hi > len(s) {
		hi = len(s)
	}
	return strings.ReplaceAll(s[lo:hi], "\n", "\\n")
}
