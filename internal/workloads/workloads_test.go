package workloads

import (
	"testing"

	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/lang"
	"phasemark/internal/minivm"
)

func runProg(t *testing.T, p *minivm.Program, args []int64) (*minivm.Machine, []int64) {
	t.Helper()
	m := minivm.NewMachine(p, nil)
	if _, err := m.Run(args...); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, m.Output()
}

func TestAllWorkloadsRunAndAgreeAcrossModes(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p0, err := w.Compile(false)
			if err != nil {
				t.Fatalf("compile -O0: %v", err)
			}
			p1, err := w.Compile(true)
			if err != nil {
				t.Fatalf("compile opt: %v", err)
			}
			for _, in := range [][]int64{w.Train, w.Ref} {
				m0, out0 := runProg(t, p0, in)
				m1, out1 := runProg(t, p1, in)
				if len(out0) == 0 {
					t.Fatal("workload produced no output checksum")
				}
				if len(out0) != len(out1) {
					t.Fatalf("output lengths differ across modes")
				}
				for i := range out0 {
					if out0[i] != out1[i] {
						t.Fatalf("checksum differs across modes: %d vs %d", out0[i], out1[i])
					}
				}
				if m1.Instructions() >= m0.Instructions() {
					t.Errorf("optimizer did not reduce dynamic instructions: %d -> %d",
						m0.Instructions(), m1.Instructions())
				}
			}
			t.Logf("train=%d ref=%d instrs (-O0)", instrs(t, p0, w.Train), instrs(t, p0, w.Ref))
		})
	}
}

func instrs(t *testing.T, p *minivm.Program, args []int64) uint64 {
	m, _ := runProg(t, p, args)
	return m.Instructions()
}

func TestSuitesPartition(t *testing.T) {
	if got := len(Suite79()); got != 11 {
		t.Errorf("Suite79 has %d programs, want 11", got)
	}
	if got := len(Suite10()); got != 5 {
		t.Errorf("Suite10 has %d programs, want 5", got)
	}
	if got := len(All()); got != 16 {
		t.Errorf("All has %d programs, want 16", got)
	}
}

func TestDeterminism(t *testing.T) {
	w, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p := w.MustCompile(true)
	_, out1 := runProg(t, p, w.Train)
	_, out2 := runProg(t, p, w.Train)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("nondeterministic workload output")
		}
	}
}

// Every compiled workload must round-trip through the clasm text format.
func TestWorkloadsAsmRoundTrip(t *testing.T) {
	for _, w := range All() {
		for _, opt := range []bool{false, true} {
			p := w.MustCompile(opt)
			text := minivm.Print(p)
			back, err := minivm.ParseAsm(text)
			if err != nil {
				t.Fatalf("%s opt=%v: %v", w.Name, opt, err)
			}
			if minivm.Print(back) != text {
				t.Fatalf("%s opt=%v: round trip not a fixed point", w.Name, opt)
			}
			m1 := minivm.NewMachine(p, nil)
			m2 := minivm.NewMachine(back, nil)
			if _, err := m1.Run(w.Train...); err != nil {
				t.Fatal(err)
			}
			if _, err := m2.Run(w.Train...); err != nil {
				t.Fatal(err)
			}
			o1, o2 := m1.Output(), m2.Output()
			if len(o1) != len(o2) || o1[0] != o2[0] {
				t.Fatalf("%s opt=%v: behavior changed after round trip", w.Name, opt)
			}
		}
	}
}

// Physically instrumented binaries must fire the same phase-boundary
// sequence as the walker-based detector, for every workload.
func TestInstrumentationMatchesDetectorOnAllWorkloads(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.MustCompile(false)
			g, err := core.ProfileRun(prog, w.Train...)
			if err != nil {
				t.Fatal(err)
			}
			set := core.SelectMarkers(g, core.SelectOptions{ILower: 100_000})
			if len(set.Markers) == 0 {
				t.Skip("no markers at this ilower")
			}
			var want []int
			det := core.NewDetector(prog, nil, set, func(marker int, at uint64) {
				want = append(want, marker)
			})
			m := minivm.NewMachine(prog, det)
			if _, err := m.Run(w.Train...); err != nil {
				t.Fatal(err)
			}
			inst, err := core.Instrument(prog, set)
			if err != nil {
				t.Fatal(err)
			}
			var got []int
			h := core.NewMarkHandler(set, func(marker int) { got = append(got, marker) })
			m2 := minivm.NewMachine(inst, nil)
			m2.MarkFunc = h.Fn
			if _, err := m2.Run(w.Train...); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d instrumented fires vs %d detector fires", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("firing %d differs: mark %d vs detector %d", i, got[i], want[i])
				}
			}
		})
	}
}

// The stack-machine backend must agree with the register backend on every
// workload (the cross-ISA experiments depend on it).
func TestStackBackendAgreesOnAllWorkloads(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f, err := lang.Parse(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			stackProg, err := compile.Compile(f, compile.Options{Stack: true})
			if err != nil {
				t.Fatal(err)
			}
			reg := w.MustCompile(false)
			mR, outR := runProg(t, reg, w.Train)
			mS, outS := runProg(t, stackProg, w.Train)
			if len(outR) != len(outS) || outR[0] != outS[0] {
				t.Fatalf("checksums differ: %v vs %v", outR, outS)
			}
			if mS.Instructions() <= mR.Instructions() {
				t.Errorf("stack ISA should execute more instructions: %d vs %d",
					mS.Instructions(), mR.Instructions())
			}
		})
	}
}
