package workloads

// The floating-point-suite analogs. SPEC FP programs are loop-nest
// dominated with very stable per-invocation instruction counts — the
// paper's easy cases, where marker CoVs are near zero and procedure/loop
// boundaries align perfectly with cache-behavior phases.

func init() {
	register(&Workload{
		Name:  "art",
		Desc:  "neural-net F1/F2 alternation: streaming weight scans vs. small compute loops",
		Train: []int64{3, 30000, 20000, 12345},
		Ref:   []int64{9, 90000, 60000, 987654321},
		Source: prng + `
array w[65536];
array f1a[1024];

proc scanF1(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		var idx = i & 65535;
		s = s + w[idx];
		f1a[i & 1023] = s;
	}
	return s;
}

proc matchF2(n) {
	var s = 1;
	for (var i = 0; i < n; i = i + 1) {
		s = s + f1a[i & 1023] * 3 - (s >> 2);
	}
	return s;
}

proc main(passes, big, small, seed) {
	rngState = seed | 1;
	for (var i = 0; i < 65536; i = i + 1) { w[i] = rnd() & 255; }
	var chk = 0;
	for (var p = 0; p < passes; p = p + 1) {
		chk = chk + scanF1(big);
		chk = chk + matchF2(small);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "galgel",
		Desc:  "Gaussian elimination: per-pivot work shrinks linearly (variable inner loops)",
		Train: []int64{2, 64, 777},
		Ref:   []int64{3, 96, 424242},
		Source: prng + `
array m[16384];

proc factor(n) {
	var chk = 0;
	for (var k = 0; k < n - 1; k = k + 1) {
		var pivot = m[k * n + k] | 1;
		for (var i = k + 1; i < n; i = i + 1) {
			var f = m[i * n + k] / pivot;
			for (var j = k; j < n; j = j + 1) {
				m[i * n + j] = m[i * n + j] - f * m[k * n + j];
			}
			chk = chk + f;
		}
	}
	return chk;
}

proc main(reps, n, seed) {
	rngState = seed | 1;
	var chk = 0;
	for (var r = 0; r < reps; r = r + 1) {
		for (var i = 0; i < n * n; i = i + 1) { m[i] = (rnd() & 1023) + 1; }
		chk = chk + factor(n);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "lucas",
		Desc:  "FFT-style staged butterflies: stride doubles per stage, distinct locality per stage",
		Train: []int64{1, 16384, 31337},
		Ref:   []int64{3, 32768, 1299709},
		Source: prng + `
array sig[32768];

proc stagePass(stride, n) {
	var s = 0;
	var i = 0;
	while (i < n) {
		var a = sig[i & 32767];
		var b = sig[(i + stride) & 32767];
		sig[i & 32767] = a + b;
		sig[(i + stride) & 32767] = a - b;
		s = s + (a & 4095);
		i = i + 2;
	}
	return s;
}

proc main(iters, n, seed) {
	rngState = seed | 1;
	for (var i = 0; i < 32768; i = i + 1) { sig[i] = rnd() & 65535; }
	var chk = 0;
	for (var t = 0; t < iters; t = t + 1) {
		var stride = 1;
		while (stride < 16384) {
			chk = chk + stagePass(stride, n);
			stride = stride << 1;
		}
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "mgrid",
		Desc:  "multigrid V-cycles: smooth/restrict/prolong across three grid levels",
		Train: []int64{2, 1, 99},
		Ref:   []int64{4, 2, 31415},
		Source: prng + `
// fine grid at 0 (32768 words), mid at 32768 (8192), coarse at 40960 (2048)
array grid[49152];

proc smooth(base, size, sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < size - 1; i = i + 1) {
			var v = (grid[base + i - 1] + grid[base + i] * 2 + grid[base + i + 1]) >> 2;
			grid[base + i] = v;
			s = s + (v & 255);
		}
	}
	return s;
}

proc coarsen(src, dst, dstSize) {
	for (var i = 0; i < dstSize; i = i + 1) {
		grid[dst + i] = (grid[src + 2 * i] + grid[src + 2 * i + 1]) >> 1;
	}
	return 0;
}

proc refine(src, dst, srcSize) {
	for (var i = 0; i < srcSize; i = i + 1) {
		var v = grid[src + i];
		grid[dst + 2 * i] = grid[dst + 2 * i] + (v >> 1);
		grid[dst + 2 * i + 1] = grid[dst + 2 * i + 1] + (v >> 1);
	}
	return 0;
}

proc main(cycles, sweeps, seed) {
	rngState = seed | 1;
	for (var i = 0; i < 32768; i = i + 1) { grid[i] = rnd() & 4095; }
	var chk = 0;
	for (var c = 0; c < cycles; c = c + 1) {
		chk = chk + smooth(0, 32768, sweeps);
		coarsen(0, 32768, 8192);
		chk = chk + smooth(32768, 8192, sweeps);
		coarsen(32768, 40960, 2048);
		chk = chk + smooth(40960, 2048, sweeps * 4);
		refine(40960, 32768, 2048);
		chk = chk + smooth(32768, 8192, sweeps);
		refine(32768, 0, 8192);
		chk = chk + smooth(0, 32768, sweeps);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "applu",
		Desc:  "SSOR on two grid scales: fine-grid relaxation (256KB working set) alternating with coarse-grid sweeps (16KB)",
		Fig10: true,
		Train: []int64{4, 2, 30, 555},
		Ref:   []int64{9, 2, 40, 271828},
		Source: prng + `
array fineg[32768];
array coarseg[2048];

proc fineRelax(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 32767; i = i + 1) {
			var v = (fineg[i - 1] + 2 * fineg[i] + fineg[i + 1]) >> 2;
			fineg[i] = v;
			s = s + (v & 63);
		}
	}
	return s;
}

proc coarseRelax(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 2047; i = i + 1) {
			var v = (coarseg[i - 1] + 2 * coarseg[i] + coarseg[i + 1]) >> 2;
			coarseg[i] = v;
			s = s + (v & 63);
		}
	}
	return s;
}

proc main(steps, fsweeps, csweeps, seed) {
	rngState = seed | 1;
	for (var i = 0; i < 32768; i = i + 1) { fineg[i] = rnd() & 8191; }
	for (var i = 0; i < 2048; i = i + 1) { coarseg[i] = rnd() & 8191; }
	var chk = 0;
	for (var t = 0; t < steps; t = t + 1) {
		chk = chk + fineRelax(fsweeps);
		chk = chk + coarseRelax(csweeps);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "swim",
		Desc:  "shallow-water timesteps: combined three-grid update (192KB), pressure-only sweeps (64KB), boundary sweeps (4KB)",
		Fig10: true,
		Train: []int64{6, 2, 3, 50, 808},
		Ref:   []int64{12, 2, 4, 80, 161803},
		Source: prng + `
array u[8192];
array v[8192];
array p[8192];
array edge[512];

proc bigStep(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 8191; i = i + 1) {
			var du = u[i] + ((p[i + 1] - p[i - 1]) >> 2) - (v[i] >> 3);
			var dv = v[i] + ((p[i] - p[i - 1]) >> 2) - (u[i] >> 3);
			u[i] = du;
			v[i] = dv;
			s = s + ((du + dv) & 255);
		}
	}
	return s;
}

proc pressure(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 8191; i = i + 1) {
			var val = p[i] - ((p[i + 1] - p[i - 1]) >> 3);
			p[i] = val;
			s = s + (val & 255);
		}
	}
	return s;
}

proc boundary(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 511; i = i + 1) {
			edge[i] = (edge[i - 1] + edge[i] + edge[i + 1]) / 3;
			s = s + (edge[i] & 127);
		}
	}
	return s;
}

proc main(steps, bsweeps, psweeps, esweeps, seed) {
	rngState = seed | 1;
	for (var i = 0; i < 8192; i = i + 1) {
		u[i] = rnd() & 1023;
		v[i] = rnd() & 1023;
		p[i] = rnd() & 1023;
	}
	for (var i = 0; i < 512; i = i + 1) { edge[i] = rnd() & 1023; }
	var chk = 0;
	for (var t = 0; t < steps; t = t + 1) {
		chk = chk + bigStep(bsweeps);
		chk = chk + pressure(psweeps);
		chk = chk + boundary(esweeps);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "tomcatv",
		Desc:  "mesh generation: streaming residual (384KB, cache-insensitive), paired-grid relaxation (256KB), small row solves (8KB)",
		Fig10: true,
		Train: []int64{5, 2, 2, 40, 2718},
		Ref:   []int64{10, 3, 2, 60, 6674303},
		Source: prng + `
array xg[16384];
array yg[16384];
array rx[16384];
array rowbuf[1024];

proc residual(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 16383; i = i + 1) {
			var r = xg[i - 1] + xg[i + 1] + yg[i] - 3 * xg[i];
			rx[i] = r;
			s = s + (r & 511);
		}
	}
	return s;
}

proc relaxPair(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 16383; i = i + 1) {
			var vx = xg[i] + ((yg[i] - xg[i]) >> 3);
			xg[i] = vx;
			yg[i] = yg[i] - ((vx - yg[i]) >> 4);
			s = s + (vx & 255);
		}
	}
	return s;
}

proc rowSolve(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var j = 1; j < 1023; j = j + 1) {
			rowbuf[j] = rowbuf[j] + ((rowbuf[j - 1] - rowbuf[j]) >> 2);
			s = s + (rowbuf[j] & 127);
		}
	}
	return s;
}

proc main(iters, rsweeps, psweeps, ssweeps, seed) {
	rngState = seed | 1;
	for (var i = 0; i < 16384; i = i + 1) {
		xg[i] = rnd() & 2047;
		yg[i] = rnd() & 2047;
	}
	for (var i = 0; i < 1024; i = i + 1) { rowbuf[i] = rnd() & 2047; }
	var chk = 0;
	for (var t = 0; t < iters; t = t + 1) {
		chk = chk + residual(rsweeps);
		chk = chk + relaxPair(psweeps);
		chk = chk + rowSolve(ssweeps);
	}
	out(chk);
	return 0;
}
`,
	})
}
