package workloads

// The integer-suite analogs. These are the paper's hard cases: irregular,
// call-heavy, data-dependent control flow (gcc, vortex are the programs
// the reuse-distance approach of Shen et al. could not find structure in).

func init() {
	register(&Workload{
		Name:  "gcc",
		Desc:  "compiler-like: lex / recursive expression build+eval / emit, per-function sizes vary wildly",
		Train: []int64{40, 8, 1009},
		Ref:   []int64{70, 10, 7919},
		Source: prng + `
array tok[8192];
array sym[4096];
array code[8192];
array opk[16384];
array lhs[16384];
array rhs[16384];
array vals[16384];
var nodeCount;

proc lex(n) {
	var h = 0;
	for (var i = 0; i < n; i = i + 1) {
		var c = rnd() & 127;
		if (c < 26) {
			h = h + c;
			sym[h & 4095] = sym[h & 4095] + 1;
		} else if (c < 52) {
			h = h ^ (c << 2);
		} else if (c < 96) {
			tok[i & 8191] = c;
		} else {
			h = h - c;
		}
	}
	return h;
}

proc buildExpr(depth) {
	var id = nodeCount & 16383;
	nodeCount = nodeCount + 1;
	if (depth <= 0 || (rnd() & 3) == 0) {
		opk[id] = 0;
		vals[id] = rnd() & 1023;
		return id;
	}
	opk[id] = (rnd() & 3) + 1;
	var l = buildExpr(depth - 1);
	var r = buildExpr(depth - 1);
	lhs[id] = l;
	rhs[id] = r;
	return id;
}

proc evalExpr(id) {
	var o = opk[id];
	if (o == 0) { return vals[id]; }
	var a = evalExpr(lhs[id]);
	var b = evalExpr(rhs[id]);
	if (o == 1) { return a + b; }
	if (o == 2) { return a - b; }
	if (o == 3) { return (a * b) & 65535; }
	return a ^ b;
}

proc emit(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		var c = tok[i & 8191] ^ (i << 1);
		code[i & 8191] = c;
		s = s + (c & 255);
	}
	return s;
}

proc main(funcs, maxDepth, seed) {
	rngState = seed | 1;
	var chk = 0;
	for (var f = 0; f < funcs; f = f + 1) {
		var size = ((rnd() & 2047) + 256) * 4;
		chk = chk + lex(size);
		var nexpr = (rnd() & 7) + 2;
		for (var e = 0; e < nexpr; e = e + 1) {
			nodeCount = 0;
			var root = buildExpr(maxDepth);
			chk = chk + evalExpr(root);
		}
		chk = chk + emit(size);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "vortex",
		Desc:  "object database: rotating transaction mixes over a probed hash index",
		Train: []int64{6, 4000, 131},
		Ref:   []int64{10, 8000, 524287},
		Source: prng + `
array keyt[16384];
array valt[16384];
array jrnl[8192];
var jpos;
var population;

proc probe(k) {
	var h = (k * 2654435761) & 16383;
	var steps = 0;
	while (keyt[h] != 0 && keyt[h] != k && steps < 16384) {
		h = (h + 1) & 16383;
		steps = steps + 1;
	}
	return h;
}

proc insert(k, v) {
	var h = probe(k);
	if (keyt[h] == 0) {
		if (population < 12288) {
			keyt[h] = k;
			population = population + 1;
		} else {
			return 0;
		}
	}
	valt[h] = v;
	jrnl[jpos & 8191] = k;
	jpos = jpos + 1;
	return 1;
}

proc lookup(k) {
	var h = probe(k);
	if (keyt[h] == k) { return valt[h]; }
	return 0;
}

proc scanAll() {
	var s = 0;
	for (var i = 0; i < 16384; i = i + 1) {
		if (keyt[i] != 0) { s = s + (valt[i] & 1023); }
	}
	return s;
}

proc main(rounds, txns, seed) {
	rngState = seed | 1;
	var chk = 0;
	for (var r = 0; r < rounds; r = r + 1) {
		// Phase 1: insert-heavy.
		for (var i = 0; i < txns; i = i + 1) {
			var k = (rnd() & 65535) | 1;
			chk = chk + insert(k, rnd() & 4095);
		}
		// Phase 2: lookup-heavy.
		for (var j = 0; j < txns * 2; j = j + 1) {
			chk = chk + (lookup((rnd() & 65535) | 1) & 255);
		}
		// Phase 3: reporting scan.
		chk = chk + scanAll();
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "mcf",
		Desc:  "network simplex analog: long pointer chases over a permutation plus small pricing loops",
		Train: []int64{8, 30000, 13},
		Ref:   []int64{14, 60000, 101},
		Source: prng + `
array nxt[65536];
array cost[65536];

proc buildPerm(n) {
	for (var i = 0; i < n; i = i + 1) {
		nxt[i] = i;
		cost[i] = rnd() & 255;
	}
	for (var i = n - 1; i > 0; i = i - 1) {
		var j = (rnd() & 2147483647) % (i + 1);
		var t = nxt[i];
		nxt[i] = nxt[j];
		nxt[j] = t;
	}
	return 0;
}

proc chase(steps, start) {
	var p = start & 65535;
	var c = 0;
	for (var s = 0; s < steps; s = s + 1) {
		c = c + cost[p];
		p = nxt[p];
	}
	return c;
}

proc price(n) {
	var s = 1;
	for (var i = 0; i < n; i = i + 1) {
		s = s + ((s << 1) ^ i) & 1048575;
	}
	return s;
}

proc main(rounds, steps, seed) {
	rngState = seed | 1;
	buildPerm(65536);
	var chk = 0;
	for (var r = 0; r < rounds; r = r + 1) {
		chk = chk + chase(steps, r * 97);
		chk = chk + price(steps / 4);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "vpr",
		Desc:  "router analog: per-net wave expansion with variable frontier sizes, repeated passes",
		Train: []int64{1, 40, 909},
		Ref:   []int64{2, 50, 65537},
		Source: prng + `
array gridc[16384];
array frontier[4096];

proc expandNet(budget) {
	var fsize = 1;
	frontier[0] = rnd() & 16383;
	var cost = 0;
	var spent = 0;
	while (spent < budget && fsize > 0) {
		var nf = 0;
		for (var i = 0; i < fsize && nf < 4000; i = i + 1) {
			var cell = frontier[i];
			cost = cost + gridc[cell];
			gridc[cell] = gridc[cell] + 1;
			var fanout = rnd() & 3;
			for (var k = 0; k < fanout; k = k + 1) {
				frontier[nf & 4095] = (cell + (rnd() & 255) - 128) & 16383;
				nf = nf + 1;
			}
		}
		spent = spent + fsize;
		fsize = nf;
		if (fsize > 4000) { fsize = 4000; }
	}
	return cost;
}

proc ripup(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		var c = gridc[i];
		if (c > 4) { gridc[i] = c - (c >> 2); s = s + 1; }
	}
	return s;
}

proc main(passes, nets, seed) {
	rngState = seed | 1;
	for (var i = 0; i < 16384; i = i + 1) { gridc[i] = rnd() & 7; }
	var chk = 0;
	for (var p = 0; p < passes; p = p + 1) {
		for (var n = 0; n < nets; n = n + 1) {
			chk = chk + expandNet(2000 + (rnd() & 2047));
		}
		chk = chk + ripup(16384);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "perlbmk",
		Desc:  "text processing: per-message scan / hash / substitute loops (diffmail-like)",
		Train: []int64{8, 8192, 4321},
		Ref:   []int64{24, 16384, 1234567},
		Source: prng + `
array text[32768];
array hasht[4096];

proc fillText(n, msg) {
	for (var i = 0; i < n; i = i + 1) {
		text[i & 32767] = ((rnd() + msg * 131) & 127);
	}
	return 0;
}

proc scanWords(n) {
	var h = 5381;
	var words = 0;
	for (var i = 0; i < n; i = i + 1) {
		var c = text[i & 32767];
		if (c > 32) {
			h = (h * 33 + c) & 1048575;
		} else {
			hasht[h & 4095] = hasht[h & 4095] + 1;
			words = words + 1;
			h = 5381;
		}
	}
	return words;
}

proc substitute(n, from, to) {
	var subs = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (text[i & 32767] == from) {
			text[i & 32767] = to;
			subs = subs + 1;
		}
	}
	return subs;
}

proc report() {
	var s = 0;
	for (var i = 0; i < 4096; i = i + 1) { s = s + hasht[i]; }
	return s;
}

proc main(msgs, n, seed) {
	rngState = seed | 1;
	var chk = 0;
	for (var m = 0; m < msgs; m = m + 1) {
		fillText(n, m);
		chk = chk + scanWords(n);
		chk = chk + substitute(n, 65, 97);
		chk = chk + substitute(n, 48, 57);
	}
	chk = chk + report();
	out(chk);
	return 0;
}
`,
	})
}
