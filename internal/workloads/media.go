package workloads

// Compression and mesh analogs: gzip/bzip2 for the main suite (gzip is the
// paper's running time-varying example, Figure 3; bzip2 its projection
// example, Figures 5/6), compress95 and mesh for the cache suite.

func init() {
	register(&Workload{
		Name:  "gzip",
		Desc:  "alternating long high-miss deflate phases and short low-miss huffman phases (Figure 3 shape)",
		Train: []int64{4, 15000, 8000, 271},
		Ref:   []int64{12, 45000, 20000, 1000003},
		Source: prng + `
array data[65536];
array dict[2048];

proc fill(n) {
	for (var i = 0; i < n; i = i + 1) { data[i & 65535] = rnd() & 65535; }
	return 0;
}

proc deflate(n) {
	var h = 1;
	for (var i = 0; i < n; i = i + 1) {
		var j = rnd() & 65535;
		h = (h + data[j]) ^ (h << 1);
		data[(j + 1) & 65535] = h & 65535;
	}
	return h;
}

proc huffman(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		var k = (s + i * 31) & 2047;
		dict[k] = dict[k] + 1;
		s = s + dict[k];
	}
	return s;
}

proc main(chunks, big, small, seed) {
	rngState = seed | 1;
	fill(65536);
	var chk = 0;
	for (var c = 0; c < chunks; c = c + 1) {
		chk = chk + deflate(big);
		chk = chk + huffman(small);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "bzip2",
		Desc:  "block compression: shell-sort / move-to-front / entropy stages, few phase transitions",
		Train: []int64{2, 4096, 515},
		Ref:   []int64{3, 6144, 2097143},
		Source: prng + `
array blk[16384];
array perm[16384];
array mtft[256];
array freq[1024];

proc sortBlock(n) {
	var swaps = 0;
	var gap = n / 2;
	while (gap > 0) {
		for (var i = gap; i < n; i = i + 1) {
			var t = perm[i];
			var tv = blk[t];
			var j = i;
			while (j >= gap && blk[perm[j - gap]] > tv) {
				perm[j] = perm[j - gap];
				j = j - gap;
				swaps = swaps + 1;
			}
			perm[j] = t;
		}
		gap = gap / 2;
	}
	return swaps;
}

proc moveToFront(n) {
	var s = 0;
	for (var i = 0; i < 256; i = i + 1) { mtft[i] = i; }
	for (var i = 0; i < n; i = i + 1) {
		var c = blk[perm[i]] & 255;
		var j = 0;
		while (mtft[j] != c && j < 255) { j = j + 1; }
		while (j > 0) {
			mtft[j] = mtft[j - 1];
			j = j - 1;
		}
		mtft[0] = c;
		s = s + j;
	}
	return s;
}

proc entropy(n) {
	var bits = 0;
	for (var i = 0; i < 1024; i = i + 1) { freq[i] = 1; }
	for (var i = 0; i < n; i = i + 1) {
		var c = blk[i] & 1023;
		freq[c] = freq[c] + 1;
	}
	for (var i = 0; i < 1024; i = i + 1) {
		var f = freq[i];
		var lg = 0;
		while (f > 1) { f = f >> 1; lg = lg + 1; }
		bits = bits + freq[i] * (10 - lg);
	}
	return bits;
}

proc main(blocks, n, seed) {
	rngState = seed | 1;
	var chk = 0;
	for (var b = 0; b < blocks; b = b + 1) {
		for (var i = 0; i < n; i = i + 1) {
			blk[i] = rnd() & 255;
			perm[i] = i;
		}
		chk = chk + sortBlock(n);
		chk = chk + moveToFront(n);
		chk = chk + entropy(n);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "compress",
		Desc:  "LZW-style dictionary compression with periodic dictionary resets (sawtooth phases)",
		Fig10: true,
		Train: []int64{2, 30000, 61},
		Ref:   []int64{4, 60000, 46337},
		Source: prng + `
array dictk[8192];
array dictv[8192];
array freqs[2048];
var dictCount;

proc resetDict() {
	for (var i = 0; i < 8192; i = i + 1) {
		dictk[i] = 0;
		dictv[i] = 0;
	}
	dictCount = 0;
	return 0;
}

proc codeFor(key) {
	var h = (key * 40503) & 8191;
	var steps = 0;
	while (dictk[h] != 0 && dictk[h] != key && steps < 64) {
		h = (h + 1) & 8191;
		steps = steps + 1;
	}
	if (dictk[h] == key) { return dictv[h]; }
	dictk[h] = key;
	dictv[h] = dictCount;
	dictCount = dictCount + 1;
	return -1;
}

proc compressStream(n) {
	var prev = 0;
	var emitted = 0;
	for (var i = 0; i < n; i = i + 1) {
		var c = (rnd() & 63) + 1;
		var key = (prev << 7) | c;
		var code = codeFor(key);
		if (code < 0) {
			emitted = emitted + 1;
			prev = c;
		} else {
			prev = (code & 511) + 1;
		}
		if (dictCount > 6000) {
			resetDict();
		}
	}
	return emitted;
}

proc entropyScan(sweeps) {
	var bits = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 2048; i = i + 1) {
			freqs[i] = freqs[i] + (freqs[i - 1] >> 3) + 1;
			bits = bits + (freqs[i] & 127);
		}
	}
	return bits;
}

proc main(streams, n, seed) {
	rngState = seed | 1;
	resetDict();
	var chk = 0;
	for (var s = 0; s < streams; s = s + 1) {
		chk = chk + compressStream(n);
		chk = chk + entropyScan(40);
	}
	out(chk);
	return 0;
}
`,
	})

	register(&Workload{
		Name:  "mesh",
		Desc:  "unstructured-mesh relaxation: indirect edge gathers (64KB nodes + streamed edges), node updates (64KB), boundary smoothing (8KB)",
		Fig10: true,
		Train: []int64{6, 16384, 8192, 40, 17},
		Ref:   []int64{12, 32768, 8192, 60, 104729},
		Source: prng + `
array ea[32768];
array eb[32768];
array node[8192];
array accum[8192];
array bnd[1024];

proc buildMesh(ne, nn) {
	for (var i = 0; i < nn; i = i + 1) {
		node[i] = rnd() & 1023;
		accum[i] = 0;
	}
	for (var e = 0; e < ne; e = e + 1) {
		ea[e] = rnd() & (nn - 1);
		eb[e] = (ea[e] + 1 + (rnd() & 255)) & (nn - 1);
	}
	for (var i = 0; i < 1024; i = i + 1) { bnd[i] = rnd() & 1023; }
	return 0;
}

proc gather(ne) {
	var s = 0;
	for (var e = 0; e < ne; e = e + 1) {
		var a = ea[e];
		var b = eb[e];
		var d = node[b] - node[a];
		accum[a] = accum[a] + d;
		accum[b] = accum[b] - d;
		s = s + (d & 63);
	}
	return s;
}

proc update(nn, sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 0; i < nn; i = i + 1) {
			node[i] = node[i] + (accum[i] >> 4);
			s = s + (node[i] & 255);
		}
	}
	for (var i = 0; i < nn; i = i + 1) { accum[i] = 0; }
	return s;
}

proc smoothBoundary(sweeps) {
	var s = 0;
	for (var w = 0; w < sweeps; w = w + 1) {
		for (var i = 1; i < 1023; i = i + 1) {
			bnd[i] = (bnd[i - 1] + bnd[i] + bnd[i + 1]) / 3;
			s = s + (bnd[i] & 127);
		}
	}
	return s;
}

proc main(iters, ne, nn, bsweeps, seed) {
	rngState = seed | 1;
	buildMesh(ne, nn);
	var chk = 0;
	for (var t = 0; t < iters; t = t + 1) {
		chk = chk + gather(ne);
		chk = chk + update(nn, 2);
		chk = chk + smoothBoundary(bsweeps);
	}
	out(chk);
	return 0;
}
`,
	})
}
