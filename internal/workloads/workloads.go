// Package workloads defines the synthetic benchmark suite the experiments
// run on: sixteen mini-language programs modeled on the phase structure of
// the SPEC programs the paper evaluates (see DESIGN.md §2 for the
// substitution rationale). Eleven programs stand in for the Figure 7–9 /
// 11–12 suite (art, bzip2, galgel, gcc, gzip, lucas, mcf, mgrid, perlbmk,
// vortex, vpr) and five for the Figure 10 cache-reconfiguration suite
// (applu, compress, mesh, swim, tomcatv).
//
// Each workload carries a "train" and a "ref" input; cross-input results
// select markers on train and apply them to ref, exactly as the paper
// does. All programs are deterministic (in-language xorshift PRNG seeded
// from the input) and emit a checksum via out() so compilation modes can
// be verified observably equivalent.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"phasemark/internal/compile"
	"phasemark/internal/minivm"
)

// Workload is one benchmark program plus its inputs.
type Workload struct {
	Name   string
	Desc   string
	Source string
	Train  []int64
	Ref    []int64
	// Fig10 marks membership in the cache-reconfiguration suite.
	Fig10 bool
}

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// All returns every workload, sorted by name.
func All() []*Workload {
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Suite79 returns the eleven programs of the Figure 7–9 / 11–12 suite.
func Suite79() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if !w.Fig10 {
			out = append(out, w)
		}
	}
	return out
}

// Suite10 returns the five programs of the Figure 10 cache suite.
func Suite10() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Fig10 {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload or an error.
func ByName(name string) (*Workload, error) {
	if w, ok := registry[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

type progKey struct {
	name string
	opt  bool
}

var (
	progMu    sync.Mutex
	progCache = map[progKey]*minivm.Program{}
)

// Compile compiles the workload (cached; programs are immutable once
// built — callers must not mutate the returned IR).
func (w *Workload) Compile(optimize bool) (*minivm.Program, error) {
	progMu.Lock()
	defer progMu.Unlock()
	k := progKey{name: w.Name, opt: optimize}
	if p, ok := progCache[k]; ok {
		return p, nil
	}
	p, err := compile.CompileSource(w.Source, compile.Options{Optimize: optimize})
	if err != nil {
		return nil, fmt.Errorf("workloads: compile %s: %w", w.Name, err)
	}
	progCache[k] = p
	return p, nil
}

// MustCompile is Compile for tests and examples that control their inputs.
func (w *Workload) MustCompile(optimize bool) *minivm.Program {
	p, err := w.Compile(optimize)
	if err != nil {
		panic(err)
	}
	return p
}

// prng is the in-language xorshift PRNG shared by workloads that need
// data-dependent behavior; concatenated into their sources.
const prng = `
var rngState;
proc rnd() {
	var x = rngState;
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	rngState = x;
	return x;
}
`
