package simpoint

import (
	"phasemark/internal/par"
	"phasemark/internal/trace"
)

// Parallel chunk consumers for the pipeline-parallel streaming engine
// (trace.Config.Workers). Both fan only the embarrassingly parallel
// part — per-interval BBV projection, whose rows are disjoint and whose
// kernel is read-only over the shared projection matrix — and apply
// every order-sensitive floating-point update sequentially in chunk
// order on the calling goroutine. The results are therefore
// bit-identical to the serial ObserveChunk at any worker count: the
// same arithmetic happens on the same operands in the same order, only
// the independent row kernels run concurrently.

// ObserveChunkPar is ObserveChunk with the row projections fanned over
// up to workers goroutines. Bit-identical to ObserveChunk at any
// worker count; workers <= 1 runs the serial path unchanged.
func (p *StreamProjector) ObserveChunkPar(chunk []trace.Interval, workers int) {
	n := len(chunk)
	if workers <= 1 || n < 2 {
		p.ObserveChunk(chunk)
		return
	}
	d := p.pts.D
	base := len(p.pts.Data)
	if need := base + n*d; need > cap(p.pts.Data) {
		grown := make([]float64, base, max(2*cap(p.pts.Data), max(need, 64*d)))
		copy(grown, p.pts.Data)
		p.pts.Data = grown
	}
	p.pts.Data = p.pts.Data[: base+n*d : cap(p.pts.Data)]
	data := p.pts.Data
	par.ForEach(n, workers, nil, func(_, i int) {
		chunk[i].BBV.ProjectInto(data[base+i*d:base+(i+1)*d], p.proj)
	})
	p.pts.N += n
	for i := range chunk {
		p.weights = append(p.weights, float64(chunk[i].Len()))
	}
}

// ObserveChunkPar is ObserveChunk with the row projections fanned over
// up to workers goroutines: rows destined for the seeding buffer are
// projected in parallel straight into their (disjoint) buffer slots,
// and steady-state rows into a per-chunk scratch matrix from which the
// order-sensitive mini-batch absorptions then apply sequentially in
// chunk order. Bit-identical to ObserveChunk at any worker count;
// workers <= 1 runs the serial path unchanged.
func (s *StreamKMeans) ObserveChunkPar(chunk []trace.Interval, workers int) {
	if workers <= 1 || len(chunk) < 2 {
		s.ObserveChunk(chunk)
		return
	}
	for len(chunk) > 0 && s.centers.N == 0 {
		n := min(s.seedTarget-s.bufN, len(chunk))
		head, b0 := chunk[:n], s.bufN
		par.ForEach(n, workers, nil, func(_, i int) {
			head[i].BBV.ProjectInto(s.buf.Row(b0+i), s.proj)
		})
		for i := range head {
			s.bufW = append(s.bufW, float64(head[i].Len()))
		}
		s.bufN += n
		s.points += n
		if s.bufN == s.seedTarget {
			s.seed()
		}
		chunk = chunk[n:]
	}
	n := len(chunk)
	if n == 0 {
		return
	}
	if cap(s.parRows) < n*s.dims {
		s.parRows = make([]float64, n*s.dims)
	}
	rows := s.parRows[:n*s.dims]
	par.ForEach(n, workers, nil, func(_, i int) {
		chunk[i].BBV.ProjectInto(rows[i*s.dims:(i+1)*s.dims], s.proj)
	})
	for i := range chunk {
		s.points++
		s.absorb(rows[i*s.dims:(i+1)*s.dims], float64(chunk[i].Len()))
	}
}
