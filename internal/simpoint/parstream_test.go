package simpoint

import (
	"testing"
)

// ObserveChunkPar must be bit-identical to ObserveChunk at every worker
// count and chunk size: same projected matrix and weights, same
// centroids, mass, SSE. Chunk size 40 lands a seed boundary mid-chunk
// (seedTarget 64 with ForceK 2), exercising the buffered-prefix split.
func TestObserveChunkParBitIdentical(t *testing.T) {
	const numBlocks, dims = 64, 8
	opts := Options{ForceK: 2, Dims: dims, Seed: 3, Restarts: 2, MaxIters: 40, Workers: 1}
	ivs := synthIntervals(500, numBlocks, 9)

	refProj := NewStreamProjector(numBlocks, dims, 0xC1)
	refKM := NewStreamKMeans(numBlocks, opts)
	for _, c := range chunks(ivs, 64) {
		refProj.ObserveChunk(c)
		refKM.ObserveChunk(c)
	}
	wantPts, wantW := refProj.Matrix()
	want := refKM.Finish()

	for _, size := range []int{1, 7, 40, 256} {
		for _, workers := range []int{1, 4, 16} {
			p := NewStreamProjector(numBlocks, dims, 0xC1)
			s := NewStreamKMeans(numBlocks, opts)
			for _, c := range chunks(ivs, size) {
				p.ObserveChunkPar(c, workers)
				s.ObserveChunkPar(c, workers)
			}
			gotPts, gotW := p.Matrix()
			if gotPts.N != wantPts.N || gotPts.D != wantPts.D {
				t.Fatalf("size=%d workers=%d: shape %dx%d, want %dx%d",
					size, workers, gotPts.N, gotPts.D, wantPts.N, wantPts.D)
			}
			for i := range wantPts.Data {
				if gotPts.Data[i] != wantPts.Data[i] {
					t.Fatalf("size=%d workers=%d: matrix differs at %d", size, workers, i)
				}
			}
			for i := range wantW {
				if gotW[i] != wantW[i] {
					t.Fatalf("size=%d workers=%d: weight %d differs", size, workers, i)
				}
			}
			got := s.Finish()
			if got.K != want.K || got.Points != want.Points || got.SSE != want.SSE {
				t.Fatalf("size=%d workers=%d: K/Points/SSE %d/%d/%v, want %d/%d/%v",
					size, workers, got.K, got.Points, got.SSE, want.K, want.Points, want.SSE)
			}
			for i := range want.Centers.Data {
				if got.Centers.Data[i] != want.Centers.Data[i] {
					t.Fatalf("size=%d workers=%d: center data differs at %d", size, workers, i)
				}
			}
			for i := range want.Mass {
				if got.Mass[i] != want.Mass[i] {
					t.Fatalf("size=%d workers=%d: mass %d differs", size, workers, i)
				}
			}
		}
	}
}

// The clusterer's steady state must stay allocation-free per chunk on
// the inline path (workers <= 1), scratch warm: the streaming engine
// calls this once per delivered chunk for the whole trace.
func TestStreamKMeansChunkParSteadyStateAllocs(t *testing.T) {
	const numBlocks, dims = 64, 8
	opts := Options{ForceK: 2, Dims: dims, Seed: 3, Restarts: 2, MaxIters: 40, Workers: 1}
	s := NewStreamKMeans(numBlocks, opts)
	warm := chunks(synthIntervals(200, numBlocks, 13), 50)
	for _, c := range warm {
		s.ObserveChunkPar(c, 1) // past seeding; scratch warm
	}
	if s.centers.N == 0 {
		t.Fatal("clusterer still unseeded after warmup")
	}
	chunk := warm[len(warm)-1]
	if allocs := testing.AllocsPerRun(100, func() {
		s.ObserveChunkPar(chunk, 1)
	}); allocs != 0 {
		t.Fatalf("steady-state ObserveChunkPar allocates %v per chunk, want 0", allocs)
	}
}
