package simpoint

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"phasemark/internal/stats"
)

// fixtures returns clustering inputs that exercise the engine's edge
// cases: well-separated blobs, heavy exact duplication (the k-means++
// duplicate-seed fallback and empty-cluster reseeding), zero weights
// (zero-mass clusters among distinct points), and skewed weights.
func fixtures() []struct {
	name    string
	pts     Matrix
	weights []float64
} {
	r := stats.NewRNG(0xfeed)
	var out []struct {
		name    string
		pts     Matrix
		weights []float64
	}
	add := func(name string, pts Matrix, weights []float64) {
		out = append(out, struct {
			name    string
			pts     Matrix
			weights []float64
		}{name, pts, weights})
	}

	blob, _ := blobs([][]float64{{0, 0, 0}, {8, 0, 4}, {0, 9, -3}, {5, 5, 5}}, 40, 0.6, 0xb10b)
	add("blobs", blob, nil)

	// Every point duplicated several times: exact ties everywhere.
	dup := NewMatrix(60, 2)
	for i := 0; i < dup.N; i++ {
		row := dup.Row(i)
		row[0] = float64((i / 12) * 7)
		row[1] = float64((i / 12) % 3)
	}
	add("duplicates", dup, nil)

	// Random points where a third of the weights are zero.
	zw := NewMatrix(50, 4)
	weights := make([]float64, zw.N)
	for i := range zw.Data {
		zw.Data[i] = r.NormFloat64() * 3
	}
	for i := range weights {
		if i%3 == 0 {
			weights[i] = 0
		} else {
			weights[i] = r.Float64() + 0.1
		}
	}
	add("zero-weights", zw, weights)

	// Heavily skewed weights (VLI-style interval masses).
	sk := NewMatrix(45, 3)
	skw := make([]float64, sk.N)
	for i := range sk.Data {
		sk.Data[i] = r.NormFloat64()
	}
	for i := range skw {
		skw[i] = math.Exp(6 * r.Float64())
	}
	add("skewed-weights", sk, skw)
	return out
}

// TestBoundedMatchesNaiveOracle drives the Hamerly-accelerated Lloyd
// loop and the naive full-scan oracle through identical (fixture, k,
// seed) runs and requires bit-identical assignments and centroids, the
// same iteration count, and SSE agreement: the bounds may only skip
// work, never change a decision.
func TestBoundedMatchesNaiveOracle(t *testing.T) {
	for _, fx := range fixtures() {
		weights := fx.weights
		if weights == nil {
			weights = make([]float64, fx.pts.N)
			for i := range weights {
				weights[i] = 1
			}
		}
		for k := 1; k <= 8; k++ {
			for seed := uint64(0); seed < 10; seed++ {
				naive := newRunScratch(fx.pts.N, fx.pts.D, k)
				fast := newRunScratch(fx.pts.N, fx.pts.D, k)
				itN := naive.lloyd(fx.pts, weights, k, stats.NewRNG(seed), 60, false)
				itF := fast.lloyd(fx.pts, weights, k, stats.NewRNG(seed), 60, true)
				label := fmt.Sprintf("%s/k=%d/seed=%d", fx.name, k, seed)
				if itN != itF {
					t.Fatalf("%s: naive took %d iters, bounded %d", label, itN, itF)
				}
				if !reflect.DeepEqual(naive.assign, fast.assign) {
					t.Fatalf("%s: assignments differ", label)
				}
				nd := naive.centers.Data[:k*fx.pts.D]
				fd := fast.centers.Data[:k*fx.pts.D]
				for i := range nd {
					if nd[i] != fd[i] {
						t.Fatalf("%s: centroid coordinate %d differs: %v vs %v", label, i, nd[i], fd[i])
					}
				}
				sN, sF := naive.sse(fx.pts, weights), fast.sse(fx.pts, weights)
				if diff := math.Abs(sN - sF); diff > 1e-12*(1+math.Abs(sN)) {
					t.Fatalf("%s: SSE differs by %g (%v vs %v)", label, diff, sN, sF)
				}
			}
		}
	}
}

// TestKMeansOnceMatchesClusterRun pins the public pipeline to the
// oracle: for a forced k, Cluster's best-restart result must be
// reproducible by feeding kmeansOnce the same derived per-run seeds.
func TestKMeansOnceMatchesClusterRun(t *testing.T) {
	pts, _ := blobs([][]float64{{0, 0}, {6, 1}, {3, 7}}, 25, 0.5, 0xabc)
	const k, seedBase = 3, uint64(99)
	opts := Options{ForceK: k, Seed: seedBase, Workers: 1}
	cl := Cluster(pts, nil, opts)

	weights := make([]float64, pts.N)
	for i := range weights {
		weights[i] = 1
	}
	bestSSE := math.Inf(1)
	var bestAssign []int
	for rs := 0; rs < opts.restarts(); rs++ {
		rng := stats.NewRNG(stats.DeriveSeed(seedBase^seedSalt, uint64(k), uint64(rs)))
		assign, _, sse, _ := kmeansOnce(pts, weights, k, rng, opts.maxIters())
		if sse < bestSSE {
			bestSSE = sse
			bestAssign = assign
		}
	}
	if !reflect.DeepEqual(cl.Assign, bestAssign) {
		t.Fatal("Cluster's best restart differs from the kmeansOnce oracle replay")
	}
}

// TestClusterByteIdenticalAcrossWorkers requires the full model-selection
// pipeline to return identical results no matter how many workers the
// (k, restart) runs fan out over.
func TestClusterByteIdenticalAcrossWorkers(t *testing.T) {
	for _, fx := range fixtures() {
		opts := Options{KMax: 8, Seed: 0x5eed}
		var ref *Clustering
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			opts.Workers = workers
			cl := Cluster(fx.pts, fx.weights, opts)
			if ref == nil {
				ref = cl
				continue
			}
			if cl.K != ref.K || cl.BIC != ref.BIC {
				t.Fatalf("%s: workers=%d chose k=%d BIC=%v, workers=1 chose k=%d BIC=%v",
					fx.name, workers, cl.K, cl.BIC, ref.K, ref.BIC)
			}
			if !reflect.DeepEqual(cl.Assign, ref.Assign) {
				t.Fatalf("%s: workers=%d assignment differs from workers=1", fx.name, workers)
			}
			if !reflect.DeepEqual(cl.Centers, ref.Centers) {
				t.Fatalf("%s: workers=%d centroids differ from workers=1", fx.name, workers)
			}
			if !reflect.DeepEqual(cl.Weights, ref.Weights) {
				t.Fatalf("%s: workers=%d cluster weights differ from workers=1", fx.name, workers)
			}
		}
	}
}

// TestClusterSteadyStateAllocs verifies the per-run scratch actually
// eliminates steady-state allocations: a forced-k re-cluster on one
// worker allocates only the per-run result copies (assign + centers) and
// the fixed bookkeeping, independent of iteration count.
func TestClusterSteadyStateAllocs(t *testing.T) {
	pts, _ := blobs([][]float64{{0, 0, 0}, {9, 9, 9}}, 50, 0.4, 0x11)
	weights := make([]float64, pts.N)
	for i := range weights {
		weights[i] = 1
	}
	s := newRunScratch(pts.N, pts.D, 4)
	allocs := testing.AllocsPerRun(20, func() {
		s.lloyd(pts, weights, 4, stats.NewRNG(7), 60, true)
	})
	// The lloyd loop itself must be allocation-free; the RNG wrapper is
	// the one permitted allocation per run.
	if allocs > 1 {
		t.Fatalf("lloyd allocates %v times per run, want <= 1", allocs)
	}
}
