package simpoint

import "math"

// Hamerly-style triangle-inequality acceleration for the Lloyd assignment
// pass ("Making k-means even faster", Hamerly 2010). Per point the engine
// keeps an upper bound on the distance to its assigned center and a lower
// bound on the distance to every other center; per center, half the
// distance to its nearest sibling (s(c)). A point whose upper bound is
// below max(s(assigned), lower) cannot change assignment, so the full
// k-center scan is skipped. After every centroid update the bounds are
// shifted by how far the centers moved.
//
// The bounds exist only to SKIP work — every distance that decides an
// assignment is still computed exactly as the naive full scan computes
// it, in the same comparison order. To keep skip decisions consistent
// with the naive oracle's computed arithmetic, every bound is padded
// multiplicatively by padRel (plus one ulp via Nextafter): upper bounds
// round up, lower bounds round down. padRel is ~5.7e-14, an order of
// magnitude above the worst-case relative drift of a 15-dimensional
// squared distance plus a square root (~2e-15), so a strict bound
// comparison that triggers a skip implies the same strict ordering of the
// computed squared distances — no center is strictly closer, which under
// the sticky assignment rule is exactly "keep the current cluster", the
// same thing the naive scan would decide.
const padRel = 1.0 / (1 << 44)

// boundUp conservatively rounds a computed distance up.
func boundUp(x float64) float64 {
	return math.Nextafter(x*(1+padRel), math.Inf(1))
}

// boundDown conservatively rounds a computed distance down.
func boundDown(x float64) float64 {
	return math.Nextafter(x*(1-padRel), math.Inf(-1))
}

// initBounds seeds the bound arrays right after k-means++ seeding, when
// minD holds each point's squared distance to its nearest (= assigned)
// center. Nothing is known about the second-closest center yet, so the
// lower bound starts at zero.
func (s *runScratch) initBounds() {
	for i := range s.upper {
		s.upper[i] = boundUp(math.Sqrt(s.minD[i]))
		s.lower[i] = 0
	}
}

// snapshotCenters saves the centroids before an update so applyMoves can
// measure how far each one traveled.
func (s *runScratch) snapshotCenters() {
	copy(s.prev.Data[:s.k*s.prev.D], s.centers.Data[:s.k*s.centers.D])
}

// invalidateBounds resets the bounds to "know nothing" after an update
// that reseeded empty clusters (centroids teleported, so move distances
// do not bound the change). halfSep is zeroed as well — it describes the
// pre-teleport geometry — so the next assignment pass degenerates to
// full scans, which re-tighten every bound.
func (s *runScratch) invalidateBounds() {
	for i := range s.upper {
		s.upper[i] = math.Inf(1)
		s.lower[i] = 0
	}
	for c := 0; c < s.k; c++ {
		s.halfSep[c] = 0
	}
}

// applyMoves shifts the per-point bounds by the centroid movement of the
// last update: the upper bound grows by the assigned center's move; the
// lower bound shrinks by the largest move any *other* center made — the
// second-largest move when the assigned center is the one that moved
// most. It also refreshes s(c), each center's half-distance to its
// nearest sibling.
func (s *runScratch) applyMoves() {
	k := s.k
	maxMove, secMove, argMax := 0.0, 0.0, -1
	for c := 0; c < k; c++ {
		m := boundUp(math.Sqrt(sqDist(s.prev.Row(c), s.centers.Row(c))))
		s.moves[c] = m
		if m > maxMove {
			secMove = maxMove
			maxMove, argMax = m, c
		} else if m > secMove {
			secMove = m
		}
	}
	for c := 0; c < k; c++ {
		sep := math.Inf(1)
		for o := 0; o < k; o++ {
			if o == c {
				continue
			}
			if q := sqDist(s.centers.Row(c), s.centers.Row(o)); q < sep {
				sep = q
			}
		}
		if math.IsInf(sep, 1) { // k == 1: no sibling, nothing can steal a point
			s.halfSep[c] = math.Inf(1)
			continue
		}
		s.halfSep[c] = boundDown(0.5 * math.Sqrt(sep))
	}
	for i := range s.upper {
		a := s.assign[i]
		s.upper[i] = boundUp(s.upper[i] + s.moves[a])
		shrink := maxMove
		if a == argMax {
			shrink = secMove
		}
		l := boundDown(s.lower[i] - shrink)
		if l < 0 {
			l = 0
		}
		s.lower[i] = l
	}
}

// assignBounded is the accelerated assignment pass. It skips the
// k-center scan for every point whose (possibly tightened) upper bound
// proves no other center can be strictly closer; all remaining points
// take the exact full scan the naive pass would run, tracking the best
// and second-best squared distances to re-tighten both bounds.
func (s *runScratch) assignBounded(pts Matrix) (changed bool) {
	n, k := pts.N, s.k
	for i := 0; i < n; i++ {
		a := s.assign[i]
		b := s.halfSep[a]
		if s.lower[i] > b {
			b = s.lower[i]
		}
		if s.upper[i] < b {
			continue // no other center can be strictly closer
		}
		p := pts.Row(i)
		// Tighten the upper bound to the exact current distance and retest
		// before paying for the full scan.
		da := sqDist(p, s.centers.Row(a))
		u := boundUp(math.Sqrt(da))
		s.upper[i] = u
		if u < b {
			continue
		}
		// The scan mirrors assignNaive exactly (sticky assignment, strict-<
		// improvement), additionally tracking the second-best distance to
		// re-tighten the lower bound.
		best, bestD, secD := a, da, math.Inf(1)
		for c := 0; c < k; c++ {
			if c == a {
				continue
			}
			q := sqDist(p, s.centers.Row(c))
			if q < bestD {
				secD = bestD
				best, bestD = c, q
			} else if q < secD {
				secD = q
			}
		}
		if best != a {
			s.assign[i] = best
			changed = true
		}
		s.upper[i] = boundUp(math.Sqrt(bestD))
		s.lower[i] = boundDown(math.Sqrt(secD))
	}
	return changed
}
