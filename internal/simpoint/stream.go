package simpoint

import (
	"phasemark/internal/stats"
	"phasemark/internal/trace"
)

// StreamProjector projects interval BBVs into Matrix rows online, as the
// tracer streams chunks, so the sparse BBVs never need to be retained:
// after a chunk is observed its vectors may be recycled. The resulting
// matrix and weights are bit-identical to ProjectIntervals over the
// materialized interval slice (same projection, same per-row kernel).
//
// Memory is O(intervals·dims) for the matrix itself — at the usual 15
// dimensions this is ~3 KB per thousand intervals, the compact residue a
// bounded-memory pipeline is allowed to keep. For clustering without even
// that, see StreamKMeans.
type StreamProjector struct {
	proj    *stats.Projection
	pts     Matrix
	weights []float64
}

// NewStreamProjector builds a projector matching ProjectIntervals'
// parameters (numBlocks static blocks down to dims dimensions, seeded
// deterministically).
func NewStreamProjector(numBlocks, dims int, seed uint64) *StreamProjector {
	return &StreamProjector{
		proj: stats.NewProjection(numBlocks, dims, seed),
		pts:  Matrix{D: dims},
	}
}

// Observe appends one interval's projected row. Nothing in iv is
// retained.
func (p *StreamProjector) Observe(iv *trace.Interval) {
	d := p.pts.D
	n := len(p.pts.Data)
	if n+d > cap(p.pts.Data) {
		grown := make([]float64, n, max(2*cap(p.pts.Data), 64*d))
		copy(grown, p.pts.Data)
		p.pts.Data = grown
	}
	p.pts.Data = p.pts.Data[: n+d : cap(p.pts.Data)]
	p.pts.N++
	iv.BBV.ProjectInto(p.pts.Data[n:n+d], p.proj)
	p.weights = append(p.weights, float64(iv.Len()))
}

// ObserveChunk folds a streamed chunk (a trace.Config.Sink payload).
func (p *StreamProjector) ObserveChunk(chunk []trace.Interval) {
	for i := range chunk {
		p.Observe(&chunk[i])
	}
}

// Matrix returns the points projected so far and their instruction
// weights. The returns alias the projector's storage; observing more
// intervals afterwards may reallocate, so call this when done.
func (p *StreamProjector) Matrix() (pts Matrix, weights []float64) {
	return p.pts, p.weights
}

// StreamResult is the outcome of a bounded-memory streaming clustering.
type StreamResult struct {
	K       int
	Centers Matrix    // K×D final centroids
	Mass    []float64 // instruction mass absorbed per centroid
	Points  int       // intervals observed
	SSE     float64   // weighted squared distance accumulated at assignment time
}

// Weights reports each centroid's fraction of total instruction mass,
// matching Clustering.Weights semantics.
func (r *StreamResult) Weights() []float64 {
	out := make([]float64, len(r.Mass))
	var total float64
	for _, m := range r.Mass {
		total += m
	}
	if total > 0 {
		for i, m := range r.Mass {
			out[i] = m / total
		}
	}
	return out
}

// StreamKMeans clusters streamed intervals with O(k·d + seed-buffer)
// working memory: the first seedTarget intervals are buffered, projected,
// and clustered with the full Hamerly-accelerated engine (Cluster, forced
// to k) to seed the centroids; every interval after that is projected
// into a reused scratch row and absorbed into its nearest centroid with a
// mass-proportional learning rate (the classic mini-batch k-means update:
// center += (w/mass)·(x − center)), so the centroid means stay the exact
// weighted means of their assigned points under sticky assignment.
// Nothing per-interval is retained — steady-state observation is
// allocation-free.
//
// This is the bounded-memory path: unlike StreamProjector + Cluster it is
// NOT bit-identical to batch clustering (a single pass cannot revisit
// early assignments), so it backs scale amplification and fleet-size
// corpora while the exact path remains the default for paper figures.
type StreamKMeans struct {
	opts       Options
	proj       *stats.Projection
	dims       int
	k          int
	seedTarget int

	// Seeding buffer; released (set to zero values) once seeded.
	buf  Matrix
	bufW []float64
	bufN int

	centers Matrix
	mass    []float64
	scratch []float64
	// parRows is ObserveChunkPar's per-chunk projection scratch (one row
	// per interval), reused across chunks.
	parRows []float64
	points  int
	sse     float64
}

// NewStreamKMeans builds a streaming clusterer over programs with
// numBlocks static blocks. opts follows Cluster: ForceK (or KMax when
// ForceK is 0) fixes the centroid count; Dims, Seed, Restarts, MaxIters
// and Workers govern the seeding run.
func NewStreamKMeans(numBlocks int, opts Options) *StreamKMeans {
	if opts.Dims <= 0 {
		opts.Dims = 15
	}
	k := opts.ForceK
	if k <= 0 {
		k = opts.KMax
	}
	if k <= 0 {
		k = 1
	}
	opts.ForceK = k
	seedTarget := max(8*k, 64)
	return &StreamKMeans{
		opts:       opts,
		proj:       stats.NewProjection(numBlocks, opts.Dims, opts.Seed),
		dims:       opts.Dims,
		k:          k,
		seedTarget: seedTarget,
		buf:        NewMatrix(seedTarget, opts.Dims),
		bufW:       make([]float64, 0, seedTarget),
		scratch:    make([]float64, opts.Dims),
	}
}

// Observe folds one interval into the clustering. Nothing in iv is
// retained.
func (s *StreamKMeans) Observe(iv *trace.Interval) {
	s.points++
	w := float64(iv.Len())
	if s.centers.N == 0 {
		iv.BBV.ProjectInto(s.buf.Row(s.bufN), s.proj)
		s.bufW = append(s.bufW, w)
		s.bufN++
		if s.bufN == s.seedTarget {
			s.seed()
		}
		return
	}
	iv.BBV.ProjectInto(s.scratch, s.proj)
	s.absorb(s.scratch, w)
}

// ObserveChunk folds a streamed chunk (a trace.Config.Sink payload).
func (s *StreamKMeans) ObserveChunk(chunk []trace.Interval) {
	for i := range chunk {
		s.Observe(&chunk[i])
	}
}

// seed clusters the buffered prefix with the batch engine and releases
// the buffer.
func (s *StreamKMeans) seed() {
	o := s.opts
	o.ForceK = min(s.k, s.bufN)
	pts := Matrix{N: s.bufN, D: s.dims, Data: s.buf.Data[:s.bufN*s.dims]}
	c := Cluster(pts, s.bufW, o)
	s.k = c.K
	s.centers = NewMatrix(c.K, s.dims)
	copy(s.centers.Data, c.Centers.Data[:c.K*s.dims])
	s.mass = make([]float64, c.K)
	for i, cl := range c.Assign {
		s.mass[cl] += s.bufW[i]
	}
	s.buf = Matrix{}
	s.bufW = nil
	s.bufN = 0
}

// absorb assigns x (weight w) to its nearest centroid and moves that
// centroid toward x by w/mass — keeping it the running weighted mean of
// everything it has absorbed.
func (s *StreamKMeans) absorb(x []float64, w float64) {
	best, bestD := 0, sqDist(x, s.centers.Row(0))
	for c := 1; c < s.k; c++ {
		if d := sqDist(x, s.centers.Row(c)); d < bestD {
			best, bestD = c, d
		}
	}
	s.sse += w * bestD
	s.mass[best] += w
	if lr := w / s.mass[best]; lr > 0 {
		row := s.centers.Row(best)
		for j, xj := range x {
			row[j] += lr * (xj - row[j])
		}
	}
}

// Finish seeds from whatever is buffered if the stream ended early and
// returns the final centroids. The result's storage is independent of the
// streamer.
func (s *StreamKMeans) Finish() *StreamResult {
	if s.centers.N == 0 && s.bufN > 0 {
		s.seed()
	}
	res := &StreamResult{
		K:      s.k,
		Points: s.points,
		SSE:    s.sse,
	}
	if s.centers.N > 0 {
		res.Centers = NewMatrix(s.centers.N, s.dims)
		copy(res.Centers.Data, s.centers.Data)
		res.Mass = append([]float64(nil), s.mass...)
	} else {
		res.K = 0
	}
	return res
}
