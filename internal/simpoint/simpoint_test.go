package simpoint

import (
	"math"
	"testing"
	"testing/quick"

	"phasemark/internal/stats"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
)

// blobs generates n points per center around the given centers.
func blobs(centers [][]float64, n int, spread float64, seed uint64) (Matrix, []int) {
	r := stats.NewRNG(seed)
	var pts [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + r.NormFloat64()*spread
			}
			pts = append(pts, p)
			labels = append(labels, ci)
		}
	}
	return MatrixFromRows(pts), labels
}

func TestKMeansRecoversWellSeparatedClusters(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	pts, labels := blobs(centers, 30, 0.3, 1)
	cl := Cluster(pts, nil, Options{KMax: 8, Seed: 2})
	if cl.K != 4 {
		t.Fatalf("BIC chose k=%d, want 4", cl.K)
	}
	// All points with the same true label must share a cluster.
	byLabel := map[int]int{}
	for i, lab := range labels {
		if prev, ok := byLabel[lab]; ok {
			if cl.Assign[i] != prev {
				t.Fatalf("label %d split across clusters", lab)
			}
		} else {
			byLabel[lab] = cl.Assign[i]
		}
	}
}

func TestClusterWeightsSumToOne(t *testing.T) {
	centers := [][]float64{{0, 0}, {5, 5}}
	pts, _ := blobs(centers, 20, 0.2, 3)
	w := make([]float64, pts.N)
	for i := range w {
		w[i] = float64(i + 1)
	}
	cl := Cluster(pts, w, Options{KMax: 4, Seed: 4})
	var sum float64
	for _, x := range cl.Weights {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestWeightsDominateCentroids(t *testing.T) {
	// Two points, one with overwhelming weight: with k=1 the centroid
	// must sit almost on the heavy point.
	pts := MatrixFromRows([][]float64{{0}, {10}})
	cl := Cluster(pts, []float64{1000, 1}, Options{ForceK: 1, Seed: 5})
	if cl.Centers.Row(0)[0] > 0.1 {
		t.Fatalf("weighted centroid at %v, want near 0", cl.Centers.Row(0)[0])
	}
}

func TestForceK(t *testing.T) {
	pts, _ := blobs([][]float64{{0, 0}, {10, 10}}, 10, 0.1, 6)
	for _, k := range []int{1, 2, 3, 5} {
		cl := Cluster(pts, nil, Options{ForceK: k, Seed: 7})
		if cl.K != k {
			t.Errorf("ForceK=%d gave k=%d", k, cl.K)
		}
	}
}

func TestClusterDegenerateInputs(t *testing.T) {
	if cl := Cluster(Matrix{}, nil, Options{}); cl.K != 0 {
		t.Error("empty input")
	}
	// All-identical points: must not loop or crash; k collapses to 1.
	rows := make([][]float64, 20)
	for i := range rows {
		rows[i] = []float64{1, 2, 3}
	}
	pts := MatrixFromRows(rows)
	cl := Cluster(pts, nil, Options{KMax: 5, Seed: 1})
	if cl.K != 1 {
		t.Errorf("identical points clustered into k=%d", cl.K)
	}
	// Fewer points than KMax.
	cl2 := Cluster(MatrixFromRows(rows[:3]), nil, Options{KMax: 50, Seed: 1})
	if cl2.K > 3 {
		t.Errorf("k=%d exceeds point count", cl2.K)
	}
}

func TestClusterDeterminism(t *testing.T) {
	pts, _ := blobs([][]float64{{0, 0}, {8, 8}, {0, 8}}, 15, 0.4, 9)
	a := Cluster(pts, nil, Options{KMax: 6, Seed: 42})
	b := Cluster(pts, nil, Options{KMax: 6, Seed: 42})
	if a.K != b.K {
		t.Fatal("nondeterministic k")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("nondeterministic assignment")
		}
	}
}

// Property: every point is assigned to its nearest center after k-means
// converges.
func TestAssignmentIsNearestCenter(t *testing.T) {
	f := func(seed uint64) bool {
		pts, _ := blobs([][]float64{{0, 0}, {6, 6}}, 12, 0.5, seed)
		cl := Cluster(pts, nil, Options{KMax: 4, Seed: seed})
		for i := 0; i < pts.N; i++ {
			p := pts.Row(i)
			best, bestD := -1, math.Inf(1)
			for c := 0; c < cl.Centers.N; c++ {
				if d := sqDist(p, cl.Centers.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			if sqDist(p, cl.Centers.Row(cl.Assign[i])) > bestD+1e-9 && best != cl.Assign[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mkInterval(idx int, start, length, cycles uint64) *trace.Interval {
	return &trace.Interval{
		Index: idx,
		Start: start,
		End:   start + length,
		Perf:  uarch.Counters{Instrs: length, Cycles: cycles},
	}
}

func TestPickPointsAndEvaluate(t *testing.T) {
	// Three intervals in two obvious clusters.
	pts := MatrixFromRows([][]float64{{0, 0}, {0.1, 0}, {9, 9}})
	ivs := []*trace.Interval{
		mkInterval(0, 0, 100, 100),    // CPI 1.0
		mkInterval(1, 100, 100, 110),  // CPI 1.1
		mkInterval(2, 200, 800, 2400), // CPI 3.0
	}
	weights := []float64{100, 100, 800}
	cl := Cluster(pts, weights, Options{ForceK: 2, Seed: 1})
	picked := PickPoints(cl, pts)
	if len(picked) != 2 {
		t.Fatalf("picked %d points", len(picked))
	}
	est := Evaluate(picked, ivs, 2.6, 2)
	// Cluster A weight 0.2 (CPI 1.0 or 1.1), cluster B weight 0.8 (CPI 3).
	if est.EstimatedCPI < 2.5 || est.EstimatedCPI > 2.7 {
		t.Fatalf("estimated CPI = %v", est.EstimatedCPI)
	}
	if est.SimulatedIns == 0 || est.SimulatedIns >= 1000 {
		t.Fatalf("simulated instructions = %d", est.SimulatedIns)
	}
}

func TestFilterCoverage(t *testing.T) {
	pts := []Point{
		{Cluster: 0, Interval: 0, Weight: 0.5},
		{Cluster: 1, Interval: 1, Weight: 0.3},
		{Cluster: 2, Interval: 2, Weight: 0.15},
		{Cluster: 3, Interval: 3, Weight: 0.05},
	}
	kept := Filter(pts, 0.75)
	if len(kept) != 2 {
		t.Fatalf("kept %d points, want 2 (0.5+0.3 >= 0.75)", len(kept))
	}
	var sum float64
	for _, p := range kept {
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("renormalized weights sum to %v", sum)
	}
	if got := Filter(pts, 1.0); len(got) != 4 {
		t.Fatalf("full coverage kept %d", len(got))
	}
}

func TestBICPrefersTrueKOverOverfit(t *testing.T) {
	// With clear structure, BIC must not pick k near KMax.
	pts, _ := blobs([][]float64{{0, 0}, {20, 0}, {0, 20}}, 40, 0.5, 11)
	cl := Cluster(pts, nil, Options{KMax: 20, Seed: 12})
	if cl.K > 6 {
		t.Fatalf("BIC overfit: k=%d for 3 blobs", cl.K)
	}
	if cl.K < 3 {
		t.Fatalf("BIC underfit: k=%d for 3 blobs", cl.K)
	}
}
