package simpoint

// Matrix is a dense row-major point matrix: N rows (points or centroids)
// of D columns each, in one contiguous allocation. The clustering engine
// works on this layout so distance kernels stream through memory and
// per-run scratch can be reused without per-row allocations.
type Matrix struct {
	N, D int
	Data []float64 // row-major, len N*D
}

// NewMatrix returns a zeroed n-by-d matrix.
func NewMatrix(n, d int) Matrix {
	return Matrix{N: n, D: d, Data: make([]float64, n*d)}
}

// Row returns row i, aliasing the matrix storage. The slice is
// capacity-clipped so an append can never clobber the next row.
func (m Matrix) Row(i int) []float64 {
	return m.Data[i*m.D : (i+1)*m.D : (i+1)*m.D]
}

// MatrixFromRows copies a slice-of-rows into a Matrix (all rows must
// share the first row's length). Convenience for tests and callers that
// assemble points incrementally.
func MatrixFromRows(rows [][]float64) Matrix {
	if len(rows) == 0 {
		return Matrix{}
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}
