package simpoint

import (
	"math"
	"sort"

	"phasemark/internal/stats"
	"phasemark/internal/trace"
)

// Point is one chosen simulation point: the representative interval of a
// cluster and the fraction of execution it stands for.
type Point struct {
	Cluster  int
	Interval int
	Weight   float64
}

// PickPoints selects, for each cluster, the interval closest to the
// centroid (ties to the earlier interval, favoring early simulation
// points as in [22]).
func PickPoints(c *Clustering, points Matrix) []Point {
	best := make([]int, c.K)
	bestD := make([]float64, c.K)
	for i := range best {
		best[i] = -1
		bestD[i] = math.Inf(1)
	}
	for i := 0; i < points.N; i++ {
		cl := c.Assign[i]
		if d := sqDist(points.Row(i), c.Centers.Row(cl)); d < bestD[cl] {
			best[cl], bestD[cl] = i, d
		}
	}
	var out []Point
	for cl := 0; cl < c.K; cl++ {
		if best[cl] < 0 {
			continue
		}
		out = append(out, Point{Cluster: cl, Interval: best[cl], Weight: c.Weights[cl]})
	}
	return out
}

// Filter keeps the heaviest points until they cover at least the given
// fraction of execution, renormalizing weights — the 95%/99% coverage
// optimization that trades accuracy for simulation time.
func Filter(pts []Point, coverage float64) []Point {
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Weight > sorted[j].Weight })
	var kept []Point
	var acc float64
	for _, p := range sorted {
		kept = append(kept, p)
		acc += p.Weight
		if acc >= coverage {
			break
		}
	}
	if acc > 0 {
		for i := range kept {
			kept[i].Weight /= acc
		}
	}
	return kept
}

// Estimate is the SimPoint evaluation for one configuration.
type Estimate struct {
	Points        []Point
	SimulatedIns  uint64  // instructions that must be simulated in detail
	EstimatedCPI  float64 // weighted CPI over the simulation points
	TrueCPI       float64
	RelativeError float64 // |est - true| / true
	K             int
}

// Evaluate computes what simulating only the chosen points would report:
// the weighted CPI estimate, its relative error against the full run, and
// the detailed-simulation cost in instructions.
func Evaluate(pts []Point, ivs []*trace.Interval, trueCPI float64, k int) Estimate {
	var est Estimate
	est.Points = pts
	est.K = k
	est.TrueCPI = trueCPI
	var cpi float64
	var wsum float64
	for _, p := range pts {
		iv := ivs[p.Interval]
		est.SimulatedIns += iv.Len()
		cpi += p.Weight * iv.CPI()
		wsum += p.Weight
	}
	if wsum > 0 {
		est.EstimatedCPI = cpi / wsum
	}
	if trueCPI > 0 {
		est.RelativeError = math.Abs(est.EstimatedCPI-trueCPI) / trueCPI
	}
	return est
}

// ProjectIntervals projects interval BBVs to dims dimensions and returns
// the point matrix plus per-point instruction weights. The matrix is one
// contiguous allocation; each interval projects straight into its row.
func ProjectIntervals(ivs []*trace.Interval, numBlocks, dims int, seed uint64) (pts Matrix, weights []float64) {
	proj := stats.NewProjection(numBlocks, dims, seed)
	pts = NewMatrix(len(ivs), dims)
	weights = make([]float64, len(ivs))
	for i, iv := range ivs {
		iv.BBV.ProjectInto(pts.Row(i), proj)
		weights[i] = float64(iv.Len())
	}
	return pts, weights
}

// Classify runs the full SimPoint pipeline over measured intervals:
// project, cluster, and return the clustering (phase IDs per interval).
func Classify(res *trace.Result, opts Options) *Clustering {
	if opts.Dims <= 0 {
		opts.Dims = 15
	}
	pts, weights := ProjectIntervals(res.Intervals, res.NumBlocks, opts.Dims, opts.Seed)
	c := Cluster(pts, weights, opts)
	c.points = pts
	return c
}

// Points returns the projected points cached by Classify (the zero
// Matrix if the clustering came from Cluster directly).
func (c *Clustering) Points() Matrix { return c.points }
