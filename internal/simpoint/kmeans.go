// Package simpoint reimplements the SimPoint phase-classification tool the
// paper builds on: basic block vectors are randomly projected to a few
// dimensions and clustered with (weighted) k-means; the number of clusters
// is chosen with the Bayesian Information Criterion; one simulation point
// is picked per cluster (the interval closest to the centroid) and the
// cluster weights estimate whole-program metrics from the points alone.
//
// Interval weights make this the SimPoint 3.0 VLI variant (§5.2, [15]):
// with variable-length intervals each interval represents a different
// fraction of execution, so distances to centroids and BIC likelihoods are
// weighted by instruction mass.
//
// The engine fans the independent (k, restart) runs across a worker pool
// and accelerates each run's Lloyd iterations with Hamerly-style
// triangle-inequality bounds (see engine.go). Every run derives its own
// RNG stream from Options.Seed and its (k, restart) pair, so results are
// byte-identical at any worker count; the naive single-threaded Lloyd
// pass survives as kmeansOnce, the test oracle the accelerated path is
// checked against.
package simpoint

import (
	"math"
	"runtime"

	"phasemark/internal/obs"
	"phasemark/internal/par"
	"phasemark/internal/stats"
)

// Clustering metrics: total k-means work done by SimPoint classification
// and the iteration count it took each run to converge.
var (
	obsClusterings = obs.NewCounter("simpoint.clusterings")
	obsKMeansRuns  = obs.NewCounter("simpoint.kmeans_runs")
	obsKMeansIters = obs.NewCounter("simpoint.kmeans_iters")
	obsItersPerRun = obs.NewHist("simpoint.kmeans_iters_per_run")
)

// seedSalt decorrelates clustering RNG streams from other uses of the
// same user-level seed.
const seedSalt = 0x51e0b6c4d5a3f7e9

// Options configures clustering.
type Options struct {
	KMax       int     // largest k tried (paper: 10 for 10M, 30 for 1M fixed, 100/others per config)
	Dims       int     // projection dimensionality (paper: 15)
	Seed       uint64  // RNG seed for projection and seeding
	Restarts   int     // k-means restarts per k (default 3)
	MaxIters   int     // k-means iteration cap (default 60)
	BICPercent float64 // pick smallest k with normalized BIC >= this (default 0.9)
	ForceK     int     // when > 0, skip model selection and use exactly this k
	Workers    int     // (k, restart) runs clustered in parallel (default GOMAXPROCS)
}

func (o Options) restarts() int {
	if o.Restarts <= 0 {
		return 3
	}
	return o.Restarts
}

func (o Options) maxIters() int {
	if o.MaxIters <= 0 {
		return 60
	}
	return o.MaxIters
}

func (o Options) bicPercent() float64 {
	if o.BICPercent <= 0 || o.BICPercent > 1 {
		return 0.9
	}
	return o.BICPercent
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Clustering is the result of k-means phase classification.
type Clustering struct {
	K       int
	Assign  []int     // point index -> cluster
	Centers Matrix    // K centroids
	Weights []float64 // fraction of total instruction mass per cluster
	BIC     float64

	points Matrix // cached projected points (set by Classify)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// runScratch is one worker's reusable state for a single (k, restart)
// k-means run: centroid matrices, accumulators, the assignment, and the
// Hamerly bound arrays. Sized once for the largest k a Cluster call
// tries, then reused across every run that worker executes, so the
// steady-state engine allocates nothing.
type runScratch struct {
	k int // current run's cluster count (rows of centers in use)

	centers Matrix // kmax x d storage; rows [0, k) live
	prev    Matrix // centroid snapshot from before the last update
	sums    Matrix // weighted coordinate sums per cluster
	mass    []float64
	assign  []int

	// Seeding / reseeding scratch.
	minD     []float64 // squared distance to the nearest center
	reseeded []bool

	// Hamerly bounds (engine.go).
	upper   []float64 // upper bound on distance to the assigned center
	lower   []float64 // lower bound on distance to the second-closest center
	moves   []float64 // per-center move distance of the last update
	halfSep []float64 // half the distance to the nearest other center
}

func newRunScratch(n, d, kmax int) *runScratch {
	return &runScratch{
		centers:  NewMatrix(kmax, d),
		prev:     NewMatrix(kmax, d),
		sums:     NewMatrix(kmax, d),
		mass:     make([]float64, kmax),
		assign:   make([]int, n),
		minD:     make([]float64, n),
		reseeded: make([]bool, n),
		upper:    make([]float64, n),
		lower:    make([]float64, n),
		moves:    make([]float64, kmax),
		halfSep:  make([]float64, kmax),
	}
}

// seed runs incremental weighted k-means++ seeding: minD carries each
// point's squared distance to its nearest chosen center across rounds, so
// adding center m costs one O(n·d) pass instead of recomputing all m
// distances — O(n·k·d) total instead of O(n·k²·d). The min chain,
// accumulation order, and RNG consumption match the textbook recompute
// formulation bit for bit. Tracking the argmin alongside minD yields the
// initial assignment for free.
func (s *runScratch) seed(pts Matrix, weights []float64, rng *stats.RNG) {
	n, k := pts.N, s.k
	first := rng.Intn(n)
	copy(s.centers.Row(0), pts.Row(first))
	c0 := s.centers.Row(0)
	for i := 0; i < n; i++ {
		s.minD[i] = sqDist(pts.Row(i), c0)
		s.assign[i] = 0
	}
	for m := 1; m < k; m++ {
		var total float64
		for i := 0; i < n; i++ {
			total += s.minD[i] * weights[i]
		}
		var pick int
		if total == 0 {
			// All remaining points coincide with centers; duplicate one.
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			pick = n - 1
			var acc float64
			for i := 0; i < n; i++ {
				acc += s.minD[i] * weights[i]
				if acc >= r {
					pick = i
					break
				}
			}
		}
		cm := s.centers.Row(m)
		copy(cm, pts.Row(pick))
		for i := 0; i < n; i++ {
			if q := sqDist(pts.Row(i), cm); q < s.minD[i] {
				s.minD[i] = q
				s.assign[i] = m
			}
		}
	}
}

// update recomputes the weighted centroids from the current assignment
// and reports whether any zero-mass cluster had to be reseeded (in which
// case centroids moved arbitrarily and distance bounds are invalid).
func (s *runScratch) update(pts Matrix, weights []float64) (reseeded bool) {
	n, k := pts.N, s.k
	for c := 0; c < k; c++ {
		s.mass[c] = 0
		row := s.sums.Row(c)
		for j := range row {
			row[j] = 0
		}
	}
	for i := 0; i < n; i++ {
		c := s.assign[i]
		w := weights[i]
		s.mass[c] += w
		sum := s.sums.Row(c)
		for j, x := range pts.Row(i) {
			sum[j] += x * w
		}
	}
	anyEmpty := false
	for c := 0; c < k; c++ {
		if s.mass[c] == 0 {
			anyEmpty = true
			continue
		}
		row, sum := s.centers.Row(c), s.sums.Row(c)
		for j := range row {
			row[j] = sum[j] / s.mass[c]
		}
	}
	if anyEmpty {
		s.reseedEmpty(pts)
	}
	return anyEmpty
}

// reseedEmpty relocates every zero-mass cluster to the most isolated
// point. All non-empty centroids are updated before this runs, so one
// shared pass computes each point's distance to its (fresh) centroid;
// per empty cluster, in ascending order, the farthest not-yet-claimed
// point becomes the new centroid and is claimed in assign. Several
// clusters can be empty in one update; each must take a *distinct* point
// or they would all land on the same most-isolated point and stay
// duplicated centroids forever.
func (s *runScratch) reseedEmpty(pts Matrix) {
	n, k := pts.N, s.k
	for i := 0; i < n; i++ {
		s.minD[i] = sqDist(pts.Row(i), s.centers.Row(s.assign[i]))
		s.reseeded[i] = false
	}
	for c := 0; c < k; c++ {
		if s.mass[c] != 0 {
			continue
		}
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			if s.reseeded[i] {
				continue
			}
			if s.minD[i] > farD {
				far, farD = i, s.minD[i]
			}
		}
		if far < 0 {
			continue // more empty clusters than points
		}
		s.reseeded[far] = true
		copy(s.centers.Row(c), pts.Row(far))
		s.assign[far] = c
		s.minD[far] = 0
		// The relocated centroid changes the reference distance of any
		// zero-weight point still assigned to c.
		for i := 0; i < n; i++ {
			if i != far && s.assign[i] == c {
				s.minD[i] = sqDist(pts.Row(i), s.centers.Row(c))
			}
		}
	}
}

// assignNaive is the reference assignment pass: a full scan over every
// center for every point. Assignment is sticky — a point moves only to a
// *strictly* closer center — so exact ties (duplicate points or
// centroids) keep their current cluster. Lowest-index-argmin ties would
// let duplicated centroids steal each other's points back every
// iteration, so a run over duplicate-heavy inputs would oscillate
// instead of converging.
func (s *runScratch) assignNaive(pts Matrix) (changed bool) {
	n, k := pts.N, s.k
	for i := 0; i < n; i++ {
		p := pts.Row(i)
		a := s.assign[i]
		best, bestD := a, sqDist(p, s.centers.Row(a))
		for c := 0; c < k; c++ {
			if c == a {
				continue
			}
			if q := sqDist(p, s.centers.Row(c)); q < bestD {
				best, bestD = c, q
			}
		}
		if best != a {
			s.assign[i] = best
			changed = true
		}
	}
	return changed
}

// sse computes the weighted within-cluster sum of squared distances.
func (s *runScratch) sse(pts Matrix, weights []float64) float64 {
	var sse float64
	for i := 0; i < pts.N; i++ {
		sse += weights[i] * sqDist(pts.Row(i), s.centers.Row(s.assign[i]))
	}
	return sse
}

// lloyd runs one seeded, weighted k-means run to convergence (or the
// iteration cap) and reports the number of assignment passes. bounded
// selects the Hamerly-accelerated assignment (engine.go); both paths
// produce identical assignments and centroids, which the equivalence
// tests enforce. The result always pairs the final assignment with the
// centroids it was computed against, so every point ends assigned to its
// nearest returned centroid.
//
// Termination is two-fold. The usual criterion is an assignment pass
// that moves nothing. But when the data has fewer distinct locations
// than clusters (duplicate-heavy BBVs), empty-cluster reseeding can
// cycle: a reseeded centroid lands on a duplicate pile, steals it from
// its owner, which goes empty and reseeds in turn, forever. Every Lloyd
// sub-step — centroid update, reseed claim, strictly-closer
// reassignment — is SSE-non-increasing, so a weighted SSE that fails to
// strictly decrease means the run is cycling through equal-cost states
// (or has hit floating-point resolution) and is done; without this test
// such runs would spin at the iteration cap doing no useful work.
func (s *runScratch) lloyd(pts Matrix, weights []float64, k int, rng *stats.RNG, maxIters int, bounded bool) int {
	s.k = k
	s.seed(pts, weights, rng)
	if bounded {
		s.initBounds()
	}
	iters := 1 // the seeding pass assigns every point
	prevSSE := math.Inf(1)
	for iters < maxIters {
		if bounded {
			s.snapshotCenters()
		}
		reseeded := s.update(pts, weights)
		var changed bool
		if bounded {
			if reseeded {
				s.invalidateBounds()
			} else {
				s.applyMoves()
			}
			changed = s.assignBounded(pts)
		} else {
			changed = s.assignNaive(pts)
		}
		iters++
		if !changed {
			break
		}
		sse := s.sse(pts, weights)
		if sse >= prevSSE {
			break
		}
		prevSSE = sse
	}
	return iters
}

// kmeansOnce runs one naive weighted k-means run — seeding, full-scan
// Lloyd iterations, no bounds, no parallelism. It is the engine's test
// oracle: Cluster must produce bit-identical assignments and centroids
// for the same (points, weights, k, rng) run. It also reports how many
// assignment iterations it performed (for metrics).
func kmeansOnce(pts Matrix, weights []float64, k int, rng *stats.RNG, maxIters int) ([]int, Matrix, float64, int) {
	s := newRunScratch(pts.N, pts.D, k)
	iters := s.lloyd(pts, weights, k, rng, maxIters, false)
	assign := append([]int(nil), s.assign...)
	centers := NewMatrix(k, pts.D)
	copy(centers.Data, s.centers.Data[:k*pts.D])
	return assign, centers, s.sse(pts, weights), iters
}

// bicScore computes the Pelleg–Moore (X-means) BIC for a clustering, with
// interval weights acting as fractional point counts.
func bicScore(pts Matrix, weights []float64, assign []int, centers Matrix) float64 {
	k := centers.N
	d := float64(pts.D)
	var r float64
	rn := make([]float64, k)
	var sse float64
	for i := 0; i < pts.N; i++ {
		r += weights[i]
		rn[assign[i]] += weights[i]
		sse += weights[i] * sqDist(pts.Row(i), centers.Row(assign[i]))
	}
	if r <= float64(k) {
		return math.Inf(-1)
	}
	variance := sse / (r - float64(k))
	if variance <= 0 {
		variance = 1e-12
	}
	var ll float64
	for c := 0; c < k; c++ {
		if rn[c] <= 0 {
			continue
		}
		ll += rn[c]*math.Log(rn[c]/r) -
			rn[c]*d/2*math.Log(2*math.Pi*variance) -
			(rn[c]-1)*d/2
	}
	params := float64(k)*(d+1) + 1
	return ll - params/2*math.Log(r)
}

// Cluster classifies the projected points. weights is the instruction mass
// of each point (nil for uniform). It tries k = 1..KMax, scores each best
// restart with BIC, and returns the smallest k whose normalized BIC
// reaches BICPercent of the observed range — SimPoint's model selection.
//
// The (k, restart) runs are independent, so they fan out across
// Options.Workers workers, each with its own reusable scratch. Every run
// seeds its RNG with stats.DeriveSeed(Seed, k, restart), so the output is
// byte-identical at any worker count and any execution order.
func Cluster(pts Matrix, weights []float64, opts Options) *Clustering {
	n := pts.N
	if n == 0 {
		return &Clustering{}
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	kmax := opts.KMax
	if kmax <= 0 {
		kmax = 10
	}
	if kmax > n {
		kmax = n
	}
	kmin := 1
	if opts.ForceK > 0 {
		kmin = opts.ForceK
		kmax = opts.ForceK
		if kmax > n {
			kmin, kmax = n, n
		}
	}
	sp := obs.StartSpan("simpoint.cluster", "")
	defer sp.End()
	obsClusterings.Inc()

	restarts := opts.restarts()
	maxIters := opts.maxIters()
	type runResult struct {
		k, rs   int
		assign  []int
		centers Matrix
		sse     float64
	}
	runs := make([]runResult, (kmax-kmin+1)*restarts)
	for idx := range runs {
		runs[idx].k = kmin + idx/restarts
		runs[idx].rs = idx % restarts
	}
	workers := opts.workers()
	if workers > len(runs) {
		workers = len(runs)
	}
	engines := make([]*runScratch, workers)
	par.ForEach(len(runs), workers, nil, func(worker, idx int) {
		s := engines[worker]
		if s == nil {
			s = newRunScratch(n, pts.D, kmax)
			engines[worker] = s
		}
		r := &runs[idx]
		rng := stats.NewRNG(stats.DeriveSeed(opts.Seed^seedSalt, uint64(r.k), uint64(r.rs)))
		iters := s.lloyd(pts, weights, r.k, rng, maxIters, true)
		obsKMeansRuns.Inc()
		obsKMeansIters.Add(uint64(iters))
		obsItersPerRun.Observe(uint64(iters))
		r.assign = append([]int(nil), s.assign...)
		r.centers = NewMatrix(r.k, pts.D)
		copy(r.centers.Data, s.centers.Data[:r.k*pts.D])
		r.sse = s.sse(pts, weights)
	})

	type result struct {
		c   Clustering
		bic float64
	}
	results := make([]result, 0, kmax-kmin+1)
	for k := kmin; k <= kmax; k++ {
		bestSSE := math.Inf(1)
		var best *runResult
		for rs := 0; rs < restarts; rs++ {
			r := &runs[(k-kmin)*restarts+rs]
			if r.sse < bestSSE {
				bestSSE = r.sse
				best = r
			}
		}
		c := Clustering{K: k, Assign: best.assign, Centers: best.centers}
		c.BIC = bicScore(pts, weights, c.Assign, c.Centers)
		results = append(results, result{c: c, bic: c.BIC})
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range results {
		lo = math.Min(lo, r.bic)
		hi = math.Max(hi, r.bic)
	}
	chosen := &results[len(results)-1].c
	if hi > lo {
		for i := range results {
			if (results[i].bic-lo)/(hi-lo) >= opts.bicPercent() {
				chosen = &results[i].c
				break
			}
		}
	} else {
		chosen = &results[0].c
	}
	// Cluster weights by instruction mass.
	chosen.Weights = make([]float64, chosen.K)
	var total float64
	for i, c := range chosen.Assign {
		chosen.Weights[c] += weights[i]
		total += weights[i]
	}
	if total > 0 {
		for c := range chosen.Weights {
			chosen.Weights[c] /= total
		}
	}
	return chosen
}
