// Package simpoint reimplements the SimPoint phase-classification tool the
// paper builds on: basic block vectors are randomly projected to a few
// dimensions and clustered with (weighted) k-means; the number of clusters
// is chosen with the Bayesian Information Criterion; one simulation point
// is picked per cluster (the interval closest to the centroid) and the
// cluster weights estimate whole-program metrics from the points alone.
//
// Interval weights make this the SimPoint 3.0 VLI variant (§5.2, [15]):
// with variable-length intervals each interval represents a different
// fraction of execution, so distances to centroids and BIC likelihoods are
// weighted by instruction mass.
package simpoint

import (
	"math"

	"phasemark/internal/obs"
	"phasemark/internal/stats"
)

// Clustering metrics: total k-means work done by SimPoint classification
// and the iteration count it took each run to converge.
var (
	obsClusterings = obs.NewCounter("simpoint.clusterings")
	obsKMeansRuns  = obs.NewCounter("simpoint.kmeans_runs")
	obsKMeansIters = obs.NewCounter("simpoint.kmeans_iters")
	obsItersPerRun = obs.NewHist("simpoint.kmeans_iters_per_run")
)

// Options configures clustering.
type Options struct {
	KMax       int     // largest k tried (paper: 10 for 10M, 30 for 1M fixed, 100/others per config)
	Dims       int     // projection dimensionality (paper: 15)
	Seed       uint64  // RNG seed for projection and seeding
	Restarts   int     // k-means restarts per k (default 3)
	MaxIters   int     // k-means iteration cap (default 60)
	BICPercent float64 // pick smallest k with normalized BIC >= this (default 0.9)
	ForceK     int     // when > 0, skip model selection and use exactly this k
}

func (o Options) restarts() int {
	if o.Restarts <= 0 {
		return 3
	}
	return o.Restarts
}

func (o Options) maxIters() int {
	if o.MaxIters <= 0 {
		return 60
	}
	return o.MaxIters
}

func (o Options) bicPercent() float64 {
	if o.BICPercent <= 0 || o.BICPercent > 1 {
		return 0.9
	}
	return o.BICPercent
}

// Clustering is the result of k-means phase classification.
type Clustering struct {
	K       int
	Assign  []int       // point index -> cluster
	Centers [][]float64 // K centroids
	Weights []float64   // fraction of total instruction mass per cluster
	BIC     float64

	points [][]float64 // cached projected points (set by Classify)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kmeansOnce runs weighted k-means from a k-means++ seeding. It also
// reports how many assignment iterations it performed (for metrics).
func kmeansOnce(points [][]float64, weights []float64, k int, rng *stats.RNG, maxIters int) ([]int, [][]float64, float64, int) {
	n := len(points)
	d := len(points[0])
	centers := make([][]float64, 0, k)

	// k-means++ seeding (weighted by point mass times distance).
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	dist := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range points {
			dist[i] = math.Inf(1)
			for _, c := range centers {
				if q := sqDist(p, c); q < dist[i] {
					dist[i] = q
				}
			}
			total += dist[i] * weights[i]
		}
		if total == 0 {
			// All remaining points coincide with centers; duplicate one.
			centers = append(centers, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		pick := n - 1
		var acc float64
		for i := range points {
			acc += dist[i] * weights[i]
			if acc >= r {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
	}

	assign := make([]int, n)
	iters := 0
	for iter := 0; iter < maxIters; iter++ {
		iters++
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if q := sqDist(p, centers[c]); q < bestD {
					best, bestD = c, q
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Weighted centroid update.
		sums := make([][]float64, k)
		mass := make([]float64, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			mass[c] += weights[i]
			for j, x := range p {
				sums[c][j] += x * weights[i]
			}
		}
		var reseeded map[int]bool
		for c := range centers {
			if mass[c] == 0 {
				// Re-seed an empty (zero-mass) cluster at the most isolated
				// point. Several clusters can be empty in one update; each
				// must take a *distinct* point — and claim it in assign — or
				// they would all land on the same most-isolated point and
				// stay duplicated centroids forever.
				far, farD := -1, -1.0
				for i, p := range points {
					if reseeded[i] {
						continue
					}
					if q := sqDist(p, centers[assign[i]]); q > farD {
						far, farD = i, q
					}
				}
				if far < 0 {
					continue // more empty clusters than points
				}
				if reseeded == nil {
					reseeded = make(map[int]bool)
				}
				reseeded[far] = true
				copy(centers[c], points[far])
				assign[far] = c
				continue
			}
			for j := range centers[c] {
				centers[c][j] = sums[c][j] / mass[c]
			}
		}
	}
	var sse float64
	for i, p := range points {
		sse += weights[i] * sqDist(p, centers[assign[i]])
	}
	return assign, centers, sse, iters
}

// bicScore computes the Pelleg–Moore (X-means) BIC for a clustering, with
// interval weights acting as fractional point counts.
func bicScore(points [][]float64, weights []float64, assign []int, centers [][]float64) float64 {
	k := len(centers)
	d := float64(len(points[0]))
	var r float64
	rn := make([]float64, k)
	var sse float64
	for i, p := range points {
		r += weights[i]
		rn[assign[i]] += weights[i]
		sse += weights[i] * sqDist(p, centers[assign[i]])
	}
	if r <= float64(k) {
		return math.Inf(-1)
	}
	variance := sse / (r - float64(k))
	if variance <= 0 {
		variance = 1e-12
	}
	var ll float64
	for c := 0; c < k; c++ {
		if rn[c] <= 0 {
			continue
		}
		ll += rn[c]*math.Log(rn[c]/r) -
			rn[c]*d/2*math.Log(2*math.Pi*variance) -
			(rn[c]-1)*d/2
	}
	params := float64(k)*(d+1) + 1
	return ll - params/2*math.Log(r)
}

// Cluster classifies the projected points. weights is the instruction mass
// of each point (nil for uniform). It tries k = 1..KMax, scores each best
// restart with BIC, and returns the smallest k whose normalized BIC
// reaches BICPercent of the observed range — SimPoint's model selection.
func Cluster(points [][]float64, weights []float64, opts Options) *Clustering {
	n := len(points)
	if n == 0 {
		return &Clustering{}
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	kmax := opts.KMax
	if kmax <= 0 {
		kmax = 10
	}
	if kmax > n {
		kmax = n
	}
	kmin := 1
	if opts.ForceK > 0 {
		kmin = opts.ForceK
		kmax = opts.ForceK
		if kmax > n {
			kmin, kmax = n, n
		}
	}
	sp := obs.StartSpan("simpoint.cluster", "")
	defer sp.End()
	obsClusterings.Inc()
	rng := stats.NewRNG(opts.Seed ^ 0x51e0b6c4d5a3f7e9)

	type result struct {
		c   Clustering
		bic float64
	}
	results := make([]result, 0, kmax)
	for k := kmin; k <= kmax; k++ {
		bestSSE := math.Inf(1)
		var best Clustering
		for rs := 0; rs < opts.restarts(); rs++ {
			assign, centers, sse, iters := kmeansOnce(points, weights, k, rng, opts.maxIters())
			obsKMeansRuns.Inc()
			obsKMeansIters.Add(uint64(iters))
			obsItersPerRun.Observe(uint64(iters))
			if sse < bestSSE {
				bestSSE = sse
				best = Clustering{K: k, Assign: assign, Centers: centers}
			}
		}
		best.BIC = bicScore(points, weights, best.Assign, best.Centers)
		results = append(results, result{c: best, bic: best.BIC})
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range results {
		lo = math.Min(lo, r.bic)
		hi = math.Max(hi, r.bic)
	}
	chosen := &results[len(results)-1].c
	if hi > lo {
		for i := range results {
			if (results[i].bic-lo)/(hi-lo) >= opts.bicPercent() {
				chosen = &results[i].c
				break
			}
		}
	} else {
		chosen = &results[0].c
	}
	// Cluster weights by instruction mass.
	chosen.Weights = make([]float64, chosen.K)
	var total float64
	for i, c := range chosen.Assign {
		chosen.Weights[c] += weights[i]
		total += weights[i]
	}
	if total > 0 {
		for c := range chosen.Weights {
			chosen.Weights[c] /= total
		}
	}
	return chosen
}
