package simpoint

import (
	"testing"

	"phasemark/internal/stats"
)

func centersEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Regression for the empty-cluster re-seeding bug: when two clusters went
// empty in the same centroid update, both were re-seeded at the same
// "most isolated" point, guaranteeing a duplicate centroid (and the
// clusters stayed empty forever, since ties assign to the lower index).
//
// Duplicate points are the realistic trigger: intervals of a repeating
// phase have identical BBVs, so k-means++ runs out of distinct seeds
// (its duplicate-seeding fallback) and whole clusters tie away to the
// lowest-indexed twin center.
func TestKMeansReseedsEmptyClustersAtDistinctPoints(t *testing.T) {
	// Two distinct locations, three copies each; k=4 forces at least two
	// duplicate seeds, and before the fix the two resulting empty clusters
	// never recovered.
	points := MatrixFromRows([][]float64{
		{0, 0}, {0, 0}, {0, 0},
		{10, 10}, {10, 10}, {10, 10},
	})
	weights := []float64{1, 1, 1, 1, 1, 1}
	for seed := uint64(0); seed < 50; seed++ {
		assign, _, _, _ := kmeansOnce(points, weights, 4, stats.NewRNG(seed), 40)
		got := map[int]int{}
		for _, a := range assign {
			if a < 0 || a >= 4 {
				t.Fatalf("seed %d: assignment %d out of range", seed, a)
			}
			got[a]++
		}
		if len(got) != 4 {
			t.Fatalf("seed %d: only %d of 4 clusters non-empty (assignments %v)", seed, len(got), assign)
		}
	}
}

// With at least k distinct points, simultaneous zero-mass clusters must
// not produce duplicate centroids: each re-seed takes a distinct point.
// Zero weights make the trigger deterministic — every cluster that holds
// only zero-weight points has zero mass and enters the re-seed path.
func TestKMeansZeroMassClustersGetDistinctCentroids(t *testing.T) {
	points := MatrixFromRows([][]float64{{0}, {10}, {20}, {30}, {40}})
	weights := []float64{1, 0, 0, 0, 0}
	for seed := uint64(0); seed < 50; seed++ {
		_, centers, _, _ := kmeansOnce(points, weights, 3, stats.NewRNG(seed), 40)
		for i := 0; i < centers.N; i++ {
			for j := i + 1; j < centers.N; j++ {
				if centersEqual(centers.Row(i), centers.Row(j)) {
					t.Fatalf("seed %d: duplicate centroids %d and %d at %v", seed, i, j, centers.Row(i))
				}
			}
		}
	}
}
