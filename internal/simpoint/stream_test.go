package simpoint

import (
	"math"
	"testing"

	"phasemark/internal/bbv"
	"phasemark/internal/stats"
	"phasemark/internal/trace"
)

// synthIntervals builds n deterministic sparse-BBV intervals over
// numBlocks static blocks, with a two-cluster structure (even intervals
// touch the low half of the blocks, odd the high half).
func synthIntervals(n, numBlocks int, seed uint64) []*trace.Interval {
	r := stats.NewRNG(seed)
	out := make([]*trace.Interval, n)
	var at uint64
	for i := range out {
		ln := uint64(r.Intn(900) + 100)
		base := 0
		if i%2 == 1 {
			base = numBlocks / 2
		}
		v := bbv.Vector{}
		mass := float64(ln)
		for j := 0; j < 4; j++ {
			v.Idx = append(v.Idx, int32(base+j*3+r.Intn(3)))
			share := mass / 4
			v.Val = append(v.Val, share)
		}
		out[i] = &trace.Interval{Index: i, Start: at, End: at + ln, BBV: v}
		at += ln
	}
	return out
}

// chunks converts materialized intervals into streamed-chunk form.
func chunks(ivs []*trace.Interval, size int) [][]trace.Interval {
	var out [][]trace.Interval
	for len(ivs) > 0 {
		n := min(size, len(ivs))
		c := make([]trace.Interval, n)
		for i := 0; i < n; i++ {
			c[i] = *ivs[i]
		}
		out = append(out, c)
		ivs = ivs[n:]
	}
	return out
}

// The online projector must be bit-identical to the batch projection —
// same matrix data, same weights — regardless of chunking.
func TestStreamProjectorMatchesBatch(t *testing.T) {
	const numBlocks, dims = 64, 15
	ivs := synthIntervals(333, numBlocks, 7)
	want, wantW := ProjectIntervals(ivs, numBlocks, dims, 0xC1)

	for _, size := range []int{1, 7, 256} {
		p := NewStreamProjector(numBlocks, dims, 0xC1)
		for _, c := range chunks(ivs, size) {
			p.ObserveChunk(c)
		}
		got, gotW := p.Matrix()
		if got.N != want.N || got.D != want.D {
			t.Fatalf("chunk=%d: shape %dx%d, want %dx%d", size, got.N, got.D, want.N, want.D)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("chunk=%d: matrix differs at %d: %v vs %v", size, i, got.Data[i], want.Data[i])
			}
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("chunk=%d: weight %d differs", size, i)
			}
		}
	}
}

// A stream that ends inside the seeding buffer must degrade to exactly
// the batch engine's answer on those points.
func TestStreamKMeansShortStreamMatchesBatch(t *testing.T) {
	const numBlocks, dims = 64, 8
	opts := Options{ForceK: 2, Dims: dims, Seed: 3, Restarts: 2, MaxIters: 40, Workers: 1}
	ivs := synthIntervals(40, numBlocks, 11) // < seedTarget

	s := NewStreamKMeans(numBlocks, opts)
	for _, c := range chunks(ivs, 16) {
		s.ObserveChunk(c)
	}
	res := s.Finish()

	pts, weights := ProjectIntervals(ivs, numBlocks, dims, opts.Seed)
	want := Cluster(pts, weights, opts)
	if res.K != want.K {
		t.Fatalf("K = %d, want %d", res.K, want.K)
	}
	for i := 0; i < res.K*dims; i++ {
		if res.Centers.Data[i] != want.Centers.Data[i] {
			t.Fatalf("center data differs at %d: %v vs %v", i, res.Centers.Data[i], want.Centers.Data[i])
		}
	}
}

func TestStreamKMeansSanityAndDeterminism(t *testing.T) {
	const numBlocks, dims = 64, 8
	opts := Options{ForceK: 2, Dims: dims, Seed: 3, Restarts: 2, MaxIters: 40, Workers: 1}
	ivs := synthIntervals(2000, numBlocks, 5)

	run := func() *StreamResult {
		s := NewStreamKMeans(numBlocks, opts)
		for _, c := range chunks(ivs, 64) {
			s.ObserveChunk(c)
		}
		return s.Finish()
	}
	a, b := run(), run()
	if a.K != 2 || a.Points != len(ivs) {
		t.Fatalf("K=%d points=%d", a.K, a.Points)
	}
	// Mass conservation: every instruction lands in exactly one centroid.
	var mass, total float64
	for _, m := range a.Mass {
		mass += m
	}
	for _, iv := range ivs {
		total += float64(iv.Len())
	}
	if math.Abs(mass-total) > 1e-6 {
		t.Fatalf("mass %v != total instructions %v", mass, total)
	}
	ws := a.Weights()
	var wsum float64
	for _, w := range ws {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", wsum)
	}
	// Determinism: identical streams, identical centroids.
	for i := range a.Centers.Data {
		if a.Centers.Data[i] != b.Centers.Data[i] {
			t.Fatalf("nondeterministic centers at %d", i)
		}
	}
	// The two synthetic behavior groups are linearly separable; the two
	// centroids must split the mass roughly evenly rather than collapse.
	if ws[0] < 0.3 || ws[0] > 0.7 {
		t.Fatalf("degenerate split: weights %v", ws)
	}
}

// The bounded-memory claim, asserted: once seeded, observing an interval
// allocates nothing, and the streamer retains only O(k·d) state — the
// centroids, their masses, and one scratch row — no matter how many
// intervals flow through.
func TestStreamKMeansBoundedMemory(t *testing.T) {
	const numBlocks, dims = 64, 8
	opts := Options{ForceK: 2, Dims: dims, Seed: 3, Restarts: 1, MaxIters: 20, Workers: 1}
	ivs := synthIntervals(1000, numBlocks, 9)

	s := NewStreamKMeans(numBlocks, opts)
	for _, iv := range ivs {
		s.Observe(iv)
	}
	if s.centers.N == 0 {
		t.Fatal("not seeded")
	}
	// Seeding buffer released.
	if s.buf.Data != nil || s.bufW != nil {
		t.Fatal("seed buffer retained after seeding")
	}
	// Retained state is k·d + k + d floats, independent of 1000 observed.
	if got, want := len(s.centers.Data), s.k*dims; got != want {
		t.Fatalf("centers storage %d, want %d", got, want)
	}
	if len(s.mass) != s.k || len(s.scratch) != dims {
		t.Fatalf("mass/scratch sized %d/%d", len(s.mass), len(s.scratch))
	}
	// Steady-state observation is allocation-free.
	iv := ivs[0]
	if allocs := testing.AllocsPerRun(200, func() { s.Observe(iv) }); allocs != 0 {
		t.Fatalf("Observe allocates %v times per call at steady state, want 0", allocs)
	}
}
