package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	const workers, per = 16, 10_000
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines re-resolve the handle by name: same
			// counter either way.
			cc := r.Counter("x")
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					cc.Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("lat")
	const workers, per = 8, 5_000
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	n := uint64(workers * per)
	wantSum := n * (n - 1) / 2
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %d, want %d", got, wantSum)
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	if hs.Min != 0 || hs.Max != n-1 {
		t.Errorf("min/max = %d/%d, want 0/%d", hs.Min, hs.Max, n-1)
	}
	var bucketTotal uint64
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != n {
		t.Errorf("bucket counts sum to %d, want %d", bucketTotal, n)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("b")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms[0]
	// Expected buckets: le=0 {0}, le=1 {1}, le=3 {2,3}, le=7 {4},
	// le=1023 {1023}, le=2047 {1024}.
	want := []BucketSnap{
		{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 3, Count: 2},
		{Le: 7, Count: 1}, {Le: 1023, Count: 1}, {Le: 2047, Count: 1},
	}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pool.workers")
	g.Set(8)
	g.Add(-3)
	if got := g.Load(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestEmptyHistogramSnapshotHasZeroMin(t *testing.T) {
	r := NewRegistry()
	r.Hist("never")
	hs := r.Snapshot().Histograms[0]
	if hs.Min != 0 || hs.Max != 0 || hs.Count != 0 || hs.Mean != 0 {
		t.Errorf("empty histogram snapshot = %+v, want all zeros", hs)
	}
	if hs.Min == math.MaxUint64 {
		t.Error("internal MaxUint64 sentinel leaked into the snapshot")
	}
}

func TestCounterAddDoesNotAllocate(t *testing.T) {
	c := NewRegistry().Counter("hot")
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(1) }); allocs != 0 {
		t.Errorf("Counter.Add allocates %.1f objects per call, want 0", allocs)
	}
	h := NewRegistry().Hist("hot")
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(7) }); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %.1f objects per call, want 0", allocs)
	}
}

func TestSnapshotDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of order.
	r.Counter("zebra").Inc()
	r.Counter("alpha").Inc()
	r.Counter("mango").Inc()
	r.Gauge("z").Set(1)
	r.Gauge("a").Set(2)
	r.Hist("w").Observe(1)
	r.Hist("b").Observe(2)

	snap := r.Snapshot()
	wantC := []string{"alpha", "mango", "zebra"}
	for i, c := range snap.Counters {
		if c.Name != wantC[i] {
			t.Errorf("counter %d = %q, want %q", i, c.Name, wantC[i])
		}
	}
	if snap.Gauges[0].Name != "a" || snap.Histograms[0].Name != "b" {
		t.Errorf("gauges/histograms not sorted: %+v / %+v", snap.Gauges, snap.Histograms)
	}

	// Two serializations of equivalent registries are byte-identical.
	var b1, b2 bytes.Buffer
	if err := snap.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("repeated snapshots of an idle registry differ")
	}
	var decoded Snap
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}
