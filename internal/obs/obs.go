// Package obs is the repository's observability layer: a dependency-light
// metrics registry (named counters, gauges, and log-scale histograms) plus
// span-style stage tracing, shared by every stage of the
// profile → graph → marker-selection → segmentation → SimPoint pipeline.
//
// Design constraints, in order:
//
//   - The hot increment path is one atomic add on a handle the caller
//     resolved once — no map lookup, no allocation, no lock.
//   - Everything is race-safe: instrumented code runs on the experiment
//     engine's worker pool at arbitrary -j.
//   - Observability never writes to stdout. The rendered figure tables are
//     pinned byte-for-byte by the golden-table test; metrics go to stderr
//     or to files the caller names explicitly.
//   - Snapshots are deterministically ordered (sorted by name), so metrics
//     files diff cleanly run-to-run even though their values vary.
//
// The package-level functions operate on a process-wide default registry
// and tracer, which is what the instrumented packages use. Tests (and any
// embedder wanting isolation) build their own Registry / Tracer.
//
// Span-duration aggregation is always on — it is a map update per stage
// completion, far off any hot path. Individual Chrome trace_event capture
// is off until SetTraceCapture(true), because a full `spexp -fig all` run
// completes tens of thousands of spans.
package obs

import "io"

var (
	defaultRegistry = NewRegistry()
	defaultTracer   = NewTracer()
)

// Default returns the process-wide registry the instrumented packages use.
func Default() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// NewCounter finds or creates the named counter in the default registry.
// Resolve once (package var or local), then Add on the handle.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge finds or creates the named gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHist finds or creates the named log-scale histogram in the default
// registry.
func NewHist(name string) *Histogram { return defaultRegistry.Hist(name) }

// StartSpan starts a root stage span on the default tracer. arg labels the
// unit of work (typically the workload name); it may be empty.
func StartSpan(name, arg string) *Span { return defaultTracer.Span(name, arg) }

// SetTraceCapture enables or disables Chrome trace_event capture on the
// default tracer. Stage-duration aggregation is unaffected (always on).
func SetTraceCapture(on bool) { defaultTracer.SetCapture(on) }

// Snapshot captures the default registry and tracer into one
// deterministically ordered snapshot.
func Snapshot() *Snap {
	s := defaultRegistry.Snapshot()
	s.Stages = defaultTracer.Stages()
	return s
}

// WriteMetrics writes the default snapshot as indented JSON.
func WriteMetrics(w io.Writer) error { return Snapshot().WriteJSON(w) }

// WriteSummary writes the default snapshot as a human-readable table
// (intended for stderr).
func WriteSummary(w io.Writer) { Snapshot().WriteSummary(w) }

// WriteChromeTrace writes every captured trace event from the default
// tracer in Chrome trace_event JSON format (load in chrome://tracing or
// https://ui.perfetto.dev).
func WriteChromeTrace(w io.Writer) error { return defaultTracer.WriteChromeTrace(w) }
