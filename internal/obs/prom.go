package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), so the same /metrics endpoint that serves the
// JSON snapshot can be scraped directly. Mapping:
//
//   - Metric names are sanitized to the Prometheus grammar: every rune
//     outside [a-zA-Z0-9_:] becomes '_' (dots in the registry's dotted
//     names included), and a leading digit gains a '_' prefix.
//   - Counters gain the conventional _total suffix.
//   - Gauges map 1:1.
//   - The log2 histograms render as Prometheus histograms: cumulative
//     _bucket{le="..."} series (the registry stores per-bucket counts;
//     cumulation happens here), a closing le="+Inf" bucket, _sum, and
//     _count. Values are whatever unit the histogram observed
//     (nanoseconds for the latency families).
//   - Span stage aggregates render as four families labelled by stage:
//     stage_count / stage_total_ns (counters), stage_min_ns /
//     stage_max_ns (gauges).
//
// Snapshots are already sorted by name, so the exposition is
// deterministic for a quiescent registry.
func (s *Snap) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		name := promName(c.Name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, bk.Le, cum)
		}
		// A snapshot taken mid-traffic can catch a bucket increment before
		// the count increment; keep +Inf monotone regardless.
		inf := h.Count
		if cum > inf {
			inf = cum
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, inf)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, inf)
	}
	if len(s.Stages) > 0 {
		fmt.Fprintf(&b, "# TYPE stage_count counter\n")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "stage_count{stage=%q} %d\n", st.Name, st.Count)
		}
		fmt.Fprintf(&b, "# TYPE stage_total_ns counter\n")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "stage_total_ns{stage=%q} %d\n", st.Name, st.TotalNS)
		}
		fmt.Fprintf(&b, "# TYPE stage_min_ns gauge\n")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "stage_min_ns{stage=%q} %d\n", st.Name, st.MinNS)
		}
		fmt.Fprintf(&b, "# TYPE stage_max_ns gauge\n")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "stage_max_ns{stage=%q} %d\n", st.Name, st.MaxNS)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName sanitizes a dotted registry name into the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}
