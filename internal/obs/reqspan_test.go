package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRequestSpanTreeAndSnapshot(t *testing.T) {
	tr := NewTracer()
	fakeClock(tr, time.Millisecond)

	// Clock readings: root@0, a@1, b@2, b.End@3, a.End@4, root.End@5.
	root := tr.StartRequest("http.v1.cluster", "/v1/cluster")
	a := root.Child("store.get", "cafe0123")
	a.SetTag("cache", "miss")
	b := a.Child("pipeline.prog", "gzip")
	if d := b.End(); d != time.Millisecond {
		t.Errorf("b duration = %v, want 1ms", d)
	}
	if d := a.End(); d != 3*time.Millisecond {
		t.Errorf("a duration = %v, want 3ms", d)
	}
	if d := root.End(); d != 5*time.Millisecond {
		t.Errorf("root duration = %v, want 5ms", d)
	}
	if d := root.End(); d != 0 {
		t.Errorf("second End = %v, want 0 (no-op)", d)
	}

	snap := root.Snapshot()
	if snap.Name != "http.v1.cluster" || snap.Arg != "/v1/cluster" {
		t.Errorf("root snap = %q/%q", snap.Name, snap.Arg)
	}
	if snap.StartNS != 0 || snap.DurNS != 5e6 {
		t.Errorf("root timing = start %d dur %d", snap.StartNS, snap.DurNS)
	}
	if len(snap.Children) != 1 || snap.Children[0].Name != "store.get" {
		t.Fatalf("root children = %+v", snap.Children)
	}
	get := snap.Children[0]
	if get.StartNS != 1e6 || get.DurNS != 3e6 {
		t.Errorf("store.get timing = start %d dur %d", get.StartNS, get.DurNS)
	}
	if get.Tags["cache"] != "miss" {
		t.Errorf("store.get tags = %v", get.Tags)
	}
	if len(get.Children) != 1 || get.Children[0].Name != "pipeline.prog" || get.Children[0].Arg != "gzip" {
		t.Fatalf("store.get children = %+v", get.Children)
	}

	// Every completed node fed the tracer's stage aggregates.
	for _, want := range []string{"http.v1.cluster", "store.get", "pipeline.prog"} {
		found := false
		for _, st := range tr.Stages() {
			if st.Name == want && st.Count == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %q missing from aggregates", want)
		}
	}
}

func TestRequestSpanNilSafety(t *testing.T) {
	var s *RequestSpan
	if c := s.Child("x", ""); c != nil {
		t.Error("nil.Child must return nil")
	}
	s.SetTag("k", "v")
	if s.Tag("k") != "" || s.Name() != "" || s.End() != 0 {
		t.Error("nil span accessors must return zero values")
	}
	if snap := s.Snapshot(); snap.Name != "" || len(snap.Children) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil trace not JSON: %v", err)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Error("empty context must carry no span")
	}
	sp := StartRequest("http.test", "")
	ctx := ContextWithSpan(context.Background(), sp)
	if SpanFromContext(ctx) != sp {
		t.Error("context must round-trip the span")
	}
	sp.End()
}

func TestRequestSpanChromeTrace(t *testing.T) {
	tr := NewTracer()
	fakeClock(tr, time.Millisecond)
	root := tr.StartRequest("http.v1.select", "/v1/select")
	c := root.Child("store.compute", "beef0001")
	c.SetTag("cache", "computed")
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := root.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Cat  string            `json:"cat"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "request" {
			t.Errorf("event %q ph=%q cat=%q, want X/request", ev.Name, ev.Ph, ev.Cat)
		}
	}
	child := out.TraceEvents[1]
	if child.Name != "store.compute" || child.Args["parent"] != "http.v1.select" ||
		child.Args["cache"] != "computed" || child.Args["arg"] != "beef0001" {
		t.Errorf("child event = %+v", child)
	}
	if child.TS != 1000 || child.Dur != 1000 {
		t.Errorf("child timing = ts %d dur %d µs, want 1000/1000", child.TS, child.Dur)
	}
}

// TestRequestSpanConcurrentTrees runs many request trees in parallel on
// one tracer (run under -race in CI): children must never leak across
// request roots, and the shared stage aggregation must account for every
// ended span exactly once.
func TestRequestSpanConcurrentTrees(t *testing.T) {
	const (
		requests = 32
		children = 16
	)
	tr := NewTracer()
	roots := make([]*RequestSpan, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arg := fmt.Sprintf("req-%d", i)
			root := tr.StartRequest("http.concurrent", arg)
			roots[i] = root
			var cwg sync.WaitGroup
			for j := 0; j < children; j++ {
				cwg.Add(1)
				go func(j int) {
					defer cwg.Done()
					c := root.Child("stage.child", arg)
					c.SetTag("i", arg)
					c.End()
				}(j)
			}
			cwg.Wait()
			root.End()
		}(i)
	}
	wg.Wait()

	for i, root := range roots {
		snap := root.Snapshot()
		want := fmt.Sprintf("req-%d", i)
		if snap.Arg != want {
			t.Fatalf("root %d arg = %q", i, snap.Arg)
		}
		if len(snap.Children) != children {
			t.Errorf("root %d has %d children, want %d (cross-request leakage?)",
				i, len(snap.Children), children)
		}
		for _, c := range snap.Children {
			if c.Arg != want || c.Tags["i"] != want {
				t.Errorf("root %d adopted foreign child %q/%v", i, c.Arg, c.Tags)
			}
		}
	}

	counts := map[string]uint64{}
	for _, st := range tr.Stages() {
		counts[st.Name] = st.Count
	}
	if counts["http.concurrent"] != requests {
		t.Errorf("root stage count = %d, want %d", counts["http.concurrent"], requests)
	}
	if counts["stage.child"] != requests*children {
		t.Errorf("child stage count = %d, want %d", counts["stage.child"], requests*children)
	}
}

func TestNewID(t *testing.T) {
	a, b := NewID(16), NewID(16)
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("NewID(16) lengths = %d, %d, want 32", len(a), len(b))
	}
	if a == b {
		t.Error("two IDs collided (crypto/rand broken?)")
	}
	for _, r := range a {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			t.Fatalf("NewID emitted non-hex rune %q", r)
		}
	}
}
