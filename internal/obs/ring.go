package obs

import "sync/atomic"

// Ring is a lock-free, fixed-capacity buffer of the most recently Put
// values: writers claim a slot with one atomic increment and publish with
// one atomic pointer store, so recording a finished request never
// contends with request execution. Readers (the debug surface) snapshot
// whatever is currently published. Under concurrent writes a reader may
// observe slots from different "generations" — acceptable for a
// diagnostic window of recent requests, which is the only intended use.
type Ring[T any] struct {
	slots []atomic.Pointer[T]
	next  atomic.Uint64
}

// NewRing builds a ring holding the last n values (n < 1 is clamped to 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{slots: make([]atomic.Pointer[T], n)}
}

// Cap reports the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Put publishes v into the next slot, overwriting the oldest value once
// the ring has wrapped. Safe from any goroutine, no locks taken.
func (r *Ring[T]) Put(v T) {
	i := (r.next.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(&v)
}

// Snapshot copies the currently published values (at most Cap, in slot
// order — not insertion order once wrapped).
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}
