package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"sync"
	"time"
)

// RequestSpan is one node of a request-scoped span tree: where Span feeds
// the process-global stage aggregates, a RequestSpan additionally keeps
// its own parent/child structure, tags, and timing, so one request's cost
// can be attributed stage-by-stage after the fact — the per-request
// analogue of the paper's per-interval attribution. The tree is carried
// through the work it describes via context.Context (ContextWithSpan /
// SpanFromContext), and every completed node still folds its duration
// into the owning Tracer's stage aggregates, so /metrics keeps seeing the
// request-scoped stages under their names.
//
// All methods are safe on a nil receiver (no-ops returning zero values),
// so instrumented code can attach children unconditionally: a context
// without a span simply records nothing.
//
// Children may be attached and ended from multiple goroutines (batch
// items fan out); a single node's End must still be called exactly once
// by the goroutine that started it.
type RequestSpan struct {
	// TraceID and SpanID identify the request for W3C trace-context
	// propagation (32 and 16 lowercase hex digits). The HTTP layer sets
	// them once at creation, before the span is shared; children leave
	// them empty.
	TraceID string
	SpanID  string

	tr    *Tracer
	name  string
	arg   string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	ended    bool
	tags     map[string]string
	children []*RequestSpan
}

// StartRequest starts a root request span on the tracer. name is the
// aggregate key ("http.v1.cluster"); arg labels the unit of work (the URL
// path, the workload) and may be empty.
func (t *Tracer) StartRequest(name, arg string) *RequestSpan {
	return &RequestSpan{tr: t, name: name, arg: arg, start: t.now()}
}

// StartRequest starts a root request span on the default tracer.
func StartRequest(name, arg string) *RequestSpan {
	return defaultTracer.StartRequest(name, arg)
}

// Child starts a sub-span of s, attached to the tree under s. Safe to
// call from any goroutine, and on a nil s (returns nil).
func (s *RequestSpan) Child(name, arg string) *RequestSpan {
	if s == nil {
		return nil
	}
	c := &RequestSpan{tr: s.tr, name: name, arg: arg, start: s.tr.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetTag attaches (or overwrites) one key/value annotation — cache
// outcomes, error classes. Nil-safe.
func (s *RequestSpan) SetTag(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.tags == nil {
		s.tags = map[string]string{}
	}
	s.tags[k] = v
	s.mu.Unlock()
}

// Tag reads one annotation ("" when absent). Nil-safe.
func (s *RequestSpan) Tag(k string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tags[k]
}

// Name reports the span's stage name ("" on nil).
func (s *RequestSpan) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End stops the span, folds its duration into the tracer's stage
// aggregates under the span's name, and returns the duration. A second
// End (and End on nil) is a no-op returning 0.
func (s *RequestSpan) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	s.end = s.tr.now()
	d := s.end.Sub(s.start)
	s.mu.Unlock()
	s.tr.record(s.name, d)
	return d
}

// ReqSpanSnap is one node of a snapshotted request-span tree, the form
// the debug surface serves and the Chrome-trace exporter consumes. Start
// offsets are relative to the snapshot root's start.
type ReqSpanSnap struct {
	Name     string            `json:"name"`
	Arg      string            `json:"arg,omitempty"`
	StartNS  int64             `json:"start_ns"`
	DurNS    int64             `json:"dur_ns"`
	Tags     map[string]string `json:"tags,omitempty"`
	Children []ReqSpanSnap     `json:"children,omitempty"`
}

// Snapshot copies the tree rooted at s into a plain value. Spans still
// open (including the root, mid-request) are measured as of now; the
// snapshot is internally consistent per node, not across nodes while the
// request is still running. Nil-safe (returns the zero snapshot).
func (s *RequestSpan) Snapshot() ReqSpanSnap {
	if s == nil {
		return ReqSpanSnap{}
	}
	return s.snapshot(s.start, s.tr.now())
}

func (s *RequestSpan) snapshot(epoch, now time.Time) ReqSpanSnap {
	s.mu.Lock()
	end := s.end
	if !s.ended {
		end = now
	}
	snap := ReqSpanSnap{
		Name:    s.name,
		Arg:     s.arg,
		StartNS: s.start.Sub(epoch).Nanoseconds(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
	}
	if len(s.tags) > 0 {
		snap.Tags = make(map[string]string, len(s.tags))
		for k, v := range s.tags {
			snap.Tags[k] = v
		}
	}
	kids := make([]*RequestSpan, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		snap.Children = append(snap.Children, c.snapshot(epoch, now))
	}
	return snap
}

// WriteChromeTrace renders the tree rooted at s as Chrome trace_event
// JSON by replaying a snapshot into a one-shot capture Tracer and reusing
// its exporter — the per-request counterpart of Tracer.WriteChromeTrace.
// Each node becomes a complete event carrying its arg, parent, and tags
// as args. Nil-safe (writes an empty trace).
func (s *RequestSpan) WriteChromeTrace(w io.Writer) error {
	t := NewTracer()
	if s != nil {
		var emit func(n ReqSpanSnap, parent string)
		emit = func(n ReqSpanSnap, parent string) {
			ev := traceEvent{
				Name: n.Name,
				Cat:  "request",
				Ph:   "X",
				TS:   n.StartNS / 1e3,
				Dur:  n.DurNS / 1e3,
				PID:  1,
				TID:  1,
			}
			args := map[string]string{}
			if n.Arg != "" {
				args["arg"] = n.Arg
			}
			if parent != "" {
				args["parent"] = parent
			}
			for k, v := range n.Tags {
				args[k] = v
			}
			if len(args) > 0 {
				ev.Args = args
			}
			t.events = append(t.events, ev)
			for _, c := range n.Children {
				emit(c, n.Name)
			}
		}
		emit(s.Snapshot(), "")
	}
	return t.WriteChromeTrace(w)
}

// spanCtxKey carries the request span through context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s; work running under the
// returned context attaches its sub-spans to s via SpanFromContext.
func ContextWithSpan(ctx context.Context, s *RequestSpan) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the request span carried by ctx, or nil when
// the context carries none (every RequestSpan method tolerates nil).
func SpanFromContext(ctx context.Context) *RequestSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*RequestSpan)
	return s
}

// NewID returns n cryptographically random bytes as 2n lowercase hex
// digits — W3C trace IDs (n=16), span IDs (n=8), request IDs (n=8).
func NewID(n int) string {
	b := make([]byte, n)
	rand.Read(b) // never fails (crypto/rand contract)
	return hex.EncodeToString(b)
}
