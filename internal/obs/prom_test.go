package obs

import (
	"bufio"
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promLine matches one sample line of the text exposition format as this
// package emits it: name, optional {label="value"} set, integer value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? -?[0-9]+$`)

// promBucketLine additionally admits the le="+Inf" closing bucket.
var promBucketLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*_bucket\{le="(\+Inf|[0-9]+)"\} [0-9]+$`)

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("store.compute").Add(7)
	reg.Counter("9starts.with-digit").Inc()
	reg.Gauge("service.inflight").Set(-3)
	h := reg.Hist("http.v1.cluster.hit")
	h.Observe(1)
	h.Observe(5)
	h.Observe(5000)

	tr := NewTracer()
	fakeClock(tr, time.Millisecond)
	tr.StartRequest("store.get", `needs "escaping"? no: sanitized upstream`).End()

	snap := reg.Snapshot()
	snap.Stages = tr.Stages()

	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()

	// Every line is a TYPE comment or a well-formed sample.
	sc := bufio.NewScanner(strings.NewReader(text))
	typed := map[string]string{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			typed[f[2]] = f[3]
			continue
		}
		if !promLine.MatchString(line) && !promBucketLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}

	// Counters carry _total and the sanitized names.
	if typed["store_compute_total"] != "counter" {
		t.Error("store.compute missing as store_compute_total counter")
	}
	if !strings.Contains(text, "store_compute_total 7\n") {
		t.Error("counter value not rendered")
	}
	if typed["_9starts_with_digit_total"] != "counter" {
		t.Errorf("leading digit not sanitized; types = %v", typed)
	}
	if !strings.Contains(text, "service_inflight -3\n") {
		t.Error("negative gauge not rendered")
	}

	// Histogram: cumulative buckets, monotone, closed by +Inf == count.
	var last uint64
	var sawInf bool
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "http_v1_cluster_hit_bucket{") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket series not cumulative at %q", line)
		}
		last = v
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
			if v != 3 {
				t.Errorf("+Inf bucket = %d, want 3 (the count)", v)
			}
		}
	}
	if !sawInf {
		t.Error("histogram missing +Inf bucket")
	}
	if !strings.Contains(text, "http_v1_cluster_hit_sum 5006\n") ||
		!strings.Contains(text, "http_v1_cluster_hit_count 3\n") {
		t.Error("histogram _sum/_count missing or wrong")
	}

	// Stage aggregates render as labelled families with quoted stages.
	if !strings.Contains(text, `stage_count{stage="store.get"} 1`) {
		t.Error("stage_count family missing")
	}
	if !strings.Contains(text, `stage_total_ns{stage="store.get"} 1000000`) {
		t.Error("stage_total_ns family missing or wrong")
	}
}
