package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry (or the package-level Counter), which
// hands every caller of a name the same handle.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. It is one atomic add: safe from any
// goroutine, allocation-free.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable signed metric (pool sizes, current parallelism).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// numBuckets covers bits.Len64's full range: bucket i holds values v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1] (bucket 0 holds only 0).
const numBuckets = 65

// Histogram is a log2-bucketed distribution of uint64 samples (durations
// in nanoseconds, interval lengths, queue depths). Observe is a handful of
// atomic operations — safe from any goroutine, allocation-free.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // initialized to MaxUint64 by the registry
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Registry is a named collection of metrics. Lookup takes the registry
// lock; instrumented code is expected to look a handle up once and then
// increment lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter finds or creates the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge finds or creates the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist finds or creates the named histogram.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty log2 bucket: Count samples were ≤ Le (and
// greater than the previous bucket's Le).
type BucketSnap struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistSnap is one histogram in a snapshot.
type HistSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// StageSnap is the aggregated timing of one span name.
type StageSnap struct {
	Name    string `json:"name"`
	Count   uint64 `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MinNS   int64  `json:"min_ns"`
	MaxNS   int64  `json:"max_ns"`
	AvgNS   int64  `json:"avg_ns"`
}

// Snap is a point-in-time capture of a registry (and, at the package
// level, the tracer's stage aggregates). All slices are sorted by name so
// the serialized form is deterministic.
type Snap struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
	Stages     []StageSnap   `json:"stages"`
}

// Snapshot captures every metric registered so far, sorted by name.
// Values are read with atomic loads but not across one instant; a snapshot
// taken while instrumented code runs is internally consistent per metric,
// not across metrics.
func (r *Registry) Snapshot() *Snap {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snap{
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistSnap{},
		Stages:     []StageSnap{},
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Load()})
	}
	for name, h := range r.hists {
		hs := HistSnap{
			Name:  name,
			Count: h.count.Load(),
			Sum:   h.sum.Load(),
			Min:   h.min.Load(),
			Max:   h.max.Load(),
		}
		if hs.Count == 0 {
			hs.Min = 0
		} else {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := uint64(0)
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{Le: le, Count: n})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snap) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
