package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a tracer's clock by a fixed step on every reading, so
// span timings are deterministic.
func fakeClock(t *Tracer, step time.Duration) {
	var mu sync.Mutex
	now := t.epoch
	t.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		cur := now
		now = now.Add(step)
		return cur
	}
}

func TestSpanNestingAndAggregation(t *testing.T) {
	tr := NewTracer()
	fakeClock(tr, time.Millisecond)

	root := tr.Span("figure.7", "")
	child := root.Child("graph.build", "gzip")
	grand := child.Child("select.pass1", "")
	if grand.Parent() != "graph.build" || child.Parent() != "figure.7" || root.Parent() != "" {
		t.Errorf("parent chain wrong: %q <- %q <- %q",
			root.Parent(), child.Parent(), grand.Parent())
	}
	if child.lane != root.lane || grand.lane != root.lane {
		t.Error("children must inherit the root span's lane")
	}
	// Clock readings: root@0, child@1, grand@2, then the Ends below.
	if d := grand.End(); d != time.Millisecond {
		t.Errorf("grand duration = %v, want 1ms", d)
	}
	if d := child.End(); d != 3*time.Millisecond {
		t.Errorf("child duration = %v, want 3ms", d)
	}
	if d := root.End(); d != 5*time.Millisecond {
		t.Errorf("root duration = %v, want 5ms", d)
	}
	if d := root.End(); d != 0 {
		t.Errorf("second End = %v, want 0 (no-op)", d)
	}

	// A second root span with a repeated name pools into the same stage.
	again := tr.Span("graph.build", "gcc")
	if again.lane == root.lane {
		t.Error("a new root span must get a fresh lane")
	}
	again.End()

	stages := tr.Stages()
	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3: %+v", len(stages), stages)
	}
	// Sorted by name: figure.7, graph.build, select.pass1.
	if stages[0].Name != "figure.7" || stages[1].Name != "graph.build" || stages[2].Name != "select.pass1" {
		t.Fatalf("stage order wrong: %+v", stages)
	}
	gb := stages[1]
	if gb.Count != 2 {
		t.Errorf("graph.build count = %d, want 2", gb.Count)
	}
	if gb.MinNS != int64(time.Millisecond) || gb.MaxNS != int64(3*time.Millisecond) {
		t.Errorf("graph.build min/max = %d/%d, want 1ms/3ms", gb.MinNS, gb.MaxNS)
	}
	if gb.TotalNS != int64(4*time.Millisecond) || gb.AvgNS != int64(2*time.Millisecond) {
		t.Errorf("graph.build total/avg = %d/%d, want 4ms/2ms", gb.TotalNS, gb.AvgNS)
	}
}

func TestSpanConcurrentEndsAreRaceFree(t *testing.T) {
	tr := NewTracer()
	tr.SetCapture(true)
	var wg sync.WaitGroup
	for range 16 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Span("stage", "w")
				sp.Child("inner", "").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Count != 16*200 || stages[1].Count != 16*200 {
		t.Errorf("stage aggregation lost spans: %+v", stages)
	}
}

// TestChromeTraceGolden pins the exact trace_event serialization: ph "X"
// complete events with microsecond ts/dur, children on the parent's lane,
// parent stage and workload arg in args.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.SetCapture(true)
	fakeClock(tr, time.Millisecond)

	root := tr.Span("figure.7", "")
	child := root.Child("graph.build", "gzip")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	want := `{"traceEvents":[` +
		`{"name":"graph.build","cat":"stage","ph":"X","ts":1000,"dur":1000,"pid":1,"tid":1,"args":{"arg":"gzip","parent":"figure.7"}},` +
		`{"name":"figure.7","cat":"stage","ph":"X","ts":0,"dur":3000,"pid":1,"tid":1}` +
		`],"displayTimeUnit":"ms"}`
	if got != want {
		t.Errorf("chrome trace mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestCaptureOffRecordsNoEvents(t *testing.T) {
	tr := NewTracer()
	tr.Span("s", "").End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("expected empty traceEvents, got %s", buf.String())
	}
	if st := tr.Stages(); len(st) != 1 || st[0].Count != 1 {
		t.Errorf("aggregation must stay on with capture off: %+v", st)
	}
}

func TestSummaryRendersAllSections(t *testing.T) {
	r := NewRegistry()
	r.Counter("cell.hit").Add(3)
	r.Gauge("pool.workers").Set(8)
	r.Hist("pool.queue_wait_ns").Observe(1500)
	tr := NewTracer()
	tr.Span("graph.build", "gzip").End()

	snap := r.Snapshot()
	snap.Stages = tr.Stages()
	var buf bytes.Buffer
	snap.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{
		"observability summary", "graph.build", "cell.hit",
		"pool.workers", "pool.queue_wait_ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
