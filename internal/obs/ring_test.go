package obs

import (
	"sync"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	r.Put(1)
	r.Put(2)
	if got := r.Snapshot(); len(got) != 2 {
		t.Fatalf("snapshot after 2 puts = %v", got)
	}
	// Overflow: the window keeps the most recent Cap() values.
	for i := 3; i <= 10; i++ {
		r.Put(i)
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot after overflow = %v", got)
	}
	for _, v := range got {
		if v < 7 || v > 10 {
			t.Errorf("stale value %d survived the window", v)
		}
	}
}

func TestRingClampsCapacity(t *testing.T) {
	r := NewRing[string](0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamp to 1", r.Cap())
	}
	r.Put("a")
	r.Put("b")
	if got := r.Snapshot(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("snapshot = %v, want [b]", got)
	}
}

// TestRingConcurrent hammers Put and Snapshot from many goroutines (run
// under -race in CI): no torn values, and the snapshot stays within the
// window.
func TestRingConcurrent(t *testing.T) {
	r := NewRing[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Put(g*1000 + i)
				if i%64 == 0 {
					if got := r.Snapshot(); len(got) > r.Cap() {
						t.Errorf("snapshot of %d values exceeds window %d", len(got), r.Cap())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("final snapshot has %d values, want 8", len(got))
	}
	for _, v := range got {
		if v < 0 || v >= 8000 {
			t.Errorf("torn value %d", v)
		}
	}
}
