package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer aggregates stage spans. Spans with the same name pool into one
// StageSnap (count / total / min / max duration); when capture is enabled
// each completed span additionally becomes a Chrome trace_event, nested
// under its parent span's lane.
type Tracer struct {
	lanes atomic.Int64

	mu      sync.Mutex
	epoch   time.Time
	stages  map[string]*stageAgg
	events  []traceEvent
	capture bool

	// now is the clock; tests substitute a deterministic one.
	now func() time.Time
}

type stageAgg struct {
	count    uint64
	total    time.Duration
	min, max time.Duration
}

// NewTracer builds an empty tracer with capture disabled.
func NewTracer() *Tracer {
	return &Tracer{
		epoch:  time.Now(),
		stages: map[string]*stageAgg{},
		now:    time.Now,
	}
}

// SetCapture enables or disables trace-event capture. Aggregation into
// stage totals is unconditional.
func (t *Tracer) SetCapture(on bool) {
	t.mu.Lock()
	t.capture = on
	t.mu.Unlock()
}

// Span is one timed stage of the pipeline. End it exactly once. Spans are
// not goroutine-safe; each belongs to the goroutine that started it, which
// matches how the worker pool hands one artifact computation to one worker.
type Span struct {
	tr     *Tracer
	name   string
	arg    string
	parent string // parent span's name, "" for roots
	lane   int64  // trace-event tid: roots allocate, children inherit
	start  time.Time
	ended  bool
}

// Span starts a root span. name is the stage ("graph.build"), arg the unit
// of work (the workload name); arg may be empty.
func (t *Tracer) Span(name, arg string) *Span {
	return &Span{
		tr:    t,
		name:  name,
		arg:   arg,
		lane:  t.lanes.Add(1),
		start: t.now(),
	}
}

// Child starts a sub-span of s: it records s's name as its parent stage
// and shares s's trace lane, so the Chrome trace renders it nested.
func (s *Span) Child(name, arg string) *Span {
	return &Span{
		tr:     s.tr,
		name:   name,
		arg:    arg,
		parent: s.name,
		lane:   s.lane,
		start:  s.tr.now(),
	}
}

// Name reports the span's stage name.
func (s *Span) Name() string { return s.name }

// Parent reports the parent stage name ("" for a root span).
func (s *Span) Parent() string { return s.parent }

// record folds one completed span duration into the named stage
// aggregate. Shared by Span.End and RequestSpan.End.
func (t *Tracer) record(name string, d time.Duration) {
	t.mu.Lock()
	agg := t.stages[name]
	if agg == nil {
		agg = &stageAgg{min: d, max: d}
		t.stages[name] = agg
	}
	agg.count++
	agg.total += d
	if d < agg.min {
		agg.min = d
	}
	if d > agg.max {
		agg.max = d
	}
	t.mu.Unlock()
}

// End stops the span, folds its duration into the stage aggregate, and
// (with capture on) records a trace event. It returns the duration.
// A second End is a no-op.
func (s *Span) End() time.Duration {
	if s.ended {
		return 0
	}
	s.ended = true
	end := s.tr.now()
	d := end.Sub(s.start)

	t := s.tr
	t.record(s.name, d)
	t.mu.Lock()
	if t.capture {
		ev := traceEvent{
			Name: s.name,
			Cat:  "stage",
			Ph:   "X",
			TS:   s.start.Sub(t.epoch).Microseconds(),
			Dur:  d.Microseconds(),
			PID:  1,
			TID:  s.lane,
		}
		if s.arg != "" || s.parent != "" {
			ev.Args = map[string]string{}
			if s.arg != "" {
				ev.Args["arg"] = s.arg
			}
			if s.parent != "" {
				ev.Args["parent"] = s.parent
			}
		}
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
	return d
}

// Stages snapshots the aggregated span timings, sorted by name.
func (t *Tracer) Stages() []StageSnap {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSnap, 0, len(t.stages))
	for name, a := range t.stages {
		out = append(out, StageSnap{
			Name:    name,
			Count:   a.count,
			TotalNS: a.total.Nanoseconds(),
			MinNS:   a.min.Nanoseconds(),
			MaxNS:   a.max.Nanoseconds(),
			AvgNS:   a.total.Nanoseconds() / int64(a.count),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// traceEvent is one entry of the Chrome trace_event "complete event"
// format (ph "X"): timestamps and durations in microseconds.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level object chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes every captured event as Chrome trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
