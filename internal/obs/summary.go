package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteSummary renders the snapshot as an aligned, human-readable report.
// It is meant for stderr after a run; stdout belongs to the figure tables.
func (s *Snap) WriteSummary(w io.Writer) {
	fmt.Fprintln(w, "== observability summary ==")
	if len(s.Stages) > 0 {
		fmt.Fprintln(w, "stages (aggregated span durations):")
		tw := newAligner(w)
		tw.row("  stage", "count", "total", "avg", "min", "max")
		for _, st := range s.Stages {
			tw.row("  "+st.Name, u(st.Count),
				dur(st.TotalNS), dur(st.AvgNS), dur(st.MinNS), dur(st.MaxNS))
		}
		tw.flush()
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		tw := newAligner(w)
		tw.row("  histogram", "count", "mean", "min", "max")
		for _, h := range s.Histograms {
			if strings.HasSuffix(h.Name, "_ns") {
				tw.row("  "+h.Name, u(h.Count),
					dur(int64(h.Mean)), dur(int64(h.Min)), dur(int64(h.Max)))
			} else {
				tw.row("  "+h.Name, u(h.Count),
					fmt.Sprintf("%.1f", h.Mean), u(h.Min), u(h.Max))
			}
		}
		tw.flush()
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		tw := newAligner(w)
		for _, c := range s.Counters {
			tw.row("  "+c.Name, u(c.Value))
		}
		tw.flush()
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		tw := newAligner(w)
		for _, g := range s.Gauges {
			tw.row("  "+g.Name, fmt.Sprintf("%d", g.Value))
		}
		tw.flush()
	}
}

func u(v uint64) string { return fmt.Sprintf("%d", v) }

func dur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// aligner buffers rows and pads columns: first column left-aligned, the
// rest right-aligned (the same convention as the experiment tables).
type aligner struct {
	w    io.Writer
	rows [][]string
}

func newAligner(w io.Writer) *aligner { return &aligner{w: w} }

func (a *aligner) row(cells ...string) { a.rows = append(a.rows, cells) }

func (a *aligner) flush() {
	var widths []int
	for _, r := range a.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range a.rows {
		var sb strings.Builder
		for i, c := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				sb.WriteString(c + strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(a.w, strings.TrimRight(sb.String(), " "))
	}
}
