package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It exists so experiments never depend on math/rand global
// state and are reproducible across runs and Go versions.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal variate via the Box-Muller
// transform (the polar form, rejection-free variant is unnecessary here).
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Split derives an independent child generator; the parent advances once.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// DeriveSeed derives an independent child seed from a base seed and a
// tuple of identifiers (e.g. a k-means run's (k, restart) pair) by
// folding each identifier through a splitmix64 step. It is a pure
// function of its arguments, so work items seeded this way reproduce
// bit-identically no matter how many workers execute them, or in what
// order.
func DeriveSeed(base uint64, ids ...uint64) uint64 {
	s := NewRNG(base).Uint64()
	for _, id := range ids {
		s = NewRNG(s ^ id*0x9e3779b97f4a7c15).Uint64()
	}
	return s
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Projection is a dense random linear projection from dim inputs to k
// outputs, used to reduce basic-block vectors to the 15 dimensions SimPoint
// clusters on (and to 3 dimensions for the Figure 5/6 visualizations).
type Projection struct {
	in, out int
	m       []float64 // row-major: out rows of in columns
}

// NewProjection builds a projection matrix with entries drawn uniformly
// from [-1, 1), matching SimPoint's random linear projection.
func NewProjection(in, out int, seed uint64) *Projection {
	r := NewRNG(seed)
	m := make([]float64, in*out)
	for i := range m {
		m[i] = 2*r.Float64() - 1
	}
	return &Projection{in: in, out: out, m: m}
}

// In reports the input dimensionality.
func (p *Projection) In() int { return p.in }

// Out reports the output dimensionality.
func (p *Projection) Out() int { return p.out }

// Apply projects v (length In) into a new vector of length Out.
func (p *Projection) Apply(v []float64) []float64 {
	if len(v) != p.in {
		panic("stats: projection dimension mismatch")
	}
	out := make([]float64, p.out)
	for o := 0; o < p.out; o++ {
		row := p.m[o*p.in : (o+1)*p.in]
		var s float64
		for i, x := range v {
			if x != 0 {
				s += row[i] * x
			}
		}
		out[o] = s
	}
	return out
}

// ApplySparse projects a sparse vector given as parallel index/value
// slices, avoiding a dense intermediate for large BBVs.
func (p *Projection) ApplySparse(idx []int, val []float64) []float64 {
	out := make([]float64, p.out)
	for o := 0; o < p.out; o++ {
		row := p.m[o*p.in : (o+1)*p.in]
		var s float64
		for j, i := range idx {
			s += row[i] * val[j]
		}
		out[o] = s
	}
	return out
}

// ApplySparse32 is ApplySparse for int32 index slices, the BBV storage
// width, so callers need not widen indices into a scratch []int first.
func (p *Projection) ApplySparse32(idx []int32, val []float64) []float64 {
	out := make([]float64, p.out)
	p.ApplySparse32Into(out, idx, val)
	return out
}

// ApplySparse32Into projects into a caller-provided destination of
// length Out, allocating nothing. dst is overwritten, not accumulated
// into.
func (p *Projection) ApplySparse32Into(dst []float64, idx []int32, val []float64) {
	if len(dst) != p.out {
		panic("stats: projection destination length mismatch")
	}
	for o := 0; o < p.out; o++ {
		row := p.m[o*p.in : (o+1)*p.in]
		var s float64
		for j, i := range idx {
			s += row[i] * val[j]
		}
		dst[o] = s
	}
}
