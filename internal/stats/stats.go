// Package stats provides the small statistical toolkit used throughout the
// phase-marker analysis: streaming (Welford) moment accumulators, weighted
// summary statistics, coefficient-of-variation helpers, a deterministic
// splittable RNG, and random projection matrices for basic-block vectors.
//
// Everything here is deterministic: no global state, no time- or
// math/rand-seeded randomness. Experiments are reproducible bit-for-bit.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates a stream of float64 observations and yields count,
// mean, variance, standard deviation, min and max in O(1) space using
// Welford's numerically stable online algorithm.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	w.sum += x
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2, w.sum = n, mean, m2, w.sum+o.sum
}

// N reports the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Sum reports the running total of all observations.
func (w *Welford) Sum() float64 { return w.sum }

// Mean reports the arithmetic mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Min reports the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// Variance reports the population variance (divide by n).
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev reports the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CoV reports the coefficient of variation (stddev / mean). A zero mean
// yields 0 so that empty or constant-zero streams read as perfectly stable.
func (w *Welford) CoV() float64 {
	if w.mean == 0 {
		return 0
	}
	return math.Abs(w.StdDev() / w.mean)
}

// String renders a compact human-readable summary.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g cov=%.4g min=%.4g max=%.4g",
		w.n, w.Mean(), w.StdDev(), w.CoV(), w.min, w.max)
}

// Weighted accumulates weighted observations. It is used for per-phase
// behavior statistics where each interval is weighted by its instruction
// count, so long intervals dominate the phase CoV as in the paper (§3.1).
type Weighted struct {
	wsum  float64
	mean  float64
	m2    float64 // weighted sum of squared deviations
	count uint64
}

// Add folds in observation x with weight w (w <= 0 is ignored).
func (a *Weighted) Add(x, w float64) {
	if w <= 0 {
		return
	}
	a.count++
	a.wsum += w
	delta := x - a.mean
	a.mean += delta * w / a.wsum
	a.m2 += w * delta * (x - a.mean)
}

// Merge folds another accumulator into a (parallel weighted combination):
// the result is identical — up to floating-point association — to adding
// both accumulators' observation streams into one.
func (a *Weighted) Merge(o Weighted) {
	if o.wsum == 0 {
		return
	}
	if a.wsum == 0 {
		*a = o
		return
	}
	w := a.wsum + o.wsum
	delta := o.mean - a.mean
	a.mean += delta * o.wsum / w
	a.m2 += o.m2 + delta*delta*a.wsum*o.wsum/w
	a.wsum = w
	a.count += o.count
}

// N reports the number of (nonzero-weight) observations.
func (a *Weighted) N() uint64 { return a.count }

// WeightSum reports the total weight observed.
func (a *Weighted) WeightSum() float64 { return a.wsum }

// Mean reports the weighted mean.
func (a *Weighted) Mean() float64 { return a.mean }

// Variance reports the weighted population variance.
func (a *Weighted) Variance() float64 {
	if a.wsum == 0 {
		return 0
	}
	return a.m2 / a.wsum
}

// StdDev reports the weighted population standard deviation.
func (a *Weighted) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CoV reports the weighted coefficient of variation.
func (a *Weighted) CoV() float64 {
	if a.mean == 0 {
		return 0
	}
	return math.Abs(a.StdDev() / a.mean)
}

// MeanStd computes the unweighted mean and population standard deviation of
// xs in one pass. It returns (0, 0) for an empty slice.
func MeanStd(xs []float64) (mean, std float64) {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.StdDev()
}
