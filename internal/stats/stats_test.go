package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= eps*scale
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.StdDev(), 2, 1e-12) {
		t.Errorf("std = %v, want 2", w.StdDev())
	}
	if !almostEqual(w.CoV(), 0.4, 1e-12) {
		t.Errorf("cov = %v, want 0.4", w.CoV())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	if w.Sum() != 40 {
		t.Errorf("sum = %v", w.Sum())
	}
}

func TestWelfordEmptyAndConstant(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.CoV() != 0 {
		t.Error("empty accumulator must read as zeros")
	}
	for i := 0; i < 100; i++ {
		w.Add(3.5)
	}
	if w.StdDev() != 0 || w.CoV() != 0 {
		t.Errorf("constant stream: std=%v cov=%v", w.StdDev(), w.CoV())
	}
}

// Property: Welford matches the naive two-pass computation on any input.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		return almostEqual(w.Mean(), mean, 1e-9) &&
			almostEqual(w.Variance(), m2/float64(len(clean)), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMergeEquivalence(t *testing.T) {
	f := func(a, b []float64) bool {
		sane := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = sane(a), sane(b)
		var wa, wb, all Welford
		for _, x := range a {
			wa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(wb)
		return wa.N() == all.N() &&
			almostEqual(wa.Mean(), all.Mean(), 1e-9) &&
			almostEqual(wa.Variance(), all.Variance(), 1e-6) &&
			wa.Min() == all.Min() && wa.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMatchesUnweightedWithUnitWeights(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 3, 9}
	var w Welford
	var wt Weighted
	for _, x := range xs {
		w.Add(x)
		wt.Add(x, 1)
	}
	if !almostEqual(w.Mean(), wt.Mean(), 1e-12) || !almostEqual(w.Variance(), wt.Variance(), 1e-12) {
		t.Errorf("weighted(1) != unweighted: %v/%v vs %v/%v",
			wt.Mean(), wt.Variance(), w.Mean(), w.Variance())
	}
}

func TestWeightedScaling(t *testing.T) {
	// Weight w is equivalent to repeating the observation w times.
	var a, b Weighted
	a.Add(2, 3)
	a.Add(10, 1)
	for i := 0; i < 3; i++ {
		b.Add(2, 1)
	}
	b.Add(10, 1)
	if !almostEqual(a.Mean(), b.Mean(), 1e-12) || !almostEqual(a.Variance(), b.Variance(), 1e-12) {
		t.Errorf("integer weights must act like repetition")
	}
	var c Weighted
	c.Add(1, 0)
	c.Add(1, -5)
	if c.N() != 0 {
		t.Error("non-positive weights must be ignored")
	}
}

func TestWeightedMergeEquivalence(t *testing.T) {
	f := func(a, b []float64) bool {
		sane := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = sane(a), sane(b)
		var wa, wb, all Weighted
		for i, x := range a {
			w := float64(i%7 + 1)
			wa.Add(x, w)
			all.Add(x, w)
		}
		for i, x := range b {
			w := float64(i%5 + 1)
			wb.Add(x, w)
			all.Add(x, w)
		}
		wa.Merge(wb)
		return wa.N() == all.N() &&
			almostEqual(wa.WeightSum(), all.WeightSum(), 1e-9) &&
			almostEqual(wa.Mean(), all.Mean(), 1e-9) &&
			almostEqual(wa.Variance(), all.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Merging into/from empty.
	var empty, one Weighted
	one.Add(4, 2)
	empty.Merge(one)
	if empty.Mean() != 4 || empty.WeightSum() != 2 {
		t.Fatalf("merge into empty: %+v", empty)
	}
	one.Merge(Weighted{})
	if one.Mean() != 4 || one.N() != 1 {
		t.Fatalf("merge from empty changed state: %+v", one)
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(123)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	buckets := make([]int, 10)
	const n = 100_000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/100 || c > n/10+n/100 {
			t.Errorf("bucket %d wildly off: %d", i, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(7)
	var w Welford
	for i := 0; i < 50_000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %v", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Errorf("normal std = %v", w.StdDev())
	}
}

func TestProjectionLinearity(t *testing.T) {
	p := NewProjection(20, 5, 1)
	r := NewRNG(2)
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
	}
	pa, pb := p.Apply(a), p.Apply(b)
	sum := make([]float64, 20)
	for i := range sum {
		sum[i] = 2*a[i] + 3*b[i]
	}
	ps := p.Apply(sum)
	for i := range ps {
		if !almostEqual(ps[i], 2*pa[i]+3*pb[i], 1e-9) {
			t.Fatalf("projection not linear at dim %d", i)
		}
	}
}

func TestProjectionSparseMatchesDense(t *testing.T) {
	p := NewProjection(30, 4, 5)
	dense := make([]float64, 30)
	var idx []int
	var val []float64
	for _, i := range []int{3, 7, 22} {
		dense[i] = float64(i) * 1.5
		idx = append(idx, i)
		val = append(val, dense[i])
	}
	d, s := p.Apply(dense), p.ApplySparse(idx, val)
	for i := range d {
		if !almostEqual(d[i], s[i], 1e-12) {
			t.Fatalf("sparse != dense at %d: %v vs %v", i, s[i], d[i])
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 2, 3, 4})
	if !almostEqual(m, 2.5, 1e-12) || !almostEqual(s, math.Sqrt(1.25), 1e-12) {
		t.Errorf("got %v, %v", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd must be zero")
	}
}

func TestApplySparse32MatchesApplySparse(t *testing.T) {
	p := NewProjection(40, 5, 13)
	idx := []int{1, 8, 17, 33, 39}
	val := []float64{0.5, -2, 3.25, 7, -0.125}
	idx32 := make([]int32, len(idx))
	for i, x := range idx {
		idx32[i] = int32(x)
	}
	want := p.ApplySparse(idx, val)
	got := p.ApplySparse32(idx32, val)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplySparse32 differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	into := make([]float64, p.Out())
	p.ApplySparse32Into(into, idx32, val)
	for i := range want {
		if into[i] != want[i] {
			t.Fatalf("ApplySparse32Into differs at %d: %v vs %v", i, into[i], want[i])
		}
	}
}

func TestApplySparse32IntoIsAllocFree(t *testing.T) {
	p := NewProjection(64, 15, 3)
	idx := make([]int32, 32)
	val := make([]float64, 32)
	for i := range idx {
		idx[i] = int32(i * 2)
		val[i] = float64(i) + 0.5
	}
	dst := make([]float64, p.Out())
	if allocs := testing.AllocsPerRun(100, func() {
		p.ApplySparse32Into(dst, idx, val)
	}); allocs != 0 {
		t.Fatalf("ApplySparse32Into allocates %v times per call, want 0", allocs)
	}
}

func TestApplySparse32IntoPanicsOnBadDst(t *testing.T) {
	p := NewProjection(8, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong-length destination")
		}
	}()
	p.ApplySparse32Into(make([]float64, 2), nil, nil)
}

func TestDeriveSeed(t *testing.T) {
	// Deterministic: same inputs, same seed.
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	// Sensitive to every component, including id order.
	seen := map[uint64][]uint64{}
	for _, tc := range [][]uint64{{1, 2, 3}, {1, 3, 2}, {2, 2, 3}, {1, 2}, {1}, {1, 2, 4}} {
		s := DeriveSeed(tc[0], tc[1:]...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision between %v and %v", prev, tc)
		}
		seen[s] = tc
	}
}
