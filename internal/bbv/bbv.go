// Package bbv implements basic block vectors (§2.2): per-interval
// fingerprints where each dimension is a static basic block and each entry
// is the block's execution count times its instruction count. Vectors are
// stored sparsely, normalized to unit L1 mass for comparison, and reduced
// by random linear projection for clustering and visualization.
package bbv

import (
	"math"
	"slices"

	"phasemark/internal/stats"
)

// Vector is a sparse basic block vector: parallel slices of block IDs
// (ascending) and size-weighted execution counts.
type Vector struct {
	Idx []int32
	Val []float64
}

// L1 reports the vector's L1 mass (total weighted instruction count).
func (v Vector) L1() float64 {
	var s float64
	for _, x := range v.Val {
		s += x
	}
	return s
}

// Normalized returns a copy scaled to unit L1 mass (zero vectors are
// copied unscaled). The copy is deep: it shares no storage with the
// receiver, so callers may mutate either vector freely.
func (v Vector) Normalized() Vector {
	s := v.L1()
	out := Vector{Idx: slices.Clone(v.Idx), Val: make([]float64, len(v.Val))}
	if s == 0 {
		copy(out.Val, v.Val)
		return out
	}
	for i, x := range v.Val {
		out.Val[i] = x / s
	}
	return out
}

// ManhattanNormed computes the L1 distance between the two vectors after
// normalizing each to unit mass — SimPoint's interval similarity measure.
func ManhattanNormed(a, b Vector) float64 {
	an, bn := a.Normalized(), b.Normalized()
	var d float64
	i, j := 0, 0
	for i < len(an.Idx) && j < len(bn.Idx) {
		switch {
		case an.Idx[i] == bn.Idx[j]:
			d += math.Abs(an.Val[i] - bn.Val[j])
			i++
			j++
		case an.Idx[i] < bn.Idx[j]:
			d += an.Val[i]
			i++
		default:
			d += bn.Val[j]
			j++
		}
	}
	for ; i < len(an.Idx); i++ {
		d += an.Val[i]
	}
	for ; j < len(bn.Idx); j++ {
		d += bn.Val[j]
	}
	return d
}

// Project reduces the normalized vector to p.Out dimensions.
func (v Vector) Project(p *stats.Projection) []float64 {
	out := make([]float64, p.Out())
	v.ProjectInto(out, p)
	return out
}

// ProjectInto projects the normalized vector into dst (length p.Out)
// without allocating. The projection is linear, so instead of
// materializing a normalized copy it projects the raw values and scales
// the p.Out outputs by 1/L1 — replacing a per-entry division and an
// index-widening copy with p.Out multiplications.
func (v Vector) ProjectInto(dst []float64, p *stats.Projection) {
	p.ApplySparse32Into(dst, v.Idx, v.Val)
	if s := v.L1(); s != 0 {
		inv := 1 / s
		for o := range dst {
			dst[o] *= inv
		}
	}
}

// Accumulator gathers block executions for the current interval using a
// dense scratch array plus a touched list, snapshotting to sparse vectors
// at interval boundaries. The scratch is reused across cuts, and snapshot
// storage is carved from append-only chunks, so a long segmented run costs
// one allocation per ~chunk of intervals rather than two per interval.
type Accumulator struct {
	counts  []float64
	touched []int32

	// Snapshot chunks: carved regions are never written again (vectors are
	// immutable once returned), so the chunks can be shared by every
	// snapshot cut from them.
	idxChunk []int32
	valChunk []float64
}

// snapshotChunk is the allocation granularity for snapshot storage
// (entries; one chunk serves many sparse intervals).
const snapshotChunk = 1 << 12

// NewAccumulator sizes the scratch for numBlocks static blocks.
func NewAccumulator(numBlocks int) *Accumulator {
	return &Accumulator{counts: make([]float64, numBlocks)}
}

// Touch records one execution of block id with the given instruction
// weight.
func (a *Accumulator) Touch(id int, weight int) {
	if a.counts[id] == 0 {
		a.touched = append(a.touched, int32(id))
	}
	a.counts[id] += float64(weight)
}

// Snapshot extracts the accumulated vector and resets the accumulator.
// The returned vector's storage comes from the accumulator's internal
// chunks; it stays valid (and immutable) for the life of the vector.
func (a *Accumulator) Snapshot() Vector {
	slices.Sort(a.touched)
	n := len(a.touched)
	if len(a.idxChunk)+n > cap(a.idxChunk) {
		a.idxChunk = make([]int32, 0, max(n, snapshotChunk))
		a.valChunk = make([]float64, 0, max(n, snapshotChunk))
	}
	li, lv := len(a.idxChunk), len(a.valChunk)
	a.idxChunk = a.idxChunk[: li+n : cap(a.idxChunk)]
	a.valChunk = a.valChunk[: lv+n : cap(a.valChunk)]
	v := Vector{
		Idx: a.idxChunk[li : li+n : li+n],
		Val: a.valChunk[lv : lv+n : lv+n],
	}
	for i, id := range a.touched {
		v.Idx[i] = id
		v.Val[i] = a.counts[id]
		a.counts[id] = 0
	}
	a.touched = a.touched[:0]
	return v
}

// Rewind reclaims all snapshot storage handed out since the accumulator
// was created or last rewound. Every Vector previously returned by
// Snapshot becomes invalid: its entries will be overwritten by future
// snapshots. Only streaming consumers that have finished with (or deep-
// copied) their chunk of vectors may call this — see the streaming stage
// contract in DESIGN.md.
func (a *Accumulator) Rewind() {
	a.idxChunk = a.idxChunk[:0]
	a.valChunk = a.valChunk[:0]
}
