package bbv

import (
	"math"
	"testing"
	"testing/quick"

	"phasemark/internal/stats"
)

func vec(pairs ...float64) Vector {
	v := Vector{}
	for i := 0; i < len(pairs); i += 2 {
		v.Idx = append(v.Idx, int32(pairs[i]))
		v.Val = append(v.Val, pairs[i+1])
	}
	return v
}

func TestAccumulatorSnapshot(t *testing.T) {
	a := NewAccumulator(10)
	a.Touch(3, 5)
	a.Touch(7, 2)
	a.Touch(3, 5)
	v := a.Snapshot()
	if len(v.Idx) != 2 || v.Idx[0] != 3 || v.Idx[1] != 7 {
		t.Fatalf("idx = %v", v.Idx)
	}
	if v.Val[0] != 10 || v.Val[1] != 2 {
		t.Fatalf("val = %v", v.Val)
	}
	// Snapshot resets.
	v2 := a.Snapshot()
	if len(v2.Idx) != 0 {
		t.Fatalf("accumulator not reset: %v", v2.Idx)
	}
	a.Touch(1, 1)
	v3 := a.Snapshot()
	if len(v3.Idx) != 1 || v3.Idx[0] != 1 {
		t.Fatalf("reuse after reset: %v", v3)
	}
}

func TestNormalized(t *testing.T) {
	v := vec(0, 2, 5, 6)
	n := v.Normalized()
	if n.L1() != 1 {
		t.Fatalf("L1 = %v", n.L1())
	}
	if n.Val[0] != 0.25 || n.Val[1] != 0.75 {
		t.Fatalf("vals = %v", n.Val)
	}
	// Zero vector survives.
	z := Vector{}
	if z.Normalized().L1() != 0 {
		t.Fatal("zero vector")
	}
}

// Regression: Normalized used to return a copy whose Idx slice aliased
// the receiver's, so mutating the normalized vector's indices corrupted
// the original (and, through the accumulator's shared snapshot chunks,
// every other vector carved from the same chunk).
func TestNormalizedDeepCopies(t *testing.T) {
	v := vec(0, 2, 5, 6)
	n := v.Normalized()
	n.Idx[0] = 99
	n.Val[0] = -1
	if v.Idx[0] != 0 || v.Val[0] != 2 {
		t.Fatalf("mutating Normalized() corrupted the receiver: Idx=%v Val=%v", v.Idx, v.Val)
	}
	// Same for the zero-mass path.
	z := vec(3, 0)
	nz := z.Normalized()
	nz.Idx[0] = 42
	if z.Idx[0] != 3 {
		t.Fatalf("zero-mass Normalized() aliases Idx: %v", z.Idx)
	}
}

// Rewind invalidates prior snapshots and reuses their chunk storage.
func TestAccumulatorRewind(t *testing.T) {
	a := NewAccumulator(10)
	a.Touch(3, 5)
	v1 := a.Snapshot()
	if v1.Idx[0] != 3 || v1.Val[0] != 5 {
		t.Fatalf("snapshot 1: %v", v1)
	}
	a.Rewind()
	a.Touch(7, 2)
	v2 := a.Snapshot()
	if v2.Idx[0] != 7 || v2.Val[0] != 2 {
		t.Fatalf("snapshot 2: %v", v2)
	}
	// Storage was recycled: v1 now sees v2's entries (the documented
	// invalidation), proving rewind reclaims rather than leaks.
	if v1.Idx[0] != 7 {
		t.Fatalf("rewind did not recycle chunk storage: v1.Idx=%v", v1.Idx)
	}
}

func TestManhattanNormedKnownValues(t *testing.T) {
	a := vec(0, 1)       // all mass on block 0
	b := vec(1, 1)       // all mass on block 1
	c := vec(0, 1, 1, 1) // split evenly
	if d := ManhattanNormed(a, b); d != 2 {
		t.Errorf("disjoint distance = %v, want 2", d)
	}
	if d := ManhattanNormed(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d := ManhattanNormed(a, c); math.Abs(d-1) > 1e-12 {
		t.Errorf("half-overlap distance = %v, want 1", d)
	}
	// Scale invariance: distance uses normalized vectors.
	a10 := vec(0, 10)
	if d := ManhattanNormed(a10, b); d != 2 {
		t.Errorf("scaled distance = %v, want 2", d)
	}
}

// Properties of the distance: symmetry, bounds [0,2], identity.
func TestManhattanNormedProperties(t *testing.T) {
	gen := func(seed uint64) Vector {
		r := stats.NewRNG(seed)
		n := r.Intn(8) + 1
		v := Vector{}
		idx := 0
		for i := 0; i < n; i++ {
			idx += r.Intn(5) + 1
			v.Idx = append(v.Idx, int32(idx))
			v.Val = append(v.Val, r.Float64()*10+0.01)
		}
		return v
	}
	f := func(s1, s2 uint64) bool {
		a, b := gen(s1), gen(s2)
		d1 := ManhattanNormed(a, b)
		d2 := ManhattanNormed(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 2+1e-12 &&
			ManhattanNormed(a, a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectMatchesDense(t *testing.T) {
	p := stats.NewProjection(16, 3, 9)
	v := vec(2, 4, 9, 12)
	got := v.Project(p)
	dense := make([]float64, 16)
	dense[2], dense[9] = 0.25, 0.75
	want := p.Apply(dense)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("projection mismatch: %v vs %v", got, want)
		}
	}
}

func TestProjectIntoMatchesProject(t *testing.T) {
	p := stats.NewProjection(16, 3, 9)
	v := vec(2, 4, 9, 12)
	want := v.Project(p)
	got := make([]float64, p.Out())
	v.ProjectInto(got, p)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProjectInto differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Zero vector: no normalization, projection of zeros is zeros.
	zero := Vector{}
	out := []float64{1, 2, 3}
	zero.ProjectInto(out, p)
	for i, x := range out {
		if x != 0 {
			t.Fatalf("zero-vector projection[%d] = %v", i, x)
		}
	}
}

// Regression: Project must not re-allocate per-entry scratch (it used to
// widen Idx into a fresh []int and build a normalized copy on every
// call). One allocation remains — the returned vector — and ProjectInto
// has none.
func TestProjectAllocs(t *testing.T) {
	p := stats.NewProjection(256, 15, 4)
	v := vec(3, 10, 40, 2, 100, 7, 200, 1)
	if allocs := testing.AllocsPerRun(100, func() { v.Project(p) }); allocs > 1 {
		t.Fatalf("Project allocates %v times per call, want <= 1", allocs)
	}
	dst := make([]float64, p.Out())
	if allocs := testing.AllocsPerRun(100, func() { v.ProjectInto(dst, p) }); allocs != 0 {
		t.Fatalf("ProjectInto allocates %v times per call, want 0", allocs)
	}
}
