package reuse

import (
	"math"

	"phasemark/internal/minivm"
)

// Sample is one window of the reuse-distance signal.
type Sample struct {
	Instr   uint64  // dynamic instruction count at window end
	MeanLog float64 // mean log2(1+distance) over the window's accesses
	Cold    int     // cold (first-touch) accesses in the window
	Count   int     // accesses in the window
}

// SignalCollector builds the windowed reuse-distance signal from an
// execution. It implements minivm.Observer.
type SignalCollector struct {
	minivm.NopObserver
	dist    *Distances
	window  int
	instrs  uint64
	sumLog  float64
	cold    int
	count   int
	Samples []Sample
}

// NewSignalCollector samples the reuse-distance stream every window
// accesses at the given cache-block granularity.
func NewSignalCollector(blockBytes, window int) *SignalCollector {
	if window <= 0 {
		window = 1024
	}
	return &SignalCollector{dist: NewDistances(blockBytes), window: window}
}

// ObservedEvents implements minivm.EventMasker.
func (s *SignalCollector) ObservedEvents() minivm.EventMask {
	return minivm.EvBlock | minivm.EvMem
}

// OnBlock implements minivm.Observer.
func (s *SignalCollector) OnBlock(b *minivm.Block) { s.instrs += uint64(b.Weight()) }

// OnMem implements minivm.Observer.
func (s *SignalCollector) OnMem(addr uint64, write bool) {
	d, cold := s.dist.Access(addr)
	if cold {
		s.cold++
	}
	s.sumLog += math.Log2(1 + float64(d))
	s.count++
	if s.count >= s.window {
		s.flush()
	}
}

func (s *SignalCollector) flush() {
	if s.count == 0 {
		return
	}
	s.Samples = append(s.Samples, Sample{
		Instr:   s.instrs,
		MeanLog: s.sumLog / float64(s.count),
		Cold:    s.cold,
		Count:   s.count,
	})
	s.sumLog, s.cold, s.count = 0, 0, 0
}

// Finish flushes a trailing partial window.
func (s *SignalCollector) Finish() { s.flush() }

// HaarSmooth applies `levels` rounds of pairwise Haar averaging and
// reconstructs a signal of the original length — the coarse approximation
// the wavelet analysis in [23] filters on. Each level halves resolution.
func HaarSmooth(x []float64, levels int) []float64 {
	cur := append([]float64(nil), x...)
	n := len(cur)
	for l := 0; l < levels && n > 1; l++ {
		half := (n + 1) / 2
		next := make([]float64, half)
		for i := 0; i < half; i++ {
			a := cur[2*i]
			b := a
			if 2*i+1 < n {
				b = cur[2*i+1]
			}
			next[i] = (a + b) / 2
		}
		cur = next
		n = half
	}
	// Upsample back to the original length (piecewise constant).
	out := make([]float64, len(x))
	scale := float64(len(cur)) / float64(len(x))
	for i := range out {
		j := int(float64(i) * scale)
		if j >= len(cur) {
			j = len(cur) - 1
		}
		out[i] = cur[j]
	}
	return out
}

// Boundaries finds phase-change points in the smoothed signal: indices
// where the smoothed value jumps by more than relThreshold times the
// signal's dynamic range, with at least minGap samples between boundaries.
func Boundaries(smoothed []float64, relThreshold float64, minGap int) []int {
	if len(smoothed) < 2 {
		return nil
	}
	lo, hi := smoothed[0], smoothed[0]
	for _, v := range smoothed {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		return nil
	}
	var out []int
	last := -minGap - 1
	for i := 1; i < len(smoothed); i++ {
		if math.Abs(smoothed[i]-smoothed[i-1]) >= relThreshold*span && i-last > minGap {
			out = append(out, i)
			last = i
		}
	}
	return out
}
