package reuse

import (
	"testing"
	"testing/quick"

	"phasemark/internal/compile"
	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

func TestTreapOrderStatistics(t *testing.T) {
	tr := newTreap(1)
	for k := uint64(1); k <= 100; k++ {
		tr.Insert(k)
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := tr.CountGreater(90); got != 10 {
		t.Fatalf("CountGreater(90) = %d", got)
	}
	if got := tr.CountGreater(0); got != 100 {
		t.Fatalf("CountGreater(0) = %d", got)
	}
	if got := tr.CountGreater(100); got != 0 {
		t.Fatalf("CountGreater(100) = %d", got)
	}
	if !tr.Delete(50) {
		t.Fatal("delete existing failed")
	}
	if tr.Delete(50) {
		t.Fatal("double delete succeeded")
	}
	if got := tr.CountGreater(40); got != 59 {
		t.Fatalf("after delete, CountGreater(40) = %d", got)
	}
}

// Property: treap CountGreater matches a naive slice implementation under
// random interleaved inserts and deletes.
func TestTreapMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tr := newTreap(seed ^ 0xfeed)
		live := map[uint64]bool{}
		next := uint64(1)
		for op := 0; op < 300; op++ {
			if r.Intn(3) != 0 || len(live) == 0 {
				tr.Insert(next)
				live[next] = true
				next++
			} else {
				// Delete a pseudo-random live key.
				var k uint64
				n := r.Intn(len(live))
				for key := range live {
					if n == 0 {
						k = key
						break
					}
					n--
				}
				// Map iteration order is random; re-derive determinism by
				// just deleting whichever key was found.
				tr.Delete(k)
				delete(live, k)
			}
			// Spot-check a query.
			q := uint64(r.Intn(int(next)))
			want := 0
			for key := range live {
				if key > q {
					want++
				}
			}
			if got := tr.CountGreater(q); got != want {
				return false
			}
		}
		return tr.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStackDistanceKnownSequence(t *testing.T) {
	d := NewDistances(64) // block = 64 bytes
	addr := func(blk uint64) uint64 { return blk * 64 }
	if dist, cold := d.Access(addr(1)); !cold || dist != 0 {
		t.Fatalf("first access: dist=%d cold=%v", dist, cold)
	}
	d.Access(addr(2))
	d.Access(addr(3))
	// Re-access 1: blocks 2 and 3 touched since -> distance 2.
	if dist, cold := d.Access(addr(1)); cold || dist != 2 {
		t.Fatalf("reuse distance = %d (cold=%v), want 2", dist, cold)
	}
	// Immediately re-access 1: distance 0.
	if dist, _ := d.Access(addr(1)); dist != 0 {
		t.Fatalf("immediate reuse = %d, want 0", dist)
	}
	// Same block, different word: still block 1.
	if dist, cold := d.Access(addr(1) + 8); cold || dist != 0 {
		t.Fatalf("same-block access: dist=%d cold=%v", dist, cold)
	}
	if d.Distinct() != 3 {
		t.Fatalf("distinct = %d", d.Distinct())
	}
}

// Property: for a cyclic sweep over N blocks, steady-state reuse distance
// is exactly N-1 for every access.
func TestStackDistanceCyclicSweep(t *testing.T) {
	d := NewDistances(64)
	const n = 50
	for pass := 0; pass < 4; pass++ {
		for b := uint64(0); b < n; b++ {
			dist, cold := d.Access(b * 64)
			if pass == 0 {
				if !cold {
					t.Fatal("first pass must be cold")
				}
				continue
			}
			if cold || dist != n-1 {
				t.Fatalf("pass %d block %d: dist=%d, want %d", pass, b, dist, n-1)
			}
		}
	}
}

func TestHaarSmoothPreservesMeanAndFlattens(t *testing.T) {
	x := []float64{0, 0, 0, 0, 10, 10, 10, 10}
	s := HaarSmooth(x, 1)
	if len(s) != len(x) {
		t.Fatalf("length changed: %d", len(s))
	}
	var mx, ms float64
	for i := range x {
		mx += x[i]
		ms += s[i]
	}
	if mx != ms {
		t.Fatalf("mean not preserved: %v vs %v", mx, ms)
	}
	// Full smoothing flattens to the global mean.
	flat := HaarSmooth(x, 10)
	for _, v := range flat {
		if v != 5 {
			t.Fatalf("fully smoothed = %v, want all 5", flat)
		}
	}
}

func TestBoundariesDetectSteps(t *testing.T) {
	sig := make([]float64, 100)
	for i := 50; i < 100; i++ {
		sig[i] = 10
	}
	b := Boundaries(sig, 0.5, 4)
	if len(b) != 1 || b[0] != 50 {
		t.Fatalf("boundaries = %v, want [50]", b)
	}
	// Flat signal: none.
	if b := Boundaries(make([]float64, 50), 0.1, 4); len(b) != 0 {
		t.Fatalf("flat signal boundaries = %v", b)
	}
	// minGap suppresses rapid re-triggers.
	saw := []float64{0, 10, 0, 10, 0, 10, 0, 10}
	if b := Boundaries(saw, 0.5, 100); len(b) != 1 {
		t.Fatalf("minGap violated: %v", b)
	}
}

const phasedSrc = `
array big[32768];
array small[512];
proc streamy(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + big[(i * 3) & 32767]; }
	return s;
}
proc tight(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + small[i & 511]; }
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) { s = s + streamy(n) + tight(n); }
	out(s);
	return s;
}
`

func TestSelectFindsLocalityMarkers(t *testing.T) {
	prog, err := compile.CompileSource(phasedSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk, err := Select(prog, []int64{8, 60_000}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mk.Boundaries == 0 {
		t.Fatal("no locality boundaries found in a strongly phased program")
	}
	if len(mk.Blocks) == 0 {
		t.Fatal("no reuse markers selected")
	}
	if mk.Covered == 0 {
		t.Fatal("markers cover no boundaries")
	}

	// The detector must fire on a different input, scaled with reps.
	det := NewDetector(mk, nil)
	m := minivm.NewMachine(prog, det)
	if _, err := m.Run(16, 60_000); err != nil {
		t.Fatal(err)
	}
	if det.Fired() == 0 {
		t.Fatal("reuse markers never fired")
	}
}

func TestDetectorRefractoryGap(t *testing.T) {
	prog, err := compile.CompileSource(phasedSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Mark the entry block with a huge refractory gap: exactly one firing.
	mk := &Markers{Blocks: []int{prog.EntryProc().Blocks[0].ID}, MinGap: 1 << 60}
	det := NewDetector(mk, nil)
	m := minivm.NewMachine(prog, det)
	if _, err := m.Run(4, 10_000); err != nil {
		t.Fatal(err)
	}
	if det.Fired() != 1 {
		t.Fatalf("fired %d times, want 1", det.Fired())
	}
}
