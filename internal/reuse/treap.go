// Package reuse implements the data-locality baseline the paper compares
// against (Shen, Zhong, Ding — "Locality phase prediction", §2.4/§6.1):
// exact LRU reuse (stack) distances computed with an order-statistic tree,
// a windowed reuse-distance signal with multi-scale (Haar) smoothing,
// boundary detection on that signal, and selection of basic blocks whose
// executions correlate with the boundaries — the "reuse-distance software
// phase markers".
package reuse

import "phasemark/internal/stats"

// treap is an order-statistic treap keyed by access timestamp. Keys are
// inserted in increasing order (each access gets a fresh timestamp) and
// removed arbitrarily; CountGreater answers "how many distinct blocks were
// accessed more recently than t" — the LRU stack distance.
type treap struct {
	root *tnode
	rng  *stats.RNG
}

type tnode struct {
	key   uint64
	prio  uint64
	size  int
	left  *tnode
	right *tnode
}

func newTreap(seed uint64) *treap {
	return &treap{rng: stats.NewRNG(seed)}
}

func size(n *tnode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *tnode) update() { n.size = 1 + size(n.left) + size(n.right) }

// split partitions by key: left has keys < k, right has keys >= k.
func split(n *tnode, k uint64) (l, r *tnode) {
	if n == nil {
		return nil, nil
	}
	if n.key < k {
		l2, r2 := split(n.right, k)
		n.right = l2
		n.update()
		return n, r2
	}
	l2, r2 := split(n.left, k)
	n.left = r2
	n.update()
	return l2, n
}

func merge(l, r *tnode) *tnode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio >= r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// Insert adds key k (must not be present).
func (t *treap) Insert(k uint64) {
	n := &tnode{key: k, prio: t.rng.Uint64(), size: 1}
	l, r := split(t.root, k)
	t.root = merge(merge(l, n), r)
}

// Delete removes key k if present; reports whether it was found.
func (t *treap) Delete(k uint64) bool {
	l, r := split(t.root, k)
	m, r2 := split(r, k+1)
	t.root = merge(l, r2)
	return m != nil
}

// CountGreater reports how many keys are strictly greater than k.
func (t *treap) CountGreater(k uint64) int {
	n := t.root
	cnt := 0
	for n != nil {
		if n.key > k {
			cnt += 1 + size(n.right)
			n = n.left
		} else {
			n = n.right
		}
	}
	return cnt
}

// Len reports the number of keys stored.
func (t *treap) Len() int { return size(t.root) }

// Distances computes exact LRU stack distances over a stream of block
// addresses. Access returns the reuse distance (number of distinct blocks
// touched since the previous access to this block) and cold=true for first
// accesses.
type Distances struct {
	t    *treap
	last map[uint64]uint64 // block -> last access time
	now  uint64
	// BlockBytes sets the granularity distances are measured at (cache
	// block granularity, matching the cache the phases will reconfigure).
	blockBytes uint64
}

// NewDistances builds a tracker at the given block granularity.
func NewDistances(blockBytes int) *Distances {
	return &Distances{
		t:          newTreap(0x9e3779b97f4a7c15),
		last:       map[uint64]uint64{},
		blockBytes: uint64(blockBytes),
	}
}

// Access records a byte-address access and returns its reuse distance.
func (d *Distances) Access(addr uint64) (dist int, cold bool) {
	blk := addr / d.blockBytes
	d.now++
	t, seen := d.last[blk]
	if seen {
		dist = d.t.CountGreater(t)
		d.t.Delete(t)
	} else {
		cold = true
	}
	d.t.Insert(d.now)
	d.last[blk] = d.now
	return dist, cold
}

// Distinct reports the number of distinct blocks seen so far.
func (d *Distances) Distinct() int { return d.t.Len() }
