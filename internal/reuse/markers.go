package reuse

import (
	"fmt"
	"sort"

	"phasemark/internal/minivm"
)

// Options configures reuse-distance marker selection.
type Options struct {
	BlockBytes    int     // granularity of reuse distances (default 64)
	Window        int     // accesses per signal sample (default 1024)
	SmoothLevels  int     // Haar smoothing levels (default 3)
	RelThreshold  float64 // boundary jump as fraction of signal range (default 0.15)
	MinGapSamples int     // min samples between boundaries (default 4)
	CorrWindow    uint64  // instr window after a boundary for correlation (default 20000)
	MinPrecision  float64 // min fraction of a block's executions near boundaries (default 0.5)
}

func (o *Options) fill() {
	if o.BlockBytes == 0 {
		o.BlockBytes = 64
	}
	if o.Window == 0 {
		o.Window = 1024
	}
	if o.SmoothLevels == 0 {
		o.SmoothLevels = 3
	}
	if o.RelThreshold == 0 {
		o.RelThreshold = 0.15
	}
	if o.MinGapSamples == 0 {
		o.MinGapSamples = 4
	}
	if o.CorrWindow == 0 {
		o.CorrWindow = 30000
	}
	if o.MinPrecision == 0 {
		o.MinPrecision = 0.4
	}
}

// Markers is a set of reuse-distance phase markers: static basic blocks
// whose executions signal locality-phase changes. MinGap suppresses
// re-fires within a refractory window, mirroring the per-pattern firing of
// the original scheme.
type Markers struct {
	Blocks     []int
	MinGap     uint64
	Boundaries int // boundaries detected in the training signal
	Covered    int // boundaries covered by the selected blocks
}

// Select derives reuse-distance markers for prog on the given training
// input. It makes two instrumented runs: one to build and segment the
// reuse-distance signal, one to correlate basic blocks with the detected
// phase boundaries (the Sequitur-pattern step of [23] reduced to its
// effect: find blocks that fire at locality-phase starts).
func Select(prog *minivm.Program, args []int64, opts Options) (*Markers, error) {
	opts.fill()

	// Pass 1: reuse-distance signal.
	sc := NewSignalCollector(opts.BlockBytes, opts.Window)
	m := minivm.NewMachine(prog, sc)
	if _, err := m.Run(args...); err != nil {
		return nil, fmt.Errorf("reuse: signal run: %w", err)
	}
	sc.Finish()
	sig := make([]float64, len(sc.Samples))
	for i, s := range sc.Samples {
		sig[i] = s.MeanLog
	}
	smoothed := HaarSmooth(sig, opts.SmoothLevels)
	bidx := Boundaries(smoothed, opts.RelThreshold, opts.MinGapSamples)
	// Smoothing localizes a jump only to within a 2^levels-sample block;
	// refine each boundary to the largest raw-signal jump nearby.
	radius := 1 << opts.SmoothLevels
	for i, bi := range bidx {
		lo, hi := bi-radius, bi+radius
		if lo < 1 {
			lo = 1
		}
		if hi >= len(sig) {
			hi = len(sig) - 1
		}
		best, bestJump := bi, -1.0
		for j := lo; j <= hi; j++ {
			if jump := abs(sig[j] - sig[j-1]); jump > bestJump {
				best, bestJump = j, jump
			}
		}
		bidx[i] = best
	}
	bpos := make([]uint64, len(bidx))
	for i, bi := range bidx {
		if bi > 0 {
			bpos[i] = sc.Samples[bi-1].Instr // phase starts after the previous window
		}
	}

	mk := &Markers{MinGap: opts.CorrWindow, Boundaries: len(bpos)}
	if len(bpos) == 0 {
		return mk, nil // no structure found (the gcc/vortex failure mode of [23])
	}

	// Pass 2: correlate block executions with boundary windows.
	corr := &correlator{bpos: bpos, window: opts.CorrWindow,
		hits: map[int]int{}, execs: map[int]int{}, covered: map[int]map[int]bool{}}
	m2 := minivm.NewMachine(prog, corr)
	if _, err := m2.Run(args...); err != nil {
		return nil, fmt.Errorf("reuse: correlation run: %w", err)
	}

	type cand struct {
		block     int
		precision float64
		cov       map[int]bool
	}
	var cands []cand
	for blk, h := range corr.hits {
		p := float64(h) / float64(corr.execs[blk])
		if p >= opts.MinPrecision {
			cands = append(cands, cand{block: blk, precision: p, cov: corr.covered[blk]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		si := cands[i].precision * float64(len(cands[i].cov))
		sj := cands[j].precision * float64(len(cands[j].cov))
		if si != sj {
			return si > sj
		}
		return cands[i].block < cands[j].block
	})
	uncovered := map[int]bool{}
	for i := range bpos {
		uncovered[i] = true
	}
	for _, c := range cands {
		news := 0
		for b := range c.cov {
			if uncovered[b] {
				news++
			}
		}
		if news == 0 {
			continue
		}
		mk.Blocks = append(mk.Blocks, c.block)
		for b := range c.cov {
			delete(uncovered, b)
		}
		if len(uncovered) == 0 {
			break
		}
	}
	sort.Ints(mk.Blocks)
	mk.Covered = len(bpos) - len(uncovered)
	return mk, nil
}

type correlator struct {
	minivm.NopObserver
	bpos    []uint64
	window  uint64
	instrs  uint64
	next    int // first boundary with bpos+window >= instrs
	hits    map[int]int
	execs   map[int]int
	covered map[int]map[int]bool
}

// ObservedEvents implements minivm.EventMasker.
func (c *correlator) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

func (c *correlator) OnBlock(b *minivm.Block) {
	p := c.instrs
	c.instrs += uint64(b.Weight())
	c.execs[b.ID]++
	// The smoothed signal localizes a boundary only to within a few
	// windows, so correlation uses a two-sided window around it.
	for c.next < len(c.bpos) && c.bpos[c.next]+c.window < p {
		c.next++
	}
	if c.next < len(c.bpos) && c.bpos[c.next] <= p+c.window && p <= c.bpos[c.next]+c.window {
		c.hits[b.ID]++
		cov := c.covered[b.ID]
		if cov == nil {
			cov = map[int]bool{}
			c.covered[b.ID] = cov
		}
		cov[c.next] = true
	}
}

// Detector fires the reuse markers on an execution: when a marked block
// executes outside the refractory gap, the boundary callback runs with the
// marker's index as the phase ID.
type Detector struct {
	minivm.NopObserver
	phase    map[int]int
	minGap   uint64
	instrs   uint64
	lastFire uint64
	armed    bool
	onFire   func(phase int, at uint64)
	fired    uint64
}

// NewDetector builds a detector for mk; onFire may be nil.
func NewDetector(mk *Markers, onFire func(phase int, at uint64)) *Detector {
	d := &Detector{phase: map[int]int{}, minGap: mk.MinGap, onFire: onFire, armed: true}
	for i, b := range mk.Blocks {
		d.phase[b] = i
	}
	return d
}

// ObservedEvents implements minivm.EventMasker.
func (d *Detector) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

// OnBlock implements minivm.Observer.
func (d *Detector) OnBlock(b *minivm.Block) {
	p := d.instrs
	d.instrs += uint64(b.Weight())
	ph, ok := d.phase[b.ID]
	if !ok {
		return
	}
	if d.armed || p-d.lastFire >= d.minGap {
		d.fired++
		d.lastFire = p
		d.armed = false
		if d.onFire != nil {
			d.onFire(ph, p)
		}
	}
}

// Fired reports the total firings.
func (d *Detector) Fired() uint64 { return d.fired }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
