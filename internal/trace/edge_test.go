// Segmentation edge cases, tested from outside the package so the
// tiling invariant (internal/check) can be asserted directly: a marker
// firing on the very first block, a fixed-length grid point landing
// exactly on the end of execution, and a FixedLen larger than the whole
// trace. None may produce zero-length intervals or lose the tail.
package trace_test

import (
	"testing"

	"phasemark/internal/check"
	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
)

const edgeSrc = `
proc work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i * 3; }
	return s;
}
proc main(n) {
	out(work(n));
	return 0;
}
`

func compileEdge(t *testing.T) *minivm.Program {
	t.Helper()
	prog, err := compile.CompileSource(edgeSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// A marker on the virtual-root → entry-procedure edge fires at
// instruction 0, before anything has executed. The firing must re-phase
// the first interval (same-instant dedup), not open an empty one.
func TestMarkerFiresOnFirstBlock(t *testing.T) {
	prog := compileEdge(t)
	entry := prog.EntryProc()
	set := &core.MarkerSet{Markers: []core.Marker{{
		Key: core.EdgeKey{
			From: core.NodeKey{Kind: core.RootKind},
			To:   core.NodeKey{Kind: core.ProcHead, ID: entry.ID},
			Site: entry.Blocks[0].ID,
		},
		GroupN: 1,
		Count:  1,
	}}}
	res, err := trace.Run(trace.Config{
		Prog: prog, Args: []int64{500}, CPU: uarch.DefaultConfig(), Markers: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Segmentation(res, len(set.Markers)); err != nil {
		t.Fatalf("tiling invariant violated: %v", err)
	}
	if res.MarkerFires != 1 {
		t.Fatalf("marker fires = %d, want 1", res.MarkerFires)
	}
	if len(res.Intervals) != 1 {
		t.Fatalf("intervals = %d, want 1 (a firing at instant 0 must not open an empty interval)",
			len(res.Intervals))
	}
	iv := res.Intervals[0]
	if iv.Start != 0 || iv.End != res.Instructions {
		t.Fatalf("interval [%d, %d) does not cover [0, %d)", iv.Start, iv.End, res.Instructions)
	}
	if iv.PhaseID != 0 {
		t.Fatalf("interval phase = %d, want marker 0 (the instant-0 firing defines the phase)", iv.PhaseID)
	}
}

// A FixedLen larger than the whole trace yields exactly one interval
// covering everything — no lost tail, no spurious cut.
func TestFixedLenLargerThanTrace(t *testing.T) {
	prog := compileEdge(t)
	res, err := trace.Run(trace.Config{
		Prog: prog, Args: []int64{500}, CPU: uarch.DefaultConfig(), FixedLen: 1 << 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Segmentation(res, -1); err != nil {
		t.Fatalf("tiling invariant violated: %v", err)
	}
	if len(res.Intervals) != 1 {
		t.Fatalf("intervals = %d, want 1", len(res.Intervals))
	}
	if res.Intervals[0].Len() != res.Instructions {
		t.Fatalf("interval covers %d of %d instructions", res.Intervals[0].Len(), res.Instructions)
	}
}

// When the execution length is an exact multiple of FixedLen, the last
// grid point coincides with the end of the program: the pending cut never
// fires (no block follows) and the final close must land exactly there —
// one full-length tail interval, not a zero-length one and not a lost
// tail.
func TestFixedLenDividesTraceExactly(t *testing.T) {
	prog := compileEdge(t)
	probe, err := trace.Run(trace.Config{
		Prog: prog, Args: []int64{500}, CPU: uarch.DefaultConfig(),
		FixedLen: 1 << 62, SkipBBV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := probe.Instructions

	// Pick a FixedLen that divides the total exactly, so a grid point
	// lands on the final instruction boundary.
	var fl uint64
	for d := uint64(2); d <= 1024; d++ {
		if total%d == 0 {
			fl = total / d
			break
		}
	}
	if fl == 0 {
		t.Fatalf("execution length %d has no small divisor; adjust the fixture", total)
	}

	res, err := trace.Run(trace.Config{
		Prog: prog, Args: []int64{500}, CPU: uarch.DefaultConfig(), FixedLen: fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Segmentation(res, -1); err != nil {
		t.Fatalf("tiling invariant violated: %v", err)
	}
	last := res.Intervals[len(res.Intervals)-1]
	if last.End != total {
		t.Fatalf("last interval ends at %d, want %d (lost tail)", last.End, total)
	}
	if last.Len() == 0 {
		t.Fatal("zero-length tail interval at the final grid point")
	}
	if len(res.Intervals) < 2 {
		t.Fatalf("only %d intervals; the divisor case needs interior cuts to be meaningful", len(res.Intervals))
	}
}
