package trace

import "testing"

// TestMarkerRunAllocsIndependentOfEvents pins the hot-path guarantee the
// allocation work of a marker-cut trace.Run is per-interval and per-setup,
// never per-event: scaling the executed instruction count ~16x must leave
// the allocation count nearly unchanged (small growth is allowed for the
// extra intervals' arena chunks and slice doublings). Before the interval
// arena, snapshot chunking, and the machine's register arena, allocations
// grew linearly with events — tens of thousands per run.
func TestMarkerRunAllocsIndependentOfEvents(t *testing.T) {
	cfg, set := compileAndMark(t, 2_000)
	cfg.Markers = set

	run := func(reps int64) (allocs float64, instrs uint64) {
		c := *cfg
		c.Args = []int64{reps, c.Args[1]}
		allocs = testing.AllocsPerRun(5, func() {
			r, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			instrs = r.Instructions
		})
		return allocs, instrs
	}

	shortAllocs, shortInstrs := run(4)
	longAllocs, longInstrs := run(64)
	if longInstrs < 8*shortInstrs {
		t.Fatalf("scaling failed: %d -> %d instructions", shortInstrs, longInstrs)
	}
	// The long run executes ~16x the events. Per-event allocation of any
	// kind would add tens of thousands of objects here.
	if longAllocs > shortAllocs+128 {
		t.Fatalf("allocations scale with events: %d instrs -> %.0f allocs, %d instrs -> %.0f allocs",
			shortInstrs, shortAllocs, longInstrs, longAllocs)
	}
}
