// Package trace segments a program's execution into intervals — fixed
// length (the prior-work baseline) or variable length cut at software
// phase-marker firings — collecting a basic block vector and timing-model
// counters for each interval. It also provides the paper's homogeneity
// metric: the weighted per-phase coefficient of variation (§3.1).
package trace

import (
	"fmt"

	"phasemark/internal/bbv"
	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/obs"
	"phasemark/internal/uarch"
)

// Segmentation metrics: how many measured runs happened, how finely they
// were cut, and the interval-length distribution across all of them.
var (
	obsTraceRuns    = obs.NewCounter("trace.runs")
	obsIntervals    = obs.NewCounter("trace.intervals")
	obsMarkerFires  = obs.NewCounter("trace.marker_fires")
	obsIntervalLens = obs.NewHist("trace.interval_instructions")
)

// ProloguePhase is the phase ID of execution before the first marker
// firing (and of all intervals when cutting at fixed lengths, where phase
// IDs are assigned later by clustering).
const ProloguePhase = -1

// Interval is one contiguous slice of execution.
type Interval struct {
	Index   int
	Start   uint64 // dynamic instruction count at interval start
	End     uint64
	PhaseID int // marker index that began the interval, or ProloguePhase
	BBV     bbv.Vector
	Perf    uarch.Counters // metrics accumulated during this interval
}

// Len reports the interval's instruction count.
func (iv *Interval) Len() uint64 { return iv.End - iv.Start }

// CPI reports the interval's cycles per instruction.
func (iv *Interval) CPI() float64 { return iv.Perf.CPI() }

// Result is a segmented, measured execution.
type Result struct {
	Intervals    []*Interval
	Total        uarch.Counters
	Instructions uint64
	NumBlocks    int
	MarkerFires  uint64
}

// TrueCPI reports the whole-execution CPI.
func (r *Result) TrueCPI() float64 { return r.Total.CPI() }

// Config selects how to run and cut an execution.
type Config struct {
	Prog *minivm.Program
	Args []int64
	CPU  uarch.Config

	// FixedLen cuts every FixedLen instructions when nonzero; otherwise
	// Markers must be set and intervals are cut at marker firings.
	FixedLen uint64
	Markers  *core.MarkerSet

	// SkipBBV disables basic-block-vector collection (faster when only
	// CPI/miss metrics are needed).
	SkipBBV bool
}

// collector owns the interval state and implements the cut logic.
type collector struct {
	cpu     *uarch.CPU
	acc     *bbv.Accumulator
	skipBBV bool

	intervals []*Interval
	// arena is the current Interval allocation chunk. Interval pointers
	// escape into the Result, so cut never reuses storage — it appends into
	// the chunk and starts a fresh one when full, amortizing what used to
	// be one heap allocation per interval down to one per chunk (finished
	// chunks stay alive through the pointers into them).
	arena    []Interval
	lastCut  uint64
	lastPerf uarch.Counters
	curPhase int
}

// intervalChunk is the Interval arena granularity.
const intervalChunk = 256

// perfBlockObs folds the timing model's per-block accounting and the BBV
// accumulator touch into a single observer call on the tracing hot path.
type perfBlockObs struct {
	minivm.NopObserver
	cpu *uarch.CPU
	acc *bbv.Accumulator
}

// ObservedEvents implements minivm.EventMasker.
func (o *perfBlockObs) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

// OnBlock implements minivm.Observer.
func (o *perfBlockObs) OnBlock(b *minivm.Block) {
	o.cpu.OnBlock(b)
	o.acc.Touch(b.ID, b.Weight())
}

func (c *collector) cut(phase int, at uint64) {
	if at == c.lastCut {
		// Several markers firing at the same instant (e.g. a loop-entry
		// edge and its first iteration): the innermost firing defines the
		// new interval's phase; no zero-length interval is recorded.
		c.curPhase = phase
		return
	}
	now := c.cpu.Counters()
	if len(c.arena) == cap(c.arena) {
		c.arena = make([]Interval, 0, intervalChunk)
	}
	c.arena = append(c.arena, Interval{
		Index:   len(c.intervals),
		Start:   c.lastCut,
		End:     at,
		PhaseID: c.curPhase,
		Perf:    now.Sub(c.lastPerf),
	})
	iv := &c.arena[len(c.arena)-1]
	if !c.skipBBV {
		iv.BBV = c.acc.Snapshot()
	}
	c.intervals = append(c.intervals, iv)
	c.lastCut = at
	c.lastPerf = now
	c.curPhase = phase
}

// Run executes the program under the timing model, cutting intervals per
// cfg, and returns the segmented result.
func Run(cfg Config) (*Result, error) {
	sp := obs.StartSpan("trace.exec", "")
	defer sp.End()
	if cfg.Prog == nil {
		return nil, fmt.Errorf("trace: nil program")
	}
	if cfg.FixedLen == 0 && cfg.Markers == nil {
		return nil, fmt.Errorf("trace: need FixedLen or Markers")
	}
	if cfg.CPU.L1.Sets == 0 {
		cfg.CPU = uarch.DefaultConfig()
	}
	cpu := uarch.NewCPU(cfg.CPU, cfg.Prog)
	col := &collector{
		cpu:      cpu,
		acc:      bbv.NewAccumulator(cfg.Prog.NumBlocks),
		skipBBV:  cfg.SkipBBV,
		curPhase: ProloguePhase,
	}

	var obs minivm.MultiObserver
	var det *core.Detector
	if cfg.FixedLen > 0 {
		obs = append(obs, NewFixedCutter(cfg.FixedLen, func(at uint64) {
			col.cut(ProloguePhase, at)
		}))
	} else {
		det = core.NewDetector(cfg.Prog, nil, cfg.Markers, func(marker int, at uint64) {
			col.cut(marker, at)
		})
		obs = append(obs, det)
	}
	if cfg.SkipBBV {
		obs = append(obs, cpu)
	} else {
		// Fuse the timing model's block accounting with BBV collection into
		// one dispatch, and strip EvBlock from the CPU's own registration so
		// the machine makes two observer calls per block instead of three.
		obs = append(obs,
			&perfBlockObs{cpu: cpu, acc: col.acc},
			minivm.Masked(cpu, minivm.EvBranch|minivm.EvMem))
	}

	m := minivm.NewMachine(cfg.Prog, obs)
	if _, err := m.Run(cfg.Args...); err != nil {
		return nil, fmt.Errorf("trace: run failed: %w", err)
	}
	// Close the final interval.
	col.cut(ProloguePhase, m.Instructions())

	res := &Result{
		Intervals:    col.intervals,
		Total:        cpu.Counters(),
		Instructions: m.Instructions(),
		NumBlocks:    cfg.Prog.NumBlocks,
	}
	if det != nil {
		res.MarkerFires = det.TotalFired()
	}
	obsTraceRuns.Inc()
	obsIntervals.Add(uint64(len(res.Intervals)))
	obsMarkerFires.Add(res.MarkerFires)
	for _, iv := range res.Intervals {
		obsIntervalLens.Observe(iv.Len())
	}
	return res, nil
}
