// Package trace segments a program's execution into intervals — fixed
// length (the prior-work baseline) or variable length cut at software
// phase-marker firings — collecting a basic block vector and timing-model
// counters for each interval. It also provides the paper's homogeneity
// metric: the weighted per-phase coefficient of variation (§3.1).
package trace

import (
	"fmt"

	"phasemark/internal/bbv"
	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/obs"
	"phasemark/internal/uarch"
)

// Segmentation metrics: how many measured runs happened, how finely they
// were cut, and the interval-length distribution across all of them.
var (
	obsTraceRuns    = obs.NewCounter("trace.runs")
	obsIntervals    = obs.NewCounter("trace.intervals")
	obsMarkerFires  = obs.NewCounter("trace.marker_fires")
	obsIntervalLens = obs.NewHist("trace.interval_instructions")
)

// ProloguePhase is the phase ID of execution before the first marker
// firing (and of all intervals when cutting at fixed lengths, where phase
// IDs are assigned later by clustering).
const ProloguePhase = -1

// Interval is one contiguous slice of execution.
type Interval struct {
	Index   int
	Start   uint64 // dynamic instruction count at interval start
	End     uint64
	PhaseID int // marker index that began the interval, or ProloguePhase
	BBV     bbv.Vector
	Perf    uarch.Counters // metrics accumulated during this interval
}

// Len reports the interval's instruction count.
func (iv *Interval) Len() uint64 { return iv.End - iv.Start }

// CPI reports the interval's cycles per instruction.
func (iv *Interval) CPI() float64 { return iv.Perf.CPI() }

// Result is a segmented, measured execution.
type Result struct {
	Intervals    []*Interval
	Total        uarch.Counters
	Instructions uint64
	NumBlocks    int
	MarkerFires  uint64
}

// TrueCPI reports the whole-execution CPI.
func (r *Result) TrueCPI() float64 { return r.Total.CPI() }

// Config selects how to run and cut an execution.
type Config struct {
	Prog *minivm.Program
	Args []int64
	CPU  uarch.Config

	// FixedLen cuts every FixedLen instructions when nonzero; otherwise
	// Markers must be set and intervals are cut at marker firings.
	FixedLen uint64
	Markers  *core.MarkerSet

	// SkipBBV disables basic-block-vector collection (faster when only
	// CPI/miss metrics are needed).
	SkipBBV bool

	// Sink, when non-nil, switches Run into streaming mode: finished
	// intervals are handed to Sink in chunks of up to ChunkSize as the
	// execution proceeds, and Result.Intervals stays nil. The chunk and
	// every Interval in it — including BBV storage — are owned by the
	// tracer and recycled after Sink returns; a sink must finish with (or
	// deep-copy) anything it keeps. Working memory is then bounded by the
	// chunk instead of the trace. A Sink error aborts the run.
	Sink func(chunk []Interval) error

	// ChunkSize is the streaming chunk capacity in intervals (default 256).
	// Ignored when Sink is nil.
	ChunkSize int

	// Scale amplifies the trace by executing the program Scale times,
	// producing one Scale×-long segmented execution. Each repetition is
	// an independent cold run — machine state, timing model (caches,
	// predictor, counters), cutter grid, and detector occurrence counts
	// all reset at the boundary, and the repetition's final interval is
	// closed there — tiled end to end on the instruction axis. Identical
	// repetitions therefore produce identical interval sequences, which
	// is what makes the amplified trace reproducible rep by rep (and lets
	// Workers fan repetitions out without changing a single byte of
	// output). 0 or 1 means a single execution.
	Scale int

	// Workers enables the pipeline-parallel streaming engine when
	// positive and Sink is set: trace production is decoupled from
	// analysis through a bounded ring of event buffers (single
	// execution), and Scale repetitions are fanned over min(Workers,
	// Scale) machine instances with chunks delivered to Sink in
	// rep-major order (amplified execution). Output is bit-identical to
	// the serial stream at any worker count; only wall-clock changes.
	// 0 keeps the serial in-line path; negative is an error.
	// Materializing runs (Sink == nil) ignore Workers.
	Workers int
}

// collector owns the interval state and implements the cut logic.
type collector struct {
	cpu     *uarch.CPU
	acc     *bbv.Accumulator
	skipBBV bool

	// sink non-nil selects streaming mode: the arena doubles as the
	// delivery chunk, flushed and recycled (with the BBV snapshot chunks)
	// when full, and intervals stays nil.
	sink func(chunk []Interval) error
	err  error // first sink error; poisons the rest of the run

	intervals []*Interval
	// arena is the current Interval allocation chunk. In materializing
	// mode Interval pointers escape into the Result, so cut never reuses
	// storage — it appends into the chunk and starts a fresh one when
	// full, amortizing what used to be one heap allocation per interval
	// down to one per chunk (finished chunks stay alive through the
	// pointers into them). In streaming mode the one arena is reused for
	// the life of the run.
	arena    []Interval
	count    int // intervals cut so far (Index source in both modes)
	lastCut  uint64
	lastPerf uarch.Counters
	curPhase int
}

// intervalChunk is the Interval arena granularity.
const intervalChunk = 256

// perfBlockObs folds the timing model's per-block accounting and the BBV
// accumulator touch into a single observer call on the tracing hot path.
type perfBlockObs struct {
	minivm.NopObserver
	cpu *uarch.CPU
	acc *bbv.Accumulator
}

// ObservedEvents implements minivm.EventMasker.
func (o *perfBlockObs) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

// OnBlock implements minivm.Observer.
func (o *perfBlockObs) OnBlock(b *minivm.Block) {
	o.cpu.OnBlock(b)
	o.acc.Touch(b.ID, b.Weight())
}

func (c *collector) cut(phase int, at uint64) {
	if at == c.lastCut {
		// Several markers firing at the same instant (e.g. a loop-entry
		// edge and its first iteration): the innermost firing defines the
		// new interval's phase; no zero-length interval is recorded.
		c.curPhase = phase
		return
	}
	now := c.cpu.Counters()
	iv := Interval{
		Index:   c.count,
		Start:   c.lastCut,
		End:     at,
		PhaseID: c.curPhase,
		Perf:    now.Sub(c.lastPerf),
	}
	if !c.skipBBV {
		iv.BBV = c.acc.Snapshot()
	}
	switch {
	case c.sink == nil:
		if len(c.arena) == cap(c.arena) {
			c.arena = make([]Interval, 0, intervalChunk)
		}
		c.arena = append(c.arena, iv)
		c.intervals = append(c.intervals, &c.arena[len(c.arena)-1])
	case c.err != nil:
		// A sink error already poisoned the run; drop the interval and
		// recycle its storage so the doomed remainder of the execution
		// cannot grow memory before Run surfaces the error.
		c.arena = c.arena[:0]
		if !c.skipBBV {
			c.acc.Rewind()
		}
	default:
		c.arena = append(c.arena, iv)
		if len(c.arena) == cap(c.arena) {
			c.flush()
		}
	}
	c.count++
	obsIntervalLens.Observe(at - c.lastCut)
	c.lastCut = at
	c.lastPerf = now
	c.curPhase = phase
}

// flush delivers the buffered chunk to the sink and recycles its storage
// (the Interval arena and the BBV snapshot chunks backing the vectors).
func (c *collector) flush() {
	if c.sink == nil || len(c.arena) == 0 || c.err != nil {
		return
	}
	if err := c.sink(c.arena); err != nil {
		c.err = err
	}
	c.arena = c.arena[:0]
	if !c.skipBBV {
		c.acc.Rewind()
	}
}

// Run executes the program under the timing model, cutting intervals per
// cfg, and returns the segmented result.
func Run(cfg Config) (*Result, error) {
	sp := obs.StartSpan("trace.exec", "")
	defer sp.End()
	if cfg.Prog == nil {
		return nil, fmt.Errorf("trace: nil program")
	}
	if cfg.FixedLen == 0 && cfg.Markers == nil {
		return nil, fmt.Errorf("trace: need FixedLen or Markers")
	}
	if cfg.CPU.L1.Sets == 0 {
		cfg.CPU = uarch.DefaultConfig()
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("trace: negative Workers (%d)", cfg.Workers)
	}
	if cfg.Sink != nil && cfg.Workers > 0 {
		// Pipeline-parallel streaming engine (engine.go): overlap trace
		// production with analysis, and fan Scale repetitions over
		// workers. Bit-identical to the serial path below.
		return runEngine(cfg)
	}
	cpu := uarch.NewCPU(cfg.CPU, cfg.Prog)
	col := &collector{
		cpu:      cpu,
		acc:      bbv.NewAccumulator(cfg.Prog.NumBlocks),
		skipBBV:  cfg.SkipBBV,
		sink:     cfg.Sink,
		curPhase: ProloguePhase,
	}
	if cfg.Sink != nil {
		chunk := cfg.ChunkSize
		if chunk <= 0 {
			chunk = intervalChunk
		}
		col.arena = make([]Interval, 0, chunk)
	}

	// Named to avoid shadowing the imported obs metrics package (a past
	// bug; shadow_test.go keeps it from returning).
	var observers minivm.MultiObserver
	var det *core.Detector
	var fixed *FixedCutter
	if cfg.FixedLen > 0 {
		fixed = NewFixedCutter(cfg.FixedLen, func(at uint64) {
			col.cut(ProloguePhase, at)
		})
		observers = append(observers, fixed)
	} else {
		det = core.NewDetector(cfg.Prog, nil, cfg.Markers, func(marker int, at uint64) {
			col.cut(marker, at)
		})
		observers = append(observers, det)
	}
	if cfg.SkipBBV {
		observers = append(observers, cpu)
	} else {
		// Fuse the timing model's block accounting with BBV collection into
		// one dispatch, and strip EvBlock from the CPU's own registration so
		// the machine makes two observer calls per block instead of three.
		observers = append(observers,
			&perfBlockObs{cpu: cpu, acc: col.acc},
			minivm.Masked(cpu, minivm.EvBranch|minivm.EvMem))
	}

	m := minivm.NewMachine(cfg.Prog, observers)
	// The Scale amplifier executes the program Scale times as one long
	// trace of independent cold repetitions: at each boundary the
	// repetition's final interval is closed, then the machine AND every
	// observer reset — timing model cold, cutter grid rebased, detector
	// occurrence counts cleared — so each repetition reproduces the same
	// interval sequence, tiled end to end on the instruction axis.
	runs := max(cfg.Scale, 1)
	var total uint64
	var done uarch.Counters // totals of completed (reset) repetitions
	for rep := 0; rep < runs; rep++ {
		if rep > 0 {
			col.cut(ProloguePhase, total)
			done = done.Add(cpu.Counters())
			cpu.Reset()
			col.lastPerf = uarch.Counters{}
			m.Reset()
			if det != nil {
				if err := det.Restart(); err != nil {
					return nil, fmt.Errorf("trace: scale restart: %w", err)
				}
			} else {
				fixed.Rebase()
			}
		}
		if _, err := m.Run(cfg.Args...); err != nil {
			return nil, fmt.Errorf("trace: run failed: %w", err)
		}
		total += m.Instructions()
	}
	// Close the final interval and deliver any buffered streaming chunk.
	col.cut(ProloguePhase, total)
	col.flush()
	if col.err != nil {
		return nil, fmt.Errorf("trace: sink: %w", col.err)
	}

	res := &Result{
		Intervals:    col.intervals,
		Total:        done.Add(cpu.Counters()),
		Instructions: total,
		NumBlocks:    cfg.Prog.NumBlocks,
	}
	if det != nil {
		res.MarkerFires = det.TotalFired()
	}
	obsTraceRuns.Inc()
	obsIntervals.Add(uint64(col.count))
	obsMarkerFires.Add(res.MarkerFires)
	return res, nil
}
