package trace

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoImportShadowing asserts that no local declaration in this package
// shadows an imported package name. trace.Run once declared
// `var obs minivm.MultiObserver`, hiding the obs metrics package for the
// rest of the function — the kind of shadow go vet and staticcheck both
// accept silently, so this test is the guard that keeps it from coming
// back.
func TestNoImportShadowing(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		imported := map[string]bool{}
		for _, imp := range f.Imports {
			name := ""
			if imp.Name != nil {
				name = imp.Name.Name
			} else {
				p, _ := strconv.Unquote(imp.Path.Value)
				name = p[strings.LastIndex(p, "/")+1:]
			}
			if name != "_" && name != "." {
				imported[name] = true
			}
		}
		report := func(id *ast.Ident) {
			if id != nil && imported[id.Name] {
				t.Errorf("%s: local %q shadows the imported package of the same name",
					fset.Position(id.Pos()), id.Name)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec: // var / const
				for _, id := range n.Names {
					report(id)
				}
			case *ast.AssignStmt: // :=
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							report(id)
						}
					}
				}
			case *ast.FuncType: // parameters and results
				for _, fl := range []*ast.FieldList{n.Params, n.Results} {
					if fl == nil {
						continue
					}
					for _, field := range fl.List {
						for _, id := range field.Names {
							report(id)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Tok == token.DEFINE {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							report(id)
						}
					}
				}
			}
			return true
		})
	}
}
