package trace

import (
	"fmt"
	"strings"
	"testing"

	"phasemark/internal/uarch"
)

// streamRun runs cfg in streaming mode and returns the flattened
// interval stream (deep-copied) plus the result.
func streamRun(t *testing.T, cfg Config) ([]Interval, *Result) {
	t.Helper()
	var got []Interval
	cfg.Sink = func(chunk []Interval) error {
		if cfg.ChunkSize > 0 && len(chunk) > cfg.ChunkSize {
			t.Errorf("chunk of %d exceeds ChunkSize %d", len(chunk), cfg.ChunkSize)
		}
		got = append(got, copyIntervals(chunk)...)
		return nil
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

// equalStreams asserts two flattened streams are identical in every
// field, including each BBV entry — the engine's bit-identity contract.
func equalStreams(t *testing.T, got, want []Interval, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d intervals, serial stream has %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], &want[i]
		if g.Index != w.Index || g.Start != w.Start || g.End != w.End ||
			g.PhaseID != w.PhaseID || g.Perf != w.Perf {
			t.Fatalf("%s: interval %d differs: %+v vs %+v", label, i, *g, *w)
		}
		if len(g.BBV.Idx) != len(w.BBV.Idx) {
			t.Fatalf("%s: interval %d BBV size differs", label, i)
		}
		for j := range g.BBV.Idx {
			if g.BBV.Idx[j] != w.BBV.Idx[j] || g.BBV.Val[j] != w.BBV.Val[j] {
				t.Fatalf("%s: interval %d BBV entry %d differs", label, i, j)
			}
		}
	}
}

// The pipeline-parallel engine must produce a byte-identical interval
// stream and identical totals at every worker count and chunk size, in
// both cutting modes, at scale 1 (record/replay split) and scale 5
// (rep-parallel workers). Run under -race this also exercises the
// ring handoffs for data races.
func TestEngineParallelDeterminism(t *testing.T) {
	for _, mode := range []string{"marker", "fixed"} {
		for _, scale := range []int{1, 5} {
			t.Run(fmt.Sprintf("%s/scale%d", mode, scale), func(t *testing.T) {
				base, _ := compileAndMark(t, 50_000)
				if mode == "fixed" {
					base.Markers = nil
					base.FixedLen = 20_000
				}
				base.Scale = scale
				for _, chunk := range []int{1, 7, 256} {
					ref := *base
					ref.ChunkSize = chunk
					want, wantRes := streamRun(t, ref)
					if len(want) < 3 {
						t.Fatalf("chunk %d: reference stream has only %d intervals", chunk, len(want))
					}
					for _, workers := range []int{1, 4, 16} {
						par := *base
						par.ChunkSize = chunk
						par.Workers = workers
						got, res := streamRun(t, par)
						label := fmt.Sprintf("chunk=%d workers=%d", chunk, workers)
						equalStreams(t, got, want, label)
						if res.Instructions != wantRes.Instructions || res.Total != wantRes.Total ||
							res.MarkerFires != wantRes.MarkerFires || res.NumBlocks != wantRes.NumBlocks {
							t.Fatalf("%s: totals differ: %+v vs %+v", label, res, wantRes)
						}
						if res.Intervals != nil {
							t.Fatalf("%s: engine run materialized intervals", label)
						}
					}
				}
			})
		}
	}
}

// A sink error must abort an engine run and surface from Run in both
// regimes, without deadlocking producer or workers.
func TestEngineSinkError(t *testing.T) {
	for _, scale := range []int{1, 5} {
		t.Run(fmt.Sprintf("scale%d", scale), func(t *testing.T) {
			cfg, _ := compileAndMark(t, 50_000)
			cfg.Scale = scale
			cfg.ChunkSize = 2
			cfg.Workers = 4
			cfg.Sink = func(chunk []Interval) error { return fmt.Errorf("sink full") }
			if _, err := Run(*cfg); err == nil || !strings.Contains(err.Error(), "sink full") {
				t.Fatalf("err = %v, want wrapped sink error", err)
			}
		})
	}
}

// Negative Workers is a configuration error, not a clamp.
func TestEngineWorkersValidation(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	cfg.Workers = -1
	cfg.Sink = func([]Interval) error { return nil }
	if _, err := Run(*cfg); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Fatalf("err = %v, want negative-Workers error", err)
	}
}

// synthMetricChunk builds n deterministic intervals with nontrivial
// Perf counters and a few distinct phases.
func synthMetricChunk(n int) []Interval {
	out := make([]Interval, n)
	var at uint64
	for i := range out {
		ln := uint64(100 + i%7*13)
		out[i] = Interval{
			Index: i, Start: at, End: at + ln, PhaseID: i % 3,
			Perf: uarch.Counters{Instrs: ln, Cycles: ln + uint64(i%5)*10,
				L1Acc: ln / 2, L1Miss: uint64(i % 9)},
		}
		at += ln
	}
	return out
}

// CoVAccumulator.ObserveChunkPar must be bit-identical to ObserveChunk
// at any worker count, and allocation-free per chunk on the inline path
// once every phase has been seen.
func TestCoVObserveChunkParBitIdentical(t *testing.T) {
	chunk := synthMetricChunk(257)
	ref := NewCoVAccumulator(IntervalPhase, CPIMetric)
	ref.ObserveChunk(chunk)
	want := ref.Result()
	for _, workers := range []int{1, 4, 16} {
		a := NewCoVAccumulator(IntervalPhase, CPIMetric)
		a.ObserveChunkPar(chunk, workers)
		if got := a.Result(); got != want {
			t.Fatalf("workers=%d: %+v, want %+v", workers, got, want)
		}
	}

	a := NewCoVAccumulator(IntervalPhase, CPIMetric)
	a.ObserveChunkPar(chunk, 1) // all phases seen; scratch warm
	if allocs := testing.AllocsPerRun(100, func() {
		a.ObserveChunkPar(chunk, 1)
	}); allocs != 0 {
		t.Fatalf("steady-state ObserveChunkPar allocates %v per chunk, want 0", allocs)
	}
}

// Scale repetitions are independent cold executions: every repetition
// of a scaled run must reproduce the single run's interval sequence
// exactly (rebased onto its tile), in both cutting modes. This is the
// property that lets repetitions run on any worker in any order.
func TestScaleColdRepetitions(t *testing.T) {
	for _, mode := range []string{"marker", "fixed"} {
		t.Run(mode, func(t *testing.T) {
			cfg, _ := compileAndMark(t, 50_000)
			if mode == "fixed" {
				cfg.Markers = nil
				cfg.FixedLen = 20_000
			}
			single, err := Run(*cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Scale = 3
			amp, err := Run(*cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := len(single.Intervals)
			if len(amp.Intervals) != 3*n {
				t.Fatalf("scaled run has %d intervals, want 3×%d", len(amp.Intervals), n)
			}
			if amp.MarkerFires != 3*single.MarkerFires {
				t.Fatalf("scaled fires %d, want exactly 3×%d", amp.MarkerFires, single.MarkerFires)
			}
			for rep := 0; rep < 3; rep++ {
				instrBase := uint64(rep) * single.Instructions
				for i, w := range single.Intervals {
					g := amp.Intervals[rep*n+i]
					if g.Start != w.Start+instrBase || g.End != w.End+instrBase ||
						g.PhaseID != w.PhaseID || g.Perf != w.Perf {
						t.Fatalf("rep %d interval %d differs from single run: %+v vs %+v",
							rep, i, *g, *w)
					}
				}
			}
		})
	}
}
