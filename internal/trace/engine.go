package trace

import (
	"errors"
	"fmt"
	"sync"

	"phasemark/internal/bbv"
	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/uarch"
)

// This file is the pipeline-parallel streaming engine behind
// Config.Workers. Two regimes, both bit-identical to the serial
// streaming path in Run:
//
//   - Single execution (Scale <= 1): a record/replay split. The
//     interpreter runs on a producer goroutine with one flat observer
//     that encodes every event as a tagged word into a bounded ring of
//     buffers; the caller goroutine replays the words through the exact
//     observer sequence the serial path uses (cutter/detector, timing
//     model, BBV accumulator, collector, Sink). The ring gives
//     backpressure — the interpreter traces ahead while analysis
//     consumes — and replaying the total event order reproduces every
//     cut, counter, and snapshot by construction.
//
//   - Amplified execution (Scale >= 2): rep-parallel workers. Each of
//     min(Workers, Scale) workers owns a full machine + observer stack
//     and runs repetitions rep = w, w+W, w+2W, ... as independent cold
//     executions (Scale's contract), streaming rep-local chunks through
//     a bounded per-worker ring. The caller-side reducer consumes
//     chunks rep-major — all of rep 0, then rep 1, ... — rebases them
//     onto the global instruction axis, and feeds the Sink in order.
//     Because every repetition is cold, rep r's interval sequence does
//     not depend on which worker ran it or when, so the merged stream
//     equals the serial one byte for byte; only chunk boundaries may
//     differ (each repetition flushes its tail), and chunk partitioning
//     was never part of the streaming contract.
const (
	// eventBufWords is the capacity of one event buffer (~256KB). Big
	// enough that handoff synchronization is negligible against the
	// ~1M machine events it batches, small enough that the ring keeps
	// working memory bounded.
	eventBufWords = 1 << 15
	// engineRingBufs is the ring depth for both regimes: one buffer in
	// flight, one being filled, one spare absorbing jitter.
	engineRingBufs = 3
)

// Event words: tag in the low 3 bits, payload shifted above. Block and
// branch events carry the block ID, memory events the byte address
// (always < 2^61: addresses are word-indexed into bounded global
// memory), call events the callee proc ID above the 32-bit site block
// ID, returns the callee proc ID.
const (
	evBlock = iota
	evBranchT
	evBranchN
	evLoad
	evStore
	evCall
	evRet

	evTagBits = 3
	evTagMask = 1<<evTagBits - 1
)

// errEngineStopped poisons worker-side collectors when the reducer
// aborts; it never escapes to the caller (the originating error does).
var errEngineStopped = errors.New("trace: engine stopped")

// runEngine dispatches a streaming run with Workers >= 1.
func runEngine(cfg Config) (*Result, error) {
	if runs := max(cfg.Scale, 1); runs >= 2 {
		return runReps(cfg, runs)
	}
	return runSplit(cfg)
}

// eventRecorder is the producer-side observer: it packs every machine
// event into the current buffer and hands full buffers to the replay
// side, blocking on the free ring for backpressure. After a stop it
// keeps the machine runnable but discards events (the interpreter
// cannot be interrupted mid-Run; the doomed remainder executes without
// growing memory, mirroring the serial collector's poisoned mode).
type eventRecorder struct {
	mask    minivm.EventMask
	buf     []uint64
	filled  chan []uint64
	free    chan []uint64
	stop    <-chan struct{}
	stopped bool
}

// ObservedEvents implements minivm.EventMasker.
func (r *eventRecorder) ObservedEvents() minivm.EventMask { return r.mask }

func (r *eventRecorder) emit(w uint64) {
	if len(r.buf) == cap(r.buf) {
		r.handoff()
	}
	r.buf = append(r.buf, w)
}

// handoff ships the full buffer and acquires an empty one.
func (r *eventRecorder) handoff() {
	if r.stopped {
		r.buf = r.buf[:0]
		return
	}
	select {
	case r.filled <- r.buf:
	case <-r.stop:
		r.stopped = true
		r.buf = r.buf[:0]
		return
	}
	select {
	case nb := <-r.free:
		r.buf = nb[:0]
	case <-r.stop:
		// The shipped buffer is gone and no free one is coming back;
		// record into a throwaway so the machine can finish.
		r.stopped = true
		r.buf = make([]uint64, 0, eventBufWords)
	}
}

// flush ships a final partial buffer (producer end of run).
func (r *eventRecorder) flush() {
	if r.stopped || len(r.buf) == 0 {
		return
	}
	select {
	case r.filled <- r.buf:
		r.buf = nil
	case <-r.stop:
		r.stopped = true
	}
}

func (r *eventRecorder) OnBlock(b *minivm.Block) {
	r.emit(uint64(b.ID)<<evTagBits | evBlock)
}

func (r *eventRecorder) OnBranch(b *minivm.Block, taken bool) {
	t := uint64(evBranchN)
	if taken {
		t = evBranchT
	}
	r.emit(uint64(b.ID)<<evTagBits | t)
}

func (r *eventRecorder) OnMem(addr uint64, write bool) {
	t := uint64(evLoad)
	if write {
		t = evStore
	}
	r.emit(addr<<evTagBits | t)
}

func (r *eventRecorder) OnCall(site *minivm.Block, callee *minivm.Proc) {
	r.emit((uint64(callee.ID)<<32|uint64(uint32(site.ID)))<<evTagBits | evCall)
}

func (r *eventRecorder) OnReturn(callee *minivm.Proc) {
	r.emit(uint64(callee.ID)<<evTagBits | evRet)
}

// blockTable builds a dense block-ID -> *Block index (Program.BlockByID
// is a linear scan; replay needs O(1)).
func blockTable(p *minivm.Program) []*minivm.Block {
	t := make([]*minivm.Block, p.NumBlocks)
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			if b.ID >= 0 && b.ID < len(t) {
				t[b.ID] = b
			}
		}
	}
	return t
}

// analysisStack is the consumer-side observer state shared by both
// engine regimes: the same components, built the same way, as the
// serial path wires into the machine.
type analysisStack struct {
	cpu   *uarch.CPU
	col   *collector
	det   *core.Detector
	fixed *FixedCutter
}

func newAnalysisStack(cfg Config) *analysisStack {
	s := &analysisStack{cpu: uarch.NewCPU(cfg.CPU, cfg.Prog)}
	s.col = &collector{
		cpu:      s.cpu,
		acc:      bbv.NewAccumulator(cfg.Prog.NumBlocks),
		skipBBV:  cfg.SkipBBV,
		sink:     cfg.Sink,
		curPhase: ProloguePhase,
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = intervalChunk
	}
	s.col.arena = make([]Interval, 0, chunk)
	if cfg.FixedLen > 0 {
		s.fixed = NewFixedCutter(cfg.FixedLen, func(at uint64) {
			s.col.cut(ProloguePhase, at)
		})
	} else {
		s.det = core.NewDetector(cfg.Prog, nil, cfg.Markers, func(marker int, at uint64) {
			s.col.cut(marker, at)
		})
	}
	return s
}

// runSplit is the single-execution record/replay regime: one producer
// goroutine interprets, the caller replays events through the analysis
// stack in the serial observer order.
func runSplit(cfg Config) (*Result, error) {
	mask := minivm.EvBlock | minivm.EvBranch | minivm.EvMem
	if cfg.FixedLen == 0 {
		mask |= minivm.EvCall | minivm.EvReturn
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	defer stopOnce.Do(func() { close(stop) })

	rec := &eventRecorder{
		mask:   mask,
		buf:    make([]uint64, 0, eventBufWords),
		filled: make(chan []uint64, engineRingBufs),
		free:   make(chan []uint64, engineRingBufs),
		stop:   stop,
	}
	for i := 1; i < engineRingBufs; i++ {
		rec.free <- make([]uint64, 0, eventBufWords)
	}

	m := minivm.NewMachine(cfg.Prog, rec)
	var prodErr error
	var prodInstrs uint64
	go func() {
		_, err := m.Run(cfg.Args...)
		if err == nil {
			rec.flush()
		}
		prodErr = err
		prodInstrs = m.Instructions()
		close(rec.filled) // happens-after the writes above
	}()

	// The analysis stack is constructed on the consumer side exactly as
	// the serial path constructs it; in marker mode the detector's
	// walker fires entry-edge opens here, before any event replays,
	// just as NewDetector does before the serial machine starts.
	s := newAnalysisStack(cfg)
	blocks := blockTable(cfg.Prog)
	procs := cfg.Prog.Procs
	skip := cfg.SkipBBV
	var total uint64
	for buf := range rec.filled {
		for _, w := range buf {
			payload := w >> evTagBits
			switch w & evTagMask {
			case evBlock:
				b := blocks[payload]
				// Serial dispatch order per block: cutter/detector first
				// (a cut excludes the block that begins the next
				// interval), then the timing model and BBV touch.
				if s.det != nil {
					s.det.OnBlock(b)
				} else {
					s.fixed.OnBlock(b)
				}
				s.cpu.OnBlock(b)
				if !skip {
					s.col.acc.Touch(b.ID, b.Weight())
				}
				total += uint64(b.Weight())
			case evBranchT:
				s.cpu.OnBranch(blocks[payload], true)
			case evBranchN:
				s.cpu.OnBranch(blocks[payload], false)
			case evLoad:
				s.cpu.OnMem(payload, false)
			case evStore:
				s.cpu.OnMem(payload, true)
			case evCall:
				s.det.OnCall(blocks[uint32(payload)], procs[payload>>32])
			case evRet:
				s.det.OnReturn(procs[payload])
			}
		}
		rec.free <- buf[:0]
		if s.col.err != nil {
			// Sink error: stop the producer's deliveries and drain what
			// is already in flight without replaying it.
			stopOnce.Do(func() { close(stop) })
			for range rec.filled {
			}
			break
		}
	}
	if prodErr != nil {
		// Same precedence as the serial path: a failed execution trumps
		// a sink error (the poisoned collector just kept it from
		// growing memory in the meantime).
		return nil, fmt.Errorf("trace: run failed: %w", prodErr)
	}
	if s.col.err != nil {
		return nil, fmt.Errorf("trace: sink: %w", s.col.err)
	}
	if total != prodInstrs {
		return nil, fmt.Errorf("trace: engine replay drift: replayed %d instructions, machine ran %d", total, prodInstrs)
	}

	s.col.cut(ProloguePhase, total)
	s.col.flush()
	if s.col.err != nil {
		return nil, fmt.Errorf("trace: sink: %w", s.col.err)
	}
	res := &Result{
		Total:        s.cpu.Counters(),
		Instructions: total,
		NumBlocks:    cfg.Prog.NumBlocks,
	}
	if s.det != nil {
		res.MarkerFires = s.det.TotalFired()
	}
	obsTraceRuns.Inc()
	obsIntervals.Add(uint64(s.col.count))
	obsMarkerFires.Add(res.MarkerFires)
	return res, nil
}

// repChunk is the rep-parallel transfer unit: a deep copy of one
// streamed chunk in rep-local coordinates (the reducer rebases onto the
// global axis), with its BBV entries carved from the chunk-owned
// idx/val arenas. A chunk with last set closes a repetition and carries
// its totals; err reports a worker failure.
type repChunk struct {
	ivs    []Interval
	idx    []int32
	val    []float64
	last   bool
	instrs uint64         // repetition length (last only)
	perf   uarch.Counters // repetition timing totals (last only)
	fires  uint64         // repetition marker fires (last only)
	err    error
}

// fill deep-copies chunk into tc, translating worker-cumulative
// positions into rep-local ones. Two passes so the idx/val arenas are
// sized before any vector is carved from them (growing mid-copy would
// invalidate earlier carves); at steady state the arenas are warm and
// the copy allocates nothing.
func (tc *repChunk) fill(chunk []Interval, instrBase uint64, indexBase int) {
	entries := 0
	for i := range chunk {
		entries += len(chunk[i].BBV.Idx)
	}
	if cap(tc.idx) < entries {
		tc.idx = make([]int32, 0, entries)
		tc.val = make([]float64, 0, entries)
	}
	tc.idx, tc.val = tc.idx[:0], tc.val[:0]
	tc.ivs = tc.ivs[:0]
	for i := range chunk {
		iv := chunk[i]
		iv.Index -= indexBase
		iv.Start -= instrBase
		iv.End -= instrBase
		if n := len(iv.BBV.Idx); n > 0 {
			lo := len(tc.idx)
			tc.idx = append(tc.idx, iv.BBV.Idx...)
			tc.val = append(tc.val, iv.BBV.Val...)
			iv.BBV = bbv.Vector{Idx: tc.idx[lo : lo+n : lo+n], Val: tc.val[lo : lo+n : lo+n]}
		}
		tc.ivs = append(tc.ivs, iv)
	}
}

// repWorker runs repetitions w, w+W, w+2W, ... on its own machine and
// analysis state, shipping rep-local chunks through its ring. The
// machine, CPU, and detector are built once and Reset/Restart-reused
// between repetitions — each repetition is an independent cold run,
// exactly as the serial Scale loop makes them.
func repWorker(cfg Config, runs, w, W int, out chan<- *repChunk, free <-chan *repChunk, stop <-chan struct{}) {
	defer close(out)

	acquire := func() (*repChunk, bool) {
		select {
		case tc := <-free:
			return tc, true
		case <-stop:
			return nil, false
		}
	}
	send := func(tc *repChunk) bool {
		select {
		case out <- tc:
			return true
		case <-stop:
			return false
		}
	}
	// fail delivers a terminal error on a dedicated chunk (never part of
	// the ring, so no acquire can deadlock the report).
	fail := func(err error) {
		send(&repChunk{err: err})
	}

	cpu := uarch.NewCPU(cfg.CPU, cfg.Prog)
	col := &collector{
		cpu:      cpu,
		acc:      bbv.NewAccumulator(cfg.Prog.NumBlocks),
		skipBBV:  cfg.SkipBBV,
		curPhase: ProloguePhase,
	}
	chunkCap := cfg.ChunkSize
	if chunkCap <= 0 {
		chunkCap = intervalChunk
	}
	col.arena = make([]Interval, 0, chunkCap)

	var repInstrBase uint64 // worker-cumulative position at rep start
	var repIndexBase int
	col.sink = func(chunk []Interval) error {
		tc, ok := acquire()
		if !ok {
			return errEngineStopped
		}
		tc.last, tc.err = false, nil
		tc.fill(chunk, repInstrBase, repIndexBase)
		if !send(tc) {
			return errEngineStopped
		}
		return nil
	}

	var observers minivm.MultiObserver
	var det *core.Detector
	var fixed *FixedCutter
	if cfg.FixedLen > 0 {
		fixed = NewFixedCutter(cfg.FixedLen, func(at uint64) {
			col.cut(ProloguePhase, at)
		})
		observers = append(observers, fixed)
	} else {
		det = core.NewDetector(cfg.Prog, nil, cfg.Markers, func(marker int, at uint64) {
			col.cut(marker, at)
		})
		observers = append(observers, det)
	}
	if cfg.SkipBBV {
		observers = append(observers, cpu)
	} else {
		observers = append(observers,
			&perfBlockObs{cpu: cpu, acc: col.acc},
			minivm.Masked(cpu, minivm.EvBranch|minivm.EvMem))
	}
	m := minivm.NewMachine(cfg.Prog, observers)

	var workerTotal uint64
	var firedBase uint64
	for rep := w; rep < runs; rep += W {
		if rep != w {
			cpu.Reset()
			col.lastPerf = uarch.Counters{}
			m.Reset()
			if det != nil {
				if err := det.Restart(); err != nil {
					fail(fmt.Errorf("trace: scale restart: %w", err))
					return
				}
			} else {
				fixed.Rebase()
			}
		}
		repInstrBase = workerTotal
		repIndexBase = col.count
		if _, err := m.Run(cfg.Args...); err != nil {
			fail(fmt.Errorf("trace: run failed: %w", err))
			return
		}
		workerTotal += m.Instructions()
		col.cut(ProloguePhase, workerTotal)
		col.flush()
		if col.err != nil {
			if col.err != errEngineStopped {
				fail(col.err)
			}
			return
		}
		tc, ok := acquire()
		if !ok {
			return
		}
		tc.ivs = tc.ivs[:0]
		tc.last, tc.err = true, nil
		tc.instrs = m.Instructions()
		tc.perf = cpu.Counters()
		if det != nil {
			tc.fires = det.TotalFired() - firedBase
			firedBase = det.TotalFired()
		}
		if !send(tc) {
			return
		}
	}
}

// runReps is the amplified-execution regime: repetitions fan out over
// min(Workers, Scale) workers; the reducer stitches their rep-local
// streams back into the one global stream the serial path produces.
func runReps(cfg Config, runs int) (*Result, error) {
	W := min(cfg.Workers, runs)
	chunkCap := cfg.ChunkSize
	if chunkCap <= 0 {
		chunkCap = intervalChunk
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	defer stopOnce.Do(func() { close(stop) })

	outs := make([]chan *repChunk, W)
	frees := make([]chan *repChunk, W)
	for w := 0; w < W; w++ {
		outs[w] = make(chan *repChunk, engineRingBufs)
		frees[w] = make(chan *repChunk, engineRingBufs)
		for i := 0; i < engineRingBufs; i++ {
			frees[w] <- &repChunk{ivs: make([]Interval, 0, chunkCap)}
		}
		go repWorker(cfg, runs, w, W, outs[w], frees[w], stop)
	}

	var firstErr error
	abort := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		stopOnce.Do(func() { close(stop) })
	}

	var baseInstr uint64
	var baseIndex int
	var total uarch.Counters
	var fires uint64
reduce:
	for rep := 0; rep < runs; rep++ {
		w := rep % W
		repCount := 0
		for {
			tc, ok := <-outs[w]
			if !ok {
				abort(fmt.Errorf("trace: rep worker %d exited before repetition %d", w, rep))
				break reduce
			}
			if tc.err != nil {
				abort(tc.err)
				break reduce
			}
			if len(tc.ivs) > 0 {
				// Rebase rep-local coordinates onto the global axis: the
				// index and instruction bases advance by whole repetitions,
				// at the rep's closing chunk below.
				for i := range tc.ivs {
					tc.ivs[i].Index += baseIndex
					tc.ivs[i].Start += baseInstr
					tc.ivs[i].End += baseInstr
				}
				repCount += len(tc.ivs)
				if err := cfg.Sink(tc.ivs); err != nil {
					abort(fmt.Errorf("trace: sink: %w", err))
					break reduce
				}
			}
			last := tc.last
			if last {
				baseInstr += tc.instrs
				baseIndex += repCount
				total = total.Add(tc.perf)
				fires += tc.fires
			}
			select { // ring slot back to the worker (never full; errors are off-ring)
			case frees[w] <- tc:
			default:
			}
			if last {
				break
			}
		}
	}
	stopOnce.Do(func() { close(stop) })
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{
		Total:        total,
		Instructions: baseInstr,
		NumBlocks:    cfg.Prog.NumBlocks,
		MarkerFires:  fires,
	}
	obsTraceRuns.Inc()
	obsIntervals.Add(uint64(baseIndex))
	obsMarkerFires.Add(fires)
	return res, nil
}
