package trace

import (
	"sort"

	"phasemark/internal/par"
	"phasemark/internal/stats"
)

// Metric extracts a per-interval behavior metric (CPI, miss rate, ...).
type Metric func(*Interval) float64

// CPIMetric is the cycles-per-instruction metric.
func CPIMetric(iv *Interval) float64 { return iv.CPI() }

// DL1MissMetric is the L1 data-cache miss-rate metric.
func DL1MissMetric(iv *Interval) float64 { return iv.Perf.L1MissRate() }

// PhaseCoVResult summarizes a phase classification's homogeneity.
type PhaseCoVResult struct {
	// CoV is the overall coefficient of variation: per-phase CoVs
	// (intervals weighted by instruction count) averaged across phases
	// weighted by phase instruction mass.
	CoV float64
	// Phases is the number of distinct phase IDs observed.
	Phases int
	// Intervals is the number of intervals classified.
	Intervals int
	// AvgIntervalLen is the weighted... plain mean interval length.
	AvgIntervalLen float64
}

// CoVAccumulator computes the §3.1 homogeneity metric in one pass with
// O(phases) working memory: feed it intervals (or whole streamed chunks)
// as they are cut and ask for the Result at the end. It never retains an
// interval, so it composes with trace.Config.Sink for bounded-memory
// runs; PhaseCoV is the materialized-slice convenience wrapper.
type CoVAccumulator struct {
	phaseOf  func(*Interval) int
	metric   Metric
	groups   map[int]*stats.Weighted
	totalLen float64
	n        int
	// parVals is ObserveChunkPar's per-chunk metric scratch, reused
	// across chunks.
	parVals []float64
}

// NewCoVAccumulator builds a single-pass accumulator. phaseOf maps an
// interval to its phase ID (IntervalPhase for marker-assigned IDs, or a
// clustering's assignment for BBV baselines); metric extracts the
// per-interval behavior measure.
func NewCoVAccumulator(phaseOf func(*Interval) int, metric Metric) *CoVAccumulator {
	return &CoVAccumulator{phaseOf: phaseOf, metric: metric, groups: map[int]*stats.Weighted{}}
}

// Observe folds one interval into the per-phase statistics. Nothing in iv
// is retained.
func (a *CoVAccumulator) Observe(iv *Interval) {
	a.observeVal(iv, a.metric(iv))
}

// observeVal folds one interval whose metric value is already computed.
func (a *CoVAccumulator) observeVal(iv *Interval, v float64) {
	id := a.phaseOf(iv)
	g := a.groups[id]
	if g == nil {
		g = &stats.Weighted{}
		a.groups[id] = g
	}
	w := float64(iv.Len())
	g.Add(v, w)
	a.totalLen += w
	a.n++
}

// ObserveChunk folds a streamed chunk (a trace.Config.Sink payload).
func (a *CoVAccumulator) ObserveChunk(chunk []Interval) {
	for i := range chunk {
		a.Observe(&chunk[i])
	}
}

// ObserveChunkPar is ObserveChunk with the per-interval metric
// extraction fanned over up to workers goroutines; the order-sensitive
// running-statistics updates then apply sequentially in chunk order, so
// the result is bit-identical to ObserveChunk at any worker count.
// workers <= 1 runs the serial path unchanged.
func (a *CoVAccumulator) ObserveChunkPar(chunk []Interval, workers int) {
	if workers <= 1 || len(chunk) < 2 {
		a.ObserveChunk(chunk)
		return
	}
	if cap(a.parVals) < len(chunk) {
		a.parVals = make([]float64, len(chunk))
	}
	vals := a.parVals[:len(chunk)]
	par.ForEach(len(chunk), workers, nil, func(_, i int) {
		vals[i] = a.metric(&chunk[i])
	})
	for i := range chunk {
		a.observeVal(&chunk[i], vals[i])
	}
}

// Merge folds another accumulator into a, enabling parallel single-pass
// accumulation over sharded traces. Both must use equivalent phaseOf and
// metric functions.
func (a *CoVAccumulator) Merge(o *CoVAccumulator) {
	for id, g := range o.groups {
		mine := a.groups[id]
		if mine == nil {
			mine = &stats.Weighted{}
			a.groups[id] = mine
		}
		mine.Merge(*g)
	}
	a.totalLen += o.totalLen
	a.n += o.n
}

// Result summarizes the observations so far. Phases fold in ascending
// phase-ID order, so the floating-point summation order — and hence the
// exact CoV — is a deterministic function of the observations, not of
// map iteration order.
func (a *CoVAccumulator) Result() PhaseCoVResult {
	ids := make([]int, 0, len(a.groups))
	for id := range a.groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var covSum, wSum float64
	for _, id := range ids {
		g := a.groups[id]
		covSum += g.CoV() * g.WeightSum()
		wSum += g.WeightSum()
	}
	res := PhaseCoVResult{Phases: len(a.groups), Intervals: a.n}
	if wSum > 0 {
		res.CoV = covSum / wSum
	}
	if a.n > 0 {
		res.AvgIntervalLen = a.totalLen / float64(a.n)
	}
	return res
}

// PhaseCoV measures classification homogeneity per §3.1: for each phase,
// compute the instruction-weighted mean and standard deviation of the
// metric over the phase's intervals and divide to get the phase CoV; then
// average the per-phase CoVs across phases (weighted by phase size) for
// the overall CoV. Lower is better; N intervals in N phases trivially
// yield zero, so Phases and Intervals are reported alongside.
//
// phaseOf maps an interval to its phase ID (pass IntervalPhase to use the
// marker-assigned IDs, or a clustering's assignment for BBV baselines).
func PhaseCoV(ivs []*Interval, phaseOf func(*Interval) int, metric Metric) PhaseCoVResult {
	acc := NewCoVAccumulator(phaseOf, metric)
	for _, iv := range ivs {
		acc.Observe(iv)
	}
	return acc.Result()
}

// IntervalPhase uses the phase ID assigned at segmentation time (the
// marker that began the interval).
func IntervalPhase(iv *Interval) int { return iv.PhaseID }

// WholeProgramCoV treats the entire execution as a single phase — the
// paper's "whole program" variability baseline in Figure 9.
func WholeProgramCoV(ivs []*Interval, metric Metric) float64 {
	return PhaseCoV(ivs, func(*Interval) int { return 0 }, metric).CoV
}

// UniquePhases counts distinct phase IDs among the intervals.
func UniquePhases(ivs []*Interval, phaseOf func(*Interval) int) int {
	seen := map[int]bool{}
	for _, iv := range ivs {
		seen[phaseOf(iv)] = true
	}
	return len(seen)
}
