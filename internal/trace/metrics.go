package trace

import "phasemark/internal/stats"

// Metric extracts a per-interval behavior metric (CPI, miss rate, ...).
type Metric func(*Interval) float64

// CPIMetric is the cycles-per-instruction metric.
func CPIMetric(iv *Interval) float64 { return iv.CPI() }

// DL1MissMetric is the L1 data-cache miss-rate metric.
func DL1MissMetric(iv *Interval) float64 { return iv.Perf.L1MissRate() }

// PhaseCoVResult summarizes a phase classification's homogeneity.
type PhaseCoVResult struct {
	// CoV is the overall coefficient of variation: per-phase CoVs
	// (intervals weighted by instruction count) averaged across phases
	// weighted by phase instruction mass.
	CoV float64
	// Phases is the number of distinct phase IDs observed.
	Phases int
	// Intervals is the number of intervals classified.
	Intervals int
	// AvgIntervalLen is the weighted... plain mean interval length.
	AvgIntervalLen float64
}

// PhaseCoV measures classification homogeneity per §3.1: for each phase,
// compute the instruction-weighted mean and standard deviation of the
// metric over the phase's intervals and divide to get the phase CoV; then
// average the per-phase CoVs across phases (weighted by phase size) for
// the overall CoV. Lower is better; N intervals in N phases trivially
// yield zero, so Phases and Intervals are reported alongside.
//
// phaseOf maps an interval to its phase ID (pass IntervalPhase to use the
// marker-assigned IDs, or a clustering's assignment for BBV baselines).
func PhaseCoV(ivs []*Interval, phaseOf func(*Interval) int, metric Metric) PhaseCoVResult {
	groups := map[int]*stats.Weighted{}
	var totalLen float64
	for _, iv := range ivs {
		id := phaseOf(iv)
		w := float64(iv.Len())
		g := groups[id]
		if g == nil {
			g = &stats.Weighted{}
			groups[id] = g
		}
		g.Add(metric(iv), w)
		totalLen += w
	}
	var covSum, wSum float64
	for _, g := range groups {
		covSum += g.CoV() * g.WeightSum()
		wSum += g.WeightSum()
	}
	res := PhaseCoVResult{Phases: len(groups), Intervals: len(ivs)}
	if wSum > 0 {
		res.CoV = covSum / wSum
	}
	if len(ivs) > 0 {
		res.AvgIntervalLen = totalLen / float64(len(ivs))
	}
	return res
}

// IntervalPhase uses the phase ID assigned at segmentation time (the
// marker that began the interval).
func IntervalPhase(iv *Interval) int { return iv.PhaseID }

// WholeProgramCoV treats the entire execution as a single phase — the
// paper's "whole program" variability baseline in Figure 9.
func WholeProgramCoV(ivs []*Interval, metric Metric) float64 {
	return PhaseCoV(ivs, func(*Interval) int { return 0 }, metric).CoV
}

// UniquePhases counts distinct phase IDs among the intervals.
func UniquePhases(ivs []*Interval, phaseOf func(*Interval) int) int {
	seen := map[int]bool{}
	for _, iv := range ivs {
		seen[phaseOf(iv)] = true
	}
	return len(seen)
}
