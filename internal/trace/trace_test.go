package trace

import (
	"testing"

	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/uarch"
)

const twoPhaseSrc = `
array big[32768];
array small[1024];
proc hot(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + big[(i * 17) & 32767]; }
	return s;
}
proc cold(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + small[i & 1023]; }
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) { s = s + hot(n) + cold(n); }
	out(s);
	return s;
}
`

func compileAndMark(t *testing.T, ilower uint64) (*Config, *core.MarkerSet) {
	t.Helper()
	prog, err := compile.CompileSource(twoPhaseSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ProfileRun(prog, 10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	set := core.SelectMarkers(g, core.SelectOptions{ILower: ilower})
	cfg := &Config{Prog: prog, Args: []int64{10, 20000}, CPU: uarch.DefaultConfig(), Markers: set}
	return cfg, set
}

func TestFixedIntervalsCoverExecution(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	cfg.Markers = nil
	cfg.FixedLen = 100_000
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	prevEnd := uint64(0)
	for _, iv := range res.Intervals {
		if iv.Start != prevEnd {
			t.Fatalf("interval %d starts at %d, previous ended at %d", iv.Index, iv.Start, prevEnd)
		}
		prevEnd = iv.End
		total += iv.Len()
	}
	if total != res.Instructions {
		t.Fatalf("intervals cover %d of %d instructions", total, res.Instructions)
	}
	// Fixed intervals are approximately FixedLen: the cutter keeps the
	// grid (next += step), so one interval may undershoot after the
	// previous one overshot by a block.
	for _, iv := range res.Intervals[:len(res.Intervals)-1] {
		if iv.Len() < 99_000 || iv.Len() > 101_000 {
			t.Fatalf("interval %d length %d not ~100k", iv.Index, iv.Len())
		}
	}
}

func TestPerfCountersSumToTotal(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cyc, ins, acc, miss uint64
	for _, iv := range res.Intervals {
		cyc += iv.Perf.Cycles
		ins += iv.Perf.Instrs
		acc += iv.Perf.L1Acc
		miss += iv.Perf.L1Miss
	}
	if cyc != res.Total.Cycles || ins != res.Total.Instrs ||
		acc != res.Total.L1Acc || miss != res.Total.L1Miss {
		t.Fatalf("per-interval counters don't sum to totals")
	}
}

func TestBBVMassMatchesIntervalLength(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Intervals {
		if got, want := iv.BBV.L1(), float64(iv.Len()); got != want {
			t.Fatalf("interval %d: BBV mass %v != length %v", iv.Index, got, want)
		}
	}
}

func TestMarkerPhasesSeparateBehavior(t *testing.T) {
	cfg, set := compileAndMark(t, 50_000)
	if len(set.Markers) == 0 {
		t.Fatal("no markers")
	}
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	cov := PhaseCoV(res.Intervals, IntervalPhase, CPIMetric)
	whole := WholeProgramCoV(res.Intervals, CPIMetric)
	if cov.CoV >= whole {
		t.Fatalf("phase classification (%v) must beat whole-program (%v)", cov.CoV, whole)
	}
	if cov.Phases < 2 {
		t.Fatalf("phases = %d", cov.Phases)
	}
	if got := UniquePhases(res.Intervals, IntervalPhase); got != cov.Phases {
		t.Fatalf("UniquePhases=%d vs %d", got, cov.Phases)
	}
}

func TestPhaseCoVWeighting(t *testing.T) {
	// Two intervals in one phase with different CPI: longer interval
	// dominates the weighted mean.
	ivs := []*Interval{
		{Start: 0, End: 1000, PhaseID: 1, Perf: uarch.Counters{Instrs: 1000, Cycles: 1000}},
		{Start: 1000, End: 10_000, PhaseID: 1, Perf: uarch.Counters{Instrs: 9000, Cycles: 27_000}},
	}
	r := PhaseCoV(ivs, IntervalPhase, CPIMetric)
	// Weighted mean = (1*0.1 + 3*0.9) = 2.8; std = sqrt(0.09*4) = 0.6.
	if r.Phases != 1 || r.Intervals != 2 {
		t.Fatalf("%+v", r)
	}
	if r.CoV < 0.2 || r.CoV > 0.22 {
		t.Fatalf("CoV = %v, want ~0.214", r.CoV)
	}
	// Same CPI everywhere: zero CoV.
	same := []*Interval{
		{End: 100, PhaseID: 0, Perf: uarch.Counters{Instrs: 100, Cycles: 200}},
		{Start: 100, End: 300, PhaseID: 0, Perf: uarch.Counters{Instrs: 200, Cycles: 400}},
	}
	if r := PhaseCoV(same, IntervalPhase, CPIMetric); r.CoV != 0 {
		t.Fatalf("constant CPI CoV = %v", r.CoV)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil program accepted")
	}
	cfg, _ := compileAndMark(t, 50_000)
	cfg.Markers = nil
	if _, err := Run(*cfg); err == nil {
		t.Error("missing boundary source accepted")
	}
}

func TestSkipBBV(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	cfg.SkipBBV = true
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Intervals {
		if len(iv.BBV.Idx) != 0 {
			t.Fatal("BBV collected despite SkipBBV")
		}
	}
}
