package trace

import (
	"fmt"
	"strings"
	"testing"

	"phasemark/internal/bbv"
	"phasemark/internal/compile"
	"phasemark/internal/core"
	"phasemark/internal/uarch"
)

const twoPhaseSrc = `
array big[32768];
array small[1024];
proc hot(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + big[(i * 17) & 32767]; }
	return s;
}
proc cold(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + small[i & 1023]; }
	return s;
}
proc main(reps, n) {
	var s = 0;
	for (var r = 0; r < reps; r = r + 1) { s = s + hot(n) + cold(n); }
	out(s);
	return s;
}
`

func compileAndMark(t *testing.T, ilower uint64) (*Config, *core.MarkerSet) {
	t.Helper()
	prog, err := compile.CompileSource(twoPhaseSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ProfileRun(prog, 10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	set := core.SelectMarkers(g, core.SelectOptions{ILower: ilower})
	cfg := &Config{Prog: prog, Args: []int64{10, 20000}, CPU: uarch.DefaultConfig(), Markers: set}
	return cfg, set
}

func TestFixedIntervalsCoverExecution(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	cfg.Markers = nil
	cfg.FixedLen = 100_000
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	prevEnd := uint64(0)
	for _, iv := range res.Intervals {
		if iv.Start != prevEnd {
			t.Fatalf("interval %d starts at %d, previous ended at %d", iv.Index, iv.Start, prevEnd)
		}
		prevEnd = iv.End
		total += iv.Len()
	}
	if total != res.Instructions {
		t.Fatalf("intervals cover %d of %d instructions", total, res.Instructions)
	}
	// Fixed intervals are approximately FixedLen: the cutter keeps the
	// grid (next += step), so one interval may undershoot after the
	// previous one overshot by a block.
	for _, iv := range res.Intervals[:len(res.Intervals)-1] {
		if iv.Len() < 99_000 || iv.Len() > 101_000 {
			t.Fatalf("interval %d length %d not ~100k", iv.Index, iv.Len())
		}
	}
}

func TestPerfCountersSumToTotal(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cyc, ins, acc, miss uint64
	for _, iv := range res.Intervals {
		cyc += iv.Perf.Cycles
		ins += iv.Perf.Instrs
		acc += iv.Perf.L1Acc
		miss += iv.Perf.L1Miss
	}
	if cyc != res.Total.Cycles || ins != res.Total.Instrs ||
		acc != res.Total.L1Acc || miss != res.Total.L1Miss {
		t.Fatalf("per-interval counters don't sum to totals")
	}
}

func TestBBVMassMatchesIntervalLength(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Intervals {
		if got, want := iv.BBV.L1(), float64(iv.Len()); got != want {
			t.Fatalf("interval %d: BBV mass %v != length %v", iv.Index, got, want)
		}
	}
}

func TestMarkerPhasesSeparateBehavior(t *testing.T) {
	cfg, set := compileAndMark(t, 50_000)
	if len(set.Markers) == 0 {
		t.Fatal("no markers")
	}
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	cov := PhaseCoV(res.Intervals, IntervalPhase, CPIMetric)
	whole := WholeProgramCoV(res.Intervals, CPIMetric)
	if cov.CoV >= whole {
		t.Fatalf("phase classification (%v) must beat whole-program (%v)", cov.CoV, whole)
	}
	if cov.Phases < 2 {
		t.Fatalf("phases = %d", cov.Phases)
	}
	if got := UniquePhases(res.Intervals, IntervalPhase); got != cov.Phases {
		t.Fatalf("UniquePhases=%d vs %d", got, cov.Phases)
	}
}

func TestPhaseCoVWeighting(t *testing.T) {
	// Two intervals in one phase with different CPI: longer interval
	// dominates the weighted mean.
	ivs := []*Interval{
		{Start: 0, End: 1000, PhaseID: 1, Perf: uarch.Counters{Instrs: 1000, Cycles: 1000}},
		{Start: 1000, End: 10_000, PhaseID: 1, Perf: uarch.Counters{Instrs: 9000, Cycles: 27_000}},
	}
	r := PhaseCoV(ivs, IntervalPhase, CPIMetric)
	// Weighted mean = (1*0.1 + 3*0.9) = 2.8; std = sqrt(0.09*4) = 0.6.
	if r.Phases != 1 || r.Intervals != 2 {
		t.Fatalf("%+v", r)
	}
	if r.CoV < 0.2 || r.CoV > 0.22 {
		t.Fatalf("CoV = %v, want ~0.214", r.CoV)
	}
	// Same CPI everywhere: zero CoV.
	same := []*Interval{
		{End: 100, PhaseID: 0, Perf: uarch.Counters{Instrs: 100, Cycles: 200}},
		{Start: 100, End: 300, PhaseID: 0, Perf: uarch.Counters{Instrs: 200, Cycles: 400}},
	}
	if r := PhaseCoV(same, IntervalPhase, CPIMetric); r.CoV != 0 {
		t.Fatalf("constant CPI CoV = %v", r.CoV)
	}
}

// A program ending exactly on a marker firing: the final close arrives
// at the same instant as the last firing, and the same-instant dedup
// must swallow it rather than record a zero-length interval. Exercised
// at the collector level because structurally a firing and program end
// cannot coincide through the machine (every edge open is followed by at
// least one block), yet the collector must stay safe if they ever do.
func TestCutDedupAtExactEnd(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	cpu := uarch.NewCPU(uarch.DefaultConfig(), cfg.Prog)
	col := &collector{cpu: cpu, skipBBV: true, curPhase: ProloguePhase}

	col.cut(2, 100)             // marker 2 fires at instruction 100
	col.cut(ProloguePhase, 100) // program ends at the same instant
	if len(col.intervals) != 1 {
		t.Fatalf("%d intervals, want 1 (no zero-length interval at coincident end)", len(col.intervals))
	}
	iv := col.intervals[0]
	if iv.Start != 0 || iv.End != 100 || iv.PhaseID != ProloguePhase {
		t.Fatalf("interval %+v, want [0,100) prologue", *iv)
	}
}

// The single-pass accumulator (streamed in chunks, sharded and merged)
// must agree with the materialized PhaseCoV.
func TestCoVAccumulatorMatchesPhaseCoV(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := PhaseCoV(res.Intervals, IntervalPhase, CPIMetric)

	// Chunked observation.
	acc := NewCoVAccumulator(IntervalPhase, CPIMetric)
	chunk := make([]Interval, 0, 3)
	for _, iv := range res.Intervals {
		chunk = append(chunk, *iv)
		if len(chunk) == cap(chunk) {
			acc.ObserveChunk(chunk)
			chunk = chunk[:0]
		}
	}
	acc.ObserveChunk(chunk)
	if got := acc.Result(); got != want {
		t.Fatalf("chunked accumulation %+v != materialized %+v", got, want)
	}

	// Sharded + merged observation.
	a, b := NewCoVAccumulator(IntervalPhase, CPIMetric), NewCoVAccumulator(IntervalPhase, CPIMetric)
	for i, iv := range res.Intervals {
		if i%2 == 0 {
			a.Observe(iv)
		} else {
			b.Observe(iv)
		}
	}
	a.Merge(b)
	got := a.Result()
	if got.Phases != want.Phases || got.Intervals != want.Intervals {
		t.Fatalf("merged accumulation %+v != %+v", got, want)
	}
	if d := got.CoV - want.CoV; d > 1e-9 || d < -1e-9 {
		t.Fatalf("merged CoV %v != %v", got.CoV, want.CoV)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil program accepted")
	}
	cfg, _ := compileAndMark(t, 50_000)
	cfg.Markers = nil
	if _, err := Run(*cfg); err == nil {
		t.Error("missing boundary source accepted")
	}
}

// copyIntervals deep-copies a streamed chunk (the tracer recycles chunk
// and BBV storage after the sink returns).
func copyIntervals(chunk []Interval) []Interval {
	out := make([]Interval, len(chunk))
	for i, iv := range chunk {
		out[i] = iv
		out[i].BBV = bbv.Vector{
			Idx: append([]int32(nil), iv.BBV.Idx...),
			Val: append([]float64(nil), iv.BBV.Val...),
		}
	}
	return out
}

func sameIntervals(t *testing.T, got []Interval, want []*Interval) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("streamed %d intervals, materialized %d", len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], want[i]
		if g.Index != w.Index || g.Start != w.Start || g.End != w.End ||
			g.PhaseID != w.PhaseID || g.Perf != w.Perf {
			t.Fatalf("interval %d differs: streamed %+v, materialized %+v", i, *g, *w)
		}
		if len(g.BBV.Idx) != len(w.BBV.Idx) {
			t.Fatalf("interval %d BBV size differs", i)
		}
		for j := range g.BBV.Idx {
			if g.BBV.Idx[j] != w.BBV.Idx[j] || g.BBV.Val[j] != w.BBV.Val[j] {
				t.Fatalf("interval %d BBV entry %d differs", i, j)
			}
		}
	}
}

// Streaming emission must be observationally identical to materializing:
// same intervals, same BBVs, same totals — in both cutting modes, with a
// chunk size small enough to force many flush/recycle cycles.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for _, mode := range []string{"marker", "fixed"} {
		t.Run(mode, func(t *testing.T) {
			cfg, _ := compileAndMark(t, 50_000)
			if mode == "fixed" {
				cfg.Markers = nil
				cfg.FixedLen = 20_000
			}
			want, err := Run(*cfg)
			if err != nil {
				t.Fatal(err)
			}

			scfg := *cfg
			scfg.ChunkSize = 4
			var got []Interval
			backings := map[*Interval]bool{}
			scfg.Sink = func(chunk []Interval) error {
				if len(chunk) > scfg.ChunkSize {
					t.Errorf("chunk of %d exceeds ChunkSize %d", len(chunk), scfg.ChunkSize)
				}
				backings[&chunk[0]] = true
				got = append(got, copyIntervals(chunk)...)
				return nil
			}
			sres, err := Run(scfg)
			if err != nil {
				t.Fatal(err)
			}
			if sres.Intervals != nil {
				t.Fatal("streaming run materialized intervals")
			}
			if sres.Instructions != want.Instructions || sres.Total != want.Total ||
				sres.MarkerFires != want.MarkerFires || sres.NumBlocks != want.NumBlocks {
				t.Fatalf("streaming totals differ: %+v vs %+v", sres, want)
			}
			sameIntervals(t, got, want.Intervals)
			// Bounded memory, structurally: every chunk was the same
			// recycled arena, not a fresh allocation per flush.
			if len(backings) != 1 {
				t.Fatalf("sink saw %d distinct chunk arenas, want 1 (recycled)", len(backings))
			}
			if len(got) <= scfg.ChunkSize {
				t.Fatalf("only %d intervals: chunk recycling untested", len(got))
			}
		})
	}
}

// A sink error aborts the run and is surfaced by Run.
func TestStreamingSinkError(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	cfg.ChunkSize = 2
	calls := 0
	cfg.Sink = func(chunk []Interval) error {
		calls++
		return fmt.Errorf("sink full")
	}
	if _, err := Run(*cfg); err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after erroring, want 1", calls)
	}
}

// Scale=N must amplify to N cold repetitions tiled as one long trace:
// N× the instructions, contiguous tiling across repetition boundaries,
// counters accumulated across repetitions.
func TestScaleAmplifies(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	single, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Scale = 3
	amp, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	if amp.Instructions != 3*single.Instructions {
		t.Fatalf("scaled instructions %d, want 3×%d", amp.Instructions, single.Instructions)
	}
	if amp.MarkerFires < 3*single.MarkerFires {
		t.Fatalf("scaled marker fires %d < 3×%d", amp.MarkerFires, single.MarkerFires)
	}
	prevEnd := uint64(0)
	var total uint64
	for _, iv := range amp.Intervals {
		if iv.Start != prevEnd {
			t.Fatalf("interval %d starts at %d, previous ended at %d", iv.Index, iv.Start, prevEnd)
		}
		if iv.Len() == 0 {
			t.Fatalf("zero-length interval %d", iv.Index)
		}
		prevEnd = iv.End
		total += iv.Len()
	}
	if total != amp.Instructions {
		t.Fatalf("intervals cover %d of %d", total, amp.Instructions)
	}
	// Per-interval counters still sum to totals across resets.
	var ins uint64
	for _, iv := range amp.Intervals {
		ins += iv.Perf.Instrs
	}
	if ins != amp.Total.Instrs {
		t.Fatalf("per-interval instrs %d != total %d", ins, amp.Total.Instrs)
	}
	// Determinism: a scaled run is a repetition of identical executions,
	// so the first rep's intervals must reproduce the single run's.
	for i, iv := range single.Intervals[:len(single.Intervals)-1] {
		a := amp.Intervals[i]
		if a.Start != iv.Start || a.End != iv.End || a.PhaseID != iv.PhaseID {
			t.Fatalf("rep 1 interval %d differs from single run: %+v vs %+v", i, *a, *iv)
		}
	}
}

func TestSkipBBV(t *testing.T) {
	cfg, _ := compileAndMark(t, 50_000)
	cfg.SkipBBV = true
	res, err := Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Intervals {
		if len(iv.BBV.Idx) != 0 {
			t.Fatal("BBV collected despite SkipBBV")
		}
	}
}
