package trace

import (
	"testing"

	"phasemark/internal/minivm"
)

// fakeBlock builds a standalone block with the given instruction weight
// (Weight counts straight-line instructions plus the terminator).
func fakeBlock(weight int) *minivm.Block {
	return &minivm.Block{Instr: make([]minivm.Instr, weight-1)}
}

// TestFixedCutterHeavyBlock is the fail-on-old-code regression for the
// heavy-block bug: a single block heavier than step used to advance next
// by only one step, so every subsequent block fired a spurious cut,
// shattering the tail of the trace into one-block intervals. The grid
// must instead skip to the first multiple of step beyond the current
// count.
func TestFixedCutterHeavyBlock(t *testing.T) {
	var cuts []uint64
	f := NewFixedCutter(100, func(at uint64) { cuts = append(cuts, at) })

	// One block of 350 instructions, then light blocks of 10.
	f.OnBlock(fakeBlock(350))
	for i := 0; i < 20; i++ {
		f.OnBlock(fakeBlock(10))
	}

	// The heavy block carries the count from 0 to 350 crossing the 100,
	// 200, and 300 grid points at once; block boundaries are the only
	// legal cut points, so exactly one cut fires, at 350, and the next
	// must wait for the 400 grid point (count 400 pre-block → cut at 400,
	// then 500 at count 500).
	want := []uint64{350, 400, 500}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v (old code cascades a cut on every block after a heavy one)", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

// TestFixedCutterExactGrid pins the unchanged base behavior: counts
// landing exactly on grid points with light blocks cut once per step.
func TestFixedCutterExactGrid(t *testing.T) {
	var cuts []uint64
	f := NewFixedCutter(100, func(at uint64) { cuts = append(cuts, at) })
	for i := 0; i < 25; i++ {
		f.OnBlock(fakeBlock(10))
	}
	want := []uint64{100, 200}
	if len(cuts) != len(want) || cuts[0] != want[0] || cuts[1] != want[1] {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
}
