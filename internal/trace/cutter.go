package trace

import (
	"phasemark/internal/bbv"
	"phasemark/internal/minivm"
)

// FixedCutter is a machine observer that invokes a cut callback every
// step dynamic instructions, aligned to block boundaries: the cut fires
// at the first block whose pre-block instruction count reaches the next
// multiple of step, with the count at that point (so intervals never
// split a basic block). It is the one fixed-length segmentation
// implementation, shared by the timing-model tracer (Run) and the
// multi-configuration cache study (internal/adapt).
type FixedCutter struct {
	minivm.NopObserver
	cut    func(at uint64)
	instrs uint64
	next   uint64
	step   uint64
}

// NewFixedCutter builds a cutter firing cut about every step instructions.
func NewFixedCutter(step uint64, cut func(at uint64)) *FixedCutter {
	return &FixedCutter{cut: cut, next: step, step: step}
}

// ObservedEvents implements minivm.EventMasker: only block executions are
// consumed, so the machine never dispatches branch/call/mem events here.
func (f *FixedCutter) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

// OnBlock implements minivm.Observer.
func (f *FixedCutter) OnBlock(b *minivm.Block) {
	if f.instrs >= f.next {
		f.cut(f.instrs)
		// A block heavier than step can carry instrs past several grid
		// points at once; advance next beyond the current count or every
		// subsequent block would fire a spurious cut (cascading one-block
		// intervals) until the grid caught up.
		for f.next += f.step; f.next <= f.instrs; f.next += f.step {
		}
	}
	f.instrs += uint64(b.Weight())
}

// Rebase restarts the cut grid at the current instruction count: the
// next cut fires step instructions from here, regardless of where the
// previous grid point fell. Run's Scale amplifier calls it at
// repetition boundaries so every repetition is segmented exactly like a
// fresh run.
func (f *FixedCutter) Rebase() { f.next = f.instrs + f.step }

// BBVObserver feeds every executed block into a bbv.Accumulator — the
// shared basic-block-vector collection observer. Order it after the
// cutter or detector in a MultiObserver so an interval's closing snapshot
// excludes the block that begins the next interval.
type BBVObserver struct {
	minivm.NopObserver
	Acc *bbv.Accumulator
}

// ObservedEvents implements minivm.EventMasker.
func (o BBVObserver) ObservedEvents() minivm.EventMask { return minivm.EvBlock }

// OnBlock implements minivm.Observer.
func (o BBVObserver) OnBlock(b *minivm.Block) { o.Acc.Touch(b.ID, b.Weight()) }
