package uarch

import (
	"testing"
	"testing/quick"

	"phasemark/internal/minivm"
	"phasemark/internal/stats"
)

func TestCacheDirectMappedConflicts(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 4, Ways: 1})
	// Two addresses mapping to the same set alternate: always miss.
	a, b := uint64(0), uint64(4*64) // same set, different tags
	for i := 0; i < 10; i++ {
		if c.Access(a) || c.Access(b) {
			t.Fatal("conflicting accesses must all miss in direct-mapped cache")
		}
	}
	if c.Misses() != 20 || c.Accesses() != 20 {
		t.Fatalf("misses=%d accesses=%d", c.Misses(), c.Accesses())
	}
}

func TestCacheAssociativityResolvesConflicts(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 4, Ways: 2})
	a, b := uint64(0), uint64(4*64)
	c.Access(a)
	c.Access(b)
	for i := 0; i < 10; i++ {
		if !c.Access(a) || !c.Access(b) {
			t.Fatal("2-way cache must hold both conflicting blocks")
		}
	}
	if c.Misses() != 2 {
		t.Fatalf("misses=%d, want 2 cold", c.Misses())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 1, Ways: 2})
	blk := func(i uint64) uint64 { return i * 64 }
	c.Access(blk(1))
	c.Access(blk(2))
	c.Access(blk(1)) // 1 is now MRU
	c.Access(blk(3)) // evicts 2 (LRU)
	if !c.Access(blk(1)) {
		t.Error("block 1 must survive (was MRU)")
	}
	if c.Access(blk(2)) {
		t.Error("block 2 must have been evicted")
	}
}

func TestCacheSpatialLocality(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 16, Ways: 1})
	// 8 words per 64B block: one miss then 7 hits.
	for w := uint64(0); w < 8; w++ {
		hit := c.Access(w * 8)
		if w == 0 && hit {
			t.Error("first word must miss")
		}
		if w > 0 && !hit {
			t.Errorf("word %d must hit in the same block", w)
		}
	}
}

func TestCacheResizePreservesMRU(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 1, Ways: 4})
	for i := uint64(1); i <= 4; i++ {
		c.Access(i * 64)
	}
	c.Resize(2) // keep MRU two: blocks 4, 3
	if !c.Access(4*64) || !c.Access(3*64) {
		t.Error("MRU blocks must survive shrink")
	}
	if c.Access(1 * 64) {
		t.Error("LRU block must be dropped on shrink")
	}
	c.Resize(8)
	if c.Config().Ways != 8 {
		t.Error("grow failed")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 2, Ways: 2})
	c.Access(0)
	c.Flush()
	if c.Access(0) {
		t.Error("flush must drop lines")
	}
}

// Property: a larger cache (more ways) never has more misses on any trace
// — LRU inclusion.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := stats.NewRNG(seed)
		small := NewCache(CacheConfig{BlockBytes: 64, Sets: 8, Ways: 2})
		big := NewCache(CacheConfig{BlockBytes: 64, Sets: 8, Ways: 4})
		for i := 0; i < int(n)%2000+100; i++ {
			addr := uint64(rng.Intn(4096)) * 8
			small.Access(addr)
			big.Access(addr)
		}
		return big.Misses() <= small.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor(4)
	// Strongly taken branch: after warmup, all predictions correct.
	for i := 0; i < 10; i++ {
		p.Predict(1, true)
	}
	before := p.Mispredicts()
	for i := 0; i < 100; i++ {
		p.Predict(1, true)
	}
	if p.Mispredicts() != before {
		t.Error("saturated predictor must not mispredict a constant branch")
	}
	if p.Queries() != 110 {
		t.Errorf("queries = %d", p.Queries())
	}
}

func TestPredictorAlternatingWorstCase(t *testing.T) {
	p := NewPredictor(1)
	wrong := 0
	for i := 0; i < 100; i++ {
		if !p.Predict(0, i%2 == 0) {
			wrong++
		}
	}
	if wrong < 40 {
		t.Errorf("alternating branch should confuse a 2-bit counter, wrong=%d", wrong)
	}
}

func TestCPUCountersAndCPI(t *testing.T) {
	cfg := Config{
		L1:            CacheConfig{BlockBytes: 64, Sets: 4, Ways: 1},
		L2:            CacheConfig{BlockBytes: 64, Sets: 16, Ways: 2},
		L1MissCycles:  10,
		L2MissCycles:  100,
		BranchPenalty: 5,
	}
	prog := progForCPU(t)
	c := NewCPU(cfg, prog)
	// Simulate raw events without the machine.
	b := prog.Procs[0].Blocks[0]
	c.OnBlock(b)
	base := c.Counters()
	if base.Cycles != base.Instrs || base.Instrs != uint64(b.Weight()) {
		t.Fatalf("base CPI must be 1: %+v", base)
	}
	c.OnMem(0, false) // cold: L1 miss + L2 miss
	d := c.Counters().Sub(base)
	if d.Cycles != 110 || d.L1Miss != 1 || d.L2Miss != 1 {
		t.Fatalf("cold miss delta: %+v", d)
	}
	c.OnMem(0, false) // now hot
	d2 := c.Counters().Sub(base)
	if d2.L1Acc != 2 || d2.L1Miss != 1 {
		t.Fatalf("hot access delta: %+v", d2)
	}
	c.OnBranch(b, true) // weakly-not-taken predicts false -> mispredict
	d3 := c.Counters().Sub(base)
	if d3.Mispred != 1 || d3.Cycles != 110+5 {
		t.Fatalf("branch delta: %+v", d3)
	}
}

func TestCountersSubAndRates(t *testing.T) {
	a := Counters{Instrs: 100, Cycles: 150, L1Acc: 10, L1Miss: 5}
	b := Counters{Instrs: 300, Cycles: 600, L1Acc: 40, L1Miss: 10}
	d := b.Sub(a)
	if d.Instrs != 200 || d.Cycles != 450 {
		t.Fatalf("sub: %+v", d)
	}
	if d.CPI() != 2.25 {
		t.Errorf("CPI = %v", d.CPI())
	}
	if got := d.L1MissRate(); got != float64(5)/30 {
		t.Errorf("miss rate = %v", got)
	}
	var zero Counters
	if zero.CPI() != 0 || zero.L1MissRate() != 0 {
		t.Error("zero counters must not divide by zero")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{BlockBytes: 64, Sets: 3, Ways: 1},
		{BlockBytes: 60, Sets: 4, Ways: 1},
		{BlockBytes: 64, Sets: 4, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func progForCPU(t *testing.T) *minivm.Program {
	t.Helper()
	main := &minivm.Proc{Name: "main", NumArgs: 0, NumRegs: 2}
	main.Blocks = []*minivm.Block{{
		Instr: []minivm.Instr{{Op: minivm.OpConst, A: 0, Imm: 1}},
		Term:  minivm.Term{Kind: minivm.TermRet, Ret: 0},
	}}
	p := &minivm.Program{Procs: []*minivm.Proc{main}}
	p.RenumberBlocks()
	return p
}

func TestActiveWaysRetainParkedLines(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 1, Ways: 4})
	for i := uint64(1); i <= 4; i++ {
		c.Access(i * 64) // MRU order now 4,3,2,1
	}
	c.SetActiveWays(2)
	if c.ActiveWays() != 2 || c.ActiveSizeBytes() != 2*64 {
		t.Fatalf("active=%d size=%d", c.ActiveWays(), c.ActiveSizeBytes())
	}
	// Parked lines (2, 1) are inaccessible while shut down...
	if c.Access(1 * 64) {
		t.Fatal("parked line hit while deactivated")
	}
	// ...that miss allocated into the active window, evicting active-LRU
	// only; growing back re-exposes the retained parked lines.
	c.SetActiveWays(4)
	if !c.Access(2 * 64) {
		t.Fatal("parked line lost across shutdown/growth")
	}
}

func TestActiveWaysMissBehavior(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 1, Ways: 8})
	for i := uint64(0); i < 8; i++ {
		c.Access(i * 64)
	}
	c.SetActiveWays(1)
	// Cyclic sweep over 3 blocks in a 1-way window: all miss.
	base := c.Misses()
	for pass := 0; pass < 3; pass++ {
		for i := uint64(20); i < 23; i++ {
			if c.Access(i * 64) {
				t.Fatal("1-way window cannot hold 3 blocks")
			}
		}
	}
	if c.Misses()-base != 9 {
		t.Fatalf("miss count %d, want 9", c.Misses()-base)
	}
}

// Regression: a Resize must clear any previous SetActiveWays restriction.
// Before the fix, SetActiveWays(4); Resize(2); Resize(8) left active=4
// behind, silently limiting the "8-way" cache to 4 ways.
func TestResizeClearsStaleActiveWindow(t *testing.T) {
	c := NewCache(CacheConfig{BlockBytes: 64, Sets: 1, Ways: 8})
	c.SetActiveWays(4)
	c.Resize(2)
	if c.ActiveWays() != 2 {
		t.Fatalf("after Resize(2): active ways %d, want 2", c.ActiveWays())
	}
	c.Resize(8)
	if c.ActiveWays() != 8 {
		t.Fatalf("after Resize(8): active ways %d, want 8", c.ActiveWays())
	}
	// Functionally: 8 conflicting blocks must now be co-resident.
	for i := uint64(0); i < 8; i++ {
		c.Access(i * 64)
	}
	for i := uint64(0); i < 8; i++ {
		if !c.Access(i * 64) {
			t.Fatalf("block %d evicted: cache still restricted to a stale active window", i)
		}
	}
	// Shrinking below the active window must clamp it too: the window can
	// never exceed the geometry it was set against.
	c.SetActiveWays(6)
	c.Resize(4)
	if c.ActiveWays() != 4 {
		t.Fatalf("after SetActiveWays(6); Resize(4): active ways %d, want 4", c.ActiveWays())
	}
}
