// Package uarch provides the microarchitecture timing substrate the
// evaluation measures phases with: set-associative LRU caches (including
// the reconfigurable data cache of §6.1), a two-bit branch predictor, and
// an additive-penalty CPI model. It stands in for the paper's simulated
// Alpha baseline: the analysis only needs per-interval CPI and data-cache
// hit/miss counts that vary with the code and data actually executed.
package uarch

import (
	"fmt"
	"math/bits"
)

// CacheConfig describes one set-associative cache.
type CacheConfig struct {
	BlockBytes int
	Sets       int
	Ways       int
}

// SizeBytes reports the total capacity.
func (c CacheConfig) SizeBytes() int { return c.BlockBytes * c.Sets * c.Ways }

// String renders e.g. "64KB (64B x 512 sets x 2-way)".
func (c CacheConfig) String() string {
	return fmt.Sprintf("%dKB (%dB x %d sets x %d-way)",
		c.SizeBytes()/1024, c.BlockBytes, c.Sets, c.Ways)
}

// Cache is a set-associative cache with true-LRU replacement. It counts
// accesses and misses; write misses allocate (write-allocate, writes
// otherwise modeled like reads, as in the Cheetah-style simulators the
// paper's cache study uses).
//
// Tags live in one flat array, Ways entries per set in MRU-first order
// (resident count per set in size), so a lookup touches a single
// contiguous cache line of the host — no per-set slice headers or pointer
// chasing. The last accessed block is memoized: by construction it is the
// MRU line of its set, so a repeated access — the spatial-locality pattern
// that dominates real memory streams — is a hit decided by one compare,
// with no set scan and no reordering.
type Cache struct {
	cfg        CacheConfig
	blockShift uint   // log2(BlockBytes)
	setMask    uint64 // Sets - 1
	tagShift   uint   // log2(Sets)
	stride     int    // tags per set == cfg.Ways
	tags       []uint64
	size       []int32 // resident lines per set
	accesses   uint64
	misses     uint64
	// active, when in (0, Ways), restricts lookups and allocation to the
	// first `active` MRU ways per set while *retaining* the contents of
	// the deactivated ways — state-preserving way shutdown, the
	// reconfiguration mechanism adaptive-cache proposals assume (powered-
	// down ways keep their tags/data and become visible again on growth).
	active int
	// last is the block number of the previous access; lastOK guards the
	// first access and is dropped whenever the structure is rebuilt.
	last   uint64
	lastOK bool
}

// NewCache builds an empty cache. Sets must be a power of two.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.Sets <= 0 {
		panic(fmt.Sprintf("uarch: sets must be a power of two, got %d", cfg.Sets))
	}
	if cfg.BlockBytes&(cfg.BlockBytes-1) != 0 || cfg.BlockBytes <= 0 {
		panic(fmt.Sprintf("uarch: block size must be a power of two, got %d", cfg.BlockBytes))
	}
	if cfg.Ways <= 0 {
		panic("uarch: ways must be positive")
	}
	return &Cache{
		cfg:        cfg,
		blockShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		setMask:    uint64(cfg.Sets - 1),
		tagShift:   uint(bits.TrailingZeros(uint(cfg.Sets))),
		stride:     cfg.Ways,
		tags:       make([]uint64, cfg.Sets*cfg.Ways),
		size:       make([]int32, cfg.Sets),
	}
}

// Config returns the current configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// activeWindow reports the way count lookups are limited to.
func (c *Cache) activeWindow() int {
	if c.active > 0 && c.active < c.cfg.Ways {
		return c.active
	}
	return c.cfg.Ways
}

// Access touches byte address addr; it returns true on a hit. Misses
// allocate the block, evicting the LRU line of the active window if it is
// full (deactivated ways are never searched, allocated into, or evicted).
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	block := addr >> c.blockShift
	if c.lastOK && block == c.last {
		// The previous access made this block the MRU line of its set (and
		// any active-window shrink keeps at least the MRU way), so this is
		// a hit and the LRU order is already correct.
		return true
	}
	c.last = block
	c.lastOK = true
	si := int(block & c.setMask)
	tag := block >> c.tagShift
	base := si * c.stride
	ways := c.activeWindow()
	n := int(c.size[si])
	if n > ways {
		n = ways
	}
	window := c.tags[base : base+n]
	for i, t := range window {
		if t == tag {
			// Move to MRU position.
			copy(window[1:i+1], window[:i])
			window[0] = tag
			return true
		}
	}
	c.misses++
	if int(c.size[si]) < ways {
		// Room in the active window: shift the residents down and insert
		// at MRU (no parked lines can exist here — resident < window).
		grown := c.tags[base : base+n+1]
		copy(grown[1:], grown[:n])
		grown[0] = tag
		c.size[si]++
		return false
	}
	// Evict the LRU line of the active window; parked lines (beyond the
	// window) keep their positions and contents.
	copy(c.tags[base+1:base+ways], c.tags[base:base+ways-1])
	c.tags[base] = tag
	return false
}

// Accesses reports the access count.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses reports the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate reports misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Resize changes the associativity in place, keeping the most recently
// used lines of each set up to the new way count (the adaptive cache of
// §6.1 reconfigures 1..8 ways over fixed 512 sets). Counters are not
// reset. Any active-way restriction is cleared: resizing redefines the
// powered geometry, so all `ways` ways are active afterwards (a stale
// window from a previous SetActiveWays must not survive the new shape —
// e.g. SetActiveWays(4); Resize(2); Resize(8) would otherwise leave the
// cache silently limited to 4 of its 8 ways).
func (c *Cache) Resize(ways int) {
	if ways <= 0 {
		panic("uarch: ways must be positive")
	}
	c.active = 0
	c.lastOK = false
	if ways == c.stride {
		c.cfg.Ways = ways
		return
	}
	tags := make([]uint64, c.cfg.Sets*ways)
	for si := 0; si < c.cfg.Sets; si++ {
		keep := int(c.size[si])
		if keep > ways {
			keep = ways
			c.size[si] = int32(ways)
		}
		copy(tags[si*ways:si*ways+keep], c.tags[si*c.stride:si*c.stride+keep])
	}
	c.tags = tags
	c.stride = ways
	c.cfg.Ways = ways
}

// SetActiveWays deactivates all but the w most-recently-used ways of each
// set, retaining their contents (state-preserving reconfiguration). Pass
// the full way count (or more) to reactivate everything. Panics on w <= 0.
func (c *Cache) SetActiveWays(w int) {
	if w <= 0 {
		panic("uarch: active ways must be positive")
	}
	if w >= c.cfg.Ways {
		c.active = 0
		return
	}
	c.active = w
}

// ActiveWays reports the number of ways currently powered.
func (c *Cache) ActiveWays() int { return c.activeWindow() }

// ActiveSizeBytes reports the capacity of the powered ways.
func (c *Cache) ActiveSizeBytes() int {
	return c.cfg.BlockBytes * c.cfg.Sets * c.ActiveWays()
}

// Flush drops all cached lines (counters are preserved).
func (c *Cache) Flush() {
	clear(c.size)
	c.lastOK = false
}

// Reset returns the cache to its freshly-constructed state: all lines
// dropped and the access/miss counters zeroed. The geometry (including
// any active-way restriction) is preserved.
func (c *Cache) Reset() {
	c.Flush()
	c.accesses = 0
	c.misses = 0
}

// Predictor is a table of two-bit saturating counters indexed by the
// branch's static block ID.
type Predictor struct {
	table   []uint8
	queries uint64
	wrong   uint64
}

// NewPredictor builds a predictor with one counter per static block.
func NewPredictor(numBlocks int) *Predictor {
	t := make([]uint8, numBlocks)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Predictor{table: t}
}

// Predict consumes the outcome of branch block id and reports whether the
// prediction was correct.
func (p *Predictor) Predict(id int, taken bool) bool {
	p.queries++
	ctr := &p.table[id]
	pred := *ctr >= 2
	if taken && *ctr < 3 {
		*ctr++
	}
	if !taken && *ctr > 0 {
		*ctr--
	}
	if pred != taken {
		p.wrong++
		return false
	}
	return true
}

// Reset returns the predictor to its freshly-constructed state: every
// counter back to weakly not-taken, query/mispredict totals zeroed.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 1
	}
	p.queries = 0
	p.wrong = 0
}

// Queries reports the number of predicted branches.
func (p *Predictor) Queries() uint64 { return p.queries }

// Mispredicts reports the number of wrong predictions.
func (p *Predictor) Mispredicts() uint64 { return p.wrong }
