package uarch

import "phasemark/internal/minivm"

// Config parameterizes the CPI model: a two-level data-cache hierarchy
// with additive miss penalties and a branch mispredict penalty on top of a
// base throughput of one instruction per cycle.
type Config struct {
	L1            CacheConfig
	L2            CacheConfig
	L1MissCycles  uint64 // added per L1 miss (L2 hit latency)
	L2MissCycles  uint64 // added per L2 miss (memory latency)
	BranchPenalty uint64 // added per mispredicted conditional branch
}

// DefaultConfig is the baseline machine used for all CPI measurements:
// 32KB direct-mapped DL1 (the smallest configuration of the paper's
// adaptive cache), a 512KB 8-way L2, and conventional penalties.
func DefaultConfig() Config {
	return Config{
		L1:            CacheConfig{BlockBytes: 64, Sets: 512, Ways: 1},
		L2:            CacheConfig{BlockBytes: 64, Sets: 1024, Ways: 8},
		L1MissCycles:  12,
		L2MissCycles:  150,
		BranchPenalty: 8,
	}
}

// Counters is a snapshot of the model's activity, subtractable to obtain
// per-interval metrics.
type Counters struct {
	Instrs   uint64
	Cycles   uint64
	L1Acc    uint64
	L1Miss   uint64
	L2Acc    uint64
	L2Miss   uint64
	Branches uint64
	Mispred  uint64
}

// Add returns the elementwise sum c + other (for accumulating totals
// across independent executions, e.g. trace.Config.Scale repetitions).
func (c Counters) Add(other Counters) Counters {
	return Counters{
		Instrs:   c.Instrs + other.Instrs,
		Cycles:   c.Cycles + other.Cycles,
		L1Acc:    c.L1Acc + other.L1Acc,
		L1Miss:   c.L1Miss + other.L1Miss,
		L2Acc:    c.L2Acc + other.L2Acc,
		L2Miss:   c.L2Miss + other.L2Miss,
		Branches: c.Branches + other.Branches,
		Mispred:  c.Mispred + other.Mispred,
	}
}

// Sub returns the delta c - prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Instrs:   c.Instrs - prev.Instrs,
		Cycles:   c.Cycles - prev.Cycles,
		L1Acc:    c.L1Acc - prev.L1Acc,
		L1Miss:   c.L1Miss - prev.L1Miss,
		L2Acc:    c.L2Acc - prev.L2Acc,
		L2Miss:   c.L2Miss - prev.L2Miss,
		Branches: c.Branches - prev.Branches,
		Mispred:  c.Mispred - prev.Mispred,
	}
}

// CPI reports cycles per instruction (0 when no instructions ran).
func (c Counters) CPI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instrs)
}

// L1MissRate reports the data-cache miss rate.
func (c Counters) L1MissRate() float64 {
	if c.L1Acc == 0 {
		return 0
	}
	return float64(c.L1Miss) / float64(c.L1Acc)
}

// CPU is the timing model. It implements minivm.Observer; attach it to a
// Machine (usually inside a MultiObserver alongside the phase machinery).
type CPU struct {
	cfg Config
	L1  *Cache
	L2  *Cache
	BP  *Predictor
	ctr Counters
}

// NewCPU builds the model for a program (the predictor is sized to its
// static block count).
func NewCPU(cfg Config, prog *minivm.Program) *CPU {
	return &CPU{
		cfg: cfg,
		L1:  NewCache(cfg.L1),
		L2:  NewCache(cfg.L2),
		BP:  NewPredictor(prog.NumBlocks),
	}
}

// Counters snapshots the current totals.
func (c *CPU) Counters() Counters { return c.ctr }

// Reset returns the model to its freshly-constructed state: counters
// zeroed, caches emptied, predictor back to its initial bias. A Reset
// CPU observes a subsequent execution exactly as a new CPU would —
// trace.Run relies on that to make every Scale repetition an
// independent cold run.
func (c *CPU) Reset() {
	c.ctr = Counters{}
	c.L1.Reset()
	c.L2.Reset()
	c.BP.Reset()
}

// ObservedEvents implements minivm.EventMasker: the timing model consumes
// blocks, branch outcomes, and memory references, but not call/return
// edges — declaring that lets the machine skip those dispatches entirely.
func (c *CPU) ObservedEvents() minivm.EventMask {
	return minivm.EvBlock | minivm.EvBranch | minivm.EvMem
}

// OnBlock implements minivm.Observer.
func (c *CPU) OnBlock(b *minivm.Block) {
	w := uint64(b.Weight())
	c.ctr.Instrs += w
	c.ctr.Cycles += w
}

// OnCall implements minivm.Observer.
func (c *CPU) OnCall(*minivm.Block, *minivm.Proc) {}

// OnReturn implements minivm.Observer.
func (c *CPU) OnReturn(*minivm.Proc) {}

// OnBranch implements minivm.Observer.
func (c *CPU) OnBranch(b *minivm.Block, taken bool) {
	c.ctr.Branches++
	if !c.BP.Predict(b.ID, taken) {
		c.ctr.Mispred++
		c.ctr.Cycles += c.cfg.BranchPenalty
	}
}

// OnMem implements minivm.Observer.
func (c *CPU) OnMem(addr uint64, write bool) {
	c.ctr.L1Acc++
	if c.L1.Access(addr) {
		return
	}
	c.ctr.L1Miss++
	c.ctr.Cycles += c.cfg.L1MissCycles
	c.ctr.L2Acc++
	if !c.L2.Access(addr) {
		c.ctr.L2Miss++
		c.ctr.Cycles += c.cfg.L2MissCycles
	}
}
