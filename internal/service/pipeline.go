package service

import (
	"context"
	"fmt"

	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/obs"
	"phasemark/internal/simpoint"
	"phasemark/internal/store"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// Request-scoped span names for the pipeline stages. Every stage access
// — cached or not — gets a span tagged "cache" with the memo outcome
// (hit | computed | joined), so a request's trace shows both where time
// went and why (a 200µs pipeline.trace with cache=hit is a memo lookup;
// the same span with cache=computed is a full interpreter run). Exported
// alongside store.Span* so telemetry consumers name stages consistently.
const (
	SpanProg    = "pipeline.prog"
	SpanGraph   = "pipeline.graph"
	SpanMarkers = "pipeline.markers"
	SpanTrace   = "pipeline.trace"
	SpanCluster = "pipeline.cluster"
)

// Response schema tags. These version the response layout independently of
// the request encoding (apiVersion): a response-only change bumps these
// and apiVersion together, since stored artifacts are response bytes.
const (
	SchemaProfile = "phased/profile/v1"
	SchemaSelect  = "phased/select/v1"
	SchemaSegment = "phased/segment/v1"
	SchemaCluster = "phased/cluster/v1"
	SchemaBatch   = "phased/batch/v1"
)

// ProfileResponse reports the call-loop graph of one profiled execution.
type ProfileResponse struct {
	Schema  string         `json:"schema"`
	Request ProfileRequest `json:"request"`
	Nodes   int            `json:"nodes"`
	Edges   int            `json:"edges"`
	// Graph is the stable-order dump of the call-loop graph (node labels,
	// depths, per-edge count/avg/CoV/max annotations).
	Graph string `json:"graph"`
}

// MarkerInfo is one selected marker in a SelectResponse.
type MarkerInfo struct {
	Edge   string  `json:"edge"` // stable EdgeKey rendering
	GroupN uint64  `json:"group_n"`
	AvgLen float64 `json:"avg_len"`
	CoV    float64 `json:"cov"`
	Count  uint64  `json:"count"`
	Forced bool    `json:"forced"`
}

// SelectResponse reports a selected marker set and its thresholds.
type SelectResponse struct {
	Schema   string        `json:"schema"`
	Request  SelectRequest `json:"request"`
	CovBase  float64       `json:"cov_base"`
	CovSlack float64       `json:"cov_slack"`
	Markers  []MarkerInfo  `json:"markers"`
}

// IntervalInfo is one execution interval in a SegmentResponse.
type IntervalInfo struct {
	Start uint64  `json:"start"`
	End   uint64  `json:"end"`
	Phase int     `json:"phase"` // marker index, or -1 for the prologue / fixed cuts
	CPI   float64 `json:"cpi"`
}

// SegmentResponse reports a segmented, measured execution.
type SegmentResponse struct {
	Schema       string         `json:"schema"`
	Request      SegmentRequest `json:"request"`
	Instructions uint64         `json:"instructions"`
	MarkerFires  uint64         `json:"marker_fires"`
	TrueCPI      float64        `json:"true_cpi"`
	Intervals    []IntervalInfo `json:"intervals"`
}

// PointInfo is one chosen simulation point in a ClusterResponse.
type PointInfo struct {
	Cluster  int     `json:"cluster"`
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight"`
}

// ClusterResponse reports a SimPoint phase classification.
type ClusterResponse struct {
	Schema       string         `json:"schema"`
	Request      ClusterRequest `json:"request"`
	K            int            `json:"k"`
	BIC          float64        `json:"bic"`
	Intervals    int            `json:"intervals"`
	Weights      []float64      `json:"weights"`
	Assign       []int          `json:"assign"`
	Points       []PointInfo    `json:"points"`
	EstimatedCPI float64        `json:"estimated_cpi"`
	TrueCPI      float64        `json:"true_cpi"`
	RelError     float64        `json:"rel_error"`
	SimulatedIns uint64         `json:"simulated_instructions"`
}

// Encode renders a response in the service's canonical byte form (compact
// JSON plus one trailing newline) — the bytes that are stored, served, and
// compared by the byte-identity tests.
func Encode(v any) []byte {
	return append(mustJSON(v), '\n')
}

// NewProfileResponse builds the response for a canonical request from its
// computed artifact. Exported (with its siblings below) so tests can
// compose expected responses from artifacts computed directly via
// core/trace/simpoint — the in-process spexp path — and compare bytes.
func NewProfileResponse(req ProfileRequest, g *core.Graph) *ProfileResponse {
	return &ProfileResponse{
		Schema:  SchemaProfile,
		Request: req,
		Nodes:   len(g.Nodes),
		Edges:   len(g.Edges),
		Graph:   g.Dump(),
	}
}

// NewSelectResponse builds the response for a canonical request from its
// computed marker set.
func NewSelectResponse(req SelectRequest, set *core.MarkerSet) *SelectResponse {
	resp := &SelectResponse{
		Schema:   SchemaSelect,
		Request:  req,
		CovBase:  set.CovBase,
		CovSlack: set.CovSlack,
		Markers:  []MarkerInfo{}, // render [] rather than null for empty sets
	}
	for _, m := range set.Markers {
		resp.Markers = append(resp.Markers, MarkerInfo{
			Edge:   m.Key.String(),
			GroupN: m.GroupN,
			AvgLen: m.AvgLen,
			CoV:    m.CoV,
			Count:  m.Count,
			Forced: m.Forced,
		})
	}
	return resp
}

// NewSegmentResponse builds the response for a canonical request from its
// traced execution.
func NewSegmentResponse(req SegmentRequest, res *trace.Result) *SegmentResponse {
	resp := &SegmentResponse{
		Schema:       SchemaSegment,
		Request:      req,
		Instructions: res.Instructions,
		MarkerFires:  res.MarkerFires,
		TrueCPI:      res.TrueCPI(),
		Intervals:    make([]IntervalInfo, 0, len(res.Intervals)),
	}
	for _, iv := range res.Intervals {
		resp.Intervals = append(resp.Intervals, IntervalInfo{
			Start: iv.Start,
			End:   iv.End,
			Phase: iv.PhaseID,
			CPI:   iv.CPI(),
		})
	}
	return resp
}

// NewClusterResponse builds the response for a canonical request from its
// traced execution and clustering.
func NewClusterResponse(req ClusterRequest, res *trace.Result, c *simpoint.Clustering) *ClusterResponse {
	pts := simpoint.PickPoints(c, c.Points())
	est := simpoint.Evaluate(pts, res.Intervals, res.TrueCPI(), c.K)
	resp := &ClusterResponse{
		Schema:       SchemaCluster,
		Request:      req,
		K:            c.K,
		BIC:          c.BIC,
		Intervals:    len(res.Intervals),
		Weights:      c.Weights,
		Assign:       c.Assign,
		Points:       []PointInfo{},
		EstimatedCPI: est.EstimatedCPI,
		TrueCPI:      est.TrueCPI,
		RelError:     est.RelativeError,
		SimulatedIns: est.SimulatedIns,
	}
	for _, p := range pts {
		resp.Points = append(resp.Points, PointInfo{Cluster: p.Cluster, Interval: p.Interval, Weight: p.Weight})
	}
	return resp
}

// ClusterOptions maps a canonical cluster request onto simpoint.Options —
// one place, so the service and the byte-identity tests cannot drift.
func ClusterOptions(req ClusterRequest) simpoint.Options {
	return simpoint.Options{
		KMax:     req.KMax,
		Dims:     req.Dims,
		Seed:     req.Seed,
		Restarts: req.Restarts,
		MaxIters: req.MaxIters,
	}
}

// SelectOptions maps a canonical select spec onto core.SelectOptions.
func (s SelectSpec) SelectOptions() core.SelectOptions {
	return core.SelectOptions{
		ILower:    s.ILower,
		MaxLimit:  s.MaxLimit,
		ProcsOnly: s.ProcsOnly,
		CovScale:  s.CovScale,
		MinCount:  s.MinCount,
	}
}

// graphKey identifies a memoized profiled graph.
type graphKey struct {
	workload string
	input    string
}

// Pipeline computes responses for canonical requests over the existing
// pipeline packages, memoizing every expensive intermediate artifact with
// singleflight semantics (store.Memo): compiled programs per workload,
// profiled graphs per (workload, input), marker sets per select request,
// traced executions per segment request. Clusterings are cheap relative to
// the trace they consume and are not memoized — the response bytes
// themselves live in the artifact store.
//
// Memory grows with the set of *distinct* artifacts requested over the
// process lifetime (traces dominate). That is the intended trade for a
// service whose request population is content-addressed and heavily
// repeated; a process restart over the same store directory serves prior
// responses from disk without recomputing anything.
type Pipeline struct {
	progs  store.Memo[string, *minivm.Program]
	graphs store.Memo[graphKey, *core.Graph]
	sets   store.Memo[store.Key, *core.MarkerSet]
	traces store.Memo[store.Key, *trace.Result]
}

// NewPipeline builds an empty pipeline cache.
func NewPipeline() *Pipeline { return &Pipeline{} }

// stage wraps one memoized stage access in a request-scoped span tagged
// with its cache outcome. The compute closure runs (on the flight
// leader's goroutine only) under a context whose span is the stage span,
// so dependency stages nest beneath it in that request's tree.
func stage[K comparable, V any](ctx context.Context, m *store.Memo[K, V], name, arg string, k K,
	compute func(context.Context) (V, error)) (V, error) {
	sp := obs.SpanFromContext(ctx).Child(name, arg)
	cctx := obs.ContextWithSpan(ctx, sp)
	v, out, err := m.DoOutcome(k, func() (V, error) { return compute(cctx) })
	sp.SetTag("cache", out.String())
	sp.End()
	return v, err
}

// prog compiles (memoized) the named workload.
func (p *Pipeline) prog(ctx context.Context, name string) (*workloads.Workload, *minivm.Program, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, nil, reqErrf("unknown workload %q", name)
	}
	prog, err := stage(ctx, &p.progs, SpanProg, name, name,
		func(context.Context) (*minivm.Program, error) {
			return w.Compile(false)
		})
	if err != nil {
		return nil, nil, err
	}
	return w, prog, nil
}

// Graph profiles (memoized) the workload on the named input.
func (p *Pipeline) Graph(ctx context.Context, workload, input string) (*core.Graph, error) {
	w, prog, err := p.prog(ctx, workload)
	if err != nil {
		return nil, err
	}
	return stage(ctx, &p.graphs, SpanGraph, workload+"/"+input, graphKey{workload, input},
		func(context.Context) (*core.Graph, error) {
			args := w.Train
			if input == InputRef {
				args = w.Ref
			}
			g, err := core.ProfileRun(prog, args...)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", workload, err)
			}
			return g, nil
		})
}

// Markers selects (memoized) the marker set for a canonical request.
func (p *Pipeline) Markers(ctx context.Context, req SelectRequest) (*core.MarkerSet, error) {
	return stage(ctx, &p.sets, SpanMarkers, req.Workload, req.Key(),
		func(cctx context.Context) (*core.MarkerSet, error) {
			g, err := p.Graph(cctx, req.Workload, req.Input)
			if err != nil {
				return nil, err
			}
			return core.SelectMarkers(g, req.Options.SelectOptions()), nil
		})
}

// Trace runs (memoized) the segmented ref execution for a canonical
// request.
func (p *Pipeline) Trace(ctx context.Context, req SegmentRequest) (*trace.Result, error) {
	return stage(ctx, &p.traces, SpanTrace, req.Workload, req.Key(),
		func(cctx context.Context) (*trace.Result, error) {
			w, prog, err := p.prog(cctx, req.Workload)
			if err != nil {
				return nil, err
			}
			cfg := trace.Config{Prog: prog, Args: w.Ref, CPU: uarch.DefaultConfig()}
			if req.FixedLen > 0 {
				cfg.FixedLen = req.FixedLen
			} else {
				set, err := p.Markers(cctx, *req.Select)
				if err != nil {
					return nil, err
				}
				cfg.Markers = set
			}
			res, err := trace.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", req.Workload, err)
			}
			return res, nil
		})
}

// Profile computes the response bytes for a canonical profile request.
func (p *Pipeline) Profile(ctx context.Context, req ProfileRequest) ([]byte, error) {
	g, err := p.Graph(ctx, req.Workload, req.Input)
	if err != nil {
		return nil, err
	}
	return Encode(NewProfileResponse(req, g)), nil
}

// Select computes the response bytes for a canonical select request.
func (p *Pipeline) Select(ctx context.Context, req SelectRequest) ([]byte, error) {
	set, err := p.Markers(ctx, req)
	if err != nil {
		return nil, err
	}
	return Encode(NewSelectResponse(req, set)), nil
}

// Segment computes the response bytes for a canonical segment request.
func (p *Pipeline) Segment(ctx context.Context, req SegmentRequest) ([]byte, error) {
	res, err := p.Trace(ctx, req)
	if err != nil {
		return nil, err
	}
	return Encode(NewSegmentResponse(req, res)), nil
}

// Cluster computes the response bytes for a canonical cluster request.
// Clustering itself is not memoized (it is cheap next to the trace it
// consumes), so its span is always cache=computed.
func (p *Pipeline) Cluster(ctx context.Context, req ClusterRequest) ([]byte, error) {
	res, err := p.Trace(ctx, req.Segment)
	if err != nil {
		return nil, err
	}
	sp := obs.SpanFromContext(ctx).Child(SpanCluster, req.Segment.Workload)
	sp.SetTag("cache", store.Computed.String())
	c := simpoint.Classify(res, ClusterOptions(req))
	sp.End()
	return Encode(NewClusterResponse(req, res, c)), nil
}
