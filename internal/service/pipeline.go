package service

import (
	"context"
	"fmt"

	"phasemark/internal/core"
	"phasemark/internal/minivm"
	"phasemark/internal/obs"
	"phasemark/internal/simpoint"
	"phasemark/internal/store"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// Request-scoped span names for the pipeline stages. Every stage access
// — cached or not — gets a span tagged "cache" with the memo outcome
// (hit | computed | joined), so a request's trace shows both where time
// went and why (a 200µs pipeline.trace with cache=hit is a memo lookup;
// the same span with cache=computed is a full interpreter run). Exported
// alongside store.Span* so telemetry consumers name stages consistently.
const (
	SpanProg    = "pipeline.prog"
	SpanGraph   = "pipeline.graph"
	SpanMarkers = "pipeline.markers"
	SpanTrace   = "pipeline.trace"
	SpanProject = "pipeline.project"
	SpanCluster = "pipeline.cluster"
)

// Response schema tags. These version the response layout independently of
// the request encoding (apiVersion): a response-only change bumps these
// and apiVersion together, since stored artifacts are response bytes.
const (
	SchemaProfile = "phased/profile/v1"
	SchemaSelect  = "phased/select/v1"
	SchemaSegment = "phased/segment/v1"
	SchemaCluster = "phased/cluster/v1"
	SchemaBatch   = "phased/batch/v1"
)

// ProfileResponse reports the call-loop graph of one profiled execution.
type ProfileResponse struct {
	Schema  string         `json:"schema"`
	Request ProfileRequest `json:"request"`
	Nodes   int            `json:"nodes"`
	Edges   int            `json:"edges"`
	// Graph is the stable-order dump of the call-loop graph (node labels,
	// depths, per-edge count/avg/CoV/max annotations).
	Graph string `json:"graph"`
}

// MarkerInfo is one selected marker in a SelectResponse.
type MarkerInfo struct {
	Edge   string  `json:"edge"` // stable EdgeKey rendering
	GroupN uint64  `json:"group_n"`
	AvgLen float64 `json:"avg_len"`
	CoV    float64 `json:"cov"`
	Count  uint64  `json:"count"`
	Forced bool    `json:"forced"`
}

// SelectResponse reports a selected marker set and its thresholds.
type SelectResponse struct {
	Schema   string        `json:"schema"`
	Request  SelectRequest `json:"request"`
	CovBase  float64       `json:"cov_base"`
	CovSlack float64       `json:"cov_slack"`
	Markers  []MarkerInfo  `json:"markers"`
}

// IntervalInfo is one execution interval in a SegmentResponse.
type IntervalInfo struct {
	Start uint64  `json:"start"`
	End   uint64  `json:"end"`
	Phase int     `json:"phase"` // marker index, or -1 for the prologue / fixed cuts
	CPI   float64 `json:"cpi"`
}

// SegmentResponse reports a segmented, measured execution.
type SegmentResponse struct {
	Schema       string         `json:"schema"`
	Request      SegmentRequest `json:"request"`
	Instructions uint64         `json:"instructions"`
	MarkerFires  uint64         `json:"marker_fires"`
	TrueCPI      float64        `json:"true_cpi"`
	Intervals    []IntervalInfo `json:"intervals"`
}

// PointInfo is one chosen simulation point in a ClusterResponse.
type PointInfo struct {
	Cluster  int     `json:"cluster"`
	Interval int     `json:"interval"`
	Weight   float64 `json:"weight"`
}

// ClusterResponse reports a SimPoint phase classification.
type ClusterResponse struct {
	Schema       string         `json:"schema"`
	Request      ClusterRequest `json:"request"`
	K            int            `json:"k"`
	BIC          float64        `json:"bic"`
	Intervals    int            `json:"intervals"`
	Weights      []float64      `json:"weights"`
	Assign       []int          `json:"assign"`
	Points       []PointInfo    `json:"points"`
	EstimatedCPI float64        `json:"estimated_cpi"`
	TrueCPI      float64        `json:"true_cpi"`
	RelError     float64        `json:"rel_error"`
	SimulatedIns uint64         `json:"simulated_instructions"`
}

// Encode renders a response in the service's canonical byte form (compact
// JSON plus one trailing newline) — the bytes that are stored, served, and
// compared by the byte-identity tests.
func Encode(v any) []byte {
	return append(mustJSON(v), '\n')
}

// NewProfileResponse builds the response for a canonical request from its
// computed artifact. Exported (with its siblings below) so tests can
// compose expected responses from artifacts computed directly via
// core/trace/simpoint — the in-process spexp path — and compare bytes.
func NewProfileResponse(req ProfileRequest, g *core.Graph) *ProfileResponse {
	return &ProfileResponse{
		Schema:  SchemaProfile,
		Request: req,
		Nodes:   len(g.Nodes),
		Edges:   len(g.Edges),
		Graph:   g.Dump(),
	}
}

// NewSelectResponse builds the response for a canonical request from its
// computed marker set.
func NewSelectResponse(req SelectRequest, set *core.MarkerSet) *SelectResponse {
	resp := &SelectResponse{
		Schema:   SchemaSelect,
		Request:  req,
		CovBase:  set.CovBase,
		CovSlack: set.CovSlack,
		Markers:  []MarkerInfo{}, // render [] rather than null for empty sets
	}
	for _, m := range set.Markers {
		resp.Markers = append(resp.Markers, MarkerInfo{
			Edge:   m.Key.String(),
			GroupN: m.GroupN,
			AvgLen: m.AvgLen,
			CoV:    m.CoV,
			Count:  m.Count,
			Forced: m.Forced,
		})
	}
	return resp
}

// NewSegmentResponse builds the response for a canonical request from a
// materialized traced execution. The service itself serves segment
// responses from the streamed TraceArtifact (see Segment); this builder
// is the materializing reference the byte-identity tests compare against.
func NewSegmentResponse(req SegmentRequest, res *trace.Result) *SegmentResponse {
	resp := &SegmentResponse{
		Schema:       SchemaSegment,
		Request:      req,
		Instructions: res.Instructions,
		MarkerFires:  res.MarkerFires,
		TrueCPI:      res.TrueCPI(),
		Intervals:    make([]IntervalInfo, 0, len(res.Intervals)),
	}
	for _, iv := range res.Intervals {
		resp.Intervals = append(resp.Intervals, IntervalInfo{
			Start: iv.Start,
			End:   iv.End,
			Phase: iv.PhaseID,
			CPI:   iv.CPI(),
		})
	}
	return resp
}

// NewClusterResponse builds the response for a canonical request from a
// materialized traced execution and its clustering. Like
// NewSegmentResponse it is the materializing reference: the service
// builds cluster responses from the streamed ProjArtifact (see Cluster),
// and the byte-identity tests pin the two paths together.
func NewClusterResponse(req ClusterRequest, res *trace.Result, c *simpoint.Clustering) *ClusterResponse {
	pts := simpoint.PickPoints(c, c.Points())
	est := simpoint.Evaluate(pts, res.Intervals, res.TrueCPI(), c.K)
	return clusterResponse(req, c, len(res.Intervals), pts, est)
}

// newClusterResponseFromArtifact builds the response the service serves:
// same clustering engine, fed from the streamed projection artifact.
func newClusterResponseFromArtifact(req ClusterRequest, art *ProjArtifact, c *simpoint.Clustering) *ClusterResponse {
	pts := simpoint.PickPoints(c, art.Pts)
	est := evaluateArtifact(pts, art.Intervals, art.TrueCPI, c.K)
	return clusterResponse(req, c, len(art.Intervals), pts, est)
}

// clusterResponse assembles the response struct shared by the reference
// and artifact paths.
func clusterResponse(req ClusterRequest, c *simpoint.Clustering, intervals int, pts []simpoint.Point, est simpoint.Estimate) *ClusterResponse {
	resp := &ClusterResponse{
		Schema:       SchemaCluster,
		Request:      req,
		K:            c.K,
		BIC:          c.BIC,
		Intervals:    intervals,
		Weights:      c.Weights,
		Assign:       c.Assign,
		Points:       []PointInfo{},
		EstimatedCPI: est.EstimatedCPI,
		TrueCPI:      est.TrueCPI,
		RelError:     est.RelativeError,
		SimulatedIns: est.SimulatedIns,
	}
	for _, p := range pts {
		resp.Points = append(resp.Points, PointInfo{Cluster: p.Cluster, Interval: p.Interval, Weight: p.Weight})
	}
	return resp
}

// ClusterOptions maps a canonical cluster request onto simpoint.Options —
// one place, so the service and the byte-identity tests cannot drift.
func ClusterOptions(req ClusterRequest) simpoint.Options {
	return simpoint.Options{
		KMax:     req.KMax,
		Dims:     req.Dims,
		Seed:     req.Seed,
		Restarts: req.Restarts,
		MaxIters: req.MaxIters,
	}
}

// SelectOptions maps a canonical select spec onto core.SelectOptions.
func (s SelectSpec) SelectOptions() core.SelectOptions {
	return core.SelectOptions{
		ILower:    s.ILower,
		MaxLimit:  s.MaxLimit,
		ProcsOnly: s.ProcsOnly,
		CovScale:  s.CovScale,
		MinCount:  s.MinCount,
		Minimize:  s.Minimize,
	}
}

// graphKey identifies a memoized profiled graph.
type graphKey struct {
	workload string
	input    string
}

// projKey identifies a memoized projection artifact: the segment it
// summarizes plus the projection parameters (cluster requests with the
// same segment but different dims/seed need different matrices).
type projKey struct {
	segment store.Key
	dims    int
	seed    uint64
}

// Pipeline computes responses for canonical requests over the existing
// pipeline packages, memoizing every expensive intermediate artifact with
// singleflight semantics (store.Memo): compiled programs per workload,
// profiled graphs per (workload, input), marker sets per select request,
// and — instead of full traced executions — compact streaming artifacts:
// per-interval summaries per segment request (TraceArtifact) and
// projected point matrices per cluster parameterization (ProjArtifact).
// Both are folded online from the tracer's chunked emission, so no
// request ever materializes an O(trace) interval slice; working memory is
// O(intervals) summaries plus O(intervals·dims) projections.
// Clusterings are cheap relative to the artifacts they consume and are
// not memoized — the response bytes themselves live in the artifact
// store.
//
// Memory grows with the set of *distinct* artifacts requested over the
// process lifetime, but each artifact is now the compact residue the
// response needs, not the trace that produced it. Segment and cluster
// requests each stream their own interpreter run (summaries-only vs
// summaries+projection); repeated identical requests are served from the
// content-addressed response store without recomputing anything.
type Pipeline struct {
	// Workers is the pipeline-parallel engine's worker count for the
	// trace-driven stages (Trace, project): 0 keeps the serial streaming
	// path; > 0 decouples trace production from chunk analysis
	// (trace.Config.Workers) and fans per-chunk projection over workers.
	// Either way the streamed artifacts — and therefore the response
	// bytes — are bit-identical; only latency changes. Set before serving
	// requests; it is not part of any cache key for exactly that reason.
	Workers int

	progs  store.Memo[string, *minivm.Program]
	graphs store.Memo[graphKey, *core.Graph]
	sets   store.Memo[store.Key, *core.MarkerSet]
	traces store.Memo[store.Key, *TraceArtifact]
	projs  store.Memo[projKey, *ProjArtifact]
}

// NewPipeline builds an empty pipeline cache.
func NewPipeline() *Pipeline { return &Pipeline{} }

// stage wraps one memoized stage access in a request-scoped span tagged
// with its cache outcome. The compute closure runs (on the flight
// leader's goroutine only) under a context whose span is the stage span,
// so dependency stages nest beneath it in that request's tree.
func stage[K comparable, V any](ctx context.Context, m *store.Memo[K, V], name, arg string, k K,
	compute func(context.Context) (V, error)) (V, error) {
	sp := obs.SpanFromContext(ctx).Child(name, arg)
	cctx := obs.ContextWithSpan(ctx, sp)
	v, out, err := m.DoOutcome(k, func() (V, error) { return compute(cctx) })
	sp.SetTag("cache", out.String())
	sp.End()
	return v, err
}

// prog compiles (memoized) the named workload.
func (p *Pipeline) prog(ctx context.Context, name string) (*workloads.Workload, *minivm.Program, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, nil, reqErrf("unknown workload %q", name)
	}
	prog, err := stage(ctx, &p.progs, SpanProg, name, name,
		func(context.Context) (*minivm.Program, error) {
			return w.Compile(false)
		})
	if err != nil {
		return nil, nil, err
	}
	return w, prog, nil
}

// Graph profiles (memoized) the workload on the named input.
func (p *Pipeline) Graph(ctx context.Context, workload, input string) (*core.Graph, error) {
	w, prog, err := p.prog(ctx, workload)
	if err != nil {
		return nil, err
	}
	return stage(ctx, &p.graphs, SpanGraph, workload+"/"+input, graphKey{workload, input},
		func(context.Context) (*core.Graph, error) {
			args := w.Train
			if input == InputRef {
				args = w.Ref
			}
			g, err := core.ProfileRun(prog, args...)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", workload, err)
			}
			return g, nil
		})
}

// Markers selects (memoized) the marker set for a canonical request.
func (p *Pipeline) Markers(ctx context.Context, req SelectRequest) (*core.MarkerSet, error) {
	return stage(ctx, &p.sets, SpanMarkers, req.Workload, req.Key(),
		func(cctx context.Context) (*core.MarkerSet, error) {
			g, err := p.Graph(cctx, req.Workload, req.Input)
			if err != nil {
				return nil, err
			}
			return core.SelectMarkers(g, req.Options.SelectOptions()), nil
		})
}

// segConfig assembles the trace configuration for a canonical segment
// request (shared by the summary and projection stages) and reports the
// program's static block count for projection sizing.
func (p *Pipeline) segConfig(ctx context.Context, req SegmentRequest) (trace.Config, int, error) {
	w, prog, err := p.prog(ctx, req.Workload)
	if err != nil {
		return trace.Config{}, 0, err
	}
	cfg := trace.Config{Prog: prog, Args: w.Ref, CPU: uarch.DefaultConfig()}
	if req.FixedLen > 0 {
		cfg.FixedLen = req.FixedLen
	} else {
		set, err := p.Markers(ctx, *req.Select)
		if err != nil {
			return trace.Config{}, 0, err
		}
		cfg.Markers = set
	}
	return cfg, prog.NumBlocks, nil
}

// Trace runs (memoized) the segmented ref execution for a canonical
// request, streaming it into a compact TraceArtifact: the tracer emits
// interval chunks into a recycled arena, the sink folds them into
// per-interval summaries, and BBV collection is skipped entirely — the
// segment response doesn't need it, so neither trace nor vectors are
// ever held in memory.
func (p *Pipeline) Trace(ctx context.Context, req SegmentRequest) (*TraceArtifact, error) {
	return stage(ctx, &p.traces, SpanTrace, req.Workload, req.Key(),
		func(cctx context.Context) (*TraceArtifact, error) {
			cfg, _, err := p.segConfig(cctx, req)
			if err != nil {
				return nil, err
			}
			art := &TraceArtifact{}
			cfg.SkipBBV = true
			cfg.Workers = p.Workers
			obs.SpanFromContext(cctx).SetTag("workers", fmt.Sprint(p.Workers))
			cfg.Sink = func(chunk []trace.Interval) error {
				art.observe(chunk)
				return nil
			}
			res, err := trace.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", req.Workload, err)
			}
			art.finish(res)
			return art, nil
		})
}

// project runs (memoized) the segmented execution for a cluster request,
// streaming it into a ProjArtifact: the same chunked run as Trace, but
// with BBVs collected per chunk and projected online into the point
// matrix before the arena is recycled.
func (p *Pipeline) project(ctx context.Context, req ClusterRequest) (*ProjArtifact, error) {
	k := projKey{segment: req.Segment.Key(), dims: req.Dims, seed: req.Seed}
	return stage(ctx, &p.projs, SpanProject, req.Segment.Workload, k,
		func(cctx context.Context) (*ProjArtifact, error) {
			cfg, numBlocks, err := p.segConfig(cctx, req.Segment)
			if err != nil {
				return nil, err
			}
			art := &ProjArtifact{}
			proj := simpoint.NewStreamProjector(numBlocks, req.Dims, req.Seed)
			cfg.Workers = p.Workers
			obs.SpanFromContext(cctx).SetTag("workers", fmt.Sprint(p.Workers))
			cfg.Sink = func(chunk []trace.Interval) error {
				art.observe(chunk)
				proj.ObserveChunkPar(chunk, p.Workers)
				return nil
			}
			res, err := trace.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", req.Segment.Workload, err)
			}
			art.finish(res)
			art.Pts, art.Weights = proj.Matrix()
			return art, nil
		})
}

// Profile computes the response bytes for a canonical profile request.
func (p *Pipeline) Profile(ctx context.Context, req ProfileRequest) ([]byte, error) {
	g, err := p.Graph(ctx, req.Workload, req.Input)
	if err != nil {
		return nil, err
	}
	return Encode(NewProfileResponse(req, g)), nil
}

// Select computes the response bytes for a canonical select request.
func (p *Pipeline) Select(ctx context.Context, req SelectRequest) ([]byte, error) {
	set, err := p.Markers(ctx, req)
	if err != nil {
		return nil, err
	}
	return Encode(NewSelectResponse(req, set)), nil
}

// Segment computes the response bytes for a canonical segment request,
// straight from the streamed artifact's summaries.
func (p *Pipeline) Segment(ctx context.Context, req SegmentRequest) ([]byte, error) {
	art, err := p.Trace(ctx, req)
	if err != nil {
		return nil, err
	}
	resp := &SegmentResponse{
		Schema:       SchemaSegment,
		Request:      req,
		Instructions: art.Instructions,
		MarkerFires:  art.MarkerFires,
		TrueCPI:      art.TrueCPI,
		Intervals:    art.Intervals,
	}
	if resp.Intervals == nil {
		resp.Intervals = []IntervalInfo{}
	}
	return Encode(resp), nil
}

// Cluster computes the response bytes for a canonical cluster request by
// clustering the streamed projection artifact — the same engine
// simpoint.Classify runs, fed a bit-identical matrix, so the bytes match
// the materializing reference path. Clustering itself is not memoized
// (it is cheap next to the artifact it consumes), so its span is always
// cache=computed.
func (p *Pipeline) Cluster(ctx context.Context, req ClusterRequest) ([]byte, error) {
	art, err := p.project(ctx, req)
	if err != nil {
		return nil, err
	}
	sp := obs.SpanFromContext(ctx).Child(SpanCluster, req.Segment.Workload)
	sp.SetTag("cache", store.Computed.String())
	c := simpoint.Cluster(art.Pts, art.Weights, ClusterOptions(req))
	sp.End()
	return Encode(newClusterResponseFromArtifact(req, art, c)), nil
}
