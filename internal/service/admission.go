package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"phasemark/internal/obs"
	"phasemark/internal/par"
)

// SpanQueue names the queue-wait child span Gate.Do attaches to the
// request span carried by its context: admission to execution-slot
// acquisition. Alongside store.Span*, it is one of the sequential
// root-level phases of a dispatched request.
const SpanQueue = "req.queue"

// Admission metrics. Queue wait is measured from admission until an
// execution slot frees up; exec is the handler's compute (store lookup
// plus any pipeline work). Rejections split by cause: saturated (queue
// full, 429) vs draining (shutdown in progress, 503).
var (
	obsAdmitted      = obs.NewCounter("service.admitted")
	obsRejected      = obs.NewCounter("service.rejected_saturated")
	obsRejectedDrain = obs.NewCounter("service.rejected_draining")
	obsInflight      = obs.NewGauge("service.inflight")
	obsQueued        = obs.NewGauge("service.queued")
	obsQueueWait     = obs.NewHist("service.queue_wait_ns")
	obsExec          = obs.NewHist("service.exec_ns")
)

// gateObs adapts the gate's telemetry to the metric registry through the
// same hook type the worker pools use (par.Obs), so queue-wait/exec
// histograms read identically across the suite pool and the service.
var gateObs = &par.Obs{
	QueueWait: func(d time.Duration) { obsQueueWait.Observe(uint64(d)) },
	Exec:      func(d time.Duration) { obsExec.Observe(uint64(d)) },
}

// Gate errors, mapped to HTTP statuses by the server (429 / 503).
var (
	// ErrSaturated: the bounded queue is full; the client should back off
	// and retry (Retry-After).
	ErrSaturated = errors.New("service: saturated, try again later")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("service: draining, not accepting work")
)

// Gate is the admission-control layer: at most `workers` requests execute
// concurrently and at most `queue` more wait for a slot; anything beyond
// that is rejected immediately with ErrSaturated instead of queuing
// unboundedly inside the process. A draining gate (StartDrain) rejects all
// new work with ErrDraining while already-admitted requests finish.
type Gate struct {
	// tokens bounds admitted work (executing + waiting); slots bounds
	// execution. Both are semaphores realized as buffered channels.
	tokens   chan struct{}
	slots    chan struct{}
	draining atomic.Bool
}

// NewGate builds a gate with the given execution and queue bounds (values
// below 1 mean 1 executing / 0 waiting).
func NewGate(workers, queue int) *Gate {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{
		tokens: make(chan struct{}, workers+queue),
		slots:  make(chan struct{}, workers),
	}
}

// Do admits fn through the gate and runs it on the caller's goroutine:
// reject if draining, reject if the queue is full, otherwise wait for an
// execution slot (recording queue wait, as a metric and — when ctx
// carries a request span — a SpanQueue child span) and run (recording
// exec time). The returned error is ErrDraining, ErrSaturated, or fn's
// own error.
func (g *Gate) Do(ctx context.Context, fn func() error) error {
	if g.draining.Load() {
		obsRejectedDrain.Inc()
		return ErrDraining
	}
	select {
	case g.tokens <- struct{}{}:
	default:
		obsRejected.Inc()
		return ErrSaturated
	}
	defer func() { <-g.tokens }()

	obsAdmitted.Inc()
	obsQueued.Add(1)
	qsp := obs.SpanFromContext(ctx).Child(SpanQueue, "")
	enqueued := time.Now()
	g.slots <- struct{}{}
	defer func() { <-g.slots }()
	start := time.Now()
	qsp.End()
	gateObs.QueueWait(start.Sub(enqueued))
	obsQueued.Add(-1)
	obsInflight.Add(1)
	defer func() {
		obsInflight.Add(-1)
		gateObs.Exec(time.Since(start))
	}()
	return fn()
}

// StartDrain flips the gate into drain mode: every subsequent Do is
// rejected with ErrDraining. In-flight work is unaffected; pair with
// http.Server.Shutdown to wait for it.
func (g *Gate) StartDrain() { g.draining.Store(true) }

// Draining reports whether the gate is in drain mode.
func (g *Gate) Draining() bool { return g.draining.Load() }

// RetryAfterSeconds is the backoff hint sent with 429 responses.
const RetryAfterSeconds = 1
