package service

import (
	"math"

	"phasemark/internal/simpoint"
	"phasemark/internal/trace"
)

// This file defines the compact artifacts the pipeline memoizes in place
// of full *trace.Result values. A materialized trace retains every
// interval's sparse BBV — O(instructions) memory on long executions —
// while the responses the service actually serves need only per-interval
// summaries and, for clustering, the dims-dimensional projections. Both
// are computed online from the tracer's streamed chunks (trace.Config
// .Sink), so process memory is bounded by the residue the response
// needs, never by the trace that produced it.

// TraceArtifact is the compact residue of one segmented execution:
// per-interval summaries (exactly the fields SegmentResponse reports)
// plus the run totals. It is what the pipeline memoizes per canonical
// segment request — roughly 32 bytes per interval, BBVs never retained.
type TraceArtifact struct {
	Intervals    []IntervalInfo
	Instructions uint64
	MarkerFires  uint64
	TrueCPI      float64
}

// observe folds one streamed chunk into the summary slice. Interval CPI
// is computed here, from the same uarch counters NewSegmentResponse
// would read off a materialized interval, so the serialized value is
// bit-identical.
func (a *TraceArtifact) observe(chunk []trace.Interval) {
	for i := range chunk {
		iv := &chunk[i]
		a.Intervals = append(a.Intervals, IntervalInfo{
			Start: iv.Start,
			End:   iv.End,
			Phase: iv.PhaseID,
			CPI:   iv.CPI(),
		})
	}
}

// finish copies the run totals out of the streaming-mode result (whose
// Intervals field is nil by contract).
func (a *TraceArtifact) finish(res *trace.Result) {
	a.Instructions = res.Instructions
	a.MarkerFires = res.MarkerFires
	a.TrueCPI = res.TrueCPI()
}

// ProjArtifact extends TraceArtifact with the projected point matrix and
// instruction weights a cluster request consumes, memoized per (segment
// key, dims, seed). The matrix comes from simpoint.StreamProjector fed
// by the same streamed run that produced the summaries, and is
// bit-identical to ProjectIntervals over the materialized trace — so
// clustering it reproduces simpoint.Classify exactly, without the trace
// ever being held in memory. Size is O(intervals·dims), the bounded
// residue clustering fundamentally needs.
type ProjArtifact struct {
	TraceArtifact
	Pts     simpoint.Matrix
	Weights []float64
}

// evaluateArtifact is simpoint.Evaluate over interval summaries instead
// of materialized intervals — the same arithmetic in the same order, so
// the estimate (and the response bytes built from it) cannot drift from
// the reference path.
func evaluateArtifact(pts []simpoint.Point, ivs []IntervalInfo, trueCPI float64, k int) simpoint.Estimate {
	var est simpoint.Estimate
	est.Points = pts
	est.K = k
	est.TrueCPI = trueCPI
	var cpi float64
	var wsum float64
	for _, p := range pts {
		iv := ivs[p.Interval]
		est.SimulatedIns += iv.End - iv.Start
		cpi += p.Weight * iv.CPI
		wsum += p.Weight
	}
	if wsum > 0 {
		est.EstimatedCPI = cpi / wsum
	}
	if trueCPI > 0 {
		est.RelativeError = math.Abs(est.EstimatedCPI-trueCPI) / trueCPI
	}
	return est
}
