package service

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// waitFull blocks until the gate's admission semaphore is fully occupied,
// so saturation assertions don't race launched-but-not-yet-enqueued
// callers.
func waitFull(t *testing.T, g *Gate) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(g.tokens) < cap(g.tokens) {
		if time.Now().After(deadline) {
			t.Fatalf("gate never filled: %d/%d tokens", len(g.tokens), cap(g.tokens))
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestGateBoundsAndRejects(t *testing.T) {
	g := NewGate(2, 1)

	// Fill both execution slots and the one queue place.
	block := make(chan struct{})
	running := make(chan struct{}, 3)
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			done <- g.Do(context.Background(), func() error {
				running <- struct{}{}
				<-block
				return nil
			})
		}()
	}
	// Two of the three reach execution; the third holds the queue place.
	for i := 0; i < 2; i++ {
		select {
		case <-running:
		case <-time.After(5 * time.Second):
			t.Fatal("execution slots did not fill")
		}
	}
	waitFull(t, g)

	// The gate is now full: the fourth caller is shed immediately.
	if err := g.Do(context.Background(), func() error { return nil }); err != ErrSaturated {
		t.Fatalf("overflow Do = %v, want ErrSaturated", err)
	}

	close(block)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted work errored: %v", err)
		}
	}

	// Capacity frees up again after completion.
	if err := g.Do(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("post-completion Do = %v", err)
	}

	// Draining rejects everything, even with free capacity.
	g.StartDrain()
	if !g.Draining() {
		t.Error("Draining() = false after StartDrain")
	}
	if err := g.Do(context.Background(), func() error { return nil }); err != ErrDraining {
		t.Fatalf("draining Do = %v, want ErrDraining", err)
	}
}

func TestGateClampsDegenerateBounds(t *testing.T) {
	g := NewGate(0, -5) // clamps to 1 worker, 0 queue
	block := make(chan struct{})
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- g.Do(context.Background(), func() error { close(started); <-block; return nil }) }()
	<-started
	waitFull(t, g)
	if err := g.Do(context.Background(), func() error { return nil }); err != ErrSaturated {
		t.Fatalf("second Do on a 1/0 gate = %v, want ErrSaturated", err)
	}
	close(block)
	if err := <-errc; err != nil {
		t.Fatalf("blocked work errored: %v", err)
	}
}

// TestGatePropagatesErrors checks the gate returns fn's own error
// unchanged for admitted work.
func TestGatePropagatesErrors(t *testing.T) {
	g := NewGate(1, 0)
	want := fmt.Errorf("compute exploded")
	if err := g.Do(context.Background(), func() error { return want }); err != want {
		t.Fatalf("Do = %v, want %v", err, want)
	}
}

// TestConfigDefaults pins the derived worker/queue defaults.
func TestConfigDefaults(t *testing.T) {
	cases := []struct {
		cfg                  Config
		wantMinW, wantQueues int
	}{
		{Config{Workers: 3}, 3, 12}, // queue defaults to 4×workers
		{Config{Workers: 2, Queue: 5}, 2, 5},
		{Config{Workers: 1, Queue: -1}, 1, 0}, // negative queue means none
	}
	for _, tc := range cases {
		if got := tc.cfg.workers(); got != tc.wantMinW {
			t.Errorf("%+v workers() = %d, want %d", tc.cfg, got, tc.wantMinW)
		}
		if got := tc.cfg.queue(); got != tc.wantQueues {
			t.Errorf("%+v queue() = %d, want %d", tc.cfg, got, tc.wantQueues)
		}
	}
	if got := (Config{}).workers(); got < 1 {
		t.Errorf("default workers() = %d, want >= 1", got)
	}
}
