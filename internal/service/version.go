package service

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: module version, Go toolchain,
// and (when built inside a git checkout) the VCS revision. It is embedded
// in the /healthz payload and printed by `phased -version`, so a scrape or
// a log line always says which build produced it.
type BuildInfo struct {
	Version  string `json:"version"`
	Go       string `json:"go,omitempty"`
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build reads the binary's build information once (runtime/debug's
// ReadBuildInfo walks the embedded module data) and caches it for every
// later caller.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "(devel)"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		buildInfo.Go = bi.GoVersion
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				buildInfo.Revision = kv.Value
			case "vcs.modified":
				buildInfo.Modified = kv.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the build info as a one-line stamp.
func (b BuildInfo) String() string {
	s := fmt.Sprintf("phased %s (%s)", b.Version, b.Go)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Modified {
			s += "+dirty"
		}
	}
	return s
}
