package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"phasemark/internal/obs"
)

// Cache-outcome labels for the per-route RED metrics. The first three
// mirror store.Outcome; "error" overrides them for 4xx/5xx responses and
// "none" marks routes that never touch the store (/healthz, /metrics).
var outcomeLabels = [...]string{"hit", "computed", "joined", "error", "none"}

// routeName converts a mux pattern into the dotted label used in span and
// metric names: "/v1/cluster" → "v1.cluster", "/debug/" → "debug".
func routeName(path string) string {
	p := strings.Trim(path, "/")
	if p == "" {
		return "root"
	}
	return strings.ReplaceAll(p, "/", ".")
}

// routeTelemetry is one route's RED instruments, resolved once at
// registration so the per-request path is handle increments only:
//
//	http.<route>.<outcome>      histogram  latency (ns), split by cache outcome
//	http.<route>.inflight       gauge      requests currently in the handler
//	http.<route>.status.<class> counter    responses by status class
type routeTelemetry struct {
	route    string
	inflight *obs.Gauge
	latency  map[string]*obs.Histogram
	status   map[string]*obs.Counter
}

func newRouteTelemetry(route string) *routeTelemetry {
	t := &routeTelemetry{
		route:    route,
		inflight: obs.NewGauge("http." + route + ".inflight"),
		latency:  map[string]*obs.Histogram{},
		status:   map[string]*obs.Counter{},
	}
	for _, o := range outcomeLabels {
		t.latency[o] = obs.NewHist("http." + route + "." + o)
	}
	for _, c := range []string{"1xx", "2xx", "3xx", "4xx", "5xx", "other"} {
		t.status[c] = obs.NewCounter("http." + route + ".status." + c)
	}
	return t
}

// observe folds one finished request into the route's instruments.
func (t *routeTelemetry) observe(outcome string, code int, d time.Duration) {
	h := t.latency[outcome]
	if h == nil {
		h = t.latency["none"]
	}
	h.Observe(uint64(d))
	t.status[statusClass(code)].Inc()
}

func statusClass(code int) string {
	if code < 100 || code >= 600 {
		return "other"
	}
	return [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}[code/100-1]
}

// respWriter records the status code and body size a handler produced.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// parseTraceparent extracts the trace-id from a W3C trace-context header
// (version-format "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>").
// Only a syntactically valid header with a nonzero trace-id is honored;
// anything else makes the service start a fresh trace.
func parseTraceparent(h string) (string, bool) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 ||
		len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false
	}
	if parts[0] == "ff" { // forbidden version
		return "", false
	}
	for _, s := range parts[:3] {
		if !isLowerHex(s) {
			return "", false
		}
	}
	// All-zero trace-id or span-id means "no trace" per the spec.
	if strings.Trim(parts[1], "0") == "" || strings.Trim(parts[2], "0") == "" {
		return "", false
	}
	return parts[1], true
}

func isLowerHex(s string) bool {
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			return false
		}
	}
	return true
}

// instrument wraps one route's handler with the request-telemetry layer:
// a root request span carried via the request context, W3C traceparent
// ingest/echo, a generated request ID, RED metrics, the Server-Timing
// stage breakdown, optional structured access logging, and — when track
// is set — capture into the /debug/slowest ring.
func (s *Server) instrument(path string, track bool, h http.HandlerFunc) http.HandlerFunc {
	rt := newRouteTelemetry(routeName(path))
	return func(w http.ResponseWriter, r *http.Request) {
		traceID, ok := parseTraceparent(r.Header.Get("Traceparent"))
		if !ok {
			traceID = obs.NewID(16)
		}
		sp := obs.StartRequest("http."+rt.route, r.URL.Path)
		sp.TraceID = traceID
		sp.SpanID = obs.NewID(8)
		reqID := obs.NewID(8)

		hdr := w.Header()
		hdr.Set("X-Request-Id", reqID)
		hdr.Set("Traceparent", "00-"+traceID+"-"+sp.SpanID+"-01")

		rw := &respWriter{ResponseWriter: w}
		rt.inflight.Add(1)
		h(rw, r.WithContext(obs.ContextWithSpan(r.Context(), sp)))
		rt.inflight.Add(-1)
		d := sp.End()
		if rw.status == 0 { // handler wrote nothing at all
			rw.status = http.StatusOK
		}

		cache := sp.Tag("cache")
		outcome := cache
		switch {
		case rw.status >= 400:
			outcome = "error"
		case outcome == "":
			outcome = "none"
		}
		rt.observe(outcome, rw.status, d)

		snap := sp.Snapshot()
		if track {
			s.slow.Put(SlowRequest{
				ID:      reqID,
				TraceID: traceID,
				Route:   rt.route,
				Status:  rw.status,
				Cache:   cache,
				DurNS:   d.Nanoseconds(),
				Span:    snap,
			})
		}
		if lg := s.cfg.AccessLog; lg != nil {
			durs := map[string]int64{}
			stageDurations(snap.Children, durs)
			lg.Info("request",
				"id", reqID,
				"trace_id", traceID,
				"route", rt.route,
				"method", r.Method,
				"status", rw.status,
				"cache", cache,
				"bytes", rw.bytes,
				"dur_ns", d.Nanoseconds(),
				"queue_wait_ns", durs[SpanQueue],
				"stages", serverTiming(durs),
			)
		}
	}
}

// stageDurations sums span durations per stage name across a snapshot
// subtree — the flattened per-request breakdown behind Server-Timing and
// the access log.
func stageDurations(nodes []obs.ReqSpanSnap, into map[string]int64) {
	for _, n := range nodes {
		into[n.Name] += n.DurNS
		stageDurations(n.Children, into)
	}
}

// serverTiming renders a stage-duration map as a Server-Timing header
// value — `name;dur=<ms>` entries, sorted by name so the header is
// deterministic for a given breakdown.
func serverTiming(durs map[string]int64) string {
	names := make([]string, 0, len(durs))
	for n := range durs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", n, float64(durs[n])/1e6)
	}
	return b.String()
}

// SlowRequest is one captured request in the /debug/slowest window: the
// identifying headers, the outcome, and the full span tree.
type SlowRequest struct {
	ID      string          `json:"id"`
	TraceID string          `json:"trace_id"`
	Route   string          `json:"route"`
	Status  int             `json:"status"`
	Cache   string          `json:"cache,omitempty"`
	DurNS   int64           `json:"dur_ns"`
	Span    obs.ReqSpanSnap `json:"span"`
}

// SchemaDebugSlowest versions the /debug/slowest payload.
const SchemaDebugSlowest = "phasemark/debug-slowest/v1"

// handleDebug indexes the debug surface.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/debug/" && r.URL.Path != "/debug" {
		countStatus(http.StatusNotFound)
		http.NotFound(w, r)
		return
	}
	countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.Write(Encode(map[string]any{
		"endpoints": []string{"/debug/slowest"},
		"hint":      "POST any pipeline endpoint with ?trace=1 for a one-shot Chrome trace",
	}))
}

// handleDebugSlowest serves the slowest requests in the recent capture
// window, slowest first, with their full span trees.
func (s *Server) handleDebugSlowest(w http.ResponseWriter, r *http.Request) {
	reqs := s.slow.Snapshot()
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].DurNS > reqs[j].DurNS })
	countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.Write(Encode(map[string]any{
		"schema":   SchemaDebugSlowest,
		"window":   s.slow.Cap(),
		"requests": reqs,
	}))
}
