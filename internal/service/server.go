package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strconv"

	"phasemark/internal/obs"
	"phasemark/internal/par"
	"phasemark/internal/store"
)

// Per-endpoint request counters plus HTTP outcome classes.
var (
	obsReqProfile = obs.NewCounter("service.req.profile")
	obsReqSelect  = obs.NewCounter("service.req.select")
	obsReqSegment = obs.NewCounter("service.req.segment")
	obsReqCluster = obs.NewCounter("service.req.cluster")
	obsReqBatch   = obs.NewCounter("service.req.batch")
	obsStatus2xx  = obs.NewCounter("service.status.2xx")
	obsStatus4xx  = obs.NewCounter("service.status.4xx")
	obsStatus429  = obs.NewCounter("service.status.429")
	obsStatus5xx  = obs.NewCounter("service.status.5xx")
	obsStatus503  = obs.NewCounter("service.status.503")
)

// Config configures a Server.
type Config struct {
	// Store holds response artifacts; required.
	Store *store.Store
	// Workers bounds concurrently executing requests (default GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for an execution slot (default
	// 4×Workers). Work beyond Workers+Queue is rejected with 429.
	Queue int
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) queue() int {
	if c.Queue < 0 {
		return 0
	}
	if c.Queue == 0 {
		return 4 * c.workers()
	}
	return c.Queue
}

// Server is the phased HTTP service: the four pipeline endpoints plus
// batch, health, and metrics, over one artifact store and one admission
// gate. Construct with New, mount Handler on an http.Server, and call
// StartDrain before http.Server.Shutdown for a graceful stop.
type Server struct {
	cfg  Config
	pl   *Pipeline
	gate *Gate
	mux  *http.ServeMux
}

// New builds a Server over its artifact store.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("service: Config.Store is required")
	}
	s := &Server{
		cfg:  cfg,
		pl:   NewPipeline(),
		gate: NewGate(cfg.workers(), cfg.queue()),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc(EndpointProfile, s.handleProfile)
	s.mux.HandleFunc(EndpointSelect, s.handleSelect)
	s.mux.HandleFunc(EndpointSegment, s.handleSegment)
	s.mux.HandleFunc(EndpointCluster, s.handleCluster)
	s.mux.HandleFunc(EndpointBatch, s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's artifact store (stress reporting, tests).
func (s *Server) Store() *store.Store { return s.cfg.Store }

// Pipeline returns the server's artifact pipeline (tests).
func (s *Server) Pipeline() *Pipeline { return s.pl }

// StartDrain stops admitting work: pipeline endpoints answer 503 and
// /healthz flips unhealthy so load balancers stop routing here. Pair with
// http.Server.Shutdown, which waits for in-flight handlers.
func (s *Server) StartDrain() { s.gate.StartDrain() }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.gate.Draining() }

// result is one dispatched API call's outcome, shared by the single
// endpoints and the batch items.
type result struct {
	data  []byte
	cache string // store outcome: hit | computed | joined ("" on error)
	key   string // artifact key hex ("" before canonicalization succeeds)
	err   error
}

// dispatch executes one API call: decode+canonicalize, admit through the
// gate, then serve from the store or compute once.
func dispatch[T any](s *Server, body io.Reader,
	decode func(io.Reader) (T, error),
	key func(T) store.Key,
	compute func(T) ([]byte, error),
) result {
	req, err := decode(body)
	if err != nil {
		return result{err: err}
	}
	k := key(req)
	var data []byte
	var outcome store.Outcome
	err = s.gate.Do(func() error {
		var cerr error
		data, outcome, cerr = s.cfg.Store.GetOrCompute(k, func() ([]byte, error) {
			return compute(req)
		})
		return cerr
	})
	if err != nil {
		return result{key: k.String(), err: err}
	}
	return result{data: data, cache: outcome.String(), key: k.String()}
}

// status maps a dispatch error to its HTTP status.
func status(err error) int {
	var reqErr *RequestError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &reqErr):
		return http.StatusBadRequest
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func countStatus(code int) {
	switch {
	case code == http.StatusTooManyRequests:
		obsStatus429.Inc()
	case code == http.StatusServiceUnavailable:
		obsStatus503.Inc()
	case code >= 500:
		obsStatus5xx.Inc()
	case code >= 400:
		obsStatus4xx.Inc()
	case code >= 200 && code < 300:
		obsStatus2xx.Inc()
	}
}

// errorBody renders the uniform error payload.
func errorBody(err error) []byte {
	return Encode(map[string]string{"error": err.Error()})
}

// write emits one dispatch result over HTTP.
func write(w http.ResponseWriter, res result) {
	code := status(res.err)
	countStatus(code)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if res.key != "" {
		h.Set("X-Phased-Key", res.key)
	}
	if res.cache != "" {
		h.Set("X-Phased-Cache", res.cache)
	}
	if code == http.StatusTooManyRequests {
		h.Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	}
	w.WriteHeader(code)
	if res.err != nil {
		w.Write(errorBody(res.err))
		return
	}
	w.Write(res.data)
}

// post guards the pipeline endpoints' method.
func post(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		countStatus(http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqProfile.Inc()
	write(w, dispatch(s, r.Body, DecodeProfileRequest, ProfileRequest.Key, s.pl.Profile))
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqSelect.Inc()
	write(w, dispatch(s, r.Body, DecodeSelectRequest, SelectRequest.Key, s.pl.Select))
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqSegment.Inc()
	write(w, dispatch(s, r.Body, DecodeSegmentRequest, SegmentRequest.Key, s.pl.Segment))
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqCluster.Inc()
	write(w, dispatch(s, r.Body, DecodeClusterRequest, ClusterRequest.Key, s.pl.Cluster))
}

// BatchRequest fans a set of API calls through the service in one HTTP
// round trip.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchItem is one API call inside a batch: the endpoint path and its
// request body.
type BatchItem struct {
	Endpoint string          `json:"endpoint"`
	Body     json.RawMessage `json:"body"`
}

// BatchResult is one batch item's outcome. Status and Body mirror exactly
// what the item's standalone endpoint would have returned (including
// per-item 429s under saturation); Cache and Key mirror the headers.
type BatchResult struct {
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Key    string          `json:"key,omitempty"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the batch endpoint's payload.
type BatchResponse struct {
	Schema  string        `json:"schema"`
	Results []BatchResult `json:"results"`
}

// maxBatchItems bounds one batch request.
const maxBatchItems = 1024

// handleBatch runs the batch items over the shared worker-pool primitive
// (par.ForEach) with the server's execution width. Each item passes
// through the admission gate individually, so a saturated server degrades
// batches item-by-item (per-item 429) rather than all-or-nothing.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqBatch.Inc()
	var req BatchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		write(w, result{err: err})
		return
	}
	if len(req.Requests) > maxBatchItems {
		write(w, result{err: reqErrf("batch of %d items exceeds limit %d", len(req.Requests), maxBatchItems)})
		return
	}
	results := make([]BatchResult, len(req.Requests))
	par.ForEach(len(req.Requests), s.cfg.workers(), nil, func(_, i int) {
		results[i] = s.batchItem(req.Requests[i])
	})
	resp := &BatchResponse{Schema: SchemaBatch, Results: results}
	countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.Write(Encode(resp))
}

// batchItem dispatches one batch entry through the same path as its
// standalone endpoint.
func (s *Server) batchItem(item BatchItem) BatchResult {
	var res result
	switch item.Endpoint {
	case EndpointProfile:
		res = dispatch(s, bytesReader(item.Body), DecodeProfileRequest, ProfileRequest.Key, s.pl.Profile)
	case EndpointSelect:
		res = dispatch(s, bytesReader(item.Body), DecodeSelectRequest, SelectRequest.Key, s.pl.Select)
	case EndpointSegment:
		res = dispatch(s, bytesReader(item.Body), DecodeSegmentRequest, SegmentRequest.Key, s.pl.Segment)
	case EndpointCluster:
		res = dispatch(s, bytesReader(item.Body), DecodeClusterRequest, ClusterRequest.Key, s.pl.Cluster)
	default:
		res = result{err: reqErrf("unknown batch endpoint %q", item.Endpoint)}
	}
	out := BatchResult{Status: status(res.err), Cache: res.cache, Key: res.key}
	if res.err != nil {
		out.Body = errorBody(res.err)
	} else {
		out.Body = res.data
	}
	countStatus(out.Status)
	return out
}

func bytesReader(b []byte) io.Reader {
	return &byteReader{b: b}
}

// byteReader avoids importing bytes for one Reader.
type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// handleHealthz reports liveness: 200 while serving, 503 while draining
// (so orchestrators stop routing before shutdown completes).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		countStatus(http.StatusServiceUnavailable)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(Encode(map[string]string{"status": "draining"}))
		return
	}
	countStatus(http.StatusOK)
	w.Write(Encode(map[string]string{"status": "ok", "store": s.cfg.Store.Dir()}))
}

// handleMetrics serves a JSON snapshot of the internal/obs registry —
// counters (store + cell + admission + pipeline), gauges, histograms, and
// per-stage span aggregates.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	countStatus(http.StatusOK)
	// A write error here means the scraper hung up mid-snapshot; there is
	// no response left to salvage.
	_ = obs.WriteMetrics(w)
}
