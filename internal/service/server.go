package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"phasemark/internal/obs"
	"phasemark/internal/par"
	"phasemark/internal/store"
)

// Per-endpoint request counters plus HTTP outcome classes.
var (
	obsReqProfile = obs.NewCounter("service.req.profile")
	obsReqSelect  = obs.NewCounter("service.req.select")
	obsReqSegment = obs.NewCounter("service.req.segment")
	obsReqCluster = obs.NewCounter("service.req.cluster")
	obsReqBatch   = obs.NewCounter("service.req.batch")
	obsStatus2xx  = obs.NewCounter("service.status.2xx")
	obsStatus4xx  = obs.NewCounter("service.status.4xx")
	obsStatus429  = obs.NewCounter("service.status.429")
	obsStatus5xx  = obs.NewCounter("service.status.5xx")
	obsStatus503  = obs.NewCounter("service.status.503")
)

// Config configures a Server.
type Config struct {
	// Store holds response artifacts; required.
	Store *store.Store
	// Workers bounds concurrently executing requests (default GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for an execution slot (default
	// 4×Workers). Work beyond Workers+Queue is rejected with 429.
	Queue int
	// TraceWorkers is the pipeline-parallel engine's worker count for
	// trace-driven stages within a single request (Pipeline.Workers):
	// 0 keeps the serial streaming path. Independent of Workers, which
	// bounds cross-request concurrency.
	TraceWorkers int
	// AccessLog, when non-nil, receives one structured entry per request
	// (request ID, trace ID, route, status, bytes, stage breakdown).
	AccessLog *slog.Logger
	// SlowWindow bounds the /debug/slowest capture ring (default 64).
	SlowWindow int
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) queue() int {
	if c.Queue < 0 {
		return 0
	}
	if c.Queue == 0 {
		return 4 * c.workers()
	}
	return c.Queue
}

func (c Config) slowWindow() int {
	if c.SlowWindow < 1 {
		return 64
	}
	return c.SlowWindow
}

// Server is the phased HTTP service: the four pipeline endpoints plus
// batch, health, and metrics, over one artifact store and one admission
// gate. Construct with New, mount Handler on an http.Server, and call
// StartDrain before http.Server.Shutdown for a graceful stop.
type Server struct {
	cfg  Config
	pl   *Pipeline
	gate *Gate
	mux  *http.ServeMux
	slow *obs.Ring[SlowRequest]
}

// New builds a Server over its artifact store.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("service: Config.Store is required")
	}
	s := &Server{
		cfg:  cfg,
		pl:   &Pipeline{Workers: cfg.TraceWorkers},
		gate: NewGate(cfg.workers(), cfg.queue()),
		mux:  http.NewServeMux(),
		slow: obs.NewRing[SlowRequest](cfg.slowWindow()),
	}
	// Every route goes through the instrument wrapper (root span, request
	// ID, traceparent, RED metrics); only the pipeline routes feed the
	// slow-request ring.
	route := func(path string, track bool, h http.HandlerFunc) {
		s.mux.HandleFunc(path, s.instrument(path, track, h))
	}
	route(EndpointProfile, true, s.handleProfile)
	route(EndpointSelect, true, s.handleSelect)
	route(EndpointSegment, true, s.handleSegment)
	route(EndpointCluster, true, s.handleCluster)
	route(EndpointBatch, true, s.handleBatch)
	route("/healthz", false, s.handleHealthz)
	route("/metrics", false, s.handleMetrics)
	route("/debug/", false, s.handleDebug)
	route("/debug/slowest", false, s.handleDebugSlowest)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's artifact store (stress reporting, tests).
func (s *Server) Store() *store.Store { return s.cfg.Store }

// Pipeline returns the server's artifact pipeline (tests).
func (s *Server) Pipeline() *Pipeline { return s.pl }

// StartDrain stops admitting work: pipeline endpoints answer 503 and
// /healthz flips unhealthy so load balancers stop routing here. Pair with
// http.Server.Shutdown, which waits for in-flight handlers.
func (s *Server) StartDrain() { s.gate.StartDrain() }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.gate.Draining() }

// result is one dispatched API call's outcome, shared by the single
// endpoints and the batch items.
type result struct {
	data  []byte
	cache string // store outcome: hit | computed | joined ("" on error)
	key   string // artifact key hex ("" before canonicalization succeeds)
	err   error
}

// dispatch executes one API call: decode+canonicalize, admit through the
// gate, then serve from the store or compute once. ctx carries the request
// span; the gate and store attach their phases to it as child spans.
func dispatch[T any](s *Server, ctx context.Context, body io.Reader,
	decode func(io.Reader) (T, error),
	key func(T) store.Key,
	compute func(context.Context, T) ([]byte, error),
) result {
	req, err := decode(body)
	if err != nil {
		return result{err: err}
	}
	k := key(req)
	var data []byte
	var outcome store.Outcome
	err = s.gate.Do(ctx, func() error {
		var cerr error
		data, outcome, cerr = s.cfg.Store.GetOrComputeCtx(ctx, k, func(cctx context.Context) ([]byte, error) {
			return compute(cctx, req)
		})
		return cerr
	})
	if err != nil {
		return result{key: k.String(), err: err}
	}
	return result{data: data, cache: outcome.String(), key: k.String()}
}

// status maps a dispatch error to its HTTP status.
func status(err error) int {
	var reqErr *RequestError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &reqErr):
		return http.StatusBadRequest
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func countStatus(code int) {
	switch {
	case code == http.StatusTooManyRequests:
		obsStatus429.Inc()
	case code == http.StatusServiceUnavailable:
		obsStatus503.Inc()
	case code >= 500:
		obsStatus5xx.Inc()
	case code >= 400:
		obsStatus4xx.Inc()
	case code >= 200 && code < 300:
		obsStatus2xx.Inc()
	}
}

// errorBody renders the uniform error payload.
func errorBody(err error) []byte {
	return Encode(map[string]string{"error": err.Error()})
}

// finish closes out one single-endpoint dispatch: it tags the root
// request span with the cache outcome, exposes the per-stage breakdown as
// a Server-Timing header, and — when the client asked with ?trace=1 —
// replaces the artifact body with the request's Chrome trace. Everything
// else falls through to write.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, res result) {
	sp := obs.SpanFromContext(r.Context())
	if sp != nil {
		if res.cache != "" {
			sp.SetTag("cache", res.cache)
		}
		if res.err != nil {
			sp.SetTag("error", res.err.Error())
		}
		durs := map[string]int64{}
		stageDurations(sp.Snapshot().Children, durs)
		if len(durs) > 0 {
			w.Header().Set("Server-Timing", serverTiming(durs))
		}
		if res.err == nil && r.URL.Query().Get("trace") == "1" {
			h := w.Header()
			h.Set("Content-Type", "application/json")
			h.Set("X-Phased-Trace", "1")
			if res.key != "" {
				h.Set("X-Phased-Key", res.key)
			}
			h.Set("X-Phased-Cache", res.cache)
			countStatus(http.StatusOK)
			// The root span is still open; its snapshot is measured as of
			// now, children are final.
			_ = sp.WriteChromeTrace(w)
			return
		}
	}
	write(w, res)
}

// write emits one dispatch result over HTTP.
func write(w http.ResponseWriter, res result) {
	code := status(res.err)
	countStatus(code)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if res.key != "" {
		h.Set("X-Phased-Key", res.key)
	}
	if res.cache != "" {
		h.Set("X-Phased-Cache", res.cache)
	}
	if code == http.StatusTooManyRequests {
		h.Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	}
	w.WriteHeader(code)
	if res.err != nil {
		w.Write(errorBody(res.err))
		return
	}
	w.Write(res.data)
}

// post guards the pipeline endpoints' method.
func post(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		countStatus(http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqProfile.Inc()
	s.finish(w, r, dispatch(s, r.Context(), r.Body, DecodeProfileRequest, ProfileRequest.Key, s.pl.Profile))
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqSelect.Inc()
	s.finish(w, r, dispatch(s, r.Context(), r.Body, DecodeSelectRequest, SelectRequest.Key, s.pl.Select))
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqSegment.Inc()
	s.finish(w, r, dispatch(s, r.Context(), r.Body, DecodeSegmentRequest, SegmentRequest.Key, s.pl.Segment))
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqCluster.Inc()
	s.finish(w, r, dispatch(s, r.Context(), r.Body, DecodeClusterRequest, ClusterRequest.Key, s.pl.Cluster))
}

// BatchRequest fans a set of API calls through the service in one HTTP
// round trip.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchItem is one API call inside a batch: the endpoint path and its
// request body.
type BatchItem struct {
	Endpoint string          `json:"endpoint"`
	Body     json.RawMessage `json:"body"`
}

// BatchResult is one batch item's outcome. Status and Body mirror exactly
// what the item's standalone endpoint would have returned (including
// per-item 429s under saturation); Cache and Key mirror the headers.
type BatchResult struct {
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Key    string          `json:"key,omitempty"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the batch endpoint's payload.
type BatchResponse struct {
	Schema  string        `json:"schema"`
	Results []BatchResult `json:"results"`
}

// maxBatchItems bounds one batch request.
const maxBatchItems = 1024

// handleBatch runs the batch items over the shared worker-pool primitive
// (par.ForEach) with the server's execution width. Each item passes
// through the admission gate individually, so a saturated server degrades
// batches item-by-item (per-item 429) rather than all-or-nothing.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	obsReqBatch.Inc()
	var req BatchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		write(w, result{err: err})
		return
	}
	if len(req.Requests) > maxBatchItems {
		write(w, result{err: reqErrf("batch of %d items exceeds limit %d", len(req.Requests), maxBatchItems)})
		return
	}
	results := make([]BatchResult, len(req.Requests))
	ctx := r.Context()
	par.ForEach(len(req.Requests), s.cfg.workers(), nil, func(_, i int) {
		results[i] = s.batchItem(ctx, req.Requests[i])
	})
	resp := &BatchResponse{Schema: SchemaBatch, Results: results}
	countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.Write(Encode(resp))
}

// batchItem dispatches one batch entry through the same path as its
// standalone endpoint, under a per-item child span of the batch request.
func (s *Server) batchItem(ctx context.Context, item BatchItem) BatchResult {
	isp := obs.SpanFromContext(ctx).Child("batch.item", item.Endpoint)
	ictx := obs.ContextWithSpan(ctx, isp)
	var res result
	switch item.Endpoint {
	case EndpointProfile:
		res = dispatch(s, ictx, bytesReader(item.Body), DecodeProfileRequest, ProfileRequest.Key, s.pl.Profile)
	case EndpointSelect:
		res = dispatch(s, ictx, bytesReader(item.Body), DecodeSelectRequest, SelectRequest.Key, s.pl.Select)
	case EndpointSegment:
		res = dispatch(s, ictx, bytesReader(item.Body), DecodeSegmentRequest, SegmentRequest.Key, s.pl.Segment)
	case EndpointCluster:
		res = dispatch(s, ictx, bytesReader(item.Body), DecodeClusterRequest, ClusterRequest.Key, s.pl.Cluster)
	default:
		res = result{err: reqErrf("unknown batch endpoint %q", item.Endpoint)}
	}
	if res.cache != "" {
		isp.SetTag("cache", res.cache)
	}
	isp.End()
	out := BatchResult{Status: status(res.err), Cache: res.cache, Key: res.key}
	if res.err != nil {
		out.Body = errorBody(res.err)
	} else {
		out.Body = res.data
	}
	countStatus(out.Status)
	return out
}

func bytesReader(b []byte) io.Reader {
	return &byteReader{b: b}
}

// byteReader avoids importing bytes for one Reader.
type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// healthResponse is the /healthz payload: liveness plus the build stamp,
// so a fleet scrape identifies which binary answers.
type healthResponse struct {
	Status string    `json:"status"`
	Store  string    `json:"store,omitempty"`
	Build  BuildInfo `json:"build"`
}

// handleHealthz reports liveness: 200 while serving, 503 while draining
// (so orchestrators stop routing before shutdown completes).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		countStatus(http.StatusServiceUnavailable)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(Encode(healthResponse{Status: "draining", Build: Build()}))
		return
	}
	countStatus(http.StatusOK)
	w.Write(Encode(healthResponse{Status: "ok", Store: s.cfg.Store.Dir(), Build: Build()}))
}

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPrometheus decides the /metrics representation: an explicit
// ?format= wins (prometheus|prom|text vs json); otherwise an Accept header
// naming text/plain or openmetrics selects the exposition format, and the
// default stays JSON for existing tooling.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// handleMetrics serves a snapshot of the internal/obs registry — counters
// (store + cell + admission + pipeline + per-route RED), gauges,
// histograms, and per-stage span aggregates — as indented JSON by default
// or in the Prometheus text exposition format under content negotiation
// (see wantsPrometheus).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := obs.Snapshot()
	countStatus(http.StatusOK)
	// A write error below means the scraper hung up mid-snapshot; there is
	// no response left to salvage.
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", promContentType)
		_ = snap.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = snap.WriteJSON(w)
}
