package service_test

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"phasemark/internal/service"
	"phasemark/internal/store"
)

// TestConcurrentColdTrafficComputesEachArtifactOnce fires N goroutines at
// the same mixed request set against a cold store and asserts exactly one
// compute per distinct artifact (everyone else joins the in-flight
// computation or hits disk), with identical response bodies regardless of
// worker count. Run under -race this is also the service's data-race
// check. The request set is cheap by construction: distinct cluster seeds
// and select ilowers share one memoized trace/graph, so cold uniqueness
// costs microseconds, not re-tracing.
func TestConcurrentColdTrafficComputesEachArtifactOnce(t *testing.T) {
	const workload = "galgel"

	// 8 distinct requests, each replicated by every client goroutine.
	var reqs []struct{ endpoint, body string }
	for seed := 1; seed <= 4; seed++ {
		reqs = append(reqs, struct{ endpoint, body string }{
			service.EndpointCluster,
			fmt.Sprintf(`{"segment":{"workload":%q,"fixed_len":100000},"seed":%d}`, workload, seed),
		})
	}
	for _, ilower := range []int{100000, 200000, 400000, 800000} {
		reqs = append(reqs, struct{ endpoint, body string }{
			service.EndpointSelect,
			fmt.Sprintf(`{"workload":%q,"options":{"ilower":%d}}`, workload, ilower),
		})
	}

	var baseline [][]byte
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			// Queue deep enough that admission never sheds: this test is
			// about dedupe, not overload.
			_, ts := newTestServer(t, service.Config{Store: st, Workers: workers, Queue: 1024})

			const clients = 8
			bodies := make([][][]byte, clients)
			errs := make([]error, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					bodies[c] = make([][]byte, len(reqs))
					for i, r := range reqs {
						code, body, _ := doPost(ts.URL+r.endpoint, []byte(r.body))
						if code != http.StatusOK {
							errs[c] = fmt.Errorf("req %d: status %d: %s", i, code, body)
							return
						}
						bodies[c][i] = body
					}
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Exactly one compute per distinct artifact; the other
			// clients×replicas either joined the flight or hit disk.
			stats := st.Stats()
			if got, want := stats.Computes, uint64(len(reqs)); got != want {
				t.Errorf("store computes = %d, want %d (stats %+v)", got, want, stats)
			}
			if got, want := stats.Joins+stats.DiskHits, uint64((clients-1)*len(reqs)); got != want {
				t.Errorf("joins+hits = %d, want %d (stats %+v)", got, want, stats)
			}

			// Every client saw the same bytes per request...
			for c := 1; c < clients; c++ {
				for i := range reqs {
					if !bytes.Equal(bodies[0][i], bodies[c][i]) {
						t.Errorf("client %d req %d differs from client 0", c, i)
					}
				}
			}
			// ...and the same bytes across worker counts.
			if baseline == nil {
				baseline = bodies[0]
			} else {
				for i := range reqs {
					if !bytes.Equal(baseline[i], bodies[0][i]) {
						t.Errorf("req %d: workers=%d bytes differ from workers=1", i, workers)
					}
				}
			}
		})
	}
}

// doPost is postJSON without the *testing.T, for use inside goroutines
// that must not call fatal helpers.
func doPost(url string, body []byte) (int, []byte, string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error()), ""
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		return 0, []byte(err.Error()), ""
	}
	return resp.StatusCode, data.Bytes(), resp.Header.Get("X-Phased-Cache")
}

// Gate unit tests live in admission_test.go (internal test package): they
// need to observe semaphore occupancy to sequence saturation without
// races.
