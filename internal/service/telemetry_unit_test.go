package service

import (
	"testing"
	"time"

	"phasemark/internal/obs"
)

func TestRouteName(t *testing.T) {
	cases := map[string]string{
		"/v1/cluster":    "v1.cluster",
		"/healthz":       "healthz",
		"/debug/":        "debug",
		"/debug/slowest": "debug.slowest",
		"/":              "root",
	}
	for in, want := range cases {
		if got := routeName(in); got != want {
			t.Errorf("routeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if id, ok := parseTraceparent(valid); !ok || id != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("valid header rejected: %q, %v", id, ok)
	}
	invalid := []string{
		"",
		"00-short-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // zero trace-id is the all-zero header
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",   // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333g-01",   // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // trailing segment
	}
	for _, h := range invalid {
		if _, ok := parseTraceparent(h); ok {
			t.Errorf("parseTraceparent(%q) accepted, want reject", h)
		}
	}
}

func TestServerTimingRendering(t *testing.T) {
	durs := map[string]int64{
		"store.get": 1_500_000, // 1.5ms
		"req.queue": 250_000,   // 0.25ms
	}
	got := serverTiming(durs)
	want := "req.queue;dur=0.250, store.get;dur=1.500"
	if got != want {
		t.Errorf("serverTiming = %q, want %q", got, want)
	}
}

func TestStageDurationsFlattening(t *testing.T) {
	snap := obs.ReqSpanSnap{
		Name: "http.x",
		Children: []obs.ReqSpanSnap{
			{Name: "store.get", DurNS: 10, Children: []obs.ReqSpanSnap{
				{Name: "pipeline.prog", DurNS: 4},
			}},
			{Name: "store.get", DurNS: 7},
		},
	}
	durs := map[string]int64{}
	stageDurations(snap.Children, durs)
	if durs["store.get"] != 17 || durs["pipeline.prog"] != 4 {
		t.Errorf("stageDurations = %v", durs)
	}
}

func TestStatusClass(t *testing.T) {
	cases := map[int]string{100: "1xx", 200: "2xx", 204: "2xx", 301: "3xx",
		400: "4xx", 429: "4xx", 500: "5xx", 503: "5xx", 42: "other", 700: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestRouteTelemetryObserve(t *testing.T) {
	rt := newRouteTelemetry("unit.test")
	rt.observe("hit", 200, time.Millisecond)
	rt.observe("error", 429, time.Millisecond)
	rt.observe("bogus-outcome", 200, time.Millisecond) // folds into "none"
	if n := obs.NewHist("http.unit.test.hit").Count(); n != 1 {
		t.Errorf("hit histogram count = %d, want 1", n)
	}
	if n := obs.NewHist("http.unit.test.none").Count(); n != 1 {
		t.Errorf("none histogram count = %d, want 1", n)
	}
	if n := obs.NewCounter("http.unit.test.status.4xx").Load(); n != 1 {
		t.Errorf("4xx counter = %d, want 1", n)
	}
	if n := obs.NewCounter("http.unit.test.status.2xx").Load(); n != 2 {
		t.Errorf("2xx counter = %d, want 2", n)
	}
}
