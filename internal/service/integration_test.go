package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"phasemark/internal/core"
	"phasemark/internal/service"
	"phasemark/internal/simpoint"
	"phasemark/internal/store"
	"phasemark/internal/trace"
	"phasemark/internal/uarch"
	"phasemark/internal/workloads"
)

// itWorkload is the committed integration-test workload: the cheapest of
// the sixteen to profile and trace (see §5.1 analysis-cost table).
const itWorkload = "lucas"

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON posts one API request and returns status, body, and the cache
// header.
func postJSON(t *testing.T, url string, body []byte) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("X-Phased-Cache")
}

// TestEndToEndFlowMatchesInProcessPipeline boots phased on an ephemeral
// listener, drives the full profile → select → segment → cluster flow for
// one committed workload over HTTP, and asserts every response is
// byte-identical to what the in-process spexp path — core.ProfileRun →
// core.SelectMarkers → trace.Run → simpoint.Classify, artifacts computed
// directly, no service code in the loop — produces for the same inputs.
func TestEndToEndFlowMatchesInProcessPipeline(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})

	// The request chain, canonicalized exactly as the server will.
	profileReq, err := service.ProfileRequest{Workload: itWorkload}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	selectReq, err := service.SelectRequest{
		Workload: itWorkload,
		Options:  service.SelectSpec{ILower: 100_000, MaxLimit: 2_000_000},
	}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	segmentReq, err := service.SegmentRequest{Workload: itWorkload, Select: &selectReq}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	clusterReq, err := service.ClusterRequest{Segment: segmentReq, Seed: 7}.Canon()
	if err != nil {
		t.Fatal(err)
	}

	// The in-process oracle: the spexp artifact chain, computed directly.
	w, err := workloads.ByName(itWorkload)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Compile(false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.ProfileRun(prog, w.Train...)
	if err != nil {
		t.Fatal(err)
	}
	set := core.SelectMarkers(g, selectReq.Options.SelectOptions())
	res, err := trace.Run(trace.Config{Prog: prog, Args: w.Ref, CPU: uarch.DefaultConfig(), Markers: set})
	if err != nil {
		t.Fatal(err)
	}
	clustering := simpoint.Classify(res, service.ClusterOptions(clusterReq))

	steps := []struct {
		endpoint string
		body     []byte
		want     []byte
	}{
		{service.EndpointProfile, service.Encode(profileReq), service.Encode(service.NewProfileResponse(profileReq, g))},
		{service.EndpointSelect, service.Encode(selectReq), service.Encode(service.NewSelectResponse(selectReq, set))},
		{service.EndpointSegment, service.Encode(segmentReq), service.Encode(service.NewSegmentResponse(segmentReq, res))},
		{service.EndpointCluster, service.Encode(clusterReq), service.Encode(service.NewClusterResponse(clusterReq, res, clustering))},
	}
	for _, step := range steps {
		code, got, cache := postJSON(t, ts.URL+step.endpoint, step.body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", step.endpoint, code, got)
		}
		if cache != "computed" {
			t.Errorf("%s: first request cache = %q, want computed", step.endpoint, cache)
		}
		if !bytes.Equal(got, step.want) {
			t.Errorf("%s: response differs from the in-process pipeline\n got: %.300s\nwant: %.300s",
				step.endpoint, got, step.want)
		}
	}

	// Sanity on the clustered payload itself: every interval assigned,
	// weights normalized.
	var cr service.ClusterResponse
	_, body, cache := postJSON(t, ts.URL+service.EndpointCluster, service.Encode(clusterReq))
	if cache != "hit" {
		t.Errorf("second cluster request cache = %q, want hit", cache)
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.K < 1 || len(cr.Assign) != cr.Intervals || len(cr.Weights) != cr.K {
		t.Errorf("cluster response shape: k=%d assign=%d/%d weights=%d", cr.K, len(cr.Assign), cr.Intervals, len(cr.Weights))
	}
	var wsum float64
	for _, wt := range cr.Weights {
		wsum += wt
	}
	if wsum < 0.999 || wsum > 1.001 {
		t.Errorf("cluster weights sum to %v, want 1", wsum)
	}
}

// TestSecondIdenticalRequestIsStoreHit pins the content-addressed dedupe
// acceptance criterion, including across a process restart (a second
// Server over the same directory).
func TestSecondIdenticalRequestIsStoreHit(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, service.Config{Store: st})
	body := []byte(`{"workload":"` + itWorkload + `"}`)

	code, first, cache := postJSON(t, ts.URL+service.EndpointProfile, body)
	if code != http.StatusOK || cache != "computed" {
		t.Fatalf("first request: status %d cache %q", code, cache)
	}
	code, second, cache := postJSON(t, ts.URL+service.EndpointProfile, body)
	if code != http.StatusOK || cache != "hit" {
		t.Fatalf("second request: status %d cache %q, want 200/hit", code, cache)
	}
	if !bytes.Equal(first, second) {
		t.Error("hit served different bytes than the original compute")
	}
	if st := srv.Store().Stats(); st.Computes != 1 || st.DiskHits != 1 {
		t.Errorf("store stats = %+v, want 1 compute + 1 disk hit", st)
	}

	// "Restart": a fresh server (cold memos) over the same store directory
	// serves the artifact without recomputing.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, service.Config{Store: st2})
	code, third, cache := postJSON(t, ts2.URL+service.EndpointProfile, body)
	if code != http.StatusOK || cache != "hit" {
		t.Fatalf("restarted request: status %d cache %q, want 200/hit", code, cache)
	}
	if !bytes.Equal(first, third) {
		t.Error("restarted server served different bytes")
	}
	if st := st2.Stats(); st.Computes != 0 || st.DiskHits != 1 {
		t.Errorf("restarted store stats = %+v, want 0 computes + 1 disk hit", st)
	}
}

func TestRequestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	cases := []struct {
		name     string
		endpoint string
		body     string
	}{
		{"unknown workload", service.EndpointProfile, `{"workload":"nope"}`},
		{"bad input", service.EndpointProfile, `{"workload":"lucas","input":"test"}`},
		{"unknown field", service.EndpointProfile, `{"workload":"lucas","bogus":1}`},
		{"malformed json", service.EndpointSelect, `{"workload":`},
		{"trailing data", service.EndpointProfile, `{"workload":"lucas"} {"again":true}`},
		{"segment needs a cut", service.EndpointSegment, `{"workload":"lucas"}`},
		{"segment with both cuts", service.EndpointSegment, `{"workload":"lucas","fixed_len":10000,"select":{"workload":"lucas"}}`},
		{"segment cross-workload select", service.EndpointSegment, `{"workload":"lucas","select":{"workload":"mcf"}}`},
		{"inverted limits", service.EndpointSelect, `{"workload":"lucas","options":{"ilower":500000,"max_limit":100000}}`},
		{"negative kmax", service.EndpointCluster, `{"segment":{"workload":"lucas","fixed_len":10000},"kmax":-3}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body, _ := postJSON(t, ts.URL+tc.endpoint, []byte(tc.body))
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", code, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not {error: ...}", body)
			}
		})
	}

	if resp, err := http.Get(ts.URL + service.EndpointProfile); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on a pipeline endpoint: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthy, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(healthy), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, healthy)
	}

	// One computed artifact, then the scrape must show non-empty counters.
	if code, body, _ := postJSON(t, ts.URL+service.EndpointSelect, []byte(`{"workload":"`+itWorkload+`"}`)); code != http.StatusOK {
		t.Fatalf("select: %d %s", code, body)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value uint64 `json:"value"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	byName := map[string]uint64{}
	for _, c := range snap.Counters {
		byName[c.Name] = c.Value
	}
	// The obs registry is process-global, so assert >= rather than == —
	// other tests in the package contribute.
	for _, name := range []string{"store.compute", "service.admitted", "service.req.select", "core.select.runs"} {
		if byName[name] == 0 {
			t.Errorf("metrics counter %s is 0 or missing (got %v)", name, byName)
		}
	}

	// Draining flips healthz to 503.
	srv.StartDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: %d, want 503", resp.StatusCode)
	}
	if code, _, _ := postJSON(t, ts.URL+service.EndpointProfile, []byte(`{"workload":"lucas"}`)); code != http.StatusServiceUnavailable {
		t.Errorf("draining endpoint: %d, want 503", code)
	}
}

// TestSaturationReturns429 induces saturation — capacity 1+0, eight
// concurrent cold cluster requests — and checks the overload contract:
// some requests succeed, the shed ones get 429 + Retry-After, and nothing
// surfaces as a 5xx.
func TestSaturationReturns429(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1, Queue: 0})
	body := []byte(`{"segment":{"workload":"` + itWorkload + `","fixed_len":100000}}`)

	const clients = 8
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	var wg sync.WaitGroup
	for i := range codes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+service.EndpointCluster, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}()
	}
	wg.Wait()
	ok, shed := 0, 0
	for i, code := range codes {
		switch {
		case code == http.StatusOK:
			ok++
		case code == http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Error("429 without Retry-After")
			}
		case code >= 500:
			t.Errorf("saturation produced a %d", code)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under saturation")
	}
	if shed == 0 {
		t.Error("no request was shed at capacity 1/queue 0 with 8 concurrent clients")
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	batch := service.BatchRequest{
		Requests: []service.BatchItem{
			{Endpoint: service.EndpointProfile, Body: json.RawMessage(`{"workload":"` + itWorkload + `"}`)},
			{Endpoint: service.EndpointSelect, Body: json.RawMessage(`{"workload":"` + itWorkload + `"}`)},
			{Endpoint: service.EndpointProfile, Body: json.RawMessage(`{"workload":"` + itWorkload + `"}`)}, // duplicate of item 0
			{Endpoint: "/v1/nope", Body: json.RawMessage(`{}`)},
			{Endpoint: service.EndpointProfile, Body: json.RawMessage(`{"workload":"nope"}`)},
		},
	}
	code, body, _ := postJSON(t, ts.URL+service.EndpointBatch, service.Encode(batch))
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var resp service.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Schema != service.SchemaBatch || len(resp.Results) != len(batch.Requests) {
		t.Fatalf("batch response shape: %s, %d results", resp.Schema, len(resp.Results))
	}
	if resp.Results[0].Status != 200 || resp.Results[1].Status != 200 {
		t.Errorf("valid items: statuses %d, %d, want 200s", resp.Results[0].Status, resp.Results[1].Status)
	}
	// Items 0 and 2 are identical: same key, same bytes, and between the
	// two exactly one compute happened (the other joined or hit).
	if resp.Results[0].Key != resp.Results[2].Key {
		t.Error("identical batch items got different keys")
	}
	if !bytes.Equal(resp.Results[0].Body, resp.Results[2].Body) {
		t.Error("identical batch items got different bodies")
	}
	if resp.Results[3].Status != 400 || resp.Results[4].Status != 400 {
		t.Errorf("invalid items: statuses %d, %d, want 400s", resp.Results[3].Status, resp.Results[4].Status)
	}
}

// TestMinimizeDistinguishesKeysAndShrinksSelection pins the canonical-key
// contract for the minimize knob: a minimized select (and any segment
// built on it) must address a different artifact than the full selection,
// and over HTTP the minimized response must be a strict, non-empty subset
// of the full marker set.
func TestMinimizeDistinguishesKeysAndShrinksSelection(t *testing.T) {
	full, err := service.SelectRequest{Workload: itWorkload}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	min := full
	min.Options.Minimize = true
	if min, err = min.Canon(); err != nil {
		t.Fatal(err)
	}
	if full.Key() == min.Key() {
		t.Fatal("minimize knob does not change the select key: minimized runs would alias full artifacts")
	}
	segFull, err := service.SegmentRequest{Workload: itWorkload, Select: &full}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	segMin, err := service.SegmentRequest{Workload: itWorkload, Select: &min}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	if segFull.Key() == segMin.Key() {
		t.Fatal("minimize knob does not change the segment key")
	}

	_, ts := newTestServer(t, service.Config{})
	var got [2]service.SelectResponse
	for i, req := range []service.SelectRequest{full, min} {
		code, body, _ := postJSON(t, ts.URL+service.EndpointSelect, service.Encode(req))
		if code != http.StatusOK {
			t.Fatalf("select (minimize=%v): %d %s", req.Options.Minimize, code, body)
		}
		if err := json.Unmarshal(body, &got[i]); err != nil {
			t.Fatal(err)
		}
	}
	nf, nm := len(got[0].Markers), len(got[1].Markers)
	if nm == 0 || nm >= nf {
		t.Fatalf("minimized selection has %d markers, full has %d; want a strict, non-empty subset", nm, nf)
	}
	byBlock := map[service.MarkerInfo]bool{}
	for _, m := range got[0].Markers {
		byBlock[m] = true
	}
	for _, m := range got[1].Markers {
		if !byBlock[m] {
			t.Errorf("minimized marker %+v not present in the full selection", m)
		}
	}
}

// TestTraceWorkersByteIdenticalResponses pins the service half of the
// pipeline-parallel determinism contract: a server running the
// trace-driven stages on the parallel engine (Config.TraceWorkers > 0)
// must serve byte-for-byte the same segment and cluster responses as a
// serial server over the same requests — the engine and the ObserveChunkPar
// consumers change latency, never bytes.
func TestTraceWorkersByteIdenticalResponses(t *testing.T) {
	selectReq, err := service.SelectRequest{
		Workload: itWorkload,
		Options:  service.SelectSpec{ILower: 100_000, MaxLimit: 2_000_000},
	}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	segmentReq, err := service.SegmentRequest{Workload: itWorkload, Select: &selectReq}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	clusterReq, err := service.ClusterRequest{Segment: segmentReq, Seed: 7}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		endpoint string
		body     []byte
	}{
		{service.EndpointSegment, service.Encode(segmentReq)},
		{service.EndpointCluster, service.Encode(clusterReq)},
	}

	_, serial := newTestServer(t, service.Config{})
	_, parallel := newTestServer(t, service.Config{TraceWorkers: 4})
	for _, step := range steps {
		code, want, _ := postJSON(t, serial.URL+step.endpoint, step.body)
		if code != http.StatusOK {
			t.Fatalf("%s (serial): status %d: %s", step.endpoint, code, want)
		}
		code, got, _ := postJSON(t, parallel.URL+step.endpoint, step.body)
		if code != http.StatusOK {
			t.Fatalf("%s (trace-workers=4): status %d: %s", step.endpoint, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: parallel-engine response differs from serial\n got: %.300s\nwant: %.300s",
				step.endpoint, got, want)
		}
	}
}
