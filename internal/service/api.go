// Package service implements phased, the phase-marker analysis service: a
// long-running HTTP server exposing the paper's pipeline stages — profile
// (call-loop graph construction), select (marker selection), segment
// (marker- or fixed-cut tracing), and cluster (SimPoint classification) —
// to many concurrent clients.
//
// Every request has a canonical form (defaults applied, fields in declared
// order) whose SHA-256 digest content-addresses the response in an
// internal/store artifact store: identical requests — concurrent, repeated,
// or issued to a later process over the same store directory — compute
// exactly once. In-process, expensive intermediate artifacts (compiled
// programs, profiled graphs, marker sets, traced executions) are memoized
// with the same singleflight discipline (store.Memo), so e.g. a thousand
// cluster requests differing only in seed share one traced execution.
//
// Admission control bounds concurrent work: requests past the executing
// and queued limits are rejected with 429 + Retry-After instead of piling
// onto the process, and a draining server (SIGTERM) answers 503 while
// in-flight work finishes. See DESIGN.md §"phased" for the full layout.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"phasemark/internal/store"
	"phasemark/internal/workloads"
)

// Endpoint paths. The canonical key domain is the endpoint plus
// apiVersion, so a format change shifts every address instead of serving
// stale artifacts.
const (
	EndpointProfile = "/v1/profile"
	EndpointSelect  = "/v1/select"
	EndpointSegment = "/v1/segment"
	EndpointCluster = "/v1/cluster"
	EndpointBatch   = "/v1/batch"
)

// apiVersion tags the canonical request encoding. Bump it whenever a
// request or response schema changes shape so old stored artifacts are
// simply never addressed again. (v2: SelectSpec grew the minimize knob.)
const apiVersion = "phased/v2"

// Default knobs, mirroring the experiment suite (internal/experiments
// table.go) so service results line up with the spexp figures.
const (
	// DefaultILower is the minimum average interval size for selection
	// (§5.4, scaled as in the experiments).
	DefaultILower = 100_000
	// DefaultKMax / DefaultDims / DefaultRestarts / DefaultMaxIters are
	// the SimPoint options the figure harness passes to Classify.
	DefaultKMax     = 10
	DefaultDims     = 15
	DefaultRestarts = 2
	DefaultMaxIters = 40
	// DefaultSeed seeds projection and clustering when the request leaves
	// it zero.
	DefaultSeed = 1
)

// Inputs name a workload's profiling input.
const (
	InputTrain = "train"
	InputRef   = "ref"
)

// RequestError marks a malformed or unsatisfiable request (HTTP 400), as
// opposed to a pipeline failure (HTTP 500).
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func reqErrf(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// checkWorkload validates the workload name and input selector.
func checkWorkload(name, input string) error {
	if name == "" {
		return reqErrf("missing workload")
	}
	if _, err := workloads.ByName(name); err != nil {
		return reqErrf("unknown workload %q", name)
	}
	if input != InputTrain && input != InputRef {
		return reqErrf("input must be %q or %q, not %q", InputTrain, InputRef, input)
	}
	return nil
}

// SelectSpec is the marker-selection knob set, the canonical form of
// core.SelectOptions. Field order is the canonical encoding order — do not
// reorder without bumping apiVersion.
type SelectSpec struct {
	ILower    uint64  `json:"ilower"`
	MaxLimit  uint64  `json:"max_limit"`
	ProcsOnly bool    `json:"procs_only"`
	CovScale  float64 `json:"cov_scale"`
	MinCount  uint64  `json:"min_count"`
	// Minimize runs the minimum-cost placement pass (core.MinimizeMarkers)
	// on the selected set. Part of the canonical encoding, so minimized and
	// full runs address different artifacts.
	Minimize bool `json:"minimize"`
}

// canon applies selection defaults and rejects values with no canonical
// JSON encoding (NaN/Inf never canonicalize) or no meaning (negative
// scale).
func (s SelectSpec) canon() (SelectSpec, error) {
	if s.ILower == 0 {
		s.ILower = DefaultILower
	}
	if math.IsNaN(s.CovScale) || math.IsInf(s.CovScale, 0) || s.CovScale < 0 {
		return s, reqErrf("cov_scale must be a non-negative finite number")
	}
	return s, nil
}

// ProfileRequest asks for the call-loop graph of one profiled execution.
type ProfileRequest struct {
	Workload string `json:"workload"`
	Input    string `json:"input"` // "train" (default) or "ref"
}

// Canon returns the fully defaulted, validated request.
func (r ProfileRequest) Canon() (ProfileRequest, error) {
	if r.Input == "" {
		r.Input = InputTrain
	}
	if err := checkWorkload(r.Workload, r.Input); err != nil {
		return r, err
	}
	return r, nil
}

// SelectRequest asks for a marker set selected on a profiled graph.
type SelectRequest struct {
	Workload string     `json:"workload"`
	Input    string     `json:"input"` // profile input: "train" (default) or "ref"
	Options  SelectSpec `json:"options"`
}

// Canon returns the fully defaulted, validated request.
func (r SelectRequest) Canon() (SelectRequest, error) {
	if r.Input == "" {
		r.Input = InputTrain
	}
	if err := checkWorkload(r.Workload, r.Input); err != nil {
		return r, err
	}
	opts, err := r.Options.canon()
	if err != nil {
		return r, err
	}
	r.Options = opts
	if r.Options.MaxLimit != 0 && r.Options.MaxLimit < r.Options.ILower {
		return r, reqErrf("max_limit %d below ilower %d", r.Options.MaxLimit, r.Options.ILower)
	}
	return r, nil
}

// SegmentRequest asks for the ref execution of a workload segmented into
// intervals: cut every FixedLen instructions, or cut at the firings of a
// marker set selected per Select. Exactly one of the two must be given.
type SegmentRequest struct {
	Workload string         `json:"workload"`
	FixedLen uint64         `json:"fixed_len"`
	Select   *SelectRequest `json:"select"`
}

// Canon returns the fully defaulted, validated request.
func (r SegmentRequest) Canon() (SegmentRequest, error) {
	if (r.FixedLen == 0) == (r.Select == nil) {
		return r, reqErrf("need exactly one of fixed_len or select")
	}
	if r.Select != nil {
		sel := *r.Select
		if sel.Workload == "" {
			sel.Workload = r.Workload
		}
		if sel.Workload != r.Workload {
			return r, reqErrf("select.workload %q differs from workload %q", sel.Workload, r.Workload)
		}
		c, err := sel.Canon()
		if err != nil {
			return r, err
		}
		r.Select = &c
	}
	if err := checkWorkload(r.Workload, InputRef); err != nil {
		return r, err
	}
	return r, nil
}

// ClusterRequest asks for SimPoint phase classification over a segmented
// execution's interval BBVs.
type ClusterRequest struct {
	Segment  SegmentRequest `json:"segment"`
	KMax     int            `json:"kmax"`
	Dims     int            `json:"dims"`
	Seed     uint64         `json:"seed"`
	Restarts int            `json:"restarts"`
	MaxIters int            `json:"max_iters"`
}

// Canon returns the fully defaulted, validated request.
func (r ClusterRequest) Canon() (ClusterRequest, error) {
	seg, err := r.Segment.Canon()
	if err != nil {
		return r, err
	}
	r.Segment = seg
	if r.KMax < 0 || r.Dims < 0 || r.Restarts < 0 || r.MaxIters < 0 {
		return r, reqErrf("kmax, dims, restarts and max_iters must be non-negative")
	}
	if r.KMax == 0 {
		r.KMax = DefaultKMax
	}
	if r.Dims == 0 {
		r.Dims = DefaultDims
	}
	if r.Seed == 0 {
		r.Seed = DefaultSeed
	}
	if r.Restarts == 0 {
		r.Restarts = DefaultRestarts
	}
	if r.MaxIters == 0 {
		r.MaxIters = DefaultMaxIters
	}
	return r, nil
}

// mustJSON encodes a canonical request. Canonical structs contain no maps
// and no unsupported types, so Marshal cannot fail; the panic guards
// against a refactor breaking that property silently.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: canonical encoding failed: %v", err))
	}
	return b
}

// Key content-addresses the canonical request. Call Canon first: keys of
// non-canonical requests would alias defaults to distinct artifacts.
func (r ProfileRequest) Key() store.Key {
	return store.KeyOf(apiVersion+EndpointProfile, mustJSON(r))
}

// Key content-addresses the canonical request.
func (r SelectRequest) Key() store.Key {
	return store.KeyOf(apiVersion+EndpointSelect, mustJSON(r))
}

// Key content-addresses the canonical request.
func (r SegmentRequest) Key() store.Key {
	return store.KeyOf(apiVersion+EndpointSegment, mustJSON(r))
}

// Key content-addresses the canonical request.
func (r ClusterRequest) Key() store.Key {
	return store.KeyOf(apiVersion+EndpointCluster, mustJSON(r))
}

// maxBodyBytes bounds request bodies; the API's requests are small
// structured descriptions, never bulk data.
const maxBodyBytes = 1 << 20

// decodeStrict decodes one JSON value, rejecting unknown fields, trailing
// data, and oversized bodies. Every decode failure is a RequestError
// (HTTP 400).
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return reqErrf("bad request body: %v", err)
	}
	if dec.More() {
		return reqErrf("bad request body: trailing data after JSON value")
	}
	return nil
}

// DecodeProfileRequest decodes and canonicalizes a profile request body.
func DecodeProfileRequest(r io.Reader) (ProfileRequest, error) {
	var req ProfileRequest
	if err := decodeStrict(r, &req); err != nil {
		return req, err
	}
	return req.Canon()
}

// DecodeSelectRequest decodes and canonicalizes a select request body.
func DecodeSelectRequest(r io.Reader) (SelectRequest, error) {
	var req SelectRequest
	if err := decodeStrict(r, &req); err != nil {
		return req, err
	}
	return req.Canon()
}

// DecodeSegmentRequest decodes and canonicalizes a segment request body.
func DecodeSegmentRequest(r io.Reader) (SegmentRequest, error) {
	var req SegmentRequest
	if err := decodeStrict(r, &req); err != nil {
		return req, err
	}
	return req.Canon()
}

// DecodeClusterRequest decodes and canonicalizes a cluster request body.
func DecodeClusterRequest(r io.Reader) (ClusterRequest, error) {
	var req ClusterRequest
	if err := decodeStrict(r, &req); err != nil {
		return req, err
	}
	return req.Canon()
}
