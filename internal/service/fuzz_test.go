package service_test

import (
	"bytes"
	"strings"
	"testing"

	"phasemark/internal/service"
	"phasemark/internal/store"
)

// FuzzStoreKey fuzzes the content-addressing layer: domain separation
// must hold for every (domain, payload) pair, not just the well-formed
// ones the service constructs. The length-prefixed encoding is what makes
// ("ab","c") and ("a","bc") distinct; this target guards that property.
func FuzzStoreKey(f *testing.F) {
	f.Add("phased/v1/v1/profile", []byte(`{"workload":"lucas","input":"train"}`))
	f.Add("phased/v1/v1/cluster", []byte(`{}`))
	f.Add("", []byte{})
	f.Add("a", []byte("bc"))
	f.Add("ab", []byte("c"))
	f.Add("d\x00m", []byte("\x00\xff"))
	f.Fuzz(func(t *testing.T, domain string, payload []byte) {
		k := store.KeyOf(domain, payload)
		if k != store.KeyOf(domain, payload) {
			t.Fatal("KeyOf is not deterministic")
		}
		// Moving a byte across the domain/payload boundary must change
		// the key: concatenation alone would collide here.
		if len(domain) > 0 {
			shifted := store.KeyOf(domain[:len(domain)-1], append([]byte(domain[len(domain)-1:]), payload...))
			if shifted == k {
				t.Fatalf("domain boundary shift collides: (%q,%q)", domain, payload)
			}
		}
		// Perturbing the payload must change the key.
		if len(payload) > 0 {
			mutated := bytes.Clone(payload)
			mutated[0] ^= 0xff
			if store.KeyOf(domain, mutated) == k {
				t.Fatalf("payload mutation collides: (%q,%q)", domain, payload)
			}
		}
	})
}

// FuzzRequestDecode fuzzes the wire decoders across all four endpoints:
// arbitrary bodies must never panic, and any body that decodes must
// canonicalize to a fixed point — decode(Encode(canon(x))) == canon(x),
// with a stable key. A canonical form that drifts under re-decoding would
// split one artifact across several store addresses.
func FuzzRequestDecode(f *testing.F) {
	f.Add(`{"workload":"lucas"}`)
	f.Add(`{"workload":"lucas","input":"ref"}`)
	f.Add(`{"workload":"galgel","options":{"ilower":200000,"cov_scale":1.5}}`)
	f.Add(`{"workload":"lucas","fixed_len":100000}`)
	f.Add(`{"workload":"lucas","select":{"workload":"lucas"}}`)
	f.Add(`{"segment":{"workload":"lucas","fixed_len":100000},"seed":7,"kmax":4}`)
	f.Add(`{"workload":"lucas","options":{"cov_scale":1e308}}`)
	f.Add(`{"workload":`)
	f.Add(`null`)
	f.Add(`[1,2,3]`)
	f.Add(strings.Repeat(`{"workload":`, 100))
	f.Fuzz(func(t *testing.T, body string) {
		if p, err := service.DecodeProfileRequest(strings.NewReader(body)); err == nil {
			q, err := service.DecodeProfileRequest(bytes.NewReader(service.Encode(p)))
			if err != nil || q != p {
				t.Fatalf("profile canon not a fixed point: %+v -> %+v (%v)", p, q, err)
			}
			if q.Key() != p.Key() {
				t.Fatalf("profile key unstable for %+v", p)
			}
		}
		if s, err := service.DecodeSelectRequest(strings.NewReader(body)); err == nil {
			q, err := service.DecodeSelectRequest(bytes.NewReader(service.Encode(s)))
			if err != nil || q != s {
				t.Fatalf("select canon not a fixed point: %+v -> %+v (%v)", s, q, err)
			}
			if q.Key() != s.Key() {
				t.Fatalf("select key unstable for %+v", s)
			}
		}
		if g, err := service.DecodeSegmentRequest(strings.NewReader(body)); err == nil {
			q, err := service.DecodeSegmentRequest(bytes.NewReader(service.Encode(g)))
			if err != nil || q.Key() != g.Key() {
				t.Fatalf("segment canon not a fixed point: %+v -> %+v (%v)", g, q, err)
			}
		}
		if c, err := service.DecodeClusterRequest(strings.NewReader(body)); err == nil {
			q, err := service.DecodeClusterRequest(bytes.NewReader(service.Encode(c)))
			if err != nil || q.Key() != c.Key() {
				t.Fatalf("cluster canon not a fixed point: %+v -> %+v (%v)", c, q, err)
			}
		}
	})
}
